// Quickstart: factor a random SPD matrix with Enhanced Online-ABFT on
// the simulated laptop profile, check the factor, and solve a linear
// system with it.
package main

import (
	"fmt"
	"log"

	"abftchol"
)

func main() {
	const n = 512

	// A random symmetric positive-definite matrix (deterministic for
	// the seed), the kind of system Cholesky factorizations serve in
	// least-squares, optimization, and Kalman-filter workloads.
	a := abftchol.NewSPD(n, 7)

	// Factor it under the paper's Enhanced Online-ABFT: every block is
	// checksum-verified immediately before it is read, so both
	// computing errors and memory storage errors would be repaired
	// before they could propagate.
	l, res, err := abftchol.FactorSPD(a, abftchol.Laptop(), abftchol.SchemeEnhanced)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("factored %dx%d SPD matrix with %s\n", n, n, res.Scheme)
	fmt.Printf("  simulated time      %.4f s (%.2f GFLOPS on the %q model)\n", res.Time, res.GFLOPS, "laptop")
	fmt.Printf("  blocks verified     %d\n", res.VerifiedBlocks)
	fmt.Printf("  factor residual     %.3g (machine-epsilon scale means correct)\n", abftchol.Residual(a, l))

	// Solve A x = b for a right-hand side with a known solution.
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i%5) - 2
	}
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += a.At(i, j) * want[j]
		}
		b[i] = s
	}
	if err := abftchol.Solve(l, b); err != nil {
		log.Fatal(err)
	}
	maxErr := 0.0
	for i := range want {
		d := b[i] - want[i]
		if d < 0 {
			d = -d
		}
		if d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("  solve max error     %.3g\n", maxErr)
	fmt.Printf("  log det(A)          %.3f\n", abftchol.LogDet(l))
}
