// Faultinjection: reproduce the paper's capability experiment (§VII-B,
// Tables VII and VIII) with real arithmetic at laptop scale. One
// computation error and one storage error are injected into each ABFT
// scheme; the table shows who corrects in place, who must redo the
// whole factorization, and that every scheme ultimately delivers a
// correct factor.
package main

import (
	"fmt"
	"log"

	"abftchol"
)

func main() {
	const (
		n     = 512
		delta = 1e5
	)
	a := abftchol.NewSPD(n, 99)

	type condition struct {
		name      string
		scenarios []abftchol.Scenario
	}
	conditions := []condition{
		{"no error", nil},
		{"computation error", []abftchol.Scenario{abftchol.ComputationError(5, delta)}},
		{"storage error", []abftchol.Scenario{abftchol.StorageError(6, delta)}},
	}
	schemes := []abftchol.Scheme{abftchol.SchemeEnhanced, abftchol.SchemeOnline, abftchol.SchemeOffline}

	fmt.Printf("fault-tolerance capability, %dx%d real-arithmetic run (laptop profile)\n\n", n, n)
	fmt.Printf("%-22s  %-18s  %9s  %8s  %11s  %9s\n",
		"scheme", "condition", "time", "attempts", "corrections", "residual")
	for _, sch := range schemes {
		for _, cond := range conditions {
			res, err := abftchol.Run(abftchol.Options{
				Profile:          abftchol.Laptop(),
				N:                n,
				Scheme:           sch,
				ConcurrentRecalc: true,
				Data:             a,
				Scenarios:        cond.scenarios,
			})
			if err != nil {
				log.Fatalf("%s/%s: %v", sch, cond.name, err)
			}
			fmt.Printf("%-22s  %-18s  %8.4fs  %8d  %11d  %9.2g\n",
				sch, cond.name, res.Time, res.Attempts, res.Corrections,
				abftchol.Residual(a, res.L))
		}
		fmt.Println()
	}

	fmt.Println("reading the table:")
	fmt.Println("  - enhanced-online-abft corrects both error types in place (1 attempt);")
	fmt.Println("  - online-abft corrects the computation error but must redo the run on")
	fmt.Println("    the storage error (2 attempts, ~2x time);")
	fmt.Println("  - offline-abft must redo the run on either error;")
	fmt.Println("  - every residual is at machine-epsilon scale: the final factor is")
	fmt.Println("    always correct, the schemes differ only in how much time recovery costs.")
}
