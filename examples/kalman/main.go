// Kalman: a large-state Kalman filter — another workload from the
// paper's introduction — whose measurement-update Cholesky
// factorizations run under Enhanced Online-ABFT while storage errors
// strike them.
//
// The filter estimates a smooth field of 256 state variables from
// noisy direct observations. Each update step factors the innovation
// covariance S = P + R (a 256x256 SPD matrix) to apply the Kalman
// gain; a memory error is injected into every factorization and
// corrected in place, and the estimate still converges.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"abftchol"
)

const (
	dim     = 256  // state dimension (multiple of the laptop block size)
	steps   = 6    // filter steps
	procVar = 0.01 // process noise variance
	measVar = 0.25 // measurement noise variance
)

func main() {
	rng := rand.New(rand.NewSource(1960)) // Kalman's paper year

	// Ground truth: a smooth field that drifts slowly.
	truth := make([]float64, dim)
	for i := range truth {
		truth[i] = math.Sin(float64(i) / 12)
	}

	// Prior: zero mean, smooth covariance (exponential kernel) —
	// SPD by construction, with a nugget for conditioning.
	p := abftchol.NewMatrix(dim, dim)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			p.Set(i, j, math.Exp(-math.Abs(float64(i-j))/8))
		}
		p.Add(i, i, 0.05)
	}
	x := make([]float64, dim) // estimate

	fmt.Printf("%5s  %12s  %10s  %12s  %8s\n", "step", "rms error", "attempts", "corrections", "logdetS")
	for step := 0; step < steps; step++ {
		// Drift the truth and take a noisy measurement z = truth + v.
		for i := range truth {
			truth[i] += procVar * rng.NormFloat64()
		}
		z := make([]float64, dim)
		for i := range truth {
			z[i] = truth[i] + math.Sqrt(measVar)*rng.NormFloat64()
		}

		// Innovation covariance S = P + R (H = I), factored under
		// fault injection: one storage error per step, different
		// location each time.
		s := p.Clone()
		for i := 0; i < dim; i++ {
			s.Add(i, i, measVar)
		}
		res, err := abftchol.Run(abftchol.Options{
			Profile:          abftchol.Laptop(),
			N:                dim,
			Scheme:           abftchol.SchemeEnhanced,
			ConcurrentRecalc: true,
			Data:             s,
			Scenarios: []abftchol.Scenario{
				abftchol.StorageError(2+step%4, 1e4),
			},
		})
		if err != nil {
			log.Fatalf("step %d: %v", step, err)
		}
		l := res.L

		// Kalman gain K = P·S⁻¹, applied as x += K(z − x) and
		// P -= K·P, both via triangular solves against L.
		innov := make([]float64, dim)
		for i := range innov {
			innov[i] = z[i] - x[i]
		}
		w := append([]float64(nil), innov...)
		if err := abftchol.Solve(l, w); err != nil { // w = S⁻¹(z − x)
			log.Fatal(err)
		}
		for i := 0; i < dim; i++ {
			dot := 0.0
			for j := 0; j < dim; j++ {
				dot += p.At(i, j) * w[j]
			}
			x[i] += dot
		}
		// Covariance update P = P − P·S⁻¹·P (Joseph-free form).
		sp := p.Clone()                                   // will become S⁻¹·P
		if err := abftchol.SolveMany(l, sp); err != nil { // sp = S⁻¹ P
			log.Fatal(err)
		}
		newP := abftchol.NewMatrix(dim, dim)
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				dot := 0.0
				for k := 0; k < dim; k++ {
					dot += p.At(i, k) * sp.At(k, j)
				}
				newP.Set(i, j, p.At(i, j)-dot)
			}
		}
		p = newP
		for i := 0; i < dim; i++ { // keep symmetric + process noise
			for j := 0; j < i; j++ {
				v := (p.At(i, j) + p.At(j, i)) / 2
				p.Set(i, j, v)
				p.Set(j, i, v)
			}
			p.Add(i, i, procVar)
		}

		rms := 0.0
		for i := range x {
			d := x[i] - truth[i]
			rms += d * d
		}
		rms = math.Sqrt(rms / dim)
		fmt.Printf("%5d  %12.5f  %10d  %12d  %8.1f\n",
			step, rms, res.Attempts, res.Corrections, abftchol.LogDet(l))
	}
	fmt.Println("\nevery step's innovation factorization absorbed a memory error in place")
	fmt.Println("(attempts stayed 1) and the filter converged toward the noise floor.")
}
