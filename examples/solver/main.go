// Solver: a linear least-squares fit by normal equations — one of the
// workloads the paper's introduction motivates — running on the
// fault-injected Enhanced Online-ABFT factorization.
//
// We build an overdetermined system X·w ≈ y with a known weight
// vector, form the regularized normal equations (XᵀX + λI)·w = Xᵀy,
// factor the SPD left-hand side while a storage error strikes the
// factor mid-run, and recover the weights anyway.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"abftchol"
)

const (
	rows   = 2048 // observations
	params = 256  // fitted parameters (a multiple of the block size)
	lambda = 1e-3 // ridge term keeping the normal equations comfortably SPD
)

func main() {
	rng := rand.New(rand.NewSource(2016))

	// Ground-truth weights and a noisy design matrix.
	truth := make([]float64, params)
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}
	x := abftchol.NewMatrix(rows, params)
	y := make([]float64, rows)
	for i := 0; i < rows; i++ {
		dot := 0.0
		for j := 0; j < params; j++ {
			v := rng.NormFloat64()
			x.Set(i, j, v)
			dot += v * truth[j]
		}
		y[i] = dot + 0.01*rng.NormFloat64() // small observation noise
	}

	// Normal equations: A = XᵀX + λI (SPD), b = Xᵀy.
	a := abftchol.NewMatrix(params, params)
	for i := 0; i < params; i++ {
		for j := i; j < params; j++ {
			s := 0.0
			for r := 0; r < rows; r++ {
				s += x.At(r, i) * x.At(r, j)
			}
			a.Set(i, j, s)
			a.Set(j, i, s)
		}
		a.Add(i, i, lambda)
	}
	b := make([]float64, params)
	for j := 0; j < params; j++ {
		s := 0.0
		for r := 0; r < rows; r++ {
			s += x.At(r, j) * y[r]
		}
		b[j] = s
	}

	// Factor A under fault injection: a memory bit corrupts an
	// already-factored block right before it is read again. Enhanced
	// Online-ABFT verifies before the read and repairs it in place.
	res, err := abftchol.Run(abftchol.Options{
		Profile:          abftchol.Laptop(),
		N:                params,
		Scheme:           abftchol.SchemeEnhanced,
		ConcurrentRecalc: true,
		Data:             a,
		Scenarios:        []abftchol.Scenario{abftchol.StorageError(4, 1e4)},
	})
	if err != nil {
		log.Fatal(err)
	}
	w := append([]float64(nil), b...)
	if err := abftchol.Solve(res.L, w); err != nil {
		log.Fatal(err)
	}

	maxErr := 0.0
	for i := range truth {
		d := w[i] - truth[i]
		if d < 0 {
			d = -d
		}
		if d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("least-squares fit of %d parameters from %d observations\n", params, rows)
	fmt.Printf("  injected faults          %d (corrected in place: %d elements)\n",
		len(res.Injections), res.Corrections)
	fmt.Printf("  factorization attempts   %d\n", res.Attempts)
	fmt.Printf("  factor residual          %.3g\n", abftchol.Residual(a, res.L))
	fmt.Printf("  max weight error         %.4f (vs noise floor ~0.01)\n", maxErr)
	if res.Attempts == 1 && res.Corrections > 0 {
		fmt.Println("  -> the storage error was repaired mid-factorization; no redo needed")
	}
}
