// Tuning: explore the paper's two tuning decisions on the simulated
// evaluation machines —
//
//  1. Optimization 2's §V-B decision model: should checksum updating
//     run on the CPU or on a concurrent GPU stream? (CPU wins on
//     Tardis/Fermi, GPU wins on Bulldozer64/Kepler.)
//  2. Optimization 3's verification interval K: overhead against
//     protection as K grows.
package main

import (
	"fmt"
	"log"

	"abftchol"
)

func main() {
	for _, prof := range []abftchol.Profile{abftchol.Tardis(), abftchol.Bulldozer64()} {
		fmt.Printf("== %s (GPU %s, block %d) ==\n\n", prof.Name, prof.GPU.Name, prof.BlockSize)

		fmt.Println("optimization 2: checksum-update placement by the decision model")
		fmt.Printf("%10s  %10s\n", "n", "placement")
		for _, n := range []int{5120, 10240, 20480, prof.MaxN} {
			p := abftchol.DecideUpdatePlacement(prof, n, prof.BlockSize, 1)
			fmt.Printf("%10d  %10v\n", n, p)
		}
		fmt.Println()

		fmt.Println("measured: placement choices at the largest size")
		n := prof.MaxN
		base, err := abftchol.Run(abftchol.Options{Profile: prof, N: n, Scheme: abftchol.SchemeNone})
		if err != nil {
			log.Fatal(err)
		}
		for _, place := range []abftchol.Placement{abftchol.PlaceInline, abftchol.PlaceCPU, abftchol.PlaceGPU, abftchol.PlaceAuto} {
			res, err := abftchol.Run(abftchol.Options{
				Profile: prof, N: n, Scheme: abftchol.SchemeEnhanced,
				ConcurrentRecalc: true, Placement: place,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  placement %-7v  time %8.4fs  overhead %5.2f%%\n",
				place, res.Time, (res.Time/base.Time-1)*100)
		}
		fmt.Println()

		fmt.Println("optimization 3: verification interval K (overhead falls, protection window grows)")
		fmt.Printf("%4s  %10s  %9s  %16s\n", "K", "time", "overhead", "verified blocks")
		for _, k := range []int{1, 2, 3, 5, 8} {
			res, err := abftchol.Run(abftchol.Options{
				Profile: prof, N: n, Scheme: abftchol.SchemeEnhanced,
				K: k, ConcurrentRecalc: true, Placement: abftchol.PlaceAuto,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%4d  %9.4fs  %8.2f%%  %16d\n",
				k, res.Time, (res.Time/base.Time-1)*100, res.VerifiedBlocks)
		}
		fmt.Println()
	}
	fmt.Println("choose K by the machine's error rate: larger K lowers overhead but")
	fmt.Println("widens the window in which a storage error can slip into a GEMM input.")
}
