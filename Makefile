# Single source of truth for the verification gates. CI
# (.github/workflows/ci.yml) runs exactly these targets, so a green
# `make ci` locally means a green pipeline.

GO ?= go

.PHONY: build test race lint lint-bench ci fmt bench trace-demo serve-smoke campaign-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race gate takes a while (internal/core re-runs the factorization
# property tests under the detector); it is still part of `make ci`.
race:
	$(GO) test -race ./...

# lint = formatting + go vet + the repository's own analyzer suite
# (cmd/abftlint — see docs/LINTING.md for the current roster; the
# `./...` pattern covers internal/, cmd/, and tools/, so the analyzers
# lint their own implementation too). The -nolint-report pass audits
# every //nolint escape and fails on missing justifications.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./cmd/abftlint ./...
	$(GO) run ./cmd/abftlint -nolint-report ./...
	$(GO) run ./tools/escapecheck -check

# Time the analyzer suite itself: one full module load/type-check
# (BenchmarkLoadRepo) and one pass of all registered analyzers over it
# (BenchmarkSuite). The current figures live in docs/LINTING.md; rerun
# this when adding an analyzer to keep them honest. lintbudget then
# gates the measured suite time against the committed BENCH_lint.json
# baseline (fail past 3x): a suite that quietly tripled its own cost
# is a regression, not noise. Re-record with
# `go run ./tools/lintbudget -update` when the roster changes.
lint-bench:
	mkdir -p artifacts
	$(GO) test -run '^$$' -bench 'BenchmarkLoadRepo|BenchmarkSuite|BenchmarkSummaries|BenchmarkHotpath' -benchmem \
		./tools/analyzers/analysis | tee artifacts/lint-bench.txt
	$(GO) run ./tools/lintbudget | tee artifacts/lint-budget.txt

# Rewrite files in place to satisfy the formatting gate.
fmt:
	gofmt -w .

# Benchmarks plus a deterministic metrics snapshot of the full
# experiment sweep, so a perf investigation always has the matching
# kernel/verification counters next to the timings. sweepbench times
# the full `-exp all` sweep serial-cold vs parallel-cold vs warm-cache
# (verifying byte-identity along the way) and records the comparison
# in BENCH_sweep.json at the repo root. relbench runs the default
# fault-injection campaign grid serial vs parallel and records coverage
# rates with Wilson intervals in BENCH_reliability.json.
bench:
	mkdir -p artifacts
	$(GO) test -bench=. -benchmem ./... | tee artifacts/bench.txt
	$(GO) run ./cmd/abftchol -exp all -quick -metrics-out artifacts/bench-metrics.json > /dev/null
	$(GO) run ./tools/sweepbench -out BENCH_sweep.json -metrics-out artifacts/sweep-cache-metrics.json
	$(GO) run ./tools/blasbench -out BENCH_blas.json
	$(GO) run ./tools/relbench -out BENCH_reliability.json

# End-to-end check of the job daemon (docs/SERVICE.md): build abftd,
# boot it on a random port, drive a submit → poll → fetch session,
# prove dedup and warm-cache submissions execute zero kernels, and
# SIGTERM through a graceful drain — twice, restarting against the
# same result store. The transcript lands in artifacts/serve-smoke.txt
# (CI uploads it).
serve-smoke:
	mkdir -p artifacts
	$(GO) run ./tools/servesmoke

# Kill-and-resume check of the reliability campaign engine
# (docs/RELIABILITY.md): build abftchol, run a reference campaign to
# completion, SIGKILL an identical journaled campaign mid-shard, resume
# from the torn journal, and prove the resumed report is byte-identical
# to the uninterrupted one. The transcript lands in
# artifacts/campaign-smoke.txt (CI uploads it).
campaign-smoke:
	mkdir -p artifacts
	$(GO) run ./tools/campaignsmoke

# The observability artifacts CI uploads: a Perfetto-loadable Chrome
# trace of the fig8 sweep's last run plus the sweep's metrics
# snapshot (see docs/OBSERVABILITY.md for how to read both).
trace-demo:
	mkdir -p artifacts
	$(GO) run ./cmd/abftchol -exp fig8 -quick \
		-trace-out artifacts/fig8-trace.json \
		-metrics-out artifacts/fig8-metrics.json > artifacts/fig8.txt
	@echo "wrote artifacts/fig8-trace.json artifacts/fig8-metrics.json artifacts/fig8.txt"

ci: build lint race
