package abftchol

import (
	"strings"
	"testing"
)

func TestFactorSPDQuickstart(t *testing.T) {
	a := NewSPD(256, 1)
	l, res, err := FactorSPD(a, Laptop(), SchemeEnhanced)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, l); r > 1e-12 {
		t.Fatalf("residual %g", r)
	}
	if res.Time <= 0 || res.GFLOPS <= 0 {
		t.Fatal("timing missing")
	}
	if res.Scheme != SchemeEnhanced {
		t.Fatal("scheme not recorded")
	}
}

func TestFactorSPDRejectsNonSquare(t *testing.T) {
	if _, _, err := FactorSPD(NewMatrix(4, 6), Laptop(), SchemeNone); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestSolveRoundTrip(t *testing.T) {
	n := 128
	a := NewSPD(n, 2)
	b := make([]float64, n)
	want := make([]float64, n)
	for i := range want {
		want[i] = float64(i%7) - 3
	}
	// b = A*want
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += a.At(i, j) * want[j]
		}
		b[i] = s
	}
	l, _, err := FactorSPD(a, Laptop(), SchemeOnline)
	if err != nil {
		t.Fatal(err)
	}
	if err := Solve(l, b); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if d := b[i] - want[i]; d > 1e-8 || d < -1e-8 {
			t.Fatalf("x[%d] off by %g", i, d)
		}
	}
}

func TestInjectionThroughPublicAPI(t *testing.T) {
	a := NewSPD(256, 3)
	res, err := Run(Options{
		Profile:          Laptop(),
		N:                256,
		Scheme:           SchemeEnhanced,
		ConcurrentRecalc: true,
		Data:             a,
		Scenarios:        []Scenario{StorageError(4, 1e5), ComputationError(5, 1e5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 1 || res.Corrections == 0 {
		t.Fatalf("enhanced did not correct in place: %+v", res)
	}
	if r := Residual(a, res.L); r > 1e-10 {
		t.Fatalf("residual %g after correction", r)
	}
	if len(res.Injections) != 2 {
		t.Fatalf("injections = %v", res.Injections)
	}
}

func TestProfilesAndDecision(t *testing.T) {
	if _, err := ProfileByName("tardis"); err != nil {
		t.Fatal(err)
	}
	if _, err := ProfileByName("bogus"); err == nil {
		t.Fatal("bogus profile accepted")
	}
	if p := DecideUpdatePlacement(Tardis(), 20480, 256, 1); p != PlaceCPU {
		t.Fatalf("tardis placement %v", p)
	}
	if p := DecideUpdatePlacement(Bulldozer64(), 30720, 512, 1); p != PlaceGPU {
		t.Fatalf("bulldozer64 placement %v", p)
	}
}

func TestRunExperimentByID(t *testing.T) {
	out, err := RunExperiment("table7", ExperimentConfig{CapabilityN: 5120})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "enhanced-online-abft") {
		t.Fatalf("output:\n%s", out)
	}
	if _, err := RunExperiment("fig99", ExperimentConfig{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if got := len(ExperimentIDs()); got != 12 {
		t.Fatalf("%d experiment ids", got)
	}
}

func TestVariantThroughPublicAPI(t *testing.T) {
	a := NewSPD(128, 5)
	res, err := Run(Options{
		Profile: Laptop(), N: 128, Scheme: SchemeEnhanced,
		Variant: RightLooking, ConcurrentRecalc: true, Data: a,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Variant != RightLooking {
		t.Fatal("variant not recorded")
	}
	if r := Residual(a, res.L); r > 1e-12 {
		t.Fatalf("right-looking residual %g", r)
	}
}

func TestCampaignThroughPublicAPI(t *testing.T) {
	scen := Campaign(CampaignConfig{Blocks: 10, BlockSize: 32, RatePerIteration: 0.5, Seed: 3})
	if len(scen) == 0 {
		t.Fatal("empty campaign")
	}
	again := Campaign(CampaignConfig{Blocks: 10, BlockSize: 32, RatePerIteration: 0.5, Seed: 3})
	if len(again) != len(scen) {
		t.Fatal("campaign not deterministic")
	}
	for _, s := range scen {
		if s.BJ >= s.Iter || s.BI < s.Iter {
			t.Fatalf("campaign target (%d,%d)@%d outside the live factored region", s.BI, s.BJ, s.Iter)
		}
	}
}

func TestMultiVectorThroughPublicAPI(t *testing.T) {
	a := NewSPD(128, 6)
	res, err := Run(Options{
		Profile: Laptop(), N: 128, Scheme: SchemeEnhanced,
		ChecksumVectors: 4, ConcurrentRecalc: true, Data: a,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, res.L); r > 1e-12 {
		t.Fatalf("m=4 residual %g", r)
	}
}

func TestInverseThroughPublicAPI(t *testing.T) {
	a := NewSPD(64, 7)
	l, _, err := FactorSPD(a, Laptop(), SchemeOnline)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := Inverse(l)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check A·A⁻¹ ≈ I on a few entries.
	for i := 0; i < 64; i += 13 {
		s := 0.0
		for k := 0; k < 64; k++ {
			s += a.At(i, k) * inv.At(k, i)
		}
		if d := s - 1; d > 1e-9 || d < -1e-9 {
			t.Fatalf("diag of A*inv = %g", s)
		}
	}
}

func TestOverheadModelExported(t *testing.T) {
	m := OverheadModel{N: 20480, B: 256, K: 1}
	if m.EnhancedAsymptotic() <= m.OnlineAsymptotic() {
		t.Fatal("enhanced asymptote must exceed online at K=1")
	}
}

func TestLogDet(t *testing.T) {
	a := NewSPD(64, 4)
	l, _, err := FactorSPD(a, Laptop(), SchemeNone)
	if err != nil {
		t.Fatal(err)
	}
	if d := LogDet(l); d <= 0 {
		// A = G·Gᵀ + n·I has eigenvalues > n > 1, so log det > 0.
		t.Fatalf("logdet = %g", d)
	}
}

func TestChooseKThroughPublicAPI(t *testing.T) {
	c := ChooseK(Tardis(), 5120, 0, 1, []int{1, 4})
	if c.BestK != 4 {
		t.Fatalf("fault-free tuning chose %d", c.BestK)
	}
}

func TestReliabilityThroughPublicAPI(t *testing.T) {
	w := ReliabilityWorkload{N: 20480, B: 256, Seconds: 10.5}
	perRun := ExpectedStorageErrors(FITPerMbit(500), w)
	if perRun <= 0 {
		t.Fatal("no expected errors at 500 FIT/Mbit")
	}
	perIter := StorageErrorsPerIteration(FITPerMbit(500), w)
	if d := perIter*80 - perRun; d > 1e-12 || d < -1e-12 {
		t.Fatalf("per-iteration conversion off: %g vs %g", perIter*80, perRun)
	}
}

func TestRefinedSolveThroughPublicAPI(t *testing.T) {
	n := 64
	a := NewSPD(n, 8)
	l, _, err := FactorSPD(a, Laptop(), SchemeEnhanced)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i)
	}
	x, res, err := SolveRefined(a, l, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != n || res > 1e-8 {
		t.Fatalf("refined solve: res=%g", res)
	}
	if c := ConditionEst(l, 40); c < 1 {
		t.Fatalf("condition %g", c)
	}
}
