module abftchol

go 1.24
