package core

import (
	"fmt"

	"abftchol/internal/fault"
)

// Run executes one (possibly fault-injected) Cholesky factorization
// under the configured scheme and returns its simulated timing and
// fault-tolerance accounting. On the real plane (Options.Data set) the
// returned Result.L holds the computed factor.
//
// Recovery follows the paper: errors the scheme can correct are
// repaired in place and the run continues; anything else — a
// propagated smear found by verification, a POTF2 fail-stop, or a
// rejected final result — restarts the whole factorization from the
// pristine input, up to Options.MaxAttempts times.
func Run(o Options) (Result, error) {
	nb, err := o.normalize()
	if err != nil {
		return Result{}, err
	}
	e := newExec(&o, nb)

	var runErr error
	attempts := 0
	for attempts < o.MaxAttempts {
		attempts++
		if o.Variant == RightLooking {
			runErr = e.runOnceRight()
		} else {
			runErr = e.runOnce()
		}
		if runErr == nil {
			runErr = e.finalCheck()
		}
		if runErr == nil {
			break
		}
		if attempts < o.MaxAttempts {
			e.reset()
		}
	}

	t := e.plat.Sync()
	res := Result{
		Scheme:         o.Scheme,
		Variant:        o.Variant,
		N:              o.N,
		B:              o.BlockSize,
		K:              o.K,
		Placement:      e.placement,
		Time:           t,
		Attempts:       attempts,
		Corrections:    e.corrected,
		VerifiedBlocks: e.verified,
		FailStop:       e.failstop,
		GPUStats:       e.plat.GPU.Stats(),
		CPUStats:       e.plat.CPU.Stats(),
		Trace:          e.trace,
		DataBytes:      8 * float64(o.N) * float64(o.N),
	}
	if o.Scheme.FaultTolerant() {
		res.ChecksumBytes = 8 * float64(o.ChecksumVectors) * float64(o.N) * float64(o.N) / float64(o.BlockSize)
	}
	if t > 0 {
		res.GFLOPS = choleskyFlops(o.N) / t / 1e9
	}
	for _, in := range e.led.History() {
		if in.Kind == fault.Propagated {
			res.PropagationEvents++
		} else {
			res.Injections = append(res.Injections, in)
		}
	}
	if e.a != nil && runErr == nil {
		res.L = e.a.Clone()
		res.L.LowerFromFull()
	}
	e.finalizeMetrics(&res)
	if runErr != nil {
		return res, fmt.Errorf("core: %s failed after %d attempts: %w", o.Scheme, attempts, runErr)
	}
	return res, nil
}

// runOnce performs one full pass of Algorithm 1 with the scheme's
// verification discipline woven in:
//
//	Offline:  encode; update checksums; verify nothing until the end.
//	Online:   encode; update; verify every block right after updating.
//	Enhanced: encode; update; verify every block right before reading
//	          (GEMM/TRSM inputs only every K-th iteration, Opt 3).
//
// abft:protocol driver steps=syrk,gemm,potf2,trsm
func (e *exec) runOnce() error {
	sch := e.opts.Scheme
	ft := sch.FaultTolerant()
	online := sch == SchemeOnline || sch == SchemeOnlineScrub
	if ft {
		e.encode()
	}
	for j := 0; j < e.nb; j++ {
		e.markIteration(j)
		e.inj.StorageTick(j)
		evPanelReady := e.sc.Record()
		m := e.nb - j - 1
		gate := j%e.opts.K == 0 // Optimization 3

		// Periodic scrub (SchemeOnlineScrub): re-verify every block
		// that will still be read, catching storage errors that struck
		// since the last scrub.
		if sch == SchemeOnlineScrub && gate && j > 0 {
			if err := e.verifyBlocks(e.liveBlocks(j)); err != nil {
				return err
			}
		}

		// --- diagonal update (SYRK) ---
		if sch == SchemeEnhanced {
			// Verify A and the LC row before SYRK reads them (Table I).
			if err := e.verifyBlocks(e.rowPanelAndDiag(j)); err != nil {
				return err
			}
		}
		e.syrk(j)
		if ft {
			e.stageUpdates(j, evPanelReady)
			e.updSYRK(j)
		}
		if online && j > 0 {
			// Post-update verification of the block SYRK wrote.
			if err := e.verifyBlocks([][2]int{{j, j}}); err != nil {
				return err
			}
		}
		if sch == SchemeEnhanced {
			// Verify A' before POTF2 reads it (Table I, POTF2 row).
			if err := e.verifyBlocks([][2]int{{j, j}}); err != nil {
				return err
			}
		}
		e.xferDiagD2H(j)

		// --- trailing panel update (GEMM), overlapped with POTF2 ---
		if m > 0 && j > 0 {
			if sch == SchemeEnhanced && gate {
				if err := e.verifyBlocks(e.trailingAndPanel(j)); err != nil {
					return err
				}
			}
			e.gemm(j)
			if ft {
				e.updGEMM(j)
			}
			if online {
				if err := e.verifyBlocks(e.panelBlocks(j)); err != nil {
					return err
				}
			}
		}

		// --- single-block factorization on the host (POTF2) ---
		if err := e.potf2(j); err != nil {
			return err
		}
		if ft {
			e.updPOTF2(j)
		}
		e.xferDiagH2D(j)
		if online {
			if err := e.verifyBlocks([][2]int{{j, j}}); err != nil {
				return err
			}
		}

		// --- panel solve (TRSM) ---
		if m > 0 {
			if sch == SchemeEnhanced {
				blocks := [][2]int{{j, j}}
				if gate {
					blocks = append(blocks, e.panelBlocks(j)...)
				}
				if err := e.verifyBlocks(blocks); err != nil {
					return err
				}
			}
			e.trsm(j)
			if ft {
				e.updTRSM(j)
			}
			if online {
				if err := e.verifyBlocks(e.panelBlocks(j)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// finalCheck decides whether the finished factorization is accepted.
// Offline-ABFT performs its one big end-of-run checksum verification
// here (that is the scheme). For every FT scheme the ledger then
// serves as the end-of-run acceptance test — the stand-in for the
// known-answer/residual check a user would run — rejecting factors
// that still carry corruption the checksums never saw. Plain MAGMA and
// CULA accept whatever they computed.
func (e *exec) finalCheck() error {
	sch := e.opts.Scheme
	if sch == SchemeOffline {
		if err := e.verifyBlocks(e.allLowerBlocks()); err != nil {
			return err
		}
	}
	if sch.FaultTolerant() && e.led.AnyCorrupt() {
		return fmt.Errorf("core: %w: %d block(s) still corrupted", ErrResultRejected, e.led.CorruptBlocks())
	}
	return nil
}
