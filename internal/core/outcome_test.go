package core

import (
	"fmt"
	"testing"
)

func TestOutcomePredicates(t *testing.T) {
	rej := fmt.Errorf("core: %w: 3 block(s) still corrupted", ErrResultRejected)
	wrapped := fmt.Errorf("core: online failed after 1 attempts: %w", rej)
	if !Rejected(rej) || !Rejected(wrapped) {
		t.Fatal("Rejected must see through Run's attempt wrapper")
	}
	if Uncorrectable(wrapped) || FailStop(wrapped) {
		t.Fatal("rejection misclassified")
	}

	unc := error(&errUncorrectable{BI: 3, BJ: 2, Cause: errFailStop})
	wrapped = fmt.Errorf("core: enhanced failed after 2 attempts: %w", unc)
	if !Uncorrectable(unc) || !Uncorrectable(wrapped) {
		t.Fatal("Uncorrectable must match through wrapping")
	}
	// A fail-stop cause inside an uncorrectable verdict is still a
	// fail-stop for classification purposes; both predicates hold.
	if !FailStop(wrapped) {
		t.Fatal("FailStop must see the wrapped POTF2 cause")
	}

	fs := fmt.Errorf("%w: block 4: not PD", errFailStop)
	if !FailStop(fs) || Uncorrectable(fs) || Rejected(fs) {
		t.Fatal("fail-stop misclassified")
	}
	if Rejected(nil) || Uncorrectable(nil) || FailStop(nil) {
		t.Fatal("nil error must match nothing")
	}
}

func TestParseSchemeRoundTrip(t *testing.T) {
	for _, s := range []Scheme{SchemeNone, SchemeCULA, SchemeOffline, SchemeOnline, SchemeEnhanced, SchemeOnlineScrub} {
		key := SchemeKey(s)
		got, err := ParseScheme(key)
		if err != nil {
			t.Fatalf("ParseScheme(%q): %v", key, err)
		}
		if got != s {
			t.Fatalf("ParseScheme(SchemeKey(%v)) = %v", s, got)
		}
	}
	if s, err := ParseScheme("NONE"); err != nil || s != SchemeNone {
		t.Fatalf("case-insensitive alias: %v, %v", s, err)
	}
	if _, err := ParseScheme("hybrid"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
