// Outcome inspection: exported predicates over the errors Run can
// return, so reliability campaigns can classify a trial without
// string-matching messages. Run wraps the terminal cause with %w at
// every layer, so these survive the attempt/scheme prefixes.

package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
)

// ErrResultRejected is the final-check failure: a fault-tolerant
// scheme finished the factorization but the model-plane ledger still
// records corrupted blocks, i.e. detection happened too late for
// correction. Campaigns count a run that ends here as silent
// corruption *of the factorization output* caught only by the offline
// audit.
var ErrResultRejected = errors.New("final result rejected")

// Rejected reports whether err is (or wraps) the final-check
// rejection.
func Rejected(err error) bool {
	return errors.Is(err, ErrResultRejected)
}

// Uncorrectable reports whether err is (or wraps) a verification
// failure where corruption was detected but exceeded the checksum
// code's correction capability (more than ⌊m/2⌋ errors in one block
// column, or an inconsistent syndrome).
func Uncorrectable(err error) bool {
	var u *errUncorrectable
	return errors.As(err, &u)
}

// FailStop reports whether err is (or wraps) a POTF2 fail-stop: the
// diagonal block lost positive definiteness, which the paper treats as
// an immediately detected, non-correctable abort.
func FailStop(err error) bool {
	return errors.Is(err, errFailStop)
}

// Wire codes for the outcome taxonomy. The abftd daemon stores and
// serves job failures as these codes (JobInfo.ErrorCode) so remote
// clients can reconstruct a typed error with ErrorFromCode instead of
// matching message text; the spellings are part of the HTTP API and
// must stay stable.
const (
	// CodeRejected is the final-audit rejection (ErrResultRejected).
	CodeRejected = "result_rejected"
	// CodeUncorrectable is detected-but-uncorrectable corruption.
	CodeUncorrectable = "uncorrectable"
	// CodeFailStop is the POTF2 positive-definiteness abort.
	CodeFailStop = "fail_stop"
	// CodeCanceled marks work stopped by cancellation (context.Canceled
	// or the daemon's own cancel paths).
	CodeCanceled = "canceled"
	// CodeTimeout marks work stopped by a deadline
	// (context.DeadlineExceeded or the daemon's job deadlines).
	CodeTimeout = "timeout"
)

// OutcomeCode maps an error onto its wire code, or "" when no typed
// predicate matches (an unclassified failure). Precedence mirrors
// reliability.Classify: an uncorrectable verdict wrapping a fail-stop
// cause codes as uncorrectable.
func OutcomeCode(err error) string {
	switch {
	case err == nil:
		return ""
	case Rejected(err):
		return CodeRejected
	case Uncorrectable(err):
		return CodeUncorrectable
	case FailStop(err):
		return CodeFailStop
	case errors.Is(err, context.Canceled):
		return CodeCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return CodeTimeout
	}
	return ""
}

// codedError is a reconstructed remote error: it renders the original
// message byte-for-byte (campaign and job wire bodies must not change
// under reconstruction) while unwrapping to the sentinel chain the
// code names, so the typed predicates classify it like the original.
type codedError struct {
	msg   string
	class error
}

func (e *codedError) Error() string { return e.msg }
func (e *codedError) Unwrap() error { return e.class }

// ErrorFromCode rebuilds a classified error from a wire code and the
// original message. The result satisfies the same typed predicate the
// original did (Rejected/Uncorrectable/FailStop, or errors.Is against
// context.Canceled/DeadlineExceeded) and renders msg exactly.
func ErrorFromCode(code, msg string) error {
	if msg == "" && code == "" {
		return nil
	}
	switch code {
	case CodeRejected:
		return &codedError{msg: msg, class: ErrResultRejected}
	case CodeUncorrectable:
		return &codedError{msg: msg, class: &errUncorrectable{Cause: errors.New(msg)}}
	case CodeFailStop:
		return &codedError{msg: msg, class: errFailStop}
	case CodeCanceled:
		return &codedError{msg: msg, class: context.Canceled}
	case CodeTimeout:
		return &codedError{msg: msg, class: context.DeadlineExceeded}
	}
	return errors.New(msg) //nolint:errflow // unknown or empty wire code: the caller accepts an unclassifiable reconstruction
}

// ParseScheme resolves the external spelling of a fault-tolerance
// scheme — the same words the CLI -scheme flag and the abftd job API
// accept.
func ParseScheme(s string) (Scheme, error) {
	switch strings.ToLower(s) {
	case "magma", "none":
		return SchemeNone, nil
	case "cula":
		return SchemeCULA, nil
	case "offline":
		return SchemeOffline, nil
	case "online":
		return SchemeOnline, nil
	case "enhanced":
		return SchemeEnhanced, nil
	case "scrub", "online+scrub":
		return SchemeOnlineScrub, nil
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}

// schemeKeys is the canonical external spelling of each scheme.
var schemeKeys = map[Scheme]string{
	SchemeNone:        "magma",
	SchemeCULA:        "cula",
	SchemeOffline:     "offline",
	SchemeOnline:      "online",
	SchemeEnhanced:    "enhanced",
	SchemeOnlineScrub: "scrub",
}

// SchemeKey returns the external spelling of a scheme, the inverse of
// ParseScheme.
func SchemeKey(s Scheme) string {
	if k, ok := schemeKeys[s]; ok {
		return k
	}
	return s.String()
}
