// Outcome inspection: exported predicates over the errors Run can
// return, so reliability campaigns can classify a trial without
// string-matching messages. Run wraps the terminal cause with %w at
// every layer, so these survive the attempt/scheme prefixes.

package core

import (
	"errors"
	"fmt"
	"strings"
)

// ErrResultRejected is the final-check failure: a fault-tolerant
// scheme finished the factorization but the model-plane ledger still
// records corrupted blocks, i.e. detection happened too late for
// correction. Campaigns count a run that ends here as silent
// corruption *of the factorization output* caught only by the offline
// audit.
var ErrResultRejected = errors.New("final result rejected")

// Rejected reports whether err is (or wraps) the final-check
// rejection.
func Rejected(err error) bool {
	return errors.Is(err, ErrResultRejected)
}

// Uncorrectable reports whether err is (or wraps) a verification
// failure where corruption was detected but exceeded the checksum
// code's correction capability (more than ⌊m/2⌋ errors in one block
// column, or an inconsistent syndrome).
func Uncorrectable(err error) bool {
	var u *errUncorrectable
	return errors.As(err, &u)
}

// FailStop reports whether err is (or wraps) a POTF2 fail-stop: the
// diagonal block lost positive definiteness, which the paper treats as
// an immediately detected, non-correctable abort.
func FailStop(err error) bool {
	return errors.Is(err, errFailStop)
}

// ParseScheme resolves the external spelling of a fault-tolerance
// scheme — the same words the CLI -scheme flag and the abftd job API
// accept.
func ParseScheme(s string) (Scheme, error) {
	switch strings.ToLower(s) {
	case "magma", "none":
		return SchemeNone, nil
	case "cula":
		return SchemeCULA, nil
	case "offline":
		return SchemeOffline, nil
	case "online":
		return SchemeOnline, nil
	case "enhanced":
		return SchemeEnhanced, nil
	case "scrub", "online+scrub":
		return SchemeOnlineScrub, nil
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}

// schemeKeys is the canonical external spelling of each scheme.
var schemeKeys = map[Scheme]string{
	SchemeNone:        "magma",
	SchemeCULA:        "cula",
	SchemeOffline:     "offline",
	SchemeOnline:      "online",
	SchemeEnhanced:    "enhanced",
	SchemeOnlineScrub: "scrub",
}

// SchemeKey returns the external spelling of a scheme, the inverse of
// ParseScheme.
func SchemeKey(s Scheme) string {
	if k, ok := schemeKeys[s]; ok {
		return k
	}
	return s.String()
}
