package core

import (
	"fmt"

	"abftchol/internal/obs"
)

// This file is core's half of the observability wiring: newExec
// attaches a hetsim observer so the platform streams per-kernel
// metrics into Options.Metrics as it launches, and finalizeMetrics
// folds in the run-level accounting (verifications, faults, restarts,
// slot contention) once the Result is assembled. The catalog of
// emitted names lives in internal/obs; docs/OBSERVABILITY.md
// documents every one.

// schemeKey maps a Scheme to its metric-name key. The keys must match
// obs.SchemeKeys (asserted by TestSchemeKeysMatchCatalog) so that
// scheme.runs.<key> and scheme.seconds.<key> are always registered.
func schemeKey(s Scheme) string {
	switch s {
	case SchemeNone:
		return "magma"
	case SchemeCULA:
		return "cula"
	case SchemeOffline:
		return "offline"
	case SchemeOnline:
		return "online"
	case SchemeEnhanced:
		return "enhanced"
	case SchemeOnlineScrub:
		return "scrub"
	}
	return "magma"
}

// finalizeMetrics records the run-level metrics after the Result has
// been assembled. Per-kernel metrics (launches, durations, transfers)
// have already streamed in through the platform observer.
func (e *exec) finalizeMetrics(res *Result) {
	m := e.opts.Metrics
	if m == nil {
		return
	}
	m.Inc("run.count")
	m.Add("run.attempts", int64(res.Attempts))
	m.Add("run.restarts", int64(res.Attempts-1))
	m.Add("run.failstops", int64(res.FailStop))
	m.Add("verify.blocks", int64(res.VerifiedBlocks))
	m.Add("verify.batches", int64(e.verifyBatches))
	m.Add("fault.injected", int64(len(res.Injections)))
	m.Add("fault.corrected", int64(res.Corrections))
	m.Add("fault.propagations", int64(res.PropagationEvents))
	m.AddValue("time.sim_seconds", res.Time)
	key := schemeKey(res.Scheme)
	m.Inc("scheme.runs." + key)
	m.AddValue("scheme.seconds."+key, res.Time)
	waits, delay := e.plat.GPU.Contention()
	m.Add("slot.waits.gpu", int64(waits))
	m.AddValue("slot.wait_seconds.gpu", delay)
	waits, delay = e.plat.CPU.Contention()
	m.Add("slot.waits.cpu", int64(waits))
	m.AddValue("slot.wait_seconds.cpu", delay)
}

// attachObservability turns on the run's instrumentation per the
// options: the platform observer feeding Options.Metrics and the
// timeline trace feeding Result.Trace.
func (e *exec) attachObservability() {
	if e.opts.Trace {
		e.trace = e.plat.StartTrace()
	}
	if e.opts.Metrics != nil {
		e.plat.Observe(obs.NewPlatformObserver(e.opts.Metrics))
	}
}

// markIteration drops an instant annotation for iteration j at the
// compute stream's current frontier, so an exported trace shows where
// each blocked iteration begins. No-op without a trace.
func (e *exec) markIteration(j int) {
	if e.trace == nil {
		return
	}
	e.trace.Mark(fmt.Sprintf("iter[%d]", j), e.sc.Done())
}
