// Package core implements the paper's contribution: MAGMA-style
// hybrid Cholesky decomposition (Algorithm 1) on a heterogeneous
// CPU+GPU platform, protected by three algorithm-based fault-tolerance
// schemes —
//
//   - Offline-ABFT (Huang & Abraham): encode once, maintain checksums,
//     verify only when the factorization finishes;
//   - Online-ABFT (Davies & Chen / FT-ScaLAPACK): verify every block
//     right after it is updated;
//   - Enhanced Online-ABFT (this paper): verify every block right
//     before it is read, which additionally catches storage errors that
//     strike between a block's last verification and its next use —
//
// plus the paper's three overhead optimizations: concurrent checksum
// recalculation on GPU streams (Opt 1), model-driven CPU/GPU placement
// of checksum updates (Opt 2), and verifying GEMM/TRSM inputs only
// every K iterations (Opt 3).
//
// One implementation serves two execution planes. When Options.Data is
// set, all kernels run real float64 arithmetic and fault injection
// flips real bits (used by tests and examples at modest n). When Data
// is nil, kernels carry only their cost model and fault effects are
// tracked symbolically in a ledger — this is how the paper-scale
// (20480²-30720²) experiments run. Timing comes from the hetsim
// discrete-event platform in both planes.
//
// Every run is observable: Options.Trace records the full kernel and
// transfer timeline for export, and Options.Metrics streams launch,
// verification, fault, and recovery counters into an
// internal/obs.Registry (see docs/OBSERVABILITY.md for the hook
// points and artifact formats).
package core

import (
	"fmt"

	"abftchol/internal/fault"
	"abftchol/internal/hetsim"
	"abftchol/internal/mat"
	"abftchol/internal/obs"
)

// Scheme selects the fault-tolerance variant.
type Scheme int

// Each scheme declares its verification discipline to the static
// analyzers (verifyread, chkflow) with an `abft:protocol scheme`
// annotation; docs/LINTING.md documents the convention.
const (
	// SchemeNone is plain MAGMA Algorithm 1: no checksums at all.
	//
	// abft:protocol scheme SchemeNone verify=none
	SchemeNone Scheme = iota
	// SchemeCULA is the vendor-library baseline of Figs 16-17: the
	// same hybrid algorithm executed at CULA R18's lower efficiency.
	//
	// abft:protocol scheme SchemeCULA verify=none
	SchemeCULA
	// SchemeOffline verifies checksums once, after the factorization.
	//
	// abft:protocol scheme SchemeOffline ft verify=final
	SchemeOffline
	// SchemeOnline verifies each block immediately after updating it.
	//
	// abft:protocol scheme SchemeOnline ft verify=post-write
	SchemeOnline
	// SchemeEnhanced verifies each block immediately before reading it
	// (the paper's contribution).
	//
	// abft:protocol scheme SchemeEnhanced ft verify=pre-read
	SchemeEnhanced
	// SchemeOnlineScrub is Online-ABFT plus a periodic memory scrub:
	// every K iterations, every still-live block is re-verified. It is
	// the natural alternative the paper's reference [28] suggests for
	// catching storage errors without pre-read verification; the
	// ext-scrub experiment compares it against the enhanced scheme.
	// Only the left-looking driver implements the scrub, so its
	// post-write ordering is enforced dynamically by the ext-scrub
	// experiment rather than statically here.
	//
	// abft:protocol scheme SchemeOnlineScrub ft verify=scrubbed
	SchemeOnlineScrub
)

var schemeNames = map[Scheme]string{
	SchemeNone:        "magma",
	SchemeCULA:        "cula",
	SchemeOffline:     "offline-abft",
	SchemeOnline:      "online-abft",
	SchemeEnhanced:    "enhanced-online-abft",
	SchemeOnlineScrub: "online-abft+scrub",
}

func (s Scheme) String() string {
	if n, ok := schemeNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// FaultTolerant reports whether the scheme maintains checksums.
func (s Scheme) FaultTolerant() bool { return s >= SchemeOffline }

// Placement says where checksum updates run (Optimization 2).
type Placement int

const (
	// PlaceAuto applies the paper's §V-B decision model.
	PlaceAuto Placement = iota
	// PlaceGPU runs checksum updates on a dedicated GPU stream.
	PlaceGPU
	// PlaceCPU runs checksum updates on the otherwise-idle host.
	PlaceCPU
	// PlaceInline runs checksum updates on the GPU compute stream,
	// fully serialized — the unoptimized baseline Figs 10-11 compare
	// against.
	PlaceInline
)

func (p Placement) String() string {
	switch p {
	case PlaceAuto:
		return "auto"
	case PlaceGPU:
		return "gpu"
	case PlaceCPU:
		return "cpu"
	case PlaceInline:
		return "inline"
	}
	return fmt.Sprintf("Placement(%d)", int(p))
}

// Options configures one factorization run.
type Options struct {
	// Profile is the machine to simulate (hetsim.Tardis(), ...).
	Profile hetsim.Profile
	// N is the matrix dimension; must be a multiple of the block size.
	N int
	// BlockSize overrides the profile's MAGMA block size when > 0.
	BlockSize int
	// Scheme picks the fault-tolerance variant.
	Scheme Scheme
	// Variant selects the blocked formulation: LeftLooking (MAGMA's
	// inner-product Algorithm 1, the paper's choice, default) or
	// RightLooking (the outer-product form, provided as an ablation).
	Variant Variant
	// K is Optimization 3's verification interval for GEMM/TRSM inputs
	// (Enhanced only). K <= 1 verifies every iteration.
	K int
	// ChecksumVectors is the number of weighted checksum vectors per
	// block (default 2, the paper's implementation). Larger even
	// values buy multi-error correction — m vectors repair up to m/2
	// wrong elements per block column (§IV's generalization) — at
	// proportionally higher encode/update/verify cost.
	ChecksumVectors int
	// ConcurrentRecalc enables Optimization 1: checksum recalculations
	// fan out over the device's concurrent-kernel streams instead of
	// serializing on the compute stream.
	ConcurrentRecalc bool
	// Placement is Optimization 2's choice for checksum updates.
	Placement Placement
	// Scenarios are the soft errors to inject.
	Scenarios []fault.Scenario
	// Data, when non-nil, holds the SPD input for a real-arithmetic
	// run; it is not modified (the executor works on a copy). When
	// nil the run is cost-model only.
	Data *mat.Matrix
	// MaxAttempts bounds the restart loop when recovery requires
	// redoing the factorization (default 3).
	MaxAttempts int
	// Trace records the full kernel/transfer timeline in Result.Trace
	// (costs memory proportional to the kernel count; meant for small
	// runs and schedule assertions). Export it with
	// obs.WriteChromeTrace / obs.WriteJSONL.
	Trace bool
	// Metrics, when non-nil, receives the run's observability
	// counters and histograms (see internal/obs's catalog and
	// docs/OBSERVABILITY.md): kernel launches and durations by class,
	// transfers, verifications, fault accounting, restarts, slot
	// contention. The same registry may accumulate several runs.
	Metrics *obs.Registry
}

// normalize fills defaults and validates; it returns the block count.
func (o *Options) normalize() (nb int, err error) {
	if o.Profile.BlockSize == 0 {
		return 0, fmt.Errorf("core: Options.Profile is required")
	}
	if o.BlockSize <= 0 {
		o.BlockSize = o.Profile.BlockSize
	}
	if o.N <= 0 || o.N%o.BlockSize != 0 {
		return 0, fmt.Errorf("core: N=%d must be a positive multiple of the block size %d", o.N, o.BlockSize)
	}
	if o.K < 1 {
		o.K = 1
	}
	if o.ChecksumVectors == 0 {
		o.ChecksumVectors = 2
	}
	if o.ChecksumVectors < 2 {
		return 0, fmt.Errorf("core: ChecksumVectors=%d, need at least 2", o.ChecksumVectors)
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Data != nil && (o.Data.Rows != o.N || o.Data.Cols != o.N) {
		return 0, fmt.Errorf("core: Data is %dx%d, want %dx%d", o.Data.Rows, o.Data.Cols, o.N, o.N)
	}
	return o.N / o.BlockSize, nil
}

// Result reports one factorization run.
type Result struct {
	Scheme    Scheme
	Variant   Variant
	N, B, K   int
	Placement Placement // resolved placement (Auto -> CPU or GPU)

	// Time is the simulated wall-clock of the whole run including any
	// restarts; GFLOPS is n³/3 divided by it.
	Time   float64
	GFLOPS float64

	// Attempts is 1 plus the number of restarts; Corrections counts
	// repaired elements; VerifiedBlocks counts checksum verifications.
	Attempts       int
	Corrections    int
	VerifiedBlocks int
	// FailStop counts POTF2 positive-definiteness failures hit.
	FailStop int

	// Injections is everything the injector fired (all attempts).
	Injections []fault.Injection
	// PropagationEvents counts reads of corrupted blocks by update
	// kernels — how far wrongness spread before (or instead of) being
	// repaired. Zero means every error was caught before any use.
	PropagationEvents int

	// DataBytes is the input matrix footprint in device memory and
	// ChecksumBytes the checksum matrix on top of it — Table VI §5's
	// space overhead is ChecksumBytes/DataBytes = m/B.
	DataBytes     float64
	ChecksumBytes float64

	// GPUStats and CPUStats give per-class kernel accounting.
	GPUStats hetsim.Stats
	CPUStats hetsim.Stats

	// L is the computed factor (real plane only).
	L *mat.Matrix

	// Trace is the recorded timeline (only when Options.Trace is set).
	Trace *hetsim.Trace
}
