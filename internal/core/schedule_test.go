package core

import (
	"testing"

	"abftchol/internal/hetsim"
)

// These tests assert the *schedule structure* the paper's Figure 1/2
// describe, using the recorded timeline: POTF2 hides under GEMM,
// Optimization 1 actually realizes kernel concurrency, and checksum
// updates overlap compute when placed off the critical path.

func tracedRun(t *testing.T, o Options) Result {
	t.Helper()
	o.Trace = true
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("no trace recorded")
	}
	return res
}

func TestPOTF2HiddenUnderGEMM(t *testing.T) {
	// MAGMA's whole point (Fig. 1): the CPU's POTF2 runs while the GPU
	// does the big panel GEMM. Most POTF2 time must overlap GEMM time.
	res := tracedRun(t, Options{Profile: hetsim.Tardis(), N: 10240, Scheme: SchemeNone})
	tr := res.Trace
	potf2 := 0.0
	for _, sp := range tr.ByName("potf2") {
		potf2 += sp.Duration()
	}
	if potf2 <= 0 {
		t.Fatal("no POTF2 spans")
	}
	overlap := tr.OverlapTime("potf2", "gemm")
	if frac := overlap / potf2; frac < 0.7 {
		t.Fatalf("only %.0f%% of POTF2 hidden under GEMM", frac*100)
	}
}

func TestGEMMNeverOverlapsItself(t *testing.T) {
	// BLAS-3 kernels saturate the device: two GEMMs must serialize.
	res := tracedRun(t, Options{Profile: hetsim.Bulldozer64(), N: 10240, Scheme: SchemeNone})
	if c := res.Trace.MaxConcurrency(hetsim.ClassGEMM); c != 1 {
		t.Fatalf("GEMM concurrency %d, want 1", c)
	}
}

func TestOpt1RealizesConcurrency(t *testing.T) {
	serial := tracedRun(t, Options{Profile: hetsim.Bulldozer64(), N: 10240, Scheme: SchemeEnhanced})
	conc := tracedRun(t, Options{
		Profile: hetsim.Bulldozer64(), N: 10240, Scheme: SchemeEnhanced,
		ConcurrentRecalc: true,
	})
	if c := serial.Trace.MaxConcurrency(hetsim.ClassChkRecalc); c != 1 {
		t.Fatalf("serial recalc concurrency %d", c)
	}
	got := conc.Trace.MaxConcurrency(hetsim.ClassChkRecalc)
	pool := hetsim.Bulldozer64().GPU.ConcurrentKernels
	// The dispatch gap keeps the realized depth below the full pool
	// (kernels drain while later ones are still being launched), but
	// it must be deep concurrency, not a trickle.
	if got < 8 {
		t.Fatalf("opt1 realized concurrency %d, want >= 8", got)
	}
	if got > pool {
		t.Fatalf("concurrency %d exceeds the slot pool %d", got, pool)
	}
}

func TestGPUPlacedUpdatesOverlapCompute(t *testing.T) {
	// On Kepler, checksum updates on their own stream must timeshare
	// with the BLAS-3 kernels (that is Optimization 2's GPU case).
	res := tracedRun(t, Options{
		Profile: hetsim.Bulldozer64(), N: 10240, Scheme: SchemeEnhanced,
		ConcurrentRecalc: true, Placement: PlaceGPU,
	})
	tr := res.Trace
	upd := 0.0
	for _, sp := range tr.ByName("chkupd-gemm") {
		upd += sp.Duration()
	}
	if upd <= 0 {
		t.Fatal("no update spans")
	}
	overlap := tr.OverlapTime("chkupd-gemm", "gemm[")
	if frac := overlap / upd; frac < 0.5 {
		t.Fatalf("only %.0f%% of GPU-placed updates overlapped compute", frac*100)
	}
}

func TestCPUPlacedUpdatesRunOnCPU(t *testing.T) {
	res := tracedRun(t, Options{
		Profile: hetsim.Tardis(), N: 10240, Scheme: SchemeEnhanced,
		ConcurrentRecalc: true, Placement: PlaceCPU,
	})
	for _, sp := range res.Trace.ByName("chkupd-gemm") {
		if sp.Resource != "cpu" {
			t.Fatalf("CPU-placed update ran on %q", sp.Resource)
		}
	}
	// And the POTF2 checksum update always runs host-side.
	for _, sp := range res.Trace.ByName("chkupd-potf2") {
		if sp.Resource != "cpu" {
			t.Fatalf("Algorithm 2 ran on %q", sp.Resource)
		}
	}
}

func TestTransfersAppearPerIteration(t *testing.T) {
	n, b := 10240, hetsim.Tardis().BlockSize
	res := tracedRun(t, Options{Profile: hetsim.Tardis(), N: n, Scheme: SchemeNone})
	xfers := res.Trace.ByName("xfer")
	// Plain MAGMA moves each diagonal block down and back: 2 per
	// iteration.
	want := 2 * (n / b)
	if len(xfers) != want {
		t.Fatalf("%d transfers, want %d", len(xfers), want)
	}
}

func TestVerificationPrecedesKernelsItGuards(t *testing.T) {
	// Enhanced discipline: at every iteration the pre-SYRK
	// verification batch must complete before that iteration's SYRK
	// starts.
	res := tracedRun(t, Options{Profile: hetsim.Laptop(), N: 512, Scheme: SchemeEnhanced})
	tr := res.Trace
	for j := 1; j < 16; j++ {
		var syrks []hetsim.Span
		for _, sp := range tr.ByName("syrk[" + itoa(j) + "]") {
			if sp.Class == hetsim.ClassSYRK { // skip the chkupd-syrk twin
				syrks = append(syrks, sp)
			}
		}
		if len(syrks) != 1 {
			t.Fatalf("iteration %d: %d syrk spans", j, len(syrks))
		}
		// Find the latest recalc that finished before this SYRK; all
		// recalcs issued between the previous TRSM and this SYRK must
		// end before the SYRK begins. We approximate by checking no
		// recalc span overlaps the SYRK span itself (verification and
		// the kernel it guards are strictly ordered).
		for _, rc := range tr.ByClass(hetsim.ClassChkRecalc) {
			if rc.Overlaps(syrks[0]) {
				t.Fatalf("iteration %d: a checksum recalculation overlaps the SYRK it guards", j)
			}
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
