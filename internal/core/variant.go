package core

import (
	"fmt"

	"abftchol/internal/blas"
	"abftchol/internal/checksum"
	"abftchol/internal/fault"
	"abftchol/internal/hetsim"
)

// Variant selects the blocked Cholesky formulation.
type Variant int

const (
	// LeftLooking is MAGMA's inner-product form (Algorithm 1), the one
	// the paper builds on: each block is written once, during its own
	// panel's iteration, and read O(n/B) times afterwards.
	LeftLooking Variant = iota
	// RightLooking is the outer-product form FT-ScaLAPACK protects:
	// the whole trailing submatrix is updated every iteration, so each
	// block is written O(n/B) times and read O(1) times. The paper
	// chose the inner-product form because it has more BLAS-3 work per
	// byte; this ablation also shows the fault-tolerance consequence —
	// pre-read verification must re-verify the whole trailing
	// submatrix every iteration, which is asymptotically more
	// expensive than the left-looking discipline.
	RightLooking
)

func (v Variant) String() string {
	switch v {
	case LeftLooking:
		return "left-looking"
	case RightLooking:
		return "right-looking"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// runOnceRight is the right-looking counterpart of runOnce. Per
// iteration j:
//
//	POTF2(j,j) on the host; TRSM of panel column j on the GPU;
//	trailing update A[j+1:, j+1:] -= L[j+1:, j]·L[j+1:, j]ᵀ on the GPU.
//
// The verification disciplines translate as: Online verifies each
// block right after it is written (diagonal after POTF2, panel after
// TRSM, the whole trailing submatrix after the update); Enhanced
// verifies right before reads (diagonal before POTF2, panel and L
// before TRSM, panel plus the whole trailing submatrix before the
// update, gated by K where §V-C allows).
//
// abft:protocol driver steps=potf2,trsm,trailingUpdate
func (e *exec) runOnceRight() error {
	sch := e.opts.Scheme
	ft := sch.FaultTolerant()
	if ft {
		e.encode()
	}
	for j := 0; j < e.nb; j++ {
		e.markIteration(j)
		e.inj.StorageTick(j)
		evPanelReady := e.sc.Record()
		m := e.nb - j - 1
		gate := j%e.opts.K == 0

		// --- single-block factorization (POTF2) ---
		if sch == SchemeEnhanced {
			if err := e.verifyBlocks([][2]int{{j, j}}); err != nil {
				return err
			}
		}
		e.xferDiagD2H(j)
		if err := e.potf2(j); err != nil {
			return err
		}
		if ft {
			e.updPOTF2(j)
		}
		e.xferDiagH2D(j)
		if sch == SchemeOnline {
			if err := e.verifyBlocks([][2]int{{j, j}}); err != nil {
				return err
			}
		}

		if m == 0 {
			break
		}

		// --- panel solve (TRSM) ---
		if sch == SchemeEnhanced {
			blocks := [][2]int{{j, j}}
			if gate {
				blocks = append(blocks, e.panelBlocks(j)...)
			}
			if err := e.verifyBlocks(blocks); err != nil {
				return err
			}
		}
		e.trsm(j)
		if ft {
			e.supd.Wait(evPanelReady)
			e.updTRSM(j)
		}
		evPanelSolved := e.sc.Record()
		if sch == SchemeOnline {
			if err := e.verifyBlocks(e.panelBlocks(j)); err != nil {
				return err
			}
		}

		// --- trailing update (SYRK over the whole remainder) ---
		if sch == SchemeEnhanced {
			// The update both reads and writes every trailing block
			// and reads the freshly solved panel: verify all of it
			// (panel ungated — its errors would propagate consistently
			// like SYRK's inputs in the left-looking form).
			blocks := e.panelBlocks(j)
			if gate {
				blocks = append(blocks, e.trailingBlocks(j)...)
			}
			if err := e.verifyBlocks(blocks); err != nil {
				return err
			}
		}
		e.trailingUpdate(j)
		if ft {
			// The checksum updates read the solved panel's data; with
			// CPU placement it crosses the link first.
			e.supd.Wait(evPanelSolved)
			if e.placement == PlaceCPU {
				e.sx.Wait(evPanelSolved)
				e.plat.Link.Transfer(e.sx, hetsim.DeviceToHost, 8*float64(m)*float64(e.b)*float64(e.b))
				e.supd.Wait(e.sx.Record())
			}
			e.updTrailing(j)
		}
		if sch == SchemeOnline {
			if err := e.verifyBlocks(e.trailingBlocks(j)); err != nil {
				return err
			}
		}
	}
	return nil
}

// trailingBlocks lists the lower blocks of the trailing submatrix
// A[j+1:, j+1:].
func (e *exec) trailingBlocks(j int) [][2]int {
	var out [][2]int
	for k := j + 1; k < e.nb; k++ {
		for i := k; i < e.nb; i++ {
			out = append(out, [2]int{i, k})
		}
	}
	return out
}

// trailingUpdate performs A[j+1:, j+1:] -= P·Pᵀ with P the factored
// panel column j. The real body applies the full symmetric update so
// diagonal blocks stay consistent with their column checksums; the
// kernel is charged at SYRK rates (hardware only computes the lower
// half).
func (e *exec) trailingUpdate(j int) {
	m := e.nb - j - 1
	if m == 0 {
		return
	}
	rows := m * e.b
	e.markPropagationTrailing(j)
	var body func()
	if e.a != nil {
		r0 := (j + 1) * e.b
		panel := e.a.Off(r0, j*e.b) // A[j+1:, j]
		body = func() {
			blas.DgemmParallel(blas.NoTrans, blas.Trans, rows, rows, e.b,
				-1, panel, e.a.Stride,
				panel, e.a.Stride,
				1, e.a.Off(r0, r0), e.a.Stride)
		}
	}
	e.plat.GPU.Launch(e.sc, hetsim.Kernel{
		Name:  fmt.Sprintf("trailing[%d]", j),
		Class: hetsim.ClassSYRK,
		Flops: float64(rows) * float64(rows) * float64(e.b),
		Slots: e.bigSlots,
		Body:  body,
	})
	for k := j + 1; k < e.nb; k++ {
		e.inj.KernelTick(fault.OpSYRK, j, k, k)
		for i := k + 1; i < e.nb; i++ {
			e.inj.KernelTick(fault.OpGEMM, j, i, k)
		}
	}
}

// markPropagationTrailing: the trailing update reads panel blocks
// L(i, j) whose *data* feeds both the kernel and the checksum update,
// so their corruption propagates checksum-consistently into every
// trailing block their row or column touches.
func (e *exec) markPropagationTrailing(j int) {
	if !e.led.AnyCorrupt() {
		return
	}
	for i := j + 1; i < e.nb; i++ {
		if !e.led.IsCorrupt(i, j) {
			continue
		}
		w := e.led.PendingWidth(i, j)
		// L(i,j) pollutes trailing row-block i and column-block i.
		for k := j + 1; k <= i; k++ {
			e.led.Propagate(i, j, i, k, j, true, w, -1)
		}
		for r := i; r < e.nb; r++ {
			e.led.Propagate(i, j, r, i, j, true, w, -1)
		}
	}
}

// updTrailing maintains the trailing blocks' checksums:
// chk(A[i,k]) -= chk(L[i,j])·L[k,j]ᵀ, one slab GEMM per trailing block
// column.
func (e *exec) updTrailing(j int) {
	m := e.nb - j - 1
	if m == 0 {
		return
	}
	for k := j + 1; k < e.nb; k++ {
		rows := e.nb - k
		var body func()
		if e.a != nil {
			k := k // capture
			body = func() {
				checksum.UpdateRankK(
					e.chk.View(e.m*k, k*e.b, e.m*rows, e.b),
					e.chk.View(e.m*k, j*e.b, e.m*rows, e.b),
					e.block(k, j))
			}
		}
		e.updDevice().Launch(e.supd, hetsim.Kernel{
			Name:  fmt.Sprintf("chkupd-trailing[%d,%d]", j, k),
			Class: hetsim.ClassChkUpdate,
			Flops: chkUpdateRankKFlops(e.m*rows, e.b, e.b),
			Slots: 1,
			Body:  body,
		})
	}
}
