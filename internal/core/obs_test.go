package core

import (
	"bytes"
	"testing"

	"abftchol/internal/fault"
	"abftchol/internal/hetsim"
	"abftchol/internal/mat"
	"abftchol/internal/obs"
	"abftchol/internal/overhead"
)

// TestSchemeKeysMatchCatalog pins the schemeKey mapping to the
// catalog's scheme.* name segments: a scheme whose key drifted away
// from obs.SchemeKeys would panic the registry at runtime.
func TestSchemeKeysMatchCatalog(t *testing.T) {
	known := map[string]bool{}
	for _, k := range obs.SchemeKeys {
		known[k] = true
	}
	for _, s := range []Scheme{SchemeNone, SchemeCULA, SchemeOffline, SchemeOnline, SchemeEnhanced, SchemeOnlineScrub} {
		if !known[schemeKey(s)] {
			t.Errorf("schemeKey(%s) = %q is not in obs.SchemeKeys", s, schemeKey(s))
		}
	}
}

// TestMetricsMatchAnalytic cross-checks the streamed kernel counters
// against both the left-looking schedule and internal/overhead's
// closed-form verification-count predictions, per scheme and K.
func TestMetricsMatchAnalytic(t *testing.T) {
	prof := hetsim.Laptop()
	n := 10 * prof.BlockSize
	nb := n / prof.BlockSize
	for _, tc := range []struct {
		scheme Scheme
		k      int
	}{
		{SchemeEnhanced, 1},
		{SchemeEnhanced, 3},
		{SchemeOnline, 1},
		{SchemeOffline, 1},
		{SchemeNone, 1},
	} {
		reg := obs.NewRegistry()
		res, err := Run(Options{
			Profile: prof, N: n, Scheme: tc.scheme, K: tc.k,
			ConcurrentRecalc: true, Placement: PlaceAuto, Metrics: reg,
		})
		if err != nil {
			t.Fatalf("%s K=%d: %v", tc.scheme, tc.k, err)
		}

		p := overhead.Params{N: n, B: prof.BlockSize, K: tc.k}
		var wantVerified int
		switch tc.scheme {
		case SchemeEnhanced:
			wantVerified = p.VerifiedBlocksEnhanced()
		case SchemeOnline:
			wantVerified = p.VerifiedBlocksOnline()
		case SchemeOffline:
			wantVerified = p.VerifiedBlocksOffline()
		}
		if res.VerifiedBlocks != wantVerified {
			t.Errorf("%s K=%d: result verified %d blocks, model predicts %d", tc.scheme, tc.k, res.VerifiedBlocks, wantVerified)
		}
		if got := reg.Counter("verify.blocks"); got != int64(wantVerified) {
			t.Errorf("%s K=%d: verify.blocks = %d, model predicts %d", tc.scheme, tc.k, got, wantVerified)
		}

		// Kernel launches follow Algorithm 1's schedule exactly.
		wantLaunches := map[string]int64{
			"kernel.launches.potf2": int64(nb),
			"kernel.launches.syrk":  int64(nb - 1),
			"kernel.launches.gemm":  int64(nb - 2),
			"kernel.launches.trsm":  int64(nb - 1),
		}
		if tc.scheme.FaultTolerant() {
			// One recalc kernel per verified block plus the encode;
			// one update kernel shadowing each factorization kernel.
			wantLaunches["kernel.launches.chk_recalc"] = int64(wantVerified) + 1
			wantLaunches["kernel.launches.chk_update"] = int64(4*nb - 4)
		} else {
			wantLaunches["kernel.launches.chk_recalc"] = 0
			wantLaunches["kernel.launches.chk_update"] = 0
		}
		for name, want := range wantLaunches {
			if got := reg.Counter(name); got != want {
				t.Errorf("%s K=%d: %s = %d, want %d", tc.scheme, tc.k, name, got, want)
			}
		}

		// The diagonal round-trips once per iteration in both directions.
		if got := reg.Counter("xfer.count.h2d"); got != int64(nb) {
			t.Errorf("%s K=%d: xfer.count.h2d = %d, want %d", tc.scheme, tc.k, got, nb)
		}
		if got := reg.Counter("run.count"); got != 1 {
			t.Errorf("%s K=%d: run.count = %d, want 1", tc.scheme, tc.k, got)
		}
		if got, want := reg.HistogramCount("verify.batch_blocks"), reg.Counter("verify.batches"); got != want {
			t.Errorf("%s K=%d: batch histogram count %d != verify.batches %d", tc.scheme, tc.k, got, want)
		}
	}
}

// metricsSnapshot runs o with a fresh registry and returns the
// serialized snapshot.
func metricsSnapshot(t *testing.T, o Options) []byte {
	t.Helper()
	o.Metrics = obs.NewRegistry()
	if _, err := Run(o); err != nil {
		t.Fatalf("%s: %v", o.Scheme, err)
	}
	snap, err := o.Metrics.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestMetricsSnapshotDeterministic asserts the documented guarantee:
// two runs with identical options (same seed on the real plane, same
// injected faults) produce byte-identical metrics snapshots, on both
// execution planes.
func TestMetricsSnapshotDeterministic(t *testing.T) {
	prof := hetsim.Laptop()
	comp := fault.DefaultComputation(2)
	comp.Delta = 1e3

	// Model plane, with a corrected fault and recovery in the mix.
	model := Options{
		Profile: prof, N: 8 * prof.BlockSize, Scheme: SchemeEnhanced, K: 2,
		ConcurrentRecalc: true, Placement: PlaceAuto,
		Scenarios: []fault.Scenario{comp},
	}
	if a, b := metricsSnapshot(t, model), metricsSnapshot(t, model); !bytes.Equal(a, b) {
		t.Error("model-plane snapshots differ between identical runs")
	}

	// Real plane: same generated SPD input both times.
	real := Options{
		Profile: prof, N: 4 * prof.BlockSize, Scheme: SchemeOnline,
		Data: mat.RandSPD(4*prof.BlockSize, 42),
	}
	a := metricsSnapshot(t, real)
	real.Data = mat.RandSPD(4*prof.BlockSize, 42)
	b := metricsSnapshot(t, real)
	if !bytes.Equal(a, b) {
		t.Error("real-plane snapshots differ between identical same-seed runs")
	}
}

// TestRestartAccounting injects an uncorrectable storage smear so the
// run restarts, and checks the restart surfaces in the metrics and as
// a trace mark.
func TestRestartAccounting(t *testing.T) {
	prof := hetsim.Laptop()
	stor := fault.DefaultStorage(2)
	stor.Delta = 1e3
	reg := obs.NewRegistry()
	res, err := Run(Options{
		Profile: prof, N: 8 * prof.BlockSize, Scheme: SchemeOffline,
		Scenarios: []fault.Scenario{stor},
		Metrics:   reg, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts < 2 {
		t.Skipf("scenario did not force a restart (attempts=%d)", res.Attempts)
	}
	if got := reg.Counter("run.restarts"); got != int64(res.Attempts-1) {
		t.Errorf("run.restarts = %d, want %d", got, res.Attempts-1)
	}
	marks := 0
	for _, m := range res.Trace.Marks {
		if m.Name == "restart" {
			marks++
		}
	}
	if marks != res.Attempts-1 {
		t.Errorf("trace has %d restart marks, want %d", marks, res.Attempts-1)
	}
}
