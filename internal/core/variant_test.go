package core

import (
	"testing"

	"abftchol/internal/fault"
	"abftchol/internal/hetsim"
	"abftchol/internal/mat"
)

func rightOpts(n int, scheme Scheme) Options {
	o := laptopOpts(n, scheme)
	o.Variant = RightLooking
	return o
}

func TestRightLookingMatchesReference(t *testing.T) {
	for _, n := range []int{32, 96, 256} {
		o := rightOpts(n, SchemeNone)
		res := mustRun(t, o)
		checkFactor(t, o, res)
	}
}

func TestRightLookingEqualsLeftLookingFactor(t *testing.T) {
	n := 192
	left := laptopOpts(n, SchemeEnhanced)
	right := rightOpts(n, SchemeEnhanced)
	lr := mustRun(t, left)
	rr := mustRun(t, right)
	if mat.MaxAbsDiff(lr.L, rr.L) > 1e-9 {
		t.Fatalf("variants disagree by %g", mat.MaxAbsDiff(lr.L, rr.L))
	}
}

func TestRightLookingAllSchemesCorrect(t *testing.T) {
	for _, sch := range []Scheme{SchemeOffline, SchemeOnline, SchemeEnhanced} {
		o := rightOpts(160, sch)
		res := mustRun(t, o)
		checkFactor(t, o, res)
		if res.Attempts != 1 || res.Corrections != 0 {
			t.Fatalf("%s right-looking: %+v", sch, res)
		}
	}
}

func TestRightLookingEnhancedCorrectsInjections(t *testing.T) {
	// Right-looking retires each block the moment its column is
	// factored and never reads it again, so storage errors must target
	// still-live trailing data to be observable before the end.
	stor := fault.DefaultStorage(4)
	stor.BI, stor.BJ = 6, 5 // trailing block, still read and written
	stor.Delta = 1e5
	comp := fault.DefaultComputation(3)
	comp.Op = fault.OpSYRK // trailing update output in the right-looking form
	comp.Delta = 1e5
	o := rightOpts(256, SchemeEnhanced)
	o.Scenarios = []fault.Scenario{stor, comp}
	res := mustRun(t, o)
	checkFactor(t, o, res)
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d", res.Attempts)
	}
	if res.Corrections < 2 {
		t.Fatalf("corrections = %d", res.Corrections)
	}
}

func TestRightLookingOfflineRestartsOnStorageError(t *testing.T) {
	stor := fault.DefaultStorage(4)
	stor.BI, stor.BJ = 6, 5 // live trailing block: the damage propagates
	stor.Delta = 1e6
	o := rightOpts(256, SchemeOffline)
	o.Scenarios = []fault.Scenario{stor}
	res := mustRun(t, o)
	checkFactor(t, o, res)
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", res.Attempts)
	}
}

func TestRightLookingRetiredBlocksEscapePreReadVerification(t *testing.T) {
	// The flip side of the ablation: a storage error in an
	// already-retired L block is invisible to the enhanced pre-read
	// discipline in the right-looking form (nothing ever reads the
	// block again), so only the end-of-run acceptance test catches it
	// and the whole factorization must be redone. The left-looking
	// form re-reads every factored block and repairs the same error in
	// place — a second reason for the paper's inner-product choice.
	stor := fault.DefaultStorage(4) // default target (4,3): retired at iteration 4
	stor.Delta = 1e5
	right := rightOpts(256, SchemeEnhanced)
	right.Scenarios = []fault.Scenario{stor}
	rr := mustRun(t, right)
	checkFactor(t, right, rr)
	if rr.Attempts != 2 {
		t.Fatalf("right-looking attempts = %d, want 2 (retired block unprotected)", rr.Attempts)
	}
	left := laptopOpts(256, SchemeEnhanced)
	left.Scenarios = []fault.Scenario{stor}
	lr := mustRun(t, left)
	if lr.Attempts != 1 {
		t.Fatalf("left-looking attempts = %d, want 1 (repaired on re-read)", lr.Attempts)
	}
}

func TestRightLookingVerificationVolumeComparable(t *testing.T) {
	// Both disciplines verify Θ(N³/6K) blocks — right-looking re-checks
	// every trailing block per iteration, left-looking re-checks the LD
	// slab — so the volumes land within a few percent of each other.
	left := mustRun(t, Options{Profile: hetsim.Laptop(), N: 512, Scheme: SchemeEnhanced})
	right := mustRun(t, Options{Profile: hetsim.Laptop(), N: 512, Scheme: SchemeEnhanced, Variant: RightLooking})
	lo, hi := left.VerifiedBlocks, right.VerifiedBlocks
	if lo > hi {
		lo, hi = hi, lo
	}
	if float64(hi)/float64(lo) > 1.2 {
		t.Fatalf("verification volumes diverge: left %d, right %d", left.VerifiedBlocks, right.VerifiedBlocks)
	}
}

func TestRightLookingOverheadHigher(t *testing.T) {
	// Model plane at paper scale: the enhanced right-looking form
	// carries visibly more FT overhead — the quantitative argument for
	// the paper's inner-product choice.
	prof := hetsim.Tardis()
	base := mustRun(t, Options{Profile: prof, N: 10240, Scheme: SchemeNone, Variant: RightLooking})
	left := mustRun(t, Options{Profile: prof, N: 10240, Scheme: SchemeEnhanced,
		ConcurrentRecalc: true, Placement: PlaceAuto})
	right := mustRun(t, Options{Profile: prof, N: 10240, Scheme: SchemeEnhanced, Variant: RightLooking,
		ConcurrentRecalc: true, Placement: PlaceAuto})
	leftBase := mustRun(t, Options{Profile: prof, N: 10240, Scheme: SchemeNone})
	leftOvh := left.Time/leftBase.Time - 1
	rightOvh := right.Time/base.Time - 1
	if rightOvh <= leftOvh {
		t.Fatalf("right-looking overhead %.2f%% not above left-looking %.2f%%", rightOvh*100, leftOvh*100)
	}
}

func TestRightLookingModelMatchesReal(t *testing.T) {
	stor := fault.DefaultStorage(4)
	stor.Delta = 1e5
	for _, sch := range []Scheme{SchemeEnhanced, SchemeOffline} {
		real := rightOpts(256, sch)
		real.Scenarios = []fault.Scenario{stor}
		rr := mustRun(t, real)
		model := real
		model.Data = nil
		model.Scenarios = []fault.Scenario{stor}
		mr := mustRun(t, model)
		if rr.Attempts != mr.Attempts {
			t.Fatalf("%s right-looking: real attempts %d, model %d", sch, rr.Attempts, mr.Attempts)
		}
	}
}

func TestVariantString(t *testing.T) {
	if LeftLooking.String() != "left-looking" || RightLooking.String() != "right-looking" {
		t.Fatal("variant names wrong")
	}
	if Variant(9).String() == "" {
		t.Fatal("unknown variant must render")
	}
}
