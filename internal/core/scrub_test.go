package core

import (
	"testing"

	"abftchol/internal/fault"
	"abftchol/internal/hetsim"
)

func TestScrubSchemeCorrectWithoutErrors(t *testing.T) {
	o := laptopOpts(160, SchemeOnlineScrub)
	res := mustRun(t, o)
	checkFactor(t, o, res)
	if res.Attempts != 1 || res.Corrections != 0 {
		t.Fatalf("%+v", res)
	}
}

func TestScrubCatchesStorageErrorAtGate(t *testing.T) {
	// With K=1 the scrub runs every iteration, so the storage error is
	// repaired before the iteration's reads — like the enhanced
	// scheme, but by brute force.
	sc := fault.DefaultStorage(4)
	sc.Delta = 1e5
	o := laptopOpts(256, SchemeOnlineScrub)
	o.K = 1
	o.Scenarios = []fault.Scenario{sc}
	res := mustRun(t, o)
	checkFactor(t, o, res)
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", res.Attempts)
	}
	if res.Corrections == 0 {
		t.Fatal("scrub did not correct")
	}
}

func TestScrubMissesErrorInsideWindow(t *testing.T) {
	// With K=4, an error striking a non-gate iteration is consumed
	// before the next scrub; the damage is checksum-consistent and the
	// run must be redone — the window the enhanced scheme closes.
	sc := fault.DefaultStorage(5) // 5 % 4 != 0
	sc.Delta = 1e5
	o := laptopOpts(256, SchemeOnlineScrub)
	o.K = 4
	o.Scenarios = []fault.Scenario{sc}
	res := mustRun(t, o)
	checkFactor(t, o, res)
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (error inside the scrub window)", res.Attempts)
	}
}

func TestScrubEnhancedEquivalentProtectionAtK1(t *testing.T) {
	// Both close the storage-error window completely at K=1...
	for _, sch := range []Scheme{SchemeEnhanced, SchemeOnlineScrub} {
		for iter := 2; iter < 7; iter++ {
			sc := fault.DefaultStorage(iter)
			sc.Delta = 1e4
			o := laptopOpts(256, sch)
			o.K = 1
			o.Scenarios = []fault.Scenario{sc}
			res := mustRun(t, o)
			if res.Attempts != 1 {
				t.Fatalf("%s iter %d: attempts %d", sch, iter, res.Attempts)
			}
		}
	}
}

func TestScrubCostsFarMoreThanEnhanced(t *testing.T) {
	// ...but the scrub verifies the whole live triangle every
	// iteration — Θ(N²) blocks per scrub against the enhanced scheme's
	// targeted pre-reads — and the simulated overhead shows it.
	prof := hetsim.Tardis()
	base := mustRun(t, Options{Profile: prof, N: 10240, Scheme: SchemeNone})
	enh := mustRun(t, Options{Profile: prof, N: 10240, Scheme: SchemeEnhanced,
		K: 1, ConcurrentRecalc: true, Placement: PlaceAuto})
	scrub := mustRun(t, Options{Profile: prof, N: 10240, Scheme: SchemeOnlineScrub,
		K: 1, ConcurrentRecalc: true, Placement: PlaceAuto})
	enhOvh := enh.Time/base.Time - 1
	scrubOvh := scrub.Time/base.Time - 1
	if scrubOvh < 1.5*enhOvh {
		t.Fatalf("scrub overhead %.2f%% not clearly above enhanced %.2f%%", scrubOvh*100, enhOvh*100)
	}
	if scrub.VerifiedBlocks <= enh.VerifiedBlocks {
		t.Fatalf("scrub verified %d <= enhanced %d", scrub.VerifiedBlocks, enh.VerifiedBlocks)
	}
}

func TestScrubModelMatchesReal(t *testing.T) {
	for _, k := range []int{1, 4} {
		sc := fault.DefaultStorage(5)
		sc.Delta = 1e5
		real := laptopOpts(256, SchemeOnlineScrub)
		real.K = k
		real.Scenarios = []fault.Scenario{sc}
		rr := mustRun(t, real)
		model := real
		model.Data = nil
		model.Scenarios = []fault.Scenario{sc}
		mr := mustRun(t, model)
		if rr.Attempts != mr.Attempts {
			t.Fatalf("K=%d: real attempts %d, model %d", k, rr.Attempts, mr.Attempts)
		}
	}
}

func TestScrubSchemeName(t *testing.T) {
	if SchemeOnlineScrub.String() != "online-abft+scrub" {
		t.Fatal("name wrong")
	}
	if !SchemeOnlineScrub.FaultTolerant() {
		t.Fatal("scrub scheme maintains checksums")
	}
}
