package core

import (
	"errors"
	"fmt"

	"abftchol/internal/blas"
	"abftchol/internal/checksum"
	"abftchol/internal/fault"
	"abftchol/internal/hetsim"
)

// This file launches every kernel and transfer of Algorithm 1 and its
// checksum bookkeeping. Each step method (a) records propagation of
// any pending corruption, (b) launches the simulated kernel (running
// the real arithmetic body on the real plane), and (c) gives the
// injector its chance to fire.

// errFailStop marks a POTF2 positive-definiteness failure: the paper's
// fail-stop outcome of an uncorrected error reaching the unblocked
// factorization.
var errFailStop = errors.New("core: POTF2 failed (matrix block not positive definite)")

// encode performs the one-time checksum encoding of the input matrix
// (real encode on the real plane, cost-only otherwise); with CPU
// placement the checksum matrix then crosses the link to the host
// (§VI-6a: 2n²/B elements).
func (e *exec) encode() {
	var body func()
	if e.a != nil {
		body = func() { e.chk = checksum.EncodeMatrixMulti(e.a, e.b, e.m) }
	}
	e.plat.GPU.Launch(e.sc, hetsim.Kernel{
		Name:  "chk-encode",
		Class: hetsim.ClassChkRecalc,
		Flops: encodeFlops(e.m, e.n),
		Bytes: 4 * float64(e.n) * float64(e.n),
		Slots: e.bigSlots,
		Body:  body,
	})
	if e.placement == PlaceCPU {
		e.sx.Wait(e.sc.Record())
		e.plat.Link.Transfer(e.sx, hetsim.DeviceToHost, 8*float64(e.m)*float64(e.n)*float64(e.n)/float64(e.b))
		e.supd.Wait(e.sx.Record())
	}
}

// syrk updates the diagonal block: A[j,j] -= LC·LCᵀ. The real body
// applies the full symmetric update (not just the lower triangle) so
// the block stays consistent with its column checksums.
func (e *exec) syrk(j int) {
	k := j * e.b
	if k == 0 {
		return
	}
	e.markPropagation(fault.OpSYRK, j)
	var body func()
	if e.a != nil {
		diag := e.block(j, j)
		body = func() {
			blas.DgemmParallel(blas.NoTrans, blas.Trans, e.b, e.b, k,
				-1, e.a.Off(j*e.b, 0), e.a.Stride,
				e.a.Off(j*e.b, 0), e.a.Stride,
				1, diag.Data, diag.Stride)
		}
	}
	e.plat.GPU.Launch(e.sc, hetsim.Kernel{
		Name:  fmt.Sprintf("syrk[%d]", j),
		Class: hetsim.ClassSYRK,
		Flops: syrkFlops(e.b, k),
		Slots: e.bigSlots,
		Body:  body,
	})
	e.inj.KernelTick(fault.OpSYRK, j, j, j)
}

// gemm updates the panel below the diagonal:
// A[j+1:, j] -= A[j+1:, 0:k]·A[j, 0:k]ᵀ.
func (e *exec) gemm(j int) {
	k := j * e.b
	m := e.nb - j - 1
	if k == 0 || m == 0 {
		return
	}
	rows := m * e.b
	e.markPropagation(fault.OpGEMM, j)
	var body func()
	if e.a != nil {
		r0 := (j + 1) * e.b
		body = func() {
			blas.DgemmParallel(blas.NoTrans, blas.Trans, rows, e.b, k,
				-1, e.a.Off(r0, 0), e.a.Stride,
				e.a.Off(j*e.b, 0), e.a.Stride,
				1, e.a.Off(r0, j*e.b), e.a.Stride)
		}
	}
	e.plat.GPU.Launch(e.sc, hetsim.Kernel{
		Name:  fmt.Sprintf("gemm[%d]", j),
		Class: hetsim.ClassGEMM,
		Flops: gemmFlops(rows, e.b, k),
		Slots: e.bigSlots,
		Body:  body,
	})
	for i := j + 1; i < e.nb; i++ {
		e.inj.KernelTick(fault.OpGEMM, j, i, j)
	}
}

// xferDiagD2H ships the updated diagonal block (plus its checksum row
// for FT schemes) to the host for POTF2.
func (e *exec) xferDiagD2H(j int) {
	bytes := blockBytes(e.b)
	if e.opts.Scheme.FaultTolerant() {
		bytes += 8 * float64(e.m) * float64(e.b)
	}
	e.sx.Wait(e.sc.Record())
	e.plat.Link.Transfer(e.sx, hetsim.DeviceToHost, bytes)
	e.scpu.Wait(e.sx.Record())
}

// potf2 factors the diagonal block on the host. On the real plane it
// returns errFailStop when the block is not positive definite — the
// paper's fail-stop outcome when a large uncorrected error reaches the
// unblocked factorization. On the model plane corruption rides through
// (matching a moderate-magnitude error that leaves the block positive
// definite) but any detectable smear is widened: the factorization's
// row mixing spreads it beyond single-row correctability.
func (e *exec) potf2(j int) error {
	var failed error
	var body func()
	if e.a != nil {
		diag := e.block(j, j)
		body = func() {
			if err := blas.Dpotf2(e.b, diag.Data, diag.Stride); err != nil {
				failed = fmt.Errorf("%w: block %d: %v", errFailStop, j, err)
				return
			}
			diag.LowerFromFull()
		}
	} else if pend := e.led.Pending(j, j); len(pend) > 0 {
		widened := make([]fault.Injection, len(pend))
		for i, in := range pend {
			if in.Detectable() && in.EffectiveWidth() < 2 {
				in.Width = 2
				in.Row = -1 // row mixing: positions no longer known
			}
			widened[i] = in
		}
		e.led.SetPending(j, j, widened)
	}
	e.plat.CPU.Launch(e.scpu, hetsim.Kernel{
		Name:  fmt.Sprintf("potf2[%d]", j),
		Class: hetsim.ClassPOTF2,
		Flops: potf2Flops(e.b),
		Slots: 1,
		Body:  body,
	})
	e.inj.KernelTick(fault.OpPOTF2, j, j, j)
	if failed != nil {
		e.failstop++
	}
	return failed
}

// xferDiagH2D returns the factored block (and checksum row) to the GPU
// and releases the TRSM and its checksum update.
func (e *exec) xferDiagH2D(j int) {
	bytes := blockBytes(e.b)
	ft := e.opts.Scheme.FaultTolerant()
	if ft {
		bytes += 8 * float64(e.m) * float64(e.b)
	}
	e.sx.Wait(e.scpu.Record())
	e.plat.Link.Transfer(e.sx, hetsim.HostToDevice, bytes)
	e.sc.Wait(e.sx.Record())
	if ft && e.supd != e.sc {
		e.supd.Wait(e.sx.Record())
	}
}

// trsm solves the panel: A[j+1:, j] = A[j+1:, j]·L[j,j]⁻ᵀ.
func (e *exec) trsm(j int) {
	m := e.nb - j - 1
	if m == 0 {
		return
	}
	rows := m * e.b
	e.markPropagation(fault.OpTRSM, j)
	var body func()
	if e.a != nil {
		diag := e.block(j, j)
		r0 := (j + 1) * e.b
		body = func() {
			blas.DtrsmParallel(blas.Right, blas.Trans, rows, e.b, 1,
				diag.Data, diag.Stride,
				e.a.Off(r0, j*e.b), e.a.Stride)
		}
	}
	e.plat.GPU.Launch(e.sc, hetsim.Kernel{
		Name:  fmt.Sprintf("trsm[%d]", j),
		Class: hetsim.ClassTRSM,
		Flops: trsmFlops(rows, e.b),
		Slots: e.bigSlots,
		Body:  body,
	})
	for i := j + 1; i < e.nb; i++ {
		e.inj.KernelTick(fault.OpTRSM, j, i, j)
	}
}

// ---- checksum updating (§IV-B), placed per Optimization 2 ----------

// updDevice returns the device the update stream belongs to.
func (e *exec) updDevice() *hetsim.Device {
	if e.placement == PlaceCPU {
		return e.plat.CPU
	}
	return e.plat.GPU
}

// stageUpdates prepares iteration j's checksum updates: the update
// stream must see the factored panel (ready since the previous
// iteration's TRSM), and with CPU placement the panel data crosses the
// link first (§VI-6b: n²/2 elements over the run).
func (e *exec) stageUpdates(j int, evPanelReady hetsim.Event) {
	e.supd.Wait(evPanelReady)
	k := j * e.b
	if e.placement == PlaceCPU && k > 0 {
		e.sx.Wait(evPanelReady)
		e.plat.Link.Transfer(e.sx, hetsim.DeviceToHost, 8*float64(e.b)*float64(k))
		e.supd.Wait(e.sx.Record())
	}
}

// updSYRK maintains chk(A[j,j]) -= chk(LC)·LCᵀ (Fig. 4).
func (e *exec) updSYRK(j int) {
	k := j * e.b
	if k == 0 {
		return
	}
	var body func()
	if e.a != nil {
		body = func() {
			checksum.UpdateRankK(e.chkView(j, j), e.chk.View(e.m*j, 0, e.m, k), e.a.View(j*e.b, 0, e.b, k))
		}
	}
	e.updDevice().Launch(e.supd, hetsim.Kernel{
		Name:  fmt.Sprintf("chkupd-syrk[%d]", j),
		Class: hetsim.ClassChkUpdate,
		Flops: chkUpdateRankKFlops(e.m, e.b, k),
		Slots: 1,
		Body:  body,
	})
}

// updGEMM maintains chk(A[i,j]) -= chk(LD_i)·LCᵀ for every panel row
// in one slab call (Fig. 5).
func (e *exec) updGEMM(j int) {
	k := j * e.b
	m := e.nb - j - 1
	if k == 0 || m == 0 {
		return
	}
	var body func()
	if e.a != nil {
		body = func() {
			checksum.UpdateRankK(
				e.chk.View(e.m*(j+1), j*e.b, e.m*m, e.b),
				e.chk.View(e.m*(j+1), 0, e.m*m, k),
				e.a.View(j*e.b, 0, e.b, k))
		}
	}
	e.updDevice().Launch(e.supd, hetsim.Kernel{
		Name:  fmt.Sprintf("chkupd-gemm[%d]", j),
		Class: hetsim.ClassChkUpdate,
		Flops: chkUpdateRankKFlops(e.m*m, e.b, k),
		Slots: 1,
		Body:  body,
	})
}

// updPOTF2 runs Algorithm 2 on the host alongside the block it just
// factored; the transformed checksum returns to the GPU with the block.
func (e *exec) updPOTF2(j int) {
	var body func()
	if e.a != nil {
		body = func() {
			checksum.UpdatePOTF2(e.chkView(j, j), e.block(j, j))
		}
	}
	e.plat.CPU.Launch(e.scpu, hetsim.Kernel{
		Name:  fmt.Sprintf("chkupd-potf2[%d]", j),
		Class: hetsim.ClassChkUpdate,
		Flops: chkUpdatePotf2Flops(e.m, e.b),
		Slots: 1,
		Body:  body,
	})
}

// updTRSM maintains chk(LB) = chk(B')·L⁻ᵀ for the whole panel slab
// (Fig. 7).
func (e *exec) updTRSM(j int) {
	m := e.nb - j - 1
	if m == 0 {
		return
	}
	var body func()
	if e.a != nil {
		body = func() {
			checksum.UpdateTRSM(e.chk.View(e.m*(j+1), j*e.b, e.m*m, e.b), e.block(j, j))
		}
	}
	e.updDevice().Launch(e.supd, hetsim.Kernel{
		Name:  fmt.Sprintf("chkupd-trsm[%d]", j),
		Class: hetsim.ClassChkUpdate,
		Flops: chkUpdateTrsmFlops(e.m*m, e.b),
		Slots: 1,
		Body:  body,
	})
}

// ---- block-set helpers for the verification batches ----------------

// rowPanelAndDiag lists the SYRK inputs at iteration j: the factored
// row panel LC = (j, 0..j-1) and the diagonal block (j, j).
func (e *exec) rowPanelAndDiag(j int) [][2]int {
	out := make([][2]int, 0, j+1)
	for k := 0; k < j; k++ {
		out = append(out, [2]int{j, k})
	}
	return append(out, [2]int{j, j})
}

// trailingAndPanel lists the GEMM inputs at iteration j beyond the row
// panel: the trailing slab LD = (i, 0..j-1) for i > j and the panel
// blocks B = (i, j).
func (e *exec) trailingAndPanel(j int) [][2]int {
	var out [][2]int
	for i := j + 1; i < e.nb; i++ {
		for k := 0; k < j; k++ {
			out = append(out, [2]int{i, k})
		}
		out = append(out, [2]int{i, j})
	}
	return out
}

// panelBlocks lists the blocks of panel column j below the diagonal.
func (e *exec) panelBlocks(j int) [][2]int {
	out := make([][2]int, 0, e.nb-j-1)
	for i := j + 1; i < e.nb; i++ {
		out = append(out, [2]int{i, j})
	}
	return out
}

// liveBlocks lists every block a scrub at iteration j must cover: the
// factored region that will still be read (blocks (i, k), k < j <= i)
// plus the untouched trailing region (i, k), j <= k <= i.
func (e *exec) liveBlocks(j int) [][2]int {
	var out [][2]int
	for k := 0; k < e.nb; k++ {
		lo := j
		if k > lo {
			lo = k
		}
		for i := lo; i < e.nb; i++ {
			out = append(out, [2]int{i, k})
		}
	}
	return out
}

// allLowerBlocks lists every block of the lower triangle (the
// Offline-ABFT end-of-run verification set).
func (e *exec) allLowerBlocks() [][2]int {
	var out [][2]int
	for j := 0; j < e.nb; j++ {
		for i := j; i < e.nb; i++ {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}
