package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// The partition property: the typed predicates split the constructor-
// produced error space so that every classified chain matches exactly
// one of Rejected/Uncorrectable/FailStop, at any %w wrap depth, and a
// deliberately severed chain matches none. This is the runtime
// countersignature of the errflow analyzer: errflow proves no code
// path severs a chain, this test proves the predicates stay mutually
// exclusive while chains survive.
func TestPredicatesPartitionWrappedChains(t *testing.T) {
	preds := []struct {
		name string
		fn   func(error) bool
	}{
		{"Rejected", Rejected},
		{"Uncorrectable", Uncorrectable},
		{"FailStop", FailStop},
	}
	// Production-shaped roots, each built the way the plane that owns
	// it builds it. Causes inside errUncorrectable are deliberately
	// unclassified here: a fail-stop cause under an uncorrectable
	// verdict matches both predicates by design (exec's Unwrap exposes
	// it), which is precedence, not partition, and is pinned by
	// TestOutcomePredicates.
	cases := []struct {
		name string
		err  error
		want string
	}{
		{"rejected", fmt.Errorf("core: online failed: %w", ErrResultRejected), "Rejected"},
		{"uncorrectable", &errUncorrectable{BI: 3, BJ: 2, Cause: errors.New("inconsistent syndrome")}, "Uncorrectable"},
		{"failstop", fmt.Errorf("%w: block 4: not positive definite", errFailStop), "FailStop"},
		{"coded rejected", ErrorFromCode(CodeRejected, "remote: final result rejected"), "Rejected"},
		{"coded uncorrectable", ErrorFromCode(CodeUncorrectable, "remote: block (1,1) corrupted"), "Uncorrectable"},
		{"coded failstop", ErrorFromCode(CodeFailStop, "remote: POTF2 failed"), "FailStop"},
	}
	for _, tc := range cases {
		err := tc.err
		for depth := 0; depth <= 8; depth++ {
			var matched []string
			for _, p := range preds {
				if p.fn(err) {
					matched = append(matched, p.name)
				}
			}
			if len(matched) != 1 || matched[0] != tc.want {
				t.Fatalf("%s at wrap depth %d: matched %v, want exactly [%s]", tc.name, depth, matched, tc.want)
			}
			if got := OutcomeCode(err); got != OutcomeCode(tc.err) {
				t.Fatalf("%s at wrap depth %d: OutcomeCode drifted to %q", tc.name, depth, got)
			}
			err = fmt.Errorf("layer %d: %w", depth, err)
		}
	}
}

// A severed chain — %v instead of %w anywhere in the stack — must
// match no predicate and carry no code, at every severing depth.
func TestSeveredChainMatchesNothing(t *testing.T) {
	root := fmt.Errorf("core: online failed: %w", ErrResultRejected)
	for severAt := 0; severAt < 4; severAt++ {
		err := root
		for depth := 0; depth < 4; depth++ {
			if depth == severAt {
				err = fmt.Errorf("layer %d: %v", depth, err) // severed on purpose
			} else {
				err = fmt.Errorf("layer %d: %w", depth, err)
			}
		}
		if Rejected(err) || Uncorrectable(err) || FailStop(err) {
			t.Fatalf("severed at %d: a predicate still matched %v", severAt, err)
		}
		if code := OutcomeCode(err); code != "" {
			t.Fatalf("severed at %d: OutcomeCode = %q, want empty", severAt, code)
		}
	}
}

// ErrorFromCode must render the original message byte-for-byte (wire
// bodies cannot change under reconstruction) and classify under the
// context sentinels for the cancellation codes.
func TestErrorFromCodeRoundTrip(t *testing.T) {
	msgs := map[string]string{
		CodeRejected:      "job j-000001 failed: final result rejected",
		CodeUncorrectable: "core: block (0,1) corrupted beyond checksum correction: x",
		CodeFailStop:      "core: POTF2 failed (matrix block not positive definite)",
		CodeCanceled:      "canceled: daemon shut down before the job started",
		CodeTimeout:       "timeout: job expired while queued",
	}
	for code, msg := range msgs {
		err := ErrorFromCode(code, msg)
		if err.Error() != msg {
			t.Fatalf("code %s: message %q, want %q", code, err.Error(), msg)
		}
		if got := OutcomeCode(err); got != code {
			t.Fatalf("code %s: round-tripped to %q", code, got)
		}
	}
	if !errors.Is(ErrorFromCode(CodeCanceled, "canceled by client"), context.Canceled) {
		t.Fatal("canceled code must satisfy errors.Is(err, context.Canceled)")
	}
	if !errors.Is(ErrorFromCode(CodeTimeout, "timeout"), context.DeadlineExceeded) {
		t.Fatal("timeout code must satisfy errors.Is(err, context.DeadlineExceeded)")
	}
	if ErrorFromCode("", "") != nil {
		t.Fatal("empty code and message must reconstruct nil")
	}
	if err := ErrorFromCode("someday_new_code", "future failure"); OutcomeCode(err) != "" || err.Error() != "future failure" {
		t.Fatal("unknown code must fall back to an unclassified error with the exact message")
	}
}
