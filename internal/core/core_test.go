package core

import (
	"strings"
	"testing"

	"abftchol/internal/fault"
	"abftchol/internal/hetsim"
	"abftchol/internal/mat"
)

// laptopOpts builds a real-plane configuration on the laptop profile
// (B=32) for an n x n SPD input.
func laptopOpts(n int, scheme Scheme) Options {
	return Options{
		Profile: hetsim.Laptop(),
		N:       n,
		Scheme:  scheme,
		Data:    mat.RandSPD(n, 12345),
	}
}

func mustRun(t *testing.T, o Options) Result {
	t.Helper()
	res, err := Run(o)
	if err != nil {
		t.Fatalf("%s run failed: %v", o.Scheme, err)
	}
	return res
}

func checkFactor(t *testing.T, o Options, res Result) {
	t.Helper()
	if res.L == nil {
		t.Fatal("no factor returned on real plane")
	}
	if r := mat.CholeskyResidual(o.Data, res.L); r > 1e-10 {
		t.Fatalf("%s residual %g", o.Scheme, r)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Run(Options{N: 128}); err == nil {
		t.Fatal("missing profile accepted")
	}
	o := Options{Profile: hetsim.Laptop(), N: 100} // not a multiple of 32
	if _, err := Run(o); err == nil {
		t.Fatal("bad N accepted")
	}
	o = laptopOpts(64, SchemeNone)
	o.Data = mat.New(32, 32)
	if _, err := Run(o); err == nil {
		t.Fatal("mis-sized data accepted")
	}
}

func TestPlainHybridMatchesReference(t *testing.T) {
	for _, n := range []int{32, 64, 96, 256} {
		o := laptopOpts(n, SchemeNone)
		res := mustRun(t, o)
		checkFactor(t, o, res)
		if res.Attempts != 1 || res.VerifiedBlocks != 0 || res.Corrections != 0 {
			t.Fatalf("plain run bookkeeping: %+v", res)
		}
		if res.Time <= 0 || res.GFLOPS <= 0 {
			t.Fatal("missing timing")
		}
	}
}

func TestAllFTSchemesCorrectWithoutErrors(t *testing.T) {
	for _, sch := range []Scheme{SchemeOffline, SchemeOnline, SchemeEnhanced} {
		o := laptopOpts(160, sch)
		res := mustRun(t, o)
		checkFactor(t, o, res)
		if res.Attempts != 1 {
			t.Fatalf("%s: attempts=%d without errors", sch, res.Attempts)
		}
		if res.Corrections != 0 {
			t.Fatalf("%s: phantom corrections=%d", sch, res.Corrections)
		}
	}
}

func TestSchemeVerificationVolumes(t *testing.T) {
	// Table I: Enhanced verifies O(n²) blocks per GEMM iteration while
	// Online verifies O(n); over the run Enhanced must do far more
	// verification, and Offline exactly one pass over the triangle.
	n := 320 // N = 10 blocks
	off := mustRun(t, laptopOpts(n, SchemeOffline))
	on := mustRun(t, laptopOpts(n, SchemeOnline))
	enh := mustRun(t, laptopOpts(n, SchemeEnhanced))
	nb := n / 32
	if off.VerifiedBlocks != nb*(nb+1)/2 {
		t.Fatalf("offline verified %d blocks, want %d", off.VerifiedBlocks, nb*(nb+1)/2)
	}
	if on.VerifiedBlocks <= off.VerifiedBlocks {
		t.Fatal("online must verify more than offline")
	}
	if enh.VerifiedBlocks <= on.VerifiedBlocks {
		t.Fatalf("enhanced (%d) must verify more than online (%d)", enh.VerifiedBlocks, on.VerifiedBlocks)
	}
}

func TestEnhancedCorrectsStorageError(t *testing.T) {
	sc := fault.DefaultStorage(4)
	sc.Delta = 1e6
	o := laptopOpts(256, SchemeEnhanced)
	o.Scenarios = []fault.Scenario{sc}
	res := mustRun(t, o)
	checkFactor(t, o, res)
	if res.Attempts != 1 {
		t.Fatalf("enhanced restarted (%d attempts) on a storage error it must correct in place", res.Attempts)
	}
	if res.Corrections == 0 {
		t.Fatal("no correction recorded")
	}
	if len(res.Injections) != 1 || res.Injections[0].Kind != fault.Storage {
		t.Fatalf("injections = %v", res.Injections)
	}
}

func TestEnhancedCorrectsComputationError(t *testing.T) {
	sc := fault.DefaultComputation(3)
	sc.Delta = 1e6
	o := laptopOpts(256, SchemeEnhanced)
	o.Scenarios = []fault.Scenario{sc}
	res := mustRun(t, o)
	checkFactor(t, o, res)
	if res.Attempts != 1 {
		t.Fatalf("enhanced restarted (%d attempts) on a computation error", res.Attempts)
	}
	if res.Corrections == 0 {
		t.Fatal("no correction recorded")
	}
}

func TestEnhancedCorrectsBitFlipStorageError(t *testing.T) {
	sc := fault.DefaultStorage(5)
	sc.Bit = 58 // large exponent flip
	o := laptopOpts(256, SchemeEnhanced)
	o.Scenarios = []fault.Scenario{sc}
	res := mustRun(t, o)
	checkFactor(t, o, res)
	if res.Attempts != 1 || res.Corrections == 0 {
		t.Fatalf("bit-flip not corrected in place: %+v", res)
	}
}

func TestOnlineCorrectsComputationError(t *testing.T) {
	sc := fault.DefaultComputation(3)
	sc.Delta = 1e6
	o := laptopOpts(256, SchemeOnline)
	o.Scenarios = []fault.Scenario{sc}
	res := mustRun(t, o)
	checkFactor(t, o, res)
	if res.Attempts != 1 {
		t.Fatalf("online restarted (%d attempts) on a computation error it must correct", res.Attempts)
	}
	if res.Corrections == 0 {
		t.Fatal("no correction recorded")
	}
}

func TestOnlineRestartsOnStorageError(t *testing.T) {
	sc := fault.DefaultStorage(4)
	sc.Delta = 1e6
	o := laptopOpts(256, SchemeOnline)
	o.Scenarios = []fault.Scenario{sc}
	res := mustRun(t, o)
	checkFactor(t, o, res)
	if res.Attempts != 2 {
		t.Fatalf("online attempts = %d, want 2 (storage errors force a redo)", res.Attempts)
	}
}

func TestOfflineRestartsOnComputationError(t *testing.T) {
	sc := fault.DefaultComputation(3)
	sc.Delta = 1e6
	o := laptopOpts(256, SchemeOffline)
	o.Scenarios = []fault.Scenario{sc}
	res := mustRun(t, o)
	checkFactor(t, o, res)
	if res.Attempts != 2 {
		t.Fatalf("offline attempts = %d, want 2 (errors propagate past its end check)", res.Attempts)
	}
}

func TestOfflineRestartsOnStorageError(t *testing.T) {
	sc := fault.DefaultStorage(4)
	sc.Delta = 1e6
	o := laptopOpts(256, SchemeOffline)
	o.Scenarios = []fault.Scenario{sc}
	res := mustRun(t, o)
	checkFactor(t, o, res)
	if res.Attempts != 2 {
		t.Fatalf("offline attempts = %d, want 2", res.Attempts)
	}
	if res.FailStop == 0 {
		t.Fatal("a large storage error through SYRK must break positive definiteness")
	}
}

func TestPlainSchemeSilentlyCorrupted(t *testing.T) {
	// Negative control: without ABFT the same storage error yields a
	// wrong factor and nobody notices.
	sc := fault.DefaultStorage(4)
	sc.Delta = 1e-2 // small enough to keep the matrix positive definite
	o := laptopOpts(256, SchemeNone)
	o.Scenarios = []fault.Scenario{sc}
	res := mustRun(t, o)
	if res.Attempts != 1 {
		t.Fatal("plain MAGMA cannot detect anything")
	}
	if r := mat.CholeskyResidual(o.Data, res.L); r < 1e-9 {
		t.Fatalf("residual %g suspiciously clean; injection missing?", r)
	}
}

func TestOfflineNonPropagatingErrorCases(t *testing.T) {
	// Classic Offline-ABFT can repair an error at its end check only
	// if the error never propagated. In the left-looking form that
	// window barely exists: every panel block (i, j) is re-read as the
	// row panel of iteration i, so even a last-GEMM error reaches the
	// final diagonal and forces a redo...
	nb := 256 / 32
	late := fault.DefaultComputation(nb - 2)
	late.Delta = 1e4
	o := laptopOpts(256, SchemeOffline)
	o.Scenarios = []fault.Scenario{late}
	res := mustRun(t, o)
	checkFactor(t, o, res)
	if res.Attempts != 2 {
		t.Fatalf("left-looking attempts = %d; everything propagates in Algorithm 1", res.Attempts)
	}
	// ...whereas the right-looking form retires blocks immediately, so
	// a storage error in finished data sits unread and the end check
	// repairs it in place.
	retired := fault.DefaultStorage(4) // block (4,3), retired at iteration 4
	retired.Delta = 1e4
	ro := laptopOpts(256, SchemeOffline)
	ro.Variant = RightLooking
	ro.Scenarios = []fault.Scenario{retired}
	rres := mustRun(t, ro)
	checkFactor(t, ro, rres)
	if rres.Attempts != 1 {
		t.Fatalf("right-looking attempts = %d; a retired-block error is offline-correctable", rres.Attempts)
	}
	if rres.Corrections == 0 {
		t.Fatal("end-of-run correction missing")
	}
}

func TestCULARealPlaneCorrect(t *testing.T) {
	o := laptopOpts(160, SchemeCULA)
	res := mustRun(t, o)
	checkFactor(t, o, res)
	if res.VerifiedBlocks != 0 {
		t.Fatal("CULA baseline must not verify anything")
	}
}

func TestTRSMTargetedComputationError(t *testing.T) {
	sc := fault.DefaultComputation(3)
	sc.Op = fault.OpTRSM
	sc.Delta = 1e4
	for _, tc := range []struct {
		scheme   Scheme
		attempts int
	}{
		{SchemeEnhanced, 1}, // caught pre-SYRK when the block joins the row panel
		{SchemeOnline, 1},   // caught post-TRSM
	} {
		o := laptopOpts(256, tc.scheme)
		o.Scenarios = []fault.Scenario{sc}
		res := mustRun(t, o)
		checkFactor(t, o, res)
		if res.Attempts != tc.attempts {
			t.Fatalf("%s: attempts %d, want %d", tc.scheme, res.Attempts, tc.attempts)
		}
		if res.Corrections == 0 {
			t.Fatalf("%s: no corrections", tc.scheme)
		}
	}
}

func TestRestartGivesUpAfterMaxAttempts(t *testing.T) {
	// Two storage errors at different iterations: the first restart is
	// clean of scenario #1 but scenario #2 never fired... so make both
	// fire in attempt 1 and verify a clean second attempt succeeds;
	// then force failure exhaustion with MaxAttempts=1.
	sc := fault.DefaultStorage(4)
	sc.Delta = 1e6
	o := laptopOpts(256, SchemeOffline)
	o.Scenarios = []fault.Scenario{sc}
	o.MaxAttempts = 1
	_, err := Run(o)
	if err == nil {
		t.Fatal("expected failure with MaxAttempts=1")
	}
	if !strings.Contains(err.Error(), "after 1 attempts") {
		t.Fatalf("error = %v", err)
	}
}

func TestEnhancedWithKGateDelaysButRecovers(t *testing.T) {
	// With K=2 a computation error at an unverified iteration is
	// caught at the next gate via the row panel and still repaired
	// without a restart.
	sc := fault.DefaultComputation(3) // iteration 3 is not a gate when K=2
	sc.Delta = 1e4
	o := laptopOpts(256, SchemeEnhanced)
	o.K = 2
	o.Scenarios = []fault.Scenario{sc}
	res := mustRun(t, o)
	checkFactor(t, o, res)
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d", res.Attempts)
	}
	if res.Corrections == 0 {
		t.Fatal("row-smear correction missing")
	}
}

func TestOptKReducesVerification(t *testing.T) {
	o1 := laptopOpts(320, SchemeEnhanced)
	o1.K = 1
	o5 := laptopOpts(320, SchemeEnhanced)
	o5.K = 5
	r1 := mustRun(t, o1)
	r5 := mustRun(t, o5)
	if r5.VerifiedBlocks >= r1.VerifiedBlocks {
		t.Fatalf("K=5 verified %d blocks, K=1 verified %d", r5.VerifiedBlocks, r1.VerifiedBlocks)
	}
	if r5.Time >= r1.Time {
		t.Fatalf("K=5 (%g s) not faster than K=1 (%g s)", r5.Time, r1.Time)
	}
	checkFactor(t, o5, r5)
}

func TestModelPlaneMatchesRealPlaneOutcomes(t *testing.T) {
	// The cost-model plane must reproduce the recovery behaviour of
	// the real plane: same attempt counts for every scheme/error
	// combination.
	type cse struct {
		scheme Scheme
		sc     func() fault.Scenario
	}
	mkComp := func() fault.Scenario { s := fault.DefaultComputation(3); s.Delta = 1e6; return s }
	mkStor := func() fault.Scenario { s := fault.DefaultStorage(4); s.Delta = 1e6; return s }
	cases := []cse{
		{SchemeEnhanced, mkComp}, {SchemeEnhanced, mkStor},
		{SchemeOnline, mkComp}, {SchemeOnline, mkStor},
		{SchemeOffline, mkComp}, {SchemeOffline, mkStor},
	}
	for _, c := range cases {
		real := laptopOpts(256, c.scheme)
		real.Scenarios = []fault.Scenario{c.sc()}
		rr := mustRun(t, real)

		model := real
		model.Data = nil
		model.Scenarios = []fault.Scenario{c.sc()}
		mr := mustRun(t, model)

		if rr.Attempts != mr.Attempts {
			t.Errorf("%s/%s: real attempts %d, model attempts %d",
				c.scheme, c.sc().Kind, rr.Attempts, mr.Attempts)
		}
		if mr.L != nil {
			t.Error("model plane returned a factor")
		}
	}
}

func TestModelPlaneNoErrorAgreesOnWork(t *testing.T) {
	// Without faults, the two planes issue the identical kernel
	// sequence: same verified-block counts and same simulated time.
	o := laptopOpts(256, SchemeEnhanced)
	rr := mustRun(t, o)
	o.Data = nil
	mr := mustRun(t, o)
	if rr.VerifiedBlocks != mr.VerifiedBlocks {
		t.Fatalf("verified: real %d model %d", rr.VerifiedBlocks, mr.VerifiedBlocks)
	}
	if rr.Time != mr.Time {
		t.Fatalf("time: real %g model %g", rr.Time, mr.Time)
	}
}

func TestDecisionModelMatchesPaper(t *testing.T) {
	// §VII-D: the model picks the CPU on Tardis and the GPU on
	// Bulldozer64, across the whole sweep.
	tar := hetsim.Tardis()
	for _, n := range tar.Sizes() {
		if p := DecideUpdatePlacement(tar, n, tar.BlockSize, 1); p != PlaceCPU {
			t.Fatalf("tardis n=%d chose %v, want cpu", n, p)
		}
	}
	bul := hetsim.Bulldozer64()
	for _, n := range bul.Sizes() {
		if p := DecideUpdatePlacement(bul, n, bul.BlockSize, 1); p != PlaceGPU {
			t.Fatalf("bulldozer64 n=%d chose %v, want gpu", n, p)
		}
	}
}

func TestDecisionTimesFormulas(t *testing.T) {
	// Spot-check the closed forms at easy numbers: n=B (single block).
	tGPU, tCPU := DecisionTimes(DecisionInputs{N: 1000, B: 1000, K: 1, PGPU: 1, PCPU: 1, R: 1})
	nCho := 1e9 / 3
	nUpd := 2e9 / (3 * 1000)
	wantGPU := (nCho + 2*nUpd) / 1e9
	if diff := tGPU - wantGPU; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("tGPU = %g, want %g", tGPU, wantGPU)
	}
	if tCPU <= 0 || tCPU >= tGPU {
		t.Fatalf("tCPU = %g vs tGPU = %g", tCPU, tGPU)
	}
}

func TestOpt1ReducesEnhancedOverhead(t *testing.T) {
	// Model plane at paper scale on Bulldozer64, where concurrency
	// buys the most (Fig. 9).
	o := Options{Profile: hetsim.Bulldozer64(), N: 10240, Scheme: SchemeEnhanced, Placement: PlaceGPU}
	serial := mustRun(t, o)
	o.ConcurrentRecalc = true
	conc := mustRun(t, o)
	if conc.Time >= serial.Time {
		t.Fatalf("opt1 did not help: %g >= %g", conc.Time, serial.Time)
	}
}

func TestOpt2PlacementChangesTime(t *testing.T) {
	o := Options{Profile: hetsim.Tardis(), N: 10240, Scheme: SchemeEnhanced, ConcurrentRecalc: true}
	o.Placement = PlaceInline
	inline := mustRun(t, o)
	o.Placement = PlaceCPU
	cpu := mustRun(t, o)
	if cpu.Time >= inline.Time {
		t.Fatalf("opt2 (cpu) did not beat inline on tardis: %g >= %g", cpu.Time, inline.Time)
	}
	if cpu.Placement != PlaceCPU || inline.Placement != PlaceInline {
		t.Fatal("placement not recorded")
	}
}

func TestCULASlowerThanMAGMA(t *testing.T) {
	for _, prof := range []hetsim.Profile{hetsim.Tardis(), hetsim.Bulldozer64()} {
		magma := mustRun(t, Options{Profile: prof, N: 10240, Scheme: SchemeNone})
		cula := mustRun(t, Options{Profile: prof, N: 10240, Scheme: SchemeCULA})
		if cula.GFLOPS >= magma.GFLOPS {
			t.Fatalf("%s: CULA (%g GF) not slower than MAGMA (%g GF)", prof.Name, cula.GFLOPS, magma.GFLOPS)
		}
	}
}

func TestEnhancedOverheadBounded(t *testing.T) {
	// Fig. 14/15: with all optimizations on (K=3 sweep point), the
	// enhanced scheme stays within single-digit percent of MAGMA.
	for _, prof := range []hetsim.Profile{hetsim.Tardis(), hetsim.Bulldozer64()} {
		n := prof.MaxN
		base := mustRun(t, Options{Profile: prof, N: n, Scheme: SchemeNone})
		enh := mustRun(t, Options{
			Profile: prof, N: n, Scheme: SchemeEnhanced,
			ConcurrentRecalc: true, Placement: PlaceAuto, K: 3,
		})
		ovh := enh.Time/base.Time - 1
		if ovh > 0.10 {
			t.Fatalf("%s: enhanced overhead %.1f%% exceeds 10%%", prof.Name, ovh*100)
		}
		if ovh < 0 {
			t.Fatalf("%s: enhanced faster than plain (%.1f%%)? cost model broken", prof.Name, ovh*100)
		}
	}
}

func TestSchemeAndPlacementStrings(t *testing.T) {
	if SchemeEnhanced.String() != "enhanced-online-abft" || SchemeNone.String() != "magma" {
		t.Fatal("scheme names wrong")
	}
	if PlaceCPU.String() != "cpu" || PlaceAuto.String() != "auto" {
		t.Fatal("placement names wrong")
	}
	if Scheme(42).String() == "" || Placement(42).String() == "" {
		t.Fatal("unknown values must render")
	}
	if SchemeNone.FaultTolerant() || SchemeCULA.FaultTolerant() {
		t.Fatal("baselines are not fault tolerant")
	}
	if !SchemeOffline.FaultTolerant() {
		t.Fatal("offline is fault tolerant")
	}
}

func TestResultTimingMonotoneInN(t *testing.T) {
	prev := 0.0
	for _, n := range []int{2560, 5120, 7680} {
		r := mustRun(t, Options{Profile: hetsim.Tardis(), N: n, Scheme: SchemeNone})
		if r.Time <= prev {
			t.Fatalf("time not increasing with n: %g after %g", r.Time, prev)
		}
		prev = r.Time
	}
}

func TestErrUncorrectableMessage(t *testing.T) {
	e := &errUncorrectable{BI: 3, BJ: 2, Cause: errFailStop}
	if !strings.Contains(e.Error(), "(3,2)") {
		t.Fatalf("message %q", e.Error())
	}
}
