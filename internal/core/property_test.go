package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"abftchol/internal/fault"
	"abftchol/internal/hetsim"
	"abftchol/internal/mat"
)

// Property tests over the driver: for arbitrary (seeded) inputs,
// schemes, variants, and single-fault scenarios, the final factor on
// the real plane is always correct — the schemes differ only in how
// they get there.

func TestPropertyFactorAlwaysCorrect(t *testing.T) {
	f := func(rawSeed int64, rawScheme, rawVariant, rawN uint8) bool {
		schemes := []Scheme{SchemeNone, SchemeOffline, SchemeOnline, SchemeEnhanced}
		o := Options{
			Profile: hetsim.Laptop(),
			N:       96 + 32*int(rawN%4),
			Scheme:  schemes[int(rawScheme)%len(schemes)],
			Variant: Variant(int(rawVariant) % 2),
			Data:    mat.RandSPD(96+32*int(rawN%4), rawSeed),
		}
		res, err := Run(o)
		if err != nil {
			return false
		}
		return mat.CholeskyResidual(o.Data, res.L) < 1e-11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySingleFaultAlwaysRecovered(t *testing.T) {
	// Any single storage or computation error against any FT scheme
	// ends in a correct factor (in place or by redo).
	f := func(rawSeed int64, rawScheme, rawKind, rawIter uint8) bool {
		schemes := []Scheme{SchemeOffline, SchemeOnline, SchemeEnhanced}
		n := 256
		nb := n / 32
		iter := 1 + int(rawIter)%(nb-2)
		var sc fault.Scenario
		if rawKind%2 == 0 {
			sc = fault.DefaultStorage(iter)
		} else {
			sc = fault.DefaultComputation(iter)
		}
		sc.Delta = 1e5
		o := Options{
			Profile:     hetsim.Laptop(),
			N:           n,
			Scheme:      schemes[int(rawScheme)%len(schemes)],
			Scenarios:   []fault.Scenario{sc},
			Data:        mat.RandSPD(n, rawSeed),
			MaxAttempts: 4,
		}
		res, err := Run(o)
		if err != nil {
			return false
		}
		if len(res.Injections) != 1 {
			return false
		}
		return mat.CholeskyResidual(o.Data, res.L) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEnhancedNeverRestartsOnSingles(t *testing.T) {
	// The paper's core claim as a property: the enhanced scheme (K=1)
	// corrects any single error in still-live data in place.
	rng := rand.New(rand.NewSource(321))
	n := 256
	nb := n / 32
	for trial := 0; trial < 20; trial++ {
		iter := 1 + rng.Intn(nb-2)
		var sc fault.Scenario
		if rng.Intn(2) == 0 {
			sc = fault.DefaultStorage(iter)
		} else {
			sc = fault.DefaultComputation(iter)
			sc.BI = iter + 1 + rng.Intn(nb-iter-1)
			sc.BJ = iter
		}
		sc.Row = rng.Intn(32)
		sc.Col = rng.Intn(32)
		sc.Delta = float64(1+rng.Intn(1000)) * 100
		o := Options{
			Profile:   hetsim.Laptop(),
			N:         n,
			Scheme:    SchemeEnhanced,
			Scenarios: []fault.Scenario{sc},
			Data:      mat.RandSPD(n, int64(trial)),
		}
		res, err := Run(o)
		if err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, sc, err)
		}
		if res.Attempts != 1 {
			t.Fatalf("trial %d: enhanced restarted on %+v", trial, sc)
		}
		if mat.CholeskyResidual(o.Data, res.L) > 1e-10 {
			t.Fatalf("trial %d: wrong factor", trial)
		}
	}
}

func TestBlockSizeOverride(t *testing.T) {
	o := laptopOpts(256, SchemeEnhanced)
	o.BlockSize = 64 // instead of the profile's 32
	res := mustRun(t, o)
	checkFactor(t, o, res)
	if res.B != 64 {
		t.Fatalf("block size %d", res.B)
	}
	o.BlockSize = 48 // 256 % 48 != 0
	if _, err := Run(o); err == nil {
		t.Fatal("indivisible block size accepted")
	}
}

func TestSingleBlockMatrix(t *testing.T) {
	// n == B: one POTF2 and nothing else; every scheme must cope.
	for _, sch := range []Scheme{SchemeNone, SchemeOffline, SchemeOnline, SchemeEnhanced} {
		o := laptopOpts(32, sch)
		res := mustRun(t, o)
		checkFactor(t, o, res)
	}
}

func TestTraceSurvivesRestart(t *testing.T) {
	sc := fault.DefaultStorage(3)
	sc.Delta = 1e6
	o := laptopOpts(160, SchemeOffline)
	o.Scenarios = []fault.Scenario{sc}
	o.Trace = true
	res := mustRun(t, o)
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d", res.Attempts)
	}
	// The trace covers both attempts: roughly twice the POTF2 spans.
	potf2 := res.Trace.ByName("potf2")
	if len(potf2) < 9 { // 5 blocks x 2 attempts, minus the aborted tail
		t.Fatalf("trace has %d potf2 spans across a restart", len(potf2))
	}
}

func TestGFLOPSConsistency(t *testing.T) {
	res := mustRun(t, Options{Profile: hetsim.Tardis(), N: 10240, Scheme: SchemeNone})
	n := 10240.0
	want := n * n * n / 3 / res.Time / 1e9
	if d := res.GFLOPS - want; d > 1e-9 || d < -1e-9 {
		t.Fatalf("GFLOPS %g, want %g", res.GFLOPS, want)
	}
}

func TestSpaceOverheadMatchesTableVI(t *testing.T) {
	// Table VI §5: checksum space overhead is 2/B (m/B in general).
	for _, m := range []int{2, 4} {
		o := Options{Profile: hetsim.Tardis(), N: 10240, Scheme: SchemeEnhanced, ChecksumVectors: m}
		res := mustRun(t, o)
		want := float64(m) / float64(res.B)
		got := res.ChecksumBytes / res.DataBytes
		if d := got - want; d > 1e-12 || d < -1e-12 {
			t.Fatalf("m=%d: space overhead %g, want %g", m, got, want)
		}
	}
	// Plain MAGMA stores no checksums.
	res := mustRun(t, Options{Profile: hetsim.Tardis(), N: 10240, Scheme: SchemeNone})
	if res.ChecksumBytes != 0 {
		t.Fatal("baseline has checksum bytes")
	}
	if res.DataBytes != 8*10240*10240 {
		t.Fatal("data bytes wrong")
	}
}
