package core

import "abftchol/internal/hetsim"

// The Optimization 2 decision model (§V-B): choose whether checksum
// updating runs on a separate GPU stream or on the otherwise-idle CPU,
// from the machine's peak rates and the PCIe transfer rate.

// DecisionInputs are the paper's model parameters for one run.
type DecisionInputs struct {
	N, B, K int
	// PGPU is GPU peak (GFLOPS), PCPU the effective CPU throughput for
	// the skinny checksum updates (GFLOPS), R the link rate (GB/s).
	PGPU, PCPU, R float64
}

// DecisionTimes evaluates the two §V-B estimates (seconds):
//
//	T_pickGPU = (N_Cho + N_Upd + N_Rec) / P_GPU
//	T_pickCPU = max((N_Cho + N_Rec)/P_GPU, N_Upd/P_CPU + D_upd/R)
//
// with N_Cho = n³/3, N_Upd = N_Rec = 2n³/(3B), and the extra
// CPU-placement transfer volume D_upd = n³/(3KB²) elements.
func DecisionTimes(in DecisionInputs) (tGPU, tCPU float64) {
	n := float64(in.N)
	b := float64(in.B)
	k := float64(in.K)
	if k < 1 {
		k = 1
	}
	nCho := n * n * n / 3
	nUpd := 2 * n * n * n / (3 * b)
	nRec := nUpd
	dUpdBytes := 8 * n * n * n / (3 * k * b * b)

	pg := in.PGPU * 1e9
	pc := in.PCPU * 1e9
	r := in.R * 1e9

	tGPU = (nCho + nUpd + nRec) / pg
	gpuSide := (nCho + nRec) / pg
	cpuSide := nUpd/pc + dUpdBytes/r
	tCPU = gpuSide
	if cpuSide > tCPU {
		tCPU = cpuSide
	}
	return tGPU, tCPU
}

// DecideUpdatePlacement applies the model to a machine profile and
// returns PlaceCPU or PlaceGPU.
func DecideUpdatePlacement(prof hetsim.Profile, n, b, k int) Placement {
	tGPU, tCPU := DecisionTimes(DecisionInputs{
		N: n, B: b, K: k,
		PGPU: prof.GPU.PeakGFLOPS,
		PCPU: prof.CPUUpdateGFLOPS,
		R:    prof.Link.BandwidthGBs,
	})
	if tCPU < tGPU {
		return PlaceCPU
	}
	return PlaceGPU
}
