package core

import (
	"testing"

	"abftchol/internal/fault"
	"abftchol/internal/hetsim"
	"abftchol/internal/mat"
)

// doubleHit builds two storage errors striking the same column of the
// same factored block at the same iteration — beyond the paper's
// two-vector code, within reach of a four-vector one.
func doubleHit(iter int) []fault.Scenario {
	a := fault.DefaultStorage(iter)
	a.Row, a.Col, a.Delta = 3, 7, 2e4
	b := fault.DefaultStorage(iter)
	b.Row, b.Col, b.Delta = 19, 7, -3e4
	return []fault.Scenario{a, b}
}

func TestPairCodeRestartsOnDoubleColumnError(t *testing.T) {
	o := laptopOpts(256, SchemeEnhanced)
	o.Scenarios = doubleHit(4)
	res := mustRun(t, o)
	checkFactor(t, o, res)
	if res.Attempts != 2 {
		t.Fatalf("m=2 attempts = %d, want 2 (two errors in one column exceed it)", res.Attempts)
	}
}

func TestFourVectorCorrectsDoubleColumnError(t *testing.T) {
	o := laptopOpts(256, SchemeEnhanced)
	o.ChecksumVectors = 4
	o.Scenarios = doubleHit(4)
	res := mustRun(t, o)
	checkFactor(t, o, res)
	if res.Attempts != 1 {
		t.Fatalf("m=4 attempts = %d, want 1", res.Attempts)
	}
	if res.Corrections < 2 {
		t.Fatalf("corrections = %d, want both elements repaired", res.Corrections)
	}
}

func TestFourVectorModelAgreesWithReal(t *testing.T) {
	for _, m := range []int{2, 4} {
		real := laptopOpts(256, SchemeEnhanced)
		real.ChecksumVectors = m
		real.Scenarios = doubleHit(4)
		rr := mustRun(t, real)

		model := real
		model.Data = nil
		model.Scenarios = doubleHit(4)
		mr := mustRun(t, model)
		if rr.Attempts != mr.Attempts {
			t.Fatalf("m=%d: real attempts %d, model attempts %d", m, rr.Attempts, mr.Attempts)
		}
	}
}

func TestFourVectorNoErrorStillCorrect(t *testing.T) {
	o := laptopOpts(192, SchemeEnhanced)
	o.ChecksumVectors = 4
	res := mustRun(t, o)
	checkFactor(t, o, res)
	if res.Corrections != 0 {
		t.Fatalf("phantom corrections %d with m=4", res.Corrections)
	}
}

func TestChecksumVectorsValidation(t *testing.T) {
	o := laptopOpts(64, SchemeEnhanced)
	o.ChecksumVectors = 1
	if _, err := Run(o); err == nil {
		t.Fatal("m=1 accepted")
	}
}

func TestMultiVectorOverheadOrdering(t *testing.T) {
	// More checksum vectors cost proportionally more (model plane).
	prof := hetsim.Tardis()
	base := mustRun(t, Options{Profile: prof, N: 10240, Scheme: SchemeNone})
	prev := base.Time
	for _, m := range []int{2, 4, 6} {
		o := Options{
			Profile: prof, N: 10240, Scheme: SchemeEnhanced,
			ConcurrentRecalc: true, Placement: PlaceAuto, ChecksumVectors: m,
		}
		r := mustRun(t, o)
		if r.Time <= prev {
			t.Fatalf("m=%d not slower than previous (%g <= %g)", m, r.Time, prev)
		}
		prev = r.Time
	}
}

func TestConsistentLDPropagationStaysInvisible(t *testing.T) {
	// A block whose corruption is checksum-consistent must propagate
	// checksum-consistent damage through GEMM: Online's post-update
	// verification stays blind and only the final acceptance test
	// catches it — the full 2x redo, not a partial one.
	prof := hetsim.Tardis()
	nb := 10240 / prof.BlockSize
	stor := fault.DefaultStorage(nb / 3)
	stor.Delta = 1e3
	base := mustRun(t, Options{Profile: prof, N: 10240, Scheme: SchemeOnline,
		ConcurrentRecalc: true, Placement: PlaceAuto})
	res := mustRun(t, Options{Profile: prof, N: 10240, Scheme: SchemeOnline,
		ConcurrentRecalc: true, Placement: PlaceAuto, Scenarios: []fault.Scenario{stor}})
	ratio := res.Time / base.Time
	if ratio < 1.95 || ratio > 2.1 {
		t.Fatalf("online memory-error ratio %.3f, want ~2 (end-of-run detection)", ratio)
	}
}

func TestCampaignAgainstRealArithmetic(t *testing.T) {
	// A small randomized campaign on the real plane: whatever mix of
	// in-place repairs and restarts happens, the final factor must be
	// right.
	n := 320
	prof := hetsim.Laptop()
	a := mat.RandSPD(n, 5)
	scen := fault.Campaign(fault.CampaignConfig{
		Blocks:           n / prof.BlockSize,
		BlockSize:        prof.BlockSize,
		RatePerIteration: 0.4,
		Seed:             11,
		Delta:            5e3,
	})
	if len(scen) == 0 {
		t.Fatal("campaign generated no errors")
	}
	o := Options{
		Profile: prof, N: n, Scheme: SchemeEnhanced,
		ConcurrentRecalc: true, Data: a, Scenarios: scen, MaxAttempts: 10,
	}
	res := mustRun(t, o)
	checkFactor(t, o, res)
	if len(res.Injections) != len(scen) {
		t.Fatalf("injected %d of %d campaign errors", len(res.Injections), len(scen))
	}
}

func TestCampaignModelMatchesRealAttempts(t *testing.T) {
	n := 320
	prof := hetsim.Laptop()
	for seed := int64(0); seed < 6; seed++ {
		scen := fault.Campaign(fault.CampaignConfig{
			Blocks:           n / prof.BlockSize,
			BlockSize:        prof.BlockSize,
			RatePerIteration: 0.3,
			Seed:             seed,
			Delta:            5e3,
		})
		real := Options{
			Profile: prof, N: n, Scheme: SchemeEnhanced, K: 3,
			ConcurrentRecalc: true, Data: mat.RandSPD(n, seed), Scenarios: scen, MaxAttempts: 12,
		}
		rr := mustRun(t, real)
		model := real
		model.Data = nil
		model.Scenarios = fault.Campaign(fault.CampaignConfig{
			Blocks: n / prof.BlockSize, BlockSize: prof.BlockSize,
			RatePerIteration: 0.3, Seed: seed, Delta: 5e3,
		})
		mr := mustRun(t, model)
		if rr.Attempts != mr.Attempts {
			t.Errorf("seed %d: real attempts %d, model attempts %d", seed, rr.Attempts, mr.Attempts)
		}
	}
}
