package core

// Flop and byte counts for every kernel the drivers launch. The
// factorization counts follow MAGMA's accounting; the checksum counts
// follow §VI of the paper (Tables III-V).

// syrkFlops is the rank-k update of one B x B diagonal block against a
// B x k factored row panel.
func syrkFlops(b, k int) float64 {
	return float64(b) * float64(b) * float64(k)
}

// gemmFlops is the trailing-panel update: (rows x B) -= (rows x k)(B x k)ᵀ.
func gemmFlops(rows, b, k int) float64 {
	return 2 * float64(rows) * float64(b) * float64(k)
}

// potf2Flops is the unblocked Cholesky of one B x B block.
func potf2Flops(b int) float64 {
	fb := float64(b)
	return fb * fb * fb / 3
}

// trsmFlops is the panel triangular solve: (rows x B) · L⁻ᵀ.
func trsmFlops(rows, b int) float64 {
	return float64(rows) * float64(b) * float64(b)
}

// encodeFlops is the one-time cost of encoding the lower block
// triangle with m checksum vectors: 2 ops per element per vector over
// n²/2 elements = m·n² (2n² for the paper's m=2, §VI-1).
func encodeFlops(m, n int) float64 {
	return float64(m) * float64(n) * float64(n)
}

// chkUpdateRankKFlops is the checksum slab update
// (rows x B) -= (rows x k)(B x k)ᵀ, covering both the SYRK and GEMM
// checksum updates; rows = checksum vectors x block rows.
func chkUpdateRankKFlops(rows, b, k int) float64 {
	return 2 * float64(rows) * float64(b) * float64(k)
}

// chkUpdatePotf2Flops is Algorithm 2 over an m x B checksum slab.
func chkUpdatePotf2Flops(m, b int) float64 {
	return float64(m) * float64(b) * float64(b)
}

// chkUpdateTrsmFlops is the checksum slab solve (rows x B) · L⁻ᵀ.
func chkUpdateTrsmFlops(rows, b int) float64 {
	return float64(rows) * float64(b) * float64(b)
}

// recalcFlops is one block's checksum recalculation: m weighted column
// sums over B² elements.
func recalcFlops(m, b int) float64 {
	return 2 * float64(m) * float64(b) * float64(b)
}

// recalcBytes is the traffic of one block recalculation: the block is
// read once; the 2 x B result is negligible next to it.
func recalcBytes(b int) float64 {
	return 8 * float64(b) * float64(b)
}

// blockBytes is the size of one B x B block in bytes.
func blockBytes(b int) float64 {
	return 8 * float64(b) * float64(b)
}

// choleskyFlops is the headline n³/3 used for GFLOPS reporting.
func choleskyFlops(n int) float64 {
	fn := float64(n)
	return fn * fn * fn / 3
}
