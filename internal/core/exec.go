package core

import (
	"fmt"

	"abftchol/internal/checksum"
	"abftchol/internal/fault"
	"abftchol/internal/hetsim"
	"abftchol/internal/mat"
)

// exec carries the state of one factorization: the simulated platform
// and streams, the (optional) real data, the checksum matrix, and the
// fault bookkeeping. One exec serves all schemes; the driver decides
// which steps to invoke.
type exec struct {
	opts      *Options
	plat      *hetsim.Platform
	n, b, nb  int
	m         int // checksum vectors per block (2 in the paper)
	bigSlots  int // slot occupancy of BLAS-3 kernels (leaves headroom for overlap)
	placement Placement
	code      *checksum.MultiCode // real-plane verifier for m > 2

	inj *fault.Injector
	led *fault.Ledger

	// Real plane (nil in model plane): a is the working matrix ("GPU
	// memory"), chk the m·nb x n checksum matrix, scratch an m x B
	// recalculation buffer.
	a       *mat.Matrix
	chk     *mat.Matrix
	scratch *mat.Matrix

	// Streams: sc = GPU compute, sx = transfer queue, scpu = host
	// queue (POTF2 + Algorithm 2), supd = checksum updates (GPU or
	// CPU device per placement; == sc when inline), sver = the
	// Optimization 1 fan-out for checksum recalculation.
	sc   *hetsim.Stream
	sx   *hetsim.Stream
	scpu *hetsim.Stream
	supd *hetsim.Stream
	sver []*hetsim.Stream

	trace *hetsim.Trace

	verified      int
	verifyBatches int
	corrected     int
	failstop      int
}

func newExec(o *Options, nb int) *exec {
	prof := o.Profile
	if o.Scheme == SchemeCULA {
		// CULA R18's dpotrf trails MAGMA's: model it as the same
		// algorithm at reduced BLAS-3 efficiency.
		for _, c := range []hetsim.Class{hetsim.ClassGEMM, hetsim.ClassSYRK, hetsim.ClassTRSM} {
			prof.GPU.EffMax[c] *= prof.CULARelEff
		}
	}
	plat := hetsim.NewPlatform(prof)
	e := &exec{
		opts: o,
		plat: plat,
		n:    o.N,
		b:    o.BlockSize,
		nb:   nb,
		m:    o.ChecksumVectors,
		led:  fault.NewLedger(),
	}
	// BLAS-3 kernels saturate the device. On GPUs with deep hardware
	// concurrency (Kepler Hyper-Q) a one-slot headroom lets the small
	// checksum-update kernels of Optimization 2 timeshare with them;
	// on shallow-queue devices (Fermi) nothing co-runs with a GEMM,
	// which is why the decision model sends updates to the CPU there.
	e.bigSlots = prof.GPU.ConcurrentKernels
	if e.bigSlots >= 4 {
		e.bigSlots--
	}
	e.attachObservability()
	e.sc = plat.GPUStream()
	e.sx = plat.GPUStream()
	e.scpu = plat.CPUStream()

	e.placement = o.Placement
	if !o.Scheme.FaultTolerant() {
		e.placement = PlaceInline // irrelevant; nothing to place
	} else if e.placement == PlaceAuto {
		e.placement = DecideUpdatePlacement(o.Profile, e.n, e.b, o.K)
	}
	switch e.placement {
	case PlaceCPU:
		e.supd = plat.CPUStream()
	case PlaceGPU:
		e.supd = plat.GPUStream()
	default: // PlaceInline
		e.supd = e.sc
	}

	if o.ConcurrentRecalc {
		for i := 0; i < prof.GPU.ConcurrentKernels; i++ {
			e.sver = append(e.sver, plat.GPUStream())
		}
	} else {
		e.sver = []*hetsim.Stream{e.sc}
	}

	e.inj = fault.NewInjector(e.led, o.Scenarios...)
	if o.Data != nil {
		e.a = o.Data.Clone()
		e.scratch = mat.New(e.m, e.b)
		if e.m > 2 {
			e.code = checksum.NewMultiCode(e.m, e.b)
		}
		e.inj.Applier = e
	}
	return e
}

// reset restores the pristine input for a restart after an
// unrecoverable error: the host serializes the machine, reloads the
// data, and (for FT schemes) re-encodes. Injected scenarios stay
// fired — the paper's experiments inject each error once, so the redo
// runs clean.
func (e *exec) reset() {
	t := e.plat.Sync()
	e.trace.Mark("restart", t)
	e.plat.AlignAll(t)
	if e.a != nil {
		e.a.CopyFrom(e.opts.Data)
	}
	e.led.Reset()
}

// Corrupt implements fault.Applier on the real plane.
func (e *exec) Corrupt(bi, bj, row, col int, delta float64, bit int) float64 {
	blk := e.block(bi, bj)
	old := blk.At(row, col)
	nv := old + delta
	if delta == 0 {
		nv = fault.FlipBit(old, bit)
	}
	blk.Set(row, col, nv)
	return nv - old
}

// block returns the real view of block (bi, bj); real plane only.
func (e *exec) block(bi, bj int) *mat.Matrix {
	return e.a.View(bi*e.b, bj*e.b, e.b, e.b)
}

// chkView returns the stored m x B checksum of block (bi, bj).
func (e *exec) chkView(bi, bj int) *mat.Matrix {
	return e.chk.View(e.m*bi, bj*e.b, e.m, e.b)
}

// ---- fault propagation bookkeeping -------------------------------

// markPropagation records, before an update kernel runs, how pending
// corruption in its inputs pollutes its outputs. The flags follow
// §III's analysis, confirmed by the real-arithmetic plane:
//
//   - When the corrupt block's *data* feeds both the update kernel and
//     the checksum update (the LC row panel in SYRK/GEMM, the L factor
//     in TRSM), data and checksums go wrong in lockstep: the damage is
//     checksum-consistent and no verification can see it. (For SYRK
//     the cross term E·LCᵀ is detectable and verification "repairs"
//     it, but the symmetric term LC·Eᵀ it cannot distinguish stays —
//     the net effect is consistent corruption either way.)
//   - When only the block's *stored checksums* feed the update (the
//     LD slab in GEMM), the output's checksums keep tracking the
//     correct result: the mismatch is detectable, and repairable
//     exactly when the smear spans a single row (one wrong element
//     per column, the capability of two checksum vectors).
func (e *exec) markPropagation(op fault.Op, j int) {
	if !e.led.AnyCorrupt() {
		return
	}
	switch op {
	case fault.OpSYRK:
		for k := 0; k < j; k++ {
			if e.led.IsCorrupt(j, k) {
				e.led.Propagate(j, k, j, j, j, true, e.led.PendingWidth(j, k), -1)
			}
		}
	case fault.OpGEMM:
		for k := 0; k < j; k++ {
			lcBad := e.led.IsCorrupt(j, k)
			for i := j + 1; i < e.nb; i++ {
				// An LD block's *stored checksums* feed the update, so
				// only its checksum-visible damage propagates visibly;
				// checksum-consistent damage yields checksum-consistent
				// output damage (the checksums track the corrupt data).
				// Damage D = E·LCᵀ lives in exactly the rows E damages,
				// so the smear inherits the source's row profile.
				rows, unknown := e.led.DetectableProfile(i, k)
				if len(rows) == 1 && unknown == 0 {
					e.led.Propagate(i, k, i, j, j, false, 1, rows[0])
				} else if len(rows)+unknown > 0 {
					e.led.Propagate(i, k, i, j, j, false, len(rows)+unknown, -1)
				}
				if w := e.led.ConsistentWidth(i, k); w > 0 {
					e.led.Propagate(i, k, i, j, j, true, w, -1)
				}
				if lcBad {
					e.led.Propagate(j, k, i, j, j, true, e.led.PendingWidth(j, k), -1)
				}
			}
		}
	case fault.OpTRSM:
		if e.led.IsCorrupt(j, j) {
			for i := j + 1; i < e.nb; i++ {
				e.led.Propagate(j, j, i, j, j, true, e.led.PendingWidth(j, j), -1)
			}
		}
	}
}

// ---- verification -------------------------------------------------

// errUncorrectable is returned when verification finds corruption the
// two-checksum code cannot repair; the driver restarts.
type errUncorrectable struct {
	BI, BJ int
	Cause  error
}

func (e *errUncorrectable) Error() string {
	return fmt.Sprintf("core: block (%d,%d) corrupted beyond checksum correction: %v", e.BI, e.BJ, e.Cause)
}

// Unwrap exposes the verification cause so outcome predicates
// (FailStop in particular) see through the uncorrectable verdict.
func (e *errUncorrectable) Unwrap() error { return e.Cause }

// verifyBlocks runs one pre-/post-operation verification batch over
// the given blocks: a checksum-recalculation kernel per block (fanned
// over the Optimization 1 streams when enabled), a compare, and any
// needed corrections. It returns errUncorrectable when a block cannot
// be repaired.
func (e *exec) verifyBlocks(blocks [][2]int) error {
	if len(blocks) == 0 {
		return nil
	}
	e.verifyBatches++
	if e.opts.Metrics != nil {
		e.opts.Metrics.Observe("verify.batch_blocks", float64(len(blocks)))
	}
	// The recalculations read data (compute stream) and stored
	// checksums (update stream); both must be current.
	evData := e.sc.Record()
	evChk := e.supd.Record()
	for _, s := range e.sver {
		s.Wait(evData)
		s.Wait(evChk)
	}
	var firstErr error
	for idx, blk := range blocks {
		bi, bj := blk[0], blk[1]
		s := e.sver[idx%len(e.sver)]
		e.plat.GPU.Launch(s, hetsim.Kernel{
			Name:  "chk-recalc",
			Class: hetsim.ClassChkRecalc,
			Flops: recalcFlops(e.m, e.b),
			Bytes: recalcBytes(e.b),
			Slots: 1,
		})
		e.verified++
		if err := e.verifyOne(bi, bj); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// With CPU-resident checksums the recalculated rows cross the link
	// for comparison: 2 x B doubles per block, batched per operation
	// (§VI-6c: n³/(3KB²) elements over the whole run).
	if e.placement == PlaceCPU {
		for _, s := range e.sver {
			e.sx.Wait(s.Record())
		}
		e.plat.Link.Transfer(e.sx, hetsim.DeviceToHost, 8*float64(e.m)*float64(e.b)*float64(len(blocks)))
		e.sc.Wait(e.sx.Record())
	} else {
		for _, s := range e.sver {
			e.sc.Wait(s.Record())
		}
	}
	// The host must see the comparison outcome before it may issue the
	// guarded operation: one device round trip per batch. This is the
	// O(1/n) overhead component — per batch, not per block — that
	// makes the relative overhead fall toward its constant (§VI-7).
	e.sc.WaitTime(e.sc.Done() + e.opts.Profile.VerifyBatchSync)
	return firstErr
}

// verifyOne performs the logical verification of one block: real
// checksum arithmetic on the real plane, ledger resolution on the
// model plane.
func (e *exec) verifyOne(bi, bj int) error {
	if e.a != nil {
		var corrs []checksum.Correction
		var err error
		if e.code != nil {
			corrs, err = e.code.VerifyAndCorrect(e.block(bi, bj), e.chkView(bi, bj), e.scratch)
		} else {
			corrs, err = checksum.VerifyAndCorrect(e.block(bi, bj), e.chkView(bi, bj), e.scratch)
		}
		e.corrected += len(corrs)
		// Mirror into the ledger: detectable marks are now resolved.
		e.clearDetectable(bi, bj)
		if err != nil {
			return &errUncorrectable{BI: bi, BJ: bj, Cause: err}
		}
		return nil
	}
	// Model plane: resolve pending injections. m checksum vectors
	// repair up to m/2 wrong elements per block column, so the load on
	// each column is what decides repairability: a width-w smear puts
	// w errors in every column it touches, and single-element
	// injections sharing a column add up.
	pend := e.led.Pending(bi, bj)
	if len(pend) == 0 {
		return nil
	}
	// The per-column load is the number of distinct damaged *rows* a
	// column sees: smears cover every column in their rows, singles
	// only their own column, and damage sharing a row stacks into the
	// same element (still one error per column).
	var keep []fault.Injection
	smearRows := make(map[int]bool)
	unknownRows := 0
	colRows := make(map[int]map[int]bool)
	detected := 0
	for _, in := range pend {
		if !in.Detectable() {
			keep = append(keep, in) // checksum-invisible; stays
			continue
		}
		detected++
		switch {
		case in.Kind == fault.Propagated && in.EffectiveWidth() == 1 && in.Row >= 0:
			smearRows[in.Row] = true
		case in.Kind == fault.Propagated:
			unknownRows += in.EffectiveWidth()
		default:
			if colRows[in.Col] == nil {
				colRows[in.Col] = make(map[int]bool)
			}
			colRows[in.Col][in.Row] = true
		}
	}
	if detected == 0 {
		e.led.SetPending(bi, bj, keep)
		return nil
	}
	worst := len(smearRows) + unknownRows
	for _, rows := range colRows {
		load := len(smearRows) + unknownRows
		for r := range rows {
			if !smearRows[r] {
				load++
			}
		}
		if load > worst {
			worst = load
		}
	}
	e.led.SetPending(bi, bj, keep)
	if worst > e.m/2 {
		return &errUncorrectable{BI: bi, BJ: bj,
			Cause: fmt.Errorf("%d errors in one block column exceed the %d-vector code", worst, e.m)}
	}
	e.corrected += detected
	return nil
}

// clearDetectable removes checksum-visible marks from a block's
// pending set after a real-plane verification handled them.
func (e *exec) clearDetectable(bi, bj int) {
	pend := e.led.Pending(bi, bj)
	if len(pend) == 0 {
		return
	}
	var keep []fault.Injection
	for _, in := range pend {
		if !in.Detectable() {
			keep = append(keep, in)
		}
	}
	e.led.SetPending(bi, bj, keep)
}
