package core

import (
	"testing"

	"abftchol/internal/fault"
	"abftchol/internal/hetsim"
	"abftchol/internal/mat"
)

// Real-arithmetic runs on the paper machines' profiles. Their stock
// block sizes (256/512) would make pure-Go test matrices huge, so the
// block size is overridden — everything else (placement decision,
// stream counts, concurrency depth, transfer modeling) exercises the
// real tardis/bulldozer64 configurations.

func TestRealPlaneOnPaperMachines(t *testing.T) {
	for _, prof := range []hetsim.Profile{hetsim.Tardis(), hetsim.Bulldozer64()} {
		n := 512
		a := mat.RandSPD(n, 77)
		res, err := Run(Options{
			Profile:          prof,
			N:                n,
			BlockSize:        64,
			Scheme:           SchemeEnhanced,
			ConcurrentRecalc: true,
			Placement:        PlaceAuto,
			Data:             a,
			Scenarios: []fault.Scenario{
				func() fault.Scenario { s := fault.DefaultStorage(3); s.Delta = 1e5; return s }(),
			},
		})
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		if r := mat.CholeskyResidual(a, res.L); r > 1e-11 {
			t.Fatalf("%s residual %g", prof.Name, r)
		}
		if res.Attempts != 1 || res.Corrections == 0 {
			t.Fatalf("%s: %+v", prof.Name, res)
		}
	}
}

func TestPlacementDecisionWithOverriddenBlock(t *testing.T) {
	// The Auto decision uses the *run's* block size, not the profile's.
	res, err := Run(Options{
		Profile:   hetsim.Tardis(),
		N:         512,
		BlockSize: 64,
		Scheme:    SchemeEnhanced,
		Placement: PlaceAuto,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := DecideUpdatePlacement(hetsim.Tardis(), 512, 64, 1)
	if res.Placement != want {
		t.Fatalf("placement %v, decision model says %v", res.Placement, want)
	}
}

func TestSchemesConsistentAcrossMachines(t *testing.T) {
	// The machine changes timing, never numerics: the factors computed
	// under different profiles are bit-identical (same issue order,
	// same arithmetic).
	n := 256
	a := mat.RandSPD(n, 88)
	var first *mat.Matrix
	for _, prof := range []hetsim.Profile{hetsim.Laptop(), hetsim.Tardis(), hetsim.Bulldozer64()} {
		res, err := Run(Options{
			Profile: prof, N: n, BlockSize: 32,
			Scheme: SchemeEnhanced, ConcurrentRecalc: true, Data: a,
		})
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		if first == nil {
			first = res.L
			continue
		}
		if mat.MaxAbsDiff(first, res.L) != 0 {
			t.Fatalf("%s: factor differs from the first machine's", prof.Name)
		}
	}
}

func TestTimingDiffersAcrossMachines(t *testing.T) {
	// ...while the simulated times do differ (the K40c is faster).
	tar, err := Run(Options{Profile: hetsim.Tardis(), N: 10240, Scheme: SchemeNone})
	if err != nil {
		t.Fatal(err)
	}
	bul, err := Run(Options{Profile: hetsim.Bulldozer64(), N: 10240, Scheme: SchemeNone})
	if err != nil {
		t.Fatal(err)
	}
	if bul.Time >= tar.Time {
		t.Fatalf("K40c (%gs) not faster than M2075 (%gs)", bul.Time, tar.Time)
	}
}
