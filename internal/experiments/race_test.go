package experiments

import (
	"sync"
	"testing"

	"abftchol/internal/obs"
)

// TestSchedulerRaceBattery drives every registered runner on its
// profile through one shared scheduler and one shared observability
// sink simultaneously — the workload `go test -race` needs to see to
// vouch for the engine's locking: the memo, the worker semaphore, the
// metrics registry, and the retained trace are all contended at once.
func TestSchedulerRaceBattery(t *testing.T) {
	reg := Registry()
	sched := NewScheduler(8, NewCache(t.TempDir()))
	sink := &Obs{Metrics: obs.NewRegistry(), CaptureTrace: true}
	cfg := Config{Sizes: []int{5120}, CapabilityN: 5120, Obs: sink}

	var wg sync.WaitGroup
	for _, id := range registryIDs() {
		id, ent := id, reg[id]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if out := sched.Run(ent.Run, ent.Profile, cfg); out.String() == "" {
				t.Errorf("%s rendered empty under concurrency", id)
			}
		}()
	}
	wg.Wait()

	if got := sink.Metrics.Counter("run.count"); got == 0 {
		t.Error("concurrent sweep recorded no runs")
	}
	planned := sink.Metrics.Counter("sweep.points.planned")
	executed := sink.Metrics.Counter("sweep.points.executed")
	dedup := sink.Metrics.Counter("sweep.dedup.hits")
	hits := sink.Metrics.Counter("sweep.cache.hits")
	if executed+dedup+hits != planned {
		t.Errorf("accounting under concurrency: executed %d + dedup %d + cache %d != planned %d",
			executed, dedup, hits, planned)
	}
	if tr, label := sink.LastTrace(); tr == nil || label == "" {
		t.Error("concurrent sweep retained no trace")
	}
}
