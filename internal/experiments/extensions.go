package experiments

import (
	"fmt"

	"abftchol/internal/core"
	"abftchol/internal/fault"
	"abftchol/internal/hetsim"
	"abftchol/internal/reliability"
)

// Extension experiments beyond the paper's evaluation: the multi-error
// checksum generalization §IV sketches, and a quantitative view of the
// protection-vs-overhead trade-off behind Optimization 3.

// MultiVectorFigure (ext-multivec) measures the overhead of the
// Enhanced scheme as the per-block checksum vector count m grows from
// the paper's 2 (one error per block column) to 4 and 6 (two and three
// errors per column). The encode/update/recalculation volume scales
// with m, so this prices the §IV generalization.
func MultiVectorFigure(prof hetsim.Profile, cfg Config) *Figure {
	f := &Figure{
		ID:     "ext-multivec",
		Title:  fmt.Sprintf("multi-vector checksum overhead on %s (enhanced, all optimizations)", prof.Name),
		YLabel: "relative overhead, percent",
		Series: []Series{{Label: "m=2 (paper)"}, {Label: "m=4"}, {Label: "m=6"}},
	}
	ms := []int{2, 4, 6}
	for _, n := range cfg.sizes(prof) {
		base := baseline(cfg, prof, n)
		for si, m := range ms {
			o := enhanced(prof, n, 1)
			o.ChecksumVectors = m
			f.Series[si].Points = append(f.Series[si].Points, Point{n, overheadPct(cfg.run(o), base)})
		}
	}
	return f
}

// CoverageStudy (ext-coverage) quantifies Optimization 3's trade-off
// under a randomized storage-error campaign (Poisson arrivals over the
// factored region): as K grows, overhead falls but corrupted blocks
// are read more often before their next verification repairs them —
// the exposure §V-C warns about on high-error-rate systems.
func CoverageStudy(prof hetsim.Profile, cfg Config) *Figure {
	n := cfg.CapabilityN
	if n == 0 {
		n = 10240 // large enough for ~40 iterations, small enough to retry often
	}
	nb := n / prof.BlockSize
	const (
		trials = 30
		rate   = 0.25 // expected storage errors per outer iteration (~10 per run)
	)
	f := &Figure{
		ID: "ext-coverage",
		Title: fmt.Sprintf("verification interval vs exposure on %s (n=%d, %.3f storage errors/iter, %d trials)",
			prof.Name, n, rate, trials),
		YLabel: "percent / count (see series)",
		Series: []Series{
			{Label: "mean overhead % (incl restarts)"},
			{Label: "corrupted reads per error"},
			{Label: "restart rate %"},
		},
	}
	base := baseline(cfg, prof, n)
	for _, k := range []int{1, 2, 3, 5, 8} {
		var time, exposure, errors float64
		restarts := 0
		for trial := 0; trial < trials; trial++ {
			scen := fault.Campaign(fault.CampaignConfig{
				Blocks:           nb,
				BlockSize:        prof.BlockSize,
				RatePerIteration: rate,
				Seed:             int64(1000*k + trial),
			})
			o := enhanced(prof, n, k)
			o.Scenarios = scen
			// Under a heavy campaign even the restart can be struck by
			// the remaining errors; allow plenty of retries and treat
			// an exhausted run like the restarts it performed.
			o.MaxAttempts = 10
			r, err := cfg.runErr(o)
			if err != nil {
				restarts++
			} else if r.Attempts > 1 {
				restarts++
			}
			time += r.Time
			exposure += float64(r.PropagationEvents)
			errors += float64(len(r.Injections))
		}
		time /= trials
		perErr := 0.0
		if errors > 0 {
			perErr = exposure / errors
		}
		f.Series[0].Points = append(f.Series[0].Points, Point{k, (time/base.Time - 1) * 100})
		f.Series[1].Points = append(f.Series[1].Points, Point{k, perErr})
		f.Series[2].Points = append(f.Series[2].Points, Point{k, 100 * float64(restarts) / trials})
	}
	return f
}

// VariantFigure (ext-variant) compares the paper's inner-product
// (left-looking) formulation against the outer-product (right-looking)
// one FT-ScaLAPACK protects: plain performance and the enhanced
// scheme's overhead, across the sweep. The verification volume is
// comparable, but the right-looking form exposes POTF2 and its
// transfers on the critical path and leaves retired L blocks outside
// the pre-read discipline (see core's variant tests) — the ablation
// behind the paper's choice of Algorithm 1.
func VariantFigure(prof hetsim.Profile, cfg Config) *Figure {
	f := &Figure{
		ID:     "ext-variant",
		Title:  fmt.Sprintf("left- vs right-looking formulation on %s", prof.Name),
		YLabel: "GFLOPS (plain) / percent (overhead)",
		Series: []Series{
			{Label: "magma left GFLOPS"},
			{Label: "magma right GFLOPS"},
			{Label: "enhanced left ovh %"},
			{Label: "enhanced right ovh %"},
		},
	}
	for _, n := range cfg.sizes(prof) {
		baseL := baseline(cfg, prof, n)
		baseR := cfg.run(core.Options{Profile: prof, N: n, Scheme: core.SchemeNone, Variant: core.RightLooking})
		enhL := cfg.run(enhanced(prof, n, 1))
		or := enhanced(prof, n, 1)
		or.Variant = core.RightLooking
		enhR := cfg.run(or)
		f.Series[0].Points = append(f.Series[0].Points, Point{n, baseL.GFLOPS})
		f.Series[1].Points = append(f.Series[1].Points, Point{n, baseR.GFLOPS})
		f.Series[2].Points = append(f.Series[2].Points, Point{n, overheadPct(enhL, baseL)})
		f.Series[3].Points = append(f.Series[3].Points, Point{n, overheadPct(enhR, baseR)})
	}
	return f
}

// ScrubFigure (ext-scrub) pits the enhanced scheme against the
// brute-force alternative for storage errors: Online-ABFT plus a
// periodic scrub of every live block (reference [28]'s direction).
// Both close the storage-error window at their strongest setting, but
// the scrub re-verifies Θ(N²) blocks per gate where the enhanced
// scheme verifies only what the next operations read — the overhead
// gap is the value of the paper's pre-read discipline.
func ScrubFigure(prof hetsim.Profile, cfg Config) *Figure {
	f := &Figure{
		ID:     "ext-scrub",
		Title:  fmt.Sprintf("enhanced pre-read vs online+scrub on %s", prof.Name),
		YLabel: "relative overhead, percent",
		Series: []Series{
			{Label: "enhanced K=1"},
			{Label: "online+scrub K=1"},
			{Label: "online+scrub K=5"},
		},
	}
	for _, n := range cfg.sizes(prof) {
		base := baseline(cfg, prof, n)
		enh := enhanced(prof, n, 1)
		s1 := core.Options{Profile: prof, N: n, Scheme: core.SchemeOnlineScrub,
			K: 1, ConcurrentRecalc: true, Placement: core.PlaceAuto}
		s5 := s1
		s5.K = 5
		f.Series[0].Points = append(f.Series[0].Points, Point{n, overheadPct(cfg.run(enh), base)})
		f.Series[1].Points = append(f.Series[1].Points, Point{n, overheadPct(cfg.run(s1), base)})
		f.Series[2].Points = append(f.Series[2].Points, Point{n, overheadPct(cfg.run(s5), base)})
	}
	return f
}

// ReliabilityTable (ext-reliability) is a pocket edition of the
// internal/reliability/campaign engine: a (scheme × fault class) grid
// of seeded Poisson fault trials, each classified into the four-way
// outcome taxonomy and reported with Wilson 95% bounds on the
// struck-conditioned detection rate. The full sharded, journaled
// campaign lives behind `abftchol -campaign`; this experiment gives
// `-exp` users the same coverage shape at a glance.
//
// Trials run in-line rather than as scheduler points: a trial's
// verdict travels in its typed error (MaxAttempts=1 surfaces the
// rejection instead of retrying past it), and typed errors do not
// round-trip the sweep's disk cache — a warm-cache replay would
// reclassify every detected fault as clean. The campaign engine makes
// the same call: it runs cache-less and persists to its journal.
func ReliabilityTable(prof hetsim.Profile, cfg Config) *Table {
	// Campaign cost grows with the cube of the block count, so size the
	// matrix from the profile's block size rather than taking
	// CapabilityN at face value: on the laptop profile (nb=32) the
	// sweep default of 10240 would mean a 320-block grid, ~4000x the
	// work of the same n on tardis (nb=512). CapabilityN only ever
	// shrinks the grid below the 24-block cap.
	nb := prof.BlockSize
	n := 24 * nb
	if cfg.CapabilityN > 0 && cfg.CapabilityN < n {
		n = cfg.CapabilityN
	}
	const (
		trials = 60
		rate   = 0.2
	)
	t := &Table{
		ID: "ext-reliability",
		Title: fmt.Sprintf("fault-injection coverage on %s (n=%d, %.2f faults/iter, %d trials/cell)",
			prof.Name, n, rate, trials),
		Header: []string{"scheme", "fault class", "struck", "corrected", "uncorrect.", "silent", "detected [95% CI]"},
	}
	schemes := []core.Scheme{core.SchemeNone, core.SchemeOnline, core.SchemeEnhanced}
	classes := []string{"storage-offset", "compute-offset", "storage-offset-burst"}
	cellIdx := 0
	for _, scheme := range schemes {
		for _, className := range classes {
			class, err := fault.ParseClass(className)
			if err != nil {
				panic(err)
			}
			var corrected, uncorrectable, silent, struck int
			for trial := 0; trial < trials; trial++ {
				o := core.Options{
					Profile:          prof,
					N:                n,
					BlockSize:        nb,
					K:                2,
					Scheme:           scheme,
					MaxAttempts:      1,
					ConcurrentRecalc: true,
					Scenarios: fault.Campaign(fault.CampaignConfig{
						Blocks:           n / nb,
						BlockSize:        nb,
						RatePerIteration: rate,
						Seed:             fault.SubSeed(fault.SubSeed(2016, cellIdx), trial),
						Class:            class,
					}),
				}
				r, runErr := core.Run(o)
				out, cerr := reliability.Classify(r, runErr)
				if cerr != nil {
					panic(fmt.Sprintf("experiments: ext-reliability: %v", cerr))
				}
				switch out {
				case reliability.OutcomeDetectedCorrected:
					corrected++
				case reliability.OutcomeDetectedUncorrectable:
					uncorrectable++
				case reliability.OutcomeSilentCorruption:
					silent++
				}
				if out.Struck() {
					struck++
				}
			}
			detected := reliability.Wilson(corrected+uncorrectable, struck, reliability.Z95)
			t.Rows = append(t.Rows, []string{
				core.SchemeKey(scheme), className,
				fmt.Sprintf("%d/%d", struck, trials),
				fmt.Sprintf("%d", corrected),
				fmt.Sprintf("%d", uncorrectable),
				fmt.Sprintf("%d", silent),
				fmt.Sprintf("%.3f [%.3f, %.3f]", detected.Rate, detected.Lo, detected.Hi),
			})
			cellIdx++
		}
	}
	return t
}

// ExtensionIDs lists the non-paper experiments.
func ExtensionIDs() []string {
	return []string{"ext-multivec", "ext-coverage", "ext-variant", "ext-scrub", "ext-reliability"}
}
