package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"abftchol/internal/core"
	"abftchol/internal/fault"
	"abftchol/internal/hetsim"
)

// cacheFormat versions the on-disk entry layout; bumping it silently
// invalidates every existing entry (old files simply stop matching).
const cacheFormat = 1

// Cache is the sweep engine's content-addressed on-disk result store:
// one JSON file per point under dir, named by the point's fingerprint.
// Entries hold everything a Result carries except the recorded
// timeline and the computed factor, so only model-plane points (no
// real input data) are stored. A corrupt, truncated, or foreign file
// is a miss, never an error — the point just runs again and the entry
// is rewritten.
//
// The cache is safe for concurrent use by one process (writes go
// through a temp file + rename) and safe to share between processes
// on the usual POSIX rename-is-atomic assumption.
type Cache struct {
	dir string
}

// NewCache opens (creating lazily on first store) a result cache
// rooted at dir. The conventional location is artifacts/cache/.
func NewCache(dir string) *Cache {
	return &Cache{dir: dir}
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// cacheEntry is the on-disk form of one memoized point.
type cacheEntry struct {
	Format      int        `json:"format"`
	Fingerprint string     `json:"fingerprint"`
	Key         pointKey   `json:"key"`
	Result      WireResult `json:"result"`
}

// WireResult mirrors core.Result minus the fields that cannot (the
// timeline) or should not (the factor matrix) round-trip through JSON.
// It is both the cache's on-disk form and the job daemon's response
// body (internal/server), so a result served over HTTP is exactly the
// result a warm cache would have replayed.
type WireResult struct {
	Scheme            core.Scheme       `json:"scheme"`
	Variant           core.Variant      `json:"variant"`
	N                 int               `json:"n"`
	B                 int               `json:"b"`
	K                 int               `json:"k"`
	Placement         core.Placement    `json:"placement"`
	Time              float64           `json:"time"`
	GFLOPS            float64           `json:"gflops"`
	Attempts          int               `json:"attempts"`
	Corrections       int               `json:"corrections"`
	VerifiedBlocks    int               `json:"verified_blocks"`
	FailStop          int               `json:"fail_stop"`
	Injections        []fault.Injection `json:"injections,omitempty"`
	PropagationEvents int               `json:"propagation_events"`
	DataBytes         float64           `json:"data_bytes"`
	ChecksumBytes     float64           `json:"checksum_bytes"`
	GPUStats          hetsim.Stats      `json:"gpu_stats"`
	CPUStats          hetsim.Stats      `json:"cpu_stats"`
}

// ToWire strips a result down to its JSON-serializable fields.
func ToWire(r core.Result) WireResult {
	return WireResult{
		Scheme: r.Scheme, Variant: r.Variant, N: r.N, B: r.B, K: r.K,
		Placement: r.Placement, Time: r.Time, GFLOPS: r.GFLOPS,
		Attempts: r.Attempts, Corrections: r.Corrections,
		VerifiedBlocks: r.VerifiedBlocks, FailStop: r.FailStop,
		Injections: r.Injections, PropagationEvents: r.PropagationEvents,
		DataBytes: r.DataBytes, ChecksumBytes: r.ChecksumBytes,
		GPUStats: r.GPUStats, CPUStats: r.CPUStats,
	}
}

// Result rebuilds the core.Result a wire form carries (no factor
// matrix, no timeline).
func (cr WireResult) Result() core.Result {
	return core.Result{
		Scheme: cr.Scheme, Variant: cr.Variant, N: cr.N, B: cr.B, K: cr.K,
		Placement: cr.Placement, Time: cr.Time, GFLOPS: cr.GFLOPS,
		Attempts: cr.Attempts, Corrections: cr.Corrections,
		VerifiedBlocks: cr.VerifiedBlocks, FailStop: cr.FailStop,
		Injections: cr.Injections, PropagationEvents: cr.PropagationEvents,
		DataBytes: cr.DataBytes, ChecksumBytes: cr.ChecksumBytes,
		GPUStats: cr.GPUStats, CPUStats: cr.CPUStats,
	}
}

// path maps a fingerprint to its entry file.
func (c *Cache) path(fp string) string {
	return filepath.Join(c.dir, fp+".json")
}

// Load returns the cached result for a fingerprint, if present and
// valid.
func (c *Cache) Load(fp string) (core.Result, bool) {
	data, err := os.ReadFile(c.path(fp))
	if err != nil {
		return core.Result{}, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return core.Result{}, false
	}
	if e.Format != cacheFormat || e.Fingerprint != fp {
		return core.Result{}, false
	}
	return e.Result.Result(), true
}

// Store writes one point's result. Errors are returned for the caller
// to surface (a read-only artifacts/ directory should be loud, not a
// silent slowdown), but a failed store never poisons the cache: the
// entry is written to a temp file first and renamed into place whole.
func (c *Cache) Store(o core.Options, r core.Result) error {
	key := keyOf(o)
	fp := key.fingerprint()
	e := cacheEntry{Format: cacheFormat, Fingerprint: fp, Key: key, Result: ToWire(r)}
	data, err := json.MarshalIndent(&e, "", "  ")
	if err != nil {
		return fmt.Errorf("experiments: cache encode %s: %w", fp, err)
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return fmt.Errorf("experiments: cache dir: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, "entry-*.tmp")
	if err != nil {
		return fmt.Errorf("experiments: cache store: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("experiments: cache store %s: write %v, close %v", fp, werr, cerr)
	}
	if err := os.Rename(tmp.Name(), c.path(fp)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("experiments: cache store %s: %w", fp, err)
	}
	return nil
}
