package experiments

import (
	"fmt"
	"strings"

	"abftchol/internal/core"
	"abftchol/internal/fault"
	"abftchol/internal/hetsim"
)

// ShapeCheck is one qualitative claim of the paper's evaluation,
// verified against the simulator. The claims are the reproduction
// contract: who wins, by roughly what factor, where the trends go.
type ShapeCheck struct {
	ID     string
	Claim  string
	Pass   bool
	Detail string
}

// ShapeReport runs a condensed version of every experiment and checks
// the paper's qualitative claims programmatically. It is what
// `abftchol -exp verify` prints: a reproducibility self-test.
type ShapeReport struct {
	Checks []ShapeCheck
}

// Passed reports whether every check passed.
func (r *ShapeReport) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// String renders the report.
func (r *ShapeReport) String() string {
	var b strings.Builder
	b.WriteString("reproduction shape checks (paper claims vs simulator):\n")
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "  [%s] %-10s %s\n", status, c.ID, c.Claim)
		if c.Detail != "" {
			fmt.Fprintf(&b, "         %s\n", c.Detail)
		}
	}
	if r.Passed() {
		b.WriteString("all claims reproduced\n")
	} else {
		b.WriteString("SOME CLAIMS NOT REPRODUCED\n")
	}
	return b.String()
}

// RunShapeChecks executes the self-test. cfg.Sizes shortens the
// sweeps; the capability checks run at cfg.CapabilityN (or a moderate
// default).
func RunShapeChecks(cfg Config) *ShapeReport {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = []int{5120, 10240, 15360}
	}
	if cfg.CapabilityN == 0 {
		cfg.CapabilityN = 10240
	}
	rep := &ShapeReport{}
	add := func(id, claim string, pass bool, detail string, args ...interface{}) {
		rep.Checks = append(rep.Checks, ShapeCheck{
			ID: id, Claim: claim, Pass: pass, Detail: fmt.Sprintf(detail, args...),
		})
	}

	tar, bul := hetsim.Tardis(), hetsim.Bulldozer64()

	// Tables VII/VIII: capability ratios.
	for _, prof := range []hetsim.Profile{tar, bul} {
		tb := capabilityRatios(prof, cfg)
		add("table7/8", fmt.Sprintf("%s: enhanced unaffected by both error classes", prof.Name),
			tb.enhComp < 1.01 && tb.enhMem < 1.01,
			"comp ratio %.3f, mem ratio %.3f", tb.enhComp, tb.enhMem)
		add("table7/8", fmt.Sprintf("%s: online redoes only on memory errors (~2x)", prof.Name),
			tb.onComp < 1.05 && tb.onMem > 1.8 && tb.onMem < 2.3,
			"comp ratio %.3f, mem ratio %.3f", tb.onComp, tb.onMem)
		add("table7/8", fmt.Sprintf("%s: offline redoes on both (~2x)", prof.Name),
			tb.offComp > 1.8 && tb.offMem > 1.8,
			"comp ratio %.3f, mem ratio %.3f", tb.offComp, tb.offMem)
	}

	// Fig 8/9: opt1 helps, more on Kepler than Fermi. The reported
	// gains are large-n figures, so evaluate them at each machine's
	// full size regardless of the (possibly shortened) sweep.
	g8 := opt1Gain(tar, cfg.withSizes([]int{tar.MaxN}))
	g9 := opt1Gain(bul, cfg.withSizes([]int{bul.MaxN}))
	add("fig8", "opt1 reduces overhead on tardis (paper: ~2 points)", g8 > 0.5 && g8 < 6,
		"gain %.2f points", g8)
	add("fig9", "opt1 reduces overhead on bulldozer64 (paper: ~10 points)", g9 > 6 && g9 < 14,
		"gain %.2f points", g9)
	add("fig8/9", "opt1 gains more on Kepler than Fermi", g9 > g8, "%.2f vs %.2f points", g9, g8)

	// Fig 10/11: decision model placement.
	add("fig10", "decision model picks CPU on tardis",
		core.DecideUpdatePlacement(tar, cfg.CapabilityN, tar.BlockSize, 1) == core.PlaceCPU, "")
	add("fig11", "decision model picks GPU on bulldozer64",
		core.DecideUpdatePlacement(bul, cfg.CapabilityN, bul.BlockSize, 1) == core.PlaceGPU, "")

	// Fig 12/13: K reduces overhead.
	f12 := Opt3Figure(tar, cfg)
	lastIdx := len(f12.Series[0].Points) - 1
	k1 := f12.Series[0].Points[lastIdx].Value
	k5 := f12.Series[2].Points[lastIdx].Value
	add("fig12/13", "overhead falls with K", k5 < k1, "K=1 %.2f%% -> K=5 %.2f%%", k1, k5)

	// Fig 14/15: bounded, ordered overhead.
	for _, prof := range []hetsim.Profile{tar, bul} {
		bound := 6.0
		if prof.Name == "bulldozer64" {
			bound = 4.0
		}
		f := OverheadFigure(prof, cfg)
		last := len(f.Series[2].Points) - 1
		enh := f.Series[2].Points[last].Value
		ordered := true
		for i := range f.Series[0].Points {
			if !(f.Series[0].Points[i].Value <= f.Series[1].Points[i].Value &&
				f.Series[1].Points[i].Value <= f.Series[2].Points[i].Value) {
				ordered = false
			}
		}
		add("fig14/15", fmt.Sprintf("%s: offline <= online <= enhanced, enhanced < %.0f%%", prof.Name, bound),
			ordered && enh < bound, "enhanced %.2f%% at n=%d", enh, f.Series[2].Points[last].N)
	}

	// Fig 16/17: enhanced beats CULA.
	for _, prof := range []hetsim.Profile{tar, bul} {
		f := PerformanceFigure(prof, cfg)
		last := len(f.Series[0].Points) - 1
		cula := f.Series[1].Points[last].Value
		enh := f.Series[4].Points[last].Value
		add("fig16/17", fmt.Sprintf("%s: enhanced outperforms CULA", prof.Name),
			enh > cula, "enhanced %.0f vs CULA %.0f GFLOPS", enh, cula)
	}

	return rep
}

type capRatios struct {
	enhComp, enhMem, onComp, onMem, offComp, offMem float64
}

func capabilityRatios(prof hetsim.Profile, cfg Config) capRatios {
	run := func(sch core.Scheme, scen ...fault.Scenario) float64 {
		o := core.Options{
			Profile: prof, N: cfg.CapabilityN, Scheme: sch, K: 1,
			ConcurrentRecalc: true, Placement: core.PlaceAuto,
			Scenarios: scen,
		}
		return cfg.run(o).Time
	}
	nb := cfg.CapabilityN / prof.BlockSize
	comp := fault.DefaultComputation(nb / 3)
	comp.Delta = 1e3
	stor := fault.DefaultStorage(nb / 3)
	stor.Delta = 1e3
	var r capRatios
	eb := run(core.SchemeEnhanced)
	r.enhComp = run(core.SchemeEnhanced, comp) / eb
	r.enhMem = run(core.SchemeEnhanced, stor) / eb
	ob := run(core.SchemeOnline)
	r.onComp = run(core.SchemeOnline, comp) / ob
	r.onMem = run(core.SchemeOnline, stor) / ob
	fb := run(core.SchemeOffline)
	r.offComp = run(core.SchemeOffline, comp) / fb
	r.offMem = run(core.SchemeOffline, stor) / fb
	return r
}

func opt1Gain(prof hetsim.Profile, cfg Config) float64 {
	f := Opt1Figure(prof, cfg)
	last := len(f.Series[0].Points) - 1
	return f.Series[0].Points[last].Value - f.Series[1].Points[last].Value
}
