package experiments

import (
	"bytes"
	"strings"
	"testing"

	"abftchol/internal/hetsim"
	"abftchol/internal/obs"
	"abftchol/internal/overhead"
)

// TestFig8MetricsMatchOverheadModel runs the fig8 experiment with the
// observability sink attached and checks the accumulated counters
// against internal/overhead's closed-form predictions: the acceptance
// test that `-exp fig8 -metrics-out` reports analytically correct
// kernel and verification counts.
func TestFig8MetricsMatchOverheadModel(t *testing.T) {
	prof := hetsim.Tardis()
	sizes := []int{5120, 7680}
	sink := &Obs{Metrics: obs.NewRegistry(), CaptureTrace: true}
	cfg := Config{Sizes: sizes, Obs: sink}
	fig := Opt1Figure(prof, cfg)
	if fig.ID != "fig8" {
		t.Fatalf("unexpected figure id %q", fig.ID)
	}

	// Per sweep size fig8 runs one MAGMA baseline and two Enhanced
	// K=1 runs (before/after Optimization 1).
	reg := sink.Metrics
	if got, want := reg.Counter("run.count"), int64(3*len(sizes)); got != want {
		t.Errorf("run.count = %d, want %d", got, want)
	}
	if got, want := reg.Counter("scheme.runs.magma"), int64(len(sizes)); got != want {
		t.Errorf("scheme.runs.magma = %d, want %d", got, want)
	}
	if got, want := reg.Counter("scheme.runs.enhanced"), int64(2*len(sizes)); got != want {
		t.Errorf("scheme.runs.enhanced = %d, want %d", got, want)
	}

	var wantVerified, wantPotf2 int64
	for _, n := range sizes {
		p := overhead.Params{N: n, B: prof.BlockSize, K: 1}
		wantVerified += 2 * int64(p.VerifiedBlocksEnhanced())
		wantPotf2 += 3 * int64(n/prof.BlockSize)
	}
	if got := reg.Counter("verify.blocks"); got != wantVerified {
		t.Errorf("verify.blocks = %d, overhead model predicts %d", got, wantVerified)
	}
	// One recalc kernel per verified block plus one encode per
	// fault-tolerant run.
	if got, want := reg.Counter("kernel.launches.chk_recalc"), wantVerified+int64(2*len(sizes)); got != want {
		t.Errorf("kernel.launches.chk_recalc = %d, want %d", got, want)
	}
	if got := reg.Counter("kernel.launches.potf2"); got != wantPotf2 {
		t.Errorf("kernel.launches.potf2 = %d, want %d", got, wantPotf2)
	}

	// The sink retains the last run's timeline, which exports as a
	// loadable Chrome trace.
	tr, label := sink.LastTrace()
	if tr == nil {
		t.Fatal("sink retained no trace")
	}
	if !strings.Contains(label, "enhanced") {
		t.Errorf("last trace label %q should describe the final enhanced run", label)
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, tr, map[string]string{"experiment": fig.ID}); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Errorf("fig8 trace fails validation: %v", err)
	}
}

// TestObsSinkOptional asserts the runners behave identically with no
// sink attached (Config.Obs nil is the default for every other test).
func TestObsSinkOptional(t *testing.T) {
	prof := hetsim.Tardis()
	cfg := Config{Sizes: []int{5120}}
	plain := Opt1Figure(prof, cfg)
	cfg.Obs = &Obs{Metrics: obs.NewRegistry()}
	observed := Opt1Figure(prof, cfg)
	if plain.CSV() != observed.CSV() {
		t.Fatalf("observation changed the experiment's result:\n%s----\n%s", plain.CSV(), observed.CSV())
	}
}
