package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders the figure as an ASCII chart: one mark per series, x =
// matrix size, y = the figure's metric. Good enough to eyeball curve
// shapes (falling overhead, crossovers) in a terminal.
func (f *Figure) Plot(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, p := range s.Points {
			minX = math.Min(minX, float64(p.N))
			maxX = math.Max(maxX, float64(p.N))
			minY = math.Min(minY, p.Value)
			maxY = math.Max(maxY, p.Value)
		}
	}
	if math.IsInf(minX, 1) {
		return "(no data)\n"
	}
	if maxY == minY { //nolint:floateq — degenerate-axis guard: min/max of the same finite set compare exactly equal iff all points coincide
		maxY = minY + 1
	}
	if maxX == minX { //nolint:floateq — degenerate-axis guard, as above
		maxX = minX + 1
	}
	// Pad the y range a touch so extremes stay visible.
	pad := (maxY - minY) * 0.05
	minY -= pad
	maxY += pad

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marks := "ox+*#@%&"
	for si, s := range f.Series {
		mark := marks[si%len(marks)]
		for _, p := range s.Points {
			c := int((float64(p.N) - minX) / (maxX - minX) * float64(width-1))
			r := height - 1 - int((p.Value-minY)/(maxY-minY)*float64(height-1))
			if r < 0 {
				r = 0
			}
			if r >= height {
				r = height - 1
			}
			grid[r][c] = mark
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", strings.ToUpper(f.ID), f.Title)
	for r, row := range grid {
		label := "          "
		if r == 0 {
			label = fmt.Sprintf("%10.2f", maxY)
		} else if r == height-1 {
			label = fmt.Sprintf("%10.2f", minY)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, row)
	}
	fmt.Fprintf(&b, "%10s  %-*d%*d\n", "", width/2, int(minX), width-width/2, int(maxX))
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c = %s\n", marks[si%len(marks)], s.Label)
	}
	fmt.Fprintf(&b, "  y: %s\n", f.YLabel)
	return b.String()
}
