package experiments

import (
	"fmt"

	"abftchol/internal/core"
	"abftchol/internal/fault"
	"abftchol/internal/hetsim"
)

// Config steers a runner.
type Config struct {
	// Sizes overrides the matrix-size sweep (default: Profile.Sizes()).
	Sizes []int
	// CapabilityN overrides the capability tables' matrix size
	// (default: 20480 on tardis, 30720 on bulldozer64, MaxN otherwise).
	CapabilityN int
	// Obs, when non-nil, collects metrics (and optionally the last
	// run's timeline) across every factorization the runner performs.
	Obs *Obs
	// eng routes every point through a sweep scheduler's
	// plan/execute/replay phases instead of executing inline. Set by
	// Scheduler.Run; nil means the original serial path.
	eng *engine
}

// withSizes returns a copy of the config sweeping the given sizes,
// keeping the observability sink and scheduler wiring intact.
func (c Config) withSizes(sizes []int) Config {
	c.Sizes = sizes
	return c
}

func (c Config) sizes(prof hetsim.Profile) []int {
	if len(c.Sizes) > 0 {
		return c.Sizes
	}
	return prof.Sizes()
}

func (c Config) capabilityN(prof hetsim.Profile) int {
	if c.CapabilityN > 0 {
		return c.CapabilityN
	}
	switch prof.Name {
	case "tardis":
		return 20480
	case "bulldozer64":
		return 30720
	}
	return prof.MaxN
}

// baseline runs plain MAGMA at size n.
func baseline(cfg Config, prof hetsim.Profile, n int) core.Result {
	return cfg.run(core.Options{Profile: prof, N: n, Scheme: core.SchemeNone})
}

// overheadPct is the relative overhead of res against base, percent.
func overheadPct(res, base core.Result) float64 {
	return (res.Time/base.Time - 1) * 100
}

// enhanced builds the standard all-optimizations Enhanced options.
func enhanced(prof hetsim.Profile, n, k int) core.Options {
	return core.Options{
		Profile: prof, N: n, Scheme: core.SchemeEnhanced,
		K: k, ConcurrentRecalc: true, Placement: core.PlaceAuto,
	}
}

// CapabilityTable reproduces Table VII (tardis) / Table VIII
// (bulldozer64): execution time of the three ABFT schemes with no
// error, one computation error, and one memory (storage) error
// injected mid-factorization.
func CapabilityTable(prof hetsim.Profile, cfg Config) *Table {
	n := cfg.capabilityN(prof)
	nb := n / prof.BlockSize
	id := "table7"
	if prof.Name == "bulldozer64" {
		id = "table8"
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("fault tolerance capability on %s with %dx%d Cholesky decomposition", prof.Name, n, n),
		Header: []string{"scheme", "no error", "computation error", "memory error"},
	}
	comp := fault.DefaultComputation(nb / 3)
	comp.Delta = 1e3
	stor := fault.DefaultStorage(nb / 3)
	stor.Delta = 1e3
	for _, sch := range []core.Scheme{core.SchemeEnhanced, core.SchemeOnline, core.SchemeOffline} {
		row := []string{sch.String()}
		for _, scs := range [][]fault.Scenario{nil, {comp}, {stor}} {
			o := core.Options{
				Profile: prof, N: n, Scheme: sch, K: 1,
				ConcurrentRecalc: true, Placement: core.PlaceAuto,
				Scenarios: scs,
			}
			r := cfg.run(o)
			row = append(row, fmt.Sprintf("%.4fs", r.Time))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Opt1Figure reproduces Fig 8 (tardis) / Fig 9 (bulldozer64): the
// Enhanced scheme's relative overhead before and after Optimization 1
// (concurrent checksum recalculation on GPU streams).
func Opt1Figure(prof hetsim.Profile, cfg Config) *Figure {
	id := "fig8"
	if prof.Name == "bulldozer64" {
		id = "fig9"
	}
	f := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("optimization 1 (concurrent checksum recalculation) on %s", prof.Name),
		YLabel: "relative overhead, percent",
		Series: []Series{{Label: "before opt1"}, {Label: "after opt1"}},
	}
	for _, n := range cfg.sizes(prof) {
		base := baseline(cfg, prof, n)
		before := enhanced(prof, n, 1)
		before.ConcurrentRecalc = false
		after := enhanced(prof, n, 1)
		f.Series[0].Points = append(f.Series[0].Points, Point{n, overheadPct(cfg.run(before), base)})
		f.Series[1].Points = append(f.Series[1].Points, Point{n, overheadPct(cfg.run(after), base)})
	}
	return f
}

// Opt2Figure reproduces Fig 10 / Fig 11: overhead with checksum
// updates serialized inline versus placed by the §V-B decision model
// (CPU on tardis, a concurrent GPU stream on bulldozer64).
func Opt2Figure(prof hetsim.Profile, cfg Config) *Figure {
	id := "fig10"
	if prof.Name == "bulldozer64" {
		id = "fig11"
	}
	placed := core.DecideUpdatePlacement(prof, cfg.capabilityN(prof), prof.BlockSize, 1)
	f := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("optimization 2 (checksum updating placement) on %s", prof.Name),
		YLabel: "relative overhead, percent",
		Series: []Series{{Label: "before opt2 (inline)"}, {Label: "after opt2 (" + placed.String() + ")"}},
	}
	for _, n := range cfg.sizes(prof) {
		base := baseline(cfg, prof, n)
		before := enhanced(prof, n, 1)
		before.Placement = core.PlaceInline
		after := enhanced(prof, n, 1)
		f.Series[0].Points = append(f.Series[0].Points, Point{n, overheadPct(cfg.run(before), base)})
		f.Series[1].Points = append(f.Series[1].Points, Point{n, overheadPct(cfg.run(after), base)})
	}
	return f
}

// Opt3Figure reproduces Fig 12 / Fig 13: overhead for verification
// intervals K = 1, 3, 5.
func Opt3Figure(prof hetsim.Profile, cfg Config) *Figure {
	id := "fig12"
	if prof.Name == "bulldozer64" {
		id = "fig13"
	}
	f := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("optimization 3 (verification interval K) on %s", prof.Name),
		YLabel: "relative overhead, percent",
		Series: []Series{{Label: "K=1"}, {Label: "K=3"}, {Label: "K=5"}},
	}
	ks := []int{1, 3, 5}
	for _, n := range cfg.sizes(prof) {
		base := baseline(cfg, prof, n)
		for si, k := range ks {
			f.Series[si].Points = append(f.Series[si].Points, Point{n, overheadPct(cfg.run(enhanced(prof, n, k)), base)})
		}
	}
	return f
}

// OverheadFigure reproduces Fig 14 / Fig 15: relative overhead of
// Offline-, Online-, and Enhanced Online-ABFT across the sweep.
func OverheadFigure(prof hetsim.Profile, cfg Config) *Figure {
	id := "fig14"
	if prof.Name == "bulldozer64" {
		id = "fig15"
	}
	f := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("overhead comparison on %s", prof.Name),
		YLabel: "relative overhead, percent",
		Series: []Series{{Label: "offline-abft"}, {Label: "online-abft"}, {Label: "enhanced-online-abft"}},
	}
	for _, n := range cfg.sizes(prof) {
		base := baseline(cfg, prof, n)
		for si, sch := range []core.Scheme{core.SchemeOffline, core.SchemeOnline, core.SchemeEnhanced} {
			o := core.Options{
				Profile: prof, N: n, Scheme: sch, K: 1,
				ConcurrentRecalc: true, Placement: core.PlaceAuto,
			}
			f.Series[si].Points = append(f.Series[si].Points, Point{n, overheadPct(cfg.run(o), base)})
		}
	}
	return f
}

// PerformanceFigure reproduces Fig 16 / Fig 17: GFLOPS of MAGMA, CULA,
// and the three ABFT schemes across the sweep.
func PerformanceFigure(prof hetsim.Profile, cfg Config) *Figure {
	id := "fig16"
	if prof.Name == "bulldozer64" {
		id = "fig17"
	}
	f := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("performance comparison on %s", prof.Name),
		YLabel: "GFLOPS",
		Series: []Series{
			{Label: "magma"}, {Label: "cula"},
			{Label: "offline-abft"}, {Label: "online-abft"}, {Label: "enhanced-online-abft"},
		},
	}
	schemes := []core.Scheme{core.SchemeNone, core.SchemeCULA, core.SchemeOffline, core.SchemeOnline, core.SchemeEnhanced}
	for _, n := range cfg.sizes(prof) {
		for si, sch := range schemes {
			o := core.Options{
				Profile: prof, N: n, Scheme: sch, K: 1,
				ConcurrentRecalc: true, Placement: core.PlaceAuto,
			}
			f.Series[si].Points = append(f.Series[si].Points, Point{n, cfg.run(o).GFLOPS})
		}
	}
	return f
}

// Runner produces one experiment's printable result.
type Runner func(prof hetsim.Profile, cfg Config) fmt.Stringer

// Registry maps experiment IDs (table7, table8, fig8..fig17) to their
// runner and machine.
func Registry() map[string]struct {
	Profile hetsim.Profile
	Run     Runner
} {
	tar, bul, lap := hetsim.Tardis(), hetsim.Bulldozer64(), hetsim.Laptop()
	wrapT := func(fn func(hetsim.Profile, Config) *Table) Runner {
		return func(p hetsim.Profile, c Config) fmt.Stringer { return fn(p, c) }
	}
	wrapF := func(fn func(hetsim.Profile, Config) *Figure) Runner {
		return func(p hetsim.Profile, c Config) fmt.Stringer { return fn(p, c) }
	}
	return map[string]struct {
		Profile hetsim.Profile
		Run     Runner
	}{
		"table7": {tar, wrapT(CapabilityTable)},
		"table8": {bul, wrapT(CapabilityTable)},
		"fig8":   {tar, wrapF(Opt1Figure)},
		"fig9":   {bul, wrapF(Opt1Figure)},
		"fig10":  {tar, wrapF(Opt2Figure)},
		"fig11":  {bul, wrapF(Opt2Figure)},
		"fig12":  {tar, wrapF(Opt3Figure)},
		"fig13":  {bul, wrapF(Opt3Figure)},
		"fig14":  {tar, wrapF(OverheadFigure)},
		"fig15":  {bul, wrapF(OverheadFigure)},
		"fig16":  {tar, wrapF(PerformanceFigure)},
		"fig17":  {bul, wrapF(PerformanceFigure)},
		// Extensions beyond the paper's evaluation.
		"ext-multivec":    {tar, wrapF(MultiVectorFigure)},
		"ext-coverage":    {tar, wrapF(CoverageStudy)},
		"ext-variant":     {tar, wrapF(VariantFigure)},
		"ext-scrub":       {tar, wrapF(ScrubFigure)},
		"ext-reliability": {lap, wrapT(ReliabilityTable)},
	}
}

// IDs returns the experiment identifiers in presentation order.
func IDs() []string {
	return []string{
		"table7", "table8",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17",
	}
}
