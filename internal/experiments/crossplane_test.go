package experiments

import (
	"fmt"
	"testing"

	"abftchol/internal/core"
	"abftchol/internal/fault"
	"abftchol/internal/hetsim"
	"abftchol/internal/mat"
)

// TestCrossPlaneCampaignsThroughScheduler extends the core packages'
// model-vs-real property to the sweep engine: under seeded randomized
// storage-error campaigns, the cost-model plane and the real float64
// plane must agree on the recovery outcome — corrected in place
// (Attempts == 1) versus restarted (Attempts > 1) versus exhausted
// (error) — for every scheme and blocked variant, even when all the
// point pairs resolve concurrently through one worker pool.
func TestCrossPlaneCampaignsThroughScheduler(t *testing.T) {
	prof := hetsim.Laptop()
	const (
		n    = 256
		rate = 0.4
	)
	nb := n / prof.BlockSize

	type pairCase struct {
		label   string
		scheme  core.Scheme
		variant core.Variant
		seed    int64
	}
	var cases []pairCase
	for _, sch := range []core.Scheme{core.SchemeOffline, core.SchemeOnline, core.SchemeEnhanced, core.SchemeOnlineScrub} {
		for _, v := range []core.Variant{core.LeftLooking, core.RightLooking} {
			for seed := int64(1); seed <= 3; seed++ {
				cases = append(cases, pairCase{
					label:   fmt.Sprintf("%s/%s/seed%d", sch, v, seed),
					scheme:  sch,
					variant: v,
					seed:    seed,
				})
			}
		}
	}

	// Build the model/real option pairs, then resolve the whole batch
	// through one concurrent scheduler call: the property must hold
	// when the planes race each other on the worker pool.
	points := make([]core.Options, 0, 2*len(cases))
	for _, c := range cases {
		scen := fault.Campaign(fault.CampaignConfig{
			Blocks:           nb,
			BlockSize:        prof.BlockSize,
			RatePerIteration: rate,
			Seed:             c.seed,
			Delta:            1e6,
		})
		model := core.Options{
			Profile: prof, N: n, Scheme: c.scheme, Variant: c.variant,
			K: 2, ConcurrentRecalc: true, Placement: core.PlaceAuto,
			Scenarios: scen, MaxAttempts: 10,
		}
		real := model
		real.Data = mat.RandSPD(n, c.seed)
		points = append(points, model, real)
	}

	results := NewScheduler(8, nil).Execute(points, nil)
	for i, c := range cases {
		model, real := results[2*i], results[2*i+1]
		if (model.Err == nil) != (real.Err == nil) {
			t.Errorf("%s: planes disagree on survival: model err %v, real err %v", c.label, model.Err, real.Err)
			continue
		}
		if model.Err != nil {
			continue // both exhausted their attempts: agreement
		}
		mr, rr := model.Result, real.Result
		// The recovery outcome must agree unconditionally: either both
		// planes corrected every error in place or both restarted.
		if (mr.Attempts == 1) != (rr.Attempts == 1) {
			t.Errorf("%s: planes disagree corrected-in-place vs restart: model attempts %d, real attempts %d",
				c.label, mr.Attempts, rr.Attempts)
		}
		// Exact attempt counts agree unless the real plane hit a
		// numeric POTF2 fail-stop — a breakdown on corrupted float64
		// data the cost model cannot see, which costs extra restarts.
		if rr.FailStop == 0 && mr.Attempts != rr.Attempts {
			t.Errorf("%s: model attempts %d, real attempts %d (no fail-stop)", c.label, mr.Attempts, rr.Attempts)
		}
		if mr.L != nil {
			t.Errorf("%s: model plane returned a factor", c.label)
		}
		if rr.L == nil {
			t.Errorf("%s: real plane returned no factor", c.label)
		}
	}
}
