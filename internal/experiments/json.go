package experiments

import "encoding/json"

// JSON renders the figure as indented JSON for downstream tooling
// (plotting scripts, regression dashboards).
func (f *Figure) JSON() (string, error) {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}

// JSON renders the table as indented JSON.
func (t *Table) JSON() (string, error) {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}

// JSON renders the shape report as indented JSON.
func (r *ShapeReport) JSON() (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}
