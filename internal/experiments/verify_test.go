package experiments

import (
	"strings"
	"testing"
)

func TestShapeChecksAllPass(t *testing.T) {
	rep := RunShapeChecks(Config{Sizes: []int{5120, 10240}, CapabilityN: 7680})
	if !rep.Passed() {
		t.Fatalf("shape checks failed:\n%s", rep)
	}
	if len(rep.Checks) < 14 {
		t.Fatalf("only %d checks ran", len(rep.Checks))
	}
	out := rep.String()
	if !strings.Contains(out, "all claims reproduced") {
		t.Fatalf("summary missing:\n%s", out)
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("failures rendered:\n%s", out)
	}
}

func TestShapeReportRendersFailures(t *testing.T) {
	rep := &ShapeReport{Checks: []ShapeCheck{
		{ID: "x", Claim: "should fail", Pass: false, Detail: "reason"},
		{ID: "y", Claim: "fine", Pass: true},
	}}
	if rep.Passed() {
		t.Fatal("Passed with a failing check")
	}
	out := rep.String()
	if !strings.Contains(out, "[FAIL]") || !strings.Contains(out, "SOME CLAIMS NOT REPRODUCED") {
		t.Fatalf("failure rendering:\n%s", out)
	}
	if !strings.Contains(out, "reason") {
		t.Fatal("detail missing")
	}
}

func TestPlotRendering(t *testing.T) {
	f := &Figure{
		ID: "figp", Title: "plot demo", YLabel: "pct",
		Series: []Series{
			{Label: "low", Points: []Point{{5120, 1}, {10240, 2}, {15360, 3}}},
			{Label: "high", Points: []Point{{5120, 10}, {10240, 8}, {15360, 6}}},
		},
	}
	out := f.Plot(40, 10)
	if !strings.Contains(out, "o = low") || !strings.Contains(out, "x = high") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Fatal("marks missing")
	}
	if !strings.Contains(out, "5120") || !strings.Contains(out, "15360") {
		t.Fatalf("x axis missing:\n%s", out)
	}
	// The max label appears on the top row, the min on the bottom.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "10.") {
		t.Fatalf("top label wrong: %q", lines[1])
	}
}

func TestPlotDegenerateCases(t *testing.T) {
	empty := &Figure{ID: "e", Title: "empty"}
	if out := empty.Plot(40, 10); !strings.Contains(out, "no data") {
		t.Fatalf("empty plot: %q", out)
	}
	flat := &Figure{
		ID: "f", Title: "flat", YLabel: "v",
		Series: []Series{{Label: "c", Points: []Point{{100, 5}, {200, 5}}}},
	}
	if out := flat.Plot(40, 10); !strings.Contains(out, "o = c") {
		t.Fatal("flat series must still render")
	}
	single := &Figure{
		ID: "s", Title: "single", YLabel: "v",
		Series: []Series{{Label: "p", Points: []Point{{100, 5}}}},
	}
	if out := single.Plot(5, 2); out == "" {
		t.Fatal("tiny plot must render")
	}
}
