package experiments

import (
	"strconv"
	"strings"
	"testing"

	"abftchol/internal/hetsim"
)

// quickCfg keeps test runtimes modest while spanning two sweep points.
var quickCfg = Config{Sizes: []int{5120, 10240}, CapabilityN: 7680}

func parseSeconds(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "s"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func TestCapabilityTableShape(t *testing.T) {
	// The paper's headline result (Tables VII/VIII): Enhanced is
	// unaffected by either error type; Online doubles only on memory
	// errors; Offline doubles on both.
	for _, prof := range []hetsim.Profile{hetsim.Tardis(), hetsim.Bulldozer64()} {
		tb := CapabilityTable(prof, quickCfg)
		if len(tb.Rows) != 3 {
			t.Fatalf("%s: %d rows", prof.Name, len(tb.Rows))
		}
		get := func(r, c int) float64 { return parseSeconds(t, tb.Rows[r][c+1]) }
		// Row 0: enhanced. All three columns within 1%.
		for c := 1; c < 3; c++ {
			if ratio := get(0, c) / get(0, 0); ratio > 1.01 {
				t.Fatalf("%s: enhanced slowed down by errors (col %d ratio %.3f)", prof.Name, c, ratio)
			}
		}
		// Row 1: online. Computation ~1x, memory ~2x.
		if ratio := get(1, 1) / get(1, 0); ratio > 1.05 {
			t.Fatalf("%s: online computation-error ratio %.3f, want ~1", prof.Name, ratio)
		}
		if ratio := get(1, 2) / get(1, 0); ratio < 1.8 || ratio > 2.3 {
			t.Fatalf("%s: online memory-error ratio %.3f, want ~2", prof.Name, ratio)
		}
		// Row 2: offline. Both ~2x.
		for c := 1; c < 3; c++ {
			if ratio := get(2, c) / get(2, 0); ratio < 1.8 || ratio > 2.3 {
				t.Fatalf("%s: offline error ratio %.3f, want ~2", prof.Name, ratio)
			}
		}
		// No-error times of all schemes within a few percent of each
		// other ("all three ABFTs have similar execution time").
		if r := get(0, 0) / get(2, 0); r > 1.10 {
			t.Fatalf("%s: enhanced no-error %.3fx offline", prof.Name, r)
		}
	}
}

func TestOpt1FigureShape(t *testing.T) {
	// Fig 8/9: opt1 always helps, and helps more on Kepler (Hyper-Q)
	// than on Fermi.
	gains := map[string]float64{}
	for _, prof := range []hetsim.Profile{hetsim.Tardis(), hetsim.Bulldozer64()} {
		f := Opt1Figure(prof, quickCfg)
		before, after := f.Series[0], f.Series[1]
		worst := 0.0
		for i, p := range before.Points {
			a := after.Points[i].Value
			if a >= p.Value {
				t.Fatalf("%s n=%d: opt1 did not reduce overhead (%.2f -> %.2f)", prof.Name, p.N, p.Value, a)
			}
			if g := p.Value - a; g > worst {
				worst = g
			}
		}
		gains[prof.Name] = worst
	}
	if gains["bulldozer64"] <= gains["tardis"] {
		t.Fatalf("opt1 gain on bulldozer64 (%.2f) must exceed tardis (%.2f)", gains["bulldozer64"], gains["tardis"])
	}
}

func TestOpt2FigureShape(t *testing.T) {
	for _, prof := range []hetsim.Profile{hetsim.Tardis(), hetsim.Bulldozer64()} {
		f := Opt2Figure(prof, quickCfg)
		for i, p := range f.Series[0].Points {
			if a := f.Series[1].Points[i].Value; a >= p.Value {
				t.Fatalf("%s n=%d: opt2 did not help (%.2f -> %.2f)", prof.Name, p.N, p.Value, a)
			}
		}
	}
	// The decision matches §VII-D: CPU on tardis, GPU on bulldozer64.
	if f := Opt2Figure(hetsim.Tardis(), quickCfg); !strings.Contains(f.Series[1].Label, "cpu") {
		t.Fatalf("tardis opt2 label %q, want cpu", f.Series[1].Label)
	}
	if f := Opt2Figure(hetsim.Bulldozer64(), quickCfg); !strings.Contains(f.Series[1].Label, "gpu") {
		t.Fatalf("bulldozer64 opt2 label %q, want gpu", f.Series[1].Label)
	}
}

func TestOpt3FigureShape(t *testing.T) {
	for _, prof := range []hetsim.Profile{hetsim.Tardis(), hetsim.Bulldozer64()} {
		f := Opt3Figure(prof, quickCfg)
		for i := range f.Series[0].Points {
			k1 := f.Series[0].Points[i].Value
			k3 := f.Series[1].Points[i].Value
			k5 := f.Series[2].Points[i].Value
			if !(k5 <= k3 && k3 < k1) {
				t.Fatalf("%s: K ordering broken: K1=%.2f K3=%.2f K5=%.2f", prof.Name, k1, k3, k5)
			}
		}
	}
}

func TestOverheadFigureShape(t *testing.T) {
	// Fig 14/15: offline <= online <= enhanced; overhead falls (or at
	// least does not grow) with n; everything stays single-digit.
	for _, prof := range []hetsim.Profile{hetsim.Tardis(), hetsim.Bulldozer64()} {
		f := OverheadFigure(prof, quickCfg)
		off, on, enh := f.Series[0], f.Series[1], f.Series[2]
		for i := range off.Points {
			if !(off.Points[i].Value <= on.Points[i].Value && on.Points[i].Value <= enh.Points[i].Value) {
				t.Fatalf("%s n=%d: ordering broken (%.2f, %.2f, %.2f)", prof.Name, off.Points[i].N,
					off.Points[i].Value, on.Points[i].Value, enh.Points[i].Value)
			}
			if enh.Points[i].Value > 10 {
				t.Fatalf("%s: enhanced overhead %.1f%% > 10%%", prof.Name, enh.Points[i].Value)
			}
			if off.Points[i].Value < 0 {
				t.Fatalf("%s: negative overhead", prof.Name)
			}
		}
		last := len(enh.Points) - 1
		if enh.Points[last].Value > enh.Points[0].Value+1 {
			t.Fatalf("%s: enhanced overhead grows with n (%.2f -> %.2f)",
				prof.Name, enh.Points[0].Value, enh.Points[last].Value)
		}
	}
}

func TestPerformanceFigureShape(t *testing.T) {
	// Fig 16/17: MAGMA fastest; every ABFT scheme beats CULA; GFLOPS
	// grows with n.
	for _, prof := range []hetsim.Profile{hetsim.Tardis(), hetsim.Bulldozer64()} {
		f := PerformanceFigure(prof, quickCfg)
		magma, cula := f.Series[0], f.Series[1]
		for i := range magma.Points {
			for si := 1; si < len(f.Series); si++ {
				if f.Series[si].Points[i].Value > magma.Points[i].Value {
					t.Fatalf("%s: %s beat MAGMA", prof.Name, f.Series[si].Label)
				}
			}
			for si := 2; si < len(f.Series); si++ {
				if f.Series[si].Points[i].Value <= cula.Points[i].Value {
					t.Fatalf("%s: %s did not beat CULA (%.0f <= %.0f GF)", prof.Name,
						f.Series[si].Label, f.Series[si].Points[i].Value, cula.Points[i].Value)
				}
			}
		}
		if magma.Points[len(magma.Points)-1].Value <= magma.Points[0].Value {
			t.Fatalf("%s: GFLOPS did not grow with n", prof.Name)
		}
	}
}

func TestRegistryCoversEveryExperiment(t *testing.T) {
	reg := Registry()
	ids := IDs()
	if len(ids) != 12 {
		t.Fatalf("want 12 experiments (2 tables + 10 figures), have %d", len(ids))
	}
	for _, id := range ids {
		if _, ok := reg[id]; !ok {
			t.Fatalf("experiment %s missing from registry", id)
		}
	}
	// Odd figures / table8 run on bulldozer64, the rest on tardis.
	if reg["table7"].Profile.Name != "tardis" || reg["table8"].Profile.Name != "bulldozer64" {
		t.Fatal("capability tables bound to wrong machines")
	}
	if reg["fig9"].Profile.Name != "bulldozer64" || reg["fig8"].Profile.Name != "tardis" {
		t.Fatal("fig8/9 machines wrong")
	}
}

func TestRegistryRunnersProduceOutput(t *testing.T) {
	reg := Registry()
	tiny := Config{Sizes: []int{5120}, CapabilityN: 5120}
	for _, id := range []string{"table7", "fig9", "fig12", "fig17"} {
		ent := reg[id]
		out := ent.Run(ent.Profile, tiny).String()
		if !strings.Contains(strings.ToLower(out), id) {
			t.Fatalf("%s output does not identify itself:\n%s", id, out)
		}
		if len(strings.Split(out, "\n")) < 3 {
			t.Fatalf("%s output too short", id)
		}
	}
}

func TestFigureRendering(t *testing.T) {
	f := &Figure{
		ID: "figX", Title: "demo", YLabel: "pct",
		Series: []Series{
			{Label: "a", Points: []Point{{5120, 1.5}, {10240, 2.5}}},
			{Label: "b", Points: []Point{{5120, 3.5}}},
		},
	}
	s := f.String()
	if !strings.Contains(s, "FIGX") || !strings.Contains(s, "5120") {
		t.Fatalf("render: %s", s)
	}
	if !strings.Contains(s, "-") {
		t.Fatal("missing value not rendered as -")
	}
	csv := f.CSV()
	if !strings.HasPrefix(csv, "n,a,b\n5120,1.5,3.5\n") {
		t.Fatalf("csv: %s", csv)
	}
	if v, ok := f.Series[0].Value(10240); !ok || v != 2.5 {
		t.Fatal("Series.Value broken")
	}
	if _, ok := f.Series[1].Value(10240); ok {
		t.Fatal("Series.Value invented a point")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID: "tableX", Title: "demo",
		Header: []string{"scheme", "time"},
		Rows:   [][]string{{"enhanced", "1.0s"}},
	}
	s := tb.String()
	if !strings.Contains(s, "TABLEX") || !strings.Contains(s, "enhanced") {
		t.Fatalf("render: %s", s)
	}
	if csv := tb.CSV(); !strings.Contains(csv, "scheme,time\nenhanced,1.0s\n") {
		t.Fatalf("csv: %s", csv)
	}
}
