package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"abftchol/internal/core"
	"abftchol/internal/fault"
	"abftchol/internal/hetsim"
	"abftchol/internal/mat"
)

// pointKey is the canonical, content-addressable identity of one
// factorization point: every Options field that can change the
// simulated outcome, with defaults resolved so that spellings that
// mean the same run (K=0 vs K=1, ChecksumVectors 0 vs 2) share one
// key. Observational fields (Trace, Metrics) are deliberately absent —
// attaching instrumentation never changes a result — and real-plane
// input data enters through a content hash. The struct marshals with
// a fixed field order, so its JSON is a canonical form and its SHA-256
// is a stable fingerprint across processes.
type pointKey struct {
	Profile          hetsim.Profile   `json:"profile"`
	N                int              `json:"n"`
	BlockSize        int              `json:"block_size"`
	Scheme           core.Scheme      `json:"scheme"`
	Variant          core.Variant     `json:"variant"`
	K                int              `json:"k"`
	ChecksumVectors  int              `json:"checksum_vectors"`
	ConcurrentRecalc bool             `json:"concurrent_recalc"`
	Placement        core.Placement   `json:"placement"`
	Scenarios        []fault.Scenario `json:"scenarios,omitempty"`
	MaxAttempts      int              `json:"max_attempts"`
	DataHash         string           `json:"data_hash,omitempty"`
}

// keyOf canonicalizes one options point. It applies the same defaults
// core.Options.normalize does, without validating: invalid options get
// a fingerprint too (their outcome — the validation error — is just as
// memoizable as a result).
func keyOf(o core.Options) pointKey {
	k := pointKey{
		Profile:          o.Profile,
		N:                o.N,
		BlockSize:        o.BlockSize,
		Scheme:           o.Scheme,
		Variant:          o.Variant,
		K:                o.K,
		ChecksumVectors:  o.ChecksumVectors,
		ConcurrentRecalc: o.ConcurrentRecalc,
		Placement:        o.Placement,
		Scenarios:        o.Scenarios,
		MaxAttempts:      o.MaxAttempts,
	}
	if k.BlockSize <= 0 {
		k.BlockSize = o.Profile.BlockSize
	}
	if k.K < 1 {
		k.K = 1
	}
	if k.ChecksumVectors == 0 {
		k.ChecksumVectors = 2
	}
	if k.MaxAttempts <= 0 {
		k.MaxAttempts = 3
	}
	if o.Data != nil {
		k.DataHash = dataHash(o.Data)
	}
	return k
}

// fingerprint returns the hex SHA-256 of the point's canonical JSON:
// the key under which the scheduler deduplicates work and the result
// cache addresses its entries.
func fingerprint(o core.Options) string {
	return keyOf(o).fingerprint()
}

// Fingerprint exposes the canonical point fingerprint to other
// packages: the job daemon (internal/server) uses it as the dedup and
// result-store key for submitted jobs, so a job's identity over HTTP
// is exactly its identity in the sweep engine and the on-disk cache.
func Fingerprint(o core.Options) string {
	return fingerprint(o)
}

func (k pointKey) fingerprint() string {
	blob, err := json.Marshal(k)
	if err != nil {
		// pointKey is a closed struct of marshalable fields; failure
		// here is a programming error, not an input condition.
		panic(fmt.Sprintf("experiments: cannot canonicalize point: %v", err))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// dataHash fingerprints a real-plane input matrix by content, so two
// identically generated inputs (same RandSPD seed and size) share one
// cached result while different inputs never collide.
func dataHash(m *mat.Matrix) string {
	h := sha256.New()
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(m.Rows))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(m.Cols))
	h.Write(hdr[:])
	var buf [8]byte
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(m.At(i, j)))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
