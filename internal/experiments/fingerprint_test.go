package experiments

import (
	"testing"

	"abftchol/internal/core"
	"abftchol/internal/fault"
	"abftchol/internal/hetsim"
	"abftchol/internal/mat"
	"abftchol/internal/obs"
)

func TestFingerprintNormalizesDefaults(t *testing.T) {
	prof := hetsim.Tardis()
	base := core.Options{Profile: prof, N: 5120, Scheme: core.SchemeEnhanced}
	spelled := base
	spelled.K = 1
	spelled.ChecksumVectors = 2
	spelled.MaxAttempts = 3
	spelled.BlockSize = prof.BlockSize
	if fingerprint(base) != fingerprint(spelled) {
		t.Error("default spellings of the same point fingerprint differently")
	}
}

func TestFingerprintIgnoresObservation(t *testing.T) {
	o := core.Options{Profile: hetsim.Tardis(), N: 5120, Scheme: core.SchemeEnhanced}
	instrumented := o
	instrumented.Trace = true
	instrumented.Metrics = obs.NewRegistry()
	if fingerprint(o) != fingerprint(instrumented) {
		t.Error("attaching instrumentation changed the fingerprint")
	}
}

func TestFingerprintSeparatesPoints(t *testing.T) {
	base := core.Options{Profile: hetsim.Tardis(), N: 5120, Scheme: core.SchemeEnhanced}
	seen := map[string]string{fingerprint(base): "base"}
	variants := map[string]core.Options{}
	o := base
	o.N = 7680
	variants["different n"] = o
	o = base
	o.Scheme = core.SchemeOnline
	variants["different scheme"] = o
	o = base
	o.K = 3
	variants["different K"] = o
	o = base
	o.Variant = core.RightLooking
	variants["different variant"] = o
	o = base
	o.ConcurrentRecalc = true
	variants["opt1 on"] = o
	o = base
	o.Placement = core.PlaceCPU
	variants["different placement"] = o
	o = base
	o.Scenarios = []fault.Scenario{fault.DefaultStorage(3)}
	variants["with injection"] = o
	o = base
	o.Profile = hetsim.Bulldozer64()
	variants["different machine"] = o
	for name, v := range variants {
		fp := fingerprint(v)
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[fp] = name
	}
}

func TestFingerprintHashesRealData(t *testing.T) {
	o := core.Options{Profile: hetsim.Laptop(), N: 64, Scheme: core.SchemeEnhanced}
	a, b := o, o
	a.Data = mat.RandSPD(64, 1)
	b.Data = mat.RandSPD(64, 2)
	same := o
	same.Data = mat.RandSPD(64, 1)
	if fingerprint(a) == fingerprint(o) {
		t.Error("real-plane point collides with its model-plane twin")
	}
	if fingerprint(a) == fingerprint(b) {
		t.Error("different inputs share a fingerprint")
	}
	if fingerprint(a) != fingerprint(same) {
		t.Error("identically generated inputs should share a fingerprint")
	}
}

func TestCacheRoundTrip(t *testing.T) {
	cache := NewCache(t.TempDir())
	o := core.Options{Profile: hetsim.Laptop(), N: 256, Scheme: core.SchemeEnhanced,
		K: 2, ConcurrentRecalc: true, Placement: core.PlaceAuto,
		Scenarios: []fault.Scenario{func() fault.Scenario {
			s := fault.DefaultStorage(3)
			s.Delta = 1e5
			return s
		}()}}
	want, err := core.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.Store(o, want); err != nil {
		t.Fatal(err)
	}
	got, ok := cache.Load(fingerprint(o))
	if !ok {
		t.Fatal("stored entry did not load")
	}
	if got.Attempts != want.Attempts || got.Corrections != want.Corrections ||
		got.VerifiedBlocks != want.VerifiedBlocks || got.N != want.N ||
		got.Scheme != want.Scheme || len(got.Injections) != len(want.Injections) {
		t.Errorf("round trip changed the result: got %+v want %+v", got, want)
	}
	if diff := got.Time - want.Time; diff > 1e-15 || diff < -1e-15 {
		t.Errorf("round trip changed Time: %g vs %g", got.Time, want.Time)
	}
	if _, ok := cache.Load("deadbeef"); ok {
		t.Error("unknown fingerprint loaded")
	}
}
