// Sweep engine: every figure and table of §VII is a set of
// independent (machine, n, scheme, K, variant) factorization points,
// and many points repeat across runners — every optimization study
// re-measures the same MAGMA baseline, fig14's enhanced runs reappear
// in fig16's GFLOPS sweep. The Scheduler exploits both facts: runners
// *declare* their point set (a planning pass records every
// factorization a runner would perform), the unique points execute
// once each on a bounded worker pool, and an assembly pass replays the
// runner against the memoized results. Output is therefore assembled
// by the same serial code in the same order regardless of worker
// count: text, CSV, and JSON renderings are byte-identical between
// -parallel 1 and -parallel N, which the differential test battery
// enforces.
//
// Planning works because runners are deterministic in *which* points
// they request: control flow never chooses different options based on
// earlier results (values only flow into the rendered output). The
// planning pass runs the runner against stub results and keeps only
// the recorded point set; the assembly pass is the one whose return
// value the caller sees.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"abftchol/internal/core"
	"abftchol/internal/hetsim"
	"abftchol/internal/obs"
)

// Scheduler executes sweep points concurrently with memoization. One
// Scheduler spans a whole sweep (`-exp all` builds exactly one), so a
// point shared by several experiments runs once per process — and once
// ever, when an on-disk Cache is attached. A Scheduler is safe for
// concurrent use; the worker bound applies across all concurrent
// callers.
type Scheduler struct {
	workers int
	cache   *Cache
	sem     chan struct{}
	// runFn resolves one point; core.Run locally, or an HTTP client's
	// submit-and-wait when the scheduler fronts a remote daemon
	// (NewRemoteScheduler). remote marks the latter: remote points
	// record no local metric deltas (the daemon accounts them) and a
	// requested trace cannot be fetched, only re-recorded locally.
	runFn  func(core.Options) (core.Result, error)
	remote bool

	mu       sync.Mutex // guards: memo, storeErr
	memo     map[string]*outcome
	storeErr error
}

// outcome is the lifecycle of one unique point: created under the
// scheduler lock, filled in by exactly one goroutine, done closed when
// the result (or error) is available.
type outcome struct {
	done     chan struct{}
	res      core.Result
	err      error
	delta    *obs.Registry // metrics the execution recorded, nil if none
	executed bool          // ran core.Run (not memo, not disk)
	fromDisk bool
	stored   bool
	merged   bool // delta already flushed into a sink
}

// NewScheduler builds a sweep engine running at most workers
// factorizations at once (<= 0 means GOMAXPROCS) with an optional
// on-disk result cache.
func NewScheduler(workers int, cache *Cache) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Scheduler{
		workers: workers,
		cache:   cache,
		sem:     make(chan struct{}, workers),
		runFn:   core.Run,
		memo:    make(map[string]*outcome),
	}
}

// NewRemoteScheduler builds a sweep engine whose points are resolved
// by runFn — typically server.Client.RunPoint, which submits the
// options to a running abftd daemon and waits for the result — instead
// of executing locally. Deduplication, memoization, and deterministic
// replay are unchanged, so `-exp` output assembled from remote results
// is byte-identical to a local run; the daemon does its own caching,
// so no local disk cache is attached. Metric deltas stay on the
// daemon's registry (fetch its /metrics), and traces are not captured.
func NewRemoteScheduler(workers int, runFn func(core.Options) (core.Result, error)) *Scheduler {
	s := NewScheduler(workers, nil)
	s.runFn = runFn
	s.remote = true
	return s
}

// Workers returns the concurrency bound.
func (s *Scheduler) Workers() int { return s.workers }

// Remote reports whether points execute on a remote daemon rather
// than in-process. Remote execution flattens typed errors to strings,
// so work that classifies errors (reliability campaigns) must refuse
// remote schedulers and run server-side instead.
func (s *Scheduler) Remote() bool { return s.remote }

// StoreErr returns the first cache-write failure, if any. Stores are
// best-effort for correctness (the sweep's results are unaffected) but
// a broken cache directory should be surfaced, not silently ignored.
func (s *Scheduler) StoreErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.storeErr
}

// PointResult is one point's outcome, in the order requested.
type PointResult struct {
	Result core.Result
	Err    error
	// Executed reports whether this call performed the factorization;
	// false means the point was served by in-process memoization or
	// the on-disk cache.
	Executed bool
}

// Execute resolves every requested point — deduplicating identical
// options, consulting the cache, and fanning the remainder over the
// worker pool — and returns one result per input point, in input
// order. When sink carries a metrics registry, each executed point
// records into a private registry and the deltas are merged into the
// sink in canonical (first-requested) point order after all workers
// finish; cache and memo hits contribute no metrics, which is exactly
// what lets a warm-cache sweep prove "zero new factorizations" through
// the kernel counters. When sink.CaptureTrace is set the last
// requested point retains its timeline (re-executing it if it was
// served from cache), matching the serial path's "last run" semantics.
func (s *Scheduler) Execute(points []core.Options, sink *Obs) []PointResult {
	fps := make([]string, len(points))
	for i, o := range points {
		fps[i] = fingerprint(o)
	}
	traceFP := ""
	if sink != nil && sink.CaptureTrace && len(points) > 0 && !s.remote {
		traceFP = fps[len(points)-1]
	}

	type slot struct {
		oc      *outcome
		created bool
	}
	seen := make(map[string]*slot)
	var order []string // unique fingerprints, first-requested order
	var wg sync.WaitGroup
	for i, fp := range fps {
		if _, ok := seen[fp]; ok {
			continue
		}
		oc, created := s.claim(fp)
		seen[fp] = &slot{oc: oc, created: created}
		order = append(order, fp)
		if created {
			wg.Add(1)
			go func(fp string, o core.Options, oc *outcome) {
				defer wg.Done()
				s.runPoint(fp, o, sink, oc, fp == traceFP)
			}(fp, points[i], oc)
		}
	}
	wg.Wait()
	for _, fp := range order {
		<-seen[fp].oc.done // points resolved by a concurrent caller
	}

	// The retained timeline: if the last point came out of the memo or
	// the disk cache untraced, run it once more purely for the
	// recording (tracing is observational; the result is identical).
	if traceFP != "" {
		oc := seen[traceFP].oc
		res := oc.res
		if res.Trace == nil && oc.err == nil {
			o := points[len(points)-1]
			o.Trace = true
			o.Metrics = nil
			if r, err := core.Run(o); err == nil {
				res = r
			}
		}
		sink.capture(res)
	}

	s.flush(points, fps, order, func(fp string) (*outcome, bool) {
		sl := seen[fp]
		return sl.oc, sl.created
	}, sink)

	out := make([]PointResult, len(points))
	counted := make(map[string]bool)
	for i, fp := range fps {
		sl := seen[fp]
		out[i] = PointResult{Result: sl.oc.res, Err: sl.oc.err}
		if !counted[fp] {
			counted[fp] = true
			out[i].Executed = sl.created && sl.oc.executed
		}
	}
	return out
}

// claim registers a fingerprint, returning its outcome and whether the
// caller owns (must execute) it.
func (s *Scheduler) claim(fp string) (*outcome, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if oc, ok := s.memo[fp]; ok {
		return oc, false
	}
	oc := &outcome{done: make(chan struct{})}
	s.memo[fp] = oc
	return oc, true
}

// runPoint fills one owned outcome: disk cache first (unless the
// point's timeline is wanted — cached entries carry none), then a real
// run on a worker slot.
func (s *Scheduler) runPoint(fp string, o core.Options, sink *Obs, oc *outcome, wantTrace bool) {
	defer close(oc.done)
	cacheable := o.Data == nil
	if s.cache != nil && cacheable && !wantTrace {
		if res, ok := s.cache.Load(fp); ok {
			oc.res, oc.fromDisk = res, true
			return
		}
	}
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	run := o
	run.Trace = wantTrace
	run.Metrics = nil
	if sink != nil && sink.Metrics != nil && !s.remote {
		oc.delta = obs.NewRegistry()
		run.Metrics = oc.delta
	}
	oc.res, oc.err = s.runFn(run)
	oc.executed = true
	if s.cache != nil && cacheable && oc.err == nil {
		if err := s.cache.Store(o, oc.res); err != nil {
			s.mu.Lock()
			if s.storeErr == nil {
				s.storeErr = err
			}
			s.mu.Unlock()
		} else {
			oc.stored = true
		}
	}
}

// flush merges per-execution metric deltas into the sink in canonical
// point order and accounts the sweep.* counters. Each delta merges
// exactly once across the scheduler's lifetime (the memo outlives one
// Execute call), claimed under the scheduler lock.
func (s *Scheduler) flush(points []core.Options, fps, order []string, get func(string) (*outcome, bool), sink *Obs) {
	if sink == nil || sink.Metrics == nil {
		return
	}
	m := sink.Metrics
	for _, fp := range order {
		oc, _ := get(fp)
		if oc.delta == nil {
			continue
		}
		s.mu.Lock()
		claim := !oc.merged
		oc.merged = true
		s.mu.Unlock()
		if claim {
			m.Merge(oc.delta)
		}
	}
	m.Add("sweep.points.planned", int64(len(points)))
	first := make(map[string]bool)
	for _, fp := range fps {
		oc, created := get(fp)
		if first[fp] {
			m.Inc("sweep.dedup.hits")
			continue
		}
		first[fp] = true
		switch {
		case !created:
			m.Inc("sweep.dedup.hits")
		case oc.fromDisk:
			m.Inc("sweep.cache.hits")
		default:
			m.Inc("sweep.points.executed")
		}
		if created && oc.stored {
			m.Inc("sweep.cache.stores")
		}
	}
}

// engineMode sequences the two runner passes.
type engineMode int

const (
	modePlan engineMode = iota + 1
	modeReplay
)

// engine carries one phased runner invocation: the declared point set
// and, after execution, the memoized results the replay pass reads.
type engine struct {
	mode    engineMode
	points  []core.Options
	results map[string]PointResult
}

// point is Config.runErr's scheduler path: record during planning,
// look up during replay.
func (e *engine) point(o core.Options) (core.Result, error) {
	switch e.mode {
	case modePlan:
		e.points = append(e.points, o)
		return core.Result{}, nil
	case modeReplay:
		pr, ok := e.results[fingerprint(o)]
		if !ok {
			panic(fmt.Sprintf("experiments: replay requested a point the plan never declared (%s n=%d K=%d); runner control flow must not depend on result values", o.Scheme, o.N, o.K))
		}
		return pr.Result, pr.Err
	}
	panic("experiments: engine used outside a scheduler phase")
}

// phased runs fn twice around one Execute: once to declare the point
// set, once to assemble output from the memoized results.
func (s *Scheduler) phased(cfg Config, fn func(Config) interface{}) interface{} {
	eng := &engine{mode: modePlan}
	cfg.eng = eng
	fn(cfg) // planning pass; output discarded
	results := s.Execute(eng.points, cfg.Obs)
	eng.results = make(map[string]PointResult, len(results))
	for i, o := range eng.points {
		eng.results[fingerprint(o)] = results[i]
	}
	eng.mode = modeReplay
	return fn(cfg)
}

// Run executes one runner through the scheduler: its point set is
// declared, deduplicated against everything this Scheduler has already
// run, executed on the worker pool, and assembled in deterministic
// order.
func (s *Scheduler) Run(run Runner, prof hetsim.Profile, cfg Config) fmt.Stringer {
	return s.phased(cfg, func(c Config) interface{} { return run(prof, c) }).(fmt.Stringer)
}

// RunShapeChecks executes the reproduction self-test through the
// scheduler; every capability ratio and figure sweep it needs shares
// the scheduler's memo and worker pool.
func (s *Scheduler) RunShapeChecks(cfg Config) *ShapeReport {
	return s.phased(cfg, func(c Config) interface{} { return RunShapeChecks(c) }).(*ShapeReport)
}
