// Package experiments regenerates every table and figure of the
// paper's evaluation section (§VII) on the simulated machines: the
// fault-tolerance capability tables (VII, VIII), the optimization
// studies (Figs 8-13), the overhead comparison (Figs 14-15), and the
// performance comparison against CULA (Figs 16-17).
//
// Absolute numbers come from the calibrated cost model, so they match
// the paper's tables only approximately; what the runners are expected
// to reproduce is the paper's shape — who wins, by what factor, and
// how the curves move with n, K, and the optimizations.
//
// Config.Obs optionally instruments every run a runner performs with
// a shared internal/obs metrics registry and retains the last run's
// timeline, which is how `cmd/abftchol -exp ... -trace-out
// -metrics-out` exports a sweep's evidence.
package experiments

import (
	"fmt"
	"strings"
)

// Point is one x/y sample of a figure series.
type Point struct {
	N     int
	Value float64
}

// Series is one labelled line of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Value returns the series value at n (NaN-free: ok=false if absent).
func (s Series) Value(n int) (float64, bool) {
	for _, p := range s.Points {
		if p.N == n {
			return p.Value, true
		}
	}
	return 0, false
}

// Figure is a reproduced paper figure: several series over the
// matrix-size sweep.
type Figure struct {
	ID     string // "fig8" ... "fig17"
	Title  string
	YLabel string
	Series []Series
}

// String renders the figure as an aligned text table, one row per
// matrix size, one column per series.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", strings.ToUpper(f.ID), f.Title)
	fmt.Fprintf(&b, "%10s", "n")
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %24s", s.Label)
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	for _, p := range f.Series[0].Points {
		fmt.Fprintf(&b, "%10d", p.N)
		for _, s := range f.Series {
			if v, ok := s.Value(p.N); ok {
				fmt.Fprintf(&b, "  %24.3f", v)
			} else {
				fmt.Fprintf(&b, "  %24s", "-")
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "(%s)\n", f.YLabel)
	return b.String()
}

// CSV renders the figure as comma-separated values.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString("n")
	for _, s := range f.Series {
		fmt.Fprintf(&b, ",%s", s.Label)
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	for _, p := range f.Series[0].Points {
		fmt.Fprintf(&b, "%d", p.N)
		for _, s := range f.Series {
			if v, ok := s.Value(p.N); ok {
				fmt.Fprintf(&b, ",%g", v)
			} else {
				b.WriteString(",")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table is a reproduced paper table.
type Table struct {
	ID     string // "table7", "table8"
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", strings.ToUpper(t.ID), t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
