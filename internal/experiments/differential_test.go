package experiments

import (
	"os"
	"sort"
	"testing"

	"abftchol/internal/obs"
)

// The differential battery: the scheduler's whole contract is that
// routing a sweep through plan/execute/replay — at any worker count,
// with or without the cache — changes nothing observable about the
// output. Every renderer of every registered runner is compared
// byte-for-byte against the serial direct path.

// sweepCfg mirrors cmd/abftchol's -quick settings.
func sweepCfg() Config {
	return Config{Sizes: []int{5120, 10240}, CapabilityN: 10240}
}

// renderAll captures every textual form of a runner result.
func renderAll(t *testing.T, out interface{ String() string }) map[string]string {
	t.Helper()
	forms := map[string]string{"text": out.String()}
	type csver interface{ CSV() string }
	type jsoner interface{ JSON() (string, error) }
	if c, ok := out.(csver); ok {
		forms["csv"] = c.CSV()
	}
	if j, ok := out.(jsoner); ok {
		s, err := j.JSON()
		if err != nil {
			t.Fatalf("JSON render: %v", err)
		}
		forms["json"] = s
	}
	return forms
}

// registryIDs returns every registered experiment, deterministically
// ordered.
func registryIDs() []string {
	var ids []string
	for id := range Registry() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// TestSchedulerDifferentialAllRunners locks the engine down against
// the serial path: for every registered runner, the direct call, a
// one-worker scheduler, and an eight-worker scheduler must render
// byte-identical text, CSV, and JSON.
func TestSchedulerDifferentialAllRunners(t *testing.T) {
	reg := Registry()
	serial := NewScheduler(1, nil)
	wide := NewScheduler(8, nil)
	for _, id := range registryIDs() {
		ent := reg[id]
		direct := renderAll(t, ent.Run(ent.Profile, sweepCfg()))
		oneWorker := renderAll(t, serial.Run(ent.Run, ent.Profile, sweepCfg()))
		eightWorkers := renderAll(t, wide.Run(ent.Run, ent.Profile, sweepCfg()))
		for form, want := range direct {
			if got := oneWorker[form]; got != want {
				t.Errorf("%s: -parallel 1 %s output diverges from the serial path:\n--- serial ---\n%s--- scheduler ---\n%s", id, form, want, got)
			}
			if got := eightWorkers[form]; got != want {
				t.Errorf("%s: -parallel 8 %s output diverges from the serial path:\n--- serial ---\n%s--- scheduler ---\n%s", id, form, want, got)
			}
		}
	}
}

// TestSchedulerDifferentialShapeChecks extends the battery to the
// verify mode: the self-test report must not depend on how its runs
// were executed.
func TestSchedulerDifferentialShapeChecks(t *testing.T) {
	cfg := Config{Sizes: []int{5120}, CapabilityN: 5120}
	direct := RunShapeChecks(cfg).String()
	parallel := NewScheduler(8, nil).RunShapeChecks(cfg).String()
	if direct != parallel {
		t.Errorf("verify report diverges under the scheduler:\n--- serial ---\n%s--- scheduler ---\n%s", direct, parallel)
	}
}

// TestSchedulerCacheWarmIdenticalWithZeroExecutions is the cache's
// acceptance test: a second sweep over a warm cache must produce
// byte-identical output while executing nothing — proven through the
// kernel-launch counters, which only real executions emit.
func TestSchedulerCacheWarmIdenticalWithZeroExecutions(t *testing.T) {
	dir := t.TempDir()
	reg := Registry()
	ids := registryIDs()

	runAll := func(sched *Scheduler, sink *Obs) map[string]map[string]string {
		out := make(map[string]map[string]string)
		for _, id := range ids {
			ent := reg[id]
			cfg := sweepCfg()
			cfg.Obs = sink
			out[id] = renderAll(t, sched.Run(ent.Run, ent.Profile, cfg))
		}
		return out
	}

	coldSink := &Obs{Metrics: obs.NewRegistry()}
	cold := runAll(NewScheduler(4, NewCache(dir)), coldSink)
	if got := coldSink.Metrics.Counter("sweep.cache.stores"); got == 0 {
		t.Fatal("cold sweep stored nothing in the cache")
	}

	warmSink := &Obs{Metrics: obs.NewRegistry()}
	warm := runAll(NewScheduler(4, NewCache(dir)), warmSink)

	for _, id := range ids {
		for form, want := range cold[id] {
			if got := warm[id][form]; got != want {
				t.Errorf("%s: warm-cache %s output diverges:\n--- cold ---\n%s--- warm ---\n%s", id, form, want, got)
			}
		}
	}

	// Zero new core executions: no kernel was launched, no run
	// finalized, and the sweep accounting says every point came from
	// the cache or the in-process memo.
	for _, ck := range obs.ClassKeys {
		if got := warmSink.Metrics.Counter("kernel.launches." + ck.Key); got != 0 {
			t.Errorf("warm sweep launched %d %s kernels; want 0", got, ck.Key)
		}
	}
	if got := warmSink.Metrics.Counter("run.count"); got != 0 {
		t.Errorf("warm sweep finalized %d runs; want 0", got)
	}
	if got := warmSink.Metrics.Counter("sweep.points.executed"); got != 0 {
		t.Errorf("warm sweep executed %d points; want 0", got)
	}
	if got := warmSink.Metrics.Counter("sweep.cache.hits"); got == 0 {
		t.Error("warm sweep reported no cache hits")
	}
	if cold, warmed := coldSink.Metrics.Counter("sweep.points.planned"), warmSink.Metrics.Counter("sweep.points.planned"); cold != warmed {
		t.Errorf("planned point count changed between sweeps: cold %d, warm %d", cold, warmed)
	}
}

// TestSchedulerCrossRunnerDedup asserts the memo spans runners: the
// overhead and performance figures share their enhanced runs, so a
// scheduler running both must execute fewer points than it plans.
func TestSchedulerCrossRunnerDedup(t *testing.T) {
	reg := Registry()
	sched := NewScheduler(4, nil)
	sink := &Obs{Metrics: obs.NewRegistry()}
	cfg := sweepCfg()
	cfg.Obs = sink
	for _, id := range []string{"fig14", "fig16"} {
		ent := reg[id]
		sched.Run(ent.Run, ent.Profile, cfg)
	}
	planned := sink.Metrics.Counter("sweep.points.planned")
	executed := sink.Metrics.Counter("sweep.points.executed")
	dedup := sink.Metrics.Counter("sweep.dedup.hits")
	if executed >= planned {
		t.Errorf("no dedup across fig14+fig16: planned %d, executed %d", planned, executed)
	}
	if dedup == 0 {
		t.Error("sweep.dedup.hits = 0 across overlapping runners")
	}
	if executed+dedup != planned {
		t.Errorf("accounting: executed %d + dedup %d != planned %d", executed, dedup, planned)
	}
}

// TestCacheCorruptEntryIsMiss asserts a damaged cache never poisons a
// sweep: truncated or foreign files are re-run and rewritten.
func TestCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	reg := Registry()
	ent := reg["fig12"]
	cfg := Config{Sizes: []int{5120}}
	want := NewScheduler(1, nil).Run(ent.Run, ent.Profile, cfg).String()

	NewScheduler(1, NewCache(dir)).Run(ent.Run, ent.Profile, cfg)
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("cache not populated: %v (%d entries)", err, len(entries))
	}
	for _, e := range entries {
		if err := os.WriteFile(dir+"/"+e.Name(), []byte("{broken"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	sink := &Obs{Metrics: obs.NewRegistry()}
	cfg.Obs = sink
	got := NewScheduler(1, NewCache(dir)).Run(ent.Run, ent.Profile, cfg).String()
	if got != want {
		t.Errorf("corrupt cache changed the output:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if hits := sink.Metrics.Counter("sweep.cache.hits"); hits != 0 {
		t.Errorf("%d cache hits served from corrupt entries", hits)
	}
	if ex := sink.Metrics.Counter("sweep.points.executed"); ex == 0 {
		t.Error("corrupt cache should force re-execution")
	}
}
