package experiments

import (
	"strings"
	"testing"

	"abftchol/internal/hetsim"
)

func TestMultiVectorFigureShape(t *testing.T) {
	f := MultiVectorFigure(hetsim.Tardis(), Config{Sizes: []int{5120, 10240}})
	if len(f.Series) != 3 {
		t.Fatalf("series = %d", len(f.Series))
	}
	for i := range f.Series[0].Points {
		m2 := f.Series[0].Points[i].Value
		m4 := f.Series[1].Points[i].Value
		m6 := f.Series[2].Points[i].Value
		if !(m2 < m4 && m4 < m6) {
			t.Fatalf("overhead must grow with m: %g %g %g", m2, m4, m6)
		}
		// The generalization must stay affordable: m=6 within a few
		// points of the paper's m=2.
		if m6-m2 > 4 {
			t.Fatalf("m=6 costs %.2f points over m=2", m6-m2)
		}
	}
}

func TestCoverageStudyShape(t *testing.T) {
	f := CoverageStudy(hetsim.Tardis(), Config{CapabilityN: 5120})
	overhead, exposure, restarts := f.Series[0], f.Series[1], f.Series[2]
	// K=1 is the fully protected baseline: nothing ever propagates.
	if exposure.Points[0].Value != 0 || restarts.Points[0].Value != 0 {
		t.Fatalf("K=1 must have zero exposure and restarts: %+v %+v", exposure.Points[0], restarts.Points[0])
	}
	// Exposure grows monotonically with K: corrupted data is read more
	// often before its gate repairs it.
	for i := 1; i < len(exposure.Points); i++ {
		if exposure.Points[i].Value < exposure.Points[i-1].Value {
			t.Fatalf("exposure not monotone in K: %+v", exposure.Points)
		}
	}
	// Overhead with restarts included can never drop below the
	// fault-free overhead floor by much; sanity bounds only.
	for _, p := range overhead.Points {
		if p.Value < 0 || p.Value > 400 {
			t.Fatalf("overhead out of range: %+v", p)
		}
	}
}

func TestExtensionRegistry(t *testing.T) {
	reg := Registry()
	for _, id := range ExtensionIDs() {
		if _, ok := reg[id]; !ok {
			t.Fatalf("extension %s not registered", id)
		}
	}
}

func TestJSONOutputs(t *testing.T) {
	f := &Figure{ID: "figj", Title: "t", YLabel: "y",
		Series: []Series{{Label: "a", Points: []Point{{5120, 1.25}}}}}
	js, err := f.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"ID": "figj"`, `"Label": "a"`, `"Value": 1.25`} {
		if !strings.Contains(js, want) {
			t.Fatalf("figure JSON missing %s:\n%s", want, js)
		}
	}
	tb := &Table{ID: "tj", Title: "t", Header: []string{"h"}, Rows: [][]string{{"v"}}}
	js, err = tb.JSON()
	if err != nil || !strings.Contains(js, `"tj"`) {
		t.Fatalf("table JSON: %v\n%s", err, js)
	}
	rep := &ShapeReport{Checks: []ShapeCheck{{ID: "c", Claim: "x", Pass: true}}}
	js, err = rep.JSON()
	if err != nil || !strings.Contains(js, `"Pass": true`) {
		t.Fatalf("report JSON: %v\n%s", err, js)
	}
}

func TestChooseKErrorFreePrefersLargeK(t *testing.T) {
	c := ChooseK(hetsim.Tardis(), 10240, 0, 1, []int{1, 3, 8})
	if c.BestK != 8 {
		t.Fatalf("error-free tuning chose K=%d, want the largest candidate", c.BestK)
	}
	if len(c.Candidates) != 3 {
		t.Fatalf("candidates %v", c.Candidates)
	}
	if !strings.Contains(c.String(), "choose K=8") {
		t.Fatalf("render:\n%s", c)
	}
}

func TestChooseKHighRatePrefersSmallK(t *testing.T) {
	// At a punishing error rate the restarts at large K dominate and
	// the tuner retreats to K <= 2 (the fully protected settings).
	c := ChooseK(hetsim.Tardis(), 10240, 0.5, 10, []int{1, 2, 5, 8})
	if c.BestK > 2 {
		t.Fatalf("high-rate tuning chose K=%d, want <= 2:\n%s", c.BestK, c)
	}
	// Restart rates must be monotone-ish: the largest K restarts more
	// than the smallest.
	first, last := c.Candidates[0], c.Candidates[len(c.Candidates)-1]
	if last.RestartRate <= first.RestartRate {
		t.Fatalf("restart rate did not grow with K: %+v", c.Candidates)
	}
}

func TestChooseKDefaults(t *testing.T) {
	c := ChooseK(hetsim.Tardis(), 5120, 0, 0, nil)
	if len(c.Candidates) != 5 {
		t.Fatalf("default candidates: %v", c.Candidates)
	}
}

func TestVariantFigureShape(t *testing.T) {
	f := VariantFigure(hetsim.Tardis(), Config{Sizes: []int{5120, 10240}})
	if len(f.Series) != 4 {
		t.Fatalf("series = %d", len(f.Series))
	}
	for i := range f.Series[0].Points {
		// Both baselines produce positive GFLOPS and both enhanced
		// overheads are positive and single-digit.
		if f.Series[0].Points[i].Value <= 0 || f.Series[1].Points[i].Value <= 0 {
			t.Fatal("non-positive GFLOPS")
		}
		for _, si := range []int{2, 3} {
			v := f.Series[si].Points[i].Value
			if v <= 0 || v > 10 {
				t.Fatalf("overhead out of range: %g", v)
			}
		}
	}
}

func TestScrubFigureShape(t *testing.T) {
	f := ScrubFigure(hetsim.Tardis(), Config{Sizes: []int{5120, 10240}})
	for i := range f.Series[0].Points {
		enh := f.Series[0].Points[i].Value
		scrub1 := f.Series[1].Points[i].Value
		scrub5 := f.Series[2].Points[i].Value
		if scrub1 <= enh {
			t.Fatalf("scrub K=1 (%.2f%%) not above enhanced (%.2f%%)", scrub1, enh)
		}
		if scrub5 >= scrub1 {
			t.Fatalf("scrub K=5 (%.2f%%) not below scrub K=1 (%.2f%%)", scrub5, scrub1)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var cfg Config
	tar := hetsim.Tardis()
	if got := cfg.sizes(tar); len(got) == 0 || got[0] != 5120 {
		t.Fatalf("default sizes %v", got)
	}
	if got := cfg.capabilityN(tar); got != 20480 {
		t.Fatalf("tardis capability n %d", got)
	}
	if got := cfg.capabilityN(hetsim.Bulldozer64()); got != 30720 {
		t.Fatalf("bulldozer capability n %d", got)
	}
	if got := cfg.capabilityN(hetsim.Laptop()); got != hetsim.Laptop().MaxN {
		t.Fatalf("laptop capability n %d", got)
	}
	cfg.CapabilityN = 7
	if cfg.capabilityN(tar) != 7 {
		t.Fatal("override ignored")
	}
}
