package experiments

import (
	"fmt"
	"strings"

	"abftchol/internal/core"
	"abftchol/internal/fault"
	"abftchol/internal/hetsim"
)

// ChooseK operationalizes §V-C's guidance — "by properly adjusting the
// number K, we can achieve minimum overhead and still get enough error
// correction capability" — as an empirical tuner: for each candidate
// interval it runs seeded Poisson storage-error campaigns on the model
// plane and picks the K with the lowest *expected* time, restarts
// included. High error rates push the answer to K=1; error-free
// machines push it as high as the candidate list goes.

// KChoice is the tuner's verdict for one machine/size/error-rate.
type KChoice struct {
	Profile string
	N       int
	// RatePerIteration is the assumed storage-error rate.
	RatePerIteration float64
	// BestK minimizes ExpectedTime among Candidates.
	BestK int
	// Candidates holds the evaluated intervals with their mean times
	// (seconds, restarts included) and restart rates (0..1).
	Candidates []KCandidate
}

// KCandidate is one evaluated verification interval.
type KCandidate struct {
	K            int
	ExpectedTime float64
	RestartRate  float64
}

// String renders the verdict.
func (c *KChoice) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verification-interval tuning on %s, n=%d, %.3f storage errors/iteration:\n",
		c.Profile, c.N, c.RatePerIteration)
	for _, cand := range c.Candidates {
		marker := " "
		if cand.K == c.BestK {
			marker = "*"
		}
		fmt.Fprintf(&b, " %s K=%-2d  expected %8.4fs  restarts %5.1f%%\n",
			marker, cand.K, cand.ExpectedTime, cand.RestartRate*100)
	}
	fmt.Fprintf(&b, "choose K=%d\n", c.BestK)
	return b.String()
}

// ChooseK evaluates the candidate intervals under the given error rate
// (trials seeded campaigns each) and returns the cheapest. A zero rate
// runs one clean pass per candidate.
func ChooseK(prof hetsim.Profile, n int, rate float64, trials int, candidates []int) *KChoice {
	if len(candidates) == 0 {
		candidates = []int{1, 2, 3, 5, 8}
	}
	if trials < 1 {
		trials = 1
	}
	nb := n / prof.BlockSize
	choice := &KChoice{Profile: prof.Name, N: n, RatePerIteration: rate}
	for _, k := range candidates {
		var total float64
		restarts := 0
		runs := trials
		if rate <= 0 {
			runs = 1
		}
		for trial := 0; trial < runs; trial++ {
			o := enhanced(prof, n, k)
			o.MaxAttempts = 10
			if rate > 0 {
				o.Scenarios = fault.Campaign(fault.CampaignConfig{
					Blocks:           nb,
					BlockSize:        prof.BlockSize,
					RatePerIteration: rate,
					Seed:             int64(7919*k + trial),
				})
			}
			r, err := core.Run(o)
			if err != nil || r.Attempts > 1 {
				restarts++
			}
			total += r.Time
		}
		choice.Candidates = append(choice.Candidates, KCandidate{
			K:            k,
			ExpectedTime: total / float64(runs),
			RestartRate:  float64(restarts) / float64(runs),
		})
	}
	best := choice.Candidates[0]
	for _, cand := range choice.Candidates[1:] {
		if cand.ExpectedTime < best.ExpectedTime {
			best = cand
		}
	}
	choice.BestK = best.K
	return choice
}
