package experiments

import (
	"fmt"
	"sync"

	"abftchol/internal/core"
	"abftchol/internal/hetsim"
	"abftchol/internal/obs"
)

// Obs collects observability artifacts across every factorization an
// experiment (or a whole `-exp all` sweep) runs: a shared metrics
// registry accumulating counters over all runs, and — when
// CaptureTrace is set — the timeline of the most recent run, which
// for the standard sweeps is the largest, most interesting one.
// Attach it via Config.Obs; cmd/abftchol builds one for the
// -metrics-out / -trace-out flags. An Obs may be shared by concurrent
// scheduler runs: the registry locks internally and the retained
// trace is guarded here.
type Obs struct {
	// Metrics receives every run's counters and histograms (nil: no
	// metrics).
	Metrics *obs.Registry
	// CaptureTrace records each run's timeline; only the last run's
	// trace is retained, so memory stays bounded by one run.
	CaptureTrace bool

	mu sync.Mutex
	// lastTrace and lastTraceLabel identify the retained timeline.
	lastTrace      *hetsim.Trace
	lastTraceLabel string
}

// LastTrace returns the retained timeline and its label (nil if no
// traced run has finished).
func (s *Obs) LastTrace() (*hetsim.Trace, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastTrace, s.lastTraceLabel
}

// setLastTrace replaces the retained timeline.
func (s *Obs) setLastTrace(tr *hetsim.Trace, label string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastTrace = tr
	s.lastTraceLabel = label
}

// instrument copies the sink's wiring into one run's options.
func (c Config) instrument(o core.Options) core.Options {
	if c.Obs != nil {
		if c.Obs.Metrics != nil {
			o.Metrics = c.Obs.Metrics
		}
		if c.Obs.CaptureTrace {
			o.Trace = true
		}
	}
	return o
}

// capture retains a finished run's trace in the sink.
func (c Config) capture(r core.Result) {
	if c.Obs != nil {
		c.Obs.capture(r)
	}
}

func (s *Obs) capture(r core.Result) {
	if s != nil && s.CaptureTrace && r.Trace != nil {
		s.setLastTrace(r.Trace, fmt.Sprintf("%s n=%d K=%d %s", r.Scheme, r.N, r.K, r.Placement))
	}
}

// runErr resolves one factorization point. With no engine attached the
// point executes inline with the config's observability wiring — the
// original serial path, still used when a runner is called directly.
// Under a scheduler the call is routed to the current phase: recorded
// during planning (stub result), answered from the memo during replay.
func (c Config) runErr(o core.Options) (core.Result, error) {
	if c.eng != nil {
		return c.eng.point(o)
	}
	r, err := core.Run(c.instrument(o))
	c.capture(r) // even a failed run carries its timeline
	return r, err
}

// run is runErr for the sweeps that never exhaust MaxAttempts by
// construction: an error means the harness itself is misconfigured,
// so it panics.
func (c Config) run(o core.Options) core.Result {
	r, err := c.runErr(o)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s n=%d: %v", o.Scheme, o.N, err))
	}
	return r
}
