package experiments

import (
	"fmt"

	"abftchol/internal/core"
	"abftchol/internal/hetsim"
	"abftchol/internal/obs"
)

// Obs collects observability artifacts across every factorization an
// experiment (or a whole `-exp all` sweep) runs: a shared metrics
// registry accumulating counters over all runs, and — when
// CaptureTrace is set — the timeline of the most recent run, which
// for the standard sweeps is the largest, most interesting one.
// Attach it via Config.Obs; cmd/abftchol builds one for the
// -metrics-out / -trace-out flags.
type Obs struct {
	// Metrics receives every run's counters and histograms (nil: no
	// metrics).
	Metrics *obs.Registry
	// CaptureTrace records each run's timeline; only the last run's
	// trace is retained, so memory stays bounded by one run.
	CaptureTrace bool
	// LastTrace and LastTraceLabel identify the retained timeline.
	LastTrace      *hetsim.Trace
	LastTraceLabel string
}

// instrument copies the sink's wiring into one run's options.
func (c Config) instrument(o core.Options) core.Options {
	if c.Obs != nil {
		if c.Obs.Metrics != nil {
			o.Metrics = c.Obs.Metrics
		}
		if c.Obs.CaptureTrace {
			o.Trace = true
		}
	}
	return o
}

// capture retains a finished run's trace in the sink.
func (c Config) capture(r core.Result) {
	if c.Obs != nil && c.Obs.CaptureTrace && r.Trace != nil {
		c.Obs.LastTrace = r.Trace
		c.Obs.LastTraceLabel = fmt.Sprintf("%s n=%d K=%d %s", r.Scheme, r.N, r.K, r.Placement)
	}
}

// run executes one factorization with the config's observability
// wiring, panicking (like mustRun) if it exhausts its attempts.
func (c Config) run(o core.Options) core.Result {
	r := mustRun(c.instrument(o))
	c.capture(r)
	return r
}
