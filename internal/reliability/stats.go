// Binomial interval estimation for campaign coverage rates. The
// Wilson score interval is the standard choice for proportions near 0
// or 1 (exactly where detection/correction rates live): unlike the
// normal approximation it never leaves [0,1] and stays calibrated at
// small n.

package reliability

import "math"

// Z95 is the two-sided 95% normal quantile used for campaign
// confidence intervals.
const Z95 = 1.959963984540054

// Interval is a point estimate with its Wilson score bounds.
type Interval struct {
	Rate float64 `json:"rate"`
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
}

// Wilson returns the k/n proportion with its Wilson score interval at
// confidence level z (standard normal quantile). n == 0 yields the
// vacuous (0, [0,1]) interval.
func Wilson(k, n int, z float64) Interval {
	if n <= 0 {
		return Interval{Rate: 0, Lo: 0, Hi: 1}
	}
	p := float64(k) / float64(n)
	nn := float64(n)
	z2 := z * z
	denom := 1 + z2/nn
	center := (p + z2/(2*nn)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nn+z2/(4*nn*nn))
	lo := center - half
	hi := center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Interval{Rate: p, Lo: lo, Hi: hi}
}
