package reliability

import (
	"errors"
	"math"
	"testing"

	"abftchol/internal/core"
	"abftchol/internal/fault"
	"abftchol/internal/hetsim"
)

// trial runs one single-attempt factorization with the given scheme
// and scenarios and classifies it.
func trial(t *testing.T, scheme core.Scheme, scns []fault.Scenario) Outcome {
	t.Helper()
	o := core.Options{
		N:                256,
		BlockSize:        32,
		K:                2,
		Scheme:           scheme,
		Profile:          hetsim.Laptop(),
		MaxAttempts:      1,
		ConcurrentRecalc: true,
		Scenarios:        scns,
	}
	res, err := core.Run(o)
	out, cerr := Classify(res, err)
	if cerr != nil {
		t.Fatalf("classify %v/%v: %v", scheme, scns, cerr)
	}
	return out
}

// TestClassifyAgainstCore pins the taxonomy to the engine's actual
// behavior for the canonical cases of the paper's model.
func TestClassifyAgainstCore(t *testing.T) {
	storage := fault.Scenario{Kind: fault.Storage, Iter: 4, BI: 5, BJ: 2, Row: 3, Col: 7, Delta: 100}
	burst := []fault.Scenario{
		{Kind: fault.Storage, Iter: 4, BI: 5, BJ: 2, Row: 3, Col: 7, Delta: 100},
		{Kind: fault.Storage, Iter: 4, BI: 5, BJ: 2, Row: 6, Col: 7, Delta: 100},
	}

	// No faults: clean for every scheme.
	for _, s := range []core.Scheme{core.SchemeNone, core.SchemeOnline, core.SchemeEnhanced} {
		if got := trial(t, s, nil); got != OutcomeClean {
			t.Fatalf("%v clean trial classified %v", s, got)
		}
	}
	// Unprotected MAGMA ships the corruption silently.
	if got := trial(t, core.SchemeNone, []fault.Scenario{storage}); got != OutcomeSilentCorruption {
		t.Fatalf("magma storage fault classified %v", got)
	}
	// Enhanced verifies before read: single storage fault corrected.
	if got := trial(t, core.SchemeEnhanced, []fault.Scenario{storage}); got != OutcomeDetectedCorrected {
		t.Fatalf("enhanced storage fault classified %v", got)
	}
	// Two faults in one column exceed the m=2 code's single-error
	// correction: detected but uncorrectable.
	if got := trial(t, core.SchemeEnhanced, burst); got != OutcomeDetectedUncorrectable {
		t.Fatalf("enhanced burst classified %v", got)
	}
	// Online only verifies after writes: a storage fault in an
	// already-factored block escapes until the final audit — the
	// Enhanced-vs-Online gap that motivates the paper.
	if got := trial(t, core.SchemeOnline, []fault.Scenario{storage}); got != OutcomeSilentCorruption {
		t.Fatalf("online storage fault classified %v", got)
	}
	// A compute fault lands in a block Online verifies after the
	// write, so it is corrected.
	compute := fault.Scenario{Kind: fault.Computation, Op: fault.OpGEMM, Iter: 3, BI: 5, BJ: 3, Row: 2, Col: 4, Delta: 100}
	if got := trial(t, core.SchemeOnline, []fault.Scenario{compute}); got != OutcomeDetectedCorrected {
		t.Fatalf("online compute fault classified %v", got)
	}
}

func TestClassifyRejectsMultiAttempt(t *testing.T) {
	if _, err := Classify(core.Result{Attempts: 2}, nil); err == nil {
		t.Fatal("multi-attempt result accepted")
	}
	if _, err := Classify(core.Result{Attempts: 1}, errors.New("core: block size must divide n")); err == nil {
		t.Fatal("non-taxonomy error accepted")
	}
}

func TestOutcomeKeysStable(t *testing.T) {
	want := map[Outcome]string{
		OutcomeClean:                 "clean",
		OutcomeDetectedCorrected:     "detected-corrected",
		OutcomeDetectedUncorrectable: "detected-uncorrectable",
		OutcomeSilentCorruption:      "silent-corruption",
	}
	for _, o := range Outcomes() {
		if o.String() != want[o] {
			t.Fatalf("outcome %d renders %q", int(o), o)
		}
		if o.Describe() == "" {
			t.Fatalf("outcome %v lacks a description", o)
		}
		if o.Struck() != (o != OutcomeClean) {
			t.Fatalf("Struck wrong for %v", o)
		}
	}
	if Outcome(99).String() == "" {
		t.Fatal("unknown outcome renders empty")
	}
}

func TestWilson(t *testing.T) {
	// Vacuous interval at n=0.
	if iv := Wilson(0, 0, Z95); iv.Rate != 0 || iv.Lo != 0 || iv.Hi != 1 {
		t.Fatalf("n=0 interval %+v", iv)
	}
	// Known value: k=8, n=10, z=1.96 gives the classic Wilson example
	// (~0.49, ~0.943).
	iv := Wilson(8, 10, Z95)
	if math.Abs(iv.Rate-0.8) > 1e-12 {
		t.Fatalf("rate %v", iv.Rate)
	}
	if math.Abs(iv.Lo-0.4901) > 5e-3 || math.Abs(iv.Hi-0.9433) > 5e-3 {
		t.Fatalf("interval [%.4f, %.4f]", iv.Lo, iv.Hi)
	}
	// Degenerate proportions stay inside [0,1] and exclude nothing
	// they shouldn't.
	if iv := Wilson(0, 50, Z95); iv.Lo != 0 || iv.Hi <= 0 || iv.Hi >= 0.2 {
		t.Fatalf("k=0 interval %+v", iv)
	}
	if iv := Wilson(50, 50, Z95); iv.Hi != 1 || iv.Lo >= 1 || iv.Lo <= 0.8 {
		t.Fatalf("k=n interval %+v", iv)
	}
	// Monotone in n: more evidence tightens the interval.
	wide := Wilson(8, 10, Z95)
	tight := Wilson(800, 1000, Z95)
	if tight.Hi-tight.Lo >= wide.Hi-wide.Lo {
		t.Fatal("interval failed to tighten with n")
	}
}
