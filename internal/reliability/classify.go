// Trial classification for reliability campaigns: map one core.Run
// outcome (result + error) onto the four-way taxonomy the paper's
// coverage statistics are computed over. Classification is purely a
// function of the typed error chain and the model-plane ledger
// accounting in the Result — no message parsing — so it is stable
// across error-text changes and identical on every campaign plane.

package reliability

import (
	"fmt"

	"abftchol/internal/core"
)

// Outcome is the four-way verdict of one fault-injection trial.
type Outcome int

const (
	// OutcomeClean: no fault fired in the trial window and the run
	// finished normally. Clean trials calibrate the pipeline (any
	// other verdict on a clean trial is a campaign bug) but are
	// excluded from struck-conditioned rates.
	OutcomeClean Outcome = iota
	// OutcomeDetectedCorrected: every injected fault was detected by
	// the scheme's checksum discipline and repaired in place; the run
	// finished with a verified factor.
	OutcomeDetectedCorrected
	// OutcomeDetectedUncorrectable: the scheme detected corruption but
	// could not repair it — more simultaneous errors than the checksum
	// code corrects, or a POTF2 fail-stop. With MaxAttempts=1 the run
	// aborts here; detection worked, correction did not.
	OutcomeDetectedUncorrectable
	// OutcomeSilentCorruption: a fault fired and the scheme's online
	// protocol never caught it. For FT schemes this surfaces as the
	// end-of-run audit rejecting the factor (detection came only from
	// the final acceptance test, not the scheme); for unprotected
	// schemes the corrupted factor is simply returned as if correct.
	OutcomeSilentCorruption
)

// outcomeKeys are the stable journal/report spellings.
var outcomeKeys = map[Outcome]string{
	OutcomeClean:                 "clean",
	OutcomeDetectedCorrected:     "detected-corrected",
	OutcomeDetectedUncorrectable: "detected-uncorrectable",
	OutcomeSilentCorruption:      "silent-corruption",
}

func (o Outcome) String() string {
	if k, ok := outcomeKeys[o]; ok {
		return k
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Outcomes lists all verdicts in canonical report order.
func Outcomes() []Outcome {
	return []Outcome{OutcomeClean, OutcomeDetectedCorrected, OutcomeDetectedUncorrectable, OutcomeSilentCorruption}
}

// Struck reports whether the verdict implies at least one injected
// fault (everything but clean).
func (o Outcome) Struck() bool { return o != OutcomeClean }

// Describe returns the one-line definition used in generated docs.
func (o Outcome) Describe() string {
	switch o {
	case OutcomeClean:
		return "no fault fired in the trial window; run finished normally"
	case OutcomeDetectedCorrected:
		return "all injected faults detected by the scheme and repaired in place"
	case OutcomeDetectedUncorrectable:
		return "corruption detected but beyond the checksum code's correction capability (or a POTF2 fail-stop)"
	case OutcomeSilentCorruption:
		return "a fault escaped the scheme's online protocol — caught only by the end-of-run audit, or not at all"
	}
	return ""
}

// Classify maps one single-attempt trial (core.Run with MaxAttempts=1)
// onto the taxonomy. It returns an error only for outcomes a campaign
// trial cannot legitimately produce — an option-validation failure, or
// a multi-attempt run, both of which mean the campaign was misplanned
// rather than the trial went badly.
func Classify(res core.Result, runErr error) (Outcome, error) {
	if res.Attempts > 1 {
		return 0, fmt.Errorf("reliability: trial ran %d attempts; campaigns classify single attempts only", res.Attempts)
	}
	struck := len(res.Injections) > 0
	if runErr != nil {
		switch {
		case core.Rejected(runErr):
			// The scheme finished but the final audit found corruption
			// the online protocol missed: the defining silent-error
			// escape (Online's storage-fault gap in the paper).
			return OutcomeSilentCorruption, nil
		case core.Uncorrectable(runErr), core.FailStop(runErr):
			return OutcomeDetectedUncorrectable, nil
		default:
			return 0, fmt.Errorf("reliability: trial failed outside the fault taxonomy: %w", runErr)
		}
	}
	if !struck {
		return OutcomeClean, nil
	}
	if res.Corrections > 0 {
		return OutcomeDetectedCorrected, nil
	}
	// Struck, finished, nothing corrected: only non-FT schemes get
	// here (an FT scheme with pending corruption is rejected above),
	// and for them the corrupted factor shipped silently.
	return OutcomeSilentCorruption, nil
}
