package reliability

import (
	"math"
	"strings"
	"testing"
)

// tardisRun is the paper's Table VII workload: 20480² doubles plus
// checksums, ~10.5 s.
var tardisRun = Workload{N: 20480, B: 256, Seconds: 10.5, ChecksumVectors: 2}

func TestResidentBits(t *testing.T) {
	// 20480² doubles = 3.2 GiB data; checksums add 2/256 of that.
	bits := tardisRun.residentBits()
	data := 20480.0 * 20480 * 64
	want := data * (1 + 2.0/256)
	if math.Abs(bits-want)/want > 1e-12 {
		t.Fatalf("bits = %g, want %g", bits, want)
	}
	// Default vector count is 2.
	w := tardisRun
	w.ChecksumVectors = 0
	if w.residentBits() != bits {
		t.Fatal("default m != 2")
	}
}

func TestExpectedErrorsScalesLinearly(t *testing.T) {
	e1 := ExpectedErrors(ServerDRAM, tardisRun)
	e500 := ExpectedErrors(ConsumerGDDR, tardisRun)
	if math.Abs(e500/e1-500) > 1e-9 {
		t.Fatalf("rate scaling broken: %g vs %g", e1, e500)
	}
	long := tardisRun
	long.Seconds *= 10
	if math.Abs(ExpectedErrors(ServerDRAM, long)/e1-10) > 1e-9 {
		t.Fatal("time scaling broken")
	}
	if ExpectedErrors(ServerDRAM, Workload{N: 1024, B: 32}) != 0 {
		t.Fatal("zero duration must give zero errors")
	}
}

func TestMagnitudesAreSane(t *testing.T) {
	// Server DRAM: a single 10-second factorization should essentially
	// never be struck (one error per ~millions of runs).
	if runs := RunsBetweenErrors(ServerDRAM, tardisRun); runs < 1e4 {
		t.Fatalf("server DRAM: error every %g runs — too pessimistic", runs)
	}
	// Harsh environments: errors become a per-thousands-of-runs event,
	// the regime where the paper's scheme matters for long campaigns.
	if runs := RunsBetweenErrors(HarshEnvironment, tardisRun); runs > 1e7 {
		t.Fatalf("harsh: error every %g runs — too optimistic", runs)
	}
	if p := ProbabilityAtLeastOne(HarshEnvironment, tardisRun); p <= 0 || p >= 1 {
		t.Fatalf("probability %g out of range", p)
	}
}

func TestErrorsPerIteration(t *testing.T) {
	perIter := ErrorsPerIteration(ConsumerGDDR, tardisRun)
	total := ExpectedErrors(ConsumerGDDR, tardisRun)
	iters := 20480.0 / 256
	if math.Abs(perIter*iters-total) > 1e-12 {
		t.Fatalf("per-iteration conversion: %g * %g != %g", perIter, iters, total)
	}
	if ErrorsPerIteration(ConsumerGDDR, Workload{N: 10, B: 0, Seconds: 1}) != 0 {
		t.Fatal("degenerate workload must give 0")
	}
}

func TestRunsBetweenErrorsInfinity(t *testing.T) {
	if !math.IsInf(RunsBetweenErrors(0, tardisRun), 1) {
		t.Fatal("zero rate must give infinite spacing")
	}
}

func TestDescribe(t *testing.T) {
	s := Describe(ConsumerGDDR, tardisRun)
	for _, want := range []string{"FIT/Mbit", "errors/run", "errors/iteration"} {
		if !strings.Contains(s, want) {
			t.Fatalf("describe missing %q:\n%s", want, s)
		}
	}
}
