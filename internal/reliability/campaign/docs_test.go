package campaign

import (
	"os"
	"strings"
	"testing"
)

// TestReliabilityDocCurrent pins docs/RELIABILITY.md to the live
// code: the fault-class table, the outcome table, and the sample
// campaign must be exactly what tools/reldoc would regenerate.
// Because DocSample executes a real campaign, this test is also the
// round-trip proof that the documented journal and report formats
// still hold — a change that alters any shown byte fails here until
// `go generate ./internal/reliability/campaign` is re-run.
func TestReliabilityDocCurrent(t *testing.T) {
	data, err := os.ReadFile("../../../docs/RELIABILITY.md")
	if err != nil {
		t.Fatalf("docs/RELIABILITY.md: %v (the reliability doc ships with the campaign engine)", err)
	}
	doc := string(data)
	sample, err := DocSample()
	if err != nil {
		t.Fatalf("record sample campaign: %v", err)
	}
	for _, sec := range []struct {
		name, begin, end, body string
	}{
		{"fault-class table", ClassesBegin, ClassesEnd, ClassesTable()},
		{"outcome table", OutcomesBegin, OutcomesEnd, OutcomesTable()},
		{"sample campaign", SampleBegin, SampleEnd, sample},
	} {
		want := sec.begin + "\n" + sec.body + sec.end
		if !strings.Contains(doc, want) {
			i := strings.Index(doc, sec.begin)
			j := strings.Index(doc, sec.end)
			got := "(markers missing)"
			if i >= 0 && j > i {
				got = doc[i : j+len(sec.end)]
			}
			t.Errorf("docs/RELIABILITY.md %s is stale; run `go generate ./internal/reliability/campaign`\n--- want ---\n%s\n--- have ---\n%s", sec.name, want, got)
		}
	}
}

// TestDocSampleDeterministic guards the property the embedded sample
// relies on: two recordings are byte-identical.
func TestDocSampleDeterministic(t *testing.T) {
	a, err := DocSample()
	if err != nil {
		t.Fatal(err)
	}
	b, err := DocSample()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("DocSample is not deterministic:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}
