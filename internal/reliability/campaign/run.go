package campaign

import (
	"context"
	"fmt"

	"abftchol/internal/core"
	"abftchol/internal/experiments"
	"abftchol/internal/obs"
	"abftchol/internal/reliability"
)

// RunOptions configures one campaign execution.
type RunOptions struct {
	// JournalPath, when set, checkpoints every completed shard to
	// this append-only JSONL file and resumes from it on reopen.
	// Empty: in-memory only.
	JournalPath string
	// Metrics receives campaign.* accounting (nil: none).
	Metrics *obs.Registry
	// Logf receives coarse progress lines (nil: silent).
	Logf func(format string, args ...any)
}

func (o RunOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

func (o RunOptions) inc(name string, d int64) {
	if o.Metrics != nil {
		o.Metrics.Add(name, d)
	}
}

// Run executes (or resumes) the campaign described by cfg on the
// given scheduler and returns its aggregated report. Shards execute
// in plan order; each shard's trials fan over the scheduler's worker
// pool, each trial is classified, and the shard's tally is journaled
// before the next shard starts. Cancellation is observed between
// shards — a canceled run returns an error wrapping ctx.Err(), and
// whatever the journal checkpointed resumes on the next Run. The
// returned report is a pure function of cfg — independent of
// scheduling order, resume points, and worker count.
func Run(ctx context.Context, cfg Config, sched *experiments.Scheduler, opts RunOptions) (*Report, error) {
	if sched == nil {
		return nil, fmt.Errorf("campaign: nil scheduler")
	}
	if sched.Remote() {
		// Classified error codes survive the wire now (JobInfo.ErrorCode
		// reconstructs the typed chain client-side), but a campaign's
		// trials still run server-side as one job kind: shipping ~10⁴
		// individual trial jobs over HTTP would swamp the admission
		// queue, and the shard journal could not checkpoint them.
		return nil, fmt.Errorf("campaign: cannot classify trials through a remote scheduler; submit a campaign job to the daemon instead")
	}
	plan, err := NewPlan(cfg)
	if err != nil {
		return nil, err
	}
	fp, err := plan.Config.Fingerprint()
	if err != nil {
		return nil, err
	}

	var journal *Journal
	done := map[ShardKey]Counts{}
	if opts.JournalPath != "" {
		journal, done, err = OpenJournal(opts.JournalPath, fp, plan.Config)
		if err != nil {
			return nil, err
		}
		defer journal.Close()
	}

	opts.inc("campaign.cells.planned", int64(len(plan.Cells)))
	opts.inc("campaign.shards.planned", int64(len(plan.Shards)))
	opts.inc("campaign.trials.planned", int64(plan.Trials()))
	opts.logf("campaign %.12s: %d cells, %d shards, %d trials (%d shards journaled)",
		fp, len(plan.Cells), len(plan.Shards), plan.Trials(), len(done))

	perCell := map[int]Counts{}
	resumed := 0
	for _, sh := range plan.Shards {
		// Re-check cancellation at every shard boundary: a daemon
		// shutdown (or a canceled CLI run) stops after the in-flight
		// shard, and the journal keeps what completed.
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("campaign %.12s: canceled at a shard boundary: %w", fp, err)
		}
		cell := plan.Cells[sh.Cell]
		if counts, ok := done[ShardKey{sh.Cell, sh.Index}]; ok {
			if got, want := counts.Total(), sh.Hi-sh.Lo; got != want {
				return nil, fmt.Errorf("campaign: journaled shard %s#%d tallies %d trials, plan says %d", cell.Key(), sh.Index, got, want)
			}
			c := perCell[sh.Cell]
			c.Merge(counts)
			perCell[sh.Cell] = c
			resumed++
			continue
		}
		points := make([]core.Options, 0, sh.Hi-sh.Lo)
		for trial := sh.Lo; trial < sh.Hi; trial++ {
			points = append(points, plan.TrialOptions(sh.Cell, trial))
		}
		results := sched.Execute(points, nil)
		var counts Counts
		for i, pr := range results {
			out, cerr := reliability.Classify(pr.Result, pr.Err)
			if cerr != nil {
				return nil, fmt.Errorf("campaign: cell %s trial %d: %w", cell.Key(), sh.Lo+i, cerr)
			}
			if err := counts.Add(out); err != nil {
				return nil, err
			}
		}
		if journal != nil {
			if err := journal.Append(ShardRecord{Cell: sh.Cell, Shard: sh.Index, Key: cell.Key(), Counts: counts}); err != nil {
				return nil, err
			}
		}
		c := perCell[sh.Cell]
		c.Merge(counts)
		perCell[sh.Cell] = c
		opts.inc("campaign.shards.executed", 1)
		opts.inc("campaign.trials.executed", int64(counts.Total()))
		opts.inc("campaign.outcome.clean", int64(counts.Clean))
		opts.inc("campaign.outcome.detected_corrected", int64(counts.Corrected))
		opts.inc("campaign.outcome.detected_uncorrectable", int64(counts.Uncorrectable))
		opts.inc("campaign.outcome.silent_corruption", int64(counts.Silent))
	}
	opts.inc("campaign.shards.resumed", int64(resumed))
	if resumed > 0 {
		opts.logf("campaign %.12s: resumed %d of %d shards from journal", fp, resumed, len(plan.Shards))
	}
	return BuildReport(plan, fp, perCell), nil
}
