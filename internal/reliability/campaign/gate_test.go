package campaign

import (
	"context"
	"testing"

	"abftchol/internal/experiments"
)

// TestCampaignStatisticalGate is the quick-mode coverage gate: a
// pinned-seed campaign of ~10^4 trials whose struck-conditioned rates
// must be statistically consistent with the paper's protection model.
// The assertions are on Wilson 95% bounds, not point estimates, so a
// failure means the *model* moved, not that sampling noise did; the
// pinned seed makes any failure reproduce exactly.
//
// The expected behavior per (scheme × class), from the paper (§V) and
// the engine's verification discipline:
//
//   - magma (unprotected): every struck trial ships silent corruption.
//   - online + storage fault: the fault lands in an already-factored
//     block that online (verify-after-write) never re-checks — caught
//     only by the end-of-run audit. This silent-corruption gap is the
//     Enhanced scheme's motivation.
//   - online + compute fault: the corrupted GEMM output is verified
//     after the write at the next K-interval and corrected.
//   - enhanced (verify-before-read) + single fault per interval:
//     detected and corrected regardless of strike kind or flavor.
//   - enhanced + burst (two faults in one block column): exceeds the
//     m=2 checksum code's single-error correction — detected but
//     uncorrectable, the §V-C K trade-off made visible.
func TestCampaignStatisticalGate(t *testing.T) {
	if testing.Short() {
		t.Skip("10^4-trial campaign skipped in -short")
	}
	cfg := Config{
		Schemes:       []string{"magma", "online", "enhanced"},
		Classes:       []string{"storage-offset", "storage-mantissa", "storage-exponent", "compute-offset", "storage-offset-burst"},
		TrialsPerCell: 700, // 15 cells × 700 = 10500 trials
		ShardTrials:   175,
		Seed:          20160523, // the paper's venue date, pinned
	}
	report, err := Run(context.Background(), cfg, experiments.NewScheduler(0, nil), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.TotalTrials != 10500 {
		t.Fatalf("ran %d trials", report.TotalTrials)
	}

	cells := map[string]CellReport{}
	for _, c := range report.Cells {
		cells[c.Cell] = c
		// Sanity on every cell: enough strikes to bound rates, and
		// tallies that add up.
		if c.Struck < 200 {
			t.Errorf("%s: only %d struck trials — rate %g too low for the gate", c.Cell, c.Struck, cfg.RatePerIteration)
		}
		if c.Counts.Total() != c.Trials || c.Counts.StruckCount() != c.Struck {
			t.Errorf("%s: inconsistent tallies %+v", c.Cell, c.Counts)
		}
	}
	cell := func(scheme, class string) CellReport {
		c, ok := cells["laptop/"+scheme+"/"+class]
		if !ok {
			t.Fatalf("missing cell %s/%s", scheme, class)
		}
		return c
	}

	// Unprotected baseline: zero detection, everything silent.
	for _, class := range cfg.Classes {
		c := cell("magma", class)
		if c.Detected.Hi > 0.02 {
			t.Errorf("magma/%s: detection upper bound %.4f > 0.02 — the unprotected scheme detected something", class, c.Detected.Hi)
		}
		if c.Silent.Lo < 0.98 {
			t.Errorf("magma/%s: silent lower bound %.4f < 0.98", class, c.Silent.Lo)
		}
	}

	// Enhanced: single faults per interval are corrected, every
	// flavor and strike kind. The paper's correction claim.
	for _, class := range []string{"storage-offset", "storage-mantissa", "storage-exponent", "compute-offset"} {
		c := cell("enhanced", class)
		if c.Corrected.Lo < 0.97 {
			t.Errorf("enhanced/%s: corrected lower bound %.4f < 0.97 (counts %+v)", class, c.Corrected.Lo, c.Counts)
		}
		if c.Silent.Hi > 0.02 {
			t.Errorf("enhanced/%s: silent upper bound %.4f > 0.02", class, c.Silent.Hi)
		}
	}
	// Enhanced under bursts: detected but beyond the m=2 code —
	// detection must stay total even when correction is impossible.
	burst := cell("enhanced", "storage-offset-burst")
	if burst.Uncorrectable.Lo < 0.95 {
		t.Errorf("enhanced/burst: uncorrectable lower bound %.4f < 0.95 (counts %+v)", burst.Uncorrectable.Lo, burst.Counts)
	}
	if burst.Detected.Lo < 0.97 {
		t.Errorf("enhanced/burst: detection lower bound %.4f < 0.97", burst.Detected.Lo)
	}

	// Online's asymmetry — the result that motivates Enhanced:
	// compute faults (verified after the write) are corrected, while
	// storage faults in already-factored blocks escape until the
	// final audit.
	compute := cell("online", "compute-offset")
	if compute.Corrected.Lo < 0.95 {
		t.Errorf("online/compute: corrected lower bound %.4f < 0.95 (counts %+v)", compute.Corrected.Lo, compute.Counts)
	}
	for _, class := range []string{"storage-offset", "storage-mantissa", "storage-exponent"} {
		c := cell("online", class)
		if c.Silent.Lo < 0.90 {
			t.Errorf("online/%s: silent lower bound %.4f < 0.90 — online should miss factored-block storage faults (counts %+v)", class, c.Silent.Lo, c.Counts)
		}
	}
}
