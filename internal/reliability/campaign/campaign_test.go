package campaign

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"abftchol/internal/core"
	"abftchol/internal/experiments"
	"abftchol/internal/obs"
)

// quickConfig is a small deterministic campaign used by the identity
// tests: 4 shards per cell so resume has real work to skip.
func quickConfig() Config {
	return Config{
		Schemes:          []string{"magma", "online", "enhanced"},
		Classes:          []string{"storage-offset", "storage-offset-burst"},
		N:                256,
		RatePerIteration: 0.2,
		TrialsPerCell:    24,
		ShardTrials:      6,
		Seed:             11,
	}
}

func runBytes(t *testing.T, cfg Config, workers int, journal string) []byte {
	t.Helper()
	r, err := Run(context.Background(), cfg, experiments.NewScheduler(workers, nil), RunOptions{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestPlanShape(t *testing.T) {
	plan, err := NewPlan(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Defaults: 1 machine × 3 schemes × 5 classes, 200 trials in
	// 50-trial shards.
	if len(plan.Cells) != 15 {
		t.Fatalf("%d cells", len(plan.Cells))
	}
	if len(plan.Shards) != 15*4 {
		t.Fatalf("%d shards", len(plan.Shards))
	}
	if plan.Trials() != 15*200 {
		t.Fatalf("%d trials", plan.Trials())
	}
	// Shards tile each cell's trial range exactly.
	covered := map[int]int{}
	for _, sh := range plan.Shards {
		if sh.Lo >= sh.Hi {
			t.Fatalf("empty shard %+v", sh)
		}
		covered[sh.Cell] += sh.Hi - sh.Lo
	}
	for _, cell := range plan.Cells {
		if covered[cell.Index] != 200 {
			t.Fatalf("cell %s covers %d trials", cell.Key(), covered[cell.Index])
		}
		if !strings.Contains(cell.Key(), "/") {
			t.Fatalf("cell key %q", cell.Key())
		}
	}
	// Trial options are single-attempt and deterministic per index.
	a := plan.TrialOptions(3, 7)
	b := plan.TrialOptions(3, 7)
	if a.MaxAttempts != 1 {
		t.Fatalf("MaxAttempts = %d", a.MaxAttempts)
	}
	if len(a.Scenarios) != len(b.Scenarios) {
		t.Fatal("trial options not deterministic")
	}
	for i := range a.Scenarios {
		if a.Scenarios[i] != b.Scenarios[i] {
			t.Fatal("trial scenarios not deterministic")
		}
	}
	// Different trials draw different fault streams (statistically
	// certain at these sizes for at least one of the first few).
	differ := false
	for trial := 0; trial < 8 && !differ; trial++ {
		x := plan.TrialOptions(3, trial).Scenarios
		y := plan.TrialOptions(3, trial+8).Scenarios
		if len(x) != len(y) {
			differ = true
			continue
		}
		for i := range x {
			if x[i] != y[i] {
				differ = true
				break
			}
		}
	}
	if !differ {
		t.Fatal("all trials drew identical fault streams")
	}
}

// TestSerialVsParallelByteIdentical is the local half of the
// differential battery: the report is independent of worker count and
// scheduling order.
func TestSerialVsParallelByteIdentical(t *testing.T) {
	cfg := quickConfig()
	serial := runBytes(t, cfg, 1, "")
	parallel := runBytes(t, cfg, 8, "")
	if string(serial) != string(parallel) {
		t.Fatal("parallel report differs from serial")
	}
}

// TestJournalResumeByteIdentical kills a campaign mid-journal (by
// truncating its checkpoint to a prefix plus a torn half-record, the
// on-disk state an actual SIGKILL leaves) and proves the resumed
// run's report is byte-identical to the uninterrupted one.
func TestJournalResumeByteIdentical(t *testing.T) {
	cfg := quickConfig()
	dir := t.TempDir()

	reference := runBytes(t, cfg, 4, "")

	full := filepath.Join(dir, "full.jsonl")
	if got := runBytes(t, cfg, 4, full); string(got) != string(reference) {
		t.Fatal("journaled run differs from unjournaled")
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	wantShards := len(lines) - 1 // minus header
	if wantShards < 4 {
		t.Fatalf("journal too small to interrupt: %d shards", wantShards)
	}

	// Keep the header plus half the shards, then a torn half-record.
	cut := 1 + wantShards/2
	torn := strings.Join(lines[:cut], "\n") + "\n" + lines[cut][:len(lines[cut])/2]
	interrupted := filepath.Join(dir, "interrupted.jsonl")
	if err := os.WriteFile(interrupted, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	metrics := obs.NewRegistry()
	r, err := Run(context.Background(), cfg, experiments.NewScheduler(4, nil), RunOptions{JournalPath: interrupted, Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	resumedBytes, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(resumedBytes) != string(reference) {
		t.Fatal("resumed report differs from uninterrupted run")
	}
	if got := metrics.Counter("campaign.shards.resumed"); got != int64(cut-1) {
		t.Fatalf("resumed %d shards, want %d", got, cut-1)
	}
	if got := metrics.Counter("campaign.shards.executed"); got != int64(wantShards-(cut-1)) {
		t.Fatalf("executed %d shards, want %d", got, wantShards-(cut-1))
	}

	// After the resume the journal must be complete: a third run
	// executes nothing.
	metrics2 := obs.NewRegistry()
	if _, err := Run(context.Background(), cfg, experiments.NewScheduler(4, nil), RunOptions{JournalPath: interrupted, Metrics: metrics2}); err != nil {
		t.Fatal(err)
	}
	if got := metrics2.Counter("campaign.shards.executed"); got != 0 {
		t.Fatalf("replay executed %d shards", got)
	}
	if got := metrics2.Counter("campaign.trials.planned"); got != int64(6*24) {
		t.Fatalf("planned %d trials", got)
	}
}

// TestJournalRejectsForeignCampaign: a journal keyed to one config
// cannot silently seed a different campaign.
func TestJournalRejectsForeignCampaign(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	cfg := quickConfig()
	runBytes(t, cfg, 2, path)

	other := cfg
	other.Seed = 999
	if _, err := Run(context.Background(), other, experiments.NewScheduler(2, nil), RunOptions{JournalPath: path}); err == nil || !strings.Contains(err.Error(), "belongs to campaign") {
		t.Fatalf("foreign journal accepted: %v", err)
	}
}

// TestJournalRejectsMidFileCorruption: only the *final* line may be
// torn; a mangled record with valid records after it is corruption.
func TestJournalRejectsMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	cfg := quickConfig()
	runBytes(t, cfg, 2, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	lines[2] = "{\"cell\": garbage\n"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), cfg, experiments.NewScheduler(2, nil), RunOptions{JournalPath: path}); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("mid-file corruption accepted: %v", err)
	}
}

// TestJournalShardCountMismatch: a journaled tally that disagrees
// with the plan's shard size is a config/journal mismatch, not data.
func TestJournalShardCountMismatch(t *testing.T) {
	cfg := quickConfig()
	fp, err := cfg.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, _, err := OpenJournal(path, fp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(ShardRecord{Cell: 0, Shard: 0, Key: "laptop/magma/storage-offset", Counts: Counts{Clean: 1}}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := Run(context.Background(), cfg, experiments.NewScheduler(2, nil), RunOptions{JournalPath: path}); err == nil || !strings.Contains(err.Error(), "plan says") {
		t.Fatalf("undersized shard tally accepted: %v", err)
	}
}

// TestZeroConfigJournalRoundTrip: the all-defaults campaign config
// round-trips through the journal header unchanged (normalization
// happens before writing, and reopening with the same input config
// resolves to the same fingerprint).
func TestZeroConfigJournalRoundTrip(t *testing.T) {
	var zero Config
	fp, err := zero.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, done, err := OpenJournal(path, fp, zero)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if len(done) != 0 {
		t.Fatal("fresh journal has shards")
	}
	// Reopen with the zero config again: same identity, no error.
	j, _, err = OpenJournal(path, fp, zero)
	if err != nil {
		t.Fatalf("zero config failed to reopen its own journal: %v", err)
	}
	j.Close()
	// Normalized defaults are what the fingerprint covers.
	norm, err := zero.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := norm.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp != fp2 {
		t.Fatal("normalization changed the fingerprint")
	}
	again, err := norm.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if f3, _ := again.Fingerprint(); f3 != fp {
		t.Fatal("Normalize not idempotent under fingerprinting")
	}
}

func TestRunRejectsRemoteScheduler(t *testing.T) {
	remote := experiments.NewRemoteScheduler(2, func(core.Options) (core.Result, error) {
		return core.Result{}, nil
	})
	if _, err := Run(context.Background(), quickConfig(), remote, RunOptions{}); err == nil || !strings.Contains(err.Error(), "remote") {
		t.Fatalf("remote scheduler accepted: %v", err)
	}
	if _, err := Run(context.Background(), quickConfig(), nil, RunOptions{}); err == nil {
		t.Fatal("nil scheduler accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Machines: []string{"cray"}},
		{Schemes: []string{"hybrid"}},
		{Classes: []string{"cosmic-ray"}},
		{N: 100},                 // not a block-size multiple of laptop's 32
		{N: 32},                  // single block: no factored data to strike
		{RatePerIteration: -0.5}, // negative
	}
	for _, cfg := range bad {
		if _, err := cfg.Normalize(); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	norm, err := Config{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if norm.N != 512 || norm.K != 2 || norm.TrialsPerCell != 200 || norm.ShardTrials != 50 {
		t.Fatalf("defaults: %+v", norm)
	}
	if len(norm.Machines) != 1 || len(norm.Schemes) != 3 || len(norm.Classes) != 5 {
		t.Fatalf("default axes: %+v", norm)
	}
}
