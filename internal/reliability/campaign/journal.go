package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// The journal is an append-only JSONL checkpoint: one header line
// binding the file to a campaign fingerprint, then one record per
// completed shard. Appends are fsynced, so after a crash the file is
// a valid prefix of the uninterrupted journal plus at most one torn
// line, which Open discards (by truncation) before resuming. Because
// every shard's trials are derived purely from (config, cell, trial),
// replaying the missing shards after a resume reproduces exactly the
// bytes an uninterrupted run would have produced.

// journalVersion is bumped on any format change; Open rejects other
// versions rather than guessing.
const journalVersion = 1

type journalHeader struct {
	Kind        string `json:"kind"`
	V           int    `json:"v"`
	Fingerprint string `json:"fingerprint"`
	Config      Config `json:"config"`
}

// ShardRecord is one completed shard's outcome tally.
type ShardRecord struct {
	Cell   int    `json:"cell"`
	Shard  int    `json:"shard"`
	Key    string `json:"key"`
	Counts Counts `json:"counts"`
}

// ShardKey identifies a shard within a plan.
type ShardKey struct {
	Cell, Shard int
}

// Journal is an open campaign checkpoint file.
type Journal struct {
	f *os.File
}

// OpenJournal opens (or creates) the journal at path for the campaign
// identified by fingerprint, returning the shards it already records.
// A journal for a different campaign is an error, not a resume. A
// torn trailing line — the crash signature of a mid-append kill — is
// truncated away.
func OpenJournal(path, fingerprint string, cfg Config) (*Journal, map[ShardKey]Counts, error) {
	norm, err := cfg.Normalize()
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("campaign: journal dir: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: open journal: %w", err)
	}
	j := &Journal{f: f}
	done, keep, headerOK, err := j.load(fingerprint)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Drop any torn tail, then position for append.
	if err := f.Truncate(keep); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("campaign: truncate torn journal tail: %w", err)
	}
	if _, err := f.Seek(keep, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	if !headerOK {
		hdr := journalHeader{Kind: "campaign-journal", V: journalVersion, Fingerprint: fingerprint, Config: norm}
		if err := j.appendLine(hdr); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return j, done, nil
}

// load parses the journal, returning the recorded shards, the byte
// offset of the end of the last intact line (the valid prefix to keep),
// and whether an intact header was found. A final line that is
// incomplete or unparsable is the torn-append crash signature and is
// simply excluded from the kept prefix; a bad line anywhere *before*
// the end is corruption and an error.
func (j *Journal) load(fingerprint string) (map[ShardKey]Counts, int64, bool, error) {
	if _, err := j.f.Seek(0, 0); err != nil {
		return nil, 0, false, err
	}
	data, err := io.ReadAll(j.f)
	if err != nil {
		return nil, 0, false, err
	}
	done := make(map[ShardKey]Counts)
	var keep int64
	headerOK := false
	pos := 0
	for pos < len(data) {
		nl := bytes.IndexByte(data[pos:], '\n')
		torn := nl < 0 // no terminator: the append was cut mid-line
		var line []byte
		next := len(data)
		if !torn {
			line = data[pos : pos+nl]
			next = pos + nl + 1
		} else {
			line = data[pos:]
		}
		lastLine := next >= len(data)
		if len(bytes.TrimSpace(line)) == 0 {
			if !torn {
				keep = int64(next)
			}
			pos = next
			continue
		}
		if !headerOK {
			var hdr journalHeader
			if uerr := json.Unmarshal(line, &hdr); uerr != nil || torn {
				if lastLine {
					// Torn header: nothing durable yet, start over.
					return done, 0, false, nil
				}
				return nil, 0, false, fmt.Errorf("campaign: journal %s has a corrupt header", j.f.Name())
			}
			if hdr.Kind != "campaign-journal" || hdr.V != journalVersion {
				return nil, 0, false, fmt.Errorf("campaign: journal %s is %s v%d, want campaign-journal v%d", j.f.Name(), hdr.Kind, hdr.V, journalVersion)
			}
			if hdr.Fingerprint != fingerprint {
				return nil, 0, false, fmt.Errorf("campaign: journal %s belongs to campaign %.12s, not %.12s", j.f.Name(), hdr.Fingerprint, fingerprint)
			}
			headerOK = true
			keep = int64(next)
			pos = next
			continue
		}
		var rec ShardRecord
		if uerr := json.Unmarshal(line, &rec); uerr != nil || torn {
			if lastLine {
				return done, keep, true, nil
			}
			return nil, 0, false, fmt.Errorf("campaign: journal %s corrupt (bad record before EOF)", j.f.Name())
		}
		done[ShardKey{rec.Cell, rec.Shard}] = rec.Counts
		keep = int64(next)
		pos = next
	}
	return done, keep, headerOK, nil
}

// Append durably records one completed shard.
func (j *Journal) Append(rec ShardRecord) error {
	return j.appendLine(rec)
}

func (j *Journal) appendLine(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("campaign: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("campaign: journal sync: %w", err)
	}
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error { return j.f.Close() }
