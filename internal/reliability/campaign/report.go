package campaign

import (
	"encoding/json"
	"fmt"

	"abftchol/internal/core"
	"abftchol/internal/reliability"
)

// Counts is the per-shard (and per-cell) outcome tally. Field order
// and tags are part of the journal/report format.
type Counts struct {
	Clean         int `json:"clean"`
	Corrected     int `json:"detected_corrected"`
	Uncorrectable int `json:"detected_uncorrectable"`
	Silent        int `json:"silent_corruption"`
}

// Add tallies one classified trial.
func (c *Counts) Add(o reliability.Outcome) error {
	switch o {
	case reliability.OutcomeClean:
		c.Clean++
	case reliability.OutcomeDetectedCorrected:
		c.Corrected++
	case reliability.OutcomeDetectedUncorrectable:
		c.Uncorrectable++
	case reliability.OutcomeSilentCorruption:
		c.Silent++
	default:
		return fmt.Errorf("campaign: unknown outcome %v", o)
	}
	return nil
}

// Merge accumulates another tally.
func (c *Counts) Merge(d Counts) {
	c.Clean += d.Clean
	c.Corrected += d.Corrected
	c.Uncorrectable += d.Uncorrectable
	c.Silent += d.Silent
}

// Total is the number of trials tallied.
func (c Counts) Total() int { return c.Clean + c.Corrected + c.Uncorrectable + c.Silent }

// StruckCount is the number of trials in which at least one fault
// fired.
func (c Counts) StruckCount() int { return c.Corrected + c.Uncorrectable + c.Silent }

// CellReport is one grid cell's aggregate: raw tallies plus
// struck-conditioned rates with Wilson 95% intervals. Rates condition
// on struck trials because a clean trial says nothing about the
// scheme's fault response — the struck fraction itself is governed by
// the configured Poisson rate, not the scheme.
type CellReport struct {
	Cell    string `json:"cell"`
	Machine string `json:"machine"`
	Scheme  string `json:"scheme"`
	Class   string `json:"class"`

	Trials int    `json:"trials"`
	Struck int    `json:"struck"`
	Counts Counts `json:"counts"`

	// Detected is the coverage rate: (corrected + uncorrectable) /
	// struck — the probability the scheme noticed the fault at all.
	Detected      reliability.Interval `json:"detected"`
	Corrected     reliability.Interval `json:"corrected"`
	Uncorrectable reliability.Interval `json:"uncorrectable"`
	Silent        reliability.Interval `json:"silent"`
}

// Report is the campaign's final aggregate — the BENCH_reliability
// payload. Building it is a pure function of (plan, per-cell counts),
// and Marshal is deterministic, which is what the resume and
// serial-vs-parallel byte-identity tests assert.
type Report struct {
	Kind        string       `json:"kind"`
	Version     int          `json:"version"`
	Fingerprint string       `json:"fingerprint"`
	Config      Config       `json:"config"`
	TotalTrials int          `json:"total_trials"`
	TotalStruck int          `json:"total_struck"`
	Cells       []CellReport `json:"cells"`
}

// ReportKind identifies campaign reports among the repo's BENCH_*
// artifacts.
const ReportKind = "abft-reliability-campaign"

// BuildReport aggregates per-cell counts (indexed by Cell.Index) into
// the final report, in plan order.
func BuildReport(p *Plan, fingerprint string, perCell map[int]Counts) *Report {
	r := &Report{
		Kind:        ReportKind,
		Version:     1,
		Fingerprint: fingerprint,
		Config:      p.Config,
	}
	for _, cell := range p.Cells {
		counts := perCell[cell.Index]
		struck := counts.StruckCount()
		cr := CellReport{
			Cell:          cell.Key(),
			Machine:       cell.Machine,
			Scheme:        core.SchemeKey(cell.Scheme),
			Class:         cell.Class.Key(),
			Trials:        counts.Total(),
			Struck:        struck,
			Counts:        counts,
			Detected:      reliability.Wilson(counts.Corrected+counts.Uncorrectable, struck, reliability.Z95),
			Corrected:     reliability.Wilson(counts.Corrected, struck, reliability.Z95),
			Uncorrectable: reliability.Wilson(counts.Uncorrectable, struck, reliability.Z95),
			Silent:        reliability.Wilson(counts.Silent, struck, reliability.Z95),
		}
		r.TotalTrials += cr.Trials
		r.TotalStruck += cr.Struck
		r.Cells = append(r.Cells, cr)
	}
	return r
}

// Marshal renders the canonical report bytes: indented JSON with a
// trailing newline, byte-identical for equal inputs.
func (r *Report) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
