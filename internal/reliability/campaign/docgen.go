package campaign

// This file generates the machine-derived parts of
// docs/RELIABILITY.md: the fault-class taxonomy (from fault.Classes),
// the outcome taxonomy (from reliability.Outcomes), and a sample
// campaign — config, completed journal, and aggregated report —
// actually executed in process. Campaign output is a pure function of
// the config, so the sample in the docs is not prose pretending to be
// output; it IS the output, byte for byte, and TestReliabilityDocCurrent
// re-records it on every test run to catch drift.

//go:generate go run ../../../tools/reldoc

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"abftchol/internal/experiments"
	"abftchol/internal/fault"
	"abftchol/internal/reliability"
)

// Marker comments bracketing the generated sections of
// docs/RELIABILITY.md; tools/reldoc rewrites what is between them and
// the drift test asserts the embedding.
const (
	ClassesBegin  = "<!-- BEGIN GENERATED FAULT-CLASS TABLE (go generate ./internal/reliability/campaign) -->"
	ClassesEnd    = "<!-- END GENERATED FAULT-CLASS TABLE -->"
	OutcomesBegin = "<!-- BEGIN GENERATED OUTCOME TABLE (go generate ./internal/reliability/campaign) -->"
	OutcomesEnd   = "<!-- END GENERATED OUTCOME TABLE -->"
	SampleBegin   = "<!-- BEGIN GENERATED SAMPLE CAMPAIGN (go generate ./internal/reliability/campaign) -->"
	SampleEnd     = "<!-- END GENERATED SAMPLE CAMPAIGN -->"
)

// ClassesTable renders the closed fault-class set as a markdown table.
func ClassesTable() string {
	var b strings.Builder
	b.WriteString("| Class | Meaning |\n|---|---|\n")
	for _, c := range fault.Classes() {
		fmt.Fprintf(&b, "| `%s` | %s |\n", c.Key(), c.Describe())
	}
	return b.String()
}

// OutcomesTable renders the four-way trial taxonomy as a markdown
// table.
func OutcomesTable() string {
	var b strings.Builder
	b.WriteString("| Outcome | Meaning | Struck |\n|---|---|---|\n")
	for _, o := range reliability.Outcomes() {
		struck := "yes"
		if !o.Struck() {
			struck = "no"
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s |\n", o, o.Describe(), struck)
	}
	return b.String()
}

// docConfig is the sample campaign the docs embed: two schemes against
// the paper's standard storage fault, small enough to run in
// milliseconds, seeded so every regeneration reproduces the same
// journal and report bytes.
func docConfig() Config {
	return Config{
		Schemes:          []string{"magma", "enhanced"},
		Classes:          []string{"storage-offset"},
		N:                256,
		RatePerIteration: 0.2,
		TrialsPerCell:    8,
		ShardTrials:      4,
		Seed:             11,
	}
}

// DocSample executes the sample campaign with a journal and renders
// the artifacts as markdown: the journal after completion and the
// aggregated report. tools/reldoc embeds the result in
// docs/RELIABILITY.md; the drift test re-records and compares.
func DocSample() (string, error) {
	dir, err := os.MkdirTemp("", "reldoc")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "journal.jsonl")

	cfg, err := docConfig().Normalize()
	if err != nil {
		return "", err
	}
	rep, err := Run(context.Background(), cfg, experiments.NewScheduler(1, nil), RunOptions{JournalPath: path})
	if err != nil {
		return "", err
	}
	journal, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	report, err := rep.Marshal()
	if err != nil {
		return "", err
	}

	var b strings.Builder
	b.WriteString("The journal after the run — a header naming the campaign fingerprint\n")
	b.WriteString("plus one appended (and fsynced) record per completed shard. A rerun\n")
	b.WriteString("replays these records instead of re-executing their trials:\n\n")
	fmt.Fprintf(&b, "```json\n%s```\n\n", journal)
	b.WriteString("The aggregated report — what `abftchol -campaign` prints, what\n")
	b.WriteString("`GET /v1/campaigns/{id}/report` serves, and what resumes must\n")
	b.WriteString("reproduce byte for byte. Rates are conditioned on struck trials;\n")
	b.WriteString("`lo`/`hi` are Wilson 95% bounds:\n\n")
	fmt.Fprintf(&b, "```json\n%s```\n", report)
	return b.String(), nil
}
