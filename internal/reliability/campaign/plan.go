package campaign

import (
	"fmt"

	"abftchol/internal/core"
	"abftchol/internal/fault"
	"abftchol/internal/hetsim"
)

// Cell is one grid point of the campaign: a machine profile, a
// scheme, and a fault class, expanded into TrialsPerCell trials.
type Cell struct {
	Index   int
	Machine string
	Scheme  core.Scheme
	Class   fault.Class

	profile hetsim.Profile
	nb      int
}

// Key is the journal/report spelling of the cell.
func (c Cell) Key() string {
	return fmt.Sprintf("%s/%s/%s", c.Machine, core.SchemeKey(c.Scheme), c.Class.Key())
}

// Shard is a contiguous trial range of one cell — the unit of
// execution, journaling, and resume.
type Shard struct {
	Cell  int // cell index
	Index int // shard index within the cell
	Lo    int // first trial (inclusive)
	Hi    int // last trial (exclusive)
}

// Plan is the fully-expanded campaign: cells in machine-major ×
// scheme × class order, shards in cell-major × trial order. The plan
// is a pure function of the normalized config.
type Plan struct {
	Config Config // normalized
	Cells  []Cell
	Shards []Shard
}

// NewPlan expands a config into its deterministic grid.
func NewPlan(cfg Config) (*Plan, error) {
	norm, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	p := &Plan{Config: norm}
	for _, m := range norm.Machines {
		prof, err := hetsim.ProfileByName(m)
		if err != nil {
			return nil, err
		}
		nb := norm.BlockSize
		if nb == 0 {
			nb = prof.BlockSize
		}
		for _, ss := range norm.Schemes {
			scheme, err := core.ParseScheme(ss)
			if err != nil {
				return nil, err
			}
			for _, cs := range norm.Classes {
				class, err := fault.ParseClass(cs)
				if err != nil {
					return nil, err
				}
				p.Cells = append(p.Cells, Cell{
					Index:   len(p.Cells),
					Machine: m,
					Scheme:  scheme,
					Class:   class,
					profile: prof,
					nb:      nb,
				})
			}
		}
	}
	for _, cell := range p.Cells {
		for lo, idx := 0, 0; lo < norm.TrialsPerCell; lo, idx = lo+norm.ShardTrials, idx+1 {
			hi := lo + norm.ShardTrials
			if hi > norm.TrialsPerCell {
				hi = norm.TrialsPerCell
			}
			p.Shards = append(p.Shards, Shard{Cell: cell.Index, Index: idx, Lo: lo, Hi: hi})
		}
	}
	return p, nil
}

// Trials returns the total trial count of the plan.
func (p *Plan) Trials() int { return len(p.Cells) * p.Config.TrialsPerCell }

// trialSeed derives the fault stream root for one trial: a two-level
// splitmix64 split keyed by cell then trial, so any shard can be
// regenerated in isolation and reordering shards cannot change any
// trial's faults.
func (p *Plan) trialSeed(cell, trial int) int64 {
	return fault.SubSeed(fault.SubSeed(p.Config.Seed, cell), trial)
}

// TrialOptions builds the core.Options for one trial of one cell:
// single attempt (campaigns classify outcomes, they don't ride
// restarts), the cell's fault class expanded into a seeded Poisson
// scenario stream.
func (p *Plan) TrialOptions(cell, trial int) core.Options {
	c := p.Cells[cell]
	scns := fault.Campaign(fault.CampaignConfig{
		Blocks:           p.Config.N / c.nb,
		BlockSize:        c.nb,
		RatePerIteration: p.Config.RatePerIteration,
		Seed:             p.trialSeed(cell, trial),
		Class:            c.Class,
		Delta:            p.Config.Delta,
		BurstSize:        p.Config.BurstSize,
	})
	return core.Options{
		N:                p.Config.N,
		BlockSize:        c.nb,
		K:                p.Config.K,
		ChecksumVectors:  p.Config.ChecksumVectors,
		Scheme:           c.Scheme,
		Profile:          c.profile,
		MaxAttempts:      1,
		ConcurrentRecalc: true,
		Scenarios:        scns,
	}
}
