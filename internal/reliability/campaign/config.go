// Package campaign plans and executes sharded fault-injection
// reliability campaigns: a grid of (machine profile × scheme × fault
// class) cells, each expanded into seeded Poisson fault trials run on
// the sweep Scheduler, classified with reliability.Classify, journaled
// per shard for checkpointed resume, and aggregated into coverage
// rates with Wilson confidence intervals.
//
// Everything downstream of a Config is a pure function of it: the
// plan, every trial's fault scenarios, the journal identity, and the
// final report bytes. That is what makes kill-and-resume byte-identity
// testable and server-side dedup by fingerprint sound.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"abftchol/internal/core"
	"abftchol/internal/fault"
	"abftchol/internal/hetsim"
)

// Config describes a whole campaign. The zero value is not runnable;
// Normalize fills documented defaults and validates the grid. All
// fields marshal explicitly so a config round-trips through the
// journal header unchanged.
type Config struct {
	// Machines are hetsim profile names (tardis, bulldozer64,
	// laptop). Default: laptop.
	Machines []string `json:"machines"`
	// Schemes are core scheme spellings (magma, cula, offline,
	// online, enhanced, scrub). Default: magma, online, enhanced.
	Schemes []string `json:"schemes"`
	// Classes are fault-class keys (fault.ParseClass spellings).
	// Default: storage-offset, storage-mantissa, storage-exponent,
	// compute-offset, storage-offset-burst.
	Classes []string `json:"classes"`

	// N is the matrix order of every trial. Default 512.
	N int `json:"n"`
	// BlockSize overrides the machine profile's block size when
	// positive. Default 0: use the profile's.
	BlockSize int `json:"block_size"`
	// K is the verification interval. Default 2.
	K int `json:"k"`
	// ChecksumVectors is the checksum code's m. Default 2 (corrects
	// one error per block column).
	ChecksumVectors int `json:"checksum_vectors"`

	// RatePerIteration is the Poisson fault arrival rate per
	// factorization iteration. Default 0.05.
	RatePerIteration float64 `json:"rate_per_iteration"`
	// Delta is the additive magnitude for offset classes; 0 means
	// fault.DefaultDelta. Ignored by bit-flip classes.
	Delta float64 `json:"delta"`
	// BurstSize is the strike count of burst classes; 0 means
	// fault.DefaultBurstSize.
	BurstSize int `json:"burst_size"`

	// TrialsPerCell is the number of independent trials per grid
	// cell. Default 200.
	TrialsPerCell int `json:"trials_per_cell"`
	// ShardTrials is the journaling granularity: trials per shard.
	// Default 50.
	ShardTrials int `json:"shard_trials"`
	// Seed roots every trial's derived fault stream.
	Seed int64 `json:"seed"`
}

// DefaultSchemes is the default scheme axis: the unprotected baseline
// plus the paper's two online schemes.
func DefaultSchemes() []string { return []string{"magma", "online", "enhanced"} }

// DefaultClasses is the default fault-class axis: the three storage
// flavors, a compute strike, and the burst class that stresses
// Enhanced's per-interval correction bound.
func DefaultClasses() []string {
	return []string{"storage-offset", "storage-mantissa", "storage-exponent", "compute-offset", "storage-offset-burst"}
}

// Normalize fills defaults, validates every axis value, and returns
// the canonical config the plan, journal, and report all derive from.
// It is idempotent.
func (c Config) Normalize() (Config, error) {
	if len(c.Machines) == 0 {
		c.Machines = []string{"laptop"}
	}
	if len(c.Schemes) == 0 {
		c.Schemes = DefaultSchemes()
	}
	if len(c.Classes) == 0 {
		c.Classes = DefaultClasses()
	}
	if c.N == 0 {
		c.N = 512
	}
	if c.K == 0 {
		c.K = 2
	}
	if c.ChecksumVectors == 0 {
		c.ChecksumVectors = 2
	}
	if c.RatePerIteration == 0 {
		c.RatePerIteration = 0.05
	}
	if c.TrialsPerCell == 0 {
		c.TrialsPerCell = 200
	}
	if c.ShardTrials == 0 {
		c.ShardTrials = 50
	}
	if c.ShardTrials > c.TrialsPerCell {
		c.ShardTrials = c.TrialsPerCell
	}
	if c.N < 0 || c.BlockSize < 0 || c.K < 0 || c.ChecksumVectors < 0 ||
		c.RatePerIteration < 0 || c.Delta < 0 || c.BurstSize < 0 ||
		c.TrialsPerCell < 0 || c.ShardTrials <= 0 {
		return Config{}, fmt.Errorf("campaign: negative config field")
	}
	for _, m := range c.Machines {
		if _, err := hetsim.ProfileByName(m); err != nil {
			return Config{}, fmt.Errorf("campaign: %w", err)
		}
	}
	for _, s := range c.Schemes {
		if _, err := core.ParseScheme(s); err != nil {
			return Config{}, fmt.Errorf("campaign: %w", err)
		}
	}
	for _, cl := range c.Classes {
		if _, err := fault.ParseClass(cl); err != nil {
			return Config{}, fmt.Errorf("campaign: %w", err)
		}
	}
	for _, m := range c.Machines {
		prof, _ := hetsim.ProfileByName(m)
		nb := c.BlockSize
		if nb == 0 {
			nb = prof.BlockSize
		}
		if c.N%nb != 0 || c.N/nb < 2 {
			return Config{}, fmt.Errorf("campaign: n=%d must be a multiple of block size %d with at least 2 blocks (machine %s)", c.N, nb, m)
		}
	}
	return c, nil
}

// Fingerprint is the campaign's identity: a SHA-256 over the
// canonical JSON of the normalized config. Journals and server-side
// dedup key on it, mirroring the Scheduler's per-point fingerprints.
func (c Config) Fingerprint() (string, error) {
	n, err := c.Normalize()
	if err != nil {
		return "", err
	}
	data, err := json.Marshal(n)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
