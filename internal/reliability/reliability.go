// Package reliability converts device error-rate figures into the
// per-factorization storage-error expectations that drive the choice
// of Optimization 3's verification interval K ("a parameter related to
// the failure rate of the system", §V-C).
//
// The paper's motivation (§I) cites the large-scale GPGPU study of
// Haque & Pande, who found two-thirds of tested consumer GPUs exhibit
// pattern-sensitive memory soft errors, and the GPGPU-SODA
// vulnerability analysis of Tan et al. The standard way to quantify
// such rates is FIT — failures in time, events per 10⁹ device-hours —
// typically normalized per megabit of memory.
package reliability

import (
	"fmt"
	"math"
)

// FITPerMbit is a soft-error rate in failures per 10⁹ hours per
// megabit of memory. Field studies of this era's DRAM/GDDR report
// values from well under 1 (server DRAM with good shielding) to
// thousands (high altitude, harsh environments, or the
// pattern-sensitive cards in Haque & Pande's population).
type FITPerMbit float64

// Reference rates, order-of-magnitude figures from the literature the
// paper builds on.
const (
	// ServerDRAM is a typical terrestrial server-grade figure.
	ServerDRAM FITPerMbit = 1
	// ConsumerGDDR reflects the pattern-sensitive consumer cards in
	// the Haque & Pande study.
	ConsumerGDDR FITPerMbit = 500
	// HarshEnvironment stands in for high-altitude or poorly shielded
	// deployments.
	HarshEnvironment FITPerMbit = 5000
)

// Workload describes one factorization run for rate conversion.
type Workload struct {
	// N and B are the matrix and block dimensions.
	N, B int
	// Seconds is the factorization's expected duration.
	Seconds float64
	// ChecksumVectors sizes the checksum matrix (default 2).
	ChecksumVectors int
}

// residentBits returns the protected memory footprint in bits: the
// matrix plus its checksum matrix.
func (w Workload) residentBits() float64 {
	m := w.ChecksumVectors
	if m == 0 {
		m = 2
	}
	elems := float64(w.N) * float64(w.N)
	if w.B > 0 {
		elems += float64(m) * float64(w.N) * float64(w.N) / float64(w.B)
	}
	return elems * 64
}

// ExpectedErrors returns the expected number of storage errors
// striking the resident data during one factorization at the given
// rate.
func ExpectedErrors(rate FITPerMbit, w Workload) float64 {
	if w.Seconds <= 0 {
		return 0
	}
	mbits := w.residentBits() / 1e6
	perHour := float64(rate) * mbits / 1e9
	return perHour * w.Seconds / 3600
}

// ErrorsPerIteration converts the expectation into the
// per-outer-iteration rate the campaign generator and ChooseK consume.
func ErrorsPerIteration(rate FITPerMbit, w Workload) float64 {
	if w.B <= 0 || w.N < w.B {
		return 0
	}
	iters := float64(w.N / w.B)
	return ExpectedErrors(rate, w) / iters
}

// ProbabilityAtLeastOne is 1 − e^(−λ) for λ = ExpectedErrors: the
// chance a given factorization is struck at all.
func ProbabilityAtLeastOne(rate FITPerMbit, w Workload) float64 {
	return 1 - math.Exp(-ExpectedErrors(rate, w))
}

// RunsBetweenErrors is the expected number of factorizations between
// storage errors (infinity-ish for tiny rates; capped for display).
func RunsBetweenErrors(rate FITPerMbit, w Workload) float64 {
	lambda := ExpectedErrors(rate, w)
	if lambda <= 0 {
		return math.Inf(1)
	}
	return 1 / lambda
}

// Describe renders the conversion for one rate and workload.
func Describe(rate FITPerMbit, w Workload) string {
	return fmt.Sprintf(
		"%.0f FIT/Mbit over %.1f Mbit for %.2fs: %.3g errors/run (P>=1: %.2g%%), %.3g errors/iteration",
		float64(rate), w.residentBits()/1e6, w.Seconds,
		ExpectedErrors(rate, w), 100*ProbabilityAtLeastOne(rate, w),
		ErrorsPerIteration(rate, w))
}
