package overhead

import (
	"math"
	"testing"

	"abftchol/internal/core"
	"abftchol/internal/hetsim"
)

func TestTableIIIValues(t *testing.T) {
	p := Params{N: 20480, B: 256, K: 1}
	potf2, trsm, syrk, gemm := p.UpdateFlops()
	n := 20480.0
	if potf2 != 2*256*n || trsm != 2*n*n || syrk != 2*n*n {
		t.Fatal("Table III small terms wrong")
	}
	if math.Abs(gemm-2*n*n*n/(3*256)) > 1 {
		t.Fatal("Table III GEMM term wrong")
	}
	// Relative overhead 12/n + 2/B.
	want := 12/n + 2.0/256
	if math.Abs(p.UpdateTotalRelative()-want) > 1e-15 {
		t.Fatal("Table III total wrong")
	}
}

func TestTableIVAndV(t *testing.T) {
	p := Params{N: 10240, B: 512, K: 3}
	n, b, k := 10240.0, 512.0, 3.0
	if math.Abs(p.RecalcOnlineRelative()-12/n) > 1e-15 {
		t.Fatal("Table IV total wrong")
	}
	_, trsm, syrk, gemm := p.RecalcFlopsEnhanced()
	if trsm != 2*n*n || math.Abs(syrk-2*n*n/k) > 1e-6 {
		t.Fatal("Table V per-op terms wrong")
	}
	if math.Abs(gemm-2*n*n*n/(3*b*k)) > 1e-3 {
		t.Fatal("Table V GEMM term wrong")
	}
	want := (6*k+6)/(n*k) + 2/(b*k)
	if math.Abs(p.RecalcEnhancedRelative()-want) > 1e-15 {
		t.Fatal("Table V total wrong")
	}
}

func TestTableVIOverall(t *testing.T) {
	p := Params{N: 20480, B: 256, K: 1}
	n, b := 20480.0, 256.0
	if math.Abs(p.OnlineOverallRelative()-(30/n+2/b)) > 1e-15 {
		t.Fatal("Table VI online wrong")
	}
	// K=1: enhanced converges to 4/B, double the online asymptote.
	if math.Abs(p.EnhancedAsymptotic()-4/b) > 1e-15 {
		t.Fatal("Table VI enhanced asymptote wrong at K=1")
	}
	if p.OnlineAsymptotic() != 2/b {
		t.Fatal("online asymptote wrong")
	}
	// Larger K drives the enhanced asymptote toward the online one.
	pk := Params{N: 20480, B: 256, K: 100}
	if pk.EnhancedAsymptotic() >= p.EnhancedAsymptotic() {
		t.Fatal("K must reduce the asymptote")
	}
	if pk.EnhancedAsymptotic() < p.OnlineAsymptotic() {
		t.Fatal("enhanced can never drop below the update floor 2/B")
	}
}

func TestOverheadDecreasesWithN(t *testing.T) {
	prev := math.Inf(1)
	for _, n := range []int{5120, 10240, 20480, 40960} {
		v := Params{N: n, B: 256, K: 1}.EnhancedOverallRelative()
		if v >= prev {
			t.Fatal("relative overhead must fall with n")
		}
		prev = v
	}
}

func TestSpaceAndTransfer(t *testing.T) {
	p := Params{N: 1024, B: 128, K: 2}
	if p.SpaceRelative() != 2.0/128 {
		t.Fatal("space overhead wrong")
	}
	initial, upd, vOn, vEnh := p.TransferElems()
	n, b, k := 1024.0, 128.0, 2.0
	if initial != 2*n*n/b || upd != n*n/2 || vOn != n*n/(2*b) {
		t.Fatal("transfer volumes wrong")
	}
	if math.Abs(vEnh-n*n*n/(3*k*b*b)) > 1e-9 {
		t.Fatal("enhanced verification transfer wrong")
	}
}

func TestKDefaultsToOne(t *testing.T) {
	a := Params{N: 512, B: 64, K: 0}.EnhancedOverallRelative()
	b := Params{N: 512, B: 64, K: 1}.EnhancedOverallRelative()
	if a != b {
		t.Fatal("K=0 must behave as K=1")
	}
}

// The predictions must match the simulator's actual behaviour, not
// just the paper's algebra.

func TestVerifiedBlocksMatchSimulator(t *testing.T) {
	prof := hetsim.Laptop()
	for _, k := range []int{1, 2, 5} {
		n := 512 // 16 blocks
		p := Params{N: n, B: prof.BlockSize, K: k}
		res, err := core.Run(core.Options{Profile: prof, N: n, Scheme: core.SchemeEnhanced, K: k})
		if err != nil {
			t.Fatal(err)
		}
		if res.VerifiedBlocks != p.VerifiedBlocksEnhanced() {
			t.Fatalf("K=%d: simulator verified %d blocks, model predicts %d",
				k, res.VerifiedBlocks, p.VerifiedBlocksEnhanced())
		}
	}
	p := Params{N: 512, B: prof.BlockSize, K: 1}
	on, err := core.Run(core.Options{Profile: prof, N: 512, Scheme: core.SchemeOnline})
	if err != nil {
		t.Fatal(err)
	}
	if on.VerifiedBlocks != p.VerifiedBlocksOnline() {
		t.Fatalf("online verified %d, model predicts %d", on.VerifiedBlocks, p.VerifiedBlocksOnline())
	}
	off, err := core.Run(core.Options{Profile: prof, N: 512, Scheme: core.SchemeOffline})
	if err != nil {
		t.Fatal(err)
	}
	if off.VerifiedBlocks != p.VerifiedBlocksOffline() {
		t.Fatalf("offline verified %d, model predicts %d", off.VerifiedBlocks, p.VerifiedBlocksOffline())
	}
}

func TestRecalcFlopsTrackSimulatorCounts(t *testing.T) {
	// The dominant Table V term: the enhanced scheme's recalculated
	// blocks x 4B² flops should approach 2n³/(3BK) + lower-order
	// terms. Check the model total is within 35% of blocks*4B² for a
	// moderate N (the closed forms drop O(n²) terms).
	p := Params{N: 20480, B: 256, K: 1}
	blocks := float64(p.VerifiedBlocksEnhanced())
	exact := blocks * 4 * 256 * 256
	pot, tr, sy, ge := p.RecalcFlopsEnhanced()
	model := pot + tr + sy + ge
	if ratio := exact / model; ratio < 0.65 || ratio > 1.35 {
		t.Fatalf("model %g vs exact %g (ratio %g)", model, exact, ratio)
	}
}

func TestOverallRelativeAgainstSimulator(t *testing.T) {
	// Table VI's closed form should land in the same ballpark as the
	// simulator's pure-flops overhead. The simulator additionally
	// models launch overhead and BLAS-2 inefficiency, so compare
	// kernel *flop* accounting only: total FT flops / n³/3.
	prof := hetsim.Tardis()
	n := 10240
	res, err := core.Run(core.Options{Profile: prof, N: n, Scheme: core.SchemeEnhanced, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := Params{N: n, B: prof.BlockSize, K: 1}
	ftFlops := res.GPUStats.BusyOf(hetsim.ClassChkRecalc) // time, not flops; skip
	_ = ftFlops
	// Count verified blocks instead: each costs 4B² flops; updates add
	// the Table III total.
	recalc := float64(res.VerifiedBlocks) * 4 * float64(prof.BlockSize) * float64(prof.BlockSize)
	update := p.UpdateTotalRelative() * p.CholeskyFlops()
	encode := p.EncodeFlops()
	rel := (recalc + update + encode) / p.CholeskyFlops()
	model := p.EnhancedOverallRelative()
	if ratio := rel / model; ratio < 0.6 || ratio > 1.4 {
		t.Fatalf("measured flop overhead %.4f vs Table VI %.4f", rel, model)
	}
}
