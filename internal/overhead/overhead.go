// Package overhead implements the closed-form overhead model of §VI
// (Tables II-VI): the floating-point, space, and transfer costs of
// Offline-, Online-, and Enhanced Online-ABFT relative to the n³/3
// Cholesky factorization. The experiments cross-check the simulator's
// measured kernel counts against these formulas.
package overhead

// Params are the model's symbols (Table II).
type Params struct {
	N int // input matrix size n
	B int // matrix block size
	K int // verify data every K iterations (Enhanced, Optimization 3)
}

func (p Params) n() float64 { return float64(p.N) }
func (p Params) b() float64 { return float64(p.B) }
func (p Params) k() float64 {
	if p.K < 1 {
		return 1
	}
	return float64(p.K)
}

// CholeskyFlops is the baseline n³/3.
func (p Params) CholeskyFlops() float64 {
	return p.n() * p.n() * p.n() / 3
}

// EncodeFlops is the one-time checksum encoding, 2n² (§VI-1), with
// relative overhead 6/n.
func (p Params) EncodeFlops() float64 {
	return 2 * p.n() * p.n()
}

// UpdateFlops returns the checksum-updating flops per operation class
// over the whole factorization (Table III): POTF2 2Bn, TRSM 2n²,
// SYRK 2n², GEMM 2n³/(3B). The same for all three schemes.
func (p Params) UpdateFlops() (potf2, trsm, syrk, gemm float64) {
	n, b := p.n(), p.b()
	return 2 * b * n, 2 * n * n, 2 * n * n, 2 * n * n * n / (3 * b)
}

// UpdateTotalRelative is Table III's total, 12/n + 2/B (POTF2 ignored).
func (p Params) UpdateTotalRelative() float64 {
	return 12/p.n() + 2/p.b()
}

// RecalcFlopsOnline returns the per-class checksum-recalculation flops
// of Online-ABFT (Table IV): POTF2 4Bn, TRSM 2n², SYRK 4Bn, GEMM 2n².
func (p Params) RecalcFlopsOnline() (potf2, trsm, syrk, gemm float64) {
	n, b := p.n(), p.b()
	return 4 * b * n, 2 * n * n, 4 * b * n, 2 * n * n
}

// RecalcOnlineRelative is Table IV's total, 12/n.
func (p Params) RecalcOnlineRelative() float64 {
	return 12 / p.n()
}

// RecalcFlopsEnhanced returns the per-class checksum-recalculation
// flops of Enhanced Online-ABFT (Table V): POTF2 4Bn, TRSM 2n²,
// SYRK 2n²/K, GEMM 2n³/(3BK).
//
// Note an inconsistency in the paper: Table V divides the SYRK row by
// K while §V-C says Optimization 3 applies only to GEMM and TRSM (and
// the implementation here follows §V-C). The closed forms reproduce
// Table V as printed; the difference is O(n²) either way.
func (p Params) RecalcFlopsEnhanced() (potf2, trsm, syrk, gemm float64) {
	n, b, k := p.n(), p.b(), p.k()
	return 4 * b * n, 2 * n * n, 2 * n * n / k, 2 * n * n * n / (3 * b * k)
}

// RecalcEnhancedRelative is Table V's total, (6K+6)/(nK) + 2/(BK).
func (p Params) RecalcEnhancedRelative() float64 {
	n, b, k := p.n(), p.b(), p.k()
	return (6*k+6)/(n*k) + 2/(b*k)
}

// SpaceRelative is the checksum matrix's space overhead, 2/B (§VI-5).
func (p Params) SpaceRelative() float64 {
	return 2 / p.b()
}

// TransferElems returns the CPU-placement transfer volumes in matrix
// elements (§VI-6): the initial checksum transfer 2n²/B, the
// update-related transfer n²/2, and the verification-related transfer
// for Online (n²/2B) and Enhanced (n³/(3KB²)).
func (p Params) TransferElems() (initial, updating, verifyOnline, verifyEnhanced float64) {
	n, b, k := p.n(), p.b(), p.k()
	return 2 * n * n / b, n * n / 2, n * n / (2 * b), n * n * n / (3 * k * b * b)
}

// OnlineOverallRelative is Table VI's Online-ABFT total:
// 30/n + 2/B, converging to 2/B as n grows.
func (p Params) OnlineOverallRelative() float64 {
	return 30/p.n() + 2/p.b()
}

// EnhancedOverallRelative is Table VI's Enhanced total:
// (24K+6)/(nK) + (2K+2)/(BK), converging to (2K+2)/(BK).
func (p Params) EnhancedOverallRelative() float64 {
	n, b, k := p.n(), p.b(), p.k()
	return (24*k+6)/(n*k) + (2*k+2)/(b*k)
}

// OnlineAsymptotic and EnhancedAsymptotic are the n→∞ columns of
// Table VI.
func (p Params) OnlineAsymptotic() float64 { return 2 / p.b() }

// EnhancedAsymptotic is (2K+2)/(BK).
func (p Params) EnhancedAsymptotic() float64 {
	return (2*p.k() + 2) / (p.b() * p.k())
}

// VerifiedBlocksEnhanced predicts how many block verifications the
// Enhanced scheme performs, matching the driver's schedule exactly:
// per iteration j (N = n/B blocks, m = N-j-1 trailing rows):
// row panel + diagonal (j+1), the pre-POTF2 diagonal (1), the L block
// before TRSM when m > 0 (1), and, on gate iterations (j ≡ 0 mod K,
// m > 0, j > 0 for GEMM), the GEMM inputs m·j + m and the TRSM panel m.
func (p Params) VerifiedBlocksEnhanced() int {
	nb := p.N / p.B
	k := p.K
	if k < 1 {
		k = 1
	}
	total := 0
	for j := 0; j < nb; j++ {
		m := nb - j - 1
		total += j + 1 // pre-SYRK: LC row + diag
		total++        // pre-POTF2 diag
		if m > 0 {
			total++ // pre-TRSM L
			if j%k == 0 {
				if j > 0 {
					total += m*j + m // pre-GEMM: LD + B
				}
				total += m // pre-TRSM panel
			}
		}
	}
	return total
}

// VerifiedBlocksOnline predicts Online-ABFT's count: the diagonal
// after SYRK (j > 0) and POTF2, and the panel after GEMM (j > 0) and
// TRSM.
func (p Params) VerifiedBlocksOnline() int {
	nb := p.N / p.B
	total := 0
	for j := 0; j < nb; j++ {
		m := nb - j - 1
		if j > 0 {
			total++ // post-SYRK
		}
		total++ // post-POTF2
		if m > 0 {
			if j > 0 {
				total += m // post-GEMM
			}
			total += m // post-TRSM
		}
	}
	return total
}

// VerifiedBlocksOffline is the one end-of-run sweep over the lower
// block triangle.
func (p Params) VerifiedBlocksOffline() int {
	nb := p.N / p.B
	return nb * (nb + 1) / 2
}
