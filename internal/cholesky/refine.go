package cholesky

import (
	"math"

	"abftchol/internal/blas"
	"abftchol/internal/mat"
)

// SolveRefined solves A·x = b using the factor l with iterative
// refinement: after the triangular solves it computes the residual
// r = b − A·x against the *original* matrix and applies the correction
// A·δ = r, repeating up to maxIter times or until the residual stops
// improving. Refinement recovers accuracy lost to rounding — and, for
// unprotected factorizations, partially masks small factor errors —
// at O(n²) per sweep. It returns the solution and the final residual
// infinity norm.
func SolveRefined(a, l *mat.Matrix, b []float64, maxIter int) ([]float64, float64, error) {
	n := a.Rows
	if a.Cols != n || l.Rows != n || l.Cols != n || len(b) < n {
		return nil, 0, mat.ErrShape
	}
	if maxIter < 0 {
		maxIter = 0
	}
	x := append([]float64(nil), b[:n]...)
	if err := Solve(l, x); err != nil {
		return nil, 0, err
	}
	r := make([]float64, n)
	resNorm := func() float64 {
		// r = b − A·x
		copy(r, b[:n])
		blas.Dgemv(blas.NoTrans, n, n, -1, a.Data, a.Stride, x, 1, r)
		maxAbs := 0.0
		for _, v := range r {
			if av := math.Abs(v); av > maxAbs {
				maxAbs = av
			}
		}
		return maxAbs
	}
	best := resNorm()
	for iter := 0; iter < maxIter && best > 0; iter++ {
		delta := append([]float64(nil), r...)
		if err := Solve(l, delta); err != nil {
			return nil, 0, err
		}
		for i := range x {
			x[i] += delta[i]
		}
		now := resNorm()
		if now >= best {
			// Converged (or stagnated): undo nothing, just stop.
			best = now
			break
		}
		best = now
	}
	return x, best, nil
}

// ConditionEst estimates the 2-norm condition number of the SPD matrix
// whose factor is l, by power iteration on A = L·Lᵀ (largest
// eigenvalue) and inverse iteration through the factor (smallest).
// A few dozen iterations give order-of-magnitude accuracy, which is
// what checksum-threshold reasoning needs.
func ConditionEst(l *mat.Matrix, iters int) float64 {
	n := l.Rows
	if iters < 1 {
		iters = 30
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(n))
	}
	w := make([]float64, n)
	applyA := func(dst, src []float64) {
		// dst = L·(Lᵀ·src)
		copy(dst, src)
		// t = Lᵀ·src via gemv on the lower triangle.
		t := make([]float64, n)
		for j := 0; j < n; j++ {
			s := 0.0
			for i := j; i < n; i++ {
				s += l.At(i, j) * src[i]
			}
			t[j] = s
		}
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j <= i; j++ {
				s += l.At(i, j) * t[j]
			}
			dst[i] = s
		}
	}
	normalize := func(x []float64) float64 {
		nrm := blas.Dnrm2(n, x)
		if nrm == 0 {
			return 0
		}
		blas.Dscal(n, 1/nrm, x)
		return nrm
	}
	lamMax := 0.0
	for k := 0; k < iters; k++ {
		applyA(w, v)
		copy(v, w)
		lamMax = normalize(v)
	}
	// Smallest eigenvalue via inverse iteration: solve A·w = v.
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(n))
	}
	muMax := 0.0 // largest eigenvalue of A⁻¹
	for k := 0; k < iters; k++ {
		copy(w, v)
		if err := Solve(l, w); err != nil {
			return math.Inf(1)
		}
		copy(v, w)
		muMax = normalize(v)
	}
	if muMax == 0 {
		return math.Inf(1)
	}
	return lamMax * muMax
}
