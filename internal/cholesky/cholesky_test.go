package cholesky

import (
	"math"
	"testing"
	"testing/quick"

	"abftchol/internal/blas"
	"abftchol/internal/mat"
)

func TestFactorResidual(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16, 33, 64, 100} {
		a := mat.RandSPD(n, int64(n))
		l := a.Clone()
		if err := Factor(l, 8); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if r := mat.CholeskyResidual(a, l); r > 1e-12 {
			t.Fatalf("n=%d residual %g", n, r)
		}
		// Strict upper triangle must be zeroed.
		for j := 1; j < n; j++ {
			for i := 0; i < j; i++ {
				if l.At(i, j) != 0 {
					t.Fatal("upper triangle not cleared")
				}
			}
		}
	}
}

func TestFactorNonSPD(t *testing.T) {
	a := mat.Eye(4)
	a.Set(2, 2, -1)
	if err := Factor(a, 2); err == nil {
		t.Fatal("negative diagonal accepted")
	}
}

func TestFactorNonSquare(t *testing.T) {
	if err := Factor(mat.New(3, 4), 2); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestSolveRecoversKnownSolution(t *testing.T) {
	n := 24
	a := mat.RandSPD(n, 5)
	x := mat.RandVector(n, 6)
	b := make([]float64, n)
	// b = A*x
	blas.Dgemv(blas.NoTrans, n, n, 1, a.Data, a.Stride, x, 0, b)
	l := a.Clone()
	if err := Factor(l, 8); err != nil {
		t.Fatal(err)
	}
	if err := Solve(l, b); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(b[i]-x[i]) > 1e-9 {
			t.Fatalf("x[%d] = %g, want %g", i, b[i], x[i])
		}
	}
}

func TestSolveManyMatchesSingle(t *testing.T) {
	n, nrhs := 16, 3
	a := mat.RandSPD(n, 7)
	l := a.Clone()
	if err := Factor(l, 4); err != nil {
		t.Fatal(err)
	}
	b := mat.RandGeneral(n, nrhs, 8)
	want := b.Clone()
	for j := 0; j < nrhs; j++ {
		if err := Solve(l, want.Col(j)); err != nil {
			t.Fatal(err)
		}
	}
	if err := SolveMany(l, b); err != nil {
		t.Fatal(err)
	}
	if mat.MaxAbsDiff(b, want) > 1e-12 {
		t.Fatal("SolveMany disagrees with repeated Solve")
	}
}

func TestSolveShapeErrors(t *testing.T) {
	if err := Solve(mat.New(3, 4), make([]float64, 3)); err == nil {
		t.Fatal("bad factor shape accepted")
	}
	if err := Solve(mat.Eye(3), make([]float64, 2)); err == nil {
		t.Fatal("short rhs accepted")
	}
	if err := SolveMany(mat.Eye(3), mat.New(2, 2)); err == nil {
		t.Fatal("rhs row mismatch accepted")
	}
}

func TestInverse(t *testing.T) {
	n := 20
	a := mat.RandSPD(n, 9)
	l := a.Clone()
	if err := Factor(l, 4); err != nil {
		t.Fatal(err)
	}
	inv, err := Inverse(l)
	if err != nil {
		t.Fatal(err)
	}
	// A * A⁻¹ must be the identity.
	prod := mat.New(n, n)
	blas.Dgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, a.Data, a.Stride, inv.Data, inv.Stride, 0, prod.Data, prod.Stride)
	if d := mat.MaxAbsDiff(prod, mat.Eye(n)); d > 1e-9 {
		t.Fatalf("A*inv(A) deviates from I by %g", d)
	}
	// Symmetry within rounding.
	if d := mat.MaxAbsDiff(inv, inv.Transpose()); d > 1e-11 {
		t.Fatalf("inverse asymmetric by %g", d)
	}
	if _, err := Inverse(mat.New(3, 4)); err == nil {
		t.Fatal("non-square factor accepted")
	}
}

func TestLogDetIdentity(t *testing.T) {
	if d := LogDet(mat.Eye(5)); math.Abs(d) > 1e-15 {
		t.Fatalf("logdet(I) = %g", d)
	}
	// diag(e) scaled: L = sqrt(e)·I, det = e^5, logdet = 5.
	l := mat.Eye(5)
	for i := 0; i < 5; i++ {
		l.Set(i, i, math.Sqrt(math.E))
	}
	if d := LogDet(l); math.Abs(d-5) > 1e-12 {
		t.Fatalf("logdet = %g, want 5", d)
	}
}

func TestSolvePropertyResidual(t *testing.T) {
	// Property: for random SPD systems, ‖A·x − b‖ stays at rounding level.
	f := func(seed int64) bool {
		n := 12
		a := mat.RandSPD(n, seed)
		b := mat.RandVector(n, seed+1)
		rhs := append([]float64(nil), b...)
		l := a.Clone()
		if err := Factor(l, 4); err != nil {
			return false
		}
		if err := Solve(l, rhs); err != nil {
			return false
		}
		// r = A·x − b
		r := append([]float64(nil), b...)
		blas.Dgemv(blas.NoTrans, n, n, 1, a.Data, a.Stride, rhs, -1, r)
		for _, v := range r {
			if math.Abs(v) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
