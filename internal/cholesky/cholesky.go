// Package cholesky provides the serial reference Cholesky
// factorization and triangular solvers. The heterogeneous (MAGMA
// Algorithm 1) variants live in internal/core, where they share the
// execution planes with the ABFT schemes; this package is the oracle
// they are validated against and the post-factorization solve used by
// the examples.
package cholesky

import (
	"math"

	"abftchol/internal/blas"
	"abftchol/internal/mat"
)

// Factor computes the lower Cholesky factor of the SPD matrix a in
// place (blocked, block size nb; nb <= 0 picks 64). On return the
// lower triangle of a holds L and the strict upper triangle is zeroed.
func Factor(a *mat.Matrix, nb int) error {
	if a.Rows != a.Cols {
		return mat.ErrShape
	}
	if nb <= 0 {
		nb = 64
	}
	if err := blas.Dpotrf(a.Rows, nb, a.Data, a.Stride); err != nil {
		return err
	}
	a.LowerFromFull()
	return nil
}

// Solve solves A·x = b given the lower Cholesky factor L of A
// (L·Lᵀ·x = b), overwriting b with x.
func Solve(l *mat.Matrix, b []float64) error {
	n := l.Rows
	if l.Cols != n || len(b) < n {
		return mat.ErrShape
	}
	blas.Dtrsv(blas.NoTrans, n, l.Data, l.Stride, b)
	blas.Dtrsv(blas.Trans, n, l.Data, l.Stride, b)
	return nil
}

// SolveMany solves A·X = B for nrhs right-hand sides stored as the
// columns of b, overwriting b with X.
func SolveMany(l, b *mat.Matrix) error {
	n := l.Rows
	if l.Cols != n || b.Rows != n {
		return mat.ErrShape
	}
	blas.Dtrsm(blas.Left, blas.NoTrans, n, b.Cols, 1, l.Data, l.Stride, b.Data, b.Stride)
	blas.Dtrsm(blas.Left, blas.Trans, n, b.Cols, 1, l.Data, l.Stride, b.Data, b.Stride)
	return nil
}

// Inverse returns A⁻¹ from A's lower Cholesky factor by solving
// A·X = I column by column (the POTRI use case). The result is exactly
// symmetric up to rounding; no symmetrization is applied.
func Inverse(l *mat.Matrix) (*mat.Matrix, error) {
	n := l.Rows
	if l.Cols != n {
		return nil, mat.ErrShape
	}
	x := mat.Eye(n)
	if err := SolveMany(l, x); err != nil {
		return nil, err
	}
	return x, nil
}

// LogDet returns the log-determinant of A from its Cholesky factor:
// log det A = 2·Σ log L[i,i]. It is one of the classic downstream uses
// (Gaussian likelihoods, Kalman filters) the paper's introduction
// motivates.
func LogDet(l *mat.Matrix) float64 {
	s := 0.0
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s
}
