package cholesky

import (
	"math"
	"testing"

	"abftchol/internal/blas"
	"abftchol/internal/mat"
)

func TestSolveRefinedImprovesResidual(t *testing.T) {
	n := 64
	a := mat.RandSPD(n, 21)
	l := a.Clone()
	if err := Factor(l, 8); err != nil {
		t.Fatal(err)
	}
	want := mat.RandVector(n, 22)
	b := make([]float64, n)
	blas.Dgemv(blas.NoTrans, n, n, 1, a.Data, a.Stride, want, 0, b)

	// Plain solve residual.
	plain := append([]float64(nil), b...)
	if err := Solve(l, plain); err != nil {
		t.Fatal(err)
	}
	r0 := make([]float64, n)
	copy(r0, b)
	blas.Dgemv(blas.NoTrans, n, n, -1, a.Data, a.Stride, plain, 1, r0)
	plainNorm := 0.0
	for _, v := range r0 {
		plainNorm = math.Max(plainNorm, math.Abs(v))
	}

	x, res, err := SolveRefined(a, l, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res > plainNorm {
		t.Fatalf("refinement worsened residual: %g > %g", res, plainNorm)
	}
	for i := range want {
		if d := math.Abs(x[i] - want[i]); d > 1e-9 {
			t.Fatalf("x[%d] off by %g", i, d)
		}
	}
}

func TestSolveRefinedRecoversFromSmallFactorDamage(t *testing.T) {
	// A small perturbation in the factor (below any checksum threshold)
	// leaves a slightly-wrong preconditioner; refinement against the
	// pristine A still converges to the true solution.
	n := 48
	a := mat.RandSPD(n, 23)
	l := a.Clone()
	if err := Factor(l, 8); err != nil {
		t.Fatal(err)
	}
	l.Add(n-1, 0, 1e-4)
	want := mat.RandVector(n, 24)
	b := make([]float64, n)
	blas.Dgemv(blas.NoTrans, n, n, 1, a.Data, a.Stride, want, 0, b)

	x, _, err := SolveRefined(a, l, b, 10)
	if err != nil {
		t.Fatal(err)
	}
	maxErr := 0.0
	for i := range want {
		maxErr = math.Max(maxErr, math.Abs(x[i]-want[i]))
	}
	if maxErr > 1e-8 {
		t.Fatalf("refined solution off by %g", maxErr)
	}
}

func TestSolveRefinedZeroIterIsPlainSolve(t *testing.T) {
	n := 16
	a := mat.RandSPD(n, 25)
	l := a.Clone()
	if err := Factor(l, 4); err != nil {
		t.Fatal(err)
	}
	b := mat.RandVector(n, 26)
	x, _, err := SolveRefined(a, l, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain := append([]float64(nil), b...)
	if err := Solve(l, plain); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if x[i] != plain[i] {
			t.Fatal("maxIter=0 must equal the plain solve")
		}
	}
	if _, _, err := SolveRefined(mat.New(3, 4), l, b, 1); err == nil {
		t.Fatal("bad shape accepted")
	}
}

func TestConditionEstIdentityAndScaled(t *testing.T) {
	// cond(I) = 1.
	l := mat.Eye(16)
	if c := ConditionEst(l, 40); math.Abs(c-1) > 0.05 {
		t.Fatalf("cond(I) estimated as %g", c)
	}
	// diag(1, ..., 1, 100): L = sqrt(diag), cond = 100.
	n := 16
	d := mat.Eye(n)
	d.Set(n-1, n-1, 10) // L entry sqrt(100)
	if c := ConditionEst(d, 60); c < 50 || c > 200 {
		t.Fatalf("cond(diag) estimated as %g, want ~100", c)
	}
}

func TestConditionEstRandomSPDSane(t *testing.T) {
	n := 32
	a := mat.RandSPD(n, 27)
	l := a.Clone()
	if err := Factor(l, 8); err != nil {
		t.Fatal(err)
	}
	c := ConditionEst(l, 50)
	// G·Gᵀ + n·I is well conditioned: cond modest and >= 1.
	if c < 1 || c > 1e4 {
		t.Fatalf("condition estimate %g implausible", c)
	}
}
