package obs

import "abftchol/internal/hetsim"

// PlatformObserver adapts a Registry to hetsim.Observer: every kernel
// launch and link transfer the simulator places on the timeline
// increments the per-class launch counters, duration histograms, and
// transfer accounting. Attach with Platform.Observe (internal/core
// does this automatically when Options.Metrics is set).
//
// Metric names are precomputed per class so the per-launch path does
// not allocate.
type PlatformObserver struct {
	reg       *Registry
	launches  map[hetsim.Class]string
	durations map[hetsim.Class]string
}

// NewPlatformObserver builds the adapter for reg.
func NewPlatformObserver(reg *Registry) *PlatformObserver {
	o := &PlatformObserver{
		reg:       reg,
		launches:  make(map[hetsim.Class]string, len(ClassKeys)),
		durations: make(map[hetsim.Class]string, len(ClassKeys)),
	}
	for _, ck := range ClassKeys {
		o.launches[ck.Class] = "kernel.launches." + ck.Key
		o.durations[ck.Class] = "kernel.duration_us." + ck.Key
	}
	return o
}

// KernelLaunched implements hetsim.Observer.
func (o *PlatformObserver) KernelLaunched(sp hetsim.Span) {
	if name, ok := o.launches[sp.Class]; ok {
		o.reg.Inc(name)
		o.reg.Observe(o.durations[sp.Class], (sp.End-sp.Start)*1e6)
	}
	switch sp.Resource {
	case "gpu":
		o.reg.AddValue("device.busy_seconds.gpu", sp.End-sp.Start)
	case "cpu":
		o.reg.AddValue("device.busy_seconds.cpu", sp.End-sp.Start)
	}
}

// TransferDone implements hetsim.Observer.
func (o *PlatformObserver) TransferDone(sp hetsim.Span, dir hetsim.Direction) {
	if dir == hetsim.HostToDevice {
		o.reg.Inc("xfer.count.h2d")
		o.reg.AddValue("xfer.bytes.h2d", sp.Bytes)
	} else {
		o.reg.Inc("xfer.count.d2h")
		o.reg.AddValue("xfer.bytes.d2h", sp.Bytes)
	}
	o.reg.Observe("xfer.bytes", sp.Bytes)
}
