// Package obs is the repository's observability layer: it turns a
// run of the simulated ABFT Cholesky factorization into artifacts a
// human (or a regression harness) can inspect after the fact.
//
// Two surfaces, both deterministic:
//
//   - A trace exporter (WriteChromeTrace, WriteJSONL) that serializes
//     a hetsim.Trace — every kernel, transfer, stream, slot
//     assignment, and instant mark — to the Chrome trace-event JSON
//     format loadable in Perfetto (https://ui.perfetto.dev) or
//     chrome://tracing, plus a compact one-object-per-line JSONL form
//     for ad-hoc scripting.
//
//   - A metrics registry (NewRegistry) of counters, float
//     accumulators, and log-bucketed histograms covering kernel
//     launches by class, checksum verifications, faults
//     injected/detected/corrected, restarts, bytes moved, and slot
//     contention. The metric set is closed: every name is declared in
//     Catalog, the registry rejects unknown names, and
//     docs/OBSERVABILITY.md's catalog table is drift-tested against
//     Catalog (regenerate with `go generate ./internal/obs`).
//
// Everything here is pure-function-of-the-run: same seed, same
// options, byte-identical snapshot and trace. That property is what
// lets tests assert on exported artifacts and what makes a metrics
// diff between two commits meaningful. The package is in the detsim
// analyzer's scope (see docs/LINTING.md), so wall-clock reads and
// ambient randomness are rejected at lint time.
//
// Wiring: core.Options.Metrics accepts a *Registry and
// core.Options.Trace a bool; cmd/abftchol exposes both as
// -metrics-out and -trace-out, and internal/experiments aggregates
// whole experiment sweeps through the same registry via Config.Obs.
package obs

//go:generate go run ../../tools/obsdoc
