package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"abftchol/internal/hetsim"
)

// The Chrome trace-event format, as consumed by Perfetto and
// chrome://tracing: a JSON object with a "traceEvents" array whose
// entries carry a phase ("X" complete span, "i" instant, "M"
// metadata), microsecond timestamps, and process/thread ids. We map
// each simulated resource (gpu, cpu, h2d, d2h) to a process and each
// stream to a thread, so the viewer's track layout reproduces the
// platform's queue structure.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level object.
type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// resourcePID fixes the resource → process mapping; pid 0 is the
// run-level pseudo-process that carries instant marks.
var resourcePID = map[string]int{"gpu": 1, "cpu": 2, "h2d": 3, "d2h": 4}

const markPID = 0

func pidOf(resource string) int {
	if pid, ok := resourcePID[resource]; ok {
		return pid
	}
	return 5 // unnamed device in a hand-built platform
}

// WriteChromeTrace serializes tr as Chrome trace-event JSON. meta
// (scheme, matrix size, machine, ...) lands in the file's otherData
// section, visible in Perfetto's trace-info view; nil is fine. Spans
// become complete "X" events sorted by start time, trace marks become
// instant "i" events on the run track, and metadata "M" events name
// every process and thread.
func WriteChromeTrace(w io.Writer, tr *hetsim.Trace, meta map[string]string) error {
	out := chromeTrace{DisplayTimeUnit: "ms", OtherData: meta}

	// Metadata: name processes and threads, deterministically ordered.
	procNames := map[int]string{markPID: "run"}
	type thread struct{ pid, tid int }
	threads := map[thread]bool{}
	for _, sp := range tr.Spans {
		pid := pidOf(sp.Resource)
		if _, ok := procNames[pid]; !ok {
			procNames[pid] = sp.Resource
		}
		threads[thread{pid, sp.Stream}] = true
	}
	var pids []int
	for pid := range procNames {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": procNames[pid]},
		})
	}
	var ths []thread
	for th := range threads {
		ths = append(ths, th)
	}
	sort.Slice(ths, func(i, j int) bool {
		if ths[i].pid != ths[j].pid {
			return ths[i].pid < ths[j].pid
		}
		return ths[i].tid < ths[j].tid
	})
	for _, th := range ths {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: th.pid, Tid: th.tid,
			Args: map[string]any{"name": fmt.Sprintf("stream %02d", th.tid)},
		})
	}

	// Timeline events: spans and marks, merged and stable-sorted by
	// timestamp (stable keeps issue order for simultaneous events, so
	// the output is deterministic without comparing floats for
	// equality).
	var evs []chromeEvent
	for _, sp := range tr.Spans {
		dur := (sp.End - sp.Start) * 1e6
		args := map[string]any{"class": ClassKey(sp.Class)}
		if sp.Slots > 0 {
			args["slots"] = sp.Slots
		}
		if sp.Flops > 0 {
			args["flops"] = sp.Flops
		}
		if sp.Bytes > 0 {
			args["bytes"] = sp.Bytes
		}
		evs = append(evs, chromeEvent{
			Name: sp.Name, Cat: ClassKey(sp.Class), Ph: "X",
			Ts: sp.Start * 1e6, Dur: &dur,
			Pid: pidOf(sp.Resource), Tid: sp.Stream, Args: args,
		})
	}
	for _, m := range tr.Marks {
		evs = append(evs, chromeEvent{
			Name: m.Name, Ph: "i", Ts: m.T * 1e6, Pid: markPID, S: "g",
		})
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })
	out.TraceEvents = append(out.TraceEvents, evs...)

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&out)
}

// WriteJSONL serializes tr in the compact form: one JSON object per
// line, spans in issue order followed by marks, with times in
// seconds. Made for jq/awk pipelines rather than trace viewers.
func WriteJSONL(w io.Writer, tr *hetsim.Trace) error {
	enc := json.NewEncoder(w)
	type spanLine struct {
		Name     string  `json:"name"`
		Class    string  `json:"class"`
		Resource string  `json:"resource"`
		Stream   int     `json:"stream"`
		Start    float64 `json:"start_s"`
		End      float64 `json:"end_s"`
		Slots    int     `json:"slots,omitempty"`
		Flops    float64 `json:"flops,omitempty"`
		Bytes    float64 `json:"bytes,omitempty"`
	}
	for _, sp := range tr.Spans {
		if err := enc.Encode(spanLine{
			Name: sp.Name, Class: ClassKey(sp.Class), Resource: sp.Resource,
			Stream: sp.Stream, Start: sp.Start, End: sp.End,
			Slots: sp.Slots, Flops: sp.Flops, Bytes: sp.Bytes,
		}); err != nil {
			return err
		}
	}
	type markLine struct {
		Mark string  `json:"mark"`
		T    float64 `json:"t_s"`
	}
	for _, m := range tr.Marks {
		if err := enc.Encode(markLine{Mark: m.Name, T: m.T}); err != nil {
			return err
		}
	}
	return nil
}

// ValidateChromeTrace parses data as Chrome trace-event JSON and
// checks the invariants a viewer relies on: every event has a known
// phase, complete ("X") events have a non-negative duration,
// timestamps are non-negative and non-decreasing within the timeline
// section, and any duration-begin "B" event is matched by an "E" on
// the same process/thread. It returns the number of timeline (non
// metadata) events.
func ValidateChromeTrace(data []byte) (events int, err error) {
	var tr struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   float64  `json:"ts"`
			Dur  *float64 `json:"dur"`
			Pid  int      `json:"pid"`
			Tid  int      `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		return 0, fmt.Errorf("obs: not valid trace-event JSON: %w", err)
	}
	type track struct{ pid, tid int }
	open := map[track]int{}
	lastTs := 0.0
	for i, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			continue
		case "X":
			if ev.Dur == nil || *ev.Dur < 0 {
				return 0, fmt.Errorf("obs: event %d (%q): X event needs dur >= 0", i, ev.Name)
			}
		case "B":
			open[track{ev.Pid, ev.Tid}]++
		case "E":
			t := track{ev.Pid, ev.Tid}
			if open[t] == 0 {
				return 0, fmt.Errorf("obs: event %d (%q): E without matching B on pid=%d tid=%d", i, ev.Name, ev.Pid, ev.Tid)
			}
			open[t]--
		case "i", "I":
			// instant, nothing to pair
		default:
			return 0, fmt.Errorf("obs: event %d (%q): unknown phase %q", i, ev.Name, ev.Ph)
		}
		if ev.Ts < 0 {
			return 0, fmt.Errorf("obs: event %d (%q): negative timestamp %g", i, ev.Name, ev.Ts)
		}
		if ev.Ts < lastTs {
			return 0, fmt.Errorf("obs: event %d (%q): timestamp %g before predecessor %g; timeline not monotonic", i, ev.Name, ev.Ts, lastTs)
		}
		lastTs = ev.Ts
		events++
	}
	// Report the lowest unclosed track so the error is deterministic
	// (map iteration order would otherwise pick an arbitrary one).
	var unclosed []track
	for t, n := range open {
		if n != 0 {
			unclosed = append(unclosed, t)
		}
	}
	if len(unclosed) > 0 {
		sort.Slice(unclosed, func(i, j int) bool {
			if unclosed[i].pid != unclosed[j].pid {
				return unclosed[i].pid < unclosed[j].pid
			}
			return unclosed[i].tid < unclosed[j].tid
		})
		t := unclosed[0]
		return 0, fmt.Errorf("obs: %d unclosed B event(s) on pid=%d tid=%d", open[t], t.pid, t.tid)
	}
	if events == 0 {
		return 0, fmt.Errorf("obs: trace has no timeline events")
	}
	return events, nil
}

// TraceFormatForPath picks the export format from a file name:
// ".jsonl" selects the compact line form, anything else the Chrome
// trace-event JSON.
func TraceFormatForPath(path string) string {
	if strings.HasSuffix(path, ".jsonl") {
		return "jsonl"
	}
	return "chrome"
}
