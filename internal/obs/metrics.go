package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Registry holds one deterministic set of metrics, pre-registered
// from Catalog. It is strict: touching a name the catalog does not
// declare panics, so a typo fails the first test that exercises the
// path instead of silently dropping data. A mutex makes concurrent
// emission safe (the sweep engine's worker pool shares one sink);
// determinism is unaffected because every metric is a commutative
// accumulation, so a snapshot is a pure function of the set of runs
// merged in, not of their interleaving. For byte-stable *ordering*
// guarantees the sweep engine still merges per-run deltas in
// canonical point order (see internal/experiments).
type Registry struct {
	mu       sync.Mutex // guards: counters, values, hists
	counters map[string]int64
	values   map[string]float64
	hists    map[string]*Histogram
}

// NewRegistry builds a registry with every catalog metric at zero.
func NewRegistry() *Registry {
	r := &Registry{
		counters: make(map[string]int64),
		values:   make(map[string]float64),
		hists:    make(map[string]*Histogram),
	}
	for _, m := range Catalog {
		switch m.Kind {
		case Counter:
			r.counters[m.Name] = 0
		case Value:
			r.values[m.Name] = 0
		case HistogramKind:
			r.hists[m.Name] = &Histogram{}
		}
	}
	return r
}

func (r *Registry) unknown(kind Kind, name string) string {
	return fmt.Sprintf("obs: %s %q is not in the catalog; declare it in internal/obs/catalog.go", kind, name)
}

// Inc adds one to a counter.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Add adds d to a counter.
func (r *Registry) Add(name string, d int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.counters[name]; !ok {
		panic(r.unknown(Counter, name))
	}
	r.counters[name] += d
}

// AddValue adds v to a float accumulator.
func (r *Registry) AddValue(name string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.values[name]; !ok {
		panic(r.unknown(Value, name))
	}
	r.values[name] += v
}

// Observe records v into a histogram.
func (r *Registry) Observe(name string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		panic(r.unknown(HistogramKind, name))
	}
	h.observe(v)
}

// Counter reads a counter's current value (tests and assertions).
func (r *Registry) Counter(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.counters[name]
	if !ok {
		panic(r.unknown(Counter, name))
	}
	return v
}

// Value reads a float accumulator's current value.
func (r *Registry) Value(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.values[name]
	if !ok {
		panic(r.unknown(Value, name))
	}
	return v
}

// HistogramCount reads a histogram's observation count.
func (r *Registry) HistogramCount(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		panic(r.unknown(HistogramKind, name))
	}
	return h.Count
}

// Merge folds every metric of src into r: counters and values add,
// histograms add bucket-wise. Both registries hold the same closed
// catalog, so there is nothing to reconcile — Merge(a, b) followed by
// Snapshot is byte-identical to having emitted both registries' events
// into one. The sweep engine gives each concurrent factorization a
// private registry and merges the deltas in canonical point order, so
// parallel sweeps snapshot byte-identically to serial ones.
func (r *Registry) Merge(src *Registry) {
	if src == nil || src == r {
		return
	}
	// Lock ordering: src is a completed per-run delta no longer being
	// written; taking its lock second is safe because Merge callers
	// never merge two live sinks into each other both ways.
	r.mu.Lock()
	defer r.mu.Unlock()
	src.mu.Lock()
	defer src.mu.Unlock()
	for name, v := range src.counters {
		r.counters[name] += v
	}
	for name, v := range src.values {
		r.values[name] += v
	}
	for name, h := range src.hists {
		dst := r.hists[name]
		dst.Count += h.Count
		dst.Sum += h.Sum
		dst.Underflow += h.Underflow
		dst.Overflow += h.Overflow
		for i := range h.buckets {
			dst.buckets[i] += h.buckets[i]
		}
	}
}

// Histogram is a log₂-bucketed distribution: bucket i counts
// observations v with v <= 2^i (i in 0..maxBucket); smaller and
// larger observations land in the underflow/overflow counts. Powers
// of two up to 2^40 span sub-microsecond kernels to multi-gigabyte
// transfers with ~3 dB resolution, and integer bucket math keeps the
// snapshot exact.
type Histogram struct {
	Count     int64
	Sum       float64
	Underflow int64 // v <= 0
	Overflow  int64 // v > 2^maxBucket
	buckets   [maxBucket + 1]int64
}

const maxBucket = 40

func (h *Histogram) observe(v float64) {
	h.Count++
	h.Sum += v
	if v <= 0 {
		h.Underflow++
		return
	}
	le := float64(1) // 2^0
	for i := 0; i <= maxBucket; i++ {
		if v <= le {
			h.buckets[i]++
			return
		}
		le *= 2
	}
	h.Overflow++
}

// bucketSnapshot is one non-empty histogram bucket in a snapshot.
type bucketSnapshot struct {
	LE float64 `json:"le"` // upper bound, inclusive
	N  int64   `json:"n"`
}

// histSnapshot is a histogram's serialized form; only non-empty
// buckets appear.
type histSnapshot struct {
	Count     int64            `json:"count"`
	Sum       float64          `json:"sum"`
	Underflow int64            `json:"underflow,omitempty"`
	Overflow  int64            `json:"overflow,omitempty"`
	Buckets   []bucketSnapshot `json:"buckets,omitempty"`
}

// snapshot is the full registry serialization. encoding/json emits
// map keys sorted, so the byte output is a pure function of the
// metric values.
type snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Values     map[string]float64      `json:"values"`
	Histograms map[string]histSnapshot `json:"histograms"`
}

// Snapshot serializes every metric — zeros included, so two snapshots
// of the same catalog always have the same shape — as indented JSON.
// Identical runs produce byte-identical snapshots.
func (r *Registry) Snapshot() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := snapshot{
		Counters:   r.counters,
		Values:     r.values,
		Histograms: make(map[string]histSnapshot, len(r.hists)),
	}
	for name, h := range r.hists {
		hs := histSnapshot{Count: h.Count, Sum: h.Sum, Underflow: h.Underflow, Overflow: h.Overflow}
		le := float64(1)
		for i := 0; i <= maxBucket; i++ {
			if h.buckets[i] > 0 {
				hs.Buckets = append(hs.Buckets, bucketSnapshot{LE: le, N: h.buckets[i]})
			}
			le *= 2
		}
		s.Histograms[name] = hs
	}
	b, err := json.MarshalIndent(&s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Names returns every registered metric name, sorted — the live
// registry's view for the catalog drift test.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for n := range r.counters {
		out = append(out, n)
	}
	for n := range r.values {
		out = append(out, n)
	}
	for n := range r.hists {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
