package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistryRejectsUnknownNames(t *testing.T) {
	r := NewRegistry()
	for _, fn := range []struct {
		label string
		call  func()
	}{
		{"Inc", func() { r.Inc("no.such.counter") }},
		{"AddValue", func() { r.AddValue("no.such.value", 1) }},
		{"Observe", func() { r.Observe("no.such.histogram", 1) }},
		// Right name, wrong kind: a histogram is not a counter.
		{"Inc on histogram", func() { r.Inc("verify.batch_blocks") }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on unregistered metric", fn.label)
				}
			}()
			fn.call()
		}()
	}
}

func TestRegistryCoversCatalog(t *testing.T) {
	r := NewRegistry()
	if got, want := len(r.Names()), len(Catalog); got != want {
		t.Fatalf("registry has %d names, catalog %d", got, want)
	}
	// Every catalog entry accepts a write of its kind without panic.
	for _, def := range Catalog {
		switch def.Kind {
		case Counter:
			r.Inc(def.Name)
		case Value:
			r.AddValue(def.Name, 1.5)
		case HistogramKind:
			r.Observe(def.Name, 3)
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	fill := func(r *Registry) {
		r.Add("kernel.launches.gemm", 7)
		r.Inc("run.count")
		r.AddValue("time.sim_seconds", 1.25)
		r.AddValue("device.busy_seconds.gpu", 0.5)
		for _, v := range []float64{0, 1, 3, 1024, 1e13} {
			r.Observe("xfer.bytes", v)
		}
	}
	a, b := NewRegistry(), NewRegistry()
	fill(a)
	fill(b)
	sa, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa, sb) {
		t.Fatalf("identical registries produced different snapshots:\n%s\n----\n%s", sa, sb)
	}
	if !bytes.HasSuffix(sa, []byte("\n")) {
		t.Error("snapshot should end with a newline")
	}
	var parsed struct {
		Counters   map[string]int64   `json:"counters"`
		Values     map[string]float64 `json:"values"`
		Histograms map[string]struct {
			Count    int64 `json:"count"`
			Overflow int64 `json:"overflow"`
			Buckets  []struct {
				Le float64 `json:"le"`
				N  int64   `json:"n"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(sa, &parsed); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if parsed.Counters["kernel.launches.gemm"] != 7 {
		t.Errorf("kernel.launches.gemm = %d, want 7", parsed.Counters["kernel.launches.gemm"])
	}
	h := parsed.Histograms["xfer.bytes"]
	if h.Count != 5 {
		t.Errorf("xfer.bytes count = %d, want 5", h.Count)
	}
	if h.Overflow != 1 {
		t.Errorf("xfer.bytes overflow = %d, want 1 (1e13 > 2^40)", h.Overflow)
	}
}

func TestHistogramCount(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 9; i++ {
		r.Observe("verify.batch_blocks", float64(i))
	}
	if got := r.HistogramCount("verify.batch_blocks"); got != 9 {
		t.Fatalf("HistogramCount = %d, want 9", got)
	}
}

func TestCatalogTableListsEveryMetric(t *testing.T) {
	table := CatalogTable()
	for _, def := range Catalog {
		if !strings.Contains(table, "`"+def.Name+"`") {
			t.Errorf("catalog table is missing %s", def.Name)
		}
	}
}
