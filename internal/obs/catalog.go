package obs

import (
	"fmt"
	"strings"

	"abftchol/internal/hetsim"
)

// Kind is a metric's type.
type Kind int

const (
	// Counter is a monotonically increasing integer count.
	Counter Kind = iota
	// Value is a float accumulator (bytes, seconds) — also monotonic,
	// but fractional.
	Value
	// HistogramKind is a log₂-bucketed distribution with count and sum.
	HistogramKind
)

func (k Kind) String() string {
	switch k {
	case Counter:
		return "counter"
	case Value:
		return "value"
	case HistogramKind:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// MetricDef declares one metric of the closed catalog: its registry
// name, type, unit (empty for dimensionless counts), and meaning.
type MetricDef struct {
	Name string
	Kind Kind
	Unit string
	Help string
}

// ClassKeys maps every hetsim kernel class to the lowercase key used
// in per-class metric names, in class order.
var ClassKeys = []struct {
	Class hetsim.Class
	Key   string
}{
	{hetsim.ClassGEMM, "gemm"},
	{hetsim.ClassSYRK, "syrk"},
	{hetsim.ClassTRSM, "trsm"},
	{hetsim.ClassPOTF2, "potf2"},
	{hetsim.ClassChkRecalc, "chk_recalc"},
	{hetsim.ClassChkUpdate, "chk_update"},
	{hetsim.ClassChkCompare, "chk_compare"},
	{hetsim.ClassHost, "host"},
}

// ClassKey returns the metric-name key for a kernel class ("xfer" for
// the pseudo-class link transfers carry).
func ClassKey(c hetsim.Class) string {
	for _, ck := range ClassKeys {
		if ck.Class == c {
			return ck.Key
		}
	}
	return "xfer"
}

// SchemeKeys are the metric-name keys of the fault-tolerance schemes,
// in core.Scheme order. internal/core owns the Scheme→key mapping and
// asserts it stays in step with this list.
var SchemeKeys = []string{"magma", "cula", "offline", "online", "enhanced", "scrub"}

// Catalog is the closed set of metrics a Registry holds. Every name a
// run can emit is declared here; docs/OBSERVABILITY.md renders this
// table and a test fails when the two drift.
var Catalog = buildCatalog()

func buildCatalog() []MetricDef {
	var c []MetricDef
	add := func(name string, kind Kind, unit, help string) {
		c = append(c, MetricDef{Name: name, Kind: kind, Unit: unit, Help: help})
	}
	for _, ck := range ClassKeys {
		add("kernel.launches."+ck.Key, Counter, "",
			fmt.Sprintf("kernel launches of class %s across both devices (all attempts)", ck.Class))
	}
	for _, ck := range ClassKeys {
		add("kernel.duration_us."+ck.Key, HistogramKind, "µs",
			fmt.Sprintf("modeled per-launch duration of class %s kernels, launch overhead included", ck.Class))
	}
	add("xfer.count.h2d", Counter, "", "host→device link transfers")
	add("xfer.count.d2h", Counter, "", "device→host link transfers")
	add("xfer.bytes.h2d", Value, "bytes", "total bytes moved host→device")
	add("xfer.bytes.d2h", Value, "bytes", "total bytes moved device→host")
	add("xfer.bytes", HistogramKind, "bytes", "per-transfer size distribution, both directions")
	add("device.busy_seconds.gpu", Value, "s", "summed standalone GPU kernel durations (overlap not subtracted)")
	add("device.busy_seconds.cpu", Value, "s", "summed standalone CPU kernel durations (overlap not subtracted)")
	add("slot.waits.gpu", Counter, "", "GPU launches delayed because all required concurrent-kernel slots were busy")
	add("slot.waits.cpu", Counter, "", "CPU launches delayed because all required concurrent-kernel slots were busy")
	add("slot.wait_seconds.gpu", Value, "s", "summed GPU slot-queueing delay (Optimization 1's contention)")
	add("slot.wait_seconds.cpu", Value, "s", "summed CPU slot-queueing delay")
	add("verify.blocks", Counter, "", "block checksum verifications (recalculate + compare), all attempts")
	add("verify.batches", Counter, "", "verification batches — each pays one host round-trip (VerifyBatchSync)")
	add("verify.batch_blocks", HistogramKind, "", "blocks per verification batch (Optimization 1's fan-out width)")
	add("fault.injected", Counter, "", "soft errors the injector fired (computation + storage)")
	add("fault.corrected", Counter, "", "elements repaired in place by checksum correction")
	add("fault.propagations", Counter, "", "reads of corrupted blocks by update kernels before repair")
	add("run.count", Counter, "", "factorization runs finalized into this registry")
	add("run.attempts", Counter, "", "factorization attempts, including the first try of each run")
	add("run.restarts", Counter, "", "whole-factorization restarts after unrecoverable corruption")
	add("run.failstops", Counter, "", "POTF2 positive-definiteness failures (fail-stop errors)")
	add("time.sim_seconds", Value, "s", "summed simulated wall-clock of finalized runs")
	for _, s := range SchemeKeys {
		add("scheme.runs."+s, Counter, "", fmt.Sprintf("finalized runs under the %s scheme", s))
	}
	for _, s := range SchemeKeys {
		add("scheme.seconds."+s, Value, "s",
			fmt.Sprintf("summed simulated time under the %s scheme — diff against scheme.seconds.magma for the overhead breakdown", s))
	}
	add("sweep.points.planned", Counter, "", "options points the sweep engine's runners declared, duplicates included")
	add("sweep.points.executed", Counter, "", "factorizations the sweep engine actually executed (after dedup and cache hits)")
	add("sweep.dedup.hits", Counter, "", "planned points served from an identical point already run in this process")
	add("sweep.cache.hits", Counter, "", "planned points served from the on-disk result cache without executing")
	add("sweep.cache.stores", Counter, "", "results the sweep engine wrote to the on-disk cache")
	add("server.jobs.submitted", Counter, "", "jobs the daemon accepted past admission control (202 responses)")
	add("server.jobs.done", Counter, "", "jobs that reached state done")
	add("server.jobs.deduped", Counter, "", "done jobs served without a new execution — an identical concurrent job's singleflight result or an on-disk cache hit")
	add("server.jobs.failed", Counter, "", "jobs that reached state failed (run error or deadline)")
	add("server.jobs.canceled", Counter, "", "jobs canceled while queued, by clients or by shutdown")
	add("server.jobs.rejected.rate", Counter, "", "submissions refused 429 by the per-client token bucket")
	add("server.jobs.rejected.queue", Counter, "", "submissions refused 429 because the bounded job queue was full")
	add("server.campaigns.submitted", Counter, "", "reliability campaigns the daemon accepted (202 responses)")
	add("server.campaigns.deduped", Counter, "", "campaign submissions attached to an identical in-flight or finished campaign by fingerprint")
	add("campaign.cells.planned", Counter, "", "reliability-campaign grid cells (machine × scheme × fault class) planned")
	add("campaign.shards.planned", Counter, "", "reliability-campaign shards planned across all cells")
	add("campaign.shards.executed", Counter, "", "reliability-campaign shards executed in this process (not served by the journal)")
	add("campaign.shards.resumed", Counter, "", "reliability-campaign shards restored from a checkpoint journal instead of re-executing")
	add("campaign.trials.planned", Counter, "", "fault-injection trials planned across the whole campaign grid")
	add("campaign.trials.executed", Counter, "", "fault-injection trials executed in this process")
	add("campaign.outcome.clean", Counter, "", "trials in which no fault fired and the run finished normally")
	add("campaign.outcome.detected_corrected", Counter, "", "trials whose injected faults were all detected and repaired in place")
	add("campaign.outcome.detected_uncorrectable", Counter, "", "trials whose corruption was detected but exceeded checksum correction (or fail-stopped)")
	add("campaign.outcome.silent_corruption", Counter, "", "trials whose faults escaped the scheme's online protocol")
	return c
}

// Markers bracketing the generated catalog table in
// docs/OBSERVABILITY.md, mirroring docs/LINTING.md's analyzer table.
const (
	TableBegin = "<!-- BEGIN GENERATED METRICS CATALOG (go generate ./internal/obs) -->"
	TableEnd   = "<!-- END GENERATED METRICS CATALOG -->"
)

// CatalogTable renders the catalog as the markdown table embedded in
// docs/OBSERVABILITY.md.
func CatalogTable() string {
	var b strings.Builder
	b.WriteString("| metric | type | unit | meaning |\n")
	b.WriteString("|--------|------|------|---------|\n")
	for _, m := range Catalog {
		unit := m.Unit
		if unit == "" {
			unit = "–"
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s |\n", m.Name, m.Kind, unit, m.Help)
	}
	return b.String()
}
