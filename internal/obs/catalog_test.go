package obs

import (
	"os"
	"sort"
	"strings"
	"testing"
)

// TestCatalogWellFormed pins the catalog's contract: unique,
// lowercase dotted names, each with a description, since names key
// the registry and the generated docs.
func TestCatalogWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range Catalog {
		if m.Name == "" || m.Help == "" {
			t.Errorf("metric %+v is missing Name or Help", m)
		}
		if seen[m.Name] {
			t.Errorf("duplicate metric name %s", m.Name)
		}
		seen[m.Name] = true
		if m.Name != strings.ToLower(m.Name) || strings.ContainsAny(m.Name, " \t") {
			t.Errorf("metric name %q is not a lowercase dotted identifier", m.Name)
		}
	}
}

// TestDocCatalogCurrent fails when docs/OBSERVABILITY.md's generated
// metrics table no longer matches the live catalog — the regeneration
// command is in the failure message, so doc and registry cannot drift
// silently.
func TestDocCatalogCurrent(t *testing.T) {
	data, err := os.ReadFile("../../docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	want := TableBegin + "\n" + CatalogTable()
	if !strings.Contains(doc, want) {
		t.Fatalf("docs/OBSERVABILITY.md's metrics catalog is stale; run `go generate ./internal/obs` to regenerate it from internal/obs.Catalog")
	}
}

// TestDocCatalogMatchesLiveRegistry closes the loop from the other
// side: every name a live registry accepts appears in the documented
// catalog table, and nothing else does.
func TestDocCatalogMatchesLiveRegistry(t *testing.T) {
	var fromCatalog []string
	for _, m := range Catalog {
		fromCatalog = append(fromCatalog, m.Name)
	}
	sort.Strings(fromCatalog)
	live := NewRegistry().Names()
	if len(live) != len(fromCatalog) {
		t.Fatalf("registry holds %d names, catalog declares %d", len(live), len(fromCatalog))
	}
	for i := range live {
		if live[i] != fromCatalog[i] {
			t.Fatalf("registry name %q != catalog name %q at position %d", live[i], fromCatalog[i], i)
		}
	}
}
