package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"abftchol/internal/hetsim"
)

var update = flag.Bool("update", false, "rewrite the golden trace file")

// demoTrace drives a small hand-built platform through a fixed kernel
// and transfer schedule. It exists so the golden file depends only on
// hetsim's timing model and the exporter, not on core's scheduling.
func demoTrace() *hetsim.Trace {
	p := hetsim.NewPlatform(hetsim.Laptop())
	tr := p.StartTrace()
	sc := p.GPUStream()
	sv := p.GPUStream()
	scpu := p.CPUStream()

	tr.Mark("iter[0]", 0)
	p.Link.Transfer(sc, hetsim.HostToDevice, 1<<20)
	p.GPU.Launch(sc, hetsim.Kernel{Name: "gemm[0]", Class: hetsim.ClassGEMM, Flops: 2e9})
	p.GPU.Launch(sv, hetsim.Kernel{Name: "chk-recalc[0,0]", Class: hetsim.ClassChkRecalc, Flops: 1e6, Slots: 1})
	p.GPU.Launch(sv, hetsim.Kernel{Name: "chk-recalc[1,0]", Class: hetsim.ClassChkRecalc, Flops: 1e6, Slots: 1})
	scpu.Wait(sc.Record())
	p.CPU.Launch(scpu, hetsim.Kernel{Name: "potf2[0]", Class: hetsim.ClassPOTF2, Flops: 3e7})
	tr.Mark("iter[1]", scpu.Done())
	p.Link.Transfer(scpu, hetsim.DeviceToHost, 1<<18)
	p.GPU.Launch(sc, hetsim.Kernel{Name: "trsm[0]", Class: hetsim.ClassTRSM, Flops: 5e8})
	return tr
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	meta := map[string]string{"tool": "abftchol", "run": "demo"}
	if err := WriteChromeTrace(&buf, demoTrace(), meta); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_trace.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -run Golden -update` to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exported trace differs from %s; if the change is intended, regenerate with -update", golden)
	}
	if _, err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestChromeTraceStructure(t *testing.T) {
	var buf bytes.Buffer
	tr := demoTrace()
	if err := WriteChromeTrace(&buf, tr, nil); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(tr.Spans) + len(tr.Marks); n != want {
		t.Errorf("validator saw %d timeline events, trace holds %d", n, want)
	}

	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", parsed.DisplayTimeUnit)
	}
	procs := map[string]bool{}
	marks := 0
	for _, ev := range parsed.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procs[ev.Args["name"].(string)] = true
		}
		if ev.Ph == "i" {
			marks++
		}
	}
	for _, want := range []string{"run", "gpu", "cpu", "h2d", "d2h"} {
		if !procs[want] {
			t.Errorf("missing process_name metadata for %q", want)
		}
	}
	if marks != len(tr.Marks) {
		t.Errorf("%d instant events, want %d marks", marks, len(tr.Marks))
	}
}

func TestValidateChromeTraceRejectsBadTraces(t *testing.T) {
	for _, tc := range []struct {
		label, body, wantErr string
	}{
		{"negative dur", `{"traceEvents":[{"name":"k","ph":"X","ts":1,"dur":-2,"pid":1,"tid":1}]}`, "dur"},
		{"unmatched E", `{"traceEvents":[{"name":"k","ph":"E","ts":1,"pid":1,"tid":1}]}`, "without matching B"},
		{"unclosed B", `{"traceEvents":[{"name":"k","ph":"B","ts":1,"pid":1,"tid":1}]}`, "unclosed"},
		{"non-monotonic", `{"traceEvents":[{"name":"a","ph":"i","ts":5,"pid":0,"tid":0},{"name":"b","ph":"i","ts":1,"pid":0,"tid":0}]}`, "monotonic"},
		{"unknown phase", `{"traceEvents":[{"name":"k","ph":"Q","ts":1,"pid":1,"tid":1}]}`, "phase"},
		{"empty timeline", `{"traceEvents":[{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0}]}`, "no timeline"},
		{"not json", `nope`, "not valid"},
	} {
		if _, err := ValidateChromeTrace([]byte(tc.body)); err == nil {
			t.Errorf("%s: validation passed, want error containing %q", tc.label, tc.wantErr)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.label, err, tc.wantErr)
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := demoTrace()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if want := len(tr.Spans) + len(tr.Marks); len(lines) != want {
		t.Fatalf("%d lines, want %d (spans + marks)", len(lines), want)
	}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
	}
	var first struct {
		Name  string  `json:"name"`
		Class string  `json:"class"`
		Start float64 `json:"start_s"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Name != "xfer" || first.Class != "xfer" {
		t.Errorf("first span = %q/%q, want the h2d transfer", first.Name, first.Class)
	}
}

func TestTraceFormatForPath(t *testing.T) {
	for path, want := range map[string]string{
		"run.jsonl":  "jsonl",
		"run.json":   "chrome",
		"trace":      "chrome",
		"out.JSONL":  "chrome", // extension match is case-sensitive, like Go tooling
		"a/b.jsonl":  "jsonl",
		"fig8.trace": "chrome",
	} {
		if got := TraceFormatForPath(path); got != want {
			t.Errorf("TraceFormatForPath(%q) = %q, want %q", path, got, want)
		}
	}
}
