package mat

import "math"

// NormInf returns the infinity norm (max absolute row sum).
func (m *Matrix) NormInf() float64 {
	sums := make([]float64, m.Rows)
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i, v := range col {
			sums[i] += math.Abs(v)
		}
	}
	maxs := 0.0
	for _, s := range sums {
		if s > maxs {
			maxs = s
		}
	}
	return maxs
}

// NormFro returns the Frobenius norm.
func (m *Matrix) NormFro() float64 {
	s := 0.0
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for _, v := range col {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// NormMax returns the largest absolute element.
func (m *Matrix) NormMax() float64 {
	maxv := 0.0
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for _, v := range col {
			av := math.Abs(v)
			if av > maxv {
				maxv = av
			}
		}
	}
	return maxv
}

// CholeskyResidual returns ‖A − L·Lᵀ‖max / (n·‖A‖max), the standard
// scaled residual used to accept or reject a computed factor. L is
// read from the lower triangle (including diagonal) of l; anything in
// the strict upper triangle of l is ignored.
func CholeskyResidual(a, l *Matrix) float64 {
	n := a.Rows
	if a.Cols != n || l.Rows != n || l.Cols != n {
		panic(ErrShape)
	}
	maxd := 0.0
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ { // symmetric: lower triangle suffices
			s := 0.0
			kmax := i
			if j < i {
				kmax = j
			}
			for k := 0; k <= kmax; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			d := math.Abs(a.At(i, j) - s)
			if d > maxd {
				maxd = d
			}
		}
	}
	den := float64(n) * a.NormMax()
	if den == 0 {
		return maxd
	}
	return maxd / den
}
