package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.Stride != 3 {
		t.Fatalf("bad shape: %+v", m)
	}
	for j := 0; j < 4; j++ {
		for i := 0; i < 3; i++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) not zero", i, j)
			}
		}
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := New(5, 5)
	m.Set(2, 3, 7.5)
	if got := m.At(2, 3); got != 7.5 {
		t.Fatalf("At(2,3) = %g, want 7.5", got)
	}
	m.Add(2, 3, 0.5)
	if got := m.At(2, 3); got != 8 {
		t.Fatalf("after Add, At(2,3) = %g, want 8", got)
	}
}

func TestColumnMajorLayout(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 42)
	if m.Data[1+2*2] != 42 {
		t.Fatal("element (1,2) not at Data[1+2*stride]")
	}
}

func TestViewAliasing(t *testing.T) {
	m := New(6, 6)
	v := m.View(2, 3, 2, 2)
	v.Set(0, 0, 9)
	if m.At(2, 3) != 9 {
		t.Fatal("view write did not reach parent")
	}
	if v.Stride != 6 {
		t.Fatalf("view stride = %d, want parent stride 6", v.Stride)
	}
}

func TestViewOfView(t *testing.T) {
	m := New(8, 8)
	m.Set(5, 6, 3)
	v := m.View(4, 4, 4, 4).View(1, 2, 2, 2)
	if v.At(0, 0) != 3 {
		t.Fatal("nested view misaligned")
	}
}

func TestViewBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range view")
		}
	}()
	New(4, 4).View(2, 2, 3, 3)
}

func TestAtBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range At")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestCloneIndependence(t *testing.T) {
	m := RandGeneral(4, 4, 1)
	c := m.Clone()
	c.Set(0, 0, 999)
	if m.At(0, 0) == 999 {
		t.Fatal("clone aliases original")
	}
	if c.Stride != 4 {
		t.Fatalf("clone stride = %d, want tight", c.Stride)
	}
}

func TestCopyFromRespectsViews(t *testing.T) {
	m := New(6, 6)
	m.Fill(1)
	src := New(2, 2)
	src.Fill(5)
	m.View(2, 2, 2, 2).CopyFrom(src)
	if m.At(2, 2) != 5 || m.At(3, 3) != 5 {
		t.Fatal("copy into view failed")
	}
	if m.At(1, 2) != 1 || m.At(4, 2) != 1 {
		t.Fatal("copy leaked outside view")
	}
}

func TestZeroRespectsViews(t *testing.T) {
	m := New(4, 4)
	m.Fill(2)
	m.View(1, 1, 2, 2).Zero()
	if m.At(1, 1) != 0 || m.At(2, 2) != 0 {
		t.Fatal("view not zeroed")
	}
	if m.At(0, 0) != 2 || m.At(3, 3) != 2 {
		t.Fatal("zero leaked outside view")
	}
}

func TestEye(t *testing.T) {
	e := Eye(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if e.At(i, j) != want {
				t.Fatalf("Eye(3)[%d,%d] = %g", i, j, e.At(i, j))
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	m := RandGeneral(3, 5, 2)
	mt := m.Transpose()
	if mt.Rows != 5 || mt.Cols != 3 {
		t.Fatalf("transpose shape %dx%d", mt.Rows, mt.Cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatal("transpose element mismatch")
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		m := RandGeneral(4, 7, seed)
		return Equal(m, m.Transpose().Transpose(), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLowerFromFull(t *testing.T) {
	m := RandGeneral(4, 4, 3)
	saved := m.Clone()
	m.LowerFromFull()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i >= j {
				if m.At(i, j) != saved.At(i, j) {
					t.Fatal("lower triangle modified")
				}
			} else if m.At(i, j) != 0 {
				t.Fatal("upper triangle not cleared")
			}
		}
	}
}

func TestEqualAndMaxAbsDiff(t *testing.T) {
	a := RandGeneral(3, 3, 4)
	b := a.Clone()
	if !Equal(a, b, 0) {
		t.Fatal("clone not equal")
	}
	b.Add(1, 2, 1e-7)
	if Equal(a, b, 1e-9) {
		t.Fatal("Equal ignored difference above tol")
	}
	if !Equal(a, b, 1e-6) {
		t.Fatal("Equal rejected difference below tol")
	}
	if d := MaxAbsDiff(a, b); math.Abs(d-1e-7) > 1e-12 {
		t.Fatalf("MaxAbsDiff = %g, want 1e-7", d)
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if Equal(New(2, 2), New(2, 3), 1) {
		t.Fatal("Equal accepted different shapes")
	}
}

func TestRandSPDIsSymmetricPD(t *testing.T) {
	m := RandSPD(16, 7)
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if m.At(i, j) != m.At(j, i) {
				t.Fatal("RandSPD not symmetric")
			}
		}
		if m.At(i, i) <= 0 {
			t.Fatal("RandSPD non-positive diagonal")
		}
	}
	// Positive definite: all leading principal minors positive, checked
	// via a simple unblocked factorization inline.
	c := m.Clone()
	for j := 0; j < 16; j++ {
		d := c.At(j, j)
		for k := 0; k < j; k++ {
			d -= c.At(j, k) * c.At(j, k)
		}
		if d <= 0 {
			t.Fatalf("RandSPD not PD at pivot %d", j)
		}
		d = math.Sqrt(d)
		c.Set(j, j, d)
		for i := j + 1; i < 16; i++ {
			s := c.At(i, j)
			for k := 0; k < j; k++ {
				s -= c.At(i, k) * c.At(j, k)
			}
			c.Set(i, j, s/d)
		}
	}
}

func TestRandSPDDeterministic(t *testing.T) {
	a := RandSPD(8, 42)
	b := RandSPD(8, 42)
	if !Equal(a, b, 0) {
		t.Fatal("RandSPD not deterministic for equal seeds")
	}
	c := RandSPD(8, 43)
	if Equal(a, c, 0) {
		t.Fatal("RandSPD identical across different seeds")
	}
}

func TestDiagDominantSPDSymmetric(t *testing.T) {
	m := DiagDominantSPD(10, 5)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if m.At(i, j) != m.At(j, i) {
				t.Fatal("not symmetric")
			}
		}
		if m.At(i, i) != 20 {
			t.Fatalf("diagonal = %g, want 20", m.At(i, i))
		}
	}
}

func TestNorms(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, -3, 2, 4}) // cols: (1,-3), (2,4)
	// rows: (1,2) and (-3,4); inf norm = max(3, 7) = 7
	if got := m.NormInf(); got != 7 {
		t.Fatalf("NormInf = %g, want 7", got)
	}
	if got := m.NormMax(); got != 4 {
		t.Fatalf("NormMax = %g, want 4", got)
	}
	want := math.Sqrt(1 + 9 + 4 + 16)
	if got := m.NormFro(); math.Abs(got-want) > 1e-15 {
		t.Fatalf("NormFro = %g, want %g", got, want)
	}
}

func TestNormFroScaling(t *testing.T) {
	f := func(seed int64) bool {
		m := RandGeneral(5, 5, seed)
		n1 := m.NormFro()
		for j := 0; j < 5; j++ {
			col := m.Col(j)
			for i := range col {
				col[i] *= 2
			}
		}
		return math.Abs(m.NormFro()-2*n1) < 1e-12*(1+n1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyResidualPerfectFactor(t *testing.T) {
	// L lower triangular, A = L*Lᵀ must give ~zero residual.
	n := 8
	l := New(n, n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			l.Set(i, j, float64(i+j+1)/float64(n))
		}
		l.Add(j, j, 2)
	}
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k <= min(i, j); k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			a.Set(i, j, s)
		}
	}
	if r := CholeskyResidual(a, l); r > 1e-14 {
		t.Fatalf("residual %g for exact factor", r)
	}
	// Corrupt one factor entry: residual must blow up.
	l.Add(n-1, 0, 1.0)
	if r := CholeskyResidual(a, l); r < 1e-6 {
		t.Fatalf("residual %g did not detect corruption", r)
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := New(2, 2)
	if s := small.String(); len(s) == 0 {
		t.Fatal("empty render")
	}
	big := New(100, 100)
	if s := big.String(); s != "Matrix{100x100}" {
		t.Fatalf("large matrix render = %q", s)
	}
}

func TestFromSliceTooShort(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(3, 3, make([]float64, 8))
}

func TestRandVectorDeterministic(t *testing.T) {
	a := RandVector(10, 9)
	b := RandVector(10, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RandVector not deterministic")
		}
		if a[i] < -1 || a[i] > 1 {
			t.Fatal("RandVector out of range")
		}
	}
}
