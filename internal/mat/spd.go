package mat

import "math/rand"

// RandSPD returns a random symmetric positive-definite n x n matrix
// built as M = G*Gᵀ + n*I from a seeded generator, so every call with
// the same seed produces the same matrix. The n*I shift keeps the
// condition number moderate, which keeps Cholesky numerically tame and
// makes checksum thresholds easy to reason about.
func RandSPD(n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	g := New(n, n)
	for j := 0; j < n; j++ {
		col := g.Col(j)
		for i := range col {
			col[i] = rng.Float64()*2 - 1
		}
	}
	m := New(n, n)
	// m = g * gᵀ, lower triangle computed then mirrored.
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += g.At(i, k) * g.At(j, k)
			}
			m.Set(i, j, s)
			m.Set(j, i, s)
		}
	}
	for i := 0; i < n; i++ {
		m.Add(i, i, float64(n))
	}
	return m
}

// DiagDominantSPD returns a cheap O(n²) SPD matrix: random symmetric
// entries in [-1, 1] with the diagonal shifted to 2n. Useful when test
// setup cost matters more than spectrum realism (RandSPD is O(n³)).
func DiagDominantSPD(n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := New(n, n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			v := rng.Float64()*2 - 1
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	for i := 0; i < n; i++ {
		m.Set(i, i, 2*float64(n))
	}
	return m
}

// RandGeneral returns a random n x m matrix with entries in [-1, 1].
func RandGeneral(rows, cols int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := New(rows, cols)
	for j := 0; j < cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = rng.Float64()*2 - 1
		}
	}
	return m
}

// RandVector returns a random length-n vector with entries in [-1, 1].
func RandVector(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	return v
}
