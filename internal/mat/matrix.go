// Package mat provides column-major dense matrices and the helpers the
// ABFT Cholesky implementation needs: block views, symmetric
// positive-definite generators, norms, and residual checks.
//
// Storage follows the LAPACK convention: element (i, j) of a matrix
// with leading dimension ld lives at Data[i+j*ld]. All matrices in this
// repository are double precision.
package mat

import (
	"errors"
	"fmt"
)

// Matrix is a column-major view over a float64 buffer. A Matrix may be
// a sub-view of a larger allocation; Stride is the leading dimension of
// the underlying allocation, so Stride >= Rows for a valid matrix.
type Matrix struct {
	Rows   int
	Cols   int
	Stride int
	Data   []float64
}

// ErrShape reports a dimension mismatch between operands.
var ErrShape = errors.New("mat: dimension mismatch")

// New allocates a zeroed Rows x Cols matrix with a tight stride.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{
		Rows:   rows,
		Cols:   cols,
		Stride: rows,
		Data:   make([]float64, rows*cols),
	}
}

// FromSlice wraps data (column-major, tight stride) as a rows x cols
// matrix. The matrix aliases data; it does not copy.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) < rows*cols {
		panic(fmt.Sprintf("mat: slice of length %d cannot hold %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Stride: rows, Data: data}
}

// At returns element (i, j).
//
// abft:hotpath
// abft:noescape
// abft:bce checks=1
func (m *Matrix) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.Data[i+j*m.Stride]
}

// Set assigns element (i, j).
//
// abft:hotpath
// abft:noescape
// abft:bce checks=1
func (m *Matrix) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.Data[i+j*m.Stride] = v
}

// Add increments element (i, j) by v.
//
// abft:hotpath
// abft:noescape
// abft:bce checks=1
func (m *Matrix) Add(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.Data[i+j*m.Stride] += v
}

func (m *Matrix) boundsCheck(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Col returns the j-th column as a slice aliasing the matrix storage.
//
// abft:hotpath
// abft:noescape
// abft:bce checks=2
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: column %d out of range %d", j, m.Cols))
	}
	return m.Data[j*m.Stride : j*m.Stride+m.Rows]
}

// Off returns the raw storage suffix beginning at element (i, j): the
// (slice, stride) pair that BLAS-style kernels consume. It exists so
// callers never spell out Data[i+j*Stride] themselves — the
// column-major layout stays a single-package concern (enforced by the
// matindex analyzer).
//
// abft:hotpath
// abft:noescape
// abft:bce checks=1
func (m *Matrix) Off(i, j int) []float64 {
	m.boundsCheck(i, j)
	return m.Data[i+j*m.Stride:]
}

// View returns the sub-matrix of size r x c whose top-left corner is
// (i, j). The view aliases the receiver's storage.
func (m *Matrix) View(i, j, r, c int) *Matrix {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.Rows || j+c > m.Cols {
		panic(fmt.Sprintf("mat: view (%d,%d)+%dx%d out of range %dx%d", i, j, r, c, m.Rows, m.Cols))
	}
	return &Matrix{
		Rows:   r,
		Cols:   c,
		Stride: m.Stride,
		Data:   m.Data[i+j*m.Stride:],
	}
}

// Clone returns a deep copy with a tight stride.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	out.CopyFrom(m)
	return out
}

// CopyFrom copies src into the receiver; shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("mat: copy %dx%d into %dx%d", src.Rows, src.Cols, m.Rows, m.Cols))
	}
	for j := 0; j < m.Cols; j++ {
		copy(m.Col(j), src.Col(j))
	}
}

// Zero clears every element of the receiver (respecting views).
func (m *Matrix) Zero() {
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = 0
		}
	}
}

// Fill sets every element of the receiver to v.
func (m *Matrix) Fill(v float64) {
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = v
		}
	}
}

// Eye returns the n x n identity matrix.
func Eye(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Transpose returns a newly allocated transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i, v := range col {
			out.Set(j, i, v)
		}
	}
	return out
}

// LowerFromFull zeroes the strict upper triangle in place, keeping the
// lower triangle and diagonal. It is used to extract the Cholesky
// factor from a buffer whose upper triangle holds stale data.
func (m *Matrix) LowerFromFull() {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for j := 1; j < m.Cols; j++ {
		col := m.Col(j)
		for i := 0; i < j && i < m.Rows; i++ {
			col[i] = 0
		}
	}
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 400 {
		return fmt.Sprintf("Matrix{%dx%d}", m.Rows, m.Cols)
	}
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("%10.4f ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// Equal reports whether two matrices have the same shape and all
// elements within tol of each other.
func Equal(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for j := 0; j < a.Cols; j++ {
		ca, cb := a.Col(j), b.Col(j)
		for i := range ca {
			d := ca[i] - cb[i]
			if d < -tol || d > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference
// between two same-shaped matrices.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(ErrShape)
	}
	maxd := 0.0
	for j := 0; j < a.Cols; j++ {
		ca, cb := a.Col(j), b.Col(j)
		for i := range ca {
			d := ca[i] - cb[i]
			if d < 0 {
				d = -d
			}
			if d > maxd {
				maxd = d
			}
		}
	}
	return maxd
}
