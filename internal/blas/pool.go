package blas

import "sync"

// packPool recycles the KC x NC packing buffers of dgemmNTPacked. A
// fresh make would be stack-sized (64 KiB, right at the compiler's
// limit), but zeroing it on every call and carrying it in every
// goroutine's frame is exactly the per-call cost the hotpath analyzer
// exists to flag; the pool makes the packing buffer a steady-state
// object shared across calls and workers. Callers Get at entry and Put
// on the way out — no defer, the kernel has no early returns and defer
// is itself banned on the hot path.
var packPool = sync.Pool{
	New: func() any {
		buf := make([]float64, packKC*packNC)
		return &buf
	},
}
