package blas

// Side selects which side a triangular operand multiplies from.
type Side int

const (
	Left Side = iota
	Right
)

// Dgemm computes C ← alpha*op(A)*op(B) + beta*C where op(A) is
// m x k, op(B) is k x n, and C is m x n, all column-major.
//
// The column slices use the two-step base[off:][:n] form throughout:
// the compiler proves len from the second slice directly, where the
// single-step base[off : off+n] leaves an unsimplified (off+n)-off it
// cannot bound loops with (verified against -d=ssa/check_bce).
//
// abft:hotpath
// abft:noescape
// abft:bce checks=24
func Dgemm(transA, transB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	if beta != 1 {
		for j := 0; j < n; j++ {
			col := c[j*ldc:][:m]
			if beta == 0 {
				for i := range col {
					col[i] = 0
				}
			} else {
				for i := range col {
					col[i] *= beta
				}
			}
		}
	}
	if alpha == 0 || k == 0 || m == 0 || n == 0 {
		return
	}
	switch {
	case transA == NoTrans && transB == NoTrans:
		// C += alpha * A(m x k) * B(k x n): rank-1 accumulation per
		// (l, j) keeps the inner loop streaming down columns.
		for j := 0; j < n; j++ {
			ccol := c[j*ldc:][:m]
			bcol := b[j*ldb:][:k]
			for l := 0; l < k; l++ {
				ab := alpha * bcol[l]
				if ab == 0 {
					continue
				}
				acol := a[l*lda:][:len(ccol)]
				for i := range ccol {
					ccol[i] += ab * acol[i]
				}
			}
		}
	case transA == NoTrans && transB == Trans:
		// C += alpha * A(m x k) * Bᵀ, B is n x k — the factorization's
		// dominant shape; large problems go through the blocked,
		// unrolled kernel.
		if float64(m)*float64(n)*float64(k) >= gemmNTBlockedThreshold {
			dgemmNTPacked(m, n, k, alpha, a, lda, b, ldb, c, ldc)
			return
		}
		for j := 0; j < n; j++ {
			ccol := c[j*ldc:][:m]
			for l := 0; l < k; l++ {
				ab := alpha * b[j+l*ldb]
				if ab == 0 {
					continue
				}
				acol := a[l*lda:][:len(ccol)]
				for i := range ccol {
					ccol[i] += ab * acol[i]
				}
			}
		}
	case transA == Trans && transB == NoTrans:
		// C += alpha * Aᵀ * B, A is k x m: dot products down columns.
		for j := 0; j < n; j++ {
			ccol := c[j*ldc:][:m]
			bcol := b[j*ldb:][:k]
			for i := range ccol {
				acol := a[i*lda:][:len(bcol)]
				s := 0.0
				for l, v := range bcol {
					s += acol[l] * v
				}
				ccol[i] += alpha * s
			}
		}
	default: // Trans, Trans
		for j := 0; j < n; j++ {
			ccol := c[j*ldc:][:m]
			for i := range ccol {
				acol := a[i*lda:][:k]
				s := 0.0
				for l, v := range acol {
					s += v * b[j+l*ldb] //nolint:hotpath — inherently strided row read of B; the factorization never takes the Trans/Trans path
				}
				ccol[i] += alpha * s
			}
		}
	}
}

// Dsyrk computes C ← alpha*A*Aᵀ + beta*C updating only the lower
// triangle, where A is n x k and C is n x n.
//
// abft:hotpath
// abft:noescape
// abft:bce checks=7
func Dsyrk(n, k int, alpha float64, a []float64, lda int, beta float64, c []float64, ldc int) {
	for j := 0; j < n; j++ {
		col := c[j*ldc:][:n]
		if beta == 0 {
			for i := j; i < n; i++ {
				col[i] = 0
			}
		} else if beta != 1 {
			for i := j; i < n; i++ {
				col[i] *= beta
			}
		}
	}
	if alpha == 0 || k == 0 {
		return
	}
	for j := 0; j < n; j++ {
		ccol := c[j*ldc:][:n]
		for l := 0; l < k; l++ {
			ab := alpha * a[j+l*lda]
			if ab == 0 {
				continue
			}
			acol := a[l*lda:][:n]
			for i := j; i < n; i++ {
				ccol[i] += ab * acol[i]
			}
		}
	}
}

// Dtrsm solves one of the triangular systems
//
//	Left:  op(L) * X = alpha*B   (X overwrites B, B is m x n)
//	Right: X * op(L) = alpha*B
//
// where L is lower triangular with non-unit diagonal. Only the lower
// storage of L is referenced.
//
// abft:hotpath
// abft:noescape
// abft:bce checks=18
func Dtrsm(side Side, transL Transpose, m, n int, alpha float64, l []float64, ldl int, b []float64, ldb int) {
	if alpha != 1 {
		for j := 0; j < n; j++ {
			col := b[j*ldb:][:m]
			for i := range col {
				col[i] *= alpha
			}
		}
	}
	switch {
	case side == Left && transL == NoTrans:
		// Solve L*X = B: forward substitution per column of B.
		for j := 0; j < n; j++ {
			Dtrsv(NoTrans, m, l, ldl, b[j*ldb:][:m])
		}
	case side == Left && transL == Trans:
		for j := 0; j < n; j++ {
			Dtrsv(Trans, m, l, ldl, b[j*ldb:][:m])
		}
	case side == Right && transL == NoTrans:
		// X*L = B  =>  column k of X: x_k = (b_k - sum_{j>k} x_j*L[j,k]) / L[k,k]
		for k := n - 1; k >= 0; k-- {
			bk := b[k*ldb:][:m]
			for j := k + 1; j < n; j++ {
				ljk := l[j+k*ldl]
				if ljk == 0 {
					continue
				}
				bj := b[j*ldb:][:len(bk)]
				for i := range bk {
					bk[i] -= ljk * bj[i]
				}
			}
			d := 1 / l[k+k*ldl]
			for i := range bk {
				bk[i] *= d
			}
		}
	default: // Right, Trans
		// X*Lᵀ = B  =>  column k: x_k = (b_k - sum_{j<k} x_j*L[k,j]) / L[k,k]
		for k := 0; k < n; k++ {
			bk := b[k*ldb:][:m]
			for j := 0; j < k; j++ {
				lkj := l[k+j*ldl]
				if lkj == 0 {
					continue
				}
				bj := b[j*ldb:][:len(bk)]
				for i := range bk {
					bk[i] -= lkj * bj[i]
				}
			}
			d := 1 / l[k+k*ldl]
			for i := range bk {
				bk[i] *= d
			}
		}
	}
}
