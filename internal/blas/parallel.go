package blas

import (
	"runtime"
	"sync"
)

// Workers is the goroutine fan-out used by the parallel Level-3 front
// ends. It defaults to the machine's core count and may be lowered in
// tests for determinism of scheduling (results are identical either
// way; only wall time changes).
var Workers = runtime.NumCPU()

// parallelColumns splits the n columns of an output into contiguous
// chunks and runs fn(j0, j1) for each chunk on its own goroutine.
// Chunks never overlap, so no synchronization beyond the WaitGroup is
// needed as long as fn only writes columns [j0, j1).
func parallelColumns(n int, minChunk int, fn func(j0, j1 int)) {
	workers := Workers
	if workers < 1 {
		workers = 1
	}
	if n < minChunk*2 || workers == 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	if chunk < minChunk {
		chunk = minChunk
	}
	var wg sync.WaitGroup
	for j0 := 0; j0 < n; j0 += chunk {
		j1 := j0 + chunk
		if j1 > n {
			j1 = n
		}
		wg.Add(1)
		go func(j0, j1 int) {
			defer wg.Done()
			fn(j0, j1)
		}(j0, j1)
	}
	wg.Wait()
}

// DgemmParallel is Dgemm with the output columns fanned out over
// goroutines. Each worker owns a disjoint column range of C, so the
// decomposition is race-free by construction.
//
// abft:hotpath
func DgemmParallel(transA, transB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	parallelColumns(n, 8, func(j0, j1 int) { //nolint:hotpath — goroutine launcher; its per-call cost is amortized over a whole tile of kernel work

		var bs []float64
		switch transB {
		case NoTrans:
			bs = b[j0*ldb:]
		case Trans:
			bs = b[j0:]
		}
		Dgemm(transA, transB, m, j1-j0, k, alpha, a, lda, bs, ldb, beta, c[j0*ldc:], ldc)
	})
}

// DsyrkParallel is Dsyrk with output columns fanned out over
// goroutines. Column ranges of the lower triangle are disjoint, so the
// split is race-free; the later (right-hand) chunks have shorter
// columns, which parallelColumns tolerates because work imbalance only
// affects speed.
//
// abft:hotpath
func DsyrkParallel(n, k int, alpha float64, a []float64, lda int, beta float64, c []float64, ldc int) {
	parallelColumns(n, 8, func(j0, j1 int) { //nolint:hotpath — goroutine launcher; its per-call cost is amortized over a whole tile of kernel work

		// The sub-problem over columns [j0, j1) of the lower triangle:
		// rows j0..n. That is a (n-j0) x (j1-j0) block whose top
		// (j1-j0) x (j1-j0) part is itself a lower-triangular SYRK and
		// whose remainder is a GEMM.
		w := j1 - j0
		Dsyrk(w, k, alpha, a[j0:], lda, beta, c[j0+j0*ldc:], ldc)
		if j1 < n {
			Dgemm(NoTrans, Trans, n-j1, w, k, alpha, a[j1:], lda, a[j0:], lda, beta, c[j1+j0*ldc:], ldc)
		}
	})
}

// DtrsmParallel parallelizes the two cases used by the Cholesky panel
// solves. For Left solves the columns of B are independent; for Right
// solves the rows of B are independent, so we split rows.
//
// abft:hotpath
func DtrsmParallel(side Side, transL Transpose, m, n int, alpha float64, l []float64, ldl int, b []float64, ldb int) {
	if side == Left {
		parallelColumns(n, 4, func(j0, j1 int) { //nolint:hotpath — goroutine launcher; its per-call cost is amortized over a whole tile of kernel work
			Dtrsm(Left, transL, m, j1-j0, alpha, l, ldl, b[j0*ldb:], ldb)
		})
		return
	}
	// Right side: split the m rows of B.
	parallelColumns(m, 32, func(i0, i1 int) { //nolint:hotpath — goroutine launcher; its per-call cost is amortized over a whole tile of kernel work

		Dtrsm(Right, transL, i1-i0, n, alpha, l, ldl, b[i0:], ldb)
	})
}
