package blas

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization
// encounters a non-positive pivot. In the fault-tolerance experiments
// this is the "fail-stop" outcome the paper describes: a storage error
// that breaks positive definiteness kills the unblocked factorization.
var ErrNotPositiveDefinite = errors.New("blas: matrix is not positive definite")

// PivotError carries the index of the failing pivot so callers (and
// tests) can tell which column broke.
type PivotError struct {
	Index int
	Value float64
}

func (e *PivotError) Error() string {
	return fmt.Sprintf("blas: non-positive pivot %g at column %d", e.Value, e.Index)
}

func (e *PivotError) Unwrap() error { return ErrNotPositiveDefinite }

// Dpotf2 computes the unblocked Cholesky factorization A = L*Lᵀ of the
// lower triangle of the n x n matrix a (leading dimension lda),
// overwriting the lower triangle with L. The strict upper triangle is
// not referenced. This is the POTF2 kernel that MAGMA runs on the CPU.
//
// abft:hotpath
// abft:noescape
// abft:bce checks=6
func Dpotf2(n int, a []float64, lda int) error {
	for j := 0; j < n; j++ {
		col := a[j*lda:][:n]
		// a[j,j] -= dot(a[j, 0:j], a[j, 0:j])
		d := col[j]
		for k := 0; k < j; k++ {
			v := a[j+k*lda] //nolint:hotpath — row dot product is inherently strided in column-major storage; j is panel-width bounded
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return &PivotError{Index: j, Value: d}
		}
		d = math.Sqrt(d)
		col[j] = d
		// a[j+1:, j] = (a[j+1:, j] - A[j+1:, 0:j]*a[j, 0:j]ᵀ) / d
		for k := 0; k < j; k++ {
			ajk := a[j+k*lda]
			if ajk == 0 {
				continue
			}
			kcol := a[k*lda:][:n]
			for i := j + 1; i < n; i++ {
				col[i] -= ajk * kcol[i]
			}
		}
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			col[i] *= inv
		}
	}
	return nil
}

// Dpotrf computes a blocked right-looking Cholesky factorization of
// the lower triangle of a, with block size nb. It is the serial
// reference the hybrid and ABFT variants are validated against.
//
// abft:hotpath
// abft:noescape
// abft:bce checks=4
func Dpotrf(n, nb int, a []float64, lda int) error {
	if nb <= 0 || nb >= n {
		return Dpotf2(n, a, lda)
	}
	for j := 0; j < n; j += nb {
		jb := nb
		if j+jb > n {
			jb = n - j
		}
		// Diagonal block update: A[j:j+jb, j:j+jb] -= A[j:j+jb, 0:j]*A[j:j+jb, 0:j]ᵀ
		Dsyrk(jb, j, -1, a[j:], lda, 1, a[j+j*lda:], lda)
		if err := Dpotf2(jb, a[j+j*lda:], lda); err != nil {
			if pe, ok := err.(*PivotError); ok {
				pe.Index += j
			}
			return err
		}
		if j+jb < n {
			rows := n - j - jb
			// Panel update: A[j+jb:, j:j+jb] -= A[j+jb:, 0:j]*A[j:j+jb, 0:j]ᵀ
			Dgemm(NoTrans, Trans, rows, jb, j, -1, a[j+jb:], lda, a[j:], lda, 1, a[j+jb+j*lda:], lda)
			// Triangular solve: A[j+jb:, j:j+jb] = A[j+jb:, j:j+jb] * L[j,j]⁻ᵀ
			Dtrsm(Right, Trans, rows, jb, 1, a[j+j*lda:], lda, a[j+jb+j*lda:], lda)
		}
	}
	return nil
}
