// Package blas implements the dense double-precision BLAS subset the
// ABFT Cholesky stack needs, in pure Go. All routines use the LAPACK
// column-major convention: element (i, j) of a matrix with leading
// dimension ld is a[i+j*ld].
//
// Level-3 routines have both serial kernels and parallel front ends
// (see parallel.go); the parallel versions block the iteration space
// and fan it out over goroutines, standing in for the multicore host
// and the simulated GPU's arithmetic.
package blas

import "math"

// Daxpy computes y ← alpha*x + y over n elements with unit stride.
//
// abft:hotpath
// abft:noescape
// abft:bce checks=2
func Daxpy(n int, alpha float64, x, y []float64) {
	if alpha == 0 || n == 0 {
		return
	}
	x = x[:n]
	y = y[:n]
	for i, xv := range x {
		y[i] += alpha * xv
	}
}

// Ddot returns xᵀy over n elements with unit stride.
//
// abft:hotpath
// abft:noescape
// abft:bce checks=2
func Ddot(n int, x, y []float64) float64 {
	s := 0.0
	x = x[:n]
	y = y[:n]
	for i, xv := range x {
		s += xv * y[i]
	}
	return s
}

// Dscal computes x ← alpha*x over n elements with unit stride.
//
// abft:hotpath
// abft:noescape
// abft:bce checks=1
func Dscal(n int, alpha float64, x []float64) {
	x = x[:n]
	for i := range x {
		x[i] *= alpha
	}
}

// Dnrm2 returns the Euclidean norm of x over n elements, guarding
// against overflow the way the reference BLAS does.
func Dnrm2(n int, x []float64) float64 {
	scale, ssq := 0.0, 1.0
	for _, v := range x[:n] {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Idamax returns the index of the element with the largest absolute
// value, or -1 when n == 0.
func Idamax(n int, x []float64) int {
	if n == 0 {
		return -1
	}
	best, bi := math.Abs(x[0]), 0
	for i := 1; i < n; i++ {
		if av := math.Abs(x[i]); av > best {
			best, bi = av, i
		}
	}
	return bi
}

// Dcopy copies n elements of x into y.
//
// abft:hotpath
// abft:noescape
// abft:bce checks=2
func Dcopy(n int, x, y []float64) {
	copy(y[:n], x[:n])
}

// Dasum returns the sum of absolute values of x over n elements.
func Dasum(n int, x []float64) float64 {
	s := 0.0
	for _, v := range x[:n] {
		s += math.Abs(v)
	}
	return s
}
