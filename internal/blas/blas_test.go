package blas

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSlice(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.Float64()*2 - 1
	}
	return s
}

// naiveGemm is the obviously-correct triple loop used as the oracle.
func naiveGemm(transA, transB Transpose, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	at := func(i, l int) float64 {
		if transA == NoTrans {
			return a[i+l*lda]
		}
		return a[l+i*lda]
	}
	bt := func(l, j int) float64 {
		if transB == NoTrans {
			return b[l+j*ldb]
		}
		return b[j+l*ldb]
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += at(i, l) * bt(l, j)
			}
			c[i+j*ldc] = alpha*s + beta*c[i+j*ldc]
		}
	}
}

func TestDaxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	Daxpy(3, 2, x, y)
	want := []float64{6, 9, 12}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestDaxpyAlphaZeroNoop(t *testing.T) {
	y := []float64{1, 2}
	Daxpy(2, 0, []float64{9, 9}, y)
	if y[0] != 1 || y[1] != 2 {
		t.Fatal("alpha=0 modified y")
	}
}

func TestDdot(t *testing.T) {
	if got := Ddot(3, []float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Ddot = %g, want 32", got)
	}
}

func TestDscal(t *testing.T) {
	x := []float64{1, -2, 3}
	Dscal(3, -2, x)
	if x[0] != -2 || x[1] != 4 || x[2] != -6 {
		t.Fatalf("Dscal gave %v", x)
	}
}

func TestDnrm2(t *testing.T) {
	if got := Dnrm2(2, []float64{3, 4}); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Dnrm2 = %g, want 5", got)
	}
	// Overflow guard: huge values must not produce +Inf.
	if got := Dnrm2(2, []float64{1e200, 1e200}); math.IsInf(got, 0) {
		t.Fatal("Dnrm2 overflowed")
	}
}

func TestIdamax(t *testing.T) {
	if got := Idamax(4, []float64{1, -7, 3, 6}); got != 1 {
		t.Fatalf("Idamax = %d, want 1", got)
	}
	if got := Idamax(0, nil); got != -1 {
		t.Fatalf("Idamax(0) = %d, want -1", got)
	}
}

func TestDasumDcopy(t *testing.T) {
	x := []float64{1, -2, 3}
	if got := Dasum(3, x); got != 6 {
		t.Fatalf("Dasum = %g", got)
	}
	y := make([]float64, 3)
	Dcopy(3, x, y)
	if y[1] != -2 {
		t.Fatal("Dcopy failed")
	}
}

func TestDgemvNoTrans(t *testing.T) {
	// A = [1 3; 2 4] column-major, x = (1, 1): A*x = (4, 6)
	a := []float64{1, 2, 3, 4}
	y := []float64{10, 10}
	Dgemv(NoTrans, 2, 2, 1, a, 2, []float64{1, 1}, 0, y)
	if y[0] != 4 || y[1] != 6 {
		t.Fatalf("Dgemv = %v", y)
	}
}

func TestDgemvTrans(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	y := make([]float64, 2)
	Dgemv(Trans, 2, 2, 1, a, 2, []float64{1, 1}, 0, y)
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("Dgemv trans = %v", y)
	}
}

func TestDgemvBeta(t *testing.T) {
	a := []float64{1, 0, 0, 1}
	y := []float64{2, 4}
	Dgemv(NoTrans, 2, 2, 1, a, 2, []float64{1, 1}, 0.5, y)
	if y[0] != 2 || y[1] != 3 {
		t.Fatalf("Dgemv beta = %v", y)
	}
}

func TestDger(t *testing.T) {
	a := make([]float64, 4)
	Dger(2, 2, 2, []float64{1, 2}, []float64{3, 4}, a, 2)
	// A += 2 * x yᵀ = [[6,8],[12,16]]
	if a[0] != 6 || a[1] != 12 || a[2] != 8 || a[3] != 16 {
		t.Fatalf("Dger = %v", a)
	}
}

func TestDtrsvRoundTrip(t *testing.T) {
	n := 6
	l := randSlice(n*n, 1)
	for j := 0; j < n; j++ {
		l[j+j*n] = 4 + float64(j) // well-conditioned diagonal
	}
	x := randSlice(n, 2)
	// b = L*x computed naively, then solve and compare.
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j <= i; j++ {
			s += l[i+j*n] * x[j]
		}
		b[i] = s
	}
	Dtrsv(NoTrans, n, l, n, b)
	for i := range x {
		if math.Abs(b[i]-x[i]) > 1e-12 {
			t.Fatalf("Dtrsv NoTrans: b[%d]=%g want %g", i, b[i], x[i])
		}
	}
	// Transposed system.
	bt := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := i; j < n; j++ {
			s += l[j+i*n] * x[j]
		}
		bt[i] = s
	}
	Dtrsv(Trans, n, l, n, bt)
	for i := range x {
		if math.Abs(bt[i]-x[i]) > 1e-12 {
			t.Fatalf("Dtrsv Trans: bt[%d]=%g want %g", i, bt[i], x[i])
		}
	}
}

func TestDsyr(t *testing.T) {
	n := 4
	a := make([]float64, n*n)
	x := []float64{1, 2, 3, 4}
	Dsyr(n, 1, x, a, n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if a[i+j*n] != x[i]*x[j] {
				t.Fatalf("Dsyr lower (%d,%d) = %g", i, j, a[i+j*n])
			}
		}
		for i := 0; i < j; i++ {
			if a[i+j*n] != 0 {
				t.Fatal("Dsyr touched upper triangle")
			}
		}
	}
}

func TestDgemmAllTransposeCases(t *testing.T) {
	m, n, k := 5, 4, 6
	for _, ta := range []Transpose{NoTrans, Trans} {
		for _, tb := range []Transpose{NoTrans, Trans} {
			lda := m
			if ta == Trans {
				lda = k
			}
			ldb := k
			if tb == Trans {
				ldb = n
			}
			asz := lda * k
			if ta == Trans {
				asz = lda * m
			}
			bsz := ldb * n
			if tb == Trans {
				bsz = ldb * k
			}
			a := randSlice(asz, 10)
			b := randSlice(bsz, 11)
			c1 := randSlice(m*n, 12)
			c2 := append([]float64(nil), c1...)
			Dgemm(ta, tb, m, n, k, 1.5, a, lda, b, ldb, 0.5, c1, m)
			naiveGemm(ta, tb, m, n, k, 1.5, a, lda, b, ldb, 0.5, c2, m)
			for i := range c1 {
				if math.Abs(c1[i]-c2[i]) > 1e-12 {
					t.Fatalf("Dgemm(%v,%v) element %d: %g vs %g", ta, tb, i, c1[i], c2[i])
				}
			}
		}
	}
}

func TestDgemmBetaZeroOverwritesGarbage(t *testing.T) {
	c := []float64{math.NaN(), math.NaN()}
	Dgemm(NoTrans, NoTrans, 1, 2, 1, 1, []float64{2}, 1, []float64{3, 4}, 1, 0, c, 1)
	if c[0] != 6 || c[1] != 8 {
		t.Fatalf("beta=0 did not overwrite: %v", c)
	}
}

func TestDgemmStrided(t *testing.T) {
	// Operate on views with non-tight leading dimensions.
	m, n, k, ld := 3, 3, 3, 7
	a := randSlice(ld*k, 20)
	b := randSlice(ld*n, 21)
	c1 := randSlice(ld*n, 22)
	c2 := append([]float64(nil), c1...)
	Dgemm(NoTrans, Trans, m, n, k, -1, a, ld, b, ld, 1, c1, ld)
	naiveGemm(NoTrans, Trans, m, n, k, -1, a, ld, b, ld, 1, c2, ld)
	for i := range c1 {
		if math.Abs(c1[i]-c2[i]) > 1e-12 {
			t.Fatal("strided Dgemm mismatch")
		}
	}
}

func TestDsyrkMatchesGemmLower(t *testing.T) {
	n, k := 6, 4
	a := randSlice(n*k, 30)
	c1 := randSlice(n*n, 31)
	c2 := append([]float64(nil), c1...)
	Dsyrk(n, k, -1, a, n, 1, c1, n)
	naiveGemm(NoTrans, Trans, n, n, k, -1, a, n, a, n, 1, c2, n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if math.Abs(c1[i+j*n]-c2[i+j*n]) > 1e-12 {
				t.Fatal("Dsyrk lower mismatch")
			}
		}
		for i := 0; i < j; i++ {
			if c1[i+j*n] != c2[i+j*n] { // c2's upper was touched by gemm; c1's must not be
				// c1 upper must be unchanged from the original random fill.
				break
			}
		}
	}
}

func TestDsyrkLeavesUpperUntouched(t *testing.T) {
	n, k := 5, 3
	a := randSlice(n*k, 32)
	c := make([]float64, n*n)
	for i := range c {
		c[i] = 99
	}
	Dsyrk(n, k, 1, a, n, 0, c, n)
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			if c[i+j*n] != 99 {
				t.Fatal("Dsyrk wrote to strict upper triangle")
			}
		}
	}
}

func lowerWithGoodDiag(n int, seed int64) []float64 {
	l := randSlice(n*n, seed)
	for j := 0; j < n; j++ {
		l[j+j*n] = 3 + float64(j)
		for i := 0; i < j; i++ {
			l[i+j*n] = 0 // keep it honestly lower triangular
		}
	}
	return l
}

func TestDtrsmRightTrans(t *testing.T) {
	// X * Lᵀ = B  =>  X = B * L⁻ᵀ; verify X*Lᵀ reproduces B.
	m, n := 4, 5
	l := lowerWithGoodDiag(n, 40)
	b := randSlice(m*n, 41)
	x := append([]float64(nil), b...)
	Dtrsm(Right, Trans, m, n, 1, l, n, x, m)
	chk := make([]float64, m*n)
	naiveGemm(NoTrans, Trans, m, n, n, 1, x, m, l, n, 0, chk, m)
	for i := range b {
		if math.Abs(chk[i]-b[i]) > 1e-11 {
			t.Fatalf("Dtrsm Right/Trans residual at %d: %g vs %g", i, chk[i], b[i])
		}
	}
}

func TestDtrsmRightNoTrans(t *testing.T) {
	m, n := 3, 4
	l := lowerWithGoodDiag(n, 42)
	b := randSlice(m*n, 43)
	x := append([]float64(nil), b...)
	Dtrsm(Right, NoTrans, m, n, 1, l, n, x, m)
	chk := make([]float64, m*n)
	naiveGemm(NoTrans, NoTrans, m, n, n, 1, x, m, l, n, 0, chk, m)
	for i := range b {
		if math.Abs(chk[i]-b[i]) > 1e-11 {
			t.Fatal("Dtrsm Right/NoTrans residual")
		}
	}
}

func TestDtrsmLeftCases(t *testing.T) {
	m, n := 5, 3
	l := lowerWithGoodDiag(m, 44)
	for _, tr := range []Transpose{NoTrans, Trans} {
		b := randSlice(m*n, 45)
		x := append([]float64(nil), b...)
		Dtrsm(Left, tr, m, n, 1, l, m, x, m)
		chk := make([]float64, m*n)
		naiveGemm(tr, NoTrans, m, n, m, 1, l, m, x, m, 0, chk, m)
		for i := range b {
			if math.Abs(chk[i]-b[i]) > 1e-11 {
				t.Fatalf("Dtrsm Left/%v residual", tr)
			}
		}
	}
}

func TestDtrsmAlpha(t *testing.T) {
	m, n := 2, 2
	l := lowerWithGoodDiag(n, 46)
	b := randSlice(m*n, 47)
	x1 := append([]float64(nil), b...)
	x2 := append([]float64(nil), b...)
	Dtrsm(Right, Trans, m, n, 2, l, n, x1, m)
	Dtrsm(Right, Trans, m, n, 1, l, n, x2, m)
	for i := range x1 {
		if math.Abs(x1[i]-2*x2[i]) > 1e-12 {
			t.Fatal("alpha scaling wrong")
		}
	}
}

func TestDpotf2ReconstructsMatrix(t *testing.T) {
	n := 12
	a := spdSlice(n, 50)
	orig := append([]float64(nil), a...)
	if err := Dpotf2(n, a, n); err != nil {
		t.Fatal(err)
	}
	// Reconstruct lower triangle of L*Lᵀ and compare with original.
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			s := 0.0
			for k := 0; k <= j; k++ {
				s += a[i+k*n] * a[j+k*n]
			}
			if math.Abs(s-orig[i+j*n]) > 1e-10*float64(n) {
				t.Fatalf("L*Lᵀ(%d,%d)=%g want %g", i, j, s, orig[i+j*n])
			}
		}
	}
}

// spdSlice builds an SPD matrix directly as a column-major slice.
func spdSlice(n int, seed int64) []float64 {
	g := randSlice(n*n, seed)
	a := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += g[i+k*n] * g[j+k*n]
			}
			a[i+j*n] = s
		}
		a[j+j*n] += float64(n)
	}
	return a
}

func TestDpotf2FailStop(t *testing.T) {
	a := []float64{1, 2, 2, 1} // not PD: det = -3
	err := Dpotf2(2, a, 2)
	if err == nil {
		t.Fatal("expected non-PD error")
	}
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("error %v does not wrap ErrNotPositiveDefinite", err)
	}
	var pe *PivotError
	if !errors.As(err, &pe) || pe.Index != 1 {
		t.Fatalf("pivot error index = %+v, want 1", pe)
	}
}

func TestDpotf2NaNFails(t *testing.T) {
	a := []float64{math.NaN(), 0, 0, 1}
	if err := Dpotf2(2, a, 2); err == nil {
		t.Fatal("NaN pivot must fail")
	}
}

func TestDpotrfMatchesDpotf2(t *testing.T) {
	n := 32
	for _, nb := range []int{4, 8, 16, 31, 32, 64} {
		a1 := spdSlice(n, 60)
		a2 := append([]float64(nil), a1...)
		if err := Dpotf2(n, a1, n); err != nil {
			t.Fatal(err)
		}
		if err := Dpotrf(n, nb, a2, n); err != nil {
			t.Fatalf("nb=%d: %v", nb, err)
		}
		for j := 0; j < n; j++ {
			for i := j; i < n; i++ {
				if math.Abs(a1[i+j*n]-a2[i+j*n]) > 1e-9 {
					t.Fatalf("nb=%d mismatch at (%d,%d)", nb, i, j)
				}
			}
		}
	}
}

func TestDpotrfPivotIndexOffset(t *testing.T) {
	// Break PD far from the origin and check the reported pivot index
	// is global, not block-local.
	n := 16
	a := spdSlice(n, 61)
	a[12+12*n] = -1e6
	err := Dpotrf(n, 4, a, n)
	var pe *PivotError
	if !errors.As(err, &pe) {
		t.Fatalf("expected PivotError, got %v", err)
	}
	if pe.Index != 12 {
		t.Fatalf("pivot index %d, want 12", pe.Index)
	}
}

func TestParallelGemmMatchesSerial(t *testing.T) {
	m, n, k := 40, 37, 23
	a := randSlice(m*k, 70)
	b := randSlice(n*k, 71) // for Trans case B is n x k
	c1 := randSlice(m*n, 72)
	c2 := append([]float64(nil), c1...)
	Dgemm(NoTrans, Trans, m, n, k, -1, a, m, b, n, 1, c1, m)
	DgemmParallel(NoTrans, Trans, m, n, k, -1, a, m, b, n, 1, c2, m)
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatal("parallel gemm (NoTrans,Trans) differs from serial")
		}
	}
	b2 := randSlice(k*n, 73)
	c3 := append([]float64(nil), c1...)
	c4 := append([]float64(nil), c1...)
	Dgemm(NoTrans, NoTrans, m, n, k, 1, a, m, b2, k, 0, c3, m)
	DgemmParallel(NoTrans, NoTrans, m, n, k, 1, a, m, b2, k, 0, c4, m)
	for i := range c3 {
		if c3[i] != c4[i] {
			t.Fatal("parallel gemm (NoTrans,NoTrans) differs from serial")
		}
	}
}

func TestParallelSyrkMatchesSerial(t *testing.T) {
	n, k := 45, 20
	a := randSlice(n*k, 80)
	c1 := randSlice(n*n, 81)
	c2 := append([]float64(nil), c1...)
	Dsyrk(n, k, -1, a, n, 1, c1, n)
	DsyrkParallel(n, k, -1, a, n, 1, c2, n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if c1[i+j*n] != c2[i+j*n] {
				t.Fatalf("parallel syrk differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestParallelTrsmMatchesSerial(t *testing.T) {
	m, n := 50, 8
	l := lowerWithGoodDiag(n, 90)
	b := randSlice(m*n, 91)
	x1 := append([]float64(nil), b...)
	x2 := append([]float64(nil), b...)
	Dtrsm(Right, Trans, m, n, 1, l, n, x1, m)
	DtrsmParallel(Right, Trans, m, n, 1, l, n, x2, m)
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatal("parallel trsm Right differs")
		}
	}
	l2 := lowerWithGoodDiag(m, 92)
	y1 := append([]float64(nil), b...)
	y2 := append([]float64(nil), b...)
	Dtrsm(Left, NoTrans, m, n, 1, l2, m, y1, m)
	DtrsmParallel(Left, NoTrans, m, n, 1, l2, m, y2, m)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatal("parallel trsm Left differs")
		}
	}
}

func TestGemmLinearityProperty(t *testing.T) {
	// Property: gemm(alpha, A, B) == alpha * gemm(1, A, B) with beta=0.
	f := func(seed int64, rawAlpha int8) bool {
		alpha := float64(rawAlpha) / 16
		m, n, k := 6, 5, 4
		a := randSlice(m*k, seed)
		b := randSlice(k*n, seed+1)
		c1 := make([]float64, m*n)
		c2 := make([]float64, m*n)
		Dgemm(NoTrans, NoTrans, m, n, k, alpha, a, m, b, k, 0, c1, m)
		Dgemm(NoTrans, NoTrans, m, n, k, 1, a, m, b, k, 0, c2, m)
		for i := range c1 {
			if math.Abs(c1[i]-alpha*c2[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckSumInvariantUnderGemm(t *testing.T) {
	// The Huang-Abraham property the whole paper rests on:
	// v1ᵀ(C - A·Bᵀ) == v1ᵀC - (v1ᵀA)·Bᵀ. Verify numerically.
	f := func(seed int64) bool {
		bsz := 8
		a := randSlice(bsz*bsz, seed)
		b := randSlice(bsz*bsz, seed+1)
		c := randSlice(bsz*bsz, seed+2)
		v := make([]float64, bsz)
		for i := range v {
			v[i] = float64(i + 1)
		}
		// chk(C) before.
		chk := make([]float64, bsz)
		Dgemv(Trans, bsz, bsz, 1, c, bsz, v, 0, chk)
		// chk(A).
		chkA := make([]float64, bsz)
		Dgemv(Trans, bsz, bsz, 1, a, bsz, v, 0, chkA)
		// C -= A*Bᵀ and chk -= chk(A)*Bᵀ.
		Dgemm(NoTrans, Trans, bsz, bsz, bsz, -1, a, bsz, b, bsz, 1, c, bsz)
		Dgemm(NoTrans, Trans, 1, bsz, bsz, -1, chkA, 1, b, bsz, 1, chk, 1)
		// Recompute chk(C) and compare.
		chk2 := make([]float64, bsz)
		Dgemv(Trans, bsz, bsz, 1, c, bsz, v, 0, chk2)
		for i := range chk {
			if math.Abs(chk[i]-chk2[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
