package blas

// Cache-blocked kernel for the factorization's dominant case,
// C -= A·Bᵀ with A (m x k) and B (n x k) both column-major. The naive
// loop streams B with stride ldb on every innermost pass; here B's
// tile is packed once into contiguous rows, and the inner kernel
// updates a column block of C with unit-stride access on all three
// operands. Dgemm dispatches to this automatically for large enough
// NoTrans/Trans problems.

const (
	packKC = 128 // k-dimension tile
	packNC = 64  // n-dimension tile (columns of C)
)

// gemmNTBlockedThreshold is the flop count above which packing pays
// for itself.
const gemmNTBlockedThreshold = 64 * 64 * 64

// dgemmNTPacked computes C += alpha * A * Bᵀ (no beta handling; the
// caller has already scaled C). The packing buffer comes from packPool
// so repeated calls — one per tile per worker in the parallel front
// ends — reuse warm storage instead of zeroing 64 KiB each time.
//
// abft:hotpath
// abft:noescape
// abft:bce checks=21
func dgemmNTPacked(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	// pack holds a KC x NC tile of Bᵀ: pack[l*nc + j] = B[j0+j, l0+l].
	bp := packPool.Get().(*[]float64)
	pack := *bp
	for j0 := 0; j0 < n; j0 += packNC {
		nc := packNC
		if j0+nc > n {
			nc = n - j0
		}
		for l0 := 0; l0 < k; l0 += packKC {
			kc := packKC
			if l0+kc > k {
				kc = k - l0
			}
			// Pack Bᵀ tile: rows l (k-index), columns j.
			for l := 0; l < kc; l++ {
				row := pack[l*nc:][:nc]
				src := b[j0+(l0+l)*ldb:]
				copy(row, src[:nc])
			}
			// C[:, j0:j0+nc] += alpha * A[:, l0:l0+kc] * pack, with the
			// rank-1 updates fused four at a time: each pass over the
			// C column applies four A columns, quartering the C (and
			// cache) traffic of the naive loop.
			for j := 0; j < nc; j++ {
				ccol := c[(j0+j)*ldc:][:m]
				l := 0
				for ; l+3 < kc; l += 4 {
					ab0 := alpha * pack[(l+0)*nc+j]
					ab1 := alpha * pack[(l+1)*nc+j]
					ab2 := alpha * pack[(l+2)*nc+j]
					ab3 := alpha * pack[(l+3)*nc+j]
					if ab0 == 0 && ab1 == 0 && ab2 == 0 && ab3 == 0 {
						continue
					}
					a0 := a[(l0+l)*lda:][:len(ccol)]
					a1 := a[(l0+l+1)*lda:][:len(ccol)]
					a2 := a[(l0+l+2)*lda:][:len(ccol)]
					a3 := a[(l0+l+3)*lda:][:len(ccol)]
					for i := range ccol {
						ccol[i] += ab0*a0[i] + ab1*a1[i] + ab2*a2[i] + ab3*a3[i]
					}
				}
				for ; l < kc; l++ {
					ab := alpha * pack[l*nc+j]
					if ab == 0 {
						continue
					}
					acol := a[(l0+l)*lda:][:len(ccol)]
					for i := range ccol {
						ccol[i] += ab * acol[i]
					}
				}
			}
		}
	}
	packPool.Put(bp)
}
