package blas

// Transpose selectors, mirroring the CBLAS enum.
type Transpose int

const (
	NoTrans Transpose = iota
	Trans
)

// Dgemv computes y ← alpha*op(A)*x + beta*y where A is m x n with
// leading dimension lda and op is selected by trans. x and y use unit
// stride.
func Dgemv(trans Transpose, m, n int, alpha float64, a []float64, lda int, x []float64, beta float64, y []float64) {
	ylen := m
	if trans == Trans {
		ylen = n
	}
	if beta != 1 {
		for i := 0; i < ylen; i++ {
			y[i] *= beta
		}
	}
	if alpha == 0 {
		return
	}
	if trans == NoTrans {
		// y += alpha * A * x, column-major: accumulate column by column.
		for j := 0; j < n; j++ {
			ax := alpha * x[j]
			if ax == 0 {
				continue
			}
			col := a[j*lda : j*lda+m]
			for i, v := range col {
				y[i] += ax * v
			}
		}
		return
	}
	// y += alpha * Aᵀ * x: each output element is a column dot product.
	for j := 0; j < n; j++ {
		col := a[j*lda : j*lda+m]
		s := 0.0
		for i, v := range col {
			s += v * x[i]
		}
		y[j] += alpha * s
	}
}

// Dger computes A ← A + alpha*x*yᵀ where A is m x n with leading
// dimension lda.
func Dger(m, n int, alpha float64, x, y, a []float64, lda int) {
	if alpha == 0 {
		return
	}
	for j := 0; j < n; j++ {
		ay := alpha * y[j]
		if ay == 0 {
			continue
		}
		col := a[j*lda : j*lda+m]
		for i := range col {
			col[i] += ay * x[i]
		}
	}
}

// Dtrsv solves L*x = b or Lᵀ*x = b in place for a lower-triangular,
// non-unit-diagonal n x n matrix L with leading dimension lda.
//
// abft:hotpath
// abft:noescape
// abft:bce checks=4
func Dtrsv(trans Transpose, n int, l []float64, lda int, x []float64) {
	x = x[:n]
	if trans == NoTrans {
		for j := 0; j < n; j++ {
			x[j] /= l[j+j*lda]
			xj := x[j]
			col := l[j*lda:][:n]
			for i := j + 1; i < n; i++ {
				x[i] -= xj * col[i]
			}
		}
		return
	}
	for j := n - 1; j >= 0; j-- {
		s := x[j]
		col := l[j*lda:][:n]
		for i := j + 1; i < n; i++ {
			s -= col[i] * x[i]
		}
		x[j] = s / l[j+j*lda]
	}
}

// Dsyr computes A ← A + alpha*x*xᵀ updating only the lower triangle of
// the n x n matrix A.
func Dsyr(n int, alpha float64, x, a []float64, lda int) {
	if alpha == 0 {
		return
	}
	for j := 0; j < n; j++ {
		ax := alpha * x[j]
		if ax == 0 {
			continue
		}
		col := a[j*lda:]
		for i := j; i < n; i++ {
			col[i] += ax * x[i]
		}
	}
}
