//go:build !race

package blas

import (
	"testing"
)

// The hot-path contract (// abft:hotpath, enforced statically by the
// hotpath analyzer and against the compiler by tools/escapecheck) says
// the annotated kernels never allocate per call. These tests pin that
// at runtime with AllocsPerRun, which the race detector's
// instrumentation would distort — hence the !race build tag.
//
// Before this contract existed, dgemmNTPacked allocated its 64 KiB
// packing buffer on every call and MultiCode.EncodeInto allocated one
// m-slice per block column (B allocations per encode); both are now
// allocation-free steady-state (sync.Pool and a stack accumulator).

func TestKernelsDoNotAllocate(t *testing.T) {
	const n, k = 96, 64
	a := make([]float64, n*k)
	b := make([]float64, n*k)
	c := make([]float64, n*n)
	x := make([]float64, n)
	for i := range a {
		a[i] = float64(i%7) - 3
	}
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	for i := range x {
		x[i] = 1 + float64(i%3)
	}

	kernels := []struct {
		name string
		fn   func()
	}{
		{"Dgemm_NT", func() { Dgemm(NoTrans, Trans, n, n, k, -1, a, n, b, n, 1, c, n) }},
		{"Dgemm_NN", func() { Dgemm(NoTrans, NoTrans, n, k, k, 1, a, n, b, k, 0.5, c, n) }},
		{"Dsyrk", func() { Dsyrk(n, k, -1, a, n, 1, c, n) }},
		{"Dtrsm_RightTrans", func() {
			for i := 0; i < n; i++ {
				c[i+i*n] += float64(n) // keep the triangle well-conditioned
			}
			Dtrsm(Right, Trans, n, k, 1, c, n, b, n)
		}},
		{"Dtrsv", func() { Dtrsv(NoTrans, k, c, n, x) }},
		{"Daxpy", func() { Daxpy(n, 0.5, a[:n], c[:n]) }},
		{"Ddot", func() { _ = Ddot(n, a[:n], b[:n]) }},
		{"Dscal", func() { Dscal(n, 1.0001, c[:n]) }},
	}
	for _, kn := range kernels {
		kn.fn() // warm the pool outside the measured runs
		if avg := testing.AllocsPerRun(10, kn.fn); avg != 0 {
			t.Errorf("%s: %.1f allocs per call, want 0", kn.name, avg)
		}
	}
}

// TestDpotrfDoesNotAllocate covers the full blocked factorization:
// every kernel it dispatches to is on the annotated hot path, so a
// factorization on the happy path performs zero allocations.
func TestDpotrfDoesNotAllocate(t *testing.T) {
	const n, nb = 64, 16
	base := make([]float64, n*n)
	work := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			base[i+j*n] = 1 / (1 + float64(i-j))
		}
		base[j+j*n] += float64(n)
	}
	run := func() {
		copy(work, base)
		if err := Dpotrf(n, nb, work, n); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if avg := testing.AllocsPerRun(10, run); avg != 0 {
		t.Errorf("Dpotrf: %.1f allocs per call, want 0", avg)
	}
}

func BenchmarkDgemmNTAllocs(b *testing.B) {
	const n, k = 128, 64
	a := make([]float64, n*k)
	bm := make([]float64, n*k)
	c := make([]float64, n*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dgemm(NoTrans, Trans, n, n, k, -1, a, n, bm, n, 1, c, n)
	}
}

func BenchmarkDpotrfAllocs(b *testing.B) {
	const n, nb = 64, 16
	base := make([]float64, n*n)
	work := make([]float64, n*n)
	for j := 0; j < n; j++ {
		base[j+j*n] = float64(n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, base)
		if err := Dpotrf(n, nb, work, n); err != nil {
			b.Fatal(err)
		}
	}
}
