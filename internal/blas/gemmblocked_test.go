package blas

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPackedGemmMatchesNaive(t *testing.T) {
	// Exercise sizes straddling the dispatch threshold and the tile
	// boundaries (packKC, packNC), including ragged remainders.
	cases := []struct{ m, n, k int }{
		{64, 64, 64},   // exactly at the threshold
		{65, 63, 130},  // ragged k tile
		{100, 64, 128}, // exact tiles
		{37, 129, 257}, // ragged everything
		{256, 70, 5},   // skinny k below an unroll quad
		{8, 200, 1000}, // tall k
	}
	for _, cs := range cases {
		a := randSlice(cs.m*cs.k, 100)
		b := randSlice(cs.n*cs.k, 101)
		c1 := randSlice(cs.m*cs.n, 102)
		c2 := append([]float64(nil), c1...)
		// Through the public entry (dispatches to packed when large).
		Dgemm(NoTrans, Trans, cs.m, cs.n, cs.k, -1.5, a, cs.m, b, cs.n, 1, c1, cs.m)
		naiveGemm(NoTrans, Trans, cs.m, cs.n, cs.k, -1.5, a, cs.m, b, cs.n, 1, c2, cs.m)
		for i := range c1 {
			if math.Abs(c1[i]-c2[i]) > 1e-11 {
				t.Fatalf("%dx%dx%d: element %d differs: %g vs %g", cs.m, cs.n, cs.k, i, c1[i], c2[i])
			}
		}
	}
}

func TestPackedGemmDirectCall(t *testing.T) {
	// Call the packed kernel directly on a small problem (below the
	// dispatch threshold) so both paths stay covered.
	m, n, k := 10, 9, 11
	a := randSlice(m*k, 110)
	b := randSlice(n*k, 111)
	c1 := randSlice(m*n, 112)
	c2 := append([]float64(nil), c1...)
	dgemmNTPacked(m, n, k, 2.5, a, m, b, n, c1, m)
	naiveGemm(NoTrans, Trans, m, n, k, 2.5, a, m, b, n, 1, c2, m)
	for i := range c1 {
		if math.Abs(c1[i]-c2[i]) > 1e-12 {
			t.Fatal("direct packed call differs from naive")
		}
	}
}

func TestPackedGemmStrided(t *testing.T) {
	// Sub-matrix views: leading dimensions larger than the row counts.
	m, n, k, lda, ldb, ldc := 70, 66, 140, 80, 75, 90
	a := randSlice(lda*k, 120)
	b := randSlice(ldb*k, 121)
	c1 := randSlice(ldc*n, 122)
	c2 := append([]float64(nil), c1...)
	Dgemm(NoTrans, Trans, m, n, k, 1, a, lda, b, ldb, 1, c1, ldc)
	naiveGemm(NoTrans, Trans, m, n, k, 1, a, lda, b, ldb, 1, c2, ldc)
	for i := range c1 {
		if math.Abs(c1[i]-c2[i]) > 1e-11 {
			t.Fatal("strided packed gemm mismatch")
		}
	}
}

func TestPackedGemmProperty(t *testing.T) {
	f := func(seed int64) bool {
		m, n, k := 70, 68, 129 // above threshold, ragged tiles
		a := randSlice(m*k, seed)
		b := randSlice(n*k, seed+1)
		c1 := make([]float64, m*n)
		c2 := make([]float64, m*n)
		Dgemm(NoTrans, Trans, m, n, k, 1, a, m, b, n, 0, c1, m)
		naiveGemm(NoTrans, Trans, m, n, k, 1, a, m, b, n, 0, c2, m)
		for i := range c1 {
			if math.Abs(c1[i]-c2[i]) > 1e-11 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGemmNTNaive192(b *testing.B) {
	n := 192
	x := randSlice(n*n, 1)
	y := randSlice(n*n, 2)
	c := make([]float64, n*n)
	b.SetBytes(int64(8 * n * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveGemm(NoTrans, Trans, n, n, n, -1, x, n, y, n, 1, c, n)
	}
}

func BenchmarkGemmNTPacked192(b *testing.B) {
	n := 192
	x := randSlice(n*n, 1)
	y := randSlice(n*n, 2)
	c := make([]float64, n*n)
	b.SetBytes(int64(8 * n * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dgemmNTPacked(n, n, n, -1, x, n, y, n, c, n)
	}
}
