package blas

import (
	"math"
	"testing"
)

// Degenerate-dimension behaviour: BLAS routines must treat zero and
// one-sized problems as harmless no-ops or scalars, because the
// blocked drivers hit these shapes at the matrix edges.

func TestGemmZeroDims(t *testing.T) {
	c := []float64{1, 2, 3, 4}
	// k == 0: C scales by beta only.
	Dgemm(NoTrans, Trans, 2, 2, 0, 5, nil, 1, nil, 1, 2, c, 2)
	if c[0] != 2 || c[3] != 8 {
		t.Fatalf("k=0: %v", c)
	}
	// m == 0 and n == 0: nothing happens, no panic.
	Dgemm(NoTrans, NoTrans, 0, 2, 3, 1, nil, 1, make([]float64, 6), 3, 1, nil, 1)
	Dgemm(NoTrans, NoTrans, 2, 0, 3, 1, make([]float64, 6), 2, nil, 1, 1, nil, 1)
}

func TestGemmOneByOne(t *testing.T) {
	c := []float64{10}
	Dgemm(NoTrans, NoTrans, 1, 1, 1, 2, []float64{3}, 1, []float64{4}, 1, 1, c, 1)
	if c[0] != 34 {
		t.Fatalf("1x1 gemm = %g", c[0])
	}
	Dgemm(Trans, Trans, 1, 1, 1, 1, []float64{5}, 1, []float64{6}, 1, 0, c, 1)
	if c[0] != 30 {
		t.Fatalf("1x1 tt gemm = %g", c[0])
	}
}

func TestSyrkZeroAndOne(t *testing.T) {
	c := []float64{7}
	Dsyrk(1, 0, 1, nil, 1, 1, c, 1)
	if c[0] != 7 {
		t.Fatal("k=0 syrk changed C")
	}
	Dsyrk(1, 1, 2, []float64{3}, 1, 1, c, 1)
	if c[0] != 25 {
		t.Fatalf("1x1 syrk = %g", c[0])
	}
	Dsyrk(0, 5, 1, nil, 1, 0, nil, 1) // no panic
}

func TestTrsmOneByOne(t *testing.T) {
	b := []float64{12}
	Dtrsm(Right, Trans, 1, 1, 1, []float64{4}, 1, b, 1)
	if b[0] != 3 {
		t.Fatalf("1x1 trsm = %g", b[0])
	}
	b[0] = 12
	Dtrsm(Left, NoTrans, 1, 1, 0.5, []float64{4}, 1, b, 1)
	if b[0] != 1.5 {
		t.Fatalf("1x1 left trsm = %g", b[0])
	}
}

func TestTrsmZeroRHS(t *testing.T) {
	l := []float64{2}
	Dtrsm(Left, NoTrans, 1, 0, 1, l, 1, nil, 1)
	Dtrsm(Right, Trans, 0, 1, 1, l, 1, nil, 1)
}

func TestPotf2OneByOne(t *testing.T) {
	a := []float64{9}
	if err := Dpotf2(1, a, 1); err != nil {
		t.Fatal(err)
	}
	if a[0] != 3 {
		t.Fatalf("sqrt(9) = %g", a[0])
	}
	a[0] = -1
	if err := Dpotf2(1, a, 1); err == nil {
		t.Fatal("negative scalar accepted")
	}
	if err := Dpotf2(0, nil, 1); err != nil {
		t.Fatal("empty factorization must succeed")
	}
}

func TestPotrfDegenerateBlockSizes(t *testing.T) {
	n := 12
	for _, nb := range []int{0, -1, 1, n, n + 5} {
		a := spdSlice(n, 200)
		ref := spdSlice(n, 200)
		if err := Dpotrf(n, nb, a, n); err != nil {
			t.Fatalf("nb=%d: %v", nb, err)
		}
		if err := Dpotf2(n, ref, n); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			for i := j; i < n; i++ {
				if math.Abs(a[i+j*n]-ref[i+j*n]) > 1e-10 {
					t.Fatalf("nb=%d mismatch", nb)
				}
			}
		}
	}
}

func TestGemvZeroDims(t *testing.T) {
	y := []float64{5}
	Dgemv(NoTrans, 1, 0, 1, nil, 1, nil, 2, y)
	if y[0] != 10 {
		t.Fatalf("n=0 gemv: beta not applied: %v", y)
	}
	Dgemv(Trans, 0, 1, 1, nil, 1, nil, 0, y[:1])
	if y[0] != 0 {
		t.Fatalf("m=0 trans gemv: %v", y)
	}
}

func TestLevel1ZeroLength(t *testing.T) {
	Daxpy(0, 2, nil, nil)
	if Ddot(0, nil, nil) != 0 {
		t.Fatal("empty dot")
	}
	Dscal(0, 2, nil)
	if Dnrm2(0, nil) != 0 {
		t.Fatal("empty nrm2")
	}
	if Dasum(0, nil) != 0 {
		t.Fatal("empty asum")
	}
	Dcopy(0, nil, nil)
}

func TestParallelWithOneWorker(t *testing.T) {
	// Force the serial fallback path inside the parallel front ends.
	saved := Workers
	Workers = 1
	defer func() { Workers = saved }()
	m, n, k := 16, 16, 8
	a := randSlice(m*k, 300)
	b := randSlice(n*k, 301)
	c1 := randSlice(m*n, 302)
	c2 := append([]float64(nil), c1...)
	Dgemm(NoTrans, Trans, m, n, k, 1, a, m, b, n, 1, c1, m)
	DgemmParallel(NoTrans, Trans, m, n, k, 1, a, m, b, n, 1, c2, m)
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatal("one-worker parallel differs")
		}
	}
}

func TestDtrsvSingularDiagonalInfs(t *testing.T) {
	// A zero pivot produces Inf/NaN rather than a crash; the callers
	// (POTF2 guards) never let this happen, but the kernel must not
	// panic.
	l := []float64{0, 1, 0, 1}
	x := []float64{1, 1}
	Dtrsv(NoTrans, 2, l, 2, x)
	if !math.IsInf(x[0], 0) && !math.IsNaN(x[0]) {
		t.Fatalf("zero pivot produced %v", x)
	}
}
