//go:build !race

package checksum

import (
	"testing"

	"abftchol/internal/mat"
)

// Runtime pin of the // abft:hotpath contract for the checksum layer:
// encoding and the three update routines allocate nothing per call.
// EncodeInto used to allocate one m-length slice per block column —
// B allocations per encode — before the stack accumulator landed.

func TestChecksumHotPathDoesNotAllocate(t *testing.T) {
	const b = 32
	blk := mat.New(b, b)
	for j := 0; j < b; j++ {
		for i := 0; i < b; i++ {
			blk.Set(i, j, float64((i*7+j*3)%11)-5)
		}
	}
	chk2 := mat.New(2, b)
	chk4 := mat.New(4, b)
	code := NewMultiCode(4, b)
	la := mat.New(b, b)
	for j := 0; j < b; j++ {
		la.Set(j, j, 2)
		for i := j + 1; i < b; i++ {
			la.Set(i, j, 1/(1+float64(i-j)))
		}
	}
	panel := mat.New(b, b)
	panel.CopyFrom(blk)

	cases := []struct {
		name string
		fn   func()
	}{
		{"EncodeBlockInto", func() { EncodeBlockInto(blk, chk2) }},
		{"MultiCode.EncodeInto", func() { code.EncodeInto(blk, chk4) }},
		{"UpdateRankK", func() { UpdateRankK(chk2, chk2, panel) }},
		{"UpdateTRSM", func() { UpdateTRSM(chk2, la) }},
		{"UpdatePOTF2", func() { UpdatePOTF2(chk2, la) }},
	}
	for _, c := range cases {
		c.fn() // warm sync.Pool state in the BLAS layer underneath
		if avg := testing.AllocsPerRun(10, c.fn); avg != 0 {
			t.Errorf("%s: %.1f allocs per call, want 0", c.name, avg)
		}
	}
}
