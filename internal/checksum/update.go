package checksum

import (
	"fmt"

	"abftchol/internal/blas"
	"abftchol/internal/mat"
)

// The checksum-updating algorithms of §IV-B: after each factorization
// kernel transforms data blocks, the matching routine here applies the
// same linear transformation to their checksum rows, preserving the
// invariant chk(block) == V·block without touching the data.

// UpdateRankK applies the SYRK/GEMM checksum update
//
//	chkOut ← chkOut − chkSrc · panelᵀ
//
// where chkOut is the (2m x B) checksum slab of the blocks being
// updated, chkSrc the (2m x K) checksum slab of the blocks being
// multiplied, and panel the (B x K) factored row panel. This is the
// paper's chk(A') = chk(A) − chk(LC)·LCᵀ (Fig. 4) and
// chk(B') = chk(B) − chk(LD)·LCᵀ (Fig. 5) in slab form.
//
// abft:hotpath
// abft:noescape
// abft:bce checks=0
func UpdateRankK(chkOut, chkSrc, panel *mat.Matrix) {
	if chkOut.Rows != chkSrc.Rows || chkOut.Cols != panel.Rows || chkSrc.Cols != panel.Cols {
		panic(fmt.Sprintf("checksum: rank-k update shapes chkOut %dx%d chkSrc %dx%d panel %dx%d",
			chkOut.Rows, chkOut.Cols, chkSrc.Rows, chkSrc.Cols, panel.Rows, panel.Cols))
	}
	blas.Dgemm(blas.NoTrans, blas.Trans,
		chkOut.Rows, chkOut.Cols, chkSrc.Cols,
		-1, chkSrc.Data, chkSrc.Stride,
		panel.Data, panel.Stride,
		1, chkOut.Data, chkOut.Stride)
}

// UpdateTRSM applies the panel-solve checksum update
//
//	chk ← chk · L⁻ᵀ
//
// matching LB = B'·(LAᵀ)⁻¹ (Fig. 7). chk is a (2m x B) slab and l the
// factored B x B lower-triangular diagonal block.
//
// abft:hotpath
// abft:noescape
// abft:bce checks=0
func UpdateTRSM(chk, l *mat.Matrix) {
	if chk.Cols != l.Rows || l.Rows != l.Cols {
		panic(fmt.Sprintf("checksum: trsm update shapes chk %dx%d l %dx%d", chk.Rows, chk.Cols, l.Rows, l.Cols))
	}
	blas.Dtrsm(blas.Right, blas.Trans, chk.Rows, chk.Cols, 1, l.Data, l.Stride, chk.Data, chk.Stride)
}

// UpdatePOTF2 is Algorithm 2 of the paper: it transforms the 2 x B
// checksum of the diagonal block A' into the checksum of its Cholesky
// factor LA by replaying the factorization's column operations:
//
//	for j: chk[j] ← chk[j]/LA[j,j]; chk[j+1:] ← chk[j+1:] − chk[j]·LA[j+1:,j]ᵀ
//
// (Algebraically this equals chk·LA⁻ᵀ, but the paper's loop form works
// one column at a time exactly as the CPU factors them.)
//
// abft:hotpath
// abft:noescape
// abft:bce checks=6
func UpdatePOTF2(chk, la *mat.Matrix) {
	b := la.Rows
	if la.Cols != b || chk.Cols != b {
		panic(fmt.Sprintf("checksum: potf2 update shapes chk %dx%d la %dx%d", chk.Rows, chk.Cols, la.Rows, la.Cols))
	}
	for j := 0; j < b; j++ {
		d := la.At(j, j)
		for r := 0; r < chk.Rows; r++ {
			chk.Set(r, j, chk.At(r, j)/d)
		}
		for r := 0; r < chk.Rows; r++ {
			cj := chk.At(r, j)
			if cj == 0 {
				continue
			}
			for i := j + 1; i < b; i++ {
				chk.Add(r, i, -cj*la.At(i, j))
			}
		}
	}
}
