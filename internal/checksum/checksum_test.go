package checksum

import (
	"math"
	"testing"
	"testing/quick"

	"abftchol/internal/blas"
	"abftchol/internal/fault"
	"abftchol/internal/mat"
)

func TestVectors(t *testing.T) {
	v1, v2 := Vectors(4)
	for i := 0; i < 4; i++ {
		if v1[i] != 1 {
			t.Fatal("v1 must be all ones")
		}
		if v2[i] != float64(i+1) {
			t.Fatal("v2 must be 1..B")
		}
	}
}

func TestEncodeBlockInto(t *testing.T) {
	block := mat.FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6}) // cols (1,2,3), (4,5,6)
	chk := mat.New(2, 2)
	EncodeBlockInto(block, chk)
	if chk.At(0, 0) != 6 || chk.At(0, 1) != 15 {
		t.Fatalf("plain checksums %g %g", chk.At(0, 0), chk.At(0, 1))
	}
	// weighted: 1*1+2*2+3*3 = 14; 1*4+2*5+3*6 = 32
	if chk.At(1, 0) != 14 || chk.At(1, 1) != 32 {
		t.Fatalf("weighted checksums %g %g", chk.At(1, 0), chk.At(1, 1))
	}
}

func TestEncodeMatrixLayout(t *testing.T) {
	n, b := 8, 4
	a := mat.RandSPD(n, 3)
	chk := EncodeMatrix(a, b)
	if chk.Rows != 4 || chk.Cols != 8 {
		t.Fatalf("checksum matrix %dx%d", chk.Rows, chk.Cols)
	}
	// Block (1,0) checksums live at rows 2..3, cols 0..3.
	want := mat.New(2, b)
	EncodeBlockInto(a.View(b, 0, b, b), want)
	got := chk.View(2, 0, 2, b)
	if !mat.Equal(want, got, 0) {
		t.Fatal("block (1,0) checksum misplaced")
	}
	// Upper block (0,1) region must stay zero.
	up := chk.View(0, b, 2, b)
	for c := 0; c < b; c++ {
		if up.At(0, c) != 0 || up.At(1, c) != 0 {
			t.Fatal("upper block checksum not zero")
		}
	}
}

func TestEncodeMatrixRejectsBadBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for indivisible block size")
		}
	}()
	EncodeMatrix(mat.New(10, 10), 4)
}

func TestVerifyCleanBlockNoCorrections(t *testing.T) {
	block := mat.RandGeneral(8, 8, 1)
	stored := mat.New(2, 8)
	EncodeBlockInto(block, stored)
	scratch := mat.New(2, 8)
	corrs, err := VerifyAndCorrect(block, stored, scratch)
	if err != nil || len(corrs) != 0 {
		t.Fatalf("clean block: corrs=%v err=%v", corrs, err)
	}
}

func TestSingleErrorCorrected(t *testing.T) {
	block := mat.RandGeneral(8, 8, 2)
	orig := block.Clone()
	stored := mat.New(2, 8)
	EncodeBlockInto(block, stored)
	block.Add(5, 3, 7.25) // inject
	scratch := mat.New(2, 8)
	corrs, err := VerifyAndCorrect(block, stored, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if len(corrs) != 1 || corrs[0].Row != 5 || corrs[0].Col != 3 {
		t.Fatalf("correction = %+v", corrs)
	}
	if math.Abs(corrs[0].Delta-7.25) > 1e-12 {
		t.Fatalf("delta = %g", corrs[0].Delta)
	}
	if !mat.Equal(block, orig, 1e-12) {
		t.Fatal("block not restored")
	}
}

func TestBitFlipErrorCorrected(t *testing.T) {
	block := mat.RandGeneral(16, 16, 3)
	orig := block.Clone()
	stored := mat.New(2, 16)
	EncodeBlockInto(block, stored)
	block.Set(9, 4, fault.FlipBit(block.At(9, 4), 55))
	scratch := mat.New(2, 16)
	if _, err := VerifyAndCorrect(block, stored, scratch); err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(block, orig, 1e-9) {
		t.Fatal("bit flip not repaired")
	}
}

func TestTwoErrorsDifferentColumnsCorrected(t *testing.T) {
	block := mat.RandGeneral(8, 8, 4)
	orig := block.Clone()
	stored := mat.New(2, 8)
	EncodeBlockInto(block, stored)
	block.Add(1, 0, -3)
	block.Add(6, 7, 11)
	scratch := mat.New(2, 8)
	corrs, err := VerifyAndCorrect(block, stored, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if len(corrs) != 2 {
		t.Fatalf("corrections = %+v", corrs)
	}
	if !mat.Equal(block, orig, 1e-12) {
		t.Fatal("block not restored")
	}
}

func TestTwoErrorsSameColumnUncorrectable(t *testing.T) {
	block := mat.RandGeneral(8, 8, 5)
	stored := mat.New(2, 8)
	EncodeBlockInto(block, stored)
	block.Add(1, 4, 2)
	block.Add(6, 4, 5)
	scratch := mat.New(2, 8)
	_, err := VerifyAndCorrect(block, stored, scratch)
	if err == nil {
		t.Fatal("two errors in one column must be uncorrectable")
	}
}

func TestZeroD1NonzeroD2Uncorrectable(t *testing.T) {
	// Two equal-and-opposite errors in one column: δ1 = 0 but δ2 != 0.
	block := mat.RandGeneral(8, 8, 6)
	stored := mat.New(2, 8)
	EncodeBlockInto(block, stored)
	block.Add(1, 2, 4)
	block.Add(5, 2, -4)
	scratch := mat.New(2, 8)
	_, err := VerifyAndCorrect(block, stored, scratch)
	if err == nil {
		t.Fatal("cancelling errors must be flagged via weighted checksum")
	}
}

func TestCorrectionPropertyRandomPositions(t *testing.T) {
	f := func(seed int64, rawRow, rawCol uint8, rawDelta int16) bool {
		if rawDelta == 0 {
			return true
		}
		b := 12
		row, col := int(rawRow)%b, int(rawCol)%b
		delta := float64(rawDelta) / 64
		block := mat.RandGeneral(b, b, seed)
		orig := block.Clone()
		stored := mat.New(2, b)
		EncodeBlockInto(block, stored)
		block.Add(row, col, delta)
		scratch := mat.New(2, b)
		if _, err := VerifyAndCorrect(block, stored, scratch); err != nil {
			return false
		}
		return mat.Equal(block, orig, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTinyErrorBelowToleranceIgnored(t *testing.T) {
	// Perturbations at rounding-noise level must not trigger
	// correction (they would be false positives in real runs).
	block := mat.RandGeneral(8, 8, 7)
	stored := mat.New(2, 8)
	EncodeBlockInto(block, stored)
	block.Add(2, 2, 1e-14)
	scratch := mat.New(2, 8)
	corrs, err := VerifyAndCorrect(block, stored, scratch)
	if err != nil || len(corrs) != 0 {
		t.Fatalf("noise-level perturbation flagged: %v %v", corrs, err)
	}
}

func TestToleranceScalesWithMagnitude(t *testing.T) {
	small := mat.New(8, 8)
	small.Fill(0.001)
	big := mat.New(8, 8)
	big.Fill(1e6)
	if Tolerance(big) <= Tolerance(small) {
		t.Fatal("tolerance must grow with block magnitude")
	}
	if Tolerance(small) <= 0 {
		t.Fatal("tolerance must be positive")
	}
}

func TestUpdateRankKPreservesInvariant(t *testing.T) {
	// Block C (b x b) updated as C -= S·Pᵀ where S is b x k and P is
	// b x k. chk(C) must track via chk(C) -= chk(S)·Pᵀ.
	b, k := 8, 12
	cblk := mat.RandGeneral(b, b, 10)
	s := mat.RandGeneral(b, k, 11)
	p := mat.RandGeneral(b, k, 12)
	chkC := mat.New(2, b)
	chkS := mat.New(2, k)
	EncodeBlockInto(cblk, chkC)
	EncodeBlockInto(s, chkS)
	// Data update.
	blas.Dgemm(blas.NoTrans, blas.Trans, b, b, k, -1, s.Data, s.Stride, p.Data, p.Stride, 1, cblk.Data, cblk.Stride)
	// Checksum update.
	UpdateRankK(chkC, chkS, p)
	recalc := mat.New(2, b)
	EncodeBlockInto(cblk, recalc)
	if mat.MaxAbsDiff(chkC, recalc) > 1e-10 {
		t.Fatalf("rank-k invariant broken by %g", mat.MaxAbsDiff(chkC, recalc))
	}
}

func TestUpdateTRSMPreservesInvariant(t *testing.T) {
	b := 8
	l := mat.New(b, b)
	for j := 0; j < b; j++ {
		for i := j; i < b; i++ {
			l.Set(i, j, float64(i-j+1)/3)
		}
		l.Add(j, j, 2)
	}
	blk := mat.RandGeneral(b, b, 13)
	chk := mat.New(2, b)
	EncodeBlockInto(blk, chk)
	// Data: blk = blk · L⁻ᵀ
	blas.Dtrsm(blas.Right, blas.Trans, b, b, 1, l.Data, l.Stride, blk.Data, blk.Stride)
	UpdateTRSM(chk, l)
	recalc := mat.New(2, b)
	EncodeBlockInto(blk, recalc)
	if mat.MaxAbsDiff(chk, recalc) > 1e-10 {
		t.Fatalf("trsm invariant broken by %g", mat.MaxAbsDiff(chk, recalc))
	}
}

func TestUpdatePOTF2PreservesInvariant(t *testing.T) {
	// Factor an SPD block; Algorithm 2 must turn chk(A) into chk(L)
	// where L is the factor with a zeroed strict upper triangle.
	b := 16
	a := mat.RandSPD(b, 14)
	chk := mat.New(2, b)
	EncodeBlockInto(a, chk)
	if err := blas.Dpotf2(b, a.Data, a.Stride); err != nil {
		t.Fatal(err)
	}
	a.LowerFromFull()
	UpdatePOTF2(chk, a)
	recalc := mat.New(2, b)
	EncodeBlockInto(a, recalc)
	if mat.MaxAbsDiff(chk, recalc) > 1e-9*a.NormMax() {
		t.Fatalf("potf2 invariant broken by %g", mat.MaxAbsDiff(chk, recalc))
	}
}

func TestUpdatePOTF2MatchesTRSMForm(t *testing.T) {
	// Algorithm 2 is algebraically chk·L⁻ᵀ; both paths must agree.
	b := 8
	a := mat.RandSPD(b, 15)
	chk1 := mat.New(2, b)
	EncodeBlockInto(a, chk1)
	chk2 := chk1.Clone()
	if err := blas.Dpotf2(b, a.Data, a.Stride); err != nil {
		t.Fatal(err)
	}
	a.LowerFromFull()
	UpdatePOTF2(chk1, a)
	UpdateTRSM(chk2, a)
	if mat.MaxAbsDiff(chk1, chk2) > 1e-10 {
		t.Fatal("Algorithm 2 disagrees with chk·L⁻ᵀ")
	}
}

func TestChainedUpdatesSurviveInjection(t *testing.T) {
	// End-to-end mini scenario: encode, rank-k update, trsm update,
	// inject, verify, correct — the full life of a panel block.
	b, k := 8, 8
	blk := mat.RandGeneral(b, b, 16)
	src := mat.RandGeneral(b, k, 17)
	pan := mat.RandGeneral(b, k, 18)
	l := mat.RandSPD(b, 19)
	if err := blas.Dpotf2(b, l.Data, l.Stride); err != nil {
		t.Fatal(err)
	}
	l.LowerFromFull()

	chkB := mat.New(2, b)
	chkS := mat.New(2, k)
	EncodeBlockInto(blk, chkB)
	EncodeBlockInto(src, chkS)

	blas.Dgemm(blas.NoTrans, blas.Trans, b, b, k, -1, src.Data, src.Stride, pan.Data, pan.Stride, 1, blk.Data, blk.Stride)
	UpdateRankK(chkB, chkS, pan)
	blas.Dtrsm(blas.Right, blas.Trans, b, b, 1, l.Data, l.Stride, blk.Data, blk.Stride)
	UpdateTRSM(chkB, l)

	want := blk.Clone()
	blk.Add(3, 6, -2.5)
	scratch := mat.New(2, b)
	corrs, err := VerifyAndCorrect(blk, chkB, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if len(corrs) != 1 {
		t.Fatalf("corrections %v", corrs)
	}
	if !mat.Equal(blk, want, 1e-9) {
		t.Fatal("chained scenario did not recover the block")
	}
}

func TestLocateRejectsOutOfRangeRow(t *testing.T) {
	// δ2/δ1 pointing outside [1, rows] must be non-correctable.
	corrs := Locate([]Mismatch{{Col: 0, D1: 1, D2: 100}}, 8)
	if corrs[0].OK {
		t.Fatal("out-of-range ratio accepted")
	}
	if err := Apply(mat.New(8, 8), corrs); err == nil {
		t.Fatal("Apply must reject non-OK corrections")
	}
}

func TestCorruptedStoredChecksumFailsSafely(t *testing.T) {
	// The checksums themselves are unprotected (in the paper too). A
	// bit flip in a *stored checksum* shows up as a mismatch whose
	// ratio test fails, so verification reports uncorrectable instead
	// of silently "repairing" good data — a safe failure that costs a
	// redo, never a wrong answer.
	block := mat.RandGeneral(8, 8, 77)
	stored := mat.New(2, 8)
	EncodeBlockInto(block, stored)
	stored.Add(0, 3, 5) // corrupt chk1 of column 3; chk2 untouched
	scratch := mat.New(2, 8)
	_, err := VerifyAndCorrect(block, stored, scratch)
	if err == nil {
		t.Fatal("corrupted stored checksum must be flagged uncorrectable")
	}
	// The weighted checksum alone corrupted: same safe outcome.
	stored2 := mat.New(2, 8)
	EncodeBlockInto(block, stored2)
	stored2.Add(1, 5, -4)
	if _, err := VerifyAndCorrect(block, stored2, scratch); err == nil {
		t.Fatal("corrupted weighted checksum must be flagged uncorrectable")
	}
}
