package checksum

import (
	"testing"

	"abftchol/internal/blas"
	"abftchol/internal/mat"
)

func TestRowChecksumEncode(t *testing.T) {
	block := mat.FromSlice(2, 3, []float64{1, 4, 2, 5, 3, 6}) // rows (1,2,3), (4,5,6)
	rchk := mat.New(2, 2)
	EncodeRowChecksums(block, rchk)
	if rchk.At(0, 0) != 6 || rchk.At(1, 0) != 15 {
		t.Fatalf("plain row sums %g %g", rchk.At(0, 0), rchk.At(1, 0))
	}
	// weighted: 1*1+2*2+3*3 = 14; 1*4+2*5+3*6 = 32
	if rchk.At(0, 1) != 14 || rchk.At(1, 1) != 32 {
		t.Fatalf("weighted row sums %g %g", rchk.At(0, 1), rchk.At(1, 1))
	}
}

func TestRowChecksumCorrectsSingleError(t *testing.T) {
	b := 10
	blk := mat.RandGeneral(b, b, 30)
	orig := blk.Clone()
	stored := mat.New(b, 2)
	EncodeRowChecksums(blk, stored)
	blk.Add(4, 7, -3.5)
	scratch := mat.New(b, 2)
	corrs, err := VerifyAndCorrectRows(blk, stored, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if len(corrs) != 1 || corrs[0].Row != 4 || corrs[0].Col != 7 {
		t.Fatalf("corrections %v", corrs)
	}
	if !mat.Equal(blk, orig, 1e-12) {
		t.Fatal("block not restored")
	}
}

func TestRowChecksumTwoErrorsSameRowUncorrectable(t *testing.T) {
	b := 8
	blk := mat.RandGeneral(b, b, 31)
	stored := mat.New(b, 2)
	EncodeRowChecksums(blk, stored)
	blk.Add(3, 1, 2)
	blk.Add(3, 6, 5)
	scratch := mat.New(b, 2)
	if _, err := VerifyAndCorrectRows(blk, stored, scratch); err == nil {
		t.Fatal("two errors in one row accepted")
	}
}

func TestRowChecksumUpdateNeedsExtraPass(t *testing.T) {
	// The structural reason Cholesky uses column checksums.
	b, k := 8, 6
	cblk := mat.RandGeneral(b, b, 32)
	s := mat.RandGeneral(b, k, 33)
	p := mat.RandGeneral(b, k, 34)

	rchkC := mat.New(b, 2)
	rchkS := mat.New(b, 2)
	EncodeRowChecksums(cblk, rchkC)
	EncodeRowChecksums(s, rchkS)

	// Right-sided update C -= S·Pᵀ (the Cholesky shape).
	blas.Dgemm(blas.NoTrans, blas.Trans, b, b, k, -1, s.Data, s.Stride, p.Data, p.Stride, 1, cblk.Data, cblk.Stride)

	// There is no checksum-space update for this shape: the stored row
	// checksums of C (and of S) are now stale...
	recalc := mat.New(b, 2)
	EncodeRowChecksums(cblk, recalc)
	if mat.MaxAbsDiff(rchkC, recalc) < 1e-9 {
		t.Fatal("the update changed nothing? test is vacuous")
	}
	_ = rchkS // the column rule's analogue has nothing to multiply rchkS against
	// ...and repairing them requires Pᵀ·w — a fresh weighted pass over
	// P's data (its column checksums, transposed), which is exactly the
	// recalculation work the scheme tries to avoid:
	// (C − S·Pᵀ)·w = C·w − S·(Pᵀ·w).
	pcol := mat.New(2, k)
	EncodeBlockInto(p, pcol)
	ptw := pcol.Transpose() // k x 2 = Pᵀ·w for both weight vectors
	fixed := rchkC.Clone()
	blas.Dgemm(blas.NoTrans, blas.NoTrans, b, 2, k, -1, s.Data, s.Stride, ptw.Data, ptw.Stride, 1, fixed.Data, fixed.Stride)
	if mat.MaxAbsDiff(fixed, recalc) > 1e-10 {
		t.Fatalf("paid update still wrong by %g", mat.MaxAbsDiff(fixed, recalc))
	}
	if RowUpdateExtraFlops(p.Rows, p.Cols) <= 0 {
		t.Fatal("extra flops must be positive")
	}
}

func TestRowChecksumLeftUpdateWorksInChecksumSpace(t *testing.T) {
	// The dual situation where row checksums DO maintain cheaply:
	// a left-sided update C ← C − A·B tracks as
	// rchk(C) ← rchk(C) − A·rchk(B), all in checksum space.
	m, k, n := 7, 5, 9
	cblk := mat.RandGeneral(m, n, 35)
	a := mat.RandGeneral(m, k, 36)
	bmat := mat.RandGeneral(k, n, 37)

	rchkC := mat.New(m, 2)
	rchkB := mat.New(k, 2)
	EncodeRowChecksums(cblk, rchkC)
	EncodeRowChecksums(bmat, rchkB)

	blas.Dgemm(blas.NoTrans, blas.NoTrans, m, n, k, -1, a.Data, a.Stride, bmat.Data, bmat.Stride, 1, cblk.Data, cblk.Stride)
	UpdateRowRankKLeft(rchkC, rchkB, a)

	recalc := mat.New(m, 2)
	EncodeRowChecksums(cblk, recalc)
	if mat.MaxAbsDiff(rchkC, recalc) > 1e-10 {
		t.Fatalf("left-sided row update broken by %g", mat.MaxAbsDiff(rchkC, recalc))
	}
}

func TestRowChecksumShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EncodeRowChecksums(mat.New(4, 4), mat.New(4, 3))
}
