package checksum

import (
	"fmt"

	"abftchol/internal/blas"
	"abftchol/internal/mat"
)

// Row checksums — the dual encoding §IV-A mentions ("the resulted
// checksum can be row checksum, column checksum and full checksum")
// and then sets aside. A row checksum weights a block from the right:
//
//	rchk = A·w   (B x 2, one column per weight vector)
//
// It detects and corrects one error per block *row*. This file
// implements the dual to document, with running code, why the paper
// (following FT-ScaLAPACK) uses column checksums for Cholesky:
//
// every update of the factorization multiplies blocks from the RIGHT
// (C ← C − A·Bᵀ, X ← X·L⁻ᵀ). A column checksum vᵀC transforms as
// vᵀC − (vᵀA)·Bᵀ, i.e. entirely in checksum space using the stored
// vᵀA. The row checksum C·w transforms as C·w − A·(Bᵀ·w): the factor
// Bᵀ·w is NOT a stored checksum of anything — maintaining row
// checksums costs a fresh BLAS-2 pass over B at every update, which is
// exactly the recalculation work the scheme tries to avoid. Row
// checksums pay off only for left-sided updates (C ← C − A·B with A
// factored), which Cholesky's trailing updates are not.
// TestRowChecksumUpdateNeedsExtraPass demonstrates both sides.

// EncodeRowChecksums writes the B x 2 row checksum of block into rchk:
// column 0 is the plain row sum, column 1 the 1..C weighted sum.
func EncodeRowChecksums(block, rchk *mat.Matrix) {
	if rchk.Cols != 2 || rchk.Rows != block.Rows {
		panic(fmt.Sprintf("checksum: rchk %dx%d for block %dx%d", rchk.Rows, rchk.Cols, block.Rows, block.Cols))
	}
	for i := 0; i < block.Rows; i++ {
		s1, s2 := 0.0, 0.0
		for c := 0; c < block.Cols; c++ {
			v := block.At(i, c)
			s1 += v
			s2 += float64(c+1) * v
		}
		rchk.Set(i, 0, s1)
		rchk.Set(i, 1, s2)
	}
}

// VerifyAndCorrectRows is the row-checksum dual of VerifyAndCorrect:
// it repairs up to one wrong element per block row. scratch must be
// block.Rows x 2.
func VerifyAndCorrectRows(block, stored, scratch *mat.Matrix) ([]Correction, error) {
	EncodeRowChecksums(block, scratch)
	tol := Tolerance(block)
	var out []Correction
	for i := 0; i < block.Rows; i++ {
		d1 := scratch.At(i, 0) - stored.At(i, 0)
		d2 := scratch.At(i, 1) - stored.At(i, 1)
		if abs(d1) <= tol && abs(d2) <= tol*float64(block.Cols) {
			continue
		}
		corr := Correction{Row: i, Delta: d1}
		if d1 != 0 {
			ratio := d2 / d1
			r := roundf(ratio)
			if abs(ratio-r) < 0.01 && r >= 1 && r <= float64(block.Cols) {
				corr.Col = int(r) - 1
				corr.OK = true
			}
		}
		if !corr.OK {
			return out, fmt.Errorf("checksum: row %d corruption is not single-element correctable", i)
		}
		block.Add(corr.Row, corr.Col, -corr.Delta)
		out = append(out, corr)
	}
	return out, nil
}

// UpdateRowRankKLeft maintains row checksums through a LEFT-sided
// update C ← C − A·B, where A is factored with stored row checksums
// rchk(A): rchk(C) ← rchk(C) − ... has no closed form; the left-sided
// dual that DOES work is C ← C − A·B with checksums of B:
// (C − A·B)·w = C·w − A·(B·w) = rchk(C) − A·rchk(B). A is B's
// left multiplier (k x k against B's k x n).
func UpdateRowRankKLeft(rchkC, rchkB, a *mat.Matrix) {
	if rchkC.Cols != rchkB.Cols || rchkC.Rows != a.Rows || rchkB.Rows != a.Cols {
		panic(fmt.Sprintf("checksum: left row update shapes rchkC %dx%d rchkB %dx%d a %dx%d",
			rchkC.Rows, rchkC.Cols, rchkB.Rows, rchkB.Cols, a.Rows, a.Cols))
	}
	blas.Dgemm(blas.NoTrans, blas.NoTrans,
		rchkC.Rows, rchkC.Cols, a.Cols,
		-1, a.Data, a.Stride,
		rchkB.Data, rchkB.Stride,
		1, rchkC.Data, rchkC.Stride)
}

// RowUpdateExtraFlops is the price of maintaining row checksums
// through Cholesky's right-sided update C ← C − S·Pᵀ: the factor
// Pᵀ·w must be recomputed from P's data (2 weight vectors over
// P's rows x cols elements), per update.
func RowUpdateExtraFlops(pRows, pCols int) float64 {
	return 4 * float64(pRows) * float64(pCols)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func roundf(x float64) float64 {
	if x < 0 {
		return float64(int(x - 0.5))
	}
	return float64(int(x + 0.5))
}
