package checksum

import (
	"math"
	"math/rand"
	"testing"

	"abftchol/internal/blas"
	"abftchol/internal/mat"
)

// The dynamic twin of the static chkflow proof: chkflow proves every
// tile mutation is *paired* with its checksum update, and these
// properties prove each update's *arithmetic* actually restores the
// m-vector encode invariant chk(block) = W·block the pairing relies
// on — for every supported vector count, on random inputs. Together
// they close the loop: the analyzer guarantees the update runs, the
// property guarantees running it suffices.

// multiTol bounds the accumulated rounding noise of an m-vector
// checksum comparison: weights grow as b^(m-1), and the update chains
// O(b) multiply-adds on values of the block's magnitude.
func multiTol(m, b int, norm float64) float64 {
	if norm < 1 {
		norm = 1
	}
	return 1e-11 * math.Pow(float64(b), float64(m-1)) * float64(b) * norm
}

// reencoded returns the freshly computed m-vector checksum of blk.
func reencoded(c *MultiCode, blk *mat.Matrix) *mat.Matrix {
	chk := mat.New(c.Vectors(), blk.Cols)
	c.EncodeInto(blk, chk)
	return chk
}

func TestUpdateRankKPreservesMultiInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 60; trial++ {
		m := []int{2, 3, 4, 6}[rng.Intn(4)]
		b := 4 + rng.Intn(9)
		k := 1 + rng.Intn(2*b)
		c := NewMultiCode(m, b)
		blk := mat.RandGeneral(b, b, int64(3*trial+1))
		src := mat.RandGeneral(b, k, int64(3*trial+2))
		pan := mat.RandGeneral(b, k, int64(3*trial+3))
		chkB := reencoded(c, blk)
		chkS := reencoded(c, src)
		blas.Dgemm(blas.NoTrans, blas.Trans, b, b, k,
			-1, src.Data, src.Stride, pan.Data, pan.Stride, 1, blk.Data, blk.Stride)
		UpdateRankK(chkB, chkS, pan)
		diff := mat.MaxAbsDiff(chkB, reencoded(c, blk))
		if tol := multiTol(m, b, float64(k)*blk.NormMax()); diff > tol {
			t.Fatalf("trial %d (m=%d b=%d k=%d): rank-k invariant broken by %g (tol %g)", trial, m, b, k, diff, tol)
		}
	}
}

func TestUpdateTRSMPreservesMultiInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	for trial := 0; trial < 60; trial++ {
		m := []int{2, 3, 4, 6}[rng.Intn(4)]
		b := 4 + rng.Intn(9)
		c := NewMultiCode(m, b)
		blk := mat.RandGeneral(b, b, int64(2*trial+1))
		l := mat.RandSPD(b, int64(2*trial+2))
		if err := blas.Dpotf2(b, l.Data, l.Stride); err != nil {
			t.Fatal(err)
		}
		l.LowerFromFull()
		chk := reencoded(c, blk)
		blas.Dtrsm(blas.Right, blas.Trans, b, b, 1, l.Data, l.Stride, blk.Data, blk.Stride)
		UpdateTRSM(chk, l)
		diff := mat.MaxAbsDiff(chk, reencoded(c, blk))
		if tol := multiTol(m, b, float64(b)*blk.NormMax()); diff > tol {
			t.Fatalf("trial %d (m=%d b=%d): trsm invariant broken by %g (tol %g)", trial, m, b, diff, tol)
		}
	}
}

func TestUpdatePOTF2PreservesMultiInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	for trial := 0; trial < 60; trial++ {
		m := []int{2, 3, 4, 6}[rng.Intn(4)]
		b := 4 + rng.Intn(13)
		c := NewMultiCode(m, b)
		a := mat.RandSPD(b, int64(trial+1))
		chk := reencoded(c, a)
		if err := blas.Dpotf2(b, a.Data, a.Stride); err != nil {
			t.Fatal(err)
		}
		a.LowerFromFull()
		UpdatePOTF2(chk, a)
		diff := mat.MaxAbsDiff(chk, reencoded(c, a))
		if tol := multiTol(m, b, float64(b)*a.NormMax()); diff > tol {
			t.Fatalf("trial %d (m=%d b=%d): potf2 invariant broken by %g (tol %g)", trial, m, b, diff, tol)
		}
	}
}

// TestUpdateChainPreservesMultiInvariant walks one panel block through
// the full left-looking life cycle — rank-k update, then the TRSM
// solve against the freshly factored diagonal — with checksums
// maintained purely by Update* calls, never re-encoded in between.
func TestUpdateChainPreservesMultiInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 40; trial++ {
		m := []int{2, 3, 4, 6}[rng.Intn(4)]
		b := 4 + rng.Intn(9)
		k := 1 + rng.Intn(b)
		c := NewMultiCode(m, b)
		blk := mat.RandGeneral(b, b, int64(4*trial+1))
		src := mat.RandGeneral(b, k, int64(4*trial+2))
		pan := mat.RandGeneral(b, k, int64(4*trial+3))
		l := mat.RandSPD(b, int64(4*trial+4))
		if err := blas.Dpotf2(b, l.Data, l.Stride); err != nil {
			t.Fatal(err)
		}
		l.LowerFromFull()
		chkB := reencoded(c, blk)
		chkS := reencoded(c, src)

		blas.Dgemm(blas.NoTrans, blas.Trans, b, b, k,
			-1, src.Data, src.Stride, pan.Data, pan.Stride, 1, blk.Data, blk.Stride)
		UpdateRankK(chkB, chkS, pan)
		blas.Dtrsm(blas.Right, blas.Trans, b, b, 1, l.Data, l.Stride, blk.Data, blk.Stride)
		UpdateTRSM(chkB, l)

		diff := mat.MaxAbsDiff(chkB, reencoded(c, blk))
		if tol := multiTol(m, b, float64(b+k)*blk.NormMax()); diff > tol {
			t.Fatalf("trial %d (m=%d b=%d k=%d): chained invariant broken by %g (tol %g)", trial, m, b, k, diff, tol)
		}
	}
}
