package checksum

import (
	"fmt"
	"math"

	"abftchol/internal/mat"
)

// Multi-vector checksum codes — the generalization §IV of the paper
// sketches ("generally, m+1 column/row checksums could locate and
// correct up to m errors per column/row"). The construction here is
// the standard Reed-Solomon-style one over the reals: m weight vectors
//
//	w_s[i] = (i+1)^s,  s = 0 .. m-1
//
// (s=0 is the all-ones vector and s=1 the 1..B ramp, so m=2 is exactly
// the code the paper's implementation uses). A column corrupted in t
// unknown rows yields syndromes
//
//	δ_s = Σ_j e_j · r_j^s
//
// and t errors are locatable and correctable from 2t syndromes via the
// error-locator polynomial (Prony's method): m vectors correct up to
// ⌊m/2⌋ errors per column. (The paper's "m+1 correct m" counts only
// location of known-magnitude errors; recovering t magnitudes *and* t
// positions needs 2t equations, which the tests here demonstrate.)
type MultiCode struct {
	m int
	b int
}

// NewMultiCode builds an m-vector code for blocks with b rows.
// m must be at least 2.
func NewMultiCode(m, b int) *MultiCode {
	if m < 2 {
		panic("checksum: multi code needs at least 2 vectors")
	}
	if b < 1 {
		panic("checksum: block rows must be positive")
	}
	return &MultiCode{m: m, b: b}
}

// Vectors returns the number of weight vectors m.
func (c *MultiCode) Vectors() int { return c.m }

// MaxErrors returns the per-column correction capability ⌊m/2⌋.
func (c *MultiCode) MaxErrors() int { return c.m / 2 }

// EncodeInto writes the m x C checksum of block into chk.
//
// The accumulator lives in a fixed stack array for the code sizes the
// factorization actually uses (m ≤ 8); encoding is allocation-free per
// call, where it previously allocated one m-slice per column.
//
// abft:hotpath
// abft:bce checks=2
func (c *MultiCode) EncodeInto(block, chk *mat.Matrix) {
	if block.Rows != c.b {
		panic(fmt.Sprintf("checksum: block has %d rows, code built for %d", block.Rows, c.b))
	}
	if chk.Rows != c.m || chk.Cols != block.Cols {
		panic(fmt.Sprintf("checksum: chk %dx%d for m=%d block %dx%d", chk.Rows, chk.Cols, c.m, block.Rows, block.Cols))
	}
	var sumbuf [8]float64
	sums := sumbuf[:]
	if c.m > len(sumbuf) {
		sums = make([]float64, c.m) //nolint:hotpath — cold: codes larger than 8 vectors pay one allocation per encode, never per column
	}
	sums = sums[:c.m]
	for col := 0; col < block.Cols; col++ {
		data := block.Col(col)
		for s := range sums {
			sums[s] = 0
		}
		// Accumulate all m weighted sums in one pass: w_s[i] = (i+1)^s.
		for i, v := range data {
			w := 1.0
			x := float64(i + 1)
			for s := range sums {
				sums[s] += w * v
				w *= x
			}
		}
		for s, sv := range sums {
			chk.Set(s, col, sv)
		}
	}
}

// VerifyAndCorrect recalculates the block's m checksums, compares them
// with stored, and repairs up to MaxErrors wrong elements per column in
// place. scratch must be m x block.Cols. It returns the corrections
// applied, or an error when some column's corruption exceeds the
// code's capability.
func (c *MultiCode) VerifyAndCorrect(block, stored, scratch *mat.Matrix) ([]Correction, error) {
	c.EncodeInto(block, scratch)
	tol := Tolerance(block)
	var out []Correction
	syn := make([]float64, c.m)
	for col := 0; col < block.Cols; col++ {
		dirty := false
		for s := 0; s < c.m; s++ {
			syn[s] = scratch.At(s, col) - stored.At(s, col)
			// Higher syndromes carry weights up to B^s; scale the
			// threshold accordingly.
			if math.Abs(syn[s]) > tol*math.Pow(float64(c.b), float64(s)) {
				dirty = true
			}
		}
		if !dirty {
			continue
		}
		rows, mags, ok := c.solveColumn(syn, tol)
		if !ok {
			return out, fmt.Errorf("checksum: column %d corruption exceeds %d-error capability", col, c.MaxErrors())
		}
		for j, r := range rows {
			block.Add(r, col, -mags[j])
			out = append(out, Correction{Row: r, Col: col, Delta: mags[j], OK: true})
		}
	}
	return out, nil
}

// solveColumn recovers error rows and magnitudes from the syndromes,
// trying t = 1, 2, ..., ⌊m/2⌋ and accepting the first t whose solution
// reproduces every syndrome.
func (c *MultiCode) solveColumn(syn []float64, tol float64) (rows []int, mags []float64, ok bool) {
	for t := 1; t <= c.m/2; t++ {
		rows, mags, ok = c.tryT(syn, t, tol)
		if ok {
			return rows, mags, true
		}
	}
	return nil, nil, false
}

// tryT attempts an exactly-t-error explanation.
func (c *MultiCode) tryT(syn []float64, t int, tol float64) ([]int, []float64, bool) {
	// Error locator via the syndrome recurrence (Prony): find
	// coefficients a[0..t-1] with
	//   δ_{s+t} = Σ_i a_i · δ_{s+i}   for s = 0 .. t-1,
	// so Λ(x) = x^t − Σ a_i x^i has the error rows (1-based) as roots.
	A := make([][]float64, t)
	rhs := make([]float64, t)
	for s := 0; s < t; s++ {
		A[s] = make([]float64, t)
		for i := 0; i < t; i++ {
			A[s][i] = syn[s+i]
		}
		rhs[s] = syn[s+t]
	}
	a, solved := solveDense(A, rhs)
	if !solved {
		return nil, nil, false
	}
	// The roots must be integers in [1, b]: scan.
	lambda := func(x float64) float64 {
		v := math.Pow(x, float64(t))
		for i := 0; i < t; i++ {
			v -= a[i] * math.Pow(x, float64(i))
		}
		return v
	}
	// A root's numerical residual scales with the polynomial's term
	// magnitudes (the Hankel solve above can lose several digits for
	// t >= 3), so the acceptance threshold is relative to them.
	termScale := func(x float64) float64 {
		s := math.Pow(x, float64(t))
		for i := 0; i < t; i++ {
			s += math.Abs(a[i]) * math.Pow(x, float64(i))
		}
		if s < 1 {
			s = 1
		}
		return s
	}
	var rows []int
	for r := 1; r <= c.b && len(rows) < t; r++ {
		x := float64(r)
		if math.Abs(lambda(x)) < 1e-5*termScale(x) {
			rows = append(rows, r)
		}
	}
	if len(rows) != t {
		return nil, nil, false
	}
	// Magnitudes from the Vandermonde system δ_s = Σ e_j r_j^s,
	// s = 0..t-1.
	V := make([][]float64, t)
	for s := 0; s < t; s++ {
		V[s] = make([]float64, t)
		for j, r := range rows {
			V[s][j] = math.Pow(float64(r), float64(s))
		}
	}
	mags, solved := solveDense(V, syn[:t])
	if !solved {
		return nil, nil, false
	}
	// Validate against every remaining syndrome, with a threshold that
	// is both absolute (rounding noise scaled by the weight range) and
	// relative (conditioning of the recovery at higher powers).
	for s := 0; s < c.m; s++ {
		pred := 0.0
		magSum := 0.0
		for j, r := range rows {
			term := mags[j] * math.Pow(float64(r), float64(s))
			pred += term
			magSum += math.Abs(term)
		}
		thr := tol*math.Pow(float64(c.b), float64(s))*10 + 1e-6*(magSum+math.Abs(syn[s])) + 1e-9
		if math.Abs(pred-syn[s]) > thr {
			return nil, nil, false
		}
	}
	outRows := make([]int, t)
	for j, r := range rows {
		outRows[j] = r - 1 // back to 0-based
	}
	return outRows, mags, true
}

// solveDense solves the small t x t system A x = b by Gaussian
// elimination with partial pivoting; ok=false on (near) singularity.
func solveDense(A [][]float64, b []float64) ([]float64, bool) {
	t := len(A)
	// Work on copies.
	m := make([][]float64, t)
	for i := range A {
		m[i] = append([]float64(nil), A[i]...)
		m[i] = append(m[i], b[i])
	}
	for col := 0; col < t; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < t; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-300 {
			return nil, false
		}
		m[col], m[piv] = m[piv], m[col]
		for r := col + 1; r < t; r++ {
			f := m[r][col] / m[col][col]
			for k := col; k <= t; k++ {
				m[r][k] -= f * m[col][k]
			}
		}
	}
	x := make([]float64, t)
	for r := t - 1; r >= 0; r-- {
		s := m[r][t]
		for k := r + 1; k < t; k++ {
			s -= m[r][k] * x[k]
		}
		x[r] = s / m[r][r]
	}
	return x, true
}
