package checksum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"abftchol/internal/mat"
)

func TestMultiCodeM2MatchesPairCode(t *testing.T) {
	// m=2 must be exactly the paper's two-vector code.
	b := 8
	blk := mat.RandGeneral(b, b, 1)
	c := NewMultiCode(2, b)
	multi := mat.New(2, b)
	c.EncodeInto(blk, multi)
	pair := mat.New(2, b)
	EncodeBlockInto(blk, pair)
	if mat.MaxAbsDiff(multi, pair) > 1e-12 {
		t.Fatal("m=2 multi code disagrees with the pair code")
	}
}

func TestMultiCodeRejectsBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { NewMultiCode(1, 8) },
		func() { NewMultiCode(2, 0) },
		func() { NewMultiCode(2, 8).EncodeInto(mat.New(4, 4), mat.New(2, 4)) }, // wrong rows
		func() { NewMultiCode(2, 8).EncodeInto(mat.New(8, 4), mat.New(3, 4)) }, // wrong chk rows
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMultiCodeSingleErrorAllM(t *testing.T) {
	for _, m := range []int{2, 3, 4, 6} {
		b := 16
		blk := mat.RandGeneral(b, b, int64(m))
		orig := blk.Clone()
		c := NewMultiCode(m, b)
		stored := mat.New(m, b)
		c.EncodeInto(blk, stored)
		blk.Add(7, 3, 5.5)
		scratch := mat.New(m, b)
		corrs, err := c.VerifyAndCorrect(blk, stored, scratch)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if len(corrs) != 1 || corrs[0].Row != 7 || corrs[0].Col != 3 {
			t.Fatalf("m=%d: corrections %v", m, corrs)
		}
		if !mat.Equal(blk, orig, 1e-9) {
			t.Fatalf("m=%d: block not restored", m)
		}
	}
}

func TestMultiCodeDoubleErrorSameColumn(t *testing.T) {
	// The pair code cannot fix two errors in one column; m=4 can.
	b := 16
	blk := mat.RandGeneral(b, b, 9)
	orig := blk.Clone()
	c := NewMultiCode(4, b)
	stored := mat.New(4, b)
	c.EncodeInto(blk, stored)
	blk.Add(2, 5, 3.25)
	blk.Add(11, 5, -7.5)
	scratch := mat.New(4, b)
	corrs, err := c.VerifyAndCorrect(blk, stored, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if len(corrs) != 2 {
		t.Fatalf("corrections %v", corrs)
	}
	if !mat.Equal(blk, orig, 1e-8) {
		t.Fatalf("block not restored, max diff %g", mat.MaxAbsDiff(blk, orig))
	}
}

func TestMultiCodeTripleErrorWithM6(t *testing.T) {
	b := 24
	blk := mat.RandGeneral(b, b, 10)
	orig := blk.Clone()
	c := NewMultiCode(6, b)
	stored := mat.New(6, b)
	c.EncodeInto(blk, stored)
	blk.Add(1, 4, 2)
	blk.Add(9, 4, -3)
	blk.Add(17, 4, 4.5)
	scratch := mat.New(6, b)
	corrs, err := c.VerifyAndCorrect(blk, stored, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if len(corrs) != 3 {
		t.Fatalf("corrections %v", corrs)
	}
	if !mat.Equal(blk, orig, 1e-7) {
		t.Fatalf("block not restored, max diff %g", mat.MaxAbsDiff(blk, orig))
	}
}

func TestMultiCodeOverCapacityFails(t *testing.T) {
	// Three errors in one column against a capability of two.
	b := 16
	blk := mat.RandGeneral(b, b, 11)
	c := NewMultiCode(4, b)
	stored := mat.New(4, b)
	c.EncodeInto(blk, stored)
	blk.Add(1, 2, 2)
	blk.Add(6, 2, 3)
	blk.Add(12, 2, 4)
	scratch := mat.New(4, b)
	if _, err := c.VerifyAndCorrect(blk, stored, scratch); err == nil {
		t.Fatal("three errors accepted by a two-error code")
	}
}

func TestMultiCodeCleanBlockUntouched(t *testing.T) {
	b := 16
	blk := mat.RandGeneral(b, b, 12)
	orig := blk.Clone()
	c := NewMultiCode(4, b)
	stored := mat.New(4, b)
	c.EncodeInto(blk, stored)
	scratch := mat.New(4, b)
	corrs, err := c.VerifyAndCorrect(blk, stored, scratch)
	if err != nil || len(corrs) != 0 {
		t.Fatalf("clean block: %v %v", corrs, err)
	}
	if !mat.Equal(blk, orig, 0) {
		t.Fatal("clean block modified")
	}
}

func TestMultiCodeErrorsAcrossColumns(t *testing.T) {
	// Two errors in each of two different columns, m=4.
	b := 16
	blk := mat.RandGeneral(b, b, 13)
	orig := blk.Clone()
	c := NewMultiCode(4, b)
	stored := mat.New(4, b)
	c.EncodeInto(blk, stored)
	blk.Add(0, 1, 1.5)
	blk.Add(15, 1, -2.5)
	blk.Add(4, 9, 3.5)
	scratch := mat.New(4, b)
	corrs, err := c.VerifyAndCorrect(blk, stored, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if len(corrs) != 3 {
		t.Fatalf("corrections %v", corrs)
	}
	if !mat.Equal(blk, orig, 1e-8) {
		t.Fatal("block not restored")
	}
}

func TestMultiCodeDoubleErrorProperty(t *testing.T) {
	// Property: any two distinct-row errors in one column of an m=4
	// encoded block are repaired exactly.
	f := func(seed int64, r1raw, r2raw uint8, e1raw, e2raw int16) bool {
		b := 20
		r1 := int(r1raw) % b
		r2 := int(r2raw) % b
		if r1 == r2 || e1raw == 0 || e2raw == 0 {
			return true
		}
		e1 := float64(e1raw) / 32
		e2 := float64(e2raw) / 32
		blk := mat.RandGeneral(b, b, seed)
		orig := blk.Clone()
		c := NewMultiCode(4, b)
		stored := mat.New(4, b)
		c.EncodeInto(blk, stored)
		blk.Add(r1, 6, e1)
		blk.Add(r2, 6, e2)
		scratch := mat.New(4, b)
		if _, err := c.VerifyAndCorrect(blk, stored, scratch); err != nil {
			return false
		}
		return mat.Equal(blk, orig, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiCodeCapability(t *testing.T) {
	if NewMultiCode(2, 8).MaxErrors() != 1 {
		t.Fatal("m=2 corrects 1")
	}
	if NewMultiCode(4, 8).MaxErrors() != 2 {
		t.Fatal("m=4 corrects 2")
	}
	if NewMultiCode(5, 8).MaxErrors() != 2 {
		t.Fatal("m=5 corrects 2")
	}
	if NewMultiCode(4, 8).Vectors() != 4 {
		t.Fatal("vector count wrong")
	}
}

func TestMultiCodeUpdateCompatibility(t *testing.T) {
	// The checksum-update algebra is row-count agnostic: a 4-row
	// checksum slab must survive the rank-k and TRSM updates exactly
	// like the 2-row one.
	b, k := 12, 10
	blk := mat.RandGeneral(b, b, 14)
	src := mat.RandGeneral(b, k, 15)
	pan := mat.RandGeneral(b, k, 16)
	c := NewMultiCode(4, b)
	chkB := mat.New(4, b)
	chkS := mat.New(4, k)
	cSrc := NewMultiCode(4, b)
	c.EncodeInto(blk, chkB)
	cSrc.EncodeInto(src, chkS)

	// blk -= src·panᵀ with the matching checksum update.
	for col := 0; col < b; col++ {
		for i := 0; i < b; i++ {
			s := 0.0
			for kk := 0; kk < k; kk++ {
				s += src.At(i, kk) * pan.At(col, kk)
			}
			blk.Add(i, col, -s)
		}
	}
	UpdateRankK(chkB, chkS, pan)
	recalc := mat.New(4, b)
	c.EncodeInto(blk, recalc)
	if mat.MaxAbsDiff(chkB, recalc) > 1e-8 {
		t.Fatalf("4-row rank-k invariant broken by %g", mat.MaxAbsDiff(chkB, recalc))
	}
}

func TestSolveDense(t *testing.T) {
	x, ok := solveDense([][]float64{{2, 1}, {1, 3}}, []float64{5, 10})
	if !ok {
		t.Fatal("solvable system rejected")
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
	if _, ok := solveDense([][]float64{{1, 2}, {2, 4}}, []float64{1, 2}); ok {
		t.Fatal("singular system accepted")
	}
}

func TestMultiCodeRandomizedStress(t *testing.T) {
	// Deterministic stress: random error counts up to capability at
	// random positions, across several m.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 100; trial++ {
		m := []int{2, 4, 6}[rng.Intn(3)]
		b := 16 + rng.Intn(16)
		c := NewMultiCode(m, b)
		blk := mat.RandGeneral(b, b, int64(trial))
		orig := blk.Clone()
		stored := mat.New(m, b)
		c.EncodeInto(blk, stored)
		nerr := 1 + rng.Intn(c.MaxErrors())
		col := rng.Intn(b)
		used := map[int]bool{}
		for e := 0; e < nerr; e++ {
			r := rng.Intn(b)
			for used[r] {
				r = rng.Intn(b)
			}
			used[r] = true
			blk.Add(r, col, float64(rng.Intn(200)-100)/8+0.5)
		}
		scratch := mat.New(m, b)
		if _, err := c.VerifyAndCorrect(blk, stored, scratch); err != nil {
			t.Fatalf("trial %d (m=%d, %d errors): %v", trial, m, nerr, err)
		}
		if !mat.Equal(blk, orig, 1e-6) {
			t.Fatalf("trial %d: not restored (diff %g)", trial, mat.MaxAbsDiff(blk, orig))
		}
	}
}
