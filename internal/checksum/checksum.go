// Package checksum implements the two-vector column-checksum code the
// paper builds its ABFT schemes on (§IV).
//
// Every B x B block A of the input matrix is encoded with two column
// checksums computed from the weight vectors v1 = (1, 1, ..., 1) and
// v2 = (1, 2, ..., B):
//
//	chk1 = v1ᵀ A   (1 x B)
//	chk2 = v2ᵀ A   (1 x B)
//
// The pair detects and corrects one wrong element per block column:
// a mismatch δ1 in column c gives the error magnitude, and the ratio
// δ2/δ1 gives its (1-based) row. All checksums of a matrix live in a
// single 2N x n checksum matrix (N = n/B block rows) so they can be
// updated with one BLAS call per factorization step.
package checksum

import (
	"fmt"
	"math"

	"abftchol/internal/mat"
)

// Vectors returns the two weight vectors for block size b:
// v1 = (1, ..., 1) and v2 = (1, 2, ..., b).
func Vectors(b int) (v1, v2 []float64) {
	v1 = make([]float64, b)
	v2 = make([]float64, b)
	for i := 0; i < b; i++ {
		v1[i] = 1
		v2[i] = float64(i + 1)
	}
	return v1, v2
}

// EncodeBlockInto writes the 2 x C checksum of block (R x C) into chk.
// Row 0 of chk is the plain column sum, row 1 the weighted sum.
//
// abft:hotpath
// abft:noescape
// abft:bce checks=2
func EncodeBlockInto(block, chk *mat.Matrix) {
	if chk.Rows != 2 || chk.Cols != block.Cols {
		panic(fmt.Sprintf("checksum: chk %dx%d for block %dx%d", chk.Rows, chk.Cols, block.Rows, block.Cols))
	}
	for c := 0; c < block.Cols; c++ {
		col := block.Col(c)
		s1, s2 := 0.0, 0.0
		for i, v := range col {
			s1 += v
			s2 += float64(i+1) * v
		}
		chk.Set(0, c, s1)
		chk.Set(1, c, s2)
	}
}

// EncodeMatrix builds the full 2N x n checksum matrix for the lower
// block triangle of the n x n matrix a with block size b. Block (i, j)
// with i >= j gets its checksums at rows {2i, 2i+1}, columns
// jB..(j+1)B. Upper blocks are never read by the factorization and
// stay zero.
func EncodeMatrix(a *mat.Matrix, b int) *mat.Matrix {
	n := a.Rows
	if a.Cols != n || n%b != 0 {
		panic(fmt.Sprintf("checksum: matrix %dx%d not divisible into %d-blocks", a.Rows, a.Cols, b))
	}
	nb := n / b
	chk := mat.New(2*nb, n)
	for i := 0; i < nb; i++ {
		for j := 0; j <= i; j++ {
			EncodeBlockInto(a.View(i*b, j*b, b, b), chk.View(2*i, j*b, 2, b))
		}
	}
	return chk
}

// EncodeMatrixMulti is EncodeMatrix for an m-vector code: the checksum
// matrix is m·N x n and block (i, j)'s checksums occupy rows
// m·i .. m·i+m-1.
func EncodeMatrixMulti(a *mat.Matrix, b, m int) *mat.Matrix {
	n := a.Rows
	if a.Cols != n || n%b != 0 {
		panic(fmt.Sprintf("checksum: matrix %dx%d not divisible into %d-blocks", a.Rows, a.Cols, b))
	}
	code := NewMultiCode(m, b)
	nb := n / b
	chk := mat.New(m*nb, n)
	for i := 0; i < nb; i++ {
		for j := 0; j <= i; j++ {
			code.EncodeInto(a.View(i*b, j*b, b, b), chk.View(m*i, j*b, m, b))
		}
	}
	return chk
}

// Tolerance returns the rounding-error threshold for comparing stored
// and recalculated checksums of a block: well above the accumulation
// noise of O(n) updates, well below any bit flip that matters.
func Tolerance(block *mat.Matrix) float64 {
	scale := block.NormMax()
	if scale < 1 {
		scale = 1
	}
	return 1e-9 * float64(block.Rows) * scale
}

// Mismatch is a flagged block column: the recalculated checksums
// disagree with the stored ones by (D1, D2).
type Mismatch struct {
	Col    int
	D1, D2 float64
}

// Compare recomputes nothing: it diffs the stored and recalculated
// 2 x C checksum panels and returns the columns whose plain checksum
// deviates by more than tol.
func Compare(stored, recalced *mat.Matrix, tol float64) []Mismatch {
	if stored.Rows != 2 || recalced.Rows != 2 || stored.Cols != recalced.Cols {
		panic("checksum: compare shape mismatch")
	}
	var out []Mismatch
	for c := 0; c < stored.Cols; c++ {
		d1 := recalced.At(0, c) - stored.At(0, c)
		d2 := recalced.At(1, c) - stored.At(1, c)
		if math.Abs(d1) > tol || math.Abs(d2) > tol*weightScale(stored.Cols) {
			out = append(out, Mismatch{Col: c, D1: d1, D2: d2})
		}
	}
	return out
}

// weightScale loosens the weighted-checksum threshold: v2 entries are
// up to B, so its rounding noise is up to B times larger.
func weightScale(b int) float64 { return float64(b) }

// Correction is a located error: subtract Delta from element
// (Row, Col) of the block. OK is false when the mismatch cannot be
// explained by a single wrong element in that column (the ratio test
// fails), i.e. the corruption has propagated beyond the code's reach.
type Correction struct {
	Row, Col int
	Delta    float64
	OK       bool
}

// Locate converts mismatches into corrections for a block with rows
// rows. A mismatch locates as row = δ2/δ1 (1-based); the ratio must be
// within locTol of an integer in [1, rows] to be trusted.
func Locate(ms []Mismatch, rows int) []Correction {
	out := make([]Correction, 0, len(ms))
	for _, m := range ms {
		c := Correction{Col: m.Col, Delta: m.D1}
		if m.D1 != 0 {
			ratio := m.D2 / m.D1
			r := math.Round(ratio)
			// The ratio tolerance scales with the row index: both
			// deltas carry rounding noise of similar absolute size,
			// so the quotient is noisier for larger ratios.
			if math.Abs(ratio-r) < 0.01 && r >= 1 && r <= float64(rows) {
				c.Row = int(r) - 1
				c.OK = true
			}
		}
		out = append(out, c)
	}
	return out
}

// Apply subtracts each OK correction from the block. It returns an
// error (and applies nothing further) at the first non-correctable
// entry.
func Apply(block *mat.Matrix, corrs []Correction) error {
	for _, c := range corrs {
		if !c.OK {
			return fmt.Errorf("checksum: column %d corruption is not single-element correctable", c.Col)
		}
		block.Add(c.Row, c.Col, -c.Delta)
	}
	return nil
}

// VerifyAndCorrect is the full pre-read verification of one block:
// recalculate, compare against the stored checksums, locate, and
// repair in place. It returns the corrections applied. A non-nil error
// means the block is corrupted beyond repair (caller must trigger the
// scheme's recovery path). scratch must be a 2 x block.Cols matrix; it
// is overwritten.
func VerifyAndCorrect(block, stored, scratch *mat.Matrix) ([]Correction, error) {
	EncodeBlockInto(block, scratch)
	ms := Compare(stored, scratch, Tolerance(block))
	if len(ms) == 0 {
		return nil, nil
	}
	corrs := Locate(ms, block.Rows)
	if err := Apply(block, corrs); err != nil {
		return corrs, err
	}
	return corrs, nil
}
