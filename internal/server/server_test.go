package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"abftchol/internal/core"
	"abftchol/internal/experiments"
	"abftchol/internal/mat"
	"abftchol/internal/obs"
)

// realClock is fine in tests (detorder exempts _test.go files).
func realClock() Clock { return Clock{Now: time.Now, After: time.After} }

// newTestServer boots a daemon behind an httptest listener and owns
// its drain.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	if cfg.Clock.Now == nil {
		cfg.Clock = realClock()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		ts.Close()
	})
	return s, &Client{Base: ts.URL}
}

// gatedSched swaps the server's scheduler for one whose executions
// block until the gate closes — controllable congestion for queue,
// timeout, and drain tests.
func gatedSched(s *Server, workers int, gate chan struct{}) {
	s.sched = experiments.NewRemoteScheduler(workers, func(o core.Options) (core.Result, error) {
		<-gate
		return core.Result{N: o.N, Scheme: o.Scheme}, nil
	})
}

func smallReq() JobRequest {
	return JobRequest{Machine: "laptop", N: 512, Scheme: "enhanced", K: 2}
}

func mustSubmit(t *testing.T, c *Client, req JobRequest) JobInfo {
	t.Helper()
	info, err := c.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if info.State != StateQueued || info.ID == "" || info.Fingerprint == "" {
		t.Fatalf("submit response: %+v", info)
	}
	return info
}

func TestJobLifecycle(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	req := smallReq()
	req.Inject = "storage@1"
	req.Trace = true
	info := mustSubmit(t, c, req)
	if info.ID != "j-000001" {
		t.Fatalf("first job ID = %q", info.ID)
	}

	done, err := c.Wait(info.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if done.State != StateDone || done.Executed == nil || !*done.Executed {
		t.Fatalf("terminal info: %+v", done)
	}
	if done.StartedAt == nil || done.FinishedAt == nil {
		t.Fatalf("missing timestamps: %+v", done)
	}

	res, err := c.Result(info.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if res.Result.N != 512 || res.Result.Corrections == 0 {
		t.Fatalf("result body: %+v", res.Result)
	}
	if res.Fingerprint != info.Fingerprint {
		t.Fatalf("fingerprint drifted: %s vs %s", res.Fingerprint, info.Fingerprint)
	}

	snap, err := c.JobMetrics(info.ID)
	if err != nil {
		t.Fatalf("job metrics: %v", err)
	}
	if !bytes.Contains(snap, []byte("kernel.launches.potf2")) {
		t.Fatalf("job metrics missing kernel counters: %.200s", snap)
	}

	trace, err := c.Trace(info.ID)
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	if n, err := obs.ValidateChromeTrace(trace); err != nil || n == 0 {
		t.Fatalf("trace invalid (%d events): %v", n, err)
	}

	h, err := c.Health()
	if err != nil {
		t.Fatalf("health: %v", err)
	}
	if h.Status != "ok" || h.Jobs[StateDone] != 1 {
		t.Fatalf("health: %+v", h)
	}
}

// TestConcurrentDedup is the acceptance criterion: two identical
// concurrent submissions share one execution, proven by the kernel
// counters in the global registry.
func TestConcurrentDedup(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 4})
	req := smallReq()

	type sub struct {
		info JobInfo
		err  error
	}
	results := make(chan sub, 2)
	for i := 0; i < 2; i++ {
		go func() {
			info, err := c.Submit(req)
			if err == nil {
				info, err = c.Wait(info.ID)
			}
			results <- sub{info, err}
		}()
	}
	var infos []JobInfo
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("submission %d: %v", i, r.err)
		}
		if r.info.State != StateDone {
			t.Fatalf("submission %d: %+v", i, r.info)
		}
		infos = append(infos, r.info)
	}
	if infos[0].Fingerprint != infos[1].Fingerprint {
		t.Fatalf("identical requests got different fingerprints")
	}
	executed := 0
	for _, info := range infos {
		if info.Executed != nil && *info.Executed {
			executed++
		}
	}
	if executed != 1 {
		t.Fatalf("want exactly 1 executing job, got %d", executed)
	}

	// The kernel counters are the proof: the merged registry holds one
	// run's worth of launches, and one reference run says how much that
	// is.
	ref := obs.NewRegistry()
	sink := &experiments.Obs{Metrics: ref}
	o, err := req.Options()
	if err != nil {
		t.Fatal(err)
	}
	if pr := experiments.NewScheduler(1, nil).Execute([]core.Options{o}, sink)[0]; pr.Err != nil {
		t.Fatal(pr.Err)
	}

	global := fetchMetrics(t, c)
	if got, want := counter(t, global, "kernel.launches.potf2"), counter(t, snapshotOf(t, ref), "kernel.launches.potf2"); got != want || want == 0 {
		t.Fatalf("kernel.launches.potf2 = %v, want one run's worth %v", got, want)
	}
	if got := counter(t, global, "server.jobs.done"); got != 2 {
		t.Fatalf("server.jobs.done = %v", got)
	}
	if got := counter(t, global, "server.jobs.deduped"); got != 1 {
		t.Fatalf("server.jobs.deduped = %v", got)
	}
	if got := counter(t, global, "sweep.points.executed"); got != 1 {
		t.Fatalf("sweep.points.executed = %v", got)
	}
}

// fetchMetrics grabs and decodes the global snapshot.
func fetchMetrics(t *testing.T, c *Client) map[string]interface{} {
	t.Helper()
	data, err := c.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	return decodeSnapshot(t, data)
}

func snapshotOf(t *testing.T, reg *obs.Registry) map[string]interface{} {
	t.Helper()
	data, err := reg.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return decodeSnapshot(t, data)
}

func decodeSnapshot(t *testing.T, data []byte) map[string]interface{} {
	t.Helper()
	var m map[string]interface{}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("snapshot decode: %v", err)
	}
	return m
}

// counter digs one counter's value out of a decoded snapshot
// ({"counters": {...}, "values": {...}, "histograms": {...}}).
func counter(t *testing.T, snap map[string]interface{}, name string) float64 {
	t.Helper()
	counters, ok := snap["counters"].(map[string]interface{})
	if !ok {
		t.Fatalf("snapshot has no counters map")
	}
	f, ok := counters[name].(float64)
	if !ok {
		t.Fatalf("snapshot counter %q missing or non-numeric: %v", name, counters[name])
	}
	return f
}

func TestQueueFullRejectsWith429(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	gate := make(chan struct{})
	gatedSched(s, 1, gate)
	defer close(gate)

	// Job 1 occupies the only worker; job 2 fills the depth-1 queue.
	j1 := mustSubmit(t, c, JobRequest{Machine: "laptop", N: 256, Scheme: "magma"})
	waitState(t, c, j1.ID, StateRunning)
	mustSubmit(t, c, JobRequest{Machine: "laptop", N: 512, Scheme: "magma"})

	_, err := c.Submit(JobRequest{Machine: "laptop", N: 768, Scheme: "magma"})
	var apiErr *APIError
	if !errorAs(err, &apiErr) || apiErr.Err.Code != "queue_full" {
		t.Fatalf("third submit: %v", err)
	}
}

// errorAs is errors.As without the import dance for *APIError.
func errorAs(err error, target **APIError) bool {
	if e, ok := err.(*APIError); ok {
		*target = e
		return true
	}
	return false
}

// waitState polls (long-poll-free, state may regress past the target)
// until the job reaches at least the wanted state.
func waitState(t *testing.T, c *Client, id string, want State) JobInfo {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var info JobInfo
		if err := c.do(http.MethodGet, "/v1/jobs/"+id, nil, &info); err != nil {
			t.Fatalf("poll: %v", err)
		}
		if info.State == want || info.State.Terminal() {
			if info.State != want {
				t.Fatalf("job %s reached %s, wanted %s", id, info.State, want)
			}
			return info
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobInfo{}
}

func TestRateLimit429AndRetryAfter(t *testing.T) {
	// A frozen clock never refills the bucket, so the third submission
	// from one client deterministically trips the limit.
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	frozen := Clock{Now: func() time.Time { return t0 }, After: time.After}
	s, c := newTestServer(t, Config{Workers: 1, RatePerSec: 0.5, RateBurst: 2, Clock: frozen})
	gatedSched(s, 1, closedGate())

	c.Name = "tester"
	mustSubmit(t, c, JobRequest{Machine: "laptop", N: 256, Scheme: "magma"})
	mustSubmit(t, c, JobRequest{Machine: "laptop", N: 512, Scheme: "magma"})

	resp := rawSubmit(t, c, "tester", smallReq())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit status = %d", resp.StatusCode)
	}
	// (1 - 0 tokens) / 0.5 per second = 2 s.
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want 2", ra)
	}
	var envelope APIError
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Err.Code != "rate_limited" {
		t.Fatalf("envelope %+v, %v", envelope, err)
	}

	// A different client has its own bucket.
	c2 := &Client{Base: c.Base, Name: "other"}
	mustSubmit(t, c2, JobRequest{Machine: "laptop", N: 768, Scheme: "magma"})
}

func closedGate() chan struct{} {
	gate := make(chan struct{})
	close(gate)
	return gate
}

func rawSubmit(t *testing.T, c *Client, client string, req JobRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, c.Base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("X-Client", client)
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestJobTimeout(t *testing.T) {
	gate := make(chan struct{})
	s, c := newTestServer(t, Config{Workers: 1, JobTimeout: 50 * time.Millisecond})
	gatedSched(s, 1, gate)
	defer close(gate)

	info := mustSubmit(t, c, smallReq())
	done, err := c.Wait(info.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if done.State != StateFailed || !strings.Contains(done.Error, "timeout") {
		t.Fatalf("timed-out job: %+v", done)
	}
}

func TestCancelSemantics(t *testing.T) {
	gate := make(chan struct{})
	s, c := newTestServer(t, Config{Workers: 1})
	gatedSched(s, 1, gate)
	defer close(gate)

	running := mustSubmit(t, c, JobRequest{Machine: "laptop", N: 256, Scheme: "magma"})
	waitState(t, c, running.ID, StateRunning)
	queued := mustSubmit(t, c, JobRequest{Machine: "laptop", N: 512, Scheme: "magma"})

	// Queued → canceled.
	var info JobInfo
	if err := c.do(http.MethodDelete, "/v1/jobs/"+queued.ID, nil, &info); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if info.State != StateCanceled {
		t.Fatalf("canceled job: %+v", info)
	}

	// Running → 409.
	err := c.do(http.MethodDelete, "/v1/jobs/"+running.ID, nil, nil)
	var apiErr *APIError
	if !errorAs(err, &apiErr) || apiErr.Err.Code != "not_cancelable" {
		t.Fatalf("cancel running: %v", err)
	}

	// Result of a canceled job → job_failed.
	_, err = c.Result(queued.ID)
	if !errorAs(err, &apiErr) || apiErr.Err.Code != "job_failed" {
		t.Fatalf("result of canceled: %v", err)
	}
}

func TestErrorEnvelopes(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})

	var apiErr *APIError
	if err := c.do(http.MethodGet, "/v1/jobs/j-999999", nil, nil); !errorAs(err, &apiErr) || apiErr.Err.Code != "unknown_job" {
		t.Fatalf("unknown job: %v", err)
	}
	if _, err := c.Submit(JobRequest{Machine: "laptop", N: 512}); !errorAs(err, &apiErr) || apiErr.Err.Code != "invalid_request" {
		t.Fatalf("missing scheme: %v", err)
	}
	if _, err := c.Submit(JobRequest{Machine: "nonesuch", N: 512, Scheme: "enhanced"}); !errorAs(err, &apiErr) || apiErr.Err.Code != "invalid_request" {
		t.Fatalf("bad machine: %v", err)
	}

	// Unknown fields are rejected, not silently dropped.
	resp, err := http.Post(c.Base+"/v1/jobs", "application/json",
		strings.NewReader(`{"machine":"laptop","n":512,"scheme":"enhanced","shceme_typo":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field status = %d", resp.StatusCode)
	}

	// A done job without trace:true has no timeline.
	info := mustSubmit(t, c, smallReq())
	if _, err := c.Wait(info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Trace(info.ID); !errorAs(err, &apiErr) || apiErr.Err.Code != "no_trace" {
		t.Fatalf("trace of untraced: %v", err)
	}
}

func TestEventsStreamReplaysLifecycle(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	info := mustSubmit(t, c, smallReq())
	if _, err := c.Wait(info.ID); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(c.Base + "/v1/jobs/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	iQ := strings.Index(body, "event: queued")
	iR := strings.Index(body, "event: running")
	iD := strings.Index(body, "event: done")
	if iQ < 0 || iR < iQ || iD < iR {
		t.Fatalf("stream out of order:\n%s", body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
}

func TestLongPollReturnsOnCompletion(t *testing.T) {
	gate := make(chan struct{})
	s, c := newTestServer(t, Config{Workers: 1})
	gatedSched(s, 1, gate)

	info := mustSubmit(t, c, smallReq())
	waitState(t, c, info.ID, StateRunning)

	start := time.Now()
	pollDone := make(chan JobInfo, 1)
	go func() {
		var got JobInfo
		if err := c.do(http.MethodGet, "/v1/jobs/"+info.ID+"?wait=30s", nil, &got); err == nil {
			pollDone <- got
		}
	}()
	time.Sleep(20 * time.Millisecond) // let the poll park server-side
	close(gate)
	select {
	case got := <-pollDone:
		if got.State != StateDone {
			t.Fatalf("long-poll returned %+v", got)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("long-poll blocked %v; should return on completion", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long-poll never returned after completion")
	}
}

// TestGracefulShutdown is the drain acceptance criterion: in-flight
// jobs finish, the queue drains, new submissions are refused, metrics
// flush, and no goroutines leak (the -race run makes the joins real).
func TestGracefulShutdown(t *testing.T) {
	before := runtime.NumGoroutine()
	metricsPath := filepath.Join(t.TempDir(), "metrics.json")

	gate := make(chan struct{})
	cfg := Config{Workers: 1, QueueDepth: 8, Clock: realClock(), MetricsPath: metricsPath}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gatedSched(s, 1, gate)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL}

	inflight := mustSubmit(t, c, JobRequest{Machine: "laptop", N: 256, Scheme: "magma"})
	waitState(t, c, inflight.ID, StateRunning)
	queued := mustSubmit(t, c, JobRequest{Machine: "laptop", N: 512, Scheme: "magma"})

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Submissions are refused once draining.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := c.Submit(smallReq())
		var apiErr *APIError
		if errorAs(err, &apiErr) && apiErr.Err.Code == "draining" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw draining rejection; last err %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	close(gate) // let the in-flight job (and then the queued one) finish
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Both accepted jobs reached done — drain finished the work.
	for _, id := range []string{inflight.ID, queued.ID} {
		var info JobInfo
		if err := c.do(http.MethodGet, "/v1/jobs/"+id, nil, &info); err != nil {
			t.Fatalf("post-drain poll %s: %v", id, err)
		}
		if info.State != StateDone {
			t.Fatalf("job %s after drain: %+v", id, info)
		}
	}

	// Metrics were flushed.
	flushed, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics flush: %v", err)
	}
	decodeSnapshot(t, flushed)
	if !bytes.Contains(flushed, []byte("server.jobs.submitted")) {
		t.Fatalf("flushed snapshot missing server counters: %.200s", flushed)
	}

	// Second Shutdown is a no-op.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}

	// Goroutines drained (workers, execs, watchers).
	ts.Close()
	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestShutdownDeadlineCancelsQueued(t *testing.T) {
	gate := make(chan struct{})
	cfg := Config{Workers: 1, QueueDepth: 8, Clock: realClock()}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gatedSched(s, 1, gate)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL}

	inflight := mustSubmit(t, c, JobRequest{Machine: "laptop", N: 256, Scheme: "magma"})
	waitState(t, c, inflight.ID, StateRunning)
	queued := mustSubmit(t, c, JobRequest{Machine: "laptop", N: 512, Scheme: "magma"})

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	// Past the deadline the queued job is canceled; release the gate so
	// the in-flight one can finish and the drain converge.
	time.Sleep(100 * time.Millisecond)
	close(gate)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	var info JobInfo
	if err := c.do(http.MethodGet, "/v1/jobs/"+queued.ID, nil, &info); err != nil {
		t.Fatal(err)
	}
	if info.State != StateCanceled {
		t.Fatalf("queued job after deadline drain: %+v", info)
	}
	if err := c.do(http.MethodGet, "/v1/jobs/"+inflight.ID, nil, &info); err != nil {
		t.Fatal(err)
	}
	if info.State != StateDone {
		t.Fatalf("in-flight job after drain: %+v", info)
	}
}

// TestDifferentialHTTPvsLocal is the satellite: the same core.Options
// through the daemon and through a local scheduler (the cmd/abftchol
// -run path) yield byte-identical result and metrics bytes.
func TestDifferentialHTTPvsLocal(t *testing.T) {
	req := JobRequest{Machine: "laptop", N: 768, Scheme: "enhanced", K: 2, Inject: "storage@1,computation@2"}
	o, err := req.Options()
	if err != nil {
		t.Fatal(err)
	}

	// Local half: exactly what cmd/abftchol -run -metrics-out does.
	reg := obs.NewRegistry()
	sink := &experiments.Obs{Metrics: reg}
	pr := experiments.NewScheduler(1, nil).Execute([]core.Options{o}, sink)[0]
	if pr.Err != nil {
		t.Fatal(pr.Err)
	}
	localMetrics, err := reg.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	localResult, err := json.MarshalIndent(experiments.ToWire(pr.Result), "", "  ")
	if err != nil {
		t.Fatal(err)
	}

	// Remote half.
	_, c := newTestServer(t, Config{Workers: 2})
	info := mustSubmit(t, c, req)
	if _, err := c.Wait(info.ID); err != nil {
		t.Fatal(err)
	}
	res, err := c.Result(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	remoteResult, err := json.MarshalIndent(res.Result, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(localResult, remoteResult) {
		t.Fatalf("results differ:\nlocal:\n%s\nremote:\n%s", localResult, remoteResult)
	}
	remoteMetrics, err := c.JobMetrics(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(localMetrics, remoteMetrics) {
		t.Fatalf("metrics differ:\nlocal:\n%s\nremote:\n%s", localMetrics, remoteMetrics)
	}

	// And the fingerprint the daemon reports is the scheduler's.
	if want := experiments.Fingerprint(o); info.Fingerprint != want {
		t.Fatalf("fingerprint %s, want %s", info.Fingerprint, want)
	}
}

// TestRemoteScheduler drives experiments.NewRemoteScheduler through
// the real client against a live daemon — the cmd/abftchol -server
// -exp path.
func TestRemoteScheduler(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 4})
	remote := experiments.NewRemoteScheduler(2, c.RunPoint)
	local := experiments.NewScheduler(1, nil)

	points := []core.Options{}
	for _, n := range []int{512, 768} {
		o, err := JobRequest{Machine: "laptop", N: n, Scheme: "online"}.Options()
		if err != nil {
			t.Fatal(err)
		}
		points = append(points, o)
	}
	// Duplicate point: remote dedup goes through the same memo.
	points = append(points, points[0])

	lres := local.Execute(points, nil)
	rres := remote.Execute(points, nil)
	for i := range points {
		if lres[i].Err != nil || rres[i].Err != nil {
			t.Fatalf("point %d: local %v remote %v", i, lres[i].Err, rres[i].Err)
		}
		lw, _ := json.Marshal(experiments.ToWire(lres[i].Result))
		rw, _ := json.Marshal(experiments.ToWire(rres[i].Result))
		if !bytes.Equal(lw, rw) {
			t.Fatalf("point %d differs:\nlocal  %s\nremote %s", i, lw, rw)
		}
	}
	if rres[2].Executed {
		t.Fatal("duplicate point executed remotely; memo should have served it")
	}

	// A validation error surfaces as the run error, like core.Run.
	bad := points[0]
	bad.N = 333 // not a block multiple
	if pr := remote.Execute([]core.Options{bad}, nil)[0]; pr.Err == nil {
		t.Fatal("invalid options survived the remote round trip")
	} else if lpr := local.Execute([]core.Options{bad}, nil)[0]; lpr.Err == nil ||
		!strings.Contains(pr.Err.Error(), lpr.Err.Error()) {
		t.Fatalf("remote error %q does not carry local error %q", pr.Err, lpr.Err)
	}
}

// TestCacheAsResultStore: a daemon attached to a warm on-disk cache
// serves a repeat job with zero kernel launches.
func TestCacheAsResultStore(t *testing.T) {
	dir := t.TempDir()
	req := smallReq()
	o, err := req.Options()
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache out-of-process (the CLI's -cache path).
	warm := experiments.NewCache(dir)
	if pr := experiments.NewScheduler(1, warm).Execute([]core.Options{o}, nil)[0]; pr.Err != nil {
		t.Fatal(pr.Err)
	}

	_, c := newTestServer(t, Config{Workers: 1, Cache: experiments.NewCache(dir)})
	info := mustSubmit(t, c, req)
	done, err := c.Wait(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone || done.Executed == nil || *done.Executed {
		t.Fatalf("cache-served job should not execute: %+v", done)
	}
	global := fetchMetrics(t, c)
	if got := counter(t, global, "kernel.launches.potf2"); got != 0 {
		t.Fatalf("cache-served job launched %v kernels", got)
	}
	if got := counter(t, global, "sweep.cache.hits"); got != 1 {
		t.Fatalf("sweep.cache.hits = %v", got)
	}
}

func TestRequestOptionRoundTrip(t *testing.T) {
	req := JobRequest{Machine: "tardis", N: 10240, Scheme: "scrub", Variant: "right", K: 3,
		ChecksumVectors: 4, Placement: "cpu", Inject: "storage@4,computation@7", Delta: 2.5, MaxAttempts: 5}
	o, err := req.Options()
	if err != nil {
		t.Fatal(err)
	}
	back, err := RequestFromOptions(o)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := back.Options()
	if err != nil {
		t.Fatal(err)
	}
	if experiments.Fingerprint(o) != experiments.Fingerprint(o2) {
		t.Fatalf("round trip changed the fingerprint:\n%+v\n%+v", o, o2)
	}
	if o2.Scheme != core.SchemeOnlineScrub || o2.Variant != core.RightLooking ||
		o2.Placement != core.PlaceCPU || len(o2.Scenarios) != 2 || o2.Scenarios[0].Delta != 2.5 {
		t.Fatalf("round-tripped options: %+v", o2)
	}

	// Defaults: ConcurrentRecalc nil means on; zero Delta means 1e5.
	o3, err := JobRequest{Machine: "laptop", N: 512, Scheme: "online", Inject: "storage@1"}.Options()
	if err != nil {
		t.Fatal(err)
	}
	if !o3.ConcurrentRecalc || o3.Scenarios[0].Delta != 1e5 {
		t.Fatalf("defaults: %+v", o3)
	}

	// Real-plane options cannot travel.
	bad := o
	bad.Data = mat.RandSPD(64, 1)
	if _, err := RequestFromOptions(bad); err == nil {
		t.Fatal("real-plane options serialized")
	}
}
