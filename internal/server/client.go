package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"abftchol/internal/core"
	"abftchol/internal/reliability/campaign"
)

// Client is the daemon's reference HTTP client; cmd/abftchol's
// -server flag is built on it, and Client.RunPoint plugs into
// experiments.NewRemoteScheduler so whole sweeps execute remotely.
// Polling is server-side (?wait= long-poll), so the client never
// sleeps — it stays within the detorder analyzer's no-wall-clock
// discipline.
type Client struct {
	// Base is the daemon root, e.g. "http://127.0.0.1:8787".
	Base string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
	// Name, when set, is sent as the X-Client header — the daemon's
	// rate-limit key.
	Name string
	// Ctx, when set, scopes every request this client issues —
	// canceling it aborts in-flight exchanges and long-polls. Nil means
	// context.Background(): the client is a root caller (a CLI), not
	// itself on a request path.
	Ctx context.Context
}

func (c *Client) context() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do runs one exchange, decoding the response into out (unless nil)
// and turning error envelopes into *APIError values.
func (c *Client) do(method, path string, body, out interface{}) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("server client: encode %s %s: %w", method, path, err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(c.context(), method, c.Base+path, rd)
	if err != nil {
		return fmt.Errorf("server client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Name != "" {
		req.Header.Set("X-Client", c.Name)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("server client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("server client: read %s %s: %w", method, path, err)
	}
	if resp.StatusCode >= 400 {
		var envelope APIError
		if json.Unmarshal(data, &envelope) == nil && envelope.Err.Code != "" {
			return &envelope
		}
		return fmt.Errorf("server client: %s %s: HTTP %d: %s", method, path, resp.StatusCode, bytes.TrimSpace(data))
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("server client: decode %s %s: %w", method, path, err)
	}
	return nil
}

// Submit posts one job.
func (c *Client) Submit(req JobRequest) (JobInfo, error) {
	var info JobInfo
	err := c.do(http.MethodPost, "/v1/jobs", req, &info)
	return info, err
}

// Wait long-polls the job until it is terminal. Each round trip asks
// the daemon to hold the request up to the server's wait cap; a
// response in a non-terminal state (wait expired, or the daemon is
// draining) simply polls again.
func (c *Client) Wait(id string) (JobInfo, error) {
	for {
		var info JobInfo
		if err := c.do(http.MethodGet, "/v1/jobs/"+id+"?wait=60s", nil, &info); err != nil {
			return info, err
		}
		if info.State.Terminal() {
			return info, nil
		}
	}
}

// Result fetches a done job's result.
func (c *Client) Result(id string) (JobResult, error) {
	var res JobResult
	err := c.do(http.MethodGet, "/v1/jobs/"+id+"/result", nil, &res)
	return res, err
}

// JobMetrics fetches a job's private metrics snapshot — the bytes a
// local run of the same options would have written with -metrics-out.
func (c *Client) JobMetrics(id string) ([]byte, error) {
	return c.raw("/v1/jobs/" + id + "/metrics")
}

// Metrics fetches the daemon's global metrics snapshot.
func (c *Client) Metrics() ([]byte, error) {
	return c.raw("/metrics")
}

// Trace fetches a job's Chrome trace-event timeline.
func (c *Client) Trace(id string) ([]byte, error) {
	return c.raw("/v1/jobs/" + id + "/trace")
}

// Health fetches the daemon health summary.
func (c *Client) Health() (Health, error) {
	var h Health
	err := c.do(http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// raw fetches a non-envelope body (snapshots, traces).
func (c *Client) raw(path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(c.context(), http.MethodGet, c.Base+path, nil)
	if err != nil {
		return nil, fmt.Errorf("server client: %w", err)
	}
	if c.Name != "" {
		req.Header.Set("X-Client", c.Name)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("server client: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("server client: read %s: %w", path, err)
	}
	if resp.StatusCode >= 400 {
		var envelope APIError
		if json.Unmarshal(data, &envelope) == nil && envelope.Err.Code != "" {
			return nil, &envelope
		}
		return nil, fmt.Errorf("server client: GET %s: HTTP %d", path, resp.StatusCode)
	}
	return data, nil
}

// SubmitCampaign submits a reliability campaign config.
func (c *Client) SubmitCampaign(cfg campaign.Config) (CampaignInfo, error) {
	var info CampaignInfo
	err := c.do(http.MethodPost, "/v1/campaigns", cfg, &info)
	return info, err
}

// WaitCampaign long-polls until the campaign reaches a terminal
// state.
func (c *Client) WaitCampaign(id string) (CampaignInfo, error) {
	for {
		var info CampaignInfo
		if err := c.do(http.MethodGet, "/v1/campaigns/"+id+"?wait=60s", nil, &info); err != nil {
			return info, err
		}
		if info.State.Terminal() {
			return info, nil
		}
	}
}

// CampaignReport fetches a done campaign's raw report bytes —
// byte-identical to a local campaign.Run of the same config.
func (c *Client) CampaignReport(id string) ([]byte, error) {
	return c.raw("/v1/campaigns/" + id + "/report")
}

// RunCampaign resolves one campaign through the daemon: submit, wait,
// fetch the canonical report bytes.
func (c *Client) RunCampaign(cfg campaign.Config) ([]byte, error) {
	info, err := c.SubmitCampaign(cfg)
	if err != nil {
		return nil, fmt.Errorf("submit campaign: %w", err)
	}
	info, err = c.WaitCampaign(info.ID)
	if err != nil {
		return nil, fmt.Errorf("wait campaign %s: %w", info.ID, err)
	}
	if info.State != StateDone {
		// Rebuild the classified chain the daemon stored, so a caller's
		// errors.Is(err, context.Canceled) works across the wire.
		if cause := core.ErrorFromCode(info.ErrorCode, info.Error); cause != nil {
			return nil, fmt.Errorf("campaign %s: %w", info.ID, cause)
		}
		return nil, fmt.Errorf("campaign %s ended %s", info.ID, info.State)
	}
	return c.CampaignReport(info.ID)
}

// RunPoint resolves one options point through the daemon: submit,
// wait, fetch. It is the runFn for experiments.NewRemoteScheduler —
// a remote sweep is a local sweep whose kernel invocations happen on
// the other side of this call. A failed job surfaces as the run
// error, exactly as core.Run would have returned it locally.
func (c *Client) RunPoint(o core.Options) (core.Result, error) {
	req, err := RequestFromOptions(o)
	if err != nil {
		return core.Result{}, err
	}
	info, err := c.Submit(req)
	if err != nil {
		return core.Result{}, fmt.Errorf("submit: %w", err)
	}
	info, err = c.Wait(info.ID)
	if err != nil {
		return core.Result{}, fmt.Errorf("wait %s: %w", info.ID, err)
	}
	if info.State != StateDone {
		// ErrorFromCode rebuilds an error satisfying the same typed
		// predicate the daemon-side failure did, while rendering the
		// wire text byte-for-byte — reliability.Classify sees a remote
		// trial exactly as it would a local one.
		if cause := core.ErrorFromCode(info.ErrorCode, info.Error); cause != nil {
			return core.Result{}, cause
		}
		return core.Result{}, fmt.Errorf("job %s ended %s", info.ID, info.State)
	}
	res, err := c.Result(info.ID)
	if err != nil {
		return core.Result{}, fmt.Errorf("result %s: %w", info.ID, err)
	}
	return res.Result.Result(), nil
}
