package server

import (
	"context"
	"strings"
	"testing"

	"abftchol/internal/experiments"
	"abftchol/internal/reliability/campaign"
)

// testCampaignConfig is small enough for an HTTP round trip in test
// time but large enough that every scheme sees struck trials.
func testCampaignConfig() campaign.Config {
	return campaign.Config{
		Schemes:          []string{"magma", "online", "enhanced"},
		Classes:          []string{"storage-offset", "storage-offset-burst"},
		N:                256,
		RatePerIteration: 0.2,
		TrialsPerCell:    12,
		ShardTrials:      4,
		Seed:             31,
	}
}

// TestCampaignDifferentialLocalVsHTTP extends the local-vs-HTTP
// differential battery to the campaign job kind: the same config run
// serially in-process, in parallel in-process, and through a live
// daemon must produce byte-identical report bodies.
func TestCampaignDifferentialLocalVsHTTP(t *testing.T) {
	cfg := testCampaignConfig()

	serialReport, err := campaign.Run(context.Background(), cfg, experiments.NewScheduler(1, nil), campaign.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := serialReport.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	parallelReport, err := campaign.Run(context.Background(), cfg, experiments.NewScheduler(8, nil), campaign.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := parallelReport.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(serial) != string(parallel) {
		t.Fatal("parallel campaign differs from serial")
	}

	_, c := newTestServer(t, Config{Workers: 4})
	remote, err := c.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if string(remote) != string(serial) {
		t.Fatal("daemon campaign report differs from local run")
	}
}

// TestCampaignLifecycleAndDedup covers the wire surface: submit,
// status, fingerprint dedup of an identical config, and the error
// paths of the report endpoint.
func TestCampaignLifecycleAndDedup(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 4})
	cfg := testCampaignConfig()

	info, err := c.SubmitCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(info.ID, "c-") || info.Fingerprint == "" {
		t.Fatalf("submit response: %+v", info)
	}
	if info.Config.TrialsPerCell != cfg.TrialsPerCell {
		t.Fatalf("submit response did not echo the normalized config: %+v", info.Config)
	}

	// An identical config attaches to the same execution.
	dup, err := c.SubmitCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dup.ID != info.ID {
		t.Fatalf("identical config got a new campaign: %s vs %s", dup.ID, info.ID)
	}
	if dup.Attached != 1 {
		t.Fatalf("attached = %d", dup.Attached)
	}
	// A different seed is a different campaign.
	other := cfg
	other.Seed = 99
	fresh, err := c.SubmitCampaign(other)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID == info.ID || fresh.Fingerprint == info.Fingerprint {
		t.Fatal("distinct configs share a campaign")
	}

	done, err := c.WaitCampaign(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone || done.FinishedAt == nil {
		t.Fatalf("terminal campaign: %+v", done)
	}
	report, err := c.CampaignReport(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(report), campaign.ReportKind) {
		t.Fatalf("report body lacks kind marker: %.120s", report)
	}

	// Wire errors: unknown ID, invalid config, unknown fields.
	if _, err := c.CampaignReport("c-999999"); err == nil || !strings.Contains(err.Error(), "no campaign") {
		t.Fatalf("unknown campaign: %v", err)
	}
	if _, err := c.SubmitCampaign(campaign.Config{Schemes: []string{"hybrid"}}); err == nil || !strings.Contains(err.Error(), "unknown scheme") {
		t.Fatalf("invalid config accepted: %v", err)
	}

	// The global metrics snapshot carries the campaign accounting.
	if _, err := c.WaitCampaign(fresh.ID); err != nil {
		t.Fatal(err)
	}
	if got := s.reg.Counter("server.campaigns.submitted"); got != 2 {
		t.Fatalf("campaigns.submitted = %d", got)
	}
	if got := s.reg.Counter("server.campaigns.deduped"); got != 1 {
		t.Fatalf("campaigns.deduped = %d", got)
	}
	if got := s.reg.Counter("campaign.trials.executed"); got == 0 {
		t.Fatal("campaign trial counters did not merge into the global registry")
	}
}
