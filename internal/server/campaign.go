package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"abftchol/internal/experiments"
	"abftchol/internal/obs"
	"abftchol/internal/reliability/campaign"
)

// Campaign jobs: the daemon's second job kind. A reliability campaign
// is submitted as a campaign.Config, keyed by the config's SHA-256
// fingerprint exactly as factorization jobs are keyed by their options
// fingerprint — concurrent submissions of the same campaign attach to
// one execution (the leader) instead of running twice. Campaigns do
// not pass through the bounded job queue: each runs on its own
// execWG-tracked goroutine and its trials contend for CPU inside a
// private scheduler, so a long campaign cannot starve the
// factorization worker pool's queue slots, and graceful drain joins
// it like any in-flight execution.

// campaignJob is one campaign's lifecycle. Mutable fields are guarded
// by Server.mu; changed is closed-and-replaced on every transition.
type campaignJob struct {
	id  string
	fp  string
	cfg campaign.Config // normalized

	state     State
	err       error // terminal cause; classified via ErrorCodeOf
	submitted time.Time
	finished  time.Time
	attached  int // follower submissions deduped onto this campaign
	report    []byte
	changed   chan struct{}
}

// newCampaign registers a campaign (or attaches to the in-flight or
// finished one with the same fingerprint) and starts its execution.
// The bool reports whether the daemon accepted it (false: draining);
// leader is false for deduped followers.
func (s *Server) newCampaign(cfg campaign.Config, fp string) (cj *campaignJob, leader, ok bool) {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, false, false
	}
	if existing, dup := s.campaignsByFP[fp]; dup && existing.state != StateFailed && existing.state != StateCanceled {
		existing.attached++
		s.mu.Unlock()
		return existing, false, true
	}
	s.cseq++
	cj = &campaignJob{
		id:        newCampaignID(s.cseq),
		fp:        fp,
		cfg:       cfg,
		state:     StateRunning,
		submitted: now,
		changed:   make(chan struct{}),
	}
	s.campaigns[cj.id] = cj
	s.campaignsByFP[fp] = cj
	s.mu.Unlock()
	// The Add happens outside mu like process()'s: Shutdown joins HTTP
	// handlers (httpSrv.Shutdown) before it reaches execWG.Wait, so the
	// Add of an accepted campaign always precedes the Wait.
	s.execWG.Add(1)
	go s.execCampaign(s.execCtx, cj)
	return cj, true, true
}

// newCampaignID mirrors the job ID scheme with a distinct prefix.
func newCampaignID(seq int) string {
	return fmt.Sprintf("c-%06d", seq)
}

// execCampaign runs the campaign on a private scheduler — private so
// ten thousand trial fingerprints do not flood the shared scheduler's
// memoization map or the on-disk cache — and publishes the canonical
// report bytes. Campaign metrics record into a private registry and
// merge into the global one, mirroring execJob. ctx is the daemon's
// execCtx: a shutdown deadline cancels it, campaign.Run stops at the
// next shard boundary, and the campaign lands in the canceled state
// (the journal, when configured, keeps completed shards).
func (s *Server) execCampaign(ctx context.Context, cj *campaignJob) {
	defer s.execWG.Done()
	sink := obs.NewRegistry()
	sched := experiments.NewScheduler(s.cfg.Workers, nil)
	report, err := campaign.Run(ctx, cj.cfg, sched, campaign.RunOptions{Metrics: sink})
	var data []byte
	if err == nil {
		data, err = report.Marshal()
	}
	s.reg.Merge(sink)

	now := s.cfg.Clock.Now()
	s.mu.Lock()
	cj.finished = now
	switch {
	case errors.Is(err, context.Canceled):
		cj.state = StateCanceled
		cj.err = fmt.Errorf("%w: %w", errCanceled, err)
	case err != nil:
		cj.state = StateFailed
		cj.err = err
	default:
		cj.state = StateDone
		cj.report = data
	}
	close(cj.changed)
	cj.changed = make(chan struct{})
	s.mu.Unlock()
}

// campaignInfoLocked renders a campaign's status body. Callers hold
// s.mu.
func (s *Server) campaignInfoLocked(cj *campaignJob) CampaignInfo {
	info := CampaignInfo{
		ID:          cj.id,
		State:       cj.state,
		Fingerprint: cj.fp,
		Config:      cj.cfg,
		Attached:    cj.attached,
		SubmittedAt: cj.submitted,
		Error:       errorText(cj.err),
		ErrorCode:   ErrorCodeOf(cj.err),
	}
	if !cj.finished.IsZero() {
		t := cj.finished
		info.FinishedAt = &t
	}
	return info
}

func (s *Server) handleCampaignSubmit(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		failJSON(w, http.StatusServiceUnavailable, "draining", "daemon is shutting down; submissions are closed")
		return
	}
	if s.limiter != nil {
		if ok, retry := s.limiter.allow(clientKey(r)); !ok {
			s.reg.Inc("server.jobs.rejected.rate")
			w.Header().Set("Retry-After", strconv.Itoa(retrySeconds(retry)))
			failJSON(w, http.StatusTooManyRequests, "rate_limited", "client %q exhausted its token bucket; retry after %d s", clientKey(r), retrySeconds(retry))
			return
		}
	}
	var cfg campaign.Config
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		failJSON(w, http.StatusBadRequest, "invalid_request", "decode body: %v", err)
		return
	}
	norm, err := cfg.Normalize()
	if err != nil {
		failJSON(w, http.StatusBadRequest, "invalid_request", "%v", err)
		return
	}
	fp, err := norm.Fingerprint()
	if err != nil {
		failJSON(w, http.StatusBadRequest, "invalid_request", "%v", err)
		return
	}
	cj, leader, ok := s.newCampaign(norm, fp)
	if !ok {
		failJSON(w, http.StatusServiceUnavailable, "draining", "daemon is shutting down; submissions are closed")
		return
	}
	if leader {
		s.reg.Inc("server.campaigns.submitted")
	} else {
		s.reg.Inc("server.campaigns.deduped")
	}
	s.mu.Lock()
	info := s.campaignInfoLocked(cj)
	s.mu.Unlock()
	w.Header().Set("Location", "/v1/campaigns/"+cj.id)
	writeJSON(w, http.StatusAccepted, info)
}

// lookupCampaign resolves a path's campaign ID, writing the 404
// itself on a miss.
func (s *Server) lookupCampaign(w http.ResponseWriter, r *http.Request) (*campaignJob, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	cj, ok := s.campaigns[id]
	s.mu.Unlock()
	if !ok {
		failJSON(w, http.StatusNotFound, "unknown_campaign", "no campaign %q (IDs do not survive daemon restarts)", id)
	}
	return cj, ok
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	cj, ok := s.lookupCampaign(w, r)
	if !ok {
		return
	}
	var wait time.Duration
	if wq := r.URL.Query().Get("wait"); wq != "" {
		d, err := time.ParseDuration(wq)
		if err != nil || d < 0 {
			failJSON(w, http.StatusBadRequest, "invalid_request", "bad wait %q: want a duration like 30s", wq)
			return
		}
		if d > maxWait {
			d = maxWait
		}
		wait = d
	}
	var expired <-chan time.Time
	if wait > 0 {
		expired = s.cfg.Clock.After(wait)
	}
	for {
		s.mu.Lock()
		info := s.campaignInfoLocked(cj)
		ch := cj.changed
		s.mu.Unlock()
		if wait == 0 || info.State.Terminal() {
			writeJSON(w, http.StatusOK, info)
			return
		}
		select {
		case <-ch:
			// state moved; re-snapshot
		case <-expired:
			writeJSON(w, http.StatusOK, info)
			return
		case <-s.quit:
			writeJSON(w, http.StatusOK, info)
			return
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCampaignReport(w http.ResponseWriter, r *http.Request) {
	cj, ok := s.lookupCampaign(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	state, errMsg, report := cj.state, errorText(cj.err), cj.report
	s.mu.Unlock()
	switch {
	case state == StateFailed:
		failJSON(w, http.StatusConflict, "job_failed", "campaign %s failed: %s", cj.id, errMsg)
	case state == StateCanceled:
		failJSON(w, http.StatusConflict, "job_failed", "campaign %s was canceled: %s", cj.id, errMsg)
	case state != StateDone:
		failJSON(w, http.StatusConflict, "not_finished", "campaign %s is %s; the report needs state done", cj.id, state)
	default:
		// The raw canonical bytes — byte-identical to a local
		// campaign.Run of the same config (the differential test pins
		// this).
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(report)
	}
}
