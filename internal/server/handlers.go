package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"time"

	"abftchol/internal/experiments"
	"abftchol/internal/obs"
)

// Route documents one endpoint; docs/SERVICE.md renders this table
// and the drift test pins the two together.
type Route struct {
	Method  string
	Pattern string
	Summary string
}

// Routes is the daemon's full API surface, in registration order.
func Routes() []Route {
	return []Route{
		{"GET", "/healthz", "liveness, queue occupancy, and per-state job counts"},
		{"GET", "/metrics", "global metrics snapshot: every job's kernel counters merged, plus the server.* counters"},
		{"POST", "/v1/jobs", "submit a factorization job; responds 202 with the job status and a Location header"},
		{"GET", "/v1/jobs", "list all jobs in submission order"},
		{"GET", "/v1/jobs/{id}", "job status; `?wait=30s` long-polls until the job is terminal or the wait expires"},
		{"DELETE", "/v1/jobs/{id}", "cancel a queued job (running factorizations are not preemptible)"},
		{"GET", "/v1/jobs/{id}/events", "Server-Sent Events stream of state transitions, ending at the terminal state"},
		{"GET", "/v1/jobs/{id}/result", "the factorization result (jobs in state done)"},
		{"GET", "/v1/jobs/{id}/metrics", "this job's private metrics snapshot — byte-identical to a local run's -metrics-out"},
		{"GET", "/v1/jobs/{id}/trace", "Chrome/Perfetto trace-event timeline (jobs submitted with \"trace\": true)"},
		{"POST", "/v1/campaigns", "submit a reliability campaign (a campaign.Config body); identical configs dedup onto one execution by fingerprint"},
		{"GET", "/v1/campaigns/{id}", "campaign status; `?wait=30s` long-polls until the campaign is terminal or the wait expires"},
		{"GET", "/v1/campaigns/{id}/report", "the aggregated coverage report — byte-identical to a local campaign run of the same config"},
	}
}

// maxWait caps ?wait= long-polls; clients re-poll, the connection is
// not a lease.
const maxWait = 60 * time.Second

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/metrics", s.handleJobMetrics)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("POST /v1/campaigns", s.handleCampaignSubmit)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleCampaign)
	mux.HandleFunc("GET /v1/campaigns/{id}/report", s.handleCampaignReport)
	return mux
}

// writeJSON renders v indented; every body the daemon emits is
// deterministic given a deterministic clock, which is what lets
// docs/SERVICE.md embed real captured exchanges.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		// v is one of the closed wire structs; failure is programmer error.
		fmt.Fprintf(w, "{\"error\":{\"code\":\"internal\",\"message\":%q}}\n", err.Error())
		return
	}
	w.Write(append(data, '\n'))
}

// fail writes the error envelope.
func failJSON(w http.ResponseWriter, status int, code, format string, args ...interface{}) {
	writeJSON(w, status, &APIError{Err: ErrorBody{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// clientKey identifies a submitter for rate limiting: the X-Client
// header when present, else the remote host.
func clientKey(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		failJSON(w, http.StatusServiceUnavailable, "draining", "daemon is shutting down; submissions are closed")
		return
	}
	if s.limiter != nil {
		if ok, retry := s.limiter.allow(clientKey(r)); !ok {
			s.reg.Inc("server.jobs.rejected.rate")
			w.Header().Set("Retry-After", strconv.Itoa(retrySeconds(retry)))
			failJSON(w, http.StatusTooManyRequests, "rate_limited", "client %q exhausted its token bucket; retry after %d s", clientKey(r), retrySeconds(retry))
			return
		}
	}
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		failJSON(w, http.StatusBadRequest, "invalid_request", "decode body: %v", err)
		return
	}
	opts, err := req.Options()
	if err != nil {
		failJSON(w, http.StatusBadRequest, "invalid_request", "%v", err)
		return
	}
	fp := experiments.Fingerprint(opts)
	j, ok := s.newJob(req, opts, fp)
	if !ok {
		failJSON(w, http.StatusServiceUnavailable, "draining", "daemon is shutting down; submissions are closed")
		return
	}
	select {
	case s.queue <- j:
	default:
		s.dropJob(j)
		s.reg.Inc("server.jobs.rejected.queue")
		w.Header().Set("Retry-After", "1")
		failJSON(w, http.StatusTooManyRequests, "queue_full", "job queue is at capacity (%d); retry after 1 s", s.cfg.QueueDepth)
		return
	}
	s.reg.Inc("server.jobs.submitted")
	s.mu.Lock()
	info := s.infoLocked(j)
	s.mu.Unlock()
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, info)
}

// retrySeconds rounds a wait up to whole header seconds (minimum 1).
func retrySeconds(d time.Duration) int {
	sec := int((d + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	return sec
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	infos := make([]JobInfo, 0, len(s.jobs))
	for _, j := range s.jobs {
		infos = append(infos, s.infoLocked(j))
	}
	s.mu.Unlock()
	sort.Slice(infos, func(i, k int) bool { return infos[i].ID < infos[k].ID })
	writeJSON(w, http.StatusOK, JobList{Jobs: infos})
}

// lookup resolves a path's job ID, writing the 404 itself on a miss.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		failJSON(w, http.StatusNotFound, "unknown_job", "no job %q (IDs do not survive daemon restarts)", id)
	}
	return j, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var wait time.Duration
	if wq := r.URL.Query().Get("wait"); wq != "" {
		d, err := time.ParseDuration(wq)
		if err != nil || d < 0 {
			failJSON(w, http.StatusBadRequest, "invalid_request", "bad wait %q: want a duration like 30s", wq)
			return
		}
		if d > maxWait {
			d = maxWait
		}
		wait = d
	}
	var expired <-chan time.Time
	if wait > 0 {
		expired = s.cfg.Clock.After(wait)
	}
	for {
		s.mu.Lock()
		info := s.infoLocked(j)
		ch := j.changed
		s.mu.Unlock()
		if wait == 0 || info.State.Terminal() {
			writeJSON(w, http.StatusOK, info)
			return
		}
		select {
		case <-ch:
			// state moved; re-snapshot
		case <-expired:
			writeJSON(w, http.StatusOK, info)
			return
		case <-s.quit:
			writeJSON(w, http.StatusOK, info)
			return
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	if j.state != StateQueued {
		state := j.state
		s.mu.Unlock()
		failJSON(w, http.StatusConflict, "not_cancelable", "job %s is %s; only queued jobs can be canceled", j.id, state)
		return
	}
	j.state = StateCanceled
	j.err = fmt.Errorf("%w by client", errCanceled)
	j.finished = now
	s.broadcastLocked(j)
	info := s.infoLocked(j)
	s.mu.Unlock()
	s.reg.Inc("server.jobs.canceled")
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	idx := 0
	for {
		s.mu.Lock()
		events := append([]stateEvent(nil), j.history[idx:]...)
		ch := j.changed
		terminal := j.state.Terminal()
		s.mu.Unlock()
		idx += len(events)
		for _, ev := range events {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.State, data)
		}
		if len(events) > 0 && canFlush {
			fl.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-ch:
		case <-s.quit:
			return
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	state := j.state
	executed := j.executed
	res := j.result
	errMsg := errorText(j.err)
	s.mu.Unlock()
	switch {
	case state == StateDone:
		writeJSON(w, http.StatusOK, JobResult{
			ID: j.id, Fingerprint: j.fp, Executed: executed,
			Result: experiments.ToWire(res),
		})
	case state.Terminal():
		failJSON(w, http.StatusConflict, "job_failed", "job %s %s: %s", j.id, state, errMsg)
	default:
		failJSON(w, http.StatusConflict, "not_finished", "job %s is %s; poll /v1/jobs/%s?wait=30s until done", j.id, state, j.id)
	}
}

func (s *Server) handleJobMetrics(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	snap := j.metrics
	state := j.state
	errMsg := errorText(j.err)
	s.mu.Unlock()
	switch {
	case snap != nil:
		w.Header().Set("Content-Type", "application/json")
		w.Write(snap)
	case state.Terminal():
		failJSON(w, http.StatusConflict, "job_failed", "job %s %s before recording metrics: %s", j.id, state, errMsg)
	default:
		failJSON(w, http.StatusConflict, "not_finished", "job %s is %s; metrics exist once the job is terminal", j.id, state)
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	tr := j.trace
	state := j.state
	n, k := j.opts.N, j.opts.K
	scheme := j.req.Scheme
	s.mu.Unlock()
	switch {
	case tr != nil:
		w.Header().Set("Content-Type", "application/json")
		obs.WriteChromeTrace(w, tr, map[string]string{
			"tool": "abftd",
			"job":  j.id,
			"run":  fmt.Sprintf("%s n=%d K=%d", scheme, n, k),
		})
	case !state.Terminal():
		failJSON(w, http.StatusConflict, "not_finished", "job %s is %s; the trace exists once the job is done", j.id, state)
	default:
		failJSON(w, http.StatusNotFound, "no_trace", "job %s recorded no timeline; submit with \"trace\": true", j.id)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap, err := s.reg.Snapshot()
	if err != nil {
		failJSON(w, http.StatusInternalServerError, "internal", "metrics snapshot: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(snap)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	depth := len(s.queue)
	s.mu.Lock()
	counts := make(map[State]int)
	for _, j := range s.jobs {
		counts[j.state]++
	}
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, Health{
		Status:        status,
		Workers:       s.cfg.Workers,
		QueueDepth:    depth,
		QueueCapacity: s.cfg.QueueDepth,
		Jobs:          counts,
	})
}
