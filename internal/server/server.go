// Package server is the ABFT-as-a-service layer: a small HTTP+JSON
// daemon (cmd/abftd) that accepts factorization jobs, executes them on
// the sweep engine's scheduler, and serves results, traces, and
// metrics. The request plane deliberately owns nothing numerical — a
// job is parsed into the same core.Options a CLI run builds, its
// identity is the scheduler's canonical fingerprint, and its result is
// the cache's wire form — so serving a point over HTTP is
// byte-equivalent to running it locally (the differential tests pin
// this).
//
// Concurrency shape: submissions pass admission control (a token
// bucket per client, then a bounded queue) and park as queued jobs; a
// fixed worker pool drains the queue, running each job through one
// shared experiments.Scheduler, whose singleflight memoization merges
// identical concurrent submissions into one execution. All wall-clock
// access goes through an injected Clock so the package stays inside
// the detorder analyzer's scope; cmd/abftd wires the real clock.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"abftchol/internal/core"
	"abftchol/internal/experiments"
	"abftchol/internal/hetsim"
	"abftchol/internal/obs"
)

// Clock abstracts the two time operations the daemon needs. The
// detorder analyzer bans direct wall-clock reads in this package
// (deterministic-output discipline); production wiring lives in
// cmd/abftd (RealClock there), and tests or documentation generators
// substitute fixed clocks to make whole HTTP sessions reproducible.
type Clock struct {
	Now   func() time.Time
	After func(time.Duration) <-chan time.Time
}

// Config parameterizes a daemon.
type Config struct {
	// Workers bounds concurrent factorizations (<= 0 means 4).
	Workers int
	// QueueDepth bounds accepted-but-unstarted jobs (<= 0 means 64);
	// submissions beyond it are rejected with 429 queue_full.
	QueueDepth int
	// JobTimeout bounds a job's life from submission; 0 means none. An
	// expired job is failed (the factorization itself, once started, is
	// not preemptible — its goroutine is joined at shutdown).
	JobTimeout time.Duration
	// RatePerSec and RateBurst configure the per-client token bucket
	// (keyed by X-Client header, else the remote host). RatePerSec <= 0
	// disables rate limiting; RateBurst <= 0 defaults to 8.
	RatePerSec float64
	RateBurst  int
	// Cache, when set, is the on-disk result store shared with the CLI:
	// a job whose fingerprint was ever executed — by any process — is
	// served without running a kernel.
	Cache *experiments.Cache
	// Clock is required (see type comment).
	Clock Clock
	// MetricsPath, when set, receives the global registry snapshot on
	// shutdown — the "flush metrics" half of graceful drain.
	MetricsPath string
}

// errCanceled and errTimeout root the daemon's own terminal reasons.
// Every cancellation or deadline failure the request plane produces
// wraps one of these with %w, so the stored cause stays a classified
// chain (ErrorCodeOf maps it onto a wire code) while the rendered
// message keeps its historical spelling. They are deliberately fresh
// sentinels, not wrappers around context.Canceled/DeadlineExceeded:
// daemon-initiated cancellation is a policy decision, not a context
// tree collapsing, and the two must stay distinguishable in tests.
var (
	errCanceled = errors.New("canceled")
	errTimeout  = errors.New("timeout")
)

// errorText renders a job's stored cause for wire bodies; a nil error
// is the empty string (the job has not failed).
func errorText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// ErrorCodeOf maps a job's stored cause onto its wire code: the
// daemon's own sentinels first (canceled/timeout), then the core
// outcome taxonomy, then "internal" for anything unclassified. Nil
// maps to "" (no failure).
func ErrorCodeOf(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, errCanceled):
		return core.CodeCanceled
	case errors.Is(err, errTimeout):
		return core.CodeTimeout
	}
	if code := core.OutcomeCode(err); code != "" {
		return code
	}
	return CodeInternalError
}

// stateEvent is one lifecycle transition, kept per job for the SSE
// stream.
type stateEvent struct {
	State State     `json:"state"`
	Time  time.Time `json:"time"`
	Error string    `json:"error,omitempty"`
}

// job is one submission's full lifecycle. All mutable fields are
// guarded by Server.mu; execDone is closed by the executing goroutine
// and changed is closed-and-replaced on every transition (a broadcast
// that long-polls and SSE streams select on).
type job struct {
	id   string
	fp   string
	req  JobRequest
	opts core.Options

	state     State
	err       error // terminal cause; classified via ErrorCodeOf
	submitted time.Time
	started   time.Time
	finished  time.Time
	executed  bool
	result    core.Result
	metrics   []byte // this job's private registry snapshot
	trace     *hetsim.Trace
	history   []stateEvent
	changed   chan struct{}
	execDone  chan struct{}
}

// Server is the daemon: an HTTP handler plus the worker pool behind
// it. Construct with New, serve with Serve (or mount Handler in a test
// server), and always Shutdown — the workers are live goroutines.
type Server struct {
	cfg     Config
	sched   *experiments.Scheduler
	reg     *obs.Registry // global /metrics registry; jobs merge in on completion
	limiter *rateLimiter
	queue   chan *job
	quit    chan struct{} // closed by Shutdown: stop accepting, drain
	httpSrv *http.Server
	mux     *http.ServeMux

	workerWG sync.WaitGroup // the fixed worker pool
	execWG   sync.WaitGroup // in-flight factorizations (may outlive their worker on timeout)

	// execCtx scopes daemon-owned executions that can observe
	// cancellation mid-flight (campaign shard loops); cancelExec fires
	// when a shutdown deadline expires. Factorizations are not
	// preemptible and ignore it.
	execCtx    context.Context
	cancelExec context.CancelFunc

	mu            sync.Mutex // guards: jobs, seq, campaigns, campaignsByFP, cseq, draining
	jobs          map[string]*job
	seq           int
	campaigns     map[string]*campaignJob
	campaignsByFP map[string]*campaignJob
	cseq          int
	draining      bool
}

// New builds a daemon and starts its worker pool. The caller owns the
// lifecycle: Serve (or Handler) to expose it, Shutdown to drain it.
func New(cfg Config) (*Server, error) {
	if cfg.Clock.Now == nil || cfg.Clock.After == nil {
		return nil, fmt.Errorf("server: Config.Clock is required (cmd/abftd wires the real clock; tests inject fixed ones)")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.RateBurst <= 0 {
		cfg.RateBurst = 8
	}
	s := &Server{
		cfg:           cfg,
		sched:         experiments.NewScheduler(cfg.Workers, cfg.Cache),
		reg:           obs.NewRegistry(),
		queue:         make(chan *job, cfg.QueueDepth),
		quit:          make(chan struct{}),
		jobs:          make(map[string]*job),
		campaigns:     make(map[string]*campaignJob),
		campaignsByFP: make(map[string]*campaignJob),
	}
	// Background is correct here: New is the root of the daemon's
	// lifetime, not a request path; Shutdown owns the cancel.
	s.execCtx, s.cancelExec = context.WithCancel(context.Background())
	if cfg.RatePerSec > 0 {
		s.limiter = newRateLimiter(cfg.RatePerSec, float64(cfg.RateBurst), cfg.Clock.Now)
	}
	s.mux = s.routes()
	s.httpSrv = &http.Server{Handler: s.mux}
	s.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Handler returns the daemon's HTTP handler, for mounting in tests
// without a listener.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until Shutdown. A closed-listener
// exit is a clean return, not an error.
func (s *Server) Serve(ln net.Listener) error {
	err := s.httpSrv.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown is the graceful drain: mark draining (submissions get 503),
// close the listener and wait for in-flight handlers, let the workers
// finish every job already accepted, then flush the metrics snapshot.
// If ctx expires first, still-queued jobs are canceled so the drain
// converges (running factorizations are joined regardless — core.Run
// always terminates). Safe to call once; later calls return nil
// immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()
	close(s.quit)

	// Listener first: stop accepting. Long-polls and SSE streams select
	// on quit, so handlers return promptly.
	httpErr := s.httpSrv.Shutdown(ctx)

	finished := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		// A submission racing the quit signal can land in the queue
		// after every worker saw it empty and exited; the listener is
		// closed so the queue is final — drain any such straggler.
		// (Canceled-by-deadline jobs pass through here too and are
		// skipped by claimRunning.)
	drain:
		for {
			select {
			case j := <-s.queue:
				s.process(j)
			default:
				break drain
			}
		}
		s.execWG.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-ctx.Done():
		// Deadline expired: stop campaign shard loops at their next
		// boundary, cancel still-queued jobs, then join what remains.
		s.cancelExec()
		s.cancelQueued(fmt.Errorf("%w: daemon shutdown deadline expired before the job started", errCanceled))
		<-finished //nolint:ctxcheck // execWG converges: factorizations always terminate and canceled campaigns stop at the next shard boundary
	}
	s.cancelExec()
	// Anything still queued lost the submit/drain race and will never
	// be picked up; give it a terminal state so watchers unblock.
	s.cancelQueued(fmt.Errorf("%w: daemon shut down before the job started", errCanceled))

	if s.cfg.MetricsPath != "" {
		snap, err := s.reg.Snapshot()
		if err == nil {
			err = os.WriteFile(s.cfg.MetricsPath, snap, 0o644)
		}
		if err != nil && httpErr == nil {
			httpErr = fmt.Errorf("server: metrics flush: %w", err)
		}
	}
	return httpErr
}

// Metrics returns the global registry snapshot (the /metrics body).
func (s *Server) Metrics() ([]byte, error) { return s.reg.Snapshot() }

// worker drains the queue until quit, then drains whatever was already
// accepted and exits.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		select {
		case j := <-s.queue:
			s.process(j)
		case <-s.quit:
			for {
				select {
				case j := <-s.queue:
					s.process(j)
				default:
					return
				}
			}
		}
	}
}

// process runs one dequeued job: claim it (it may have been canceled
// while queued, or its deadline may have passed), execute on a
// tracked goroutine, and wait for completion or the deadline —
// whichever first. On timeout the job is failed and the worker moves
// on; the factorization goroutine finishes in the background and is
// joined by Shutdown via execWG.
func (s *Server) process(j *job) {
	now := s.cfg.Clock.Now()
	var deadline time.Time
	if s.cfg.JobTimeout > 0 {
		deadline = j.submitted.Add(s.cfg.JobTimeout)
		if !now.Before(deadline) {
			s.fail(j, StateQueued, fmt.Errorf("%w: job expired while queued", errTimeout))
			return
		}
	}
	if !s.claimRunning(j, now) {
		return // canceled while queued
	}
	s.execWG.Add(1)
	go s.execJob(j)
	if deadline.IsZero() {
		<-j.execDone
		return
	}
	select {
	case <-j.execDone:
	case <-s.cfg.Clock.After(deadline.Sub(now)):
		s.fail(j, StateRunning, fmt.Errorf("%w: exceeded the %s job deadline", errTimeout, s.cfg.JobTimeout))
	}
}

// execJob performs the factorization through the shared scheduler and
// publishes the outcome. Each job records into a private registry —
// that snapshot is the job's /metrics body, byte-identical to what a
// local CLI run of the same options would have written — and the
// delta merges into the global registry afterwards. A job that lost a
// timeout race keeps its failed state; the execution's metrics still
// merge (the work did happen).
func (s *Server) execJob(j *job) {
	defer s.execWG.Done()
	defer close(j.execDone)
	sink := &experiments.Obs{Metrics: obs.NewRegistry(), CaptureTrace: j.opts.Trace}
	pr := s.sched.Execute([]core.Options{j.opts}, sink)[0]
	snap, snapErr := sink.Metrics.Snapshot()
	tr, _ := sink.LastTrace()

	s.reg.Merge(sink.Metrics)
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	transitioned := j.state == StateRunning
	if transitioned {
		j.executed = pr.Executed
		j.metrics = snap
		j.trace = tr
		j.result = pr.Result
		j.finished = now
		switch {
		case snapErr != nil:
			j.state = StateFailed
			j.err = fmt.Errorf("metrics snapshot: %w", snapErr)
		case pr.Err != nil:
			// Stored as the error itself, not its rendered text, so the
			// core taxonomy predicates still classify it (ErrorCodeOf
			// derives the wire code at serving time).
			j.state = StateFailed
			j.err = pr.Err
		default:
			j.state = StateDone
		}
		s.broadcastLocked(j)
	}
	state, executed := j.state, j.executed
	s.mu.Unlock()

	if !transitioned {
		return // lost a timeout race; fail() already accounted it
	}
	switch {
	case state == StateDone && executed:
		s.reg.Inc("server.jobs.done")
	case state == StateDone:
		s.reg.Inc("server.jobs.done")
		s.reg.Inc("server.jobs.deduped")
	case state == StateFailed:
		s.reg.Inc("server.jobs.failed")
	}
}

// claimRunning moves a queued job to running; false means the job was
// already terminal (canceled or timed out while queued).
func (s *Server) claimRunning(j *job, now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = now
	s.broadcastLocked(j)
	return true
}

// fail moves a job from the given state to failed with the cause;
// a job already past that state is left alone (e.g. the execution
// finished in the instant the deadline fired).
func (s *Server) fail(j *job, from State, cause error) {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	if j.state != from {
		s.mu.Unlock()
		return
	}
	j.state = StateFailed
	j.err = cause
	j.finished = now
	s.broadcastLocked(j)
	s.mu.Unlock()
	s.reg.Inc("server.jobs.failed")
}

// cancelQueued cancels every still-queued job (the shutdown-deadline
// path).
func (s *Server) cancelQueued(cause error) {
	now := s.cfg.Clock.Now()
	var n int64
	s.mu.Lock()
	for _, j := range s.jobs {
		if j.state == StateQueued {
			j.state = StateCanceled
			j.err = cause
			j.finished = now
			s.broadcastLocked(j)
			n++
		}
	}
	s.mu.Unlock()
	if n > 0 {
		s.reg.Add("server.jobs.canceled", n)
	}
}

// broadcastLocked records the transition and wakes every watcher.
// Callers hold s.mu.
func (s *Server) broadcastLocked(j *job) {
	t := j.started
	if j.state.Terminal() {
		t = j.finished
	}
	j.history = append(j.history, stateEvent{State: j.state, Time: t, Error: errorText(j.err)})
	close(j.changed)
	j.changed = make(chan struct{})
}

// infoLocked renders a job's status body. Callers hold s.mu.
func (s *Server) infoLocked(j *job) JobInfo {
	info := JobInfo{
		ID:          j.id,
		State:       j.state,
		Fingerprint: j.fp,
		Scheme:      j.req.Scheme,
		Machine:     j.req.Machine,
		N:           j.opts.N,
		SubmittedAt: j.submitted,
		Error:       errorText(j.err),
		ErrorCode:   ErrorCodeOf(j.err),
	}
	if info.Machine == "" && j.req.Profile != nil {
		info.Machine = j.req.Profile.Name
	}
	if !j.started.IsZero() {
		t := j.started
		info.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		info.FinishedAt = &t
	}
	if j.state == StateDone || (j.state == StateFailed && j.metrics != nil) {
		e := j.executed
		info.Executed = &e
	}
	return info
}

// newJob registers a submission under the next ID and returns it, or
// false when the daemon is draining.
func (s *Server) newJob(req JobRequest, opts core.Options, fp string) (*job, bool) {
	now := s.cfg.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false
	}
	s.seq++
	j := &job{
		id:        fmt.Sprintf("j-%06d", s.seq),
		fp:        fp,
		req:       req,
		opts:      opts,
		state:     StateQueued,
		submitted: now,
		changed:   make(chan struct{}),
		execDone:  make(chan struct{}),
	}
	j.history = append(j.history, stateEvent{State: StateQueued, Time: now})
	s.jobs[j.id] = j
	return j, true
}

// dropJob removes a job that never made it into the queue.
func (s *Server) dropJob(j *job) {
	s.mu.Lock()
	delete(s.jobs, j.id)
	s.mu.Unlock()
}
