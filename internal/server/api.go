package server

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"abftchol/internal/core"
	"abftchol/internal/experiments"
	"abftchol/internal/fault"
	"abftchol/internal/hetsim"
	"abftchol/internal/reliability/campaign"
)

// JobRequest is the body of POST /v1/jobs: one factorization point,
// spelled the way cmd/abftchol's -run flags spell it. Machine/Profile,
// N, and Scheme identify the run; everything else has the CLI's
// defaults. The request maps losslessly onto core.Options
// (Options()), so a job's canonical fingerprint — and therefore its
// dedup and cache identity — is computed by the same code path the
// sweep engine uses.
type JobRequest struct {
	// Machine names a stock profile (tardis, bulldozer64, laptop).
	// Profile, when set, carries a full machine description instead and
	// takes precedence — this is how remote sweeps ship modified
	// profiles without the server needing to know them by name.
	Machine string          `json:"machine,omitempty"`
	Profile *hetsim.Profile `json:"profile,omitempty"`
	// N is the matrix dimension (a multiple of the block size).
	N int `json:"n"`
	// BlockSize overrides the profile's block size when > 0.
	BlockSize int `json:"block_size,omitempty"`
	// Scheme is the fault-tolerance variant: magma, cula, offline,
	// online, enhanced, or scrub.
	Scheme string `json:"scheme"`
	// Variant is the blocked formulation: left (default) or right.
	Variant string `json:"variant,omitempty"`
	// K is Optimization 3's verification interval (default 1).
	K int `json:"k,omitempty"`
	// ChecksumVectors is the checksum row count per block (default 2).
	ChecksumVectors int `json:"checksum_vectors,omitempty"`
	// ConcurrentRecalc toggles Optimization 1; absent means on, the
	// CLI's -run default.
	ConcurrentRecalc *bool `json:"concurrent_recalc,omitempty"`
	// Placement is Optimization 2's choice: auto (default), cpu, gpu,
	// or inline.
	Placement string `json:"placement,omitempty"`
	// Inject lists soft errors in the CLI's spelling, e.g.
	// "storage@4,computation@7"; Delta is their magnitude (default
	// 1e5). Scenarios carries fully specified injections instead;
	// setting both is an error.
	Inject    string           `json:"inject,omitempty"`
	Delta     float64          `json:"delta,omitempty"`
	Scenarios []fault.Scenario `json:"scenarios,omitempty"`
	// MaxAttempts bounds the restart loop (default 3).
	MaxAttempts int `json:"max_attempts,omitempty"`
	// Trace records the run's timeline for GET /v1/jobs/{id}/trace.
	// Traced points are never served from the disk cache (entries hold
	// no timeline), though a deduplicated point is re-run once purely
	// for the recording.
	Trace bool `json:"trace,omitempty"`
}

// SchemeKey returns the request spelling of a scheme — the same words
// the CLI's -scheme flag takes (core owns the canonical table).
func SchemeKey(s core.Scheme) string {
	return core.SchemeKey(s)
}

// ParseScheme resolves the request (and CLI -scheme flag) spelling of
// a fault-tolerance scheme.
func ParseScheme(s string) (core.Scheme, error) {
	return core.ParseScheme(s)
}

// ParsePlacement resolves the request (and CLI -placement flag)
// spelling of Optimization 2's placement choice.
func ParsePlacement(s string) (core.Placement, error) {
	switch strings.ToLower(s) {
	case "", "auto":
		return core.PlaceAuto, nil
	case "cpu":
		return core.PlaceCPU, nil
	case "gpu":
		return core.PlaceGPU, nil
	case "inline":
		return core.PlaceInline, nil
	}
	return 0, fmt.Errorf("unknown placement %q", s)
}

// ParseVariant resolves the request (and CLI -variant flag) spelling
// of the blocked formulation.
func ParseVariant(s string) (core.Variant, error) {
	switch strings.ToLower(s) {
	case "", "left", "inner":
		return core.LeftLooking, nil
	case "right", "outer":
		return core.RightLooking, nil
	}
	return 0, fmt.Errorf("unknown variant %q (want left or right)", s)
}

// ParseInjections parses the CLI's comma-separated kind@iter error
// list; delta is the injected magnitude applied to every scenario.
func ParseInjections(spec string, delta float64) ([]fault.Scenario, error) {
	if spec == "" {
		return nil, nil
	}
	var out []fault.Scenario
	for _, part := range strings.Split(spec, ",") {
		kindIter := strings.SplitN(strings.TrimSpace(part), "@", 2)
		if len(kindIter) != 2 {
			return nil, fmt.Errorf("bad injection %q, want kind@iter", part)
		}
		iter, err := strconv.Atoi(kindIter[1])
		if err != nil {
			return nil, fmt.Errorf("bad injection iteration in %q: %v", part, err)
		}
		var sc fault.Scenario
		switch strings.ToLower(kindIter[0]) {
		case "storage", "memory":
			sc = fault.DefaultStorage(iter)
		case "computation", "compute":
			sc = fault.DefaultComputation(iter)
		default:
			return nil, fmt.Errorf("bad injection kind %q (want storage or computation)", kindIter[0])
		}
		sc.Delta = delta
		out = append(out, sc)
	}
	return out, nil
}

// Options maps the request onto a core.Options point, applying the
// CLI's defaults. Validation of the point itself (N vs block size,
// vector counts) stays with core.Run; only request-shape errors are
// reported here.
func (r JobRequest) Options() (core.Options, error) {
	var o core.Options
	switch {
	case r.Profile != nil:
		o.Profile = *r.Profile
	case r.Machine != "":
		prof, err := hetsim.ProfileByName(r.Machine)
		if err != nil {
			return o, err
		}
		o.Profile = prof
	default:
		return o, fmt.Errorf("one of machine or profile is required")
	}
	if r.Scheme == "" {
		return o, fmt.Errorf("scheme is required")
	}
	scheme, err := ParseScheme(r.Scheme)
	if err != nil {
		return o, err
	}
	variant, err := ParseVariant(r.Variant)
	if err != nil {
		return o, err
	}
	placement, err := ParsePlacement(r.Placement)
	if err != nil {
		return o, err
	}
	scenarios := r.Scenarios
	if r.Inject != "" {
		if len(r.Scenarios) > 0 {
			return o, fmt.Errorf("inject and scenarios are mutually exclusive")
		}
		delta := r.Delta
		if delta == 0 {
			delta = 1e5
		}
		scenarios, err = ParseInjections(r.Inject, delta)
		if err != nil {
			return o, err
		}
	}
	o.N = r.N
	o.BlockSize = r.BlockSize
	o.Scheme = scheme
	o.Variant = variant
	o.K = r.K
	o.ChecksumVectors = r.ChecksumVectors
	o.ConcurrentRecalc = r.ConcurrentRecalc == nil || *r.ConcurrentRecalc
	o.Placement = placement
	o.Scenarios = scenarios
	o.MaxAttempts = r.MaxAttempts
	o.Trace = r.Trace
	return o, nil
}

// RequestFromOptions builds the wire request that round-trips to the
// same options point — the client half of remote execution. Real-plane
// runs do not serialize (the input matrix stays local), and
// observational wiring (Trace, Metrics) is deliberately dropped: the
// daemon owns its own instrumentation.
func RequestFromOptions(o core.Options) (JobRequest, error) {
	if o.Data != nil {
		return JobRequest{}, fmt.Errorf("real-plane runs (Options.Data) cannot be submitted remotely; run locally")
	}
	prof := o.Profile
	req := JobRequest{
		Profile:         &prof,
		N:               o.N,
		BlockSize:       o.BlockSize,
		Scheme:          SchemeKey(o.Scheme),
		K:               o.K,
		ChecksumVectors: o.ChecksumVectors,
		Placement:       o.Placement.String(),
		Scenarios:       o.Scenarios,
		MaxAttempts:     o.MaxAttempts,
	}
	if o.Variant == core.RightLooking {
		req.Variant = "right"
	}
	cr := o.ConcurrentRecalc
	req.ConcurrentRecalc = &cr
	return req, nil
}

// State is a job's lifecycle position. Transitions only move forward:
// queued → running → done/failed, with canceled reachable from queued
// (a running factorization is not preemptible) and failed also
// reachable directly from queued when the deadline expires first.
// Campaigns skip queued (running at submission) and reach canceled
// when a shutdown deadline interrupts them at a shard boundary.
type State string

// The job states, as they appear in every response body.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether no further transition can happen.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobInfo is the status body every job endpoint returns.
type JobInfo struct {
	ID          string `json:"id"`
	State       State  `json:"state"`
	Fingerprint string `json:"fingerprint"`
	// Scheme/Machine/N summarize the request for listings.
	Scheme      string    `json:"scheme"`
	Machine     string    `json:"machine"`
	N           int       `json:"n"`
	SubmittedAt time.Time `json:"submitted_at"`
	// StartedAt/FinishedAt are set as the transitions happen.
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	// Executed is set once the job is done: true when this job
	// performed the factorization, false when an identical earlier (or
	// concurrent) submission or the on-disk cache served it.
	Executed *bool `json:"executed,omitempty"`
	// Error carries the failure or cancellation reason as rendered
	// text; ErrorCode carries its classification (see JobErrorCodes).
	// Clients reconstruct a typed error from the pair with
	// core.ErrorFromCode rather than matching message text.
	Error     string `json:"error,omitempty"`
	ErrorCode string `json:"error_code,omitempty"`
}

// JobList is the body of GET /v1/jobs.
type JobList struct {
	Jobs []JobInfo `json:"jobs"`
}

// CampaignInfo is the status body of a reliability campaign. Attached
// counts later submissions of the same config that were deduped onto
// this execution by fingerprint.
type CampaignInfo struct {
	ID          string          `json:"id"`
	State       State           `json:"state"`
	Fingerprint string          `json:"fingerprint"`
	Config      campaign.Config `json:"config"`
	Attached    int             `json:"attached"`
	SubmittedAt time.Time       `json:"submitted_at"`
	FinishedAt  *time.Time      `json:"finished_at,omitempty"`
	// Error and ErrorCode mirror JobInfo's pair (see JobErrorCodes).
	Error     string `json:"error,omitempty"`
	ErrorCode string `json:"error_code,omitempty"`
}

// JobResult is the body of GET /v1/jobs/{id}/result.
type JobResult struct {
	ID          string                 `json:"id"`
	Fingerprint string                 `json:"fingerprint"`
	Executed    bool                   `json:"executed"`
	Result      experiments.WireResult `json:"result"`
}

// Health is the body of GET /healthz.
type Health struct {
	Status        string        `json:"status"` // "ok" or "draining"
	Workers       int           `json:"workers"`
	QueueDepth    int           `json:"queue_depth"`
	QueueCapacity int           `json:"queue_capacity"`
	Jobs          map[State]int `json:"jobs"`
}

// APIError is the envelope every non-2xx response carries.
type APIError struct {
	Err ErrorBody `json:"error"`
}

// ErrorBody is the machine-readable error inside the envelope.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *APIError) Error() string {
	return fmt.Sprintf("%s: %s", e.Err.Code, e.Err.Message)
}

// ErrorCode documents one error code for docs/SERVICE.md's generated
// table.
type ErrorCode struct {
	Code    string
	Status  int
	Meaning string
}

// ErrorCodes is the closed set of error codes the API emits;
// docs/SERVICE.md renders this table and a drift test pins the two
// together.
var ErrorCodes = []ErrorCode{
	{"invalid_request", 400, "the request body is not valid JSON, names unknown fields, or fails option validation (unknown scheme, missing machine, conflicting inject/scenarios)"},
	{"unknown_job", 404, "no job with this ID exists (IDs are not persisted across daemon restarts)"},
	{"unknown_campaign", 404, "no campaign with this ID exists (IDs are not persisted across daemon restarts)"},
	{"no_trace", 404, "the job was submitted without \"trace\": true, so no timeline was recorded"},
	{"not_finished", 409, "the resource needs a terminal job (result, metrics, trace) but the job is still queued or running"},
	{"job_failed", 409, "a result was requested but the job failed or was canceled; the job status carries the reason"},
	{"not_cancelable", 409, "only queued jobs can be canceled — a running factorization is not preemptible, and a terminal job already has its outcome"},
	{"rate_limited", 429, "this client exhausted its token bucket; retry after the Retry-After header's seconds"},
	{"queue_full", 429, "the bounded job queue is at capacity; retry after the Retry-After header's seconds"},
	{"draining", 503, "the daemon is shutting down and no longer accepts submissions"},
}

// CodeInternalError is the job error code for daemon-side failures
// outside the outcome taxonomy (e.g. a metrics snapshot that failed to
// encode). It reconstructs to an unclassified error client-side.
const CodeInternalError = "internal"

// JobErrorCode documents one job-level error code for docs/SERVICE.md.
type JobErrorCode struct {
	Code    string
	Meaning string
}

// JobErrorCodes is the closed set of values JobInfo.ErrorCode and
// CampaignInfo.ErrorCode can carry — the classification of *job
// outcomes*, distinct from the HTTP envelope codes above. The first
// five are core's wire codes, so core.ErrorFromCode rebuilds an error
// that satisfies the same typed predicate the daemon-side error did;
// docs/SERVICE.md renders this table and a drift test pins the two
// together.
var JobErrorCodes = []JobErrorCode{
	{core.CodeRejected, "the factorization finished but the offline audit rejected the result (core.Rejected matches)"},
	{core.CodeUncorrectable, "corruption was detected but exceeded the checksum code's correction capability (core.Uncorrectable matches)"},
	{core.CodeFailStop, "a diagonal block lost positive definiteness — the POTF2 fail-stop abort (core.FailStop matches)"},
	{core.CodeCanceled, "the job was canceled — by the client while queued, or by the daemon when a shutdown deadline expired first"},
	{core.CodeTimeout, "the job exceeded its deadline, while queued or while running"},
	{CodeInternalError, "a daemon-side failure outside the outcome taxonomy; the error text carries the detail"},
}
