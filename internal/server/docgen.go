package server

// This file generates the machine-derived parts of docs/SERVICE.md:
// the endpoint table (from Routes), the error-code table (from
// ErrorCodes), and a captured HTTP session recorded against a real
// in-process daemon under a frozen clock. Because every response body
// the daemon emits is deterministic given a deterministic clock, the
// session in the docs is not prose pretending to be output — it IS the
// output, byte for byte, and TestServiceDocCurrent re-records it on
// every test run to catch drift.

//go:generate go run ../../tools/servicedoc

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"
)

// Marker comments bracketing the generated sections of
// docs/SERVICE.md; tools/servicedoc rewrites what is between them and
// the drift test asserts the embedding.
const (
	EndpointsBegin = "<!-- BEGIN GENERATED ENDPOINT TABLE (go generate ./internal/server) -->"
	EndpointsEnd   = "<!-- END GENERATED ENDPOINT TABLE -->"
	ErrorsBegin    = "<!-- BEGIN GENERATED ERROR TABLE (go generate ./internal/server) -->"
	ErrorsEnd      = "<!-- END GENERATED ERROR TABLE -->"
	JobErrorsBegin = "<!-- BEGIN GENERATED JOB ERROR CODE TABLE (go generate ./internal/server) -->"
	JobErrorsEnd   = "<!-- END GENERATED JOB ERROR CODE TABLE -->"
	SessionBegin   = "<!-- BEGIN GENERATED SESSION (go generate ./internal/server) -->"
	SessionEnd     = "<!-- END GENERATED SESSION -->"
)

// EndpointsTable renders the API surface as a markdown table.
func EndpointsTable() string {
	var b strings.Builder
	b.WriteString("| Method | Path | Purpose |\n|---|---|---|\n")
	for _, r := range Routes() {
		fmt.Fprintf(&b, "| %s | `%s` | %s |\n", r.Method, r.Pattern, r.Summary)
	}
	return b.String()
}

// ErrorsTable renders the closed error-code set as a markdown table.
func ErrorsTable() string {
	var b strings.Builder
	b.WriteString("| Code | HTTP status | Meaning |\n|---|---|---|\n")
	for _, e := range ErrorCodes {
		fmt.Fprintf(&b, "| `%s` | %d | %s |\n", e.Code, e.Status, e.Meaning)
	}
	return b.String()
}

// JobErrorsTable renders the closed job-outcome code set as a
// markdown table.
func JobErrorsTable() string {
	var b strings.Builder
	b.WriteString("| Code | Meaning |\n|---|---|\n")
	for _, e := range JobErrorCodes {
		fmt.Fprintf(&b, "| `%s` | %s |\n", e.Code, e.Meaning)
	}
	return b.String()
}

// DocClock is the frozen clock the documentation session runs under:
// every timestamp in the captured bodies reads the same instant, so
// regenerating the docs is byte-stable. After returns a nil channel
// (which never fires); that is safe because the session only issues
// `?wait=` polls against jobs that are already terminal.
func DocClock() Clock {
	fixed := time.Date(2026, time.January, 1, 0, 0, 0, 0, time.UTC)
	return Clock{
		Now:   func() time.Time { return fixed },
		After: func(time.Duration) <-chan time.Time { return nil },
	}
}

// docStep is one scripted exchange of the documentation session.
type docStep struct {
	title   string
	comment string
	method  string
	path    string
	body    string // compact request JSON; doubles as the curl --data display
	await   string // job ID to wait to terminal before issuing the request
	elide   int    // max response-body lines shown (0 = all)
}

// The point every session exchange revolves around: the paper's
// Enhanced Online-ABFT scheme on the laptop profile with a storage
// error injected at iteration 3. Small enough to factor in
// milliseconds, rich enough that the trace and metrics show recovery.
const (
	docJobBody     = `{"machine":"laptop","n":512,"scheme":"enhanced","k":2,"inject":"storage@3","trace":true}`
	docJobBodyDup  = `{"machine":"laptop","n":512,"scheme":"enhanced","k":2,"inject":"storage@3"}`
	docJobID       = "j-000001"
	docJobIDDup    = "j-000002"
	docBaseDisplay = "http://127.0.0.1:8787"
)

func docSteps() []docStep {
	return []docStep{
		{
			title: "Submit a job",
			comment: "`POST /v1/jobs` accepts one factorization point spelled the way the CLI's `-run` flags spell it. " +
				"The daemon answers `202 Accepted` immediately — the job is queued, not done — and the `Location` header names the status endpoint to poll.",
			method: http.MethodPost, path: "/v1/jobs", body: docJobBody,
		},
		{
			title: "Poll until done",
			comment: "`GET /v1/jobs/{id}?wait=30s` long-polls: the response returns as soon as the job reaches a terminal state, or when the wait expires with the state unchanged (waits are capped at 60s — re-poll, the connection is not a lease). " +
				"`executed: true` says this job performed the factorization itself.",
			method: http.MethodGet, path: "/v1/jobs/" + docJobID + "?wait=30s", await: docJobID,
		},
		{
			title:   "Fetch the result",
			comment: "The result body is the scheduler's wire form — the same JSON the on-disk result cache stores, which is what makes an HTTP-served point byte-equivalent to a local run.",
			method:  http.MethodGet, path: "/v1/jobs/" + docJobID + "/result", elide: 24,
		},
		{
			title:   "Identical submissions share one execution",
			comment: "A second submission of the same point (the canonical options fingerprint is the identity; observational fields like `trace` are not part of it) is admitted as its own job …",
			method:  http.MethodPost, path: "/v1/jobs", body: docJobBodyDup,
		},
		{
			title:   "… but does not execute",
			comment: "`executed: false`: the scheduler's singleflight memo served the duplicate from the first job's execution. No kernel ran.",
			method:  http.MethodGet, path: "/v1/jobs/" + docJobIDDup + "?wait=30s", await: docJobIDDup,
		},
		{
			title:   "A deduplicated job's metrics",
			comment: "Each job records into a private metrics registry. The duplicate's snapshot shows only the sweep engine's accounting — zero kernel launches, one memo hit — which is how `make serve-smoke` proves warm submissions execute nothing.",
			method:  http.MethodGet, path: "/v1/jobs/" + docJobIDDup + "/metrics", elide: 44,
		},
		{
			title:   "The executing job's metrics",
			comment: "The first job's snapshot is byte-identical to what `abftchol -run … -metrics-out` would have written for the same options: kernel launch counts, checksum verifications, recovery events.",
			method:  http.MethodGet, path: "/v1/jobs/" + docJobID + "/metrics", elide: 16,
		},
		{
			title:   "The timeline",
			comment: "Jobs submitted with `\"trace\": true` record the simulated execution timeline; the body is Chrome/Perfetto trace-event JSON — load it at `ui.perfetto.dev`.",
			method:  http.MethodGet, path: "/v1/jobs/" + docJobID + "/trace", elide: 12,
		},
		{
			title:   "Event stream",
			comment: "`GET /v1/jobs/{id}/events` is a Server-Sent Events stream of lifecycle transitions. It replays the full history from the beginning, so a late subscriber misses nothing, and ends once the job is terminal.",
			method:  http.MethodGet, path: "/v1/jobs/" + docJobID + "/events",
		},
		{
			title:  "List jobs",
			method: http.MethodGet, path: "/v1/jobs", elide: 16,
			comment: "Listings are ordered by job ID (submission order).",
		},
		{
			title:   "Global metrics",
			comment: "`/metrics` merges every completed job's counters into one registry and adds the daemon's own `server.*` counters (see docs/OBSERVABILITY.md for the catalog).",
			method:  http.MethodGet, path: "/metrics", elide: 14,
		},
		{
			title:   "Rate limiting",
			comment: "Each client (the `X-Client` header, else the remote host) draws from a token bucket. An exhausted bucket answers `429` with the `rate_limited` code and a `Retry-After` header; a full bounded queue answers `429 queue_full` the same way.",
			method:  http.MethodPost, path: "/v1/jobs", body: docJobBodyDup,
		},
		{
			title:   "Errors",
			comment: "Every non-2xx response carries the same envelope: a machine-readable `code` from the closed table above and a human-readable `message`.",
			method:  http.MethodGet, path: "/v1/jobs/j-999999",
		},
		{
			title:   "Health",
			comment: "`/healthz` reports liveness, queue occupancy, and per-state job counts; `status` flips to `draining` once shutdown begins and submissions start drawing `503`.",
			method:  http.MethodGet, path: "/healthz",
		},
	}
}

// DocSession boots a daemon under DocClock, drives the scripted
// exchanges through its real handlers, and renders the captured
// session as markdown. tools/servicedoc embeds the result in
// docs/SERVICE.md; TestServiceDocCurrent re-records and compares.
func DocSession() (string, error) {
	srv, err := New(Config{
		Workers:    1,
		QueueDepth: 8,
		RatePerSec: 0.5,
		RateBurst:  2,
		Clock:      DocClock(),
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, st := range docSteps() {
		if st.await != "" {
			srv.awaitTerminal(st.await)
		}
		var rd io.Reader
		if st.body != "" {
			rd = strings.NewReader(st.body)
		}
		req := httptest.NewRequest(st.method, st.path, rd)
		req.Header.Set("X-Client", "docs")
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		renderExchange(&b, st, rec)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		return "", err
	}
	return strings.TrimRight(b.String(), "\n") + "\n", nil
}

// awaitTerminal blocks until the job reaches a terminal state, using
// the same broadcast channel the long-poll handler selects on. A job
// ID that does not exist returns immediately.
func (s *Server) awaitTerminal(id string) {
	for {
		s.mu.Lock()
		j, ok := s.jobs[id]
		if !ok {
			s.mu.Unlock()
			return
		}
		ch := j.changed
		terminal := j.state.Terminal()
		s.mu.Unlock()
		if terminal {
			return
		}
		<-ch
	}
}

// renderExchange writes one captured exchange: a curl line, the status
// (with the headers worth documenting), and the body — elided past
// st.elide lines so the doc stays readable while the drift test still
// pins every byte that is shown.
func renderExchange(b *strings.Builder, st docStep, rec *httptest.ResponseRecorder) {
	fmt.Fprintf(b, "### %s\n\n%s\n\n", st.title, st.comment)
	curl := "curl -s"
	if st.method != http.MethodGet {
		curl += " -X " + st.method
	}
	curl += " -H 'X-Client: docs'"
	if st.body != "" {
		curl += " --data '" + st.body + "'"
	}
	curl += " '" + docBaseDisplay + st.path + "'"
	fmt.Fprintf(b, "```console\n$ %s\n```\n\n", curl)
	status := fmt.Sprintf("`HTTP %d %s`", rec.Code, http.StatusText(rec.Code))
	for _, h := range []string{"Location", "Retry-After"} {
		if v := rec.Header().Get(h); v != "" {
			status += fmt.Sprintf(" · `%s: %s`", h, v)
		}
	}
	b.WriteString(status + "\n\n")
	lang := "json"
	if strings.HasPrefix(rec.Header().Get("Content-Type"), "text/event-stream") {
		lang = "text"
	}
	lines := strings.Split(strings.TrimRight(rec.Body.String(), "\n"), "\n")
	if st.elide > 0 && len(lines) > st.elide {
		omitted := len(lines) - st.elide
		lines = append(lines[:st.elide:st.elide], fmt.Sprintf("  … %d more lines …", omitted))
	}
	fmt.Fprintf(b, "```%s\n%s\n```\n\n", lang, strings.Join(lines, "\n"))
}
