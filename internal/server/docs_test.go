package server

import (
	"os"
	"strings"
	"testing"
)

// TestServiceDocCurrent pins docs/SERVICE.md to the live server: the
// endpoint table, the error table, and the captured session must be
// exactly what tools/servicedoc would regenerate. Because DocSession
// drives the real handlers, this test is also the round-trip proof
// that every documented exchange still works — a handler change that
// alters any shown byte fails here until
// `go generate ./internal/server` is re-run.
func TestServiceDocCurrent(t *testing.T) {
	data, err := os.ReadFile("../../docs/SERVICE.md")
	if err != nil {
		t.Fatalf("docs/SERVICE.md: %v (the service doc ships with the daemon)", err)
	}
	doc := string(data)
	session, err := DocSession()
	if err != nil {
		t.Fatalf("record session: %v", err)
	}
	for _, sec := range []struct {
		name, begin, end, body string
	}{
		{"endpoint table", EndpointsBegin, EndpointsEnd, EndpointsTable()},
		{"error table", ErrorsBegin, ErrorsEnd, ErrorsTable()},
		{"job error code table", JobErrorsBegin, JobErrorsEnd, JobErrorsTable()},
		{"session", SessionBegin, SessionEnd, session},
	} {
		want := sec.begin + "\n" + sec.body + sec.end
		if !strings.Contains(doc, want) {
			i := strings.Index(doc, sec.begin)
			j := strings.Index(doc, sec.end)
			got := "(markers missing)"
			if i >= 0 && j > i {
				got = doc[i : j+len(sec.end)]
			}
			t.Errorf("docs/SERVICE.md %s is stale; run `go generate ./internal/server`\n--- want ---\n%s\n--- have ---\n%s", sec.name, want, got)
		}
	}
}

// TestDocSessionDeterministic guards the property the embedded session
// relies on: two recordings are byte-identical.
func TestDocSessionDeterministic(t *testing.T) {
	a, err := DocSession()
	if err != nil {
		t.Fatal(err)
	}
	b, err := DocSession()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("DocSession is not deterministic:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}
