package server

import (
	"sync"
	"time"
)

// rateLimiter is a per-client token bucket: each client starts with
// burst tokens, every submission spends one, and tokens refill at rate
// per second up to burst. Time comes from the injected clock, so the
// limiter is as deterministic as its caller — a fixed clock never
// refills, which is exactly what the documentation generator uses to
// capture a reproducible 429.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64
	now   func() time.Time

	mu      sync.Mutex // guards: buckets
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate, burst float64, now func() time.Time) *rateLimiter {
	return &rateLimiter{rate: rate, burst: burst, now: now, buckets: make(map[string]*bucket)}
}

// allow spends one token for key. When the bucket is empty it reports
// false and how long until a full token has refilled — the Retry-After
// hint.
func (l *rateLimiter) allow(key string) (bool, time.Duration) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok {
		pruneBuckets(l.buckets, l.burst)
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / l.rate
	return false, time.Duration(need * float64(time.Second))
}

// pruneBuckets caps the bucket map: full buckets carry no history (a
// new bucket behaves identically), so they are safe to forget. The
// caller holds the limiter lock and passes the guarded map in.
func pruneBuckets(buckets map[string]*bucket, burst float64) {
	if len(buckets) < 1024 {
		return
	}
	for k, b := range buckets {
		if b.tokens >= burst {
			delete(buckets, k)
		}
	}
}
