package fault

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Strike says which hardware event a campaign fault models.
type Strike int

const (
	// StrikeStorage is a memory soft error: the corruption lands in an
	// already-factored, already-verified block that sat in device
	// memory and will be read again — the error class Enhanced's
	// verify-before-read discipline exists for (§III).
	StrikeStorage Strike = iota
	// StrikeCompute is a kernel error: a GEMM output element comes out
	// wrong while its checksum, maintained by the separate update
	// kernel, stays right — the error class Online-ABFT's post-write
	// verification catches immediately.
	StrikeCompute
)

var strikeKeys = map[Strike]string{
	StrikeStorage: "storage",
	StrikeCompute: "compute",
}

func (s Strike) String() string {
	if k, ok := strikeKeys[s]; ok {
		return k
	}
	return fmt.Sprintf("Strike(%d)", int(s))
}

// Flavor says how a campaign fault perturbs the struck element.
type Flavor int

const (
	// FlavorOffset adds CampaignConfig.Delta to the element (the
	// paper's injection style: a moderate additive error that keeps
	// the matrix positive definite).
	FlavorOffset Flavor = iota
	// FlavorMantissa flips one high mantissa bit (bits 20–51) of the
	// IEEE-754 representation: a material relative error below the
	// exponent field.
	FlavorMantissa
	// FlavorExponent flips one exponent bit (bits 52–62): a large,
	// magnitude-changing, ECC-escaping corruption.
	FlavorExponent
)

var flavorKeys = map[Flavor]string{
	FlavorOffset:   "offset",
	FlavorMantissa: "mantissa",
	FlavorExponent: "exponent",
}

func (f Flavor) String() string {
	if k, ok := flavorKeys[f]; ok {
		return k
	}
	return fmt.Sprintf("Flavor(%d)", int(f))
}

// The bit ranges the flip flavors draw from. Mantissa flips start at
// bit 20 so the corruption stays material (low mantissa bits perturb
// by parts in 2³², indistinguishable from rounding); bit 63 is the
// sign and is left alone so offsets and flips stay comparable.
const (
	mantissaBitLo = 20
	mantissaBitHi = 52 // exclusive
	exponentBitLo = 52
	exponentBitHi = 63 // exclusive
)

// Class names one fault class of a reliability campaign: where the
// fault strikes, how it perturbs the value, and whether faults arrive
// as multi-fault bursts. The zero value — a single additive storage
// error — is the paper's standard memory-error experiment.
type Class struct {
	Strike Strike
	Flavor Flavor
	// Burst makes every Poisson arrival a burst of BurstSize faults in
	// the same block column during the same iteration — inside one
	// verification interval for every K, which is where a checksum code
	// correcting ⌊m/2⌋ errors per column actually gets stressed.
	Burst bool
}

// Key is the class's canonical spelling, e.g. "storage-offset" or
// "compute-exponent-burst" — the words campaign configs, journals, and
// BENCH_reliability.json cells use.
func (c Class) Key() string {
	k := c.Strike.String() + "-" + c.Flavor.String()
	if c.Burst {
		k += "-burst"
	}
	return k
}

// MarshalJSON writes the class as its Key string.
func (c Class) MarshalJSON() ([]byte, error) {
	if _, ok := strikeKeys[c.Strike]; !ok {
		return nil, fmt.Errorf("fault: unknown strike %d", int(c.Strike))
	}
	if _, ok := flavorKeys[c.Flavor]; !ok {
		return nil, fmt.Errorf("fault: unknown flavor %d", int(c.Flavor))
	}
	return json.Marshal(c.Key())
}

// UnmarshalJSON parses the Key spelling.
func (c *Class) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := ParseClass(s)
	if err != nil {
		return err
	}
	*c = parsed
	return nil
}

// ParseClass resolves a class Key, e.g. "storage-offset" or
// "compute-mantissa-burst".
func ParseClass(s string) (Class, error) {
	parts := strings.Split(strings.ToLower(strings.TrimSpace(s)), "-")
	if len(parts) == 3 && parts[2] == "burst" {
		c, err := ParseClass(parts[0] + "-" + parts[1])
		c.Burst = true
		return c, err
	}
	if len(parts) != 2 {
		return Class{}, fmt.Errorf("fault: bad class %q (want strike-flavor[-burst], e.g. storage-offset)", s)
	}
	var c Class
	switch parts[0] {
	case "storage", "memory":
		c.Strike = StrikeStorage
	case "compute", "computation":
		c.Strike = StrikeCompute
	default:
		return Class{}, fmt.Errorf("fault: bad strike %q in class %q (want storage or compute)", parts[0], s)
	}
	switch parts[1] {
	case "offset":
		c.Flavor = FlavorOffset
	case "mantissa":
		c.Flavor = FlavorMantissa
	case "exponent":
		c.Flavor = FlavorExponent
	default:
		return Class{}, fmt.Errorf("fault: bad flavor %q in class %q (want offset, mantissa, or exponent)", parts[1], s)
	}
	return c, nil
}

// Classes enumerates every fault class in canonical order: the six
// single-fault strike×flavor combinations, then their burst variants.
func Classes() []Class {
	var out []Class
	for _, burst := range []bool{false, true} {
		for _, st := range []Strike{StrikeStorage, StrikeCompute} {
			for _, fl := range []Flavor{FlavorOffset, FlavorMantissa, FlavorExponent} {
				out = append(out, Class{Strike: st, Flavor: fl, Burst: burst})
			}
		}
	}
	return out
}

// Describe is the one-line meaning of the class, used by the generated
// taxonomy table in docs/RELIABILITY.md.
func (c Class) Describe() string {
	var where, how string
	switch c.Strike {
	case StrikeCompute:
		where = "a GEMM output element is written wrong while its checksum, updated separately, stays right"
	default:
		where = "an already-factored, already-verified block is corrupted in memory before being read again"
	}
	switch c.Flavor {
	case FlavorMantissa:
		how = fmt.Sprintf("one high mantissa bit (bits %d–%d) flips", mantissaBitLo, mantissaBitHi-1)
	case FlavorExponent:
		how = fmt.Sprintf("one exponent bit (bits %d–%d) flips", exponentBitLo, exponentBitHi-1)
	default:
		how = "Delta is added to the element (default DefaultDelta)"
	}
	s := where + "; " + how
	if c.Burst {
		s += "; each arrival is a burst of BurstSize faults in one block column within a single iteration"
	}
	return s
}

// DefaultDelta is the additive corruption magnitude offset-flavor
// campaigns use when CampaignConfig.Delta is zero: large enough that a
// struck element is far outside checksum tolerance, small enough that
// the matrix stays positive definite on the real plane (matching the
// paper's moderate-magnitude injections). Flip flavors ignore Delta —
// their magnitude is whatever the flipped bit changes.
const DefaultDelta = 100.0

// DefaultBurstSize is the burst width used when a burst-class config
// leaves BurstSize zero: two faults in one block column, one more than
// the paper's m=2 checksum code corrects.
const DefaultBurstSize = 2

// CampaignConfig describes a randomized fault campaign: the
// multi-error workload used to study Optimization 3's trade-off
// between verification interval and protection strength (§V-C: "K is
// a parameter related to the failure rate of the system") and to
// measure detection/correction coverage at scale. The zero value of
// Class/Delta/BurstSize means: single additive storage errors of
// magnitude DefaultDelta — the original campaign semantics.
type CampaignConfig struct {
	// Blocks is the block count per matrix dimension (n / B).
	Blocks int `json:"blocks"`
	// BlockSize is B, used to pick elements inside a block.
	BlockSize int `json:"block_size"`
	// RatePerIteration is the expected number of fault arrivals per
	// outer iteration (Poisson).
	RatePerIteration float64 `json:"rate_per_iteration"`
	// Seed makes the campaign reproducible; each outer iteration draws
	// from its own SubSeed-derived stream, so generating the whole
	// campaign at once and concatenating per-iteration CampaignAt
	// slices yield identical scenarios.
	Seed int64 `json:"seed"`
	// Class picks where faults strike and how they perturb values.
	Class Class `json:"class"`
	// Delta is the additive magnitude for offset-flavor classes; zero
	// means DefaultDelta (made explicit by Normalized). Flip flavors
	// force it to zero — the Scenario then carries a Bit instead.
	Delta float64 `json:"delta"`
	// BurstSize is the faults per arrival for burst classes; zero
	// means DefaultBurstSize. Non-burst classes force it to zero.
	// Clamped to BlockSize (burst rows are distinct within a column).
	BurstSize int `json:"burst_size"`
}

// Normalized returns the config with every implicit default resolved:
// the Delta and BurstSize semantics of the configured class are made
// explicit, so two configs generate identical campaigns if and only
// if their normalized forms are equal. Campaign journals store the
// config exactly as given (a zero-value config round-trips unchanged)
// and normalize at the point of use.
func (cfg CampaignConfig) Normalized() CampaignConfig {
	switch cfg.Class.Flavor {
	case FlavorMantissa, FlavorExponent:
		cfg.Delta = 0 // magnitude comes from the flipped bit
	default:
		if cfg.Delta == 0 {
			cfg.Delta = DefaultDelta
		}
	}
	if cfg.Class.Burst {
		if cfg.BurstSize <= 0 {
			cfg.BurstSize = DefaultBurstSize
		}
		if cfg.BlockSize > 0 && cfg.BurstSize > cfg.BlockSize {
			cfg.BurstSize = cfg.BlockSize
		}
	} else {
		cfg.BurstSize = 0
	}
	return cfg
}

// SubSeed derives the RNG seed of one campaign iteration from the
// campaign seed (a splitmix64-style avalanche, so neighboring
// iterations get uncorrelated streams). Exported because the campaign
// engine reuses the same mix to derive per-trial seeds from a master
// seed, keeping every shard of a sharded campaign independently
// reproducible.
func SubSeed(seed int64, iter int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(int64(iter)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Campaign generates a reproducible list of fault scenarios: at each
// outer iteration j >= 1, a Poisson(RatePerIteration) number of
// arrivals strike per the configured Class. Storage strikes land in a
// uniformly random still-live factored block — a block (i, k) with
// k < j <= i, i.e. data that has been written and will be read again.
// Compute strikes land in a uniformly random GEMM output of the
// iteration — a trailing block (i, j) with j < i. Equivalent to
// concatenating CampaignAt over every iteration.
func Campaign(cfg CampaignConfig) []Scenario {
	cfg = cfg.Normalized()
	var out []Scenario
	for j := 1; j < cfg.Blocks; j++ {
		out = append(out, campaignAt(cfg, j)...)
	}
	return out
}

// CampaignAt generates iteration iter's slice of the campaign alone.
// The per-iteration RNG stream is derived with SubSeed, so a campaign
// can be generated in one pass or split across iterations (or shards)
// without changing a single scenario.
func CampaignAt(cfg CampaignConfig, iter int) []Scenario {
	return campaignAt(cfg.Normalized(), iter)
}

// campaignAt requires a normalized config.
func campaignAt(cfg CampaignConfig, j int) []Scenario {
	if j < 1 || j >= cfg.Blocks {
		return nil
	}
	if cfg.Class.Strike == StrikeCompute && j >= cfg.Blocks-1 {
		// The last iteration has no trailing blocks, hence no GEMM to
		// mis-compute.
		return nil
	}
	rng := rand.New(rand.NewSource(SubSeed(cfg.Seed, j)))
	var out []Scenario
	for n := poisson(rng, cfg.RatePerIteration); n > 0; n-- {
		out = append(out, strike(cfg, rng, j)...)
	}
	return out
}

// strike draws one arrival at iteration j: a single scenario, or
// BurstSize scenarios in one block column for burst classes. The draw
// order (block, column, rows, bits) is fixed — it is part of the
// campaign's reproducibility contract.
func strike(cfg CampaignConfig, rng *rand.Rand, j int) []Scenario {
	base := Scenario{Iter: j, Delta: cfg.Delta}
	if cfg.Class.Strike == StrikeCompute {
		base.Kind = Computation
		base.Op = OpGEMM
		base.BJ = j
		base.BI = j + 1 + rng.Intn(cfg.Blocks-j-1)
	} else {
		base.Kind = Storage
		base.BJ = rng.Intn(j)                // factored column
		base.BI = j + rng.Intn(cfg.Blocks-j) // row at or below the current panel
	}
	base.Col = rng.Intn(cfg.BlockSize)
	count := 1
	if cfg.Class.Burst {
		count = cfg.BurstSize
	}
	rows := []int{rng.Intn(cfg.BlockSize)}
	if count > 1 {
		rows = rng.Perm(cfg.BlockSize)[:count] // distinct rows, one column
	}
	out := make([]Scenario, count)
	for i := range out {
		s := base
		s.Row = rows[i]
		switch cfg.Class.Flavor {
		case FlavorMantissa:
			s.Bit = mantissaBitLo + rng.Intn(mantissaBitHi-mantissaBitLo)
		case FlavorExponent:
			s.Bit = exponentBitLo + rng.Intn(exponentBitHi-exponentBitLo)
		}
		out[i] = s
	}
	return out
}

// poisson draws from Poisson(lambda) by Knuth's method; fine for the
// small rates the campaigns use.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
