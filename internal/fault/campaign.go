package fault

import (
	"math"
	"math/rand"
)

// CampaignConfig describes a randomized storage-error campaign: the
// multi-error workload used to study Optimization 3's trade-off
// between verification interval and protection strength (§V-C: "K is
// a parameter related to the failure rate of the system").
type CampaignConfig struct {
	// Blocks is the block count per matrix dimension (n / B).
	Blocks int
	// BlockSize is B, used to pick elements inside a block.
	BlockSize int
	// RatePerIteration is the expected number of storage errors
	// striking per outer iteration (Poisson).
	RatePerIteration float64
	// Seed makes the campaign reproducible.
	Seed int64
	// Delta is the magnitude of each corruption.
	Delta float64
}

// Campaign generates a reproducible list of storage-error scenarios:
// at each outer iteration j >= 1, a Poisson(RatePerIteration) number
// of errors strike uniformly random still-live factored blocks — a
// block (i, k) with k < j <= i, i.e. data that has been written and
// will be read again — at uniformly random elements.
func Campaign(cfg CampaignConfig) []Scenario {
	rng := rand.New(rand.NewSource(cfg.Seed))
	delta := cfg.Delta
	if delta == 0 {
		delta = 100
	}
	var out []Scenario
	for j := 1; j < cfg.Blocks; j++ {
		for n := poisson(rng, cfg.RatePerIteration); n > 0; n-- {
			k := rng.Intn(j)                // factored column
			i := j + rng.Intn(cfg.Blocks-j) // row at or below the current panel
			out = append(out, Scenario{
				Kind:  Storage,
				Iter:  j,
				BI:    i,
				BJ:    k,
				Row:   rng.Intn(cfg.BlockSize),
				Col:   rng.Intn(cfg.BlockSize),
				Delta: delta,
			})
		}
	}
	return out
}

// poisson draws from Poisson(lambda) by Knuth's method; fine for the
// small rates the campaigns use.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
