package fault

import (
	"math/rand"
	"testing"
)

func TestCampaignDeterministicAndWellFormed(t *testing.T) {
	cfg := CampaignConfig{Blocks: 20, BlockSize: 64, RatePerIteration: 0.5, Seed: 7}
	a := Campaign(cfg)
	b := Campaign(cfg)
	if len(a) == 0 {
		t.Fatal("no scenarios at rate 0.5 over 20 iterations")
	}
	if len(a) != len(b) {
		t.Fatal("campaign not deterministic")
	}
	for i, s := range a {
		if s != b[i] {
			t.Fatal("scenario mismatch across identical seeds")
		}
		if s.Kind != Storage {
			t.Fatal("campaigns inject storage errors")
		}
		if s.Iter < 1 || s.Iter >= cfg.Blocks {
			t.Fatalf("iteration %d out of range", s.Iter)
		}
		// Target must be live factored data: column before the
		// iteration, row at or below it.
		if s.BJ >= s.Iter || s.BI < s.Iter || s.BI >= cfg.Blocks {
			t.Fatalf("target (%d,%d) invalid at iteration %d", s.BI, s.BJ, s.Iter)
		}
		if s.Row < 0 || s.Row >= cfg.BlockSize || s.Col < 0 || s.Col >= cfg.BlockSize {
			t.Fatalf("element (%d,%d) outside the block", s.Row, s.Col)
		}
		if s.Delta != DefaultDelta { // the documented default magnitude
			t.Fatalf("delta = %g", s.Delta)
		}
	}
	// Different seeds differ.
	cfg.Seed = 8
	c := Campaign(cfg)
	same := len(c) == len(a)
	if same {
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical campaigns")
	}
}

func TestCampaignRateScaling(t *testing.T) {
	lo := Campaign(CampaignConfig{Blocks: 200, BlockSize: 8, RatePerIteration: 0.1, Seed: 1, Delta: 5})
	hi := Campaign(CampaignConfig{Blocks: 200, BlockSize: 8, RatePerIteration: 2.0, Seed: 1, Delta: 5})
	if len(hi) < 5*len(lo) {
		t.Fatalf("rate 2.0 gave %d errors vs %d at rate 0.1", len(hi), len(lo))
	}
	if lo[0].Delta != 5 {
		t.Fatal("explicit delta ignored")
	}
	if got := Campaign(CampaignConfig{Blocks: 50, BlockSize: 8, RatePerIteration: 0, Seed: 1}); len(got) != 0 {
		t.Fatal("zero rate produced errors")
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const lambda = 1.5
	const trials = 20000
	sum := 0
	for i := 0; i < trials; i++ {
		sum += poisson(rng, lambda)
	}
	mean := float64(sum) / trials
	if mean < lambda*0.95 || mean > lambda*1.05 {
		t.Fatalf("poisson mean %.3f, want ~%.1f", mean, lambda)
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Fatal("non-positive rates must yield zero")
	}
}

func TestLedgerWidthHelpers(t *testing.T) {
	l := NewLedger()
	l.Mark(Injection{Kind: Storage, BI: 1, BJ: 0, Row: 3})
	l.Mark(Injection{Kind: Propagated, BI: 1, BJ: 0, Row: 5, Width: 1})
	l.Mark(Injection{Kind: Propagated, BI: 1, BJ: 0, Consistent: true, Width: 4})
	if got := l.PendingWidth(1, 0); got != 4 {
		t.Fatalf("PendingWidth = %d", got)
	}
	if got := l.DetectableWidth(1, 0); got != 1 {
		t.Fatalf("DetectableWidth = %d (consistent marks must not count)", got)
	}
	if got := l.ConsistentWidth(1, 0); got != 4 {
		t.Fatalf("ConsistentWidth = %d", got)
	}
	rows, unknown := l.DetectableProfile(1, 0)
	if len(rows) != 2 || unknown != 0 {
		t.Fatalf("profile rows=%v unknown=%d", rows, unknown)
	}
	// An unknown-position smear contributes to unknown, not rows.
	l.Mark(Injection{Kind: Propagated, BI: 1, BJ: 0, Row: -1, Width: 2})
	rows, unknown = l.DetectableProfile(1, 0)
	if len(rows) != 2 || unknown != 2 {
		t.Fatalf("profile rows=%v unknown=%d after wide smear", rows, unknown)
	}
	// Duplicate rows collapse.
	l.Mark(Injection{Kind: Computation, BI: 1, BJ: 0, Row: 3})
	rows, _ = l.DetectableProfile(1, 0)
	if len(rows) != 2 {
		t.Fatalf("duplicate row not collapsed: %v", rows)
	}
	if w := l.PendingWidth(9, 9); w != 0 {
		t.Fatal("clean block has width 0")
	}
}

func TestPropagatedString(t *testing.T) {
	in := Injection{Kind: Propagated, BI: 2, BJ: 1, Iter: 5, Width: 2}
	if in.String() == "" {
		t.Fatal("empty render")
	}
}
