// Package fault provides deterministic soft-error injection for the
// ABFT Cholesky experiments, covering the two error classes the paper
// distinguishes:
//
//   - computation errors ("1+1=3"): a kernel writes one wrong element
//     into its output block, while the block's running checksum —
//     updated by a separate operation — stays correct;
//   - storage errors (memory bit flips): an element of a block that is
//     already verified and resident in memory silently changes between
//     the last verification and the next read.
//
// Injection works on both execution planes. On the real-data plane the
// injector mutates the actual float64 buffers (flipping a mantissa or
// exponent bit, or adding an offset). On the model plane there is no
// data, so the injector records the corruption in a Ledger that the
// model executor's "verification" consults; the ledger also tracks
// propagation so the model plane knows when an error has polluted too
// many elements for checksum correction, exactly the failure mode that
// forces Offline- and Online-ABFT to redo the factorization.
//
// Injection outcomes surface in the observability layer: runs with
// Options.Metrics set account every injected, corrected, and
// restart-forcing fault under the fault.* and run.* metrics of the
// internal/obs catalog.
package fault

import "fmt"

// Kind classifies an injected (or derived) error.
type Kind int

const (
	// Computation is a wrong element written by an update kernel; the
	// block's checksum was updated correctly, so recalculation exposes
	// the mismatch immediately.
	Computation Kind = iota
	// Storage is a bit flip in a resident, previously-verified block.
	Storage
	// Propagated marks corruption produced by *using* a corrupted
	// block in an update: the wrongness smears across a whole row or
	// column of the output and exceeds the one-error-per-column
	// correction capability of the two-checksum code.
	Propagated
)

func (k Kind) String() string {
	switch k {
	case Computation:
		return "computation"
	case Storage:
		return "storage"
	case Propagated:
		return "propagated"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Injection is one recorded corruption of one block.
type Injection struct {
	Kind Kind
	// BI, BJ are the block coordinates (block row, block column).
	BI, BJ int
	// Row, Col locate the corrupted element inside the block
	// (meaningless for Propagated, which affects many elements).
	Row, Col int
	// Delta is the amount added to the element (real plane); the
	// checksum correction should recover exactly this.
	Delta float64
	// Iter is the outer iteration during which the error appeared.
	Iter int
	// Consistent marks propagated corruption whose checksum rows were
	// updated from the same corrupted data (the paper's fatal case):
	// the checksum invariant still holds over wrong data, so no
	// checksum verification can see it — only an end-of-run acceptance
	// test (or a broken POTF2 pivot) exposes it.
	Consistent bool
	// Width is how many distinct rows of the block a propagated smear
	// spans (0 means 1). Two column checksums repair at most one wrong
	// element per column, so a single-row smear is still correctable
	// while anything wider is not.
	Width int
}

func (in Injection) String() string {
	return fmt.Sprintf("%s error in block (%d,%d) elem (%d,%d) iter %d delta %g",
		in.Kind, in.BI, in.BJ, in.Row, in.Col, in.Iter, in.Delta)
}

// Detectable reports whether a checksum verification of the block can
// notice this injection at all. Consistent propagation is invisible:
// data and checksums were corrupted in lockstep.
func (in Injection) Detectable() bool {
	return !(in.Kind == Propagated && in.Consistent)
}

// Correctable reports whether a checksum verification of the block can
// repair this injection: one wrong element per block column is
// repairable, so plain injections and single-row inconsistent smears
// are; consistent corruption (invisible) and wider smears are not.
func (in Injection) Correctable() bool {
	if in.Kind != Propagated {
		return true
	}
	return !in.Consistent && in.Width <= 1
}

// EffectiveWidth is the row span this injection contributes when it
// propagates onward.
func (in Injection) EffectiveWidth() int {
	if in.Width < 1 {
		return 1
	}
	return in.Width
}
