package fault

// Tests for the ledger's damage-accounting queries — the widths and
// the per-row profile that the model-plane verification consults to
// decide what a checksum pass would see. The lifecycle basics
// (Mark/Clear/SetPending/Propagate/Reset) are in fault_test.go.

import "testing"

func TestLedgerPendingWidths(t *testing.T) {
	l := NewLedger()
	// A detectable single-row smear: correctable, width 1, known row.
	l.Propagate(0, 0, 1, 0, 3, false, 1, 7)
	// A checksum-consistent smear of width 2 into the same block: the
	// fatal class — invisible to verification.
	l.Propagate(0, 0, 1, 0, 3, true, 2, -1)
	if got := l.PendingWidth(1, 0); got != 2 {
		t.Fatalf("PendingWidth = %d, want 2 (widest pending smear)", got)
	}
	if got := l.DetectableWidth(1, 0); got != 1 {
		t.Fatalf("DetectableWidth = %d, want 1 (consistent smear invisible)", got)
	}
	if got := l.ConsistentWidth(1, 0); got != 2 {
		t.Fatalf("ConsistentWidth = %d, want 2", got)
	}
	if l.PendingWidth(9, 9) != 0 {
		t.Fatal("PendingWidth of clean block nonzero")
	}
}

func TestLedgerWidthFloorsAtOne(t *testing.T) {
	l := NewLedger()
	// Plain injections carry no explicit width; a single flipped
	// element still smears one row when it propagates.
	l.Mark(Injection{Kind: Computation, BI: 0, BJ: 0, Row: 2})
	if got := l.PendingWidth(0, 0); got != 1 {
		t.Fatalf("PendingWidth = %d, want 1 for a zero-width injection", got)
	}
	if got := l.DetectableWidth(0, 0); got != 1 {
		t.Fatalf("DetectableWidth = %d, want 1", got)
	}
	if got := l.ConsistentWidth(0, 0); got != 0 {
		t.Fatalf("ConsistentWidth = %d, want 0 (plain injections are visible)", got)
	}
}

func TestLedgerDetectableProfile(t *testing.T) {
	l := NewLedger()
	// Two plain injections in the same known row plus one in another
	// row: rows must deduplicate.
	l.Mark(Injection{Kind: Computation, BI: 2, BJ: 1, Row: 4, Iter: 0})
	l.Mark(Injection{Kind: Storage, BI: 2, BJ: 1, Row: 4, Iter: 1})
	l.Mark(Injection{Kind: Computation, BI: 2, BJ: 1, Row: 6, Iter: 1})
	// A single-row propagated smear with a known row counts as a row.
	l.Propagate(0, 0, 2, 1, 2, false, 1, 8)
	// A wide detectable smear contributes unknown damage instead.
	l.Propagate(0, 0, 2, 1, 2, false, 3, -1)
	// A consistent smear is invisible and must not show up at all.
	l.Propagate(0, 0, 2, 1, 2, true, 5, -1)
	rows, unknown := l.DetectableProfile(2, 1)
	want := map[int]bool{4: true, 6: true, 8: true}
	if len(rows) != 3 {
		t.Fatalf("rows = %v, want the three distinct known rows", rows)
	}
	for _, r := range rows {
		if !want[r] {
			t.Fatalf("rows = %v contains unexpected row %d", rows, r)
		}
	}
	if unknown != 3 {
		t.Fatalf("unknown = %d, want 3 (width of the wide visible smear)", unknown)
	}
}

func TestLedgerProfileOfCleanBlock(t *testing.T) {
	l := NewLedger()
	rows, unknown := l.DetectableProfile(0, 0)
	if len(rows) != 0 || unknown != 0 {
		t.Fatalf("clean block profile = (%v, %d), want empty", rows, unknown)
	}
}

func TestLedgerHistoryOrderAndClearIdempotence(t *testing.T) {
	l := NewLedger()
	in1 := Injection{Kind: Computation, BI: 1, BJ: 2, Row: 3, Col: 4, Delta: 0.5, Iter: 1}
	in2 := Injection{Kind: Storage, BI: 1, BJ: 2, Row: 5, Col: 6, Delta: 0.25, Iter: 2}
	l.Mark(in1)
	l.Mark(in2)
	if l.CorruptBlocks() != 1 {
		t.Fatalf("CorruptBlocks = %d, want 1 (both marks hit one block)", l.CorruptBlocks())
	}
	if cleared := l.Clear(1, 2); len(cleared) != 2 {
		t.Fatalf("Clear drained %d injections, want 2", len(cleared))
	}
	if again := l.Clear(1, 2); len(again) != 0 {
		t.Fatal("Clear of a clean block returned injections")
	}
	if h := l.History(); len(h) != 2 || h[0] != in1 || h[1] != in2 {
		t.Fatalf("History = %v, want the two marks in order", h)
	}
	// The ledger stays usable after Reset, and history keeps growing.
	l.Reset()
	l.Mark(Injection{Kind: Computation, BI: 1, BJ: 1})
	if !l.IsCorrupt(1, 1) || len(l.History()) != 3 {
		t.Fatal("ledger unusable after Reset")
	}
}
