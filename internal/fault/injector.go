package fault

import "math"

// Op identifies which update operation of the blocked Cholesky an
// injection hook fires after. It mirrors the four MAGMA kernels.
type Op int

const (
	OpSYRK Op = iota
	OpGEMM
	OpPOTF2
	OpTRSM
)

func (o Op) String() string {
	switch o {
	case OpSYRK:
		return "SYRK"
	case OpGEMM:
		return "GEMM"
	case OpPOTF2:
		return "POTF2"
	case OpTRSM:
		return "TRSM"
	}
	return "Op(?)"
}

// Scenario describes one error to inject.
type Scenario struct {
	// Kind must be Computation or Storage.
	Kind Kind
	// Iter is the outer iteration at which the error appears.
	// Storage errors fire at the top of the iteration (the corrupted
	// block sat in memory since an earlier iteration); computation
	// errors fire when the matching kernel writes its output.
	Iter int
	// Op is the kernel whose output a computation error lands in
	// (default OpGEMM, the operation that dominates the run).
	Op Op
	// BI, BJ select the target block; leave both negative for the
	// default (the first matching block of the iteration for
	// computation errors; the already-factored block (Iter, Iter-1)
	// for storage errors).
	BI, BJ int
	// Row, Col locate the element inside the block.
	Row, Col int
	// Delta, when non-zero, is added to the element. When zero, Bit
	// selects a bit of the float64 representation to flip (default 52,
	// the lowest exponent bit — a large, ECC-escaping corruption).
	Delta float64
	Bit   int
}

// DefaultComputation returns the paper's computation-error scenario:
// one wrong element in a GEMM output block mid-factorization.
func DefaultComputation(iter int) Scenario {
	return Scenario{Kind: Computation, Iter: iter, Op: OpGEMM, BI: -1, BJ: -1, Row: 2, Col: 3}
}

// DefaultStorage returns the paper's storage-error scenario: a bit
// flip in an already-factored, already-verified panel block that is
// about to be read again.
func DefaultStorage(iter int) Scenario {
	return Scenario{Kind: Storage, Iter: iter, BI: -1, BJ: -1, Row: 1, Col: 2}
}

// Applier mutates a real data block; the model plane leaves it nil.
type Applier interface {
	// Corrupt perturbs element (row, col) of block (bi, bj), adding
	// delta when delta != 0 or flipping the given bit otherwise, and
	// returns the signed change actually applied to the value.
	Corrupt(bi, bj, row, col int, delta float64, bit int) float64
}

// Injector drives a set of scenarios against one factorization run.
// The executor calls StorageTick at the top of every outer iteration
// and KernelTick after every update kernel; the injector fires each
// scenario exactly once.
type Injector struct {
	Ledger  *Ledger
	Applier Applier

	scenarios []Scenario
	fired     []bool
}

// NewInjector builds an injector over the given scenarios (none is
// valid: the injector then never fires).
func NewInjector(ledger *Ledger, scenarios ...Scenario) *Injector {
	if ledger == nil {
		ledger = NewLedger()
	}
	return &Injector{
		Ledger:    ledger,
		scenarios: scenarios,
		fired:     make([]bool, len(scenarios)),
	}
}

// Rearm marks every scenario un-fired again. A restarted
// factorization (the Offline/Online redo path) does NOT rearm: the
// paper's experiments inject each error once, so the redo runs clean.
func (inj *Injector) Rearm() {
	for i := range inj.fired {
		inj.fired[i] = false
	}
}

// Injected reports how many scenarios have fired so far.
func (inj *Injector) Injected() int {
	n := 0
	for _, f := range inj.fired {
		if f {
			n++
		}
	}
	return n
}

// StorageTick fires pending storage scenarios scheduled for iter.
func (inj *Injector) StorageTick(iter int) {
	for i, sc := range inj.scenarios {
		if inj.fired[i] || sc.Kind != Storage || sc.Iter != iter {
			continue
		}
		bi, bj := sc.BI, sc.BJ
		if bi < 0 || bj < 0 {
			// Default: the factored panel block one column back; it
			// was last verified when it was produced and will be read
			// by this iteration's SYRK/GEMM.
			if iter == 0 {
				continue // nothing factored yet; scenario misconfigured
			}
			bi, bj = iter, iter-1
		}
		inj.fire(i, Injection{Kind: Storage, BI: bi, BJ: bj, Row: sc.Row, Col: sc.Col, Iter: iter}, sc)
	}
}

// KernelTick fires pending computation scenarios when kernel op has
// just written block (bi, bj) during iteration iter.
func (inj *Injector) KernelTick(op Op, iter, bi, bj int) {
	for i, sc := range inj.scenarios {
		if inj.fired[i] || sc.Kind != Computation || sc.Iter != iter || sc.Op != op {
			continue
		}
		if sc.BI >= 0 && sc.BJ >= 0 && (sc.BI != bi || sc.BJ != bj) {
			continue
		}
		inj.fire(i, Injection{Kind: Computation, BI: bi, BJ: bj, Row: sc.Row, Col: sc.Col, Iter: iter}, sc)
	}
}

func (inj *Injector) fire(idx int, in Injection, sc Scenario) {
	inj.fired[idx] = true
	in.Delta = sc.Delta
	if inj.Applier != nil {
		bit := sc.Bit
		if sc.Delta == 0 && bit == 0 {
			bit = 52
		}
		in.Delta = inj.Applier.Corrupt(in.BI, in.BJ, in.Row, in.Col, sc.Delta, bit)
	} else if in.Delta == 0 {
		// Model plane with a bit-flip scenario: the exact delta is
		// unknowable without data; record a stand-in magnitude.
		in.Delta = 1
	}
	inj.Ledger.Mark(in)
}

// FlipBit returns v with the given bit (0 = least significant mantissa
// bit, 52..62 exponent, 63 sign) of its IEEE-754 representation
// inverted.
func FlipBit(v float64, bit int) float64 {
	if bit < 0 || bit > 63 {
		panic("fault: bit out of range")
	}
	return math.Float64frombits(math.Float64bits(v) ^ (1 << uint(bit)))
}
