package fault

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if Computation.String() != "computation" || Storage.String() != "storage" || Propagated.String() != "propagated" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind must render")
	}
}

func TestInjectionCorrectable(t *testing.T) {
	if !(Injection{Kind: Computation}).Correctable() {
		t.Fatal("computation errors are correctable")
	}
	if !(Injection{Kind: Storage}).Correctable() {
		t.Fatal("storage errors are correctable when caught before use")
	}
	if !(Injection{Kind: Propagated, Width: 1}).Correctable() {
		t.Fatal("a single-row inconsistent smear is one error per column: correctable")
	}
	if (Injection{Kind: Propagated, Width: 2}).Correctable() {
		t.Fatal("multi-row smears are not correctable")
	}
	if (Injection{Kind: Propagated, Consistent: true}).Correctable() {
		t.Fatal("consistent corruption is invisible, never correctable")
	}
	if !(Injection{Kind: Storage}).Detectable() {
		t.Fatal("plain injections are detectable")
	}
	if (Injection{Kind: Propagated, Width: 3}).EffectiveWidth() != 3 {
		t.Fatal("width not carried")
	}
	if (Injection{Kind: Storage}).EffectiveWidth() != 1 {
		t.Fatal("plain injections span one row")
	}
}

func TestLedgerSetPending(t *testing.T) {
	l := NewLedger()
	l.Mark(Injection{Kind: Storage, BI: 1, BJ: 0})
	l.Mark(Injection{Kind: Propagated, BI: 1, BJ: 0, Consistent: true})
	keep := []Injection{l.Pending(1, 0)[1]}
	l.SetPending(1, 0, keep)
	if got := l.Pending(1, 0); len(got) != 1 || got[0].Kind != Propagated {
		t.Fatalf("pending after SetPending = %v", got)
	}
	l.SetPending(1, 0, nil)
	if l.IsCorrupt(1, 0) {
		t.Fatal("empty SetPending must clear the block")
	}
}

func TestLedgerMarkClear(t *testing.T) {
	l := NewLedger()
	if l.AnyCorrupt() {
		t.Fatal("fresh ledger corrupt")
	}
	l.Mark(Injection{Kind: Storage, BI: 2, BJ: 1, Row: 3, Col: 4, Delta: 5})
	if !l.IsCorrupt(2, 1) || l.IsCorrupt(1, 2) {
		t.Fatal("corruption misplaced")
	}
	if got := len(l.Pending(2, 1)); got != 1 {
		t.Fatalf("pending = %d", got)
	}
	repaired := l.Clear(2, 1)
	if len(repaired) != 1 || repaired[0].Delta != 5 {
		t.Fatalf("cleared %v", repaired)
	}
	if l.AnyCorrupt() {
		t.Fatal("ledger still corrupt after clear")
	}
	if len(l.History()) != 1 {
		t.Fatal("history lost after clear")
	}
}

func TestLedgerPropagate(t *testing.T) {
	l := NewLedger()
	l.Mark(Injection{Kind: Storage, BI: 3, BJ: 0})
	l.Propagate(3, 0, 5, 3, 4, true, 1, -1)
	if !l.IsCorrupt(5, 3) {
		t.Fatal("propagation not recorded")
	}
	ins := l.Pending(5, 3)
	if len(ins) != 1 || ins[0].Kind != Propagated || ins[0].Iter != 4 {
		t.Fatalf("propagated injection = %v", ins)
	}
	if ins[0].Detectable() {
		t.Fatal("consistent propagation must be checksum-invisible")
	}
	l.Propagate(3, 0, 6, 3, 4, false, 1, 2)
	if !l.Pending(6, 3)[0].Detectable() {
		t.Fatal("inconsistent propagation must be detectable")
	}
	if !l.IsCorrupt(3, 0) {
		t.Fatal("source must stay corrupted")
	}
	if l.CorruptBlocks() != 3 {
		t.Fatalf("corrupt blocks = %d, want source plus two destinations", l.CorruptBlocks())
	}
}

func TestLedgerReset(t *testing.T) {
	l := NewLedger()
	l.Mark(Injection{Kind: Storage, BI: 1, BJ: 1})
	l.Reset()
	if l.AnyCorrupt() {
		t.Fatal("reset left corruption")
	}
	if len(l.History()) != 1 {
		t.Fatal("reset must keep history")
	}
}

func TestFlipBit(t *testing.T) {
	v := 1.5
	f := FlipBit(v, 52)
	if f == v {
		t.Fatal("flip changed nothing")
	}
	if FlipBit(f, 52) != v {
		t.Fatal("double flip must restore")
	}
	if FlipBit(3.0, 63) != -3.0 {
		t.Fatal("bit 63 is the sign")
	}
}

func TestFlipBitInvolutionProperty(t *testing.T) {
	f := func(v float64, bit uint8) bool {
		b := int(bit % 64)
		return FlipBit(FlipBit(v, b), b) == v || math.IsNaN(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlipBitRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bit 64")
		}
	}()
	FlipBit(1, 64)
}

type recordApplier struct {
	calls []Injection
	delta float64
}

func (r *recordApplier) Corrupt(bi, bj, row, col int, delta float64, bit int) float64 {
	r.calls = append(r.calls, Injection{BI: bi, BJ: bj, Row: row, Col: col, Delta: delta})
	if delta != 0 {
		return delta
	}
	return r.delta
}

func TestInjectorComputationFiresOnceOnMatchingKernel(t *testing.T) {
	l := NewLedger()
	inj := NewInjector(l, DefaultComputation(3))
	// Wrong iteration and wrong op: nothing happens.
	inj.KernelTick(OpGEMM, 2, 4, 2)
	inj.KernelTick(OpSYRK, 3, 3, 3)
	if inj.Injected() != 0 {
		t.Fatal("fired early")
	}
	inj.KernelTick(OpGEMM, 3, 4, 3)
	if inj.Injected() != 1 || !l.IsCorrupt(4, 3) {
		t.Fatal("did not fire on matching GEMM")
	}
	// Exactly once: later GEMMs of the same iteration do nothing.
	inj.KernelTick(OpGEMM, 3, 5, 3)
	if l.IsCorrupt(5, 3) {
		t.Fatal("fired twice")
	}
}

func TestInjectorComputationSpecificBlock(t *testing.T) {
	sc := DefaultComputation(2)
	sc.BI, sc.BJ = 6, 2
	l := NewLedger()
	inj := NewInjector(l, sc)
	inj.KernelTick(OpGEMM, 2, 3, 2) // not the chosen block
	if inj.Injected() != 0 {
		t.Fatal("fired on wrong block")
	}
	inj.KernelTick(OpGEMM, 2, 6, 2)
	if !l.IsCorrupt(6, 2) {
		t.Fatal("did not fire on chosen block")
	}
}

func TestInjectorStorageDefaultsToFactoredPanelBlock(t *testing.T) {
	l := NewLedger()
	inj := NewInjector(l, DefaultStorage(4))
	inj.StorageTick(3)
	if inj.Injected() != 0 {
		t.Fatal("fired at wrong iteration")
	}
	inj.StorageTick(4)
	if !l.IsCorrupt(4, 3) {
		t.Fatalf("storage default target wrong; pending=%d", l.CorruptBlocks())
	}
	ins := l.Pending(4, 3)
	if ins[0].Kind != Storage || ins[0].Iter != 4 {
		t.Fatalf("injection = %v", ins[0])
	}
}

func TestInjectorStorageAtIterZeroSkipped(t *testing.T) {
	inj := NewInjector(nil, DefaultStorage(0))
	inj.StorageTick(0)
	if inj.Injected() != 0 {
		t.Fatal("storage error with no factored blocks must not fire")
	}
}

func TestInjectorApplierReceivesTarget(t *testing.T) {
	ra := &recordApplier{delta: 7.5}
	sc := DefaultStorage(2)
	sc.Row, sc.Col = 5, 6
	l := NewLedger()
	inj := NewInjector(l, sc)
	inj.Applier = ra
	inj.StorageTick(2)
	if len(ra.calls) != 1 {
		t.Fatal("applier not called")
	}
	c := ra.calls[0]
	if c.BI != 2 || c.BJ != 1 || c.Row != 5 || c.Col != 6 {
		t.Fatalf("applier call %+v", c)
	}
	// Bit-flip scenarios record the applied delta from the applier.
	if got := l.Pending(2, 1)[0].Delta; got != 7.5 {
		t.Fatalf("ledger delta = %g, want applier's 7.5", got)
	}
}

func TestInjectorExplicitDelta(t *testing.T) {
	sc := DefaultComputation(1)
	sc.Delta = -3
	l := NewLedger()
	inj := NewInjector(l, sc)
	inj.KernelTick(OpGEMM, 1, 2, 1)
	if got := l.Pending(2, 1)[0].Delta; got != -3 {
		t.Fatalf("delta = %g", got)
	}
}

func TestInjectorRearm(t *testing.T) {
	inj := NewInjector(nil, DefaultComputation(1))
	inj.KernelTick(OpGEMM, 1, 2, 1)
	if inj.Injected() != 1 {
		t.Fatal("no fire")
	}
	inj.Rearm()
	if inj.Injected() != 0 {
		t.Fatal("rearm failed")
	}
	inj.KernelTick(OpGEMM, 1, 2, 1)
	if inj.Injected() != 1 {
		t.Fatal("no fire after rearm")
	}
}

func TestInjectorMultipleScenarios(t *testing.T) {
	l := NewLedger()
	inj := NewInjector(l, DefaultComputation(1), DefaultStorage(2))
	inj.KernelTick(OpGEMM, 1, 3, 1)
	inj.StorageTick(2)
	if inj.Injected() != 2 {
		t.Fatalf("injected = %d, want 2", inj.Injected())
	}
	if !l.IsCorrupt(3, 1) || !l.IsCorrupt(2, 1) {
		t.Fatal("targets missing")
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{OpSYRK: "SYRK", OpGEMM: "GEMM", OpPOTF2: "POTF2", OpTRSM: "TRSM"} {
		if op.String() != want {
			t.Fatalf("%v != %s", op, want)
		}
	}
}
