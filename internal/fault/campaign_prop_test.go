package fault

import (
	"encoding/json"
	"reflect"
	"testing"
	"testing/quick"
)

// clampCampaign maps arbitrary fuzz inputs into a valid campaign
// config, so the properties below quantify over the whole (Blocks,
// BlockSize, Rate, Seed, Class, BurstSize) space without rejecting
// draws.
func clampCampaign(blocks, blockSize uint8, rateMil uint16, seed int64, classIdx, burstSize uint8) CampaignConfig {
	all := Classes()
	return CampaignConfig{
		Blocks:           2 + int(blocks)%48,
		BlockSize:        1 + int(blockSize)%128,
		RatePerIteration: float64(rateMil%3000) / 1000, // 0 .. 3 arrivals/iteration
		Seed:             seed,
		Class:            all[int(classIdx)%len(all)],
		BurstSize:        int(burstSize) % 6, // 0 exercises the default
	}
}

// checkCampaignInvariants asserts, for one config, the two satellite
// properties: split/merge invariance (one whole-campaign pass equals
// concatenating per-iteration CampaignAt passes, each re-deriving its
// sub-seeded stream) and per-scenario well-formedness — every storage
// strike hits a live factored block (k < j <= i < Blocks), every
// compute strike hits a GEMM output of its iteration (j < i < Blocks),
// elements stay inside the block, and the class's Delta/Bit semantics
// hold.
func checkCampaignInvariants(t *testing.T, cfg CampaignConfig) {
	t.Helper()
	whole := Campaign(cfg)
	var merged []Scenario
	for j := -1; j <= cfg.Blocks+1; j++ { // out-of-range iterations must contribute nothing
		merged = append(merged, CampaignAt(cfg, j)...)
	}
	if !reflect.DeepEqual(whole, merged) {
		t.Fatalf("split/merge mismatch for %+v: one pass %d scenarios, merged %d", cfg, len(whole), len(merged))
	}

	norm := cfg.Normalized()
	for _, s := range whole {
		j := s.Iter
		if j < 1 || j >= cfg.Blocks {
			t.Fatalf("iteration %d out of range for %+v", j, cfg)
		}
		switch norm.Class.Strike {
		case StrikeCompute:
			if s.Kind != Computation || s.Op != OpGEMM {
				t.Fatalf("compute class generated %v/%v", s.Kind, s.Op)
			}
			if s.BJ != j || s.BI <= j || s.BI >= cfg.Blocks {
				t.Fatalf("compute target (%d,%d) invalid at iteration %d", s.BI, s.BJ, j)
			}
		default:
			if s.Kind != Storage {
				t.Fatalf("storage class generated %v", s.Kind)
			}
			// Live factored data: column before the iteration, row at
			// or below it (k < j <= i).
			if s.BJ >= j || s.BI < j || s.BI >= cfg.Blocks {
				t.Fatalf("storage target (%d,%d) invalid at iteration %d", s.BI, s.BJ, j)
			}
		}
		if s.Row < 0 || s.Row >= cfg.BlockSize || s.Col < 0 || s.Col >= cfg.BlockSize {
			t.Fatalf("element (%d,%d) outside a %d-block", s.Row, s.Col, cfg.BlockSize)
		}
		switch norm.Class.Flavor {
		case FlavorMantissa:
			if s.Delta != 0 || s.Bit < mantissaBitLo || s.Bit >= mantissaBitHi {
				t.Fatalf("mantissa scenario delta=%g bit=%d", s.Delta, s.Bit)
			}
		case FlavorExponent:
			if s.Delta != 0 || s.Bit < exponentBitLo || s.Bit >= exponentBitHi {
				t.Fatalf("exponent scenario delta=%g bit=%d", s.Delta, s.Bit)
			}
		default:
			if s.Delta != norm.Delta || s.Bit != 0 {
				t.Fatalf("offset scenario delta=%g bit=%d (want delta=%g)", s.Delta, s.Bit, norm.Delta)
			}
		}
	}

	// Burst arrivals: scenarios come in groups of BurstSize sharing
	// iteration, block, and column, with distinct rows.
	if norm.Class.Burst {
		if len(whole)%norm.BurstSize != 0 {
			t.Fatalf("burst campaign length %d not a multiple of burst size %d", len(whole), norm.BurstSize)
		}
		for g := 0; g < len(whole); g += norm.BurstSize {
			first := whole[g]
			rows := map[int]bool{}
			for _, s := range whole[g : g+norm.BurstSize] {
				if s.Iter != first.Iter || s.BI != first.BI || s.BJ != first.BJ || s.Col != first.Col {
					t.Fatalf("burst group at %d not confined to one block column", g)
				}
				if rows[s.Row] {
					t.Fatalf("burst group at %d repeats row %d", g, s.Row)
				}
				rows[s.Row] = true
			}
		}
	}
}

// TestCampaignSplitMergeProperty drives the invariants over the
// config space with testing/quick (deterministic default source).
func TestCampaignSplitMergeProperty(t *testing.T) {
	prop := func(blocks, blockSize uint8, rateMil uint16, seed int64, classIdx, burstSize uint8) bool {
		checkCampaignInvariants(t, clampCampaign(blocks, blockSize, rateMil, seed, classIdx, burstSize))
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// FuzzCampaignInvariants is the same property under the fuzzer, so
// `go test` replays the seed corpus and `go test -fuzz=FuzzCampaign`
// explores further.
func FuzzCampaignInvariants(f *testing.F) {
	f.Add(uint8(16), uint8(32), uint16(500), int64(7), uint8(0), uint8(0))
	f.Add(uint8(4), uint8(1), uint16(2999), int64(-1), uint8(7), uint8(5))
	f.Add(uint8(40), uint8(128), uint16(50), int64(1<<62), uint8(11), uint8(2))
	f.Fuzz(func(t *testing.T, blocks, blockSize uint8, rateMil uint16, seed int64, classIdx, burstSize uint8) {
		checkCampaignInvariants(t, clampCampaign(blocks, blockSize, rateMil, seed, classIdx, burstSize))
	})
}

// TestCampaignConfigRoundTrip pins the journal contract behind the
// explicit-default fix: a config — in particular the zero value, which
// once silently meant Delta=100 — serializes through JSON (the
// campaign journal's header encoding) and back without mutation.
// Defaults are applied only by Normalized, which is idempotent.
func TestCampaignConfigRoundTrip(t *testing.T) {
	configs := []CampaignConfig{
		{}, // the zero value must survive untouched
		{Blocks: 16, BlockSize: 32, RatePerIteration: 0.5, Seed: 42},
		{Blocks: 8, BlockSize: 64, RatePerIteration: 1.5, Seed: -3,
			Class: Class{Strike: StrikeCompute, Flavor: FlavorExponent, Burst: true},
			Delta: 7, BurstSize: 3},
	}
	for _, cfg := range configs {
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var back CampaignConfig
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !reflect.DeepEqual(cfg, back) {
			t.Fatalf("config mutated through JSON: %+v -> %s -> %+v", cfg, data, back)
		}
		once := cfg.Normalized()
		if twice := once.Normalized(); !reflect.DeepEqual(once, twice) {
			t.Fatalf("Normalized not idempotent: %+v vs %+v", once, twice)
		}
	}
}

// TestCampaignDeltaSemanticsPerClass pins the per-class Delta rules
// the fix introduced: offset classes default to DefaultDelta, explicit
// deltas are honored, and flip classes zero the delta and carry a bit
// instead.
func TestCampaignDeltaSemanticsPerClass(t *testing.T) {
	base := CampaignConfig{Blocks: 12, BlockSize: 16, RatePerIteration: 1, Seed: 3}

	if got := base.Normalized().Delta; got != DefaultDelta {
		t.Fatalf("offset default delta = %g, want DefaultDelta (%g)", got, DefaultDelta)
	}
	withDelta := base
	withDelta.Delta = 5
	if got := withDelta.Normalized().Delta; got != 5 {
		t.Fatalf("explicit delta overridden: %g", got)
	}
	exp := base
	exp.Class.Flavor = FlavorExponent
	exp.Delta = 5 // must be ignored: exponent faults flip a bit
	if got := exp.Normalized().Delta; got != 0 {
		t.Fatalf("exponent class kept delta %g", got)
	}
	for _, s := range Campaign(exp) {
		if s.Delta != 0 || s.Bit < exponentBitLo || s.Bit >= exponentBitHi {
			t.Fatalf("exponent scenario delta=%g bit=%d", s.Delta, s.Bit)
		}
	}

	burst := base
	burst.Class.Burst = true
	if got := burst.Normalized().BurstSize; got != DefaultBurstSize {
		t.Fatalf("burst default size = %d", got)
	}
	tiny := burst
	tiny.BlockSize = 1 // burst cannot exceed the distinct rows available
	if got := tiny.Normalized().BurstSize; got != 1 {
		t.Fatalf("burst size not clamped to block size: %d", got)
	}
	if got := base.Normalized().BurstSize; got != 0 {
		t.Fatalf("non-burst class kept burst size %d", got)
	}
}

// TestParseClassRoundTrip pins the Key spelling as the parse/print
// identity for every class.
func TestParseClassRoundTrip(t *testing.T) {
	for _, c := range Classes() {
		got, err := ParseClass(c.Key())
		if err != nil {
			t.Fatal(err)
		}
		if got != c {
			t.Fatalf("ParseClass(%q) = %+v", c.Key(), got)
		}
		if c.Describe() == "" {
			t.Fatalf("class %q has no description", c.Key())
		}
	}
	for _, bad := range []string{"", "storage", "storage-offset-burst-x", "disk-offset", "storage-sign"} {
		if _, err := ParseClass(bad); err == nil {
			t.Fatalf("ParseClass(%q) accepted", bad)
		}
	}
	if c, err := ParseClass("memory-offset"); err != nil || c.Strike != StrikeStorage {
		t.Fatalf("memory alias: %+v, %v", c, err)
	}
}

// TestSubSeedSpread sanity-checks the derivation: distinct iterations
// and seeds give distinct streams.
func TestSubSeedSpread(t *testing.T) {
	seen := map[int64]bool{}
	for iter := 0; iter < 1000; iter++ {
		s := SubSeed(99, iter)
		if seen[s] {
			t.Fatalf("SubSeed collision at iteration %d", iter)
		}
		seen[s] = true
	}
	if SubSeed(1, 5) == SubSeed(2, 5) {
		t.Fatal("different master seeds collided")
	}
}
