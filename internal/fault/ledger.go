package fault

// Ledger tracks which blocks currently hold undetected corruption.
// The real-data plane uses it for assertions in tests; the model plane
// uses it as the source of truth for what a checksum verification
// would find.
type Ledger struct {
	pending map[[2]int][]Injection
	history []Injection
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{pending: make(map[[2]int][]Injection)}
}

// Mark records a new corruption of block (bi, bj).
func (l *Ledger) Mark(in Injection) {
	key := [2]int{in.BI, in.BJ}
	l.pending[key] = append(l.pending[key], in)
	l.history = append(l.history, in)
}

// Pending returns the unrepaired injections currently in block
// (bi, bj) without clearing them.
func (l *Ledger) Pending(bi, bj int) []Injection {
	return l.pending[[2]int{bi, bj}]
}

// Clear removes the pending corruption of a block (a successful
// verification + correction, or the block being overwritten wholesale)
// and returns what was repaired.
func (l *Ledger) Clear(bi, bj int) []Injection {
	key := [2]int{bi, bj}
	ins := l.pending[key]
	if len(ins) > 0 {
		delete(l.pending, key)
	}
	return ins
}

// SetPending replaces the pending set of block (bi, bj), used by
// verification logic that repairs some injections of a block while
// leaving others (e.g. checksum-consistent corruption it cannot see).
func (l *Ledger) SetPending(bi, bj int, ins []Injection) {
	key := [2]int{bi, bj}
	if len(ins) == 0 {
		delete(l.pending, key)
		return
	}
	l.pending[key] = ins
}

// IsCorrupt reports whether block (bi, bj) has unrepaired corruption.
func (l *Ledger) IsCorrupt(bi, bj int) bool {
	return len(l.pending[[2]int{bi, bj}]) > 0
}

// Propagate records that corrupted block (srcI, srcJ) was read to
// update block (dstI, dstJ): the destination now carries a smear of
// the given row width. The source stays corrupted. consistent marks
// the fatal case where the destination's checksums were updated from
// the same corrupted data, making the smear checksum-invisible. row
// identifies the damaged row when the smear spans exactly one known
// row (-1 otherwise); smears from one source stay in that source's
// row, which is what keeps single-error cascades correctable.
func (l *Ledger) Propagate(srcI, srcJ, dstI, dstJ, iter int, consistent bool, width, row int) {
	l.Mark(Injection{Kind: Propagated, BI: dstI, BJ: dstJ, Row: row, Iter: iter, Consistent: consistent, Width: width})
}

// DetectableProfile summarizes a block's checksum-visible damage by
// row: rows lists the distinct known damaged row indices and unknown
// counts additional damaged rows at unknown positions.
func (l *Ledger) DetectableProfile(bi, bj int) (rows []int, unknown int) {
	seen := map[int]bool{}
	for _, in := range l.pending[[2]int{bi, bj}] {
		if !in.Detectable() {
			continue
		}
		if in.Kind != Propagated || (in.EffectiveWidth() == 1 && in.Row >= 0) {
			if !seen[in.Row] {
				seen[in.Row] = true
				rows = append(rows, in.Row)
			}
			continue
		}
		unknown += in.EffectiveWidth()
	}
	return rows, unknown
}

// PendingWidth returns the widest row span among a block's pending
// corruption (0 when clean), the width its onward propagation carries.
func (l *Ledger) PendingWidth(bi, bj int) int {
	w := 0
	for _, in := range l.pending[[2]int{bi, bj}] {
		if ew := in.EffectiveWidth(); ew > w {
			w = ew
		}
	}
	return w
}

// DetectableWidth is PendingWidth restricted to checksum-visible
// corruption: the part of a block's damage that disagrees with its
// stored checksums. Consistent corruption contributes nothing here —
// when such a block's checksums feed an update, the output's checksums
// track the corrupt result and the propagated damage is invisible too.
func (l *Ledger) DetectableWidth(bi, bj int) int {
	w := 0
	for _, in := range l.pending[[2]int{bi, bj}] {
		if !in.Detectable() {
			continue
		}
		if ew := in.EffectiveWidth(); ew > w {
			w = ew
		}
	}
	return w
}

// ConsistentWidth is the counterpart: the widest checksum-invisible
// pending corruption.
func (l *Ledger) ConsistentWidth(bi, bj int) int {
	w := 0
	for _, in := range l.pending[[2]int{bi, bj}] {
		if in.Detectable() {
			continue
		}
		if ew := in.EffectiveWidth(); ew > w {
			w = ew
		}
	}
	return w
}

// AnyCorrupt reports whether any block is still corrupted.
func (l *Ledger) AnyCorrupt() bool { return len(l.pending) > 0 }

// CorruptBlocks returns the number of blocks with pending corruption.
func (l *Ledger) CorruptBlocks() int { return len(l.pending) }

// History returns every injection ever recorded, including repaired
// ones, in order.
func (l *Ledger) History() []Injection { return l.history }

// Reset drops all pending corruption but keeps history. Used when a
// failed factorization restarts from the pristine input (the paper's
// "redo the whole decomposition" recovery).
func (l *Ledger) Reset() {
	l.pending = make(map[[2]int][]Injection)
}
