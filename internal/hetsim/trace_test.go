package hetsim

import (
	"math"
	"strings"
	"testing"
)

func TestTraceRecordsKernelsAndTransfers(t *testing.T) {
	p := NewPlatform(Laptop())
	tr := p.StartTrace()
	gs := p.GPUStream()
	cs := p.CPUStream()
	p.GPU.Launch(gs, Kernel{Name: "gemm[0]", Class: ClassGEMM, Flops: 1e8})
	p.CPU.Launch(cs, Kernel{Name: "potf2[0]", Class: ClassPOTF2, Flops: 1e6})
	p.Link.Transfer(gs, DeviceToHost, 1e6)
	if len(tr.Spans) != 3 {
		t.Fatalf("spans = %d", len(tr.Spans))
	}
	if got := tr.ByName("gemm"); len(got) != 1 || got[0].Resource != "gpu" {
		t.Fatalf("gemm span %v", got)
	}
	if got := tr.ByName("potf2"); len(got) != 1 || got[0].Resource != "cpu" {
		t.Fatalf("potf2 span %v", got)
	}
	if got := tr.ByName("xfer"); len(got) != 1 || got[0].Resource != "d2h" {
		t.Fatalf("xfer span %v", got)
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	p := NewPlatform(Laptop())
	gs := p.GPUStream()
	p.GPU.Launch(gs, Kernel{Name: "k", Class: ClassGEMM, Flops: 1e6})
	// No panic and nothing recorded anywhere: Launch tolerates nil.
}

func TestSpanOverlapAndDuration(t *testing.T) {
	a := Span{Start: 0, End: 2}
	b := Span{Start: 1, End: 3}
	c := Span{Start: 2, End: 4}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("overlapping spans not detected")
	}
	if a.Overlaps(c) {
		t.Fatal("touching spans must not count as overlap")
	}
	if a.Duration() != 2 {
		t.Fatal("duration wrong")
	}
}

func TestBusyTimeUnionsOverlaps(t *testing.T) {
	tr := &Trace{Spans: []Span{
		{Resource: "gpu", Start: 0, End: 2},
		{Resource: "gpu", Start: 1, End: 3},
		{Resource: "gpu", Start: 10, End: 11},
		{Resource: "cpu", Start: 0, End: 100},
	}}
	if got := tr.BusyTime("gpu"); math.Abs(got-4) > 1e-12 {
		t.Fatalf("gpu busy = %g, want 4", got)
	}
	if got := tr.BusyTime("cpu"); got != 100 {
		t.Fatalf("cpu busy = %g", got)
	}
	if got := tr.BusyTime("d2h"); got != 0 {
		t.Fatalf("empty resource busy = %g", got)
	}
}

func TestOverlapTime(t *testing.T) {
	tr := &Trace{Spans: []Span{
		{Name: "potf2[0]", Start: 0, End: 4},
		{Name: "gemm[0]", Start: 1, End: 3},
		{Name: "gemm[1]", Start: 2, End: 6},
	}}
	// potf2 overlaps gemm[0] on [1,3] and gemm[1] on [2,4]: union [1,4].
	if got := tr.OverlapTime("potf2", "gemm"); math.Abs(got-3) > 1e-12 {
		t.Fatalf("overlap = %g, want 3", got)
	}
	if got := tr.OverlapTime("potf2", "nothing"); got != 0 {
		t.Fatalf("phantom overlap %g", got)
	}
}

func TestMaxConcurrency(t *testing.T) {
	tr := &Trace{Spans: []Span{
		{Class: ClassChkRecalc, Resource: "gpu", Start: 0, End: 2},
		{Class: ClassChkRecalc, Resource: "gpu", Start: 1, End: 3},
		{Class: ClassChkRecalc, Resource: "gpu", Start: 1.5, End: 1.7},
		{Class: ClassChkRecalc, Resource: "gpu", Start: 5, End: 6},
		{Class: ClassGEMM, Resource: "gpu", Start: 0, End: 10},
	}}
	if got := tr.MaxConcurrency(ClassChkRecalc); got != 3 {
		t.Fatalf("max concurrency = %d, want 3", got)
	}
	if got := tr.MaxConcurrency(ClassGEMM); got != 1 {
		t.Fatalf("gemm concurrency = %d", got)
	}
	if got := tr.MaxConcurrency(ClassTRSM); got != 0 {
		t.Fatalf("absent class concurrency = %d", got)
	}
}

func TestMaxConcurrencyRespectsSlotPool(t *testing.T) {
	// End-to-end: on a 4-slot device, 10 one-slot kernels across 10
	// streams never exceed 4 concurrent.
	spec := testSpec(4)
	d := NewDevice(spec)
	tr := &Trace{}
	d.trace = tr
	d.resource = "gpu"
	for i := 0; i < 10; i++ {
		s := d.Stream()
		d.Launch(s, Kernel{Name: "r", Class: ClassChkRecalc, Flops: 1e8, Slots: 1})
	}
	got := tr.MaxConcurrency(ClassChkRecalc)
	if got != 4 {
		t.Fatalf("realized concurrency %d, want the slot pool size 4", got)
	}
}

func TestGanttRendering(t *testing.T) {
	tr := &Trace{Spans: []Span{
		{Name: "gemm[0]", Class: ClassGEMM, Resource: "gpu", Stream: 1, Start: 0, End: 1},
		{Name: "potf2[0]", Class: ClassPOTF2, Resource: "cpu", Stream: 3, Start: 0.5, End: 0.8},
		{Name: "xfer", Class: Class(-1), Resource: "d2h", Stream: 2, Start: 0.2, End: 0.3},
	}}
	g := tr.Gantt(40)
	if !strings.Contains(g, "gpu/01") || !strings.Contains(g, "cpu/03") || !strings.Contains(g, "d2h/02") {
		t.Fatalf("gantt rows missing:\n%s", g)
	}
	if !strings.Contains(g, "G") || !strings.Contains(g, "P") {
		t.Fatalf("gantt marks missing:\n%s", g)
	}
	if (&Trace{}).Gantt(40) != "(empty trace)\n" {
		t.Fatal("empty trace rendering")
	}
}

func TestUnionLength(t *testing.T) {
	if got := unionLength(nil); got != 0 {
		t.Fatal("empty union")
	}
	iv := [][2]float64{{3, 4}, {0, 2}, {1, 2.5}}
	if got := unionLength(iv); math.Abs(got-3.5) > 1e-12 {
		t.Fatalf("union = %g, want 3.5", got)
	}
}

func TestUtilizationReport(t *testing.T) {
	tr := &Trace{Spans: []Span{
		{Name: "gemm", Class: ClassGEMM, Resource: "gpu", Start: 0, End: 4},
		{Name: "r", Class: ClassChkRecalc, Resource: "gpu", Start: 4, End: 5},
		{Name: "potf2", Class: ClassPOTF2, Resource: "cpu", Start: 1, End: 2},
		{Name: "xfer", Class: Class(-1), Resource: "d2h", Start: 0, End: 1},
	}}
	rep := tr.Utilization(10)
	if rep.Makespan != 10 || len(rep.Resources) != 3 {
		t.Fatalf("report %+v", rep)
	}
	var gpu *ResourceUtilization
	for i := range rep.Resources {
		if rep.Resources[i].Resource == "gpu" {
			gpu = &rep.Resources[i]
		}
	}
	if gpu == nil || gpu.Busy != 5 {
		t.Fatalf("gpu busy %+v", gpu)
	}
	if gpu.ClassBusy[ClassGEMM] != 4 || gpu.ClassN[ClassGEMM] != 1 {
		t.Fatal("class attribution wrong")
	}
	out := rep.String()
	if !strings.Contains(out, "gpu") || !strings.Contains(out, "GEMM") || !strings.Contains(out, "Transfer") {
		t.Fatalf("render:\n%s", out)
	}
	if !strings.Contains(out, "50.0%") {
		t.Fatalf("busy percent missing:\n%s", out)
	}
}
