// Package hetsim is a deterministic discrete-event simulator of a
// heterogeneous CPU+GPU node, standing in for the CUDA runtime the
// paper's implementation targets (Tesla M2075 / K40c + Opteron hosts).
//
// The simulator models exactly the mechanisms the paper's three
// optimizations exploit:
//
//   - streams with in-order execution and cross-stream events,
//   - concurrent kernel execution bounded by a per-device slot pool
//     (16 on Fermi, 32 on Kepler), so many small BLAS-2 checksum
//     kernels can overlap while full-occupancy BLAS-3 kernels
//     serialize (Optimization 1),
//   - a host<->device link with latency and bandwidth, and a CPU
//     device that can work concurrently with the GPU (Optimization 2),
//   - per-kernel launch overhead and a host-side dispatch gap, which
//     is what makes the O(n²/B²) tiny verification kernels expensive
//     in the first place (Optimization 3 reduces their count).
//
// Kernels carry a cost (flops, bytes) and optionally a Body closure
// with the real numeric work. Bodies run eagerly in issue order —
// a legal sequentially-consistent execution — while completion times
// are computed from the cost model, so small real-data runs report
// paper-scale timings and full-scale model runs use the same code.
package hetsim

import "fmt"

// Class identifies the kind of work a kernel does; the cost model
// assigns each class its own efficiency curve and default occupancy.
type Class int

const (
	// ClassGEMM is a large matrix-matrix multiply (BLAS-3, compute bound).
	ClassGEMM Class = iota
	// ClassSYRK is a symmetric rank-k update (BLAS-3).
	ClassSYRK
	// ClassTRSM is a triangular solve with many right-hand sides (BLAS-3).
	ClassTRSM
	// ClassPOTF2 is the unblocked Cholesky of one diagonal block.
	ClassPOTF2
	// ClassChkRecalc is one block's checksum recalculation: two
	// (2 x B) x (B x B) products. BLAS-2 shaped, bandwidth bound, low
	// occupancy — the target of Optimization 1.
	ClassChkRecalc
	// ClassChkUpdate is a checksum-row update (skinny GEMM/TRSM on the
	// 2-row checksum slab) — the work Optimization 2 places on CPU or GPU.
	ClassChkUpdate
	// ClassChkCompare is the elementwise compare of recalculated vs
	// stored checksums (cheap, bandwidth bound).
	ClassChkCompare
	// ClassHost is miscellaneous host-side work charged at CPU speed.
	ClassHost
	numClasses
)

var classNames = [numClasses]string{
	"GEMM", "SYRK", "TRSM", "POTF2", "ChkRecalc", "ChkUpdate", "ChkCompare", "Host",
}

func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// Kernel describes one unit of device work.
type Kernel struct {
	Name  string
	Class Class
	// Flops is the floating-point operation count; Bytes the memory
	// traffic. Duration is max(flops/effective-rate, bytes/bandwidth)
	// plus the device launch overhead.
	Flops float64
	Bytes float64
	// Slots is how many concurrent-kernel slots the kernel occupies;
	// 0 means "class default" (all slots for BLAS-3, one for the small
	// checksum kernels).
	Slots int
	// Body, when non-nil, is executed at launch (real-data plane).
	Body func()
}

// Event is a point on the simulated timeline recorded from a stream;
// other streams can wait on it.
type Event struct {
	T float64
}

// Stream is an in-order execution queue bound to one device.
type Stream struct {
	dev *Device
	t   float64 // completion time of the last enqueued operation
	id  int
}

// Done returns the time at which everything enqueued so far completes.
func (s *Stream) Done() float64 { return s.t }

// Record captures the stream's current completion time as an Event.
func (s *Stream) Record() Event { return Event{T: s.t} }

// Wait delays subsequent work on the stream until ev has fired.
func (s *Stream) Wait(ev Event) {
	if ev.T > s.t {
		s.t = ev.T
	}
}

// WaitTime delays subsequent work until absolute simulated time t.
func (s *Stream) WaitTime(t float64) {
	if t > s.t {
		s.t = t
	}
}
