package hetsim

// LinkSpec describes the host<->device interconnect (PCIe in both
// target machines).
type LinkSpec struct {
	// BandwidthGBs is sustained transfer bandwidth per direction.
	BandwidthGBs float64
	// Latency is the fixed per-transfer cost in seconds.
	Latency float64
}

// Link is the dynamic state of the interconnect: one DMA engine per
// direction, so transfers in the same direction serialize while
// opposite directions overlap (as on the real cards).
type Link struct {
	Spec LinkSpec
	h2d  float64 // engine free times
	d2h  float64

	// accounting
	transfers int
	bytes     float64
	busy      float64
	trace     *Trace
	obs       Observer
}

// Direction selects a transfer direction.
type Direction int

const (
	// HostToDevice moves data from CPU memory to GPU memory.
	HostToDevice Direction = iota
	// DeviceToHost moves data from GPU memory to CPU memory.
	DeviceToHost
)

// Transfer enqueues a copy of the given size on stream s and returns
// its completion time. The stream serializes the transfer against its
// other work; the link serializes it against same-direction traffic.
func (l *Link) Transfer(s *Stream, dir Direction, bytes float64) float64 {
	engine := &l.h2d
	if dir == DeviceToHost {
		engine = &l.d2h
	}
	start := s.t
	if *engine > start {
		start = *engine
	}
	dur := l.Spec.Latency
	if l.Spec.BandwidthGBs > 0 {
		dur += bytes / (l.Spec.BandwidthGBs * 1e9)
	}
	end := start + dur
	*engine = end
	s.t = end

	l.transfers++
	l.bytes += bytes
	l.busy += dur
	if l.trace != nil || l.obs != nil {
		res := "h2d"
		if dir == DeviceToHost {
			res = "d2h"
		}
		sp := Span{Name: "xfer", Class: Class(-1), Resource: res, Stream: s.id, Start: start, End: end, Bytes: bytes}
		if l.trace != nil {
			l.trace.add(sp)
		}
		if l.obs != nil {
			l.obs.TransferDone(sp, dir)
		}
	}
	return end
}

// TransferStats reports cumulative link usage.
func (l *Link) TransferStats() (transfers int, bytes, busy float64) {
	return l.transfers, l.bytes, l.busy
}

// Platform bundles the devices and interconnect of one machine and
// owns the simulated timeline.
type Platform struct {
	Prof Profile
	GPU  *Device
	CPU  *Device
	Link *Link

	streams []*Stream
}

// NewPlatform builds a platform from a machine profile with all
// clocks at zero.
func NewPlatform(prof Profile) *Platform {
	p := &Platform{
		Prof: prof,
		GPU:  NewDevice(prof.GPU),
		CPU:  NewDevice(prof.CPU),
		Link: &Link{Spec: prof.Link},
	}
	p.GPU.resource = "gpu"
	p.CPU.resource = "cpu"
	return p
}

// StartTrace attaches a fresh Trace capturing every subsequent kernel
// and transfer, and returns it.
func (p *Platform) StartTrace() *Trace {
	tr := &Trace{}
	p.GPU.trace = tr
	p.CPU.trace = tr
	p.Link.trace = tr
	return tr
}

// GPUStream returns a new GPU stream, tracked for Sync.
func (p *Platform) GPUStream() *Stream {
	s := p.GPU.Stream()
	p.streams = append(p.streams, s)
	return s
}

// CPUStream returns a new CPU queue, tracked for Sync.
func (p *Platform) CPUStream() *Stream {
	s := p.CPU.Stream()
	p.streams = append(p.streams, s)
	return s
}

// Sync returns the simulated time at which every stream created via
// the platform (and all in-flight transfers) has completed — the
// moment a host-side cudaDeviceSynchronize would return.
func (p *Platform) Sync() float64 {
	t := 0.0
	for _, s := range p.streams {
		if s.t > t {
			t = s.t
		}
	}
	if lt := p.Link.h2d; lt > t {
		t = lt
	}
	if lt := p.Link.d2h; lt > t {
		t = lt
	}
	return t
}

// AlignAll advances every tracked stream to at least time t. It is
// used when the host serializes the whole machine (e.g. before
// restarting a failed factorization).
func (p *Platform) AlignAll(t float64) {
	for _, s := range p.streams {
		s.WaitTime(t)
	}
	if p.Link.h2d < t {
		p.Link.h2d = t
	}
	if p.Link.d2h < t {
		p.Link.d2h = t
	}
}

// Stats aggregates per-class device accounting.
type Stats struct {
	Count [numClasses]int
	Busy  [numClasses]float64
}

func (st *Stats) add(c Class, dur float64) {
	st.Count[c]++
	st.Busy[c] += dur
}

// CountOf returns how many kernels of class c ran.
func (st Stats) CountOf(c Class) int { return st.Count[c] }

// BusyOf returns the summed standalone duration of kernels of class c
// (overlap not subtracted).
func (st Stats) BusyOf(c Class) float64 { return st.Busy[c] }

// TotalKernels returns the total kernel count across classes.
func (st Stats) TotalKernels() int {
	n := 0
	for _, c := range st.Count {
		n += c
	}
	return n
}
