package hetsim

import "fmt"

// DeviceSpec is the static performance description of one compute
// device (a GPU or the host CPU complex).
type DeviceSpec struct {
	Name string
	// PeakGFLOPS is double-precision peak throughput.
	PeakGFLOPS float64
	// MemBWGBs is device memory bandwidth in GB/s, the roofline for
	// bandwidth-bound (BLAS-1/2 shaped) kernels.
	MemBWGBs float64
	// ConcurrentKernels is the slot-pool size: how many kernels the
	// device can execute at once (16 on Fermi, 32 on Kepler, and the
	// core-pair count on the CPU).
	ConcurrentKernels int
	// LaunchOverhead is the fixed per-kernel cost in seconds.
	LaunchOverhead float64
	// DispatchGap is the host-side serialization between consecutive
	// launches to this device, in seconds. Thousands of tiny
	// verification kernels pay this even when they overlap on-device.
	DispatchGap float64
	// EffMax[class] is the peak fraction of PeakGFLOPS the class can
	// reach; EffHalfFlops[class] is the kernel size (flops) at which a
	// kernel reaches half of that (a saturation curve:
	// eff = EffMax * f/(f+EffHalfFlops)).
	EffMax       [numClasses]float64
	EffHalfFlops [numClasses]float64
	// BWEff[class] scales the achievable memory bandwidth for
	// bandwidth-bound kernels of that class (0 means 1.0). The skinny
	// 2-row checksum recalculations reach nowhere near STREAM rates on
	// real cards, which is exactly why Optimization 1 pays off.
	BWEff [numClasses]float64
}

// Device is the dynamic state of one device on the simulated timeline.
type Device struct {
	Spec DeviceSpec

	slots      []float64 // free time of each concurrent-kernel slot
	dispatchT  float64   // host dispatch serializer
	nextStream int

	stats     Stats
	trace     *Trace
	obs       Observer
	resource  string
	slotWaits int     // launches delayed by slot occupancy
	slotWait  float64 // summed slot-queueing delay
}

// NewDevice creates a device with all slots free at t=0.
func NewDevice(spec DeviceSpec) *Device {
	if spec.ConcurrentKernels < 1 {
		spec.ConcurrentKernels = 1
	}
	return &Device{
		Spec:  spec,
		slots: make([]float64, spec.ConcurrentKernels),
	}
}

// Stream creates a new in-order queue on the device.
func (d *Device) Stream() *Stream {
	d.nextStream++
	return &Stream{dev: d, id: d.nextStream}
}

// defaultSlots gives each class its occupancy: the big BLAS-3 kernels
// and POTF2 saturate the device; the small checksum kernels take one
// slot each so up to ConcurrentKernels of them overlap.
func (d *Device) defaultSlots(c Class) int {
	switch c {
	case ClassChkRecalc, ClassChkCompare, ClassChkUpdate, ClassHost:
		return 1
	default:
		return d.Spec.ConcurrentKernels
	}
}

// Duration returns the modeled execution time of k on this device,
// excluding launch overhead and queueing.
func (d *Device) Duration(k Kernel) float64 {
	spec := &d.Spec
	var compute float64
	if k.Flops > 0 && spec.PeakGFLOPS > 0 {
		effMax := spec.EffMax[k.Class]
		if effMax == 0 {
			effMax = 0.7
		}
		eff := effMax
		if half := spec.EffHalfFlops[k.Class]; half > 0 {
			eff = effMax * k.Flops / (k.Flops + half)
		}
		compute = k.Flops / (spec.PeakGFLOPS * 1e9 * eff)
	}
	var memory float64
	if k.Bytes > 0 && spec.MemBWGBs > 0 {
		bwEff := spec.BWEff[k.Class]
		if bwEff == 0 {
			bwEff = 1
		}
		memory = k.Bytes / (spec.MemBWGBs * 1e9 * bwEff)
	}
	if memory > compute {
		return memory
	}
	return compute
}

// Launch enqueues k on stream s (which must belong to this device) and
// returns the kernel's completion time. If k carries a Body it runs
// now, in issue order.
func (d *Device) Launch(s *Stream, k Kernel) float64 {
	if s.dev != d {
		panic(fmt.Sprintf("hetsim: stream of device %q launched on %q", s.dev.Spec.Name, d.Spec.Name))
	}
	if k.Body != nil {
		k.Body()
	}
	units := k.Slots
	if units <= 0 {
		units = d.defaultSlots(k.Class)
	}
	if units > len(d.slots) {
		units = len(d.slots)
	}

	// Host dispatch serialization: launches reach the device one
	// DispatchGap apart regardless of stream.
	ready := s.t
	if d.dispatchT > ready {
		ready = d.dispatchT
	}
	d.dispatchT = ready + d.Spec.DispatchGap

	// Acquire `units` slots: the kernel can start once the
	// units-smallest slot free times have passed.
	insertionSort(d.slots)
	start := d.slots[units-1]
	if ready > start {
		start = ready
	} else if d.slots[units-1] > ready {
		d.slotWaits++
		d.slotWait += d.slots[units-1] - ready
	}
	dur := d.Duration(k) + d.Spec.LaunchOverhead
	end := start + dur
	for i := 0; i < units; i++ {
		d.slots[i] = end
	}
	s.t = end

	d.stats.add(k.Class, dur)
	if d.trace != nil || d.obs != nil {
		res := d.resource
		if res == "" {
			res = "dev"
		}
		sp := Span{Name: k.Name, Class: k.Class, Resource: res, Stream: s.id,
			Start: start, End: end, Slots: units, Flops: k.Flops, Bytes: k.Bytes}
		if d.trace != nil {
			d.trace.add(sp)
		}
		if d.obs != nil {
			d.obs.KernelLaunched(sp)
		}
	}
	return end
}

// Busy returns the completion time of the last work on any slot.
func (d *Device) Busy() float64 {
	maxT := d.dispatchT
	for _, t := range d.slots {
		if t > maxT {
			maxT = t
		}
	}
	return maxT
}

// Stats returns per-class accounting since construction or the last
// ResetStats.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats clears accounting without touching the timeline.
func (d *Device) ResetStats() { d.stats = Stats{} }

// insertionSort keeps the slot list ordered; it is at most
// ConcurrentKernels long (<= 32) and nearly sorted between launches,
// so this beats the stdlib sort and allocates nothing.
func insertionSort(x []float64) {
	for i := 1; i < len(x); i++ {
		v := x[i]
		j := i - 1
		for j >= 0 && x[j] > v {
			x[j+1] = x[j]
			j--
		}
		x[j+1] = v
	}
}
