package hetsim

// Observer receives every kernel launch and link transfer as it is
// placed on the simulated timeline. It is the simulator's metrics
// hook: unlike a Trace, which retains the whole timeline in memory,
// an observer sees each span once and keeps whatever aggregate it
// wants (internal/obs feeds a metrics registry this way). Attach one
// with Platform.Observe before issuing work.
//
// Observers run synchronously inside Launch/Transfer in issue order,
// so a deterministic schedule produces a deterministic observation
// sequence.
type Observer interface {
	// KernelLaunched reports one device kernel with its final
	// placement: resource, stream, slot occupancy, and start/end times.
	KernelLaunched(sp Span)
	// TransferDone reports one link transfer; sp.Resource is "h2d" or
	// "d2h" and sp.Bytes the transfer size.
	TransferDone(sp Span, dir Direction)
}

// Observe attaches an observer to both devices and the link. Passing
// nil detaches. Observation and tracing are independent: either, both,
// or neither may be active.
func (p *Platform) Observe(o Observer) {
	p.GPU.obs = o
	p.CPU.obs = o
	p.Link.obs = o
}

// Contention reports how many kernel launches found their required
// slots still busy and had to queue behind earlier kernels, and the
// summed queueing delay — the realized pressure on the
// concurrent-kernel pool that Optimization 1 fans out over.
func (d *Device) Contention() (waits int, delay float64) {
	return d.slotWaits, d.slotWait
}
