package hetsim

import (
	"fmt"
	"sort"
	"strings"
)

// UtilizationReport summarizes where a run's simulated time went: how
// busy each resource was over the makespan and how each kernel class
// contributed. Built from a Trace, so concurrent kernels are counted
// by wall occupancy (union), not by summed durations.
type UtilizationReport struct {
	Makespan  float64
	Resources []ResourceUtilization
}

// ResourceUtilization is one resource's share of the timeline.
type ResourceUtilization struct {
	Resource string
	Busy     float64 // union of occupied intervals
	// ClassBusy sums standalone span durations per class (overlap not
	// subtracted), the attribution view.
	ClassBusy map[Class]float64
	ClassN    map[Class]int
}

// Utilization builds the report for everything the trace recorded up
// to the given makespan (normally Platform.Sync()).
func (t *Trace) Utilization(makespan float64) *UtilizationReport {
	rep := &UtilizationReport{Makespan: makespan}
	byRes := map[string]*ResourceUtilization{}
	var order []string
	for _, sp := range t.Spans {
		ru, ok := byRes[sp.Resource]
		if !ok {
			ru = &ResourceUtilization{
				Resource:  sp.Resource,
				ClassBusy: map[Class]float64{},
				ClassN:    map[Class]int{},
			}
			byRes[sp.Resource] = ru
			order = append(order, sp.Resource)
		}
		ru.ClassBusy[sp.Class] += sp.Duration()
		ru.ClassN[sp.Class]++
	}
	sort.Strings(order)
	for _, res := range order {
		ru := byRes[res]
		ru.Busy = t.BusyTime(res)
		rep.Resources = append(rep.Resources, *ru)
	}
	return rep
}

// String renders the report as an aligned table.
func (r *UtilizationReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "utilization over %.6fs:\n", r.Makespan)
	for _, ru := range r.Resources {
		frac := 0.0
		if r.Makespan > 0 {
			frac = ru.Busy / r.Makespan * 100
		}
		fmt.Fprintf(&b, "  %-4s busy %8.4fs (%5.1f%%)\n", ru.Resource, ru.Busy, frac)
		// Classes sorted by contribution.
		type kv struct {
			c Class
			d float64
		}
		var classes []kv
		for c, d := range ru.ClassBusy {
			classes = append(classes, kv{c, d})
		}
		sort.Slice(classes, func(i, j int) bool { return classes[i].d > classes[j].d })
		for _, e := range classes {
			name := "Transfer"
			if e.c >= 0 && int(e.c) < int(numClasses) {
				name = e.c.String()
			}
			fmt.Fprintf(&b, "       %-10s %8.4fs  x%d\n", name, e.d, ru.ClassN[e.c])
		}
	}
	return b.String()
}
