package hetsim

import (
	"fmt"
	"sort"
	"strings"
)

// Trace records every kernel and transfer placed on the simulated
// timeline so schedules can be inspected and asserted on: which
// operations overlapped, how busy each device was, where the critical
// path went. Attach one with Platform.StartTrace before issuing work.
// Marks carry point-in-time annotations (iteration boundaries,
// restarts) that the exporter in internal/obs renders as instant
// events.
type Trace struct {
	Spans []Span
	Marks []Mark
}

// Span is one occupied interval on a resource.
type Span struct {
	Name     string
	Class    Class
	Resource string // "gpu", "cpu", "h2d", "d2h"
	Stream   int
	Start    float64
	End      float64
	// Slots is how many concurrent-kernel slots the kernel occupied
	// (0 for transfers), the realized occupancy of Optimization 1's
	// slot pool.
	Slots int
	// Flops and Bytes echo the launched kernel's cost (Bytes is the
	// transfer size for link spans), so an exported timeline carries
	// the same accounting the cost model used.
	Flops float64
	Bytes float64
}

// Mark is an instant annotation on the simulated timeline: an
// iteration boundary, a recovery restart, a phase edge.
type Mark struct {
	Name string
	T    float64
}

// Mark records an instant annotation at simulated time t.
func (t *Trace) Mark(name string, at float64) {
	if t == nil {
		return
	}
	t.Marks = append(t.Marks, Mark{Name: name, T: at})
}

// Duration returns the span length.
func (s Span) Duration() float64 { return s.End - s.Start }

// Overlaps reports whether two spans share timeline.
func (s Span) Overlaps(o Span) bool {
	return s.Start < o.End && o.Start < s.End
}

// add appends one span.
func (t *Trace) add(sp Span) {
	if t == nil {
		return
	}
	t.Spans = append(t.Spans, sp)
}

// ByName returns all spans whose name contains the substring.
func (t *Trace) ByName(sub string) []Span {
	var out []Span
	for _, sp := range t.Spans {
		if strings.Contains(sp.Name, sub) {
			out = append(out, sp)
		}
	}
	return out
}

// ByClass returns all spans of one kernel class.
func (t *Trace) ByClass(c Class) []Span {
	var out []Span
	for _, sp := range t.Spans {
		if sp.Class == c && sp.Resource != "h2d" && sp.Resource != "d2h" {
			out = append(out, sp)
		}
	}
	return out
}

// BusyTime returns the union length of the spans on one resource —
// actual occupancy, with overlap between concurrent kernels counted
// once.
func (t *Trace) BusyTime(resource string) float64 {
	var iv [][2]float64
	for _, sp := range t.Spans {
		if sp.Resource == resource {
			iv = append(iv, [2]float64{sp.Start, sp.End})
		}
	}
	return unionLength(iv)
}

// OverlapTime returns how long spans matching subA and subB (by name
// substring) ran concurrently — e.g. OverlapTime("potf2", "gemm")
// measures how well MAGMA hides the host factorization under the GPU
// panel update.
func (t *Trace) OverlapTime(subA, subB string) float64 {
	a := t.ByName(subA)
	b := t.ByName(subB)
	total := 0.0
	for _, sa := range a {
		var iv [][2]float64
		for _, sb := range b {
			if sa.Overlaps(sb) {
				lo := sa.Start
				if sb.Start > lo {
					lo = sb.Start
				}
				hi := sa.End
				if sb.End < hi {
					hi = sb.End
				}
				iv = append(iv, [2]float64{lo, hi})
			}
		}
		total += unionLength(iv)
	}
	return total
}

// MaxConcurrency returns the largest number of simultaneously running
// spans of one class — the realized concurrent-kernel depth.
func (t *Trace) MaxConcurrency(c Class) int {
	type ev struct {
		t     float64
		delta int
	}
	var evs []ev
	for _, sp := range t.ByClass(c) {
		if sp.Duration() <= 0 {
			continue
		}
		evs = append(evs, ev{sp.Start, 1}, ev{sp.End, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t { //nolint:floateq — simulated timestamps are exact arithmetic; identical events must compare equal for the close-before-open tie-break below

			return evs[i].t < evs[j].t
		}
		return evs[i].delta < evs[j].delta // close before open at equal times
	})
	cur, max := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > max {
			max = cur
		}
	}
	return max
}

// Gantt renders a coarse ASCII timeline: one row per (resource,
// stream), time bucketed into width columns. Intended for human
// inspection of small runs.
func (t *Trace) Gantt(width int) string {
	if len(t.Spans) == 0 {
		return "(empty trace)\n"
	}
	if width < 10 {
		width = 10
	}
	end := 0.0
	rows := map[string][]Span{}
	var keys []string
	for _, sp := range t.Spans {
		if sp.End > end {
			end = sp.End
		}
		key := fmt.Sprintf("%s/%02d", sp.Resource, sp.Stream)
		if _, ok := rows[key]; !ok {
			keys = append(keys, key)
		}
		rows[key] = append(rows[key], sp)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "timeline 0 .. %.6fs, one column = %.3gs\n", end, end/float64(width))
	for _, key := range keys {
		cells := make([]byte, width)
		for i := range cells {
			cells[i] = '.'
		}
		for _, sp := range rows[key] {
			lo := int(sp.Start / end * float64(width))
			hi := int(sp.End / end * float64(width))
			if hi >= width {
				hi = width - 1
			}
			mark := classMark(sp.Class)
			for i := lo; i <= hi; i++ {
				cells[i] = mark
			}
		}
		fmt.Fprintf(&b, "%-8s |%s|\n", key, cells)
	}
	b.WriteString("G=gemm S=syrk T=trsm P=potf2 r=recalc u=update c=compare h=host x=xfer\n")
	return b.String()
}

func classMark(c Class) byte {
	switch c {
	case ClassGEMM:
		return 'G'
	case ClassSYRK:
		return 'S'
	case ClassTRSM:
		return 'T'
	case ClassPOTF2:
		return 'P'
	case ClassChkRecalc:
		return 'r'
	case ClassChkUpdate:
		return 'u'
	case ClassChkCompare:
		return 'c'
	case ClassHost:
		return 'h'
	}
	return 'x'
}

// unionLength sums interval lengths with overlaps counted once.
func unionLength(iv [][2]float64) float64 {
	if len(iv) == 0 {
		return 0
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i][0] < iv[j][0] })
	total := 0.0
	curLo, curHi := iv[0][0], iv[0][1]
	for _, x := range iv[1:] {
		if x[0] > curHi {
			total += curHi - curLo
			curLo, curHi = x[0], x[1]
			continue
		}
		if x[1] > curHi {
			curHi = x[1]
		}
	}
	return total + (curHi - curLo)
}
