package hetsim

import (
	"math"
	"testing"
	"testing/quick"
)

func testSpec(slots int) DeviceSpec {
	return DeviceSpec{
		Name:              "test",
		PeakGFLOPS:        100,
		MemBWGBs:          100,
		ConcurrentKernels: slots,
		LaunchOverhead:    1e-6,
		DispatchGap:       0,
	}
}

func TestKernelDurationComputeBound(t *testing.T) {
	d := NewDevice(testSpec(1))
	d.Spec.EffMax[ClassGEMM] = 0.5
	// 1e9 flops at 100 GFLOPS * 0.5 = 50 GFLOPS -> 0.02 s
	got := d.Duration(Kernel{Class: ClassGEMM, Flops: 1e9})
	if math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("duration = %g, want 0.02", got)
	}
}

func TestKernelDurationBandwidthBound(t *testing.T) {
	d := NewDevice(testSpec(1))
	d.Spec.EffMax[ClassChkRecalc] = 1
	// 1e9 bytes at 100 GB/s = 0.01 s, flops time is tiny.
	got := d.Duration(Kernel{Class: ClassChkRecalc, Flops: 1e3, Bytes: 1e9})
	if math.Abs(got-0.01) > 1e-9 {
		t.Fatalf("duration = %g, want 0.01", got)
	}
}

func TestEfficiencySaturationCurve(t *testing.T) {
	d := NewDevice(testSpec(1))
	d.Spec.EffMax[ClassGEMM] = 0.8
	d.Spec.EffHalfFlops[ClassGEMM] = 1e9
	// At flops == half size, eff = 0.4 -> dur = 1e9/(100e9*0.4) = 0.025
	got := d.Duration(Kernel{Class: ClassGEMM, Flops: 1e9})
	if math.Abs(got-0.025) > 1e-12 {
		t.Fatalf("duration = %g, want 0.025", got)
	}
	// Monotone: a bigger kernel must never have higher cost per flop.
	small := d.Duration(Kernel{Class: ClassGEMM, Flops: 1e8}) / 1e8
	big := d.Duration(Kernel{Class: ClassGEMM, Flops: 1e11}) / 1e11
	if big > small {
		t.Fatal("cost per flop increased with size")
	}
}

func TestStreamSerializesItsKernels(t *testing.T) {
	d := NewDevice(testSpec(8))
	s := d.Stream()
	k := Kernel{Class: ClassChkRecalc, Flops: 1e9} // 1e9/(100e9*0.7)? EffMax default 0.7
	end1 := d.Launch(s, k)
	end2 := d.Launch(s, k)
	if end2 <= end1 {
		t.Fatal("second kernel on same stream did not serialize")
	}
	if math.Abs((end2-end1)-end1) > 1e-9 {
		t.Fatalf("kernels not equal length: %g vs %g", end1, end2-end1)
	}
}

func TestConcurrentKernelsOverlapAcrossStreams(t *testing.T) {
	d := NewDevice(testSpec(4))
	var ends []float64
	for i := 0; i < 4; i++ {
		s := d.Stream()
		ends = append(ends, d.Launch(s, Kernel{Class: ClassChkRecalc, Flops: 1e9, Slots: 1}))
	}
	// All four fit in the slot pool: identical completion times.
	for _, e := range ends {
		if math.Abs(e-ends[0]) > 1e-12 {
			t.Fatalf("slot-pool kernels did not overlap: %v", ends)
		}
	}
	// A fifth kernel must queue behind one of them.
	s5 := d.Stream()
	e5 := d.Launch(s5, Kernel{Class: ClassChkRecalc, Flops: 1e9, Slots: 1})
	if e5 <= ends[0] {
		t.Fatal("fifth kernel did not wait for a free slot")
	}
}

func TestFullOccupancyKernelSerializesWithEverything(t *testing.T) {
	d := NewDevice(testSpec(4))
	s1, s2 := d.Stream(), d.Stream()
	e1 := d.Launch(s1, Kernel{Class: ClassChkRecalc, Flops: 1e9, Slots: 1})
	// A GEMM takes all slots by default: it must start after e1.
	e2 := d.Launch(s2, Kernel{Class: ClassGEMM, Flops: 1e9})
	if e2 <= e1 {
		t.Fatal("full-occupancy kernel overlapped a running kernel")
	}
	// And a later small kernel must wait for the GEMM.
	s3 := d.Stream()
	e3 := d.Launch(s3, Kernel{Class: ClassChkRecalc, Flops: 1, Slots: 1})
	if e3 <= e2 {
		t.Fatal("small kernel overlapped a full-occupancy kernel")
	}
}

func TestDispatchGapSerializesLaunches(t *testing.T) {
	spec := testSpec(8)
	spec.DispatchGap = 1e-3
	spec.LaunchOverhead = 0
	d := NewDevice(spec)
	// Tiny kernels on distinct streams: start times must be spaced by
	// the dispatch gap even though slots are free.
	var prev float64
	for i := 0; i < 4; i++ {
		s := d.Stream()
		end := d.Launch(s, Kernel{Class: ClassChkRecalc, Flops: 1, Slots: 1})
		if i > 0 && end-prev < 1e-3-1e-12 {
			t.Fatalf("launch %d not gap-separated: %g after %g", i, end, prev)
		}
		prev = end
	}
}

func TestEventOrdering(t *testing.T) {
	d := NewDevice(testSpec(4))
	s1, s2 := d.Stream(), d.Stream()
	d.Launch(s1, Kernel{Class: ClassChkRecalc, Flops: 1e9, Slots: 1})
	ev := s1.Record()
	s2.Wait(ev)
	e2 := d.Launch(s2, Kernel{Class: ClassChkRecalc, Flops: 1, Slots: 1})
	if e2 <= ev.T {
		t.Fatal("dependent kernel ran before event")
	}
	// Waiting on an already-passed event is a no-op.
	before := s2.Done()
	s2.Wait(Event{T: before - 1})
	if s2.Done() != before {
		t.Fatal("stale event moved the stream backwards or forwards")
	}
}

func TestBodyRunsExactlyOnceInIssueOrder(t *testing.T) {
	d := NewDevice(testSpec(2))
	s := d.Stream()
	var order []int
	d.Launch(s, Kernel{Class: ClassGEMM, Flops: 1, Body: func() { order = append(order, 1) }})
	d.Launch(s, Kernel{Class: ClassGEMM, Flops: 1, Body: func() { order = append(order, 2) }})
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("bodies ran as %v", order)
	}
}

func TestLaunchOnWrongDevicePanics(t *testing.T) {
	d1 := NewDevice(testSpec(1))
	d2 := NewDevice(testSpec(1))
	s := d1.Stream()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d2.Launch(s, Kernel{Class: ClassGEMM, Flops: 1})
}

func TestLinkDirectionsOverlapButSameDirectionSerializes(t *testing.T) {
	l := &Link{Spec: LinkSpec{BandwidthGBs: 1, Latency: 0}}
	d := NewDevice(testSpec(1))
	sa, sb, sc := d.Stream(), d.Stream(), d.Stream()
	e1 := l.Transfer(sa, HostToDevice, 1e9) // 1 s
	e2 := l.Transfer(sb, DeviceToHost, 1e9) // opposite direction: overlaps
	if math.Abs(e1-1) > 1e-12 || math.Abs(e2-1) > 1e-12 {
		t.Fatalf("transfers = %g, %g; want 1, 1", e1, e2)
	}
	e3 := l.Transfer(sc, HostToDevice, 1e9) // same direction as e1: queues
	if math.Abs(e3-2) > 1e-12 {
		t.Fatalf("same-direction transfer = %g, want 2", e3)
	}
	n, bytes, busy := l.TransferStats()
	if n != 3 || bytes != 3e9 || math.Abs(busy-3) > 1e-12 {
		t.Fatalf("stats = %d %g %g", n, bytes, busy)
	}
}

func TestLinkLatency(t *testing.T) {
	l := &Link{Spec: LinkSpec{BandwidthGBs: 1, Latency: 0.5}}
	d := NewDevice(testSpec(1))
	s := d.Stream()
	if e := l.Transfer(s, HostToDevice, 0); math.Abs(e-0.5) > 1e-12 {
		t.Fatalf("latency-only transfer = %g", e)
	}
}

func TestPlatformSyncCoversStreamsAndLink(t *testing.T) {
	p := NewPlatform(Laptop())
	gs := p.GPUStream()
	cs := p.CPUStream()
	p.GPU.Launch(gs, Kernel{Class: ClassGEMM, Flops: 1e9})
	p.CPU.Launch(cs, Kernel{Class: ClassPOTF2, Flops: 1e8})
	tSync := p.Sync()
	if tSync < gs.Done() || tSync < cs.Done() {
		t.Fatal("Sync below a stream completion time")
	}
	// A dangling transfer also holds up Sync.
	s2 := p.GPUStream()
	end := p.Link.Transfer(s2, DeviceToHost, 1e9)
	if p.Sync() < end {
		t.Fatal("Sync ignored link traffic")
	}
}

func TestAlignAll(t *testing.T) {
	p := NewPlatform(Laptop())
	a, b := p.GPUStream(), p.GPUStream()
	p.GPU.Launch(a, Kernel{Class: ClassGEMM, Flops: 1e9})
	p.AlignAll(a.Done() + 5)
	if b.Done() != a.Done()+5-0 && b.Done() < a.Done() {
		t.Fatal("AlignAll did not advance idle stream")
	}
	if b.Done() < 5 {
		t.Fatalf("b at %g, want >= 5", b.Done())
	}
}

func TestStatsAccounting(t *testing.T) {
	d := NewDevice(testSpec(2))
	s := d.Stream()
	d.Launch(s, Kernel{Class: ClassGEMM, Flops: 1e9})
	d.Launch(s, Kernel{Class: ClassChkRecalc, Flops: 1e6, Slots: 1})
	st := d.Stats()
	if st.CountOf(ClassGEMM) != 1 || st.CountOf(ClassChkRecalc) != 1 {
		t.Fatalf("counts wrong: %+v", st)
	}
	if st.TotalKernels() != 2 {
		t.Fatal("total kernels wrong")
	}
	if st.BusyOf(ClassGEMM) <= 0 {
		t.Fatal("busy time missing")
	}
	d.ResetStats()
	if d.Stats().TotalKernels() != 0 {
		t.Fatal("reset failed")
	}
}

func TestStockProfiles(t *testing.T) {
	for _, name := range []string{"tardis", "bulldozer64", "laptop"} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.BlockSize <= 0 || p.GPU.PeakGFLOPS <= 0 || p.CPU.PeakGFLOPS <= 0 {
			t.Fatalf("profile %s incomplete: %+v", name, p)
		}
		if p.GPU.ConcurrentKernels < 1 {
			t.Fatal("no concurrent kernel slots")
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
	// The paper's hardware facts.
	tar, bul := Tardis(), Bulldozer64()
	if tar.BlockSize != 256 || bul.BlockSize != 512 {
		t.Fatal("MAGMA block sizes wrong (Fermi 256, Kepler 512)")
	}
	if bul.GPU.ConcurrentKernels <= tar.GPU.ConcurrentKernels {
		t.Fatal("Kepler must allow more concurrency than Fermi")
	}
	if bul.GPU.PeakGFLOPS <= tar.GPU.PeakGFLOPS {
		t.Fatal("K40c must out-peak M2075")
	}
}

func TestProfileSizes(t *testing.T) {
	tar := Tardis()
	sizes := tar.Sizes()
	if sizes[0] != 5120 {
		t.Fatalf("sweep starts at %d", sizes[0])
	}
	if sizes[len(sizes)-1] != 23040 {
		t.Fatalf("tardis sweep ends at %d, want 23040", sizes[len(sizes)-1])
	}
	bul := Bulldozer64()
	bs := bul.Sizes()
	if bs[len(bs)-1] != 30720 {
		t.Fatalf("bulldozer sweep ends at %d, want 30720", bs[len(bs)-1])
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i]-sizes[i-1] != 2560 {
			t.Fatal("sweep step must be 2560")
		}
	}
}

func TestTimeNeverDecreasesProperty(t *testing.T) {
	// Property: on any device, launching any sequence of kernels on
	// one stream yields non-decreasing completion times.
	f := func(flops []uint32) bool {
		d := NewDevice(testSpec(3))
		s := d.Stream()
		prev := 0.0
		for i, fl := range flops {
			cls := Class(i % int(numClasses))
			end := d.Launch(s, Kernel{Class: cls, Flops: float64(fl % 1e6)})
			if end < prev {
				return false
			}
			prev = end
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestClassString(t *testing.T) {
	if ClassGEMM.String() != "GEMM" || ClassChkRecalc.String() != "ChkRecalc" {
		t.Fatal("class names wrong")
	}
	if Class(99).String() == "" {
		t.Fatal("out-of-range class must still render")
	}
}

func TestMoreStreamsThanSlotsStillCorrect(t *testing.T) {
	// Throughput check: 8 equal one-slot kernels on a 2-slot device
	// finish in 4 kernel-times, not 1 and not 8.
	spec := testSpec(2)
	spec.LaunchOverhead = 0
	d := NewDevice(spec)
	dur := d.Duration(Kernel{Class: ClassChkRecalc, Flops: 1e9})
	var last float64
	for i := 0; i < 8; i++ {
		s := d.Stream()
		last = d.Launch(s, Kernel{Class: ClassChkRecalc, Flops: 1e9, Slots: 1})
	}
	want := 4 * dur
	if math.Abs(last-want) > 1e-9 {
		t.Fatalf("makespan = %g, want %g", last, want)
	}
}
