package hetsim

import "fmt"

// Profile is a complete machine description. The two stock profiles
// mirror the paper's evaluation systems (§VII-A); their constants are
// calibrated so the simulated no-error factorization times land near
// the paper's Table VII/VIII values and the optimization deltas have
// the reported shape.
type Profile struct {
	Name string
	// BlockSize is MAGMA's block size choice for this GPU
	// (256 on Fermi, 512 on Kepler).
	BlockSize int
	GPU       DeviceSpec
	CPU       DeviceSpec
	Link      LinkSpec
	// CPUUpdateGFLOPS is the measured effective CPU throughput for the
	// skinny 2-row checksum-update GEMMs, the Pcpu the Optimization 2
	// decision model uses. It is far below CPU peak: the updates are
	// BLAS-2 shaped and the Bulldozer modules share FPUs.
	CPUUpdateGFLOPS float64
	// CULARelEff scales GEMM-class efficiency to model the CULA R18
	// dpotrf baseline of Figs 16-17 (CULA trails MAGMA on both boxes).
	CULARelEff float64
	// VerifyBatchSync is the fixed host cost of one verification
	// batch: the device round trip plus inspecting the checksum
	// comparison on the host. It is charged per batch, not per block,
	// so it contributes the O(1/n) component that makes the relative
	// overhead fall toward its constant as matrices grow (§VI-7).
	VerifyBatchSync float64
	// MaxN is the largest matrix the GPU memory fits (the sweep upper
	// bound used in the paper's figures).
	MaxN int
}

// effTable builds per-class efficiency parameters from a handful of
// scalars: BLAS-3 efficiency, the saturation size, and the
// bandwidth-ish efficiency of the skinny checksum kernels.
func effTable(blas3, half, update, potf2 float64) (effMax, effHalf [numClasses]float64) {
	effMax[ClassGEMM] = blas3
	effMax[ClassSYRK] = blas3 * 0.92 // SYRK trails GEMM slightly in MAGMA/cuBLAS
	effMax[ClassTRSM] = blas3 * 0.85
	effMax[ClassPOTF2] = potf2
	effMax[ClassChkRecalc] = update // BLAS-2: far from peak
	effMax[ClassChkUpdate] = update
	effMax[ClassChkCompare] = update
	effMax[ClassHost] = potf2
	effHalf[ClassGEMM] = half
	effHalf[ClassSYRK] = half
	effHalf[ClassTRSM] = half / 2
	effHalf[ClassPOTF2] = 0
	return effMax, effHalf
}

// Tardis models the paper's first system: a node with two 16-core
// 2.1 GHz AMD Opteron 6272 processors and an NVIDIA Tesla M2075
// (Fermi, 6 GB, 515 DP GFLOPS peak, ~150 GB/s). Fermi funnels every
// stream through a single hardware work queue, so concurrent kernel
// execution is real but shallow — the paper sees only ~2% from
// Optimization 1 here, which the effective concurrency depth of 2
// reproduces. BLAS-3 efficiency is fit to Table VII's 10.45 s MAGMA
// run at n=20480 (~275 effective GFLOPS).
func Tardis() Profile {
	gpuEff, gpuHalf := effTable(0.66, 3e9, 0.085, 0.30)
	gpuEff[ClassChkRecalc] = 0.5 // recalc is bandwidth bound on Fermi
	cpuEff, cpuHalf := effTable(0.55, 1e9, 0.06, 0.50)
	var gpuBW [numClasses]float64
	gpuBW[ClassChkRecalc] = 1.0
	return Profile{
		Name:      "tardis",
		BlockSize: 256,
		GPU: DeviceSpec{
			Name:              "Tesla M2075 (Fermi)",
			PeakGFLOPS:        515,
			MemBWGBs:          150,
			ConcurrentKernels: 2, // effective depth behind Fermi's single HW queue
			LaunchOverhead:    2e-6,
			DispatchGap:       1.2e-6,
			EffMax:            gpuEff,
			EffHalfFlops:      gpuHalf,
			BWEff:             gpuBW,
		},
		CPU: DeviceSpec{
			Name:              "2x Opteron 6272",
			PeakGFLOPS:        268, // 2 sockets x 8 FP modules x 8 DP flops x 2.1 GHz
			MemBWGBs:          50,
			ConcurrentKernels: 2, // POTF2 and checksum updates can proceed together
			LaunchOverhead:    5e-7,
			DispatchGap:       0,
			EffMax:            cpuEff,
			EffHalfFlops:      cpuHalf,
		},
		Link:            LinkSpec{BandwidthGBs: 6, Latency: 1.2e-5}, // PCIe 2.0 x16
		CPUUpdateGFLOPS: 10,
		CULARelEff:      0.80,
		VerifyBatchSync: 2.5e-4, // Fermi-era sync + host-side comparison per batch
		MaxN:            23040,
	}
}

// Bulldozer64 models the paper's second system: four Opteron 6272
// processors and an NVIDIA Tesla K40c (Kepler, 12 GB, 1430 DP GFLOPS
// peak, ~288 GB/s). Kepler's Hyper-Q gives 32 independent hardware
// queues, so Optimization 1 buys much more here (~10% in the paper):
// the serial cost comes from cuBLAS-style 2-row gemv kernels reaching
// less than half of STREAM bandwidth (BWEff), and Hyper-Q hides nearly
// all of it. BLAS-3 efficiency is fit to Table VIII's 8.64 s MAGMA run
// at n=30720 (~1.1 effective TFLOPS).
func Bulldozer64() Profile {
	gpuEff, gpuHalf := effTable(0.92, 8e9, 0.038, 0.30)
	gpuEff[ClassChkRecalc] = 0.1 // memory bound; BWEff below is the real limiter
	cpuEff, cpuHalf := effTable(0.55, 1e9, 0.06, 0.50)
	var gpuBW [numClasses]float64
	gpuBW[ClassChkRecalc] = 0.48
	return Profile{
		Name:      "bulldozer64",
		BlockSize: 512,
		GPU: DeviceSpec{
			Name:              "Tesla K40c (Kepler)",
			PeakGFLOPS:        1430,
			MemBWGBs:          288,
			ConcurrentKernels: 32, // Hyper-Q
			LaunchOverhead:    7e-6,
			DispatchGap:       2.2e-6,
			EffMax:            gpuEff,
			EffHalfFlops:      gpuHalf,
			BWEff:             gpuBW,
		},
		CPU: DeviceSpec{
			Name:              "4x Opteron 6272",
			PeakGFLOPS:        537,
			MemBWGBs:          80,
			ConcurrentKernels: 2,
			LaunchOverhead:    5e-7,
			DispatchGap:       0,
			EffMax:            cpuEff,
			EffHalfFlops:      cpuHalf,
		},
		Link: LinkSpec{BandwidthGBs: 10, Latency: 1.0e-5}, // PCIe 3.0 (K40c)
		// The four Bulldozer-module CPUs share FPUs and the host is
		// also running POTF2, so the skinny checksum updates see very
		// low effective CPU throughput — this is why the paper's
		// decision model picks the GPU on this machine.
		CPUUpdateGFLOPS: 4,
		CULARelEff:      0.78,
		VerifyBatchSync: 8.0e-5,
		MaxN:            30720,
	}
}

// Laptop is a small profile for tests and examples: fast clocks are
// irrelevant, but it keeps the same structure with a tiny block size
// so real-data runs at n of a few hundred exercise many iterations.
func Laptop() Profile {
	gpuEff, gpuHalf := effTable(0.70, 1e8, 0.10, 0.30)
	cpuEff, cpuHalf := effTable(0.55, 1e7, 0.08, 0.50)
	return Profile{
		Name:      "laptop",
		BlockSize: 32,
		GPU: DeviceSpec{
			Name:              "sim-gpu",
			PeakGFLOPS:        100,
			MemBWGBs:          80,
			ConcurrentKernels: 8,
			LaunchOverhead:    5e-6,
			DispatchGap:       1e-6,
			EffMax:            gpuEff,
			EffHalfFlops:      gpuHalf,
		},
		CPU: DeviceSpec{
			Name:              "sim-cpu",
			PeakGFLOPS:        50,
			MemBWGBs:          30,
			ConcurrentKernels: 2,
			LaunchOverhead:    5e-7,
			EffMax:            cpuEff,
			EffHalfFlops:      cpuHalf,
		},
		Link:            LinkSpec{BandwidthGBs: 8, Latency: 5e-6},
		CPUUpdateGFLOPS: 6,
		CULARelEff:      0.8,
		VerifyBatchSync: 2.0e-5,
		MaxN:            4096,
	}
}

// ProfileByName resolves the stock profiles.
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "tardis":
		return Tardis(), nil
	case "bulldozer64":
		return Bulldozer64(), nil
	case "laptop":
		return Laptop(), nil
	}
	return Profile{}, fmt.Errorf("hetsim: unknown profile %q (want tardis, bulldozer64, or laptop)", name)
}

// Sizes returns the paper's sweep for this machine: 5120 up to MaxN in
// steps of 2560 (§VII-A).
func (p Profile) Sizes() []int {
	var out []int
	for n := 5120; n <= p.MaxN; n += 2560 {
		out = append(out, n)
	}
	return out
}
