// Command obsdoc rewrites the generated metrics-catalog table in
// docs/OBSERVABILITY.md from the live catalog (internal/obs.Catalog).
// It is wired to `go generate ./internal/obs`; the obs package's
// catalog drift test asserts the embedding, so a stale table fails
// `go test` rather than rotting silently.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"abftchol/internal/obs"
)

func main() {
	out := flag.String("out", "../../docs/OBSERVABILITY.md", "markdown file whose generated table to rewrite (path is relative to internal/obs, where go generate runs)")
	flag.Parse()
	if err := rewrite(*out); err != nil {
		fmt.Fprintln(os.Stderr, "obsdoc:", err)
		os.Exit(1)
	}
}

func rewrite(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	src := string(data)
	begin := strings.Index(src, obs.TableBegin)
	end := strings.Index(src, obs.TableEnd)
	if begin < 0 || end < 0 || end < begin {
		return fmt.Errorf("%s: marker comments %q ... %q not found; the generated table needs a home", path, obs.TableBegin, obs.TableEnd)
	}
	var b strings.Builder
	b.WriteString(src[:begin])
	b.WriteString(obs.TableBegin)
	b.WriteString("\n")
	b.WriteString(obs.CatalogTable())
	b.WriteString(src[end:])
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
