// Command lintbudget gates the static-analysis suite's own cost. It
// loads and type-checks the module once, runs every registered
// analyzer over it with per-analyzer timing (analysis.RunAllTimed —
// the same numbers abftlint -json publishes in its header), and
// compares the suite total against the committed baseline in
// BENCH_lint.json at the repository root:
//
//	go run ./tools/lintbudget            # compare; exit 1 past 3x
//	go run ./tools/lintbudget -update    # re-record the baseline
//
// The gate is deliberately loose — wall time varies across machines —
// but a suite that got three times slower than its recorded self is a
// regression someone introduced, not noise, and it taxes every `make
// lint` until fixed. Re-record the baseline when the analyzer roster
// changes (the comparison refuses mismatched rosters rather than
// comparing incomparable totals).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"abftchol/tools/analyzers"
	"abftchol/tools/analyzers/analysis"
)

// Baseline is the committed shape of BENCH_lint.json.
type Baseline struct {
	Suite       string             `json:"suite"`
	Version     string             `json:"version"`
	Analyzers   int                `json:"analyzers"`
	LoadMS      float64            `json:"load_ms"`
	SuiteMS     float64            `json:"suite_ms"`
	AnalyzersMS map[string]float64 `json:"analyzers_ms"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_lint.json", "committed baseline to compare against (or rewrite with -update)")
	update := flag.Bool("update", false, "re-record the baseline instead of gating against it")
	factor := flag.Float64("factor", 3, "fail when the measured suite time exceeds baseline x factor")
	flag.Parse()
	if err := run(*baselinePath, *update, *factor); err != nil {
		fmt.Fprintln(os.Stderr, "lintbudget:", err)
		os.Exit(1)
	}
}

func run(baselinePath string, update bool, factor float64) error {
	loadStart := time.Now()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		return err
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		return err
	}
	for _, pkg := range pkgs {
		for _, e := range pkg.Errors {
			return fmt.Errorf("%s: %v", pkg.ImportPath, e)
		}
	}
	loadMS := ms(time.Since(loadStart))

	_, timings, err := analysis.RunAllTimed(pkgs, analyzers.Suite)
	if err != nil {
		return err
	}
	measured := Baseline{
		Suite:       "abftlint",
		Version:     analyzers.Version,
		Analyzers:   len(analyzers.Suite),
		LoadMS:      loadMS,
		AnalyzersMS: make(map[string]float64, len(timings)),
	}
	for name, d := range timings {
		v := ms(d)
		measured.AnalyzersMS[name] = v
		measured.SuiteMS += v
	}

	names := make([]string, 0, len(measured.AnalyzersMS))
	for n := range measured.AnalyzersMS {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("suite %s v%s: load %.0f ms, %d analyzers %.0f ms\n",
		measured.Suite, measured.Version, measured.LoadMS, measured.Analyzers, measured.SuiteMS)
	for _, n := range names {
		fmt.Printf("  %-16s %8.1f ms\n", n, measured.AnalyzersMS[n])
	}

	if update {
		data, err := json.MarshalIndent(measured, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(baselinePath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("baseline re-recorded to %s\n", baselinePath)
		return nil
	}

	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("%w (run with -update to record the first baseline)", err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	if base.Analyzers != measured.Analyzers || base.Version != measured.Version {
		return fmt.Errorf("baseline %s records suite v%s with %d analyzers, this build is v%s with %d — re-record it with -update",
			baselinePath, base.Version, base.Analyzers, measured.Version, measured.Analyzers)
	}
	budget := base.SuiteMS * factor
	fmt.Printf("budget: %.0f ms (baseline %.0f ms x %.1f); measured %.0f ms\n",
		budget, base.SuiteMS, factor, measured.SuiteMS)
	if measured.SuiteMS > budget {
		return fmt.Errorf("suite took %.0f ms, over the %.0f ms budget — find the regression or re-record the baseline with -update and justify it in the commit",
			measured.SuiteMS, budget)
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
