// Command sweepbench records the sweep engine's acceptance benchmark:
// it renders the full `-exp all` experiment set three ways — serial
// with a cold start, parallel with a cold cache, and parallel again
// over the warm cache — verifies all three produce byte-identical
// output, and writes the wall-clock comparison to BENCH_sweep.json at
// the repository root plus a metrics snapshot showing the cache-hit
// accounting. `make bench` runs it; CI archives both files.
//
// Wall-clock timing lives here, outside internal/experiments, on
// purpose: the simulator packages are detsim-clean (no time.Now), and
// the benchmark is the one place where real elapsed time is the
// measurement, not a hazard.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"abftchol/internal/experiments"
	"abftchol/internal/obs"
)

type report struct {
	// What ran.
	Experiments []string `json:"experiments"`
	Quick       bool     `json:"quick"`
	Workers     int      `json:"workers"`
	GOMAXPROCS  int      `json:"gomaxprocs"`

	// Wall-clock, seconds.
	SerialColdSeconds   float64 `json:"serial_cold_seconds"`
	ParallelColdSeconds float64 `json:"parallel_cold_seconds"`
	ParallelWarmSeconds float64 `json:"parallel_warm_seconds"`
	// SpeedupWarm is serial-cold over parallel-warm: the factor the
	// cache (plus the pool, on multi-core hosts) buys a repeated sweep.
	SpeedupWarm float64 `json:"speedup_warm_vs_serial_cold"`

	// Scheduler accounting from the warm pass.
	PointsPlanned  int64 `json:"points_planned"`
	PointsExecuted int64 `json:"points_executed_warm"`
	CacheHits      int64 `json:"cache_hits_warm"`
	DedupHits      int64 `json:"dedup_hits_warm"`

	// ByteIdentical records that all three renderings matched; the
	// tool exits nonzero if they do not, so an archived report always
	// says true.
	ByteIdentical bool `json:"byte_identical"`
}

func main() {
	var (
		out        = flag.String("out", "BENCH_sweep.json", "write the benchmark report here")
		metricsOut = flag.String("metrics-out", "", "write the warm pass's metrics snapshot (cache-hit accounting) here")
		cacheDir   = flag.String("cache-dir", "", "cache directory (default: a throwaway temp dir)")
		quick      = flag.Bool("quick", false, "benchmark the shortened -quick sweep instead of the full one")
		workers    = flag.Int("parallel", 0, "worker pool size for the parallel passes (0 = GOMAXPROCS)")
	)
	flag.Parse()

	dir := *cacheDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "sweepbench-cache-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	cfg := experiments.Config{}
	if *quick {
		cfg.Sizes = []int{5120, 10240}
		cfg.CapabilityN = 10240
	}
	reg := experiments.Registry()
	ids := experiments.IDs()

	render := func(sched *experiments.Scheduler, sink *experiments.Obs) string {
		var b strings.Builder
		c := cfg
		c.Obs = sink
		for _, id := range ids {
			ent := reg[id]
			fmt.Fprintln(&b, sched.Run(ent.Run, ent.Profile, c))
		}
		return b.String()
	}
	timeIt := func(fn func() string) (string, float64) {
		start := time.Now()
		s := fn()
		return s, time.Since(start).Seconds()
	}

	serialOut, serialSec := timeIt(func() string {
		return render(experiments.NewScheduler(1, nil), nil)
	})
	coldOut, coldSec := timeIt(func() string {
		return render(experiments.NewScheduler(*workers, experiments.NewCache(dir)), nil)
	})
	warmSink := &experiments.Obs{Metrics: obs.NewRegistry()}
	warmSched := experiments.NewScheduler(*workers, experiments.NewCache(dir))
	warmOut, warmSec := timeIt(func() string {
		return render(warmSched, warmSink)
	})
	if err := warmSched.StoreErr(); err != nil {
		fatal(err)
	}

	identical := serialOut == coldOut && coldOut == warmOut
	rep := report{
		Experiments:         append([]string(nil), ids...),
		Quick:               *quick,
		Workers:             experiments.NewScheduler(*workers, nil).Workers(),
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		SerialColdSeconds:   serialSec,
		ParallelColdSeconds: coldSec,
		ParallelWarmSeconds: warmSec,
		PointsPlanned:       warmSink.Metrics.Counter("sweep.points.planned"),
		PointsExecuted:      warmSink.Metrics.Counter("sweep.points.executed"),
		CacheHits:           warmSink.Metrics.Counter("sweep.cache.hits"),
		DedupHits:           warmSink.Metrics.Counter("sweep.dedup.hits"),
		ByteIdentical:       identical,
	}
	if warmSec > 0 {
		rep.SpeedupWarm = serialSec / warmSec
	}
	sort.Strings(rep.Experiments)

	if !identical {
		fatal(fmt.Errorf("serial, cold-cache, and warm-cache outputs are not byte-identical"))
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := writeFile(*out, append(data, '\n')); err != nil {
		fatal(err)
	}
	if *metricsOut != "" {
		snap, err := warmSink.Metrics.Snapshot()
		if err != nil {
			fatal(err)
		}
		if err := writeFile(*metricsOut, snap); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("sweepbench: serial %.3fs, cold %.3fs, warm %.3fs (%.1fx), %d/%d points from cache -> %s\n",
		serialSec, coldSec, warmSec, rep.SpeedupWarm, rep.CacheHits, rep.PointsPlanned, *out)
}

func writeFile(path string, data []byte) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, data, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweepbench:", err)
	os.Exit(1)
}
