// Command servesmoke is the scripted end-to-end check behind
// `make serve-smoke`: it builds cmd/abftd, boots it on a random port,
// drives a submit → poll → fetch session through the reference client,
// proves the dedup and warm-cache paths execute zero kernels (by
// reading kernel-launch counters out of the daemon's own metrics), and
// SIGTERMs the daemon through a graceful drain — twice, restarting
// against the same on-disk result store to exercise cache-served jobs
// across processes. The full transcript lands in
// artifacts/serve-smoke.txt (CI uploads it); any failed expectation
// exits nonzero.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"abftchol/internal/server"
)

// smoke carries the session state: the transcript writer and the
// failure count.
type smoke struct {
	out    io.Writer
	failed int
}

func (s *smoke) logf(format string, args ...interface{}) {
	fmt.Fprintf(s.out, format+"\n", args...)
}

func (s *smoke) check(ok bool, what string, detail ...interface{}) {
	mark := "ok  "
	if !ok {
		mark = "FAIL"
		s.failed++
	}
	msg := what
	if len(detail) > 0 {
		msg = fmt.Sprintf(what, detail...)
	}
	s.logf("%s %s", mark, msg)
}

func main() {
	if err := os.MkdirAll("artifacts", 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke:", err)
		os.Exit(1)
	}
	transcript, err := os.Create("artifacts/serve-smoke.txt")
	if err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke:", err)
		os.Exit(1)
	}
	defer transcript.Close()
	s := &smoke{out: io.MultiWriter(os.Stdout, transcript)}

	if err := s.run(); err != nil {
		s.logf("FAIL %v", err)
		s.failed++
	}
	if s.failed > 0 {
		s.logf("serve-smoke: %d failure(s)", s.failed)
		os.Exit(1)
	}
	s.logf("serve-smoke: PASS")
}

// jobReq is the one point the whole session revolves around; it must
// stay identical across submissions so the fingerprint matches.
var jobReq = server.JobRequest{
	Machine: "laptop", N: 768, Scheme: "enhanced", K: 2, Inject: "storage@3",
}

func (s *smoke) run() error {
	work, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)
	bin := filepath.Join(work, "abftd")
	cacheDir := filepath.Join(work, "cache")
	metricsOut := filepath.Join("artifacts", "serve-smoke-metrics.json")

	s.logf("$ go build -o %s ./cmd/abftd", bin)
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/abftd").CombinedOutput(); err != nil {
		return fmt.Errorf("build abftd: %v\n%s", err, out)
	}

	// ---- first daemon: cold cache --------------------------------------
	d, err := s.boot(bin, "-addr", "127.0.0.1:0", "-workers", "2",
		"-cache", "-cache-dir", cacheDir, "-metrics-out", metricsOut)
	if err != nil {
		return err
	}
	c := &server.Client{Base: d.base, Name: "servesmoke"}

	s.logf("-- submit %s n=%d %s inject=%s", jobReq.Machine, jobReq.N, jobReq.Scheme, jobReq.Inject)
	info, err := c.Submit(jobReq)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	s.logf("   %s %s fingerprint=%s", info.ID, info.State, info.Fingerprint)
	info, err = c.Wait(info.ID)
	if err != nil {
		return fmt.Errorf("wait: %w", err)
	}
	s.check(info.State == server.StateDone, "job %s reaches done (state %s)", info.ID, info.State)
	s.check(info.Executed != nil && *info.Executed, "cold job executed the factorization")
	res, err := c.Result(info.ID)
	if err != nil {
		return fmt.Errorf("result: %w", err)
	}
	s.check(res.Result.Corrections == 1, "injected storage error corrected (corrections=%d)", res.Result.Corrections)
	potf2, err := s.kernelCount(c, info.ID, "kernel.launches.potf2")
	if err != nil {
		return err
	}
	s.check(potf2 > 0, "cold job launched kernels (potf2=%d)", potf2)

	s.logf("-- duplicate submit (same point)")
	dup, err := c.Submit(jobReq)
	if err != nil {
		return fmt.Errorf("submit dup: %w", err)
	}
	dup, err = c.Wait(dup.ID)
	if err != nil {
		return fmt.Errorf("wait dup: %w", err)
	}
	s.check(dup.State == server.StateDone, "duplicate %s reaches done", dup.ID)
	s.check(dup.Executed != nil && !*dup.Executed, "duplicate served without executing")
	dupPotf2, err := s.kernelCount(c, dup.ID, "kernel.launches.potf2")
	if err != nil {
		return err
	}
	s.check(dupPotf2 == 0, "duplicate launched zero kernels (potf2=%d)", dupPotf2)

	h, err := c.Health()
	if err != nil {
		return fmt.Errorf("health: %w", err)
	}
	s.check(h.Status == "ok" && h.Jobs[server.StateDone] == 2, "healthz: status=%s done=%d", h.Status, h.Jobs[server.StateDone])

	if err := s.drain(d); err != nil {
		return err
	}
	if _, err := os.Stat(metricsOut); err != nil {
		s.check(false, "metrics flushed on shutdown: %v", err)
	} else {
		s.check(true, "metrics flushed to %s on shutdown", metricsOut)
	}

	// ---- second daemon: warm cache, fresh process ----------------------
	s.logf("-- restart against the same result store")
	d2, err := s.boot(bin, "-addr", "127.0.0.1:0", "-workers", "2",
		"-cache", "-cache-dir", cacheDir)
	if err != nil {
		return err
	}
	c2 := &server.Client{Base: d2.base, Name: "servesmoke"}
	warm, err := c2.Submit(jobReq)
	if err != nil {
		return fmt.Errorf("warm submit: %w", err)
	}
	warm, err = c2.Wait(warm.ID)
	if err != nil {
		return fmt.Errorf("warm wait: %w", err)
	}
	s.check(warm.State == server.StateDone, "warm job %s reaches done", warm.ID)
	s.check(warm.Executed != nil && !*warm.Executed, "warm job served from the on-disk store")
	warmPotf2, err := s.kernelCount(c2, warm.ID, "kernel.launches.potf2")
	if err != nil {
		return err
	}
	hits, err := s.kernelCount(c2, warm.ID, "sweep.cache.hits")
	if err != nil {
		return err
	}
	s.check(warmPotf2 == 0 && hits == 1, "warm job executed zero kernels (potf2=%d, cache hits=%d)", warmPotf2, hits)
	warmRes, err := c2.Result(warm.ID)
	if err != nil {
		return fmt.Errorf("warm result: %w", err)
	}
	coldJSON, _ := json.Marshal(res.Result)
	warmJSON, _ := json.Marshal(warmRes.Result)
	s.check(string(coldJSON) == string(warmJSON), "warm result byte-identical to the cold run's")

	return s.drain(d2)
}

// daemon is one running abftd process.
type daemon struct {
	cmd    *exec.Cmd
	base   string
	stderr *strings.Builder
}

// boot starts abftd and parses the resolved address off its stdout.
func (s *smoke) boot(bin string, args ...string) (*daemon, error) {
	s.logf("$ %s %s", filepath.Base(bin), strings.Join(args, " "))
	cmd := exec.Command(bin, args...)
	stderr := &strings.Builder{}
	cmd.Stderr = stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start abftd: %w", err)
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("abftd produced no listen line; stderr:\n%s", stderr.String())
	}
	line := sc.Text()
	s.logf("  %s", line)
	const prefix = "abftd: listening on "
	if !strings.HasPrefix(line, prefix) {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("unexpected boot line %q", line)
	}
	// Keep draining stdout so the child never blocks on a full pipe.
	go io.Copy(io.Discard, stdout)
	return &daemon{cmd: cmd, base: strings.TrimPrefix(line, prefix), stderr: stderr}, nil
}

// drain SIGTERMs the daemon and verifies a clean exit.
func (s *smoke) drain(d *daemon) error {
	s.logf("$ kill -TERM %d", d.cmd.Process.Pid)
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signal: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		s.check(err == nil, "daemon exited cleanly after SIGTERM (err=%v)", err)
	case <-time.After(90 * time.Second):
		d.cmd.Process.Kill()
		<-done
		return fmt.Errorf("daemon did not drain within 90s; stderr:\n%s", d.stderr.String())
	}
	s.check(strings.Contains(d.stderr.String(), "abftd: drained"), "drain completed (stderr reports \"abftd: drained\")")
	return nil
}

// kernelCount reads one counter out of a job's private metrics
// snapshot.
func (s *smoke) kernelCount(c *server.Client, id, name string) (int64, error) {
	data, err := c.JobMetrics(id)
	if err != nil {
		return 0, fmt.Errorf("metrics %s: %w", id, err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return 0, fmt.Errorf("decode metrics %s: %w", id, err)
	}
	return snap.Counters[name], nil
}
