package main

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// repoRoot walks up from the test's working directory to the module
// root (where go.mod lives).
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// TestGoldenReport proves the committed escape/BCE report still
// matches what the compiler says about the annotated kernels. On the
// exact toolchain the golden was generated with, the report must be
// byte-identical (any drift means an annotation or a kernel changed
// without regenerating). On other toolchains, diagnostic positions may
// move, but every annotation must still PASS.
func TestGoldenReport(t *testing.T) {
	if testing.Short() {
		t.Skip("escapecheck rebuilds packages with -m; skipped in -short")
	}
	root := repoRoot(t)
	report, nfail, err := buildReport(root)
	if err != nil {
		t.Fatalf("buildReport: %v", err)
	}
	if nfail > 0 {
		for _, line := range strings.Split(report, "\n") {
			if strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "  ") {
				t.Error(line)
			}
		}
		t.Fatalf("%d annotation(s) fail under %s", nfail, runtime.Version())
	}
	golden, err := os.ReadFile(filepath.Join(root, goldenPath))
	if err != nil {
		t.Fatalf("missing golden report: %v (run `go run ./tools/escapecheck -write`)", err)
	}
	if goldenVersion(string(golden)) != runtime.Version() {
		t.Logf("golden is for %s, running %s; byte comparison skipped, all annotations PASS",
			goldenVersion(string(golden)), runtime.Version())
		return
	}
	if string(golden) != report {
		t.Fatalf("report drifted from %s; run `go run ./tools/escapecheck -write`\n--- golden ---\n%s\n--- fresh ---\n%s",
			goldenPath, golden, report)
	}
}

// TestColdLines pins the syntactic cold-span rules the verdicts rely
// on: panic statements and guard bodies ending in return/panic are
// exempt, straight-line code is not.
func TestColdLines(t *testing.T) {
	src := `package p

import "fmt"

func f(n int) error {
	if n < 0 {
		panic(fmt.Sprintf("bad %d", n))
	}
	if n == 0 {
		return fmt.Errorf("zero")
	}
	x := make([]int, n)
	_ = x
	return nil
}
`
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	anns, err := parsePackage(dir, "p")
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) != 0 {
		t.Fatalf("unannotated function produced %d annotations", len(anns))
	}
	// Re-parse with annotations to reach coldLines through the public path.
	src = strings.Replace(src, "func f", "// abft:noescape\nfunc f", 1)
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	anns, err = parsePackage(dir, "p")
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) != 1 {
		t.Fatalf("got %d annotations, want 1", len(anns))
	}
	a := anns[0]
	// With the marker comment the function starts at line 6; the panic
	// guard body is lines 7-8, the error guard body lines 10-11, and
	// the make sits on line 13 (hot).
	for _, cold := range []int{8, 11} {
		if !a.cold[cold] {
			t.Errorf("line %d should be cold; cold set: %v", cold, a.cold)
		}
	}
	if a.cold[13] {
		t.Errorf("line 13 (make) must not be cold; cold set: %v", a.cold)
	}
}
