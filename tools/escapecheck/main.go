// Command escapecheck proves the repository's performance annotations
// against the real compiler rather than against a model of it. The
// hotpath analyzer (tools/analyzers/hotpath) reasons about the AST; a
// construct it accepts could still allocate or carry bounds checks
// after SSA. escapecheck closes that gap: it rebuilds the hot packages
// with `-m -m` (escape analysis) and `-d=ssa/check_bce` (bounds-check
// elimination debugging) and diffs the compiler's diagnostics against
// two declarative annotations in function doc comments:
//
//	// abft:noescape      — no value escapes to the heap anywhere in
//	                        the function body outside cold lines
//	// abft:bce checks=N  — the compiler emits exactly N bounds checks
//	                        (IsInBounds + IsSliceInBounds) in the body
//
// Cold lines are exempt from noescape: the span of any panic(...)
// statement, and the body of any if whose last statement returns or
// panics (error guards and fail-stop exits — the paths the fused
// kernels take only when the computation is already over).
//
// The bce count is a ratchet, not a target of zero: column-major
// kernels legitimately keep once-per-column slice-formation checks and
// strided scalar reads. Pinning the exact count means any regression —
// a rewrite that re-introduces a per-element check in an inner loop —
// shows up as a FAIL against the golden report in artifacts/.
//
// Usage:
//
//	go run ./tools/escapecheck                  # print report to stdout
//	go run ./tools/escapecheck -write           # rewrite artifacts/escape-report.txt
//	go run ./tools/escapecheck -check           # compare against the golden; exit 1 on drift
//
// The golden embeds the toolchain version; -check byte-compares only
// when the running toolchain matches, and otherwise just requires a
// FAIL-free report (diagnostic wording shifts across Go releases, the
// invariants must not).
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// packages lists the hot-path scope, mirroring the hotpath analyzer's
// Scope. Order is the report order.
var packages = []string{
	"internal/blas",
	"internal/checksum",
	"internal/mat",
}

const goldenPath = "artifacts/escape-report.txt"

func main() {
	write := flag.Bool("write", false, "rewrite the golden report at "+goldenPath)
	check := flag.Bool("check", false, "compare against the golden report; exit 1 on drift or FAIL")
	flag.Parse()

	report, nfail, err := buildReport(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "escapecheck:", err)
		os.Exit(2)
	}

	switch {
	case *write:
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "escapecheck:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(goldenPath, []byte(report), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "escapecheck:", err)
			os.Exit(2)
		}
		fmt.Printf("escapecheck: wrote %s (%d FAIL)\n", goldenPath, nfail)
		if nfail > 0 {
			os.Exit(1)
		}
	case *check:
		os.Exit(checkGolden(report, nfail))
	default:
		fmt.Print(report)
		if nfail > 0 {
			os.Exit(1)
		}
	}
}

// checkGolden compares the fresh report against the committed golden.
func checkGolden(report string, nfail int) int {
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "escapecheck: no golden report (%v); run `go run ./tools/escapecheck -write`\n", err)
		return 1
	}
	if goldenVersion(string(golden)) == runtime.Version() {
		if string(golden) != report {
			fmt.Fprintln(os.Stderr, "escapecheck: report drifted from golden; diff follows")
			printDiff(string(golden), report)
			return 1
		}
		fmt.Printf("escapecheck: golden report up to date (%s)\n", runtime.Version())
		return 0
	}
	// Different toolchain: exact diagnostic positions may shift, but
	// every annotation must still hold.
	if nfail > 0 {
		fmt.Fprintf(os.Stderr, "escapecheck: %d annotation(s) FAIL under %s:\n", nfail, runtime.Version())
		for _, line := range strings.Split(report, "\n") {
			if strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "  ") {
				fmt.Fprintln(os.Stderr, line)
			}
		}
		return 1
	}
	fmt.Printf("escapecheck: golden is for %s, running %s; all annotations PASS (golden not byte-compared)\n",
		goldenVersion(string(golden)), runtime.Version())
	return 0
}

func goldenVersion(golden string) string {
	for _, line := range strings.Split(golden, "\n") {
		if v, ok := strings.CutPrefix(line, "# go "); ok {
			return v
		}
	}
	return ""
}

func printDiff(old, new string) {
	om := map[string]bool{}
	for _, l := range strings.Split(old, "\n") {
		om[l] = true
	}
	nm := map[string]bool{}
	for _, l := range strings.Split(new, "\n") {
		nm[l] = true
	}
	for _, l := range strings.Split(old, "\n") {
		if !nm[l] {
			fmt.Fprintln(os.Stderr, "- "+l)
		}
	}
	for _, l := range strings.Split(new, "\n") {
		if !om[l] {
			fmt.Fprintln(os.Stderr, "+ "+l)
		}
	}
}

// annotation is one abft:noescape or abft:bce claim on a function.
type annotation struct {
	file      string // repo-relative path
	fn        string // function (or Type.Method) name
	startLine int
	endLine   int
	noescape  bool
	bce       bool
	bceChecks int
	cold      lineSet // cold lines within [startLine, endLine]
}

type lineSet map[int]bool

// buildReport parses the hot packages, gathers annotations, replays
// the compiler and renders the verdict report.
func buildReport(root string) (string, int, error) {
	var anns []*annotation
	for _, pkg := range packages {
		a, err := parsePackage(filepath.Join(root, pkg), pkg)
		if err != nil {
			return "", 0, err
		}
		anns = append(anns, a...)
	}
	escapes, checks, err := compileDiagnostics(root)
	if err != nil {
		return "", 0, err
	}

	sort.Slice(anns, func(i, j int) bool {
		if anns[i].file != anns[j].file {
			return anns[i].file < anns[j].file
		}
		return anns[i].startLine < anns[j].startLine
	})

	var b strings.Builder
	fmt.Fprintf(&b, "# escapecheck report — compiler-proven hot-path annotations\n")
	fmt.Fprintf(&b, "# go %s\n", runtime.Version())
	fmt.Fprintf(&b, "# packages: %s\n\n", strings.Join(packages, " "))
	nfail := 0
	for _, a := range anns {
		if a.noescape {
			var bad []string
			for _, e := range escapes[a.file] {
				if e.line >= a.startLine && e.line <= a.endLine && !a.cold[e.line] {
					bad = append(bad, fmt.Sprintf("%s:%d: %s", a.file, e.line, e.msg))
				}
			}
			if len(bad) == 0 {
				fmt.Fprintf(&b, "PASS %s:%s noescape\n", a.file, a.fn)
			} else {
				nfail++
				fmt.Fprintf(&b, "FAIL %s:%s noescape — %d escape(s) on hot lines\n", a.file, a.fn, len(bad))
				sort.Strings(bad)
				for _, m := range bad {
					fmt.Fprintf(&b, "  %s\n", m)
				}
			}
		}
		if a.bce {
			got := 0
			for _, c := range checks[a.file] {
				if c >= a.startLine && c <= a.endLine && !a.cold[c] {
					got++
				}
			}
			if got == a.bceChecks {
				fmt.Fprintf(&b, "PASS %s:%s bce checks=%d\n", a.file, a.fn, got)
			} else {
				nfail++
				fmt.Fprintf(&b, "FAIL %s:%s bce declared checks=%d, compiler emitted %d\n", a.file, a.fn, a.bceChecks, got)
			}
		}
	}
	fmt.Fprintf(&b, "\n# %d annotation claim(s), %d FAIL\n", countClaims(anns), nfail)
	return b.String(), nfail, nil
}

func countClaims(anns []*annotation) int {
	n := 0
	for _, a := range anns {
		if a.noescape {
			n++
		}
		if a.bce {
			n++
		}
	}
	return n
}

var bceRe = regexp.MustCompile(`^abft:bce\s+checks=(\d+)$`)

// parsePackage walks a package directory's non-test Go files and
// collects annotated functions.
func parsePackage(dir, rel string) ([]*annotation, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", dir, err)
	}
	var anns []*annotation
	for _, pkg := range pkgs {
		for name, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil || fd.Body == nil {
					continue
				}
				a := &annotation{
					file:      filepath.Join(rel, filepath.Base(name)),
					fn:        funcName(fd),
					startLine: fset.Position(fd.Pos()).Line,
					endLine:   fset.Position(fd.End()).Line,
				}
				for _, c := range fd.Doc.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if text == "abft:noescape" {
						a.noescape = true
					}
					if m := bceRe.FindStringSubmatch(text); m != nil {
						a.bce = true
						a.bceChecks, _ = strconv.Atoi(m[1])
					}
				}
				if !a.noescape && !a.bce {
					continue
				}
				a.cold = coldLines(fset, fd.Body)
				anns = append(anns, a)
			}
		}
	}
	return anns, nil
}

func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// coldLines computes the syntactic cold spans of a function body: any
// panic(...) statement, and the body of any if whose last statement is
// a return or a panic. These are the error-guard and fail-stop paths;
// allocations there (fmt.Sprintf arguments, error values) are the
// point of the path, not a hot-loop leak.
func coldLines(fset *token.FileSet, body *ast.BlockStmt) lineSet {
	cold := lineSet{}
	mark := func(n ast.Node) {
		for l := fset.Position(n.Pos()).Line; l <= fset.Position(n.End()).Line; l++ {
			cold[l] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && isPanic(call) {
				mark(s)
			}
		case *ast.IfStmt:
			if len(s.Body.List) == 0 {
				return true
			}
			switch last := s.Body.List[len(s.Body.List)-1].(type) {
			case *ast.ReturnStmt:
				mark(s.Body)
			case *ast.ExprStmt:
				if call, ok := last.X.(*ast.CallExpr); ok && isPanic(call) {
					mark(s.Body)
				}
			}
		}
		return true
	})
	return cold
}

func isPanic(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// diag is one compiler diagnostic pinned to a line.
type diag struct {
	line int
	msg  string
}

var (
	escapeRe = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (.*(?:escapes to heap|moved to heap).*)$`)
	checkRe  = regexp.MustCompile(`^(.+\.go):(\d+):\d+: Found Is(?:Slice)?InBounds$`)
)

// compileDiagnostics rebuilds the hot packages with escape-analysis
// and BCE debugging enabled and collects the diagnostics per file.
// Diagnostics land on stderr; the go build cache replays them on
// repeated identical invocations, so this is cheap after the first
// run.
func compileDiagnostics(root string) (escapes map[string][]diag, checks map[string][]int, err error) {
	escapes = map[string][]diag{}
	checks = map[string][]int{}
	module, err := modulePath(root)
	if err != nil {
		return nil, nil, err
	}
	for _, pkg := range packages {
		spec := fmt.Sprintf("%s/%s=-m -m -d=ssa/check_bce", module, pkg)
		cmd := exec.Command("go", "build", "-gcflags="+spec, "./"+pkg)
		cmd.Dir = root
		out, err := cmd.CombinedOutput()
		if err != nil {
			return nil, nil, fmt.Errorf("go build %s: %v\n%s", pkg, err, out)
		}
		for _, line := range strings.Split(string(out), "\n") {
			if m := checkRe.FindStringSubmatch(line); m != nil {
				file := filepath.ToSlash(m[1])
				n, _ := strconv.Atoi(m[2])
				checks[file] = append(checks[file], n)
				continue
			}
			if m := escapeRe.FindStringSubmatch(line); m != nil {
				file := filepath.ToSlash(m[1])
				n, _ := strconv.Atoi(m[2])
				escapes[file] = append(escapes[file], diag{line: n, msg: m[3]})
			}
		}
	}
	return escapes, checks, nil
}

func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if v, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(v), nil
		}
	}
	return "", fmt.Errorf("no module line in go.mod")
}
