// Command servicedoc rewrites the generated sections of
// docs/SERVICE.md from the live daemon: the endpoint table
// (server.Routes), the error-code table (server.ErrorCodes), and a
// real HTTP session captured against an in-process daemon under a
// frozen clock (server.DocSession). It is wired to
// `go generate ./internal/server`; the server package's doc drift test
// re-records the session and asserts the embedding, so a stale doc
// fails `go test` rather than rotting silently.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"abftchol/internal/server"
)

func main() {
	out := flag.String("out", "../../docs/SERVICE.md", "markdown file whose generated sections to rewrite (path is relative to internal/server, where go generate runs)")
	flag.Parse()
	if err := rewrite(*out); err != nil {
		fmt.Fprintln(os.Stderr, "servicedoc:", err)
		os.Exit(1)
	}
}

func rewrite(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	session, err := server.DocSession()
	if err != nil {
		return fmt.Errorf("record session: %w", err)
	}
	src := string(data)
	for _, sec := range []struct {
		begin, end, body string
	}{
		{server.EndpointsBegin, server.EndpointsEnd, server.EndpointsTable()},
		{server.ErrorsBegin, server.ErrorsEnd, server.ErrorsTable()},
		{server.JobErrorsBegin, server.JobErrorsEnd, server.JobErrorsTable()},
		{server.SessionBegin, server.SessionEnd, session},
	} {
		src, err = replaceSection(src, sec.begin, sec.end, sec.body)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	return os.WriteFile(path, []byte(src), 0o644)
}

func replaceSection(src, begin, end, body string) (string, error) {
	b := strings.Index(src, begin)
	e := strings.Index(src, end)
	if b < 0 || e < 0 || e < b {
		return "", fmt.Errorf("marker comments %q ... %q not found; the generated section needs a home", begin, end)
	}
	return src[:b] + begin + "\n" + body + src[e:], nil
}
