// Command relbench records the reliability-campaign acceptance
// benchmark: it runs the default (machine × scheme × fault class)
// campaign grid twice — serial, then on the parallel worker pool —
// verifies both produce byte-identical reports, and writes the timing
// comparison plus the canonical coverage report (outcome rates with
// Wilson 95% confidence intervals per cell) to BENCH_reliability.json
// at the repository root. `make bench` runs it; CI archives the file.
//
// Wall-clock timing lives here, outside internal/reliability, on
// purpose: campaign execution is detsim-clean, and the benchmark is
// the one place where real elapsed time is the measurement.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"abftchol/internal/experiments"
	"abftchol/internal/reliability/campaign"
)

type report struct {
	// What ran.
	Workers    int `json:"workers"`
	GOMAXPROCS int `json:"gomaxprocs"`

	// Wall-clock, seconds.
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup_parallel_vs_serial"`
	// TrialsPerSecond is the parallel pass's injection throughput —
	// the figure that sizes a million-trial overnight campaign.
	TrialsPerSecond float64 `json:"trials_per_second_parallel"`

	// ByteIdentical records that both passes matched; the tool exits
	// nonzero if they do not, so an archived report always says true.
	ByteIdentical bool `json:"byte_identical"`

	// Campaign is the canonical coverage report, byte-for-byte what
	// `abftchol -campaign` with the same config would print.
	Campaign json.RawMessage `json:"campaign"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_reliability.json", "write the benchmark report here")
		trials  = flag.Int("trials", 0, "trials per grid cell (0 = campaign default)")
		seed    = flag.Int64("seed", 20160523, "campaign seed")
		workers = flag.Int("parallel", 0, "worker pool size for the parallel pass (0 = GOMAXPROCS)")
	)
	flag.Parse()

	cfg := campaign.Config{TrialsPerCell: *trials, Seed: *seed}
	cfg, err := cfg.Normalize()
	if err != nil {
		fatal(err)
	}

	run := func(w int) ([]byte, float64) {
		start := time.Now()
		rep, err := campaign.Run(context.Background(), cfg, experiments.NewScheduler(w, nil), campaign.RunOptions{})
		if err != nil {
			fatal(err)
		}
		data, err := rep.Marshal()
		if err != nil {
			fatal(err)
		}
		return data, time.Since(start).Seconds()
	}
	serialOut, serialSec := run(1)
	parallelOut, parallelSec := run(*workers)

	identical := string(serialOut) == string(parallelOut)
	total := len(cfg.Machines) * len(cfg.Schemes) * len(cfg.Classes) * cfg.TrialsPerCell
	rep := report{
		Workers:       experiments.NewScheduler(*workers, nil).Workers(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		SerialSeconds: serialSec, ParallelSeconds: parallelSec,
		ByteIdentical: identical,
		Campaign:      json.RawMessage(parallelOut),
	}
	if parallelSec > 0 {
		rep.Speedup = serialSec / parallelSec
		rep.TrialsPerSecond = float64(total) / parallelSec
	}
	if !identical {
		fatal(fmt.Errorf("serial and parallel campaign reports are not byte-identical"))
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := writeFile(*out, append(data, '\n')); err != nil {
		fatal(err)
	}
	fmt.Printf("relbench: %d trials, serial %.3fs, parallel %.3fs (%.1fx, %.0f trials/s) -> %s\n",
		total, serialSec, parallelSec, rep.Speedup, rep.TrialsPerSecond, *out)
}

func writeFile(path string, data []byte) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, data, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "relbench:", err)
	os.Exit(1)
}
