// Command reldoc rewrites the generated sections of
// docs/RELIABILITY.md from the live code: the fault-class taxonomy
// (fault.Classes), the trial-outcome taxonomy (reliability.Outcomes),
// and a sample campaign — journal and report — executed in process
// (campaign.DocSample). It is wired to
// `go generate ./internal/reliability/campaign`; the campaign
// package's doc drift test re-records the sample and asserts the
// embedding, so a stale doc fails `go test` rather than rotting
// silently.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"abftchol/internal/reliability/campaign"
)

func main() {
	out := flag.String("out", "../../../docs/RELIABILITY.md", "markdown file whose generated sections to rewrite (path is relative to internal/reliability/campaign, where go generate runs)")
	flag.Parse()
	if err := rewrite(*out); err != nil {
		fmt.Fprintln(os.Stderr, "reldoc:", err)
		os.Exit(1)
	}
}

func rewrite(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sample, err := campaign.DocSample()
	if err != nil {
		return fmt.Errorf("record sample campaign: %w", err)
	}
	src := string(data)
	for _, sec := range []struct {
		begin, end, body string
	}{
		{campaign.ClassesBegin, campaign.ClassesEnd, campaign.ClassesTable()},
		{campaign.OutcomesBegin, campaign.OutcomesEnd, campaign.OutcomesTable()},
		{campaign.SampleBegin, campaign.SampleEnd, sample},
	} {
		src, err = replaceSection(src, sec.begin, sec.end, sec.body)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	return os.WriteFile(path, []byte(src), 0o644)
}

func replaceSection(src, begin, end, body string) (string, error) {
	b := strings.Index(src, begin)
	e := strings.Index(src, end)
	if b < 0 || e < 0 || e < b {
		return "", fmt.Errorf("marker comments %q ... %q not found; the generated section needs a home", begin, end)
	}
	return src[:b] + begin + "\n" + body + src[e:], nil
}
