// Command campaignsmoke is the scripted kill-and-resume check behind
// `make campaign-smoke`: it builds cmd/abftchol, runs a reference
// reliability campaign to completion, starts the identical campaign in
// a fresh journal directory and SIGKILLs it mid-shard (watching the
// journal grow to time the kill), resumes from the torn journal, and
// proves the resumed report is byte-identical to the uninterrupted
// one. The transcript lands in artifacts/campaign-smoke.txt (CI
// uploads it); any failed expectation exits nonzero.
package main

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// campaignFlags is the one grid the whole session revolves around; it
// must stay identical across runs so the journal fingerprint matches.
// Small N keeps each trial cheap; many small shards give the SIGKILL a
// wide window to land mid-campaign.
var campaignFlags = []string{
	"-campaign",
	"-schemes", "magma,online,enhanced",
	"-classes", "storage-offset,storage-offset-burst",
	"-n", "256", "-rate", "0.2",
	"-trials", "600", "-shard-trials", "25",
	"-seed", "7",
}

// totalShards is what the flags above plan: 3 schemes x 2 classes
// cells, 600/25 shards each.
const totalShards = 3 * 2 * (600 / 25)

type smoke struct {
	out    io.Writer
	failed int
}

func (s *smoke) logf(format string, args ...interface{}) {
	fmt.Fprintf(s.out, format+"\n", args...)
}

func (s *smoke) check(ok bool, what string, detail ...interface{}) {
	mark := "ok  "
	if !ok {
		mark = "FAIL"
		s.failed++
	}
	s.logf("%s %s", mark, fmt.Sprintf(what, detail...))
}

func main() {
	if err := os.MkdirAll("artifacts", 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "campaignsmoke:", err)
		os.Exit(1)
	}
	transcript, err := os.Create("artifacts/campaign-smoke.txt")
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignsmoke:", err)
		os.Exit(1)
	}
	defer transcript.Close()
	s := &smoke{out: io.MultiWriter(os.Stdout, transcript)}

	if err := s.run(); err != nil {
		s.logf("FAIL %v", err)
		s.failed++
	}
	if s.failed > 0 {
		s.logf("campaign-smoke: %d failure(s)", s.failed)
		os.Exit(1)
	}
	s.logf("campaign-smoke: PASS")
}

func (s *smoke) run() error {
	work, err := os.MkdirTemp("", "campaignsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)
	bin := filepath.Join(work, "abftchol")

	s.logf("$ go build -o %s ./cmd/abftchol", bin)
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/abftchol").CombinedOutput(); err != nil {
		return fmt.Errorf("build abftchol: %v\n%s", err, out)
	}

	// ---- reference: uninterrupted, unjournaled -------------------------
	refOut := filepath.Join(work, "reference.json")
	stderr, err := s.campaign(bin, "-campaign-dir", "", "-out", refOut)
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}
	s.check(strings.Contains(stderr, fmt.Sprintf("%d shards", totalShards)),
		"reference campaign planned %d shards", totalShards)
	ref, err := os.ReadFile(refOut)
	if err != nil {
		return err
	}
	s.check(len(ref) > 0, "reference report written (%d bytes)", len(ref))

	// ---- interrupted: SIGKILL while the journal is growing -------------
	dir := filepath.Join(work, "journal")
	lines, fallback, err := s.killMidCampaign(bin, dir)
	if err != nil {
		return err
	}
	if fallback {
		s.logf("    (campaign finished before the kill landed; journal truncated instead)")
	}
	s.check(lines >= 2, "journal survived the kill with a header and >=1 shard (%d lines)", lines)
	s.check(lines < totalShards+1, "journal is incomplete: %d of %d shard records", lines-1, totalShards)

	// ---- resume --------------------------------------------------------
	resumedOut := filepath.Join(work, "resumed.json")
	stderr, err = s.campaign(bin, "-campaign-dir", dir, "-out", resumedOut)
	if err != nil {
		return fmt.Errorf("resume run: %w", err)
	}
	s.check(strings.Contains(stderr, "resumed"), "resume run reports resumed shards")
	resumed, err := os.ReadFile(resumedOut)
	if err != nil {
		return err
	}
	s.check(string(resumed) == string(ref),
		"resumed report byte-identical to the uninterrupted run (%d bytes)", len(resumed))

	// ---- replay: a completed journal executes nothing ------------------
	replayOut := filepath.Join(work, "replay.json")
	stderr, err = s.campaign(bin, "-campaign-dir", dir, "-out", replayOut)
	if err != nil {
		return fmt.Errorf("replay run: %w", err)
	}
	s.check(strings.Contains(stderr, fmt.Sprintf("resumed %d of %d shards", totalShards, totalShards)),
		"replay resumes all %d shards from the journal", totalShards)
	replay, err := os.ReadFile(replayOut)
	if err != nil {
		return err
	}
	s.check(string(replay) == string(ref), "replayed report byte-identical too")
	return nil
}

// campaign runs one journaled campaign to completion and returns its
// stderr transcript.
func (s *smoke) campaign(bin string, extra ...string) (string, error) {
	args := append(append([]string{}, campaignFlags...), extra...)
	s.logf("$ abftchol %s", strings.Join(args, " "))
	cmd := exec.Command(bin, args...)
	stderr := &strings.Builder{}
	cmd.Stderr = stderr
	err := cmd.Run()
	for _, line := range strings.Split(strings.TrimRight(stderr.String(), "\n"), "\n") {
		if line != "" {
			s.logf("    %s", line)
		}
	}
	if err != nil {
		return stderr.String(), fmt.Errorf("%v", err)
	}
	return stderr.String(), nil
}

// killMidCampaign starts the journaled campaign and SIGKILLs it once
// the journal holds a handful of shard records, returning the torn
// journal's line count. If the campaign wins the race and finishes
// first, the journal is truncated to half its records instead
// (fallback=true) so the resume leg still gets exercised.
func (s *smoke) killMidCampaign(bin, dir string) (lines int, fallback bool, err error) {
	args := append(append([]string{}, campaignFlags...), "-campaign-dir", dir, "-out", os.DevNull)
	s.logf("$ abftchol %s   # SIGKILL mid-shard", strings.Join(args, " "))
	cmd := exec.Command(bin, args...)
	if err := cmd.Start(); err != nil {
		return 0, false, fmt.Errorf("start: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	const killAfter = 12 // header + a dozen shard records: well inside the run
	deadline := time.After(60 * time.Second)
	for {
		select {
		case <-done:
			// Finished before the kill: truncate to simulate the tear.
			path, n, terr := s.truncateJournal(dir)
			if terr != nil {
				return 0, true, terr
			}
			s.logf("$ truncate %s to %d lines", filepath.Base(path), n)
			return n, true, nil
		case <-deadline:
			cmd.Process.Kill()
			<-done
			return 0, false, fmt.Errorf("campaign still running after 60s")
		case <-time.After(2 * time.Millisecond):
			if n := journalLines(dir); n > killAfter {
				s.logf("$ kill -KILL %d   # journal at %d lines", cmd.Process.Pid, n)
				cmd.Process.Signal(syscall.SIGKILL)
				<-done
				return journalLines(dir), false, nil
			}
		}
	}
}

// journalLines counts newline-terminated records across the journal
// directory (one fingerprint-named file).
func journalLines(dir string) int {
	paths, _ := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	total := 0
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			continue
		}
		total += strings.Count(string(data), "\n")
	}
	return total
}

// truncateJournal rewrites the journal keeping the header plus half
// the shard records — the fallback tear for hosts fast enough to
// finish before the kill lands.
func (s *smoke) truncateJournal(dir string) (string, int, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil || len(paths) != 1 {
		return "", 0, fmt.Errorf("expected one journal in %s, found %d", dir, len(paths))
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		return "", 0, err
	}
	all := strings.SplitAfter(string(data), "\n")
	keep := 1 + (len(all)-1)/2
	if keep < 2 {
		return "", 0, fmt.Errorf("journal too short to tear (%d lines)", len(all))
	}
	kept := strings.Join(all[:keep], "")
	if err := os.WriteFile(paths[0], []byte(kept), 0o644); err != nil {
		return "", 0, err
	}
	return paths[0], keep, nil
}
