// Package detsim flags non-deterministic inputs — wall-clock reads and
// unseeded randomness — inside the simulator's numeric core: the ABFT
// executor (internal/core) and the fault injector (internal/fault).
// Trace replay, fault campaigns, and the real-vs-model plane agreement
// tests all assume that the same seed reproduces the same run bit for
// bit; one time.Now or global math/rand call silently breaks every one
// of those guarantees. The only sanctioned randomness is a seeded
// *rand.Rand threaded through explicitly, and the only sanctioned
// clock is the simulator's own.
//
// The output-facing packages (internal/hetsim, internal/obs,
// internal/experiments, cmd/abftchol) get the same clock/randomness
// checks — plus map-iteration-order and pointer-formatting checks —
// from the detorder analyzer, which calls CheckFile below.
package detsim

import (
	"go/ast"
	"go/types"

	"abftchol/tools/analyzers/analysis"
)

// Doc explains the analyzer; it is also the driver help text.
const Doc = "forbid wall-clock time and unseeded randomness in the deterministic numeric core (output-facing packages are covered by detorder)"

// wallClock lists the time-package functions that read the machine's
// clock or schedule against it. time.Duration arithmetic and constants
// remain fine — only real-time observation breaks replay.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTicker": true,
	"NewTimer": true, "Sleep": true,
}

// seededConstructors are the math/rand functions that build an
// explicitly seeded generator rather than drawing from the hidden
// global source.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 spellings.
	"NewPCG": true, "NewChaCha8": true,
}

// Analyzer implements the pass.
var Analyzer = &analysis.Analyzer{
	Name:  "detsim",
	Doc:   Doc,
	Scope: "internal/core, internal/fault",
	AppliesTo: analysis.PathIn(
		"abftchol/internal/core",
		"abftchol/internal/fault",
	),
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		CheckFile(pass, f)
	}
	return nil
}

// CheckFile reports every non-deterministic input in one file:
// crypto/rand imports, wall-clock reads, and global math/rand draws.
// Exported so detorder can apply the identical checks to the
// output-facing packages outside this analyzer's scope.
func CheckFile(pass *analysis.Pass, f *ast.File) {
	for _, imp := range f.Imports {
		if imp.Path.Value == `"crypto/rand"` {
			pass.Reportf(imp.Pos(), "crypto/rand is non-deterministic and forbidden here; thread a seeded *math/rand.Rand through instead")
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkgName.Imported().Path() {
		case "time":
			if wallClock[sel.Sel.Name] {
				pass.Reportf(sel.Pos(), "time.%s reads the wall clock and breaks deterministic replay; use the simulated clock threaded through the run", sel.Sel.Name)
			}
		case "math/rand", "math/rand/v2":
			// Only package-level functions draw from the hidden
			// global source; types (rand.Rand, rand.Source) and
			// methods on a seeded generator are the sanctioned path.
			if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); isFunc && !seededConstructors[sel.Sel.Name] {
				pass.Reportf(sel.Pos(), "global rand.%s draws from the unseeded process-wide source; thread a seeded *rand.Rand through instead", sel.Sel.Name)
			}
		}
		return true
	})
}
