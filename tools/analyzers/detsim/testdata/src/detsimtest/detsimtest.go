// Package detsimtest exercises the detsim analyzer: wall-clock reads
// and global randomness are flagged, seeded generators and the nolint
// escape are not.
package detsimtest

import (
	"crypto/rand" // want "crypto/rand is non-deterministic"
	mrand "math/rand"
	"time"
)

func flaggedClock(start time.Time) time.Duration {
	_ = time.Now()         // want "reads the wall clock"
	d := time.Since(start) // want "reads the wall clock"
	time.Sleep(1)          // want "reads the wall clock"
	return d
}

func flaggedGlobalRand() float64 {
	mrand.Shuffle(2, func(i, j int) {}) // want "global rand"
	return mrand.Float64()              // want "global rand"
}

func allowedSeeded(seed int64) float64 {
	rng := mrand.New(mrand.NewSource(seed))
	if rng.Intn(2) == 0 {
		return rng.NormFloat64()
	}
	return rng.Float64()
}

// allowedDurations shows that time the *type* and duration arithmetic
// stay legal; only observing the real clock is forbidden.
func allowedDurations(d time.Duration) time.Duration {
	return d * 2
}

func escaped() {
	_ = time.Now() //nolint:detsim — exercising the sanctioned escape hatch
}

func cryptoUse() {
	// The import above is the single flagged site for crypto/rand.
	_, _ = rand.Read(make([]byte, 8))
}
