// Package unscoped holds patterns detsim would flag, loaded under an
// import path outside the deterministic packages: the analyzer must
// stay silent, proving the AppliesTo scoping works.
package unscoped

import "time"

func wallClockIsFineHere() time.Time {
	return time.Now()
}
