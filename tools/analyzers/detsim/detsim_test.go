package detsim_test

import (
	"testing"

	"abftchol/tools/analyzers/analysistest"
	"abftchol/tools/analyzers/detsim"
)

func TestDetsim(t *testing.T) {
	analysistest.Run(t, detsim.Analyzer, "testdata/src/detsimtest",
		analysistest.ImportAs("abftchol/internal/core"))
}

// TestDetsimScope loads wall-clock code under an import path outside
// the deterministic packages; no diagnostics may fire.
func TestDetsimScope(t *testing.T) {
	analysistest.Run(t, detsim.Analyzer, "testdata/src/unscoped")
}
