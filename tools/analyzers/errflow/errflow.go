// Package errflow proves the error-taxonomy discipline the
// reliability plane depends on. The campaign classifier
// (internal/reliability) files every trial into the paper's outcome
// taxonomy purely through core's typed predicates —
// Rejected/Uncorrectable/FailStop walk wrapped sentinel chains with
// errors.Is/errors.As — so a single fmt.Errorf without %w anywhere
// between internal/core and the classifier silently misfiles a trial
// and corrupts BENCH_reliability.json. The compiler cannot see that;
// this analyzer can.
//
// errflow computes per-function error-provenance summaries over the
// package call graph (the SCC-condensed May summaries of
// analysis.Summarize): which sentinel chains — core.ErrResultRejected,
// core's errUncorrectable and errFailStop, context.Canceled /
// DeadlineExceeded, blas.PivotError — can flow into each expression.
// Provenance is May-style and flow-insensitive within a function:
// sentinel uses, calls to package-local functions whose summary
// carries a sentinel, a short curated table of cross-package
// classified sources (core.Run, campaign.Run, ctx.Err,
// experiments.PointResult.Err), and local variables assigned from any
// of these (iterated to a fixpoint).
//
// Four rules, checked in non-test files only (tests build severed and
// malformed chains deliberately — the core partition property test is
// the runtime countersignature of this analyzer):
//
//	(a) fmt.Errorf severing a classified chain: an error-typed
//	    argument with classified provenance reaches a format string
//	    with no %w verb. errors.Is/errors.As stop at the text.
//	(b) error-text matching: comparing a .Error() result with == / !=,
//	    switching on it, or passing it to strings.Contains/HasPrefix/
//	    HasSuffix/Index/EqualFold/Count. Message text is not an API;
//	    the typed predicates are.
//	(b') .Error() called on a value with classified provenance
//	    anywhere: flattening the chain to text discards the class
//	    (this is how the daemon's job store lost the canceled/
//	    uncorrectable distinction). Store or wrap the error value.
//	(c) unclassifiable escapes from internal/core's exported API: an
//	    exported function whose summary can carry a classified
//	    sentinel must not return a fresh errors.New leaf — downstream
//	    classifiers would receive an error no typed predicate
//	    matches.
//	(d) errors.Is against a non-sentinel: the target must be a
//	    package-level error variable. Locals, call results, and
//	    composite literals compare by identity and match nothing.
//
// The escape hatch is the usual //nolint:errflow with a justification;
// core.ErrorFromCode carries the one sanctioned example (its fallback
// branch deliberately reconstructs an unclassifiable error).
package errflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"abftchol/tools/analyzers/analysis"
)

// Doc explains the analyzer; it is also the driver help text.
const Doc = "prove classified error chains (ErrResultRejected, errUncorrectable, errFailStop, context.Canceled, PivotError) survive to the outcome classifiers: no severed %w wraps, no error-text matching, no unclassifiable escapes from core's exported API, no errors.Is against non-sentinels"

// Analyzer implements the pass.
var Analyzer = &analysis.Analyzer{
	Name:  "errflow",
	Doc:   Doc,
	Scope: "internal/core, internal/server, internal/experiments, internal/reliability, cmd/abftd",
	AppliesTo: analysis.PathIn(
		"abftchol/internal/core",
		"abftchol/internal/server",
		"abftchol/internal/experiments",
		"abftchol/internal/reliability",
		"abftchol/cmd/abftd",
	),
	Run: run,
}

// The provenance fact bits: one per sentinel chain the classifiers
// distinguish, plus one for curated cross-package classified sources
// whose concrete class is unknown statically.
const (
	factRejected analysis.Facts = 1 << iota
	factUncorrectable
	factFailStop
	factCtx
	factPivot
	factExternal
)

// classified is the "any sentinel chain may be inside" mask.
const classified = factRejected | factUncorrectable | factFailStop | factCtx | factPivot | factExternal

// factNames renders a fact set for diagnostics.
func factNames(f analysis.Facts) string {
	var names []string
	for _, e := range []struct {
		bit  analysis.Facts
		name string
	}{
		{factRejected, "core.ErrResultRejected"},
		{factUncorrectable, "core's errUncorrectable"},
		{factFailStop, "core's errFailStop"},
		{factCtx, "context.Canceled/DeadlineExceeded"},
		{factPivot, "blas.PivotError"},
		{factExternal, "a classified run error"},
	} {
		if f.Any(e.bit) {
			names = append(names, e.name)
		}
	}
	return strings.Join(names, ", ")
}

// sentinelBits maps an object to the sentinel chain it roots. The
// table is keyed by import path and name, so it matches the real
// packages, the lintmodule fixture, and analysistest fixtures loaded
// under the same paths alike.
func sentinelBits(obj types.Object) analysis.Facts {
	if obj == nil || obj.Pkg() == nil {
		return 0
	}
	switch obj.Pkg().Path() {
	case "abftchol/internal/core":
		switch obj.Name() {
		case "ErrResultRejected":
			return factRejected
		case "errUncorrectable":
			return factUncorrectable
		case "errFailStop":
			return factFailStop
		}
	case "context":
		switch obj.Name() {
		case "Canceled", "DeadlineExceeded":
			return factCtx
		}
	case "abftchol/internal/blas":
		switch obj.Name() {
		case "PivotError", "ErrNotPositiveDefinite":
			return factPivot
		}
	}
	return 0
}

// curatedCallBits reports classified provenance for calls whose
// results carry core's typed chains across package boundaries, where
// package-local summaries cannot see: the factorization driver, the
// campaign engine, and context's own Err accessor.
func curatedCallBits(info *types.Info, call *ast.CallExpr) analysis.Facts {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Err" && len(call.Args) == 0 {
		if tv, has := info.Types[sel.X]; has && isContextType(tv.Type) {
			return factCtx
		}
	}
	callee := analysis.CalleeOf(info, call)
	if callee == nil || callee.Pkg() == nil {
		return 0
	}
	switch callee.Pkg().Path() {
	case "abftchol/internal/core":
		if callee.Name() == "Run" {
			return factExternal
		}
	case "abftchol/internal/reliability/campaign":
		if callee.Name() == "Run" {
			return factExternal
		}
	}
	return 0
}

// curatedSelBits marks reads of experiments.PointResult.Err — the
// scheduler hands every run error to its consumers through that field.
func curatedSelBits(info *types.Info, sel *ast.SelectorExpr) analysis.Facts {
	if sel.Sel.Name != "Err" {
		return 0
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return 0
	}
	t := s.Recv()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return 0
	}
	if named.Obj().Pkg().Path() == "abftchol/internal/experiments" && named.Obj().Name() == "PointResult" {
		return factExternal
	}
	return 0
}

func isContextType(t types.Type) bool {
	return t != nil && t.String() == "context.Context"
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// localFacts is the per-node classifier Summarize propagates through
// the call graph: sentinel uses plus curated cross-package sources.
func localFacts(info *types.Info) func(ast.Node) analysis.Facts {
	return func(n ast.Node) analysis.Facts {
		switch n := n.(type) {
		case *ast.Ident:
			obj := info.Uses[n]
			if obj == nil {
				obj = info.Defs[n]
			}
			return sentinelBits(obj)
		case *ast.CallExpr:
			return curatedCallBits(info, n)
		case *ast.SelectorExpr:
			return curatedSelBits(info, n)
		}
		return 0
	}
}

func run(pass *analysis.Pass) error {
	cg := analysis.BuildCallGraph(pass)
	sums := cg.Summarize(pass.TypesInfo, localFacts(pass.TypesInfo))
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			u := &unit{pass: pass, info: pass.TypesInfo, sums: sums}
			u.collect(fd.Body)
			u.checkBody(fd)
			if pass.ImportPath == "abftchol/internal/core" {
				u.checkCoreEscape(fd)
			}
		}
	}
	return nil
}

// isTestFile reports whether the file is a _test.go file. Tests build
// severed and malformed chains deliberately (the partition property
// test in internal/core is one), so every rule skips them.
func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}

// unit is the per-function provenance state.
type unit struct {
	pass     *analysis.Pass
	info     *types.Info
	sums     map[*types.Func]*analysis.Summary
	varFacts map[*types.Var]analysis.Facts
}

// collect iterates the function's assignments (closures included) to a
// fixpoint, so provenance flows through local error variables:
// err := core.Run(...); e2 := err; wrap(e2).
func (u *unit) collect(body ast.Node) {
	u.varFacts = map[*types.Var]analysis.Facts{}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				u.record(n.Lhs, n.Rhs, &changed)
			case *ast.ValueSpec:
				if len(n.Values) == 0 {
					return true
				}
				lhs := make([]ast.Expr, len(n.Names))
				for i, id := range n.Names {
					lhs[i] = id
				}
				u.record(lhs, n.Values, &changed)
			}
			return true
		})
	}
}

// record merges RHS provenance into LHS variables. A tuple assignment
// (x, err := f()) attributes the call's facts to every LHS.
func (u *unit) record(lhs, rhs []ast.Expr, changed *bool) {
	for i, l := range lhs {
		id, isID := ast.Unparen(l).(*ast.Ident)
		if !isID || id.Name == "_" {
			continue
		}
		obj := u.info.Defs[id]
		if obj == nil {
			obj = u.info.Uses[id]
		}
		v, isVar := obj.(*types.Var)
		if !isVar {
			continue
		}
		var src ast.Expr
		if len(lhs) == len(rhs) {
			src = rhs[i]
		} else {
			src = rhs[0]
		}
		f := u.exprFacts(src) & classified
		if f != 0 && u.varFacts[v]&f != f {
			u.varFacts[v] |= f
			*changed = true
		}
	}
}

// exprFacts is the May provenance of one expression: sentinel uses,
// curated sources, package-local callee summaries, and classified
// locals anywhere in its subtree.
func (u *unit) exprFacts(e ast.Expr) analysis.Facts {
	var f analysis.Facts
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj := u.info.Uses[n]
			if obj == nil {
				obj = u.info.Defs[n]
			}
			f |= sentinelBits(obj)
			if v, isVar := obj.(*types.Var); isVar {
				f |= u.varFacts[v]
			}
		case *ast.CallExpr:
			f |= curatedCallBits(u.info, n)
			if callee := analysis.CalleeOf(u.info, n); callee != nil {
				if s := u.sums[callee]; s != nil {
					f |= s.May & classified
				}
			}
		case *ast.SelectorExpr:
			f |= curatedSelBits(u.info, n)
		}
		return true
	})
	return f
}

// checkBody walks one declaration applying rules (a), (b), (b'), (d).
func (u *unit) checkBody(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			u.checkErrorf(n)
			u.checkErrorsIs(n)
			u.checkStringsMatch(n)
			u.checkFlatten(n)
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				if u.isErrorTextCall(n.X) || u.isErrorTextCall(n.Y) {
					u.pass.Reportf(n.Pos(), "comparing error text with %s; message strings are not an API — match the chain with errors.Is or a typed predicate (core.Rejected/Uncorrectable/FailStop)", n.Op)
				}
			}
		case *ast.SwitchStmt:
			if n.Tag != nil && u.isErrorTextCall(n.Tag) {
				u.pass.Reportf(n.Tag.Pos(), "switching on error text; message strings are not an API — match the chain with errors.Is or a typed predicate")
			}
		}
		return true
	})
}

// checkErrorf is rule (a): fmt.Errorf whose format has no %w yet
// receives an error-typed argument with classified provenance.
func (u *unit) checkErrorf(call *ast.CallExpr) {
	if !isPkgCall(u.info, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		tv, has := u.info.Types[arg]
		if !has || !isErrorType(tv.Type) {
			continue
		}
		if f := u.exprFacts(arg) & classified; f != 0 {
			u.pass.Reportf(call.Pos(), "fmt.Errorf without %%w severs a classified error chain (%s); wrap with %%w so errors.Is and core's typed predicates still reach the sentinel", factNames(f))
			return
		}
	}
}

// checkErrorsIs is rule (d): the second argument of errors.Is must be
// a package-level error variable — anything else compares by identity
// and matches nothing the constructors produce.
func (u *unit) checkErrorsIs(call *ast.CallExpr) {
	if !isPkgCall(u.info, call, "errors", "Is") || len(call.Args) != 2 {
		return
	}
	var obj types.Object
	switch t := ast.Unparen(call.Args[1]).(type) {
	case *ast.Ident:
		obj = u.info.Uses[t]
	case *ast.SelectorExpr:
		obj = u.info.Uses[t.Sel]
	}
	if v, isVar := obj.(*types.Var); isVar && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return
	}
	u.pass.Reportf(call.Args[1].Pos(), "errors.Is against a non-sentinel value; Is compares by identity, so the target must be a package-level error variable (use errors.As for typed matches)")
}

// checkStringsMatch is rule (b): error text fed to the strings
// package's matchers.
func (u *unit) checkStringsMatch(call *ast.CallExpr) {
	if !isPkgCallIn(u.info, call, "strings",
		"Contains", "ContainsAny", "HasPrefix", "HasSuffix", "Index", "EqualFold", "Count") {
		return
	}
	for _, arg := range call.Args {
		if u.isErrorTextCall(arg) {
			u.pass.Reportf(call.Pos(), "matching on error text with strings.%s; message strings are not an API — match the chain with errors.Is or a typed predicate", calleeName(call))
			return
		}
	}
}

// checkFlatten is rule (b'): .Error() on a value with classified
// provenance flattens the chain to text, losing the class — the
// defect that made the job daemon's store unable to tell canceled
// from uncorrectable.
func (u *unit) checkFlatten(call *ast.CallExpr) {
	sel, recv, ok := u.errorTextCall(call)
	if !ok {
		return
	}
	if f := u.exprFacts(recv) & classified; f != 0 {
		u.pass.Reportf(sel.Sel.Pos(), ".Error() flattens a classified error chain (%s) to text; store or wrap the error value so the typed class survives to the outcome classifiers", factNames(f))
	}
}

// errorTextCall matches `x.Error()` where x is an error.
func (u *unit) errorTextCall(call *ast.CallExpr) (*ast.SelectorExpr, ast.Expr, bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return nil, nil, false
	}
	tv, has := u.info.Types[sel.X]
	if !has || !isErrorType(tv.Type) {
		return nil, nil, false
	}
	return sel, sel.X, true
}

func (u *unit) isErrorTextCall(e ast.Expr) bool {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return false
	}
	_, _, ok := u.errorTextCall(call)
	return ok
}

// checkCoreEscape is rule (c): inside internal/core, an exported
// function that can carry a classified sentinel (May summary) must not
// return a fresh errors.New leaf — the classifier downstream would
// receive an error no typed predicate matches, and the trial would be
// misfiled rather than rejected.
func (u *unit) checkCoreEscape(fd *ast.FuncDecl) {
	if !fd.Name.IsExported() {
		return
	}
	fn, isFn := u.info.Defs[fd.Name].(*types.Func)
	if !isFn {
		return
	}
	s := u.sums[fn]
	if s == nil || s.May&classified == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet {
			return true
		}
		for _, res := range ret.Results {
			call, isCall := ast.Unparen(res).(*ast.CallExpr)
			if isCall && isPkgCall(u.info, call, "errors", "New") {
				u.pass.Reportf(res.Pos(), "%s can carry a classified sentinel yet returns a fresh errors.New leaf here; no typed predicate (Rejected/Uncorrectable/FailStop) can match it, so downstream classifiers would misfile the outcome", fd.Name.Name)
			}
		}
		return true
	})
}

// isPkgCall matches a call to pkg.name by the callee's package path.
func isPkgCall(info *types.Info, call *ast.CallExpr, pkg, name string) bool {
	callee := analysis.CalleeOf(info, call)
	return callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == pkg && callee.Name() == name
}

func isPkgCallIn(info *types.Info, call *ast.CallExpr, pkg string, names ...string) bool {
	callee := analysis.CalleeOf(info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != pkg {
		return false
	}
	for _, n := range names {
		if callee.Name() == n {
			return true
		}
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "?"
}
