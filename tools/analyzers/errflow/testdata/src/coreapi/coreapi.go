// Package coreapi models internal/core's exported API surface. It is
// loaded under abftchol/internal/core so errflow's
// unclassifiable-escape rule applies: an exported function whose
// summary can carry a classified sentinel must not return a fresh
// errors.New leaf. The package defines its own sentinel mirror —
// errflow keys sentinels by import path and name, so it behaves
// exactly like the real one.
package coreapi

import (
	"errors"
	"fmt"
)

// ErrResultRejected mirrors core's verification sentinel.
var ErrResultRejected = errors.New("result rejected by checksum verification")

// Verify can carry the sentinel (classified May summary) yet returns
// a bare leaf on the skip path: no typed predicate matches it, so a
// downstream classifier would misfile the outcome.
func Verify(ok, ran bool) error {
	if ran && !ok {
		return fmt.Errorf("verify step: %w", ErrResultRejected)
	}
	if !ran {
		return errors.New("verification skipped") // want "Verify can carry a classified sentinel yet returns a fresh errors\\.New leaf"
	}
	return nil
}

// Plain has no classified provenance; fresh leaves are fine.
func Plain(bad bool) error {
	if bad {
		return errors.New("no classified chain in this function")
	}
	return nil
}

// Reconstruct mirrors core.ErrorFromCode's sanctioned fallback: the
// unknown-code branch deliberately reconstructs an unclassifiable
// error, escaped with a justified //nolint.
func Reconstruct(code, msg string) error {
	if code == "result_rejected" {
		return fmt.Errorf("%w: %s", ErrResultRejected, msg)
	}
	return errors.New(msg) //nolint:errflow // unknown wire code: the caller accepts an unclassifiable reconstruction
}

// helper is unexported; the escape rule covers only the exported API.
func helper(ok bool) error {
	if !ok {
		return fmt.Errorf("helper: %w", ErrResultRejected)
	}
	return errors.New("helper skipped")
}

// UsesHelper keeps helper referenced and wraps correctly.
func UsesHelper(ok bool) error {
	if err := helper(ok); err != nil {
		return fmt.Errorf("outer: %w", err)
	}
	return nil
}
