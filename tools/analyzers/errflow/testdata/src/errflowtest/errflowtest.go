// Package errflowtest exercises errflow against the real core
// sentinel chains: severed %w wraps, error-text matching, classified
// chains flattened to text, and errors.Is against non-sentinels. The
// package is loaded under abftchol/internal/server, inside the
// analyzer's scope.
package errflowtest

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"abftchol/internal/core"
	"abftchol/internal/experiments"
)

// produce roots a classified chain; its May summary carries
// core.ErrResultRejected into every caller below.
func produce() error {
	return fmt.Errorf("step (2,3): %w", core.ErrResultRejected)
}

// severDirect severs a chain rooted right in the argument.
func severDirect() error {
	return fmt.Errorf("rejected: %v", core.ErrResultRejected) // want "fmt\\.Errorf without %w severs a classified error chain \\(core\\.ErrResultRejected\\)"
}

// severViaSummary severs a chain that arrives through a package-local
// callee's May summary and a local variable.
func severViaSummary() error {
	err := produce()
	return fmt.Errorf("campaign trial: %v", err) // want "fmt\\.Errorf without %w severs a classified error chain \\(core\\.ErrResultRejected\\)"
}

// wrapKeepsChain is the fix shape: %w preserves the sentinel.
func wrapKeepsChain(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("canceled while queued: %w", err)
	}
	return nil
}

// compareText matches on rendered text instead of the chain.
func compareText(err error) bool {
	return err.Error() == "context canceled" // want "comparing error text with =="
}

// switchText switches on rendered text.
func switchText(err error) int {
	switch err.Error() { // want "switching on error text"
	case "fail-stop":
		return 1
	}
	return 0
}

// containsText greps rendered text.
func containsText(err error) bool {
	return strings.Contains(err.Error(), "rejected") // want "matching on error text with strings\\.Contains"
}

// job mirrors the daemon's store; errMsg is where classified chains
// used to be flattened.
type job struct {
	errMsg string
}

// flattenStore loses the class exactly the way the daemon's job store
// did before the error-code refactor.
func flattenStore(j *job) {
	if err := produce(); err != nil {
		j.errMsg = err.Error() // want "\\.Error\\(\\) flattens a classified error chain \\(core\\.ErrResultRejected\\)"
	}
}

// flattenCtx flattens a context chain.
func flattenCtx(ctx context.Context) string {
	err := ctx.Err()
	if err == nil {
		return ""
	}
	return err.Error() // want "\\.Error\\(\\) flattens a classified error chain \\(context\\.Canceled/DeadlineExceeded\\)"
}

// flattenPointResult flattens the scheduler's run error (curated
// cross-package provenance: experiments.PointResult.Err).
func flattenPointResult(res experiments.PointResult) string {
	if res.Err != nil {
		return res.Err.Error() // want "\\.Error\\(\\) flattens a classified error chain \\(a classified run error\\)"
	}
	return ""
}

// loopTaint documents the zero-trip semantics: provenance is May and
// flow-insensitive, so a sentinel acquired only inside a possibly
// zero-trip loop still taints the variable after it.
func loopTaint(n int) string {
	var err error
	for i := 0; i < n; i++ {
		err = fmt.Errorf("trial %d: %w", i, core.ErrResultRejected)
	}
	if err != nil {
		return err.Error() // want "\\.Error\\(\\) flattens a classified error chain \\(core\\.ErrResultRejected\\)"
	}
	return ""
}

// plainFlatten has no classified provenance; flattening it is fine.
func plainFlatten() string {
	err := errors.New("config: missing scheme")
	return err.Error()
}

// isNonSentinel compares against a function-local error value; Is
// matches by identity, so this can never be true for a wrapped chain.
func isNonSentinel(err error) bool {
	target := errors.New("ephemeral")
	return errors.Is(err, target) // want "errors\\.Is against a non-sentinel value"
}

// isFresh compares against a freshly constructed error.
func isFresh(err error) bool {
	return errors.Is(err, errors.New("fresh")) // want "errors\\.Is against a non-sentinel value"
}

// isSentinel is the sanctioned shape: a package-level sentinel.
func isSentinel(err error) bool {
	return errors.Is(err, core.ErrResultRejected)
}

// suppressed exercises the //nolint escape: the finding exists but the
// driver filters it, so no want comment appears here.
func suppressed(err error) bool {
	return strings.Contains(err.Error(), "oops") //nolint:errflow // legacy matcher kept for one release; removed with the v2 wire format
}
