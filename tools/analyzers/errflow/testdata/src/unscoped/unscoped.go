// Package unscoped holds error-text matching that would fire inside
// the reliability/serving plane; loaded under its literal testdata
// path, the analyzer's AppliesTo must keep it silent.
package unscoped

import (
	"errors"
	"fmt"
	"strings"
)

var errSentinel = errors.New("sentinel")

func textMatching(err error) bool {
	if err.Error() == "boom" {
		return true
	}
	return strings.Contains(err.Error(), "sentinel")
}

func severed(ok bool) error {
	err := fmt.Errorf("op: %w", errSentinel)
	if ok {
		return fmt.Errorf("outer: %v", err)
	}
	return err
}

func isLocal(err error) bool {
	target := errors.New("ephemeral")
	return errors.Is(err, target)
}
