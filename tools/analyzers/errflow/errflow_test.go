package errflow_test

import (
	"testing"

	"abftchol/tools/analyzers/analysistest"
	"abftchol/tools/analyzers/errflow"
)

// TestErrflow exercises the severing/text-matching/non-sentinel rules
// against the real core sentinel chains, loaded under the server's
// import path so the scope applies.
func TestErrflow(t *testing.T) {
	analysistest.Run(t, errflow.Analyzer, "testdata/src/errflowtest",
		analysistest.ImportAs("abftchol/internal/server"))
}

// TestErrflowCoreAPI loads a package under internal/core's import path
// so the unclassifiable-escape rule (exported API must stay matchable
// by the typed predicates) applies to it.
func TestErrflowCoreAPI(t *testing.T) {
	analysistest.Run(t, errflow.Analyzer, "testdata/src/coreapi",
		analysistest.ImportAs("abftchol/internal/core"))
}

// TestErrflowScope loads the same text-matching violations under an
// import path outside the reliability/serving plane; no diagnostics
// may fire.
func TestErrflowScope(t *testing.T) {
	analysistest.Run(t, errflow.Analyzer, "testdata/src/unscoped")
}
