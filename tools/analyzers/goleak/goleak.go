// Package goleak verifies that every goroutine spawned by the
// parallel sweep engine (internal/experiments), the blocked
// right-looking kernels (internal/blas), the job daemon
// (internal/server), and the reliability campaign engine
// (internal/reliability) is joined before its spawner
// returns. The engine's determinism contract — byte-identical output
// at -parallel 1 and -parallel N — relies on every worker finishing
// before results are assembled; a leaked goroutine is a worker whose
// writes race the assembly pass, exactly the class of silent
// corruption the paper's online ABFT exists to catch at the next
// checksum. Catch it at lint time instead.
//
// For each `go func(){...}()` the analyzer identifies the join
// mechanism and checks it flow-sensitively on the spawner's CFG:
//
//   - sync.WaitGroup: the matching wg.Add must dominate the spawn
//     (Add after `go` races the Wait), wg.Done must run on every exit
//     path of the goroutine body (defer it), and wg.Wait must be
//     crossed on every path from the spawn to the spawner's return —
//     including the zero-trip edge of any loop the Wait hides in.
//   - channel: the goroutine sends on (or closes) a channel and the
//     spawner receives from it on some path, or the channel escapes
//     (parameter, field, captured from an enclosing scope) so an
//     outer join is plausible.
//   - neither: the spawn has no join point and is flagged.
//
// `go method()` spawns (no literal body) are outside the analysis —
// nakedgoroutine already covers bare spawns structurally.
package goleak

import (
	"go/ast"
	"go/types"

	"abftchol/tools/analyzers/analysis"
)

// Doc explains the analyzer; it is also the driver help text.
const Doc = "require every go statement to have a join point reachable on all exits: wg.Add dominating the spawn, wg.Done on every goroutine exit path, wg.Wait (or a channel receive) on every spawner path to return"

// Analyzer implements the pass.
var Analyzer = &analysis.Analyzer{
	Name:  "goleak",
	Doc:   Doc,
	Scope: "internal/experiments, internal/blas, internal/checksum, internal/server, internal/reliability",
	AppliesTo: analysis.PathIn(
		"abftchol/internal/experiments",
		"abftchol/internal/blas",
		"abftchol/internal/checksum",
		"abftchol/internal/server",
		"abftchol/internal/reliability",
	),
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	g := analysis.BuildCFG(fd.Body)
	lt := analysis.CollectLifetime(g)
	if len(lt.Spawns) == 0 {
		return
	}
	info := pass.TypesInfo
	for _, sp := range lt.Spawns {
		if sp.Body == nil {
			continue // method-value spawn; nakedgoroutine's territory
		}
		if wg, ok := waitGroupFor(info, sp); ok {
			checkWaitGroupJoin(pass, fd, g, sp, wg)
			continue
		}
		if ch, local, ok := channelFor(info, fd, sp); ok {
			if local && !spawnerReceives(info, fd, sp, ch) {
				pass.Reportf(sp.Go.Pos(), "goroutine signals on local channel %s but the spawner never receives from it; the goroutine may outlive (or block forever inside) %s", types.ExprString(ch), fd.Name.Name)
			}
			continue
		}
		pass.Reportf(sp.Go.Pos(), "goroutine has no join point: no WaitGroup, no channel the spawner waits on; it can outlive %s and race later work", fd.Name.Name)
	}
}

// ---- WaitGroup discipline -------------------------------------------

// waitGroupFor finds the WaitGroup the goroutine body reports to: a
// Done call inside the body (possibly deferred), keyed by receiver
// expression text.
func waitGroupFor(info *types.Info, sp analysis.SpawnSite) (recv string, ok bool) {
	ast.Inspect(sp.Body.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if r, method, is := analysis.WaitGroupCall(info, call); is && method == "Done" {
			recv, ok = types.ExprString(r), true
			return false
		}
		return true
	})
	return recv, ok
}

func checkWaitGroupJoin(pass *analysis.Pass, fd *ast.FuncDecl, g *analysis.CFG, sp analysis.SpawnSite, wg string) {
	info := pass.TypesInfo

	// (a) Add must dominate the spawn: on every path reaching the `go`,
	// the counter is already up. An Add after (or merely sometimes
	// before) the spawn lets Wait return while the goroutine runs.
	addNodes := nodesCalling(g, info, wg, "Add")
	dom := g.Dominators(analysis.PathOpts{})
	dominated := false
	for _, n := range addNodes {
		if dom[sp.Node.Index][n] && n != sp.Node {
			dominated = true
			break
		}
	}
	// Add in the same statement list position can't happen (Add is its
	// own statement) but Add textually inside the spawn node would be
	// Add inside the goroutine body — also wrong, and not dominating.
	if !dominated {
		pass.Reportf(sp.Go.Pos(), "%s.Add does not dominate this spawn; every path to the go statement must Add first or %s.Wait can return early", wg, wg)
	}

	// (b) Done on every exit path of the goroutine body. A deferred
	// Done covers all exits including panics; otherwise the body's exit
	// must be unreachable when Done nodes are barred.
	body := analysis.BuildCFG(sp.Body.Body)
	deferredDone := false
	for _, ds := range analysis.CollectLifetime(body).Defers {
		if r, method, is := analysis.WaitGroupCall(info, ds.Call); is && method == "Done" && types.ExprString(r) == wg {
			deferredDone = true
		}
	}
	if !deferredDone {
		doneNodes := map[*analysis.Node]bool{}
		for _, n := range nodesCalling(body, info, wg, "Done") {
			doneNodes[n] = true
		}
		reach := body.Reachable(body.Entry, analysis.PathOpts{
			Barrier: func(n *analysis.Node) bool { return doneNodes[n] },
		})
		if reach[body.Exit] {
			pass.Reportf(sp.Go.Pos(), "%s.Done is not called on every exit path of the goroutine body; defer %s.Done() so panics and early returns still count down", wg, wg)
		}
	}

	// (c) Wait joins every path from the spawn to the spawner's return.
	// A deferred Wait always runs; otherwise bar the Wait nodes and ask
	// whether exit is still reachable — zero-trip loop edges count, so
	// a Wait only inside `for range xs { ... }` does not join when xs
	// is empty.
	for _, ds := range analysis.CollectLifetime(g).Defers {
		if r, method, is := analysis.WaitGroupCall(info, ds.Call); is && method == "Wait" && types.ExprString(r) == wg {
			return
		}
	}
	waitNodes := map[*analysis.Node]bool{}
	for _, n := range nodesCalling(g, info, wg, "Wait") {
		waitNodes[n] = true
	}
	reach := g.Reachable(sp.Node, analysis.PathOpts{
		Barrier: func(n *analysis.Node) bool { return waitNodes[n] },
	})
	if reach[g.Exit] {
		pass.Reportf(sp.Go.Pos(), "goroutine is not joined on every path: %s can return without crossing %s.Wait", fd.Name.Name, wg)
	}
}

// nodesCalling lists CFG nodes containing a call of the named
// WaitGroup method on the given receiver (by expression text), not
// descending into function literals.
func nodesCalling(g *analysis.CFG, info *types.Info, recv, method string) []*analysis.Node {
	var out []*analysis.Node
	for _, node := range g.Nodes {
		var root ast.Node
		switch {
		case node.Kind == analysis.NodeStmt:
			root = node.Stmt
		case node.Kind == analysis.NodeCond && node.Cond != nil:
			root = node.Cond
		default:
			continue
		}
		found := false
		ast.Inspect(root, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			if _, isGo := n.(*ast.GoStmt); isGo && node.Stmt != n {
				return false
			}
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			if r, m, is := analysis.WaitGroupCall(info, call); is && m == method && types.ExprString(r) == recv {
				found = true
			}
			return true
		})
		if found {
			out = append(out, node)
		}
	}
	return out
}

// ---- channel joins ---------------------------------------------------

// channelFor finds a channel the goroutine body signals on (send or
// close). local reports whether that channel is declared inside the
// spawning function — only then can this pass demand the join locally;
// params, fields, and captures may be joined by a caller.
func channelFor(info *types.Info, fd *ast.FuncDecl, sp analysis.SpawnSite) (ch ast.Expr, local, ok bool) {
	ast.Inspect(sp.Body.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			ch, ok = n.Chan, true
			return false
		case *ast.CallExpr:
			if id, isID := n.Fun.(*ast.Ident); isID && id.Name == "close" && len(n.Args) == 1 {
				if tv, has := info.Types[n.Args[0]]; has && analysis.IsChanType(tv.Type) {
					ch, ok = n.Args[0], true
					return false
				}
			}
		}
		return true
	})
	if !ok {
		return nil, false, false
	}
	local = declaredWithin(info, fd, ch)
	return ch, local, true
}

// declaredWithin reports whether the channel expression resolves to a
// simple variable declared inside fd's body (as opposed to a
// parameter, struct field, or capture from an enclosing scope).
func declaredWithin(info *types.Info, fd *ast.FuncDecl, ch ast.Expr) bool {
	id, isID := ast.Unparen(ch).(*ast.Ident)
	if !isID {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() > fd.Body.Pos() && obj.Pos() < fd.Body.End()
}

// spawnerReceives reports whether the spawning function (outside the
// goroutine body) receives from the channel: a unary <-, a range over
// it, or a select with a receive case on it.
func spawnerReceives(info *types.Info, fd *ast.FuncDecl, sp analysis.SpawnSite, ch ast.Expr) bool {
	key := types.ExprString(ast.Unparen(ch))
	sameChan := func(e ast.Expr) bool {
		if e == nil {
			return false
		}
		if tv, has := info.Types[e]; !has || !analysis.IsChanType(tv.Type) {
			return false
		}
		return types.ExprString(ast.Unparen(e)) == key
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == sp.Go {
			return false // the goroutine's own receives don't join it
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && sameChan(n.X) {
				found = true
			}
		case *ast.RangeStmt:
			if sameChan(n.X) {
				found = true
			}
		}
		return !found
	})
	return found
}
