package goleak_test

import (
	"testing"

	"abftchol/tools/analyzers/analysistest"
	"abftchol/tools/analyzers/goleak"
)

func TestGoleak(t *testing.T) {
	analysistest.Run(t, goleak.Analyzer, "testdata/src/goleaktest",
		analysistest.ImportAs("abftchol/internal/experiments"))
}

// TestGoleakScope loads a leaked goroutine under an import path
// outside the concurrent packages; no diagnostics may fire.
func TestGoleakScope(t *testing.T) {
	analysistest.Run(t, goleak.Analyzer, "testdata/src/unscoped")
}
