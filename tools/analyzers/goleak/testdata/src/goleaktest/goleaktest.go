// Package goleaktest exercises the goleak analyzer: WaitGroup
// discipline (Add dominating the spawn, Done on all goroutine exits,
// Wait on all spawner exits including zero-trip loop edges), channel
// joins, and the //nolint escape.
package goleaktest

import "sync"

// goodLoop is the sweep scheduler's disciplined fan-out pattern.
func goodLoop(xs []int) int {
	var wg sync.WaitGroup
	out := make([]int, len(xs))
	for i, x := range xs {
		wg.Add(1)
		go func(i, x int) {
			defer wg.Done()
			out[i] = x * x
		}(i, x)
	}
	wg.Wait()
	total := 0
	for _, v := range out {
		total += v
	}
	return total
}

// leakNoJoin spawns workers nothing ever joins.
func leakNoJoin(xs []int) {
	for _, x := range xs {
		go func(x int) { // want "no join point"
			_ = x * x
		}(x)
	}
}

// addAfterSpawn bumps the counter after launching: Wait can observe
// zero and return while the worker still runs.
func addAfterSpawn(done *int) {
	var wg sync.WaitGroup
	go func() { // want "wg.Add does not dominate this spawn"
		defer wg.Done()
		*done++
	}()
	wg.Add(1)
	wg.Wait()
}

// doneConditional skips Done on the early-return path, hanging Wait
// forever on inputs that take it.
func doneConditional(flags []bool) {
	var wg sync.WaitGroup
	for _, f := range flags {
		wg.Add(1)
		go func(f bool) { // want "Done is not called on every exit path"
			if f {
				return
			}
			wg.Done()
		}(f)
	}
	wg.Wait()
}

// waitZeroTrip only waits inside a loop over results: when results is
// empty the loop body never runs (the CFG's zero-trip edge) and the
// spawn is never joined.
func waitZeroTrip(results []int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "can return without crossing wg.Wait"
		defer wg.Done()
	}()
	for range results {
		wg.Wait()
	}
}

// channelJoin synchronizes on a local channel the spawner drains.
func channelJoin(xs []int) int {
	ch := make(chan int)
	go func() {
		total := 0
		for _, x := range xs {
			total += x
		}
		ch <- total
	}()
	return <-ch
}

// channelNoJoin signals on a local channel nobody reads.
func channelNoJoin() {
	done := make(chan struct{})
	go func() { // want "never receives from it"
		close(done)
	}()
}

// escapedChannel sends on a caller-owned channel: the join lives with
// whoever owns the channel, so the local pass stays quiet.
func escapedChannel(ch chan int, v int) {
	go func() {
		ch <- v
	}()
}

type flusher struct{}

func (flusher) flush() {}

// methodSpawn launches a method value: spawns without a literal body
// are nakedgoroutine's territory, not goleak's.
func methodSpawn(f flusher) {
	go f.flush()
}

// escaped exercises the sanctioned suppression.
func escaped(hook func()) {
	go func() { //nolint:goleak — fire-and-forget shutdown hook, joined at process exit
		hook()
	}()
}
