// Package unscoped leaks a goroutine under an import path outside
// goleak's scope; no diagnostics may fire.
package unscoped

func leak(xs []int) {
	for _, x := range xs {
		go func(x int) {
			_ = x * x
		}(x)
	}
}
