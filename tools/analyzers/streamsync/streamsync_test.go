package streamsync_test

import (
	"testing"

	"abftchol/tools/analyzers/analysistest"
	"abftchol/tools/analyzers/streamsync"
)

func TestStreamsync(t *testing.T) {
	analysistest.Run(t, streamsync.Analyzer, "testdata/src/streamsynctest",
		analysistest.ImportAs("abftchol/internal/core/streamsynctest"))
}

// TestStreamsyncScope loads the same violations outside the scoped
// packages; the driver must not run the analyzer there.
func TestStreamsyncScope(t *testing.T) {
	analysistest.Run(t, streamsync.Analyzer, "testdata/src/unscoped")
}
