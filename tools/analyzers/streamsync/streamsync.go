// Package streamsync enforces the stream/event ordering discipline of
// the simulated CUDA runtime (internal/hetsim). Streams execute
// in-order but run concurrently with each other, so work that consumes
// another stream's results is only correct when an event edge —
// consumer.Wait(producer.Record()) — dominates it. A missing edge is a
// data race in the modeled machine that the simulator, which advances
// virtual time optimistically, will not crash on: it silently produces
// overlap numbers the real hardware cannot reproduce, which is exactly
// the class of bug the paper's overlapped-verification claims (§VI)
// are most sensitive to. The analyzer builds the per-function CFG and
// requires every cross-stream transfer to be dominated by a
// synchronization on its stream, and every recorded event to be
// consumed by some Wait.
package streamsync

import (
	"go/ast"
	"go/token"
	"go/types"

	"abftchol/tools/analyzers/analysis"
)

// Doc explains the analyzer; it is also the driver help text.
const Doc = "require event edges (Wait/Record) between dependent streams and flag dropped or malformed events"

const hetsimPath = "abftchol/internal/hetsim"

// Analyzer implements the pass.
var Analyzer = &analysis.Analyzer{
	Name:  "streamsync",
	Doc:   Doc,
	Scope: "internal/core, internal/experiments",
	AppliesTo: analysis.PathIn(
		"abftchol/internal/core",
		"abftchol/internal/experiments",
	),
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// hetsimNamed reports whether t is (a pointer to) the named hetsim
// type.
func hetsimNamed(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == hetsimPath
}

// methodCall matches a call of the named method on (a pointer to) the
// named hetsim receiver type, returning the receiver expression.
func methodCall(info *types.Info, call *ast.CallExpr, recvType, method string) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil, false
	}
	tv, ok := info.Types[sel.X]
	if !ok || !hetsimNamed(tv.Type, recvType) {
		return nil, false
	}
	return sel.X, true
}

func isRecordCall(info *types.Info, e ast.Expr) (*ast.CallExpr, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	_, ok = methodCall(info, call, "Stream", "Record")
	return call, ok
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	du := analysis.CollectDefUse(fd, info)

	// Expression-level rules: dropped records, self-waits, raw event
	// literals, wait provenance. These are flow-insensitive.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := isRecordCall(info, n.X); ok {
				pass.Reportf(call.Pos(), "result of Record() dropped; a recorded event synchronizes nothing until some stream Waits on it")
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := isRecordCall(info, rhs)
				if !ok || i >= len(n.Lhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					pass.Reportf(call.Pos(), "result of Record() dropped; a recorded event synchronizes nothing until some stream Waits on it")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok && hetsimNamed(tv.Type, "Event") {
				pass.Reportf(n.Pos(), "raw hetsim.Event literal; events must come from Stream.Record so they carry the producer's timestamp")
			}
		case *ast.CallExpr:
			if recv, ok := methodCall(info, n, "Stream", "Wait"); ok && len(n.Args) == 1 {
				checkWaitArg(pass, du, recv, n.Args[0])
			}
		}
		return true
	})

	// Recorded-but-never-consumed events. A blank assignment (_ = ev)
	// keeps the compiler quiet but consumes nothing, so it does not
	// count as a use here.
	blankUses := countBlankUses(fd, info)
	for obj, defs := range du.Defs {
		if !hetsimNamed(obj.Type(), "Event") || du.Uses[obj] > blankUses[obj] || du.Params[obj] {
			continue
		}
		for _, def := range defs {
			if call, ok := isRecordCall(info, def); ok {
				pass.Reportf(call.Pos(), "event %s recorded but never waited on; the synchronization edge it was meant to create does not exist", obj.Name())
				break
			}
		}
	}

	checkTransfers(pass, fd)
}

// countBlankUses counts, per object, the reads that only feed a blank
// identifier (_ = ev).
func countBlankUses(fd *ast.FuncDecl, info *types.Info) map[types.Object]int {
	out := map[types.Object]int{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || lid.Name != "_" {
				continue
			}
			if rid, ok := as.Rhs[i].(*ast.Ident); ok {
				if obj := info.Uses[rid]; obj != nil {
					out[obj]++
				}
			}
		}
		return true
	})
	return out
}

// checkWaitArg validates that a Wait argument is a recorded event: a
// Record() call (on a different stream), a variable whose definitions
// are all recorded events, a parameter, or a struct field.
func checkWaitArg(pass *analysis.Pass, du *analysis.DefUse, recv, arg ast.Expr) {
	info := pass.TypesInfo
	switch arg := arg.(type) {
	case *ast.CallExpr:
		if _, ok := isRecordCall(info, arg); !ok {
			pass.Reportf(arg.Pos(), "Wait argument is a call that is not Stream.Record; only recorded events order streams")
			return
		}
		rsel := arg.Fun.(*ast.SelectorExpr)
		if types.ExprString(rsel.X) == types.ExprString(recv) {
			pass.Reportf(arg.Pos(), "stream waits on its own event; Wait(s.Record()) on stream s is a no-op and synchronizes nothing")
		}
	case *ast.Ident:
		obj := info.Uses[arg]
		if obj == nil || du.Params[obj] {
			return
		}
		defs, known := du.Defs[obj]
		if !known {
			return // not a local (package var or captured); trust it
		}
		if len(defs) == 0 {
			pass.Reportf(arg.Pos(), "Wait argument %s is a zero-value event that was never recorded", arg.Name)
			return
		}
		for _, def := range defs {
			switch def := def.(type) {
			case *ast.CallExpr:
				if _, ok := isRecordCall(info, def); !ok {
					pass.Reportf(arg.Pos(), "Wait argument %s holds a value that is not a recorded event", arg.Name)
					return
				}
			case *ast.SelectorExpr, *ast.Ident:
				// Copied from a field or another variable; trust it.
			default:
				pass.Reportf(arg.Pos(), "Wait argument %s holds a value that is not a recorded event", arg.Name)
				return
			}
		}
	case *ast.SelectorExpr:
		// Event stored in a struct field; provenance is out of scope.
	default:
		pass.Reportf(arg.Pos(), "Wait argument is not a recorded event")
	}
}

// checkTransfers requires every Link.Transfer on stream s to be
// dominated by a synchronization on s: an s.Wait, a Launch into s, an
// earlier Transfer on s, or the creation of s. Loop bodies count as
// dominating their exits (at-least-once semantics): the stream fans
// this code iterates over are non-empty by construction.
func checkTransfers(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	g := analysis.BuildCFG(fd.Body)

	type syncSite struct {
		node *analysis.Node
		pos  token.Pos
	}
	type transferSite struct {
		node   *analysis.Node
		call   *ast.CallExpr
		stream string
	}
	syncs := map[string][]syncSite{}
	var transfers []transferSite

	scan := func(node *analysis.Node, root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				// A closure body runs when invoked (kernel bodies run at
				// launch completion), not at this program point.
				return false
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						if obj := info.Defs[id]; obj != nil && hetsimNamed(obj.Type(), "Stream") {
							syncs[id.Name] = append(syncs[id.Name], syncSite{node, id.Pos()})
						}
					}
				}
			case *ast.CallExpr:
				if recv, ok := methodCall(info, n, "Stream", "Wait"); ok {
					syncs[types.ExprString(recv)] = append(syncs[types.ExprString(recv)], syncSite{node, n.Pos()})
				}
				if _, ok := methodCall(info, n, "Device", "Launch"); ok && len(n.Args) >= 1 {
					s := types.ExprString(n.Args[0])
					syncs[s] = append(syncs[s], syncSite{node, n.Pos()})
				}
				if _, ok := methodCall(info, n, "Link", "Transfer"); ok && len(n.Args) >= 1 {
					s := types.ExprString(n.Args[0])
					transfers = append(transfers, transferSite{node, n, s})
					syncs[s] = append(syncs[s], syncSite{node, n.Pos()})
				}
			}
			return true
		})
	}
	for _, node := range g.Nodes {
		switch node.Kind {
		case analysis.NodeStmt:
			scan(node, node.Stmt)
		case analysis.NodeCond:
			if node.Cond != nil {
				scan(node, node.Cond)
			}
		}
	}
	if len(transfers) == 0 {
		return
	}

	dom := g.Dominators(analysis.PathOpts{SkipZeroTrip: true})
	for _, t := range transfers {
		ok := false
		for _, s := range syncs[t.stream] {
			if s.node == t.node {
				if s.pos < t.call.Pos() {
					ok = true
					break
				}
				continue
			}
			if dom[t.node.Index][s.node] {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(t.call.Pos(), "Transfer on stream %s is not dominated by a synchronization on that stream; add a %s.Wait(producer.Record()) edge before it", t.stream, t.stream)
		}
	}
}
