// Package streamsynctest exercises the streamsync analyzer against
// the real hetsim stream API.
package streamsynctest

import "abftchol/internal/hetsim"

// goodTransfer has the canonical event edge before the transfer.
func goodTransfer(p *hetsim.Platform, sc, sx *hetsim.Stream) {
	sx.Wait(sc.Record())
	p.Link.Transfer(sx, hetsim.DeviceToHost, 1e6)
}

// badTransfer consumes sc's results on sx with no ordering edge.
func badTransfer(p *hetsim.Platform, sx *hetsim.Stream) {
	p.Link.Transfer(sx, hetsim.DeviceToHost, 1e6) // want "Transfer on stream sx is not dominated by a synchronization"
}

// conditionalWait only sometimes establishes the edge, so the
// transfer is not dominated.
func conditionalWait(p *hetsim.Platform, sc, sx *hetsim.Stream, gate bool) {
	if gate {
		sx.Wait(sc.Record())
	}
	p.Link.Transfer(sx, hetsim.DeviceToHost, 1e6) // want "Transfer on stream sx is not dominated by a synchronization"
}

// launchCovers relies on in-stream ordering: the launch into s orders
// the transfer behind the kernel.
func launchCovers(p *hetsim.Platform, s *hetsim.Stream) {
	p.GPU.Launch(s, hetsim.Kernel{Class: hetsim.ClassChkRecalc, Flops: 1, Slots: 1})
	p.Link.Transfer(s, hetsim.DeviceToHost, 1e6)
}

// freshStream was just created, so nothing can race with it.
func freshStream(p *hetsim.Platform) {
	s := p.GPUStream()
	p.Link.Transfer(s, hetsim.DeviceToHost, 1e6)
	s.Done()
}

// loopWait exercises at-least-once loop semantics: the fan-in waits
// inside the loop dominate the transfer after it.
func loopWait(p *hetsim.Platform, sx *hetsim.Stream, fan []*hetsim.Stream) {
	for _, s := range fan {
		sx.Wait(s.Record())
	}
	p.Link.Transfer(sx, hetsim.DeviceToHost, 1e6)
}

func droppedRecord(s *hetsim.Stream) {
	s.Record() // want "result of Record\\(\\) dropped"
}

func discardedRecord(s *hetsim.Stream) {
	_ = s.Record() // want "result of Record\\(\\) dropped"
}

func selfWait(s *hetsim.Stream) {
	s.Wait(s.Record()) // want "waits on its own event"
}

func rawEvent(s *hetsim.Stream) {
	s.Wait(hetsim.Event{T: 1}) // want "raw hetsim.Event literal" "Wait argument is not a recorded event"
}

func unusedEvent(s *hetsim.Stream) {
	ev := s.Record() // want "event ev recorded but never waited on"
	_ = ev
}

// consumedEvent passes the event across streams; every piece is used.
func consumedEvent(sc, supd *hetsim.Stream) {
	ev := sc.Record()
	supd.Wait(ev)
}

func zeroEvent(s *hetsim.Stream) {
	var ev hetsim.Event
	s.Wait(ev) // want "zero-value event that was never recorded"
}

// escaped exercises the sanctioned escape hatch; suppression must
// absorb the diagnostic.
func escaped(s *hetsim.Stream) {
	s.Record() //nolint:streamsync — exercising the escape hatch in testdata
}
