// Package unscoped holds streamsync violations under an import path
// the analyzer does not guard; nothing may fire.
package unscoped

import "abftchol/internal/hetsim"

func badTransfer(p *hetsim.Platform, sx *hetsim.Stream) {
	p.Link.Transfer(sx, hetsim.DeviceToHost, 1e6)
}

func droppedRecord(s *hetsim.Stream) {
	s.Record()
}
