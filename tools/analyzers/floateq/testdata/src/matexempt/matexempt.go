// Package matexempt holds a raw float comparison loaded under the
// abftchol/internal/mat import path: the whole package is exempt (the
// sanctioned tolerance helpers live there), so nothing may fire.
package matexempt

func rawCompareIsFineHere(a, b float64) bool {
	return a == b
}
