package floateqtest

// Test files are exempt: the suite asserts bit-reproducibility
// (kernel-vs-oracle equality) deliberately. No diagnostic may fire.
func exactOracleCompare(got, want []float64) bool {
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}
