// Package floateqtest exercises the floateq analyzer: computed float
// equality is flagged; constant sentinels, the NaN probe, tolerance
// comparisons, and the nolint escape are not.
package floateqtest

import "math"

const eps = 1e-12

func flagged(a, b float64) bool {
	return a == b // want "tolerance"
}

func flaggedNeq(xs, ys []float64, i int) bool {
	return xs[i] != ys[i] // want "tolerance"
}

func flaggedFloat32(a, b float32) bool {
	return a == b // want "tolerance"
}

func flaggedNamedConst(x float64) bool {
	// A nonzero named constant is still a constant sentinel on one
	// side, so only the two-computed-operands form below fires.
	half := x / 2
	return x == half // want "tolerance"
}

func allowedSentinels(alpha, beta float64) bool {
	if alpha == 0 || beta != 1 {
		return true
	}
	return alpha != eps
}

func allowedNaNProbe(x float64) bool {
	return x != x
}

func allowedTolerance(a, b float64) bool {
	return math.Abs(a-b) <= eps
}

func allowedInts(i, j int) bool {
	return i == j
}

func escaped(a, b float64) bool {
	return a == b //nolint:abftlint — exercising the suite-wide escape hatch
}
