package floateq_test

import (
	"testing"

	"abftchol/tools/analyzers/analysistest"
	"abftchol/tools/analyzers/floateq"
)

func TestFloateq(t *testing.T) {
	analysistest.Run(t, floateq.Analyzer, "testdata/src/floateqtest")
}

// TestFloateqMatExempt loads the same flagged patterns under the
// internal/mat import path, where tolerance helpers are implemented;
// the analyzer must stay silent there.
func TestFloateqMatExempt(t *testing.T) {
	analysistest.Run(t, floateq.Analyzer, "testdata/src/matexempt",
		analysistest.ImportAs("abftchol/internal/mat"))
}
