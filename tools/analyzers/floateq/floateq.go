// Package floateq flags == and != between floating-point operands —
// the exact bug class that silently breaks checksum verification. The
// Enhanced Online-ABFT scheme decides "error present?" by comparing a
// recalculated checksum against a maintained one; after a real kernel
// both differ by rounding noise, so the comparison must use a
// tolerance (see internal/mat's Equal/MaxAbsDiff and the roundoff
// thresholds in internal/checksum). A raw equality either misses every
// real fault (checksums never match bit-for-bit) or reports phantom
// ones.
//
// The flagged class is computed-vs-computed equality. Three deliberate
// idioms stay legal:
//
//   - comparison against a compile-time constant (alpha == 0,
//     beta != 1): the BLAS scaling contract and the injector's "no
//     delta recorded" checks test a sentinel the caller passed
//     verbatim, which is exact by construction;
//   - self-comparison (x != x), the portable NaN probe;
//   - _test.go files: the test suite asserts the repository's
//     bit-reproducibility contract (kernel-vs-oracle and
//     replay-vs-replay equality) on purpose.
//
// The internal/mat package is exempt wholesale: its norm helpers are
// where the sanctioned tolerance comparisons live.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"abftchol/tools/analyzers/analysis"
)

// Doc explains the analyzer; it is also the driver help text.
const Doc = "forbid raw float equality outside internal/mat; checksum comparisons need tolerances"

// Analyzer implements the pass.
var Analyzer = &analysis.Analyzer{
	Name:      "floateq",
	Doc:       Doc,
	Scope:     "everywhere except internal/mat",
	AppliesTo: analysis.PathNotIn("abftchol/internal/mat"),
	Run:       run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if name := pass.Fset.Position(f.Pos()).Filename; strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			x := pass.TypesInfo.Types[bin.X]
			y := pass.TypesInfo.Types[bin.Y]
			if !isFloat(x.Type) && !isFloat(y.Type) {
				return true
			}
			if x.Value != nil || y.Value != nil {
				return true // sentinel test against a constant
			}
			if types.ExprString(bin.X) == types.ExprString(bin.Y) {
				return true // x != x: the NaN probe
			}
			pass.Reportf(bin.OpPos, "raw float %s breaks checksum verification under roundoff; compare with a tolerance (math.Abs(a-b) <= tol or mat.Equal)", bin.Op)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
