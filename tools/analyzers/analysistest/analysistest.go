// Package analysistest runs one analyzer over a testdata package and
// checks its diagnostics against `// want "regexp"` comments, the
// prysm-style expectation format of golang.org/x/tools'
// go/analysis/analysistest. A line may carry several expectations
// (`// want "a" "b"`); every diagnostic must match exactly one pending
// expectation on its line and every expectation must be consumed.
// Driver-level nolint filtering is applied, so testdata can (and
// should) also exercise the //nolint escape hatch: a flagged pattern
// carrying //nolint and no want comment passes only if suppression
// works.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"abftchol/tools/analyzers/analysis"
)

// An Option adjusts how Run loads the testdata package.
type Option func(*config)

type config struct {
	importPath string
}

// ImportAs loads the testdata package under the given import path, so
// analyzers scoped with AppliesTo see the path their invariant guards.
func ImportAs(path string) Option {
	return func(c *config) { c.importPath = path }
}

// Run loads the package rooted at dir (relative to the test's working
// directory, e.g. "testdata/src/detsimtest"), applies the analyzer,
// and reports mismatches against the package's want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string, opts ...Option) {
	t.Helper()
	cfg := config{importPath: "abftchol/" + filepath.ToSlash(dir)}
	for _, o := range opts {
		o(&cfg)
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkgs, err := loader.LoadDir(abs, cfg.importPath)
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", dir, err)
	}
	for _, pkg := range pkgs {
		for _, e := range pkg.Errors {
			t.Errorf("analysistest: testdata does not type-check: %v", e)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	findings, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	wants := collectWants(t, pkgs)
	for _, f := range findings {
		key := lineKey{f.Pos.Filename, f.Pos.Line}
		if !consume(wants[key], f.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re.String())
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

func consume(ws []*want, message string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

var quoted = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

func collectWants(t *testing.T, pkgs []*analysis.Package) map[lineKey][]*want {
	t.Helper()
	out := map[lineKey][]*want{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Slash)
					key := lineKey{pos.Filename, pos.Line}
					for _, q := range quoted.FindAllString(rest, -1) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
						}
						out[key] = append(out[key], &want{re: re})
					}
					if len(out[key]) == 0 {
						t.Fatalf("%s: want comment carries no quoted pattern", pos)
					}
				}
			}
		}
	}
	return out
}
