package analyzers

import (
	"fmt"
	"strings"
)

// Markers delimiting the generated analyzer table in docs/LINTING.md.
// Everything between them is owned by `go generate ./tools/analyzers`
// (tools/analyzers/gendoc); hand edits there are overwritten.
const (
	TableBegin = "<!-- BEGIN GENERATED ANALYZER TABLE (go generate ./tools/analyzers) -->"
	TableEnd   = "<!-- END GENERATED ANALYZER TABLE -->"
)

// AnalyzerTable renders the suite registry as the markdown table
// embedded in docs/LINTING.md. Generating the table from Suite (and
// asserting the embedding in suite_test.go) keeps the documentation
// and the registry from drifting: an analyzer added to one but not the
// other fails the build.
func AnalyzerTable() string {
	var b strings.Builder
	b.WriteString("| analyzer | scope | checks |\n")
	b.WriteString("|----------|-------|--------|\n")
	for _, a := range Suite {
		scope := a.Scope
		if scope == "" {
			scope = "all packages"
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s |\n", a.Name, scope, a.Doc)
	}
	return b.String()
}
