package injectortick_test

import (
	"testing"

	"abftchol/tools/analyzers/analysistest"
	"abftchol/tools/analyzers/injectortick"
)

func TestInjectortick(t *testing.T) {
	analysistest.Run(t, injectortick.Analyzer, "testdata/src/injectorticktest",
		analysistest.ImportAs("abftchol/internal/core/injectorticktest"))
}
