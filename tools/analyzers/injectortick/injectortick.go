// Package injectortick keeps the fault-injection surface complete in
// the executor (internal/core). The campaign machinery can only strike
// what the executor exposes: every simulated compute kernel must be
// followed by an inj.KernelTick for each block it touches, and every
// iteration loop that launches compute work must open with an
// inj.StorageTick. A kernel launched without its tick is invisible to
// fault campaigns — coverage silently shrinks and the measured
// detection/recovery rates become too optimistic, with nothing failing
// to reveal it.
//
// Checksum-maintenance kernels (ClassChkRecalc, ClassChkUpdate,
// ClassChkCompare) and host bookkeeping are exempt: the paper's fault
// model (§IV) targets the factorization's compute kernels and the
// stored matrix, and the schemes' own checksum arithmetic is assumed
// protected by the verification discipline itself.
package injectortick

import (
	"go/ast"
	"go/token"
	"go/types"

	"abftchol/tools/analyzers/analysis"
)

// Doc explains the analyzer; it is also the driver help text.
const Doc = "require an inj.KernelTick for every compute-kernel launch and an inj.StorageTick in every compute iteration loop"

const (
	hetsimPath = "abftchol/internal/hetsim"
	faultPath  = "abftchol/internal/fault"
)

// computeClasses are the kernel classes the fault model targets.
var computeClasses = map[string]bool{
	"ClassGEMM": true, "ClassSYRK": true, "ClassTRSM": true, "ClassPOTF2": true,
}

// Analyzer implements the pass.
var Analyzer = &analysis.Analyzer{
	Name:      "injectortick",
	Doc:       Doc,
	Scope:     "internal/core",
	AppliesTo: analysis.PathIn("abftchol/internal/core"),
	Run:       run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	cg := analysis.BuildCallGraph(pass)

	// Transitive closures over package-local calls: functions that
	// eventually tick the injector, and functions that eventually
	// launch a compute kernel.
	kernelTickers := cg.Closure(func(fd *ast.FuncDecl) bool {
		return containsInjectorCall(info, fd, "KernelTick")
	})
	storageTickers := cg.Closure(func(fd *ast.FuncDecl) bool {
		return containsInjectorCall(info, fd, "StorageTick")
	})
	launchers := cg.Closure(func(fd *ast.FuncDecl) bool {
		found := false
		ast.Inspect(fd, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if _, compute, ok := computeLaunch(info, call); ok && compute {
					found = true
				}
			}
			return !found
		})
		return found
	})

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkKernelTicks(pass, fd, cg, kernelTickers)
			checkStorageTicks(pass, fd, cg, storageTickers, launchers)
		}
	}
	return nil
}

// checkKernelTicks requires every compute launch to reach a KernelTick
// (direct or through a package-local helper) within its function.
func checkKernelTicks(pass *analysis.Pass, fd *ast.FuncDecl, cg *analysis.CallGraph, tickers map[*types.Func]bool) {
	info := pass.TypesInfo
	g := analysis.BuildCFG(fd.Body)

	type launch struct {
		node  *analysis.Node
		call  *ast.CallExpr
		class string
	}
	var launches []launch
	tickNodes := map[*analysis.Node]bool{}
	for _, n := range g.Nodes {
		if n.Kind != analysis.NodeStmt {
			continue
		}
		node := n
		ast.Inspect(n.Stmt, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false // kernel bodies run inside the simulator, not here
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if class, compute, ok := computeLaunch(info, call); ok && compute {
				launches = append(launches, launch{node, call, class})
			}
			if isInjectorCall(info, call, "KernelTick") {
				tickNodes[node] = true
			} else if callee := analysis.CalleeOf(info, call); callee != nil && tickers[callee] {
				tickNodes[node] = true
			}
			return true
		})
	}

	for _, l := range launches {
		if tickNodes[l.node] {
			continue
		}
		reach := g.Reachable(l.node, analysis.PathOpts{})
		covered := false
		for n := range tickNodes {
			if reach[n] {
				covered = true
				break
			}
		}
		if !covered {
			pass.Reportf(l.call.Pos(), "compute kernel launch (%s) has no reachable inj.KernelTick; the fault campaign cannot target this kernel", l.class)
		}
	}
}

// checkStorageTicks requires every outermost loop whose body launches
// compute work (directly or through package-local helpers) to call
// StorageTick likewise.
func checkStorageTicks(pass *analysis.Pass, fd *ast.FuncDecl, cg *analysis.CallGraph, storageTickers, launchers map[*types.Func]bool) {
	info := pass.TypesInfo
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			checkLoop(pass, info, n.Body, n.For, storageTickers, launchers)
			return false // only outermost loops define an iteration
		case *ast.RangeStmt:
			checkLoop(pass, info, n.Body, n.For, storageTickers, launchers)
			return false
		}
		return true
	}
	for _, s := range fd.Body.List {
		ast.Inspect(s, visit)
	}
}

func checkLoop(pass *analysis.Pass, info *types.Info, body *ast.BlockStmt, pos token.Pos, storageTickers, launchers map[*types.Func]bool) {
	launches, ticks := false, false
	ast.Inspect(body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, compute, ok := computeLaunch(info, call); ok && compute {
			launches = true
		}
		if isInjectorCall(info, call, "StorageTick") {
			ticks = true
		}
		if callee := analysis.CalleeOf(info, call); callee != nil {
			if launchers[callee] {
				launches = true
			}
			if storageTickers[callee] {
				ticks = true
			}
		}
		return true
	})
	if launches && !ticks {
		pass.Reportf(pos, "iteration loop launches compute kernels but never calls inj.StorageTick; per-iteration storage faults are never injected")
	}
}

// namedFrom reports whether t is (a pointer to) the named type from
// the given package path.
func namedFrom(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// containsInjectorCall reports whether fd (closures included — they
// are folded into their declaration by the call graph) directly calls
// the named Injector method.
func containsInjectorCall(info *types.Info, fd *ast.FuncDecl, method string) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isInjectorCall(info, call, method) {
			found = true
		}
		return !found
	})
	return found
}

// isInjectorCall matches inj.<method>(...) on fault.Injector.
func isInjectorCall(info *types.Info, call *ast.CallExpr, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	tv, ok := info.Types[sel.X]
	return ok && namedFrom(tv.Type, faultPath, "Injector")
}

// computeLaunch matches Device.Launch calls and classifies the kernel.
// It returns the class name, whether the fault model covers it, and
// whether the call is a launch at all. A kernel whose class cannot be
// resolved statically (a non-literal Kernel value, or a Class that is
// not a named constant) is conservatively treated as compute; code
// that genuinely launches a pre-built checksum kernel should carry a
// //nolint:injectortick justification.
func computeLaunch(info *types.Info, call *ast.CallExpr) (string, bool, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Launch" || len(call.Args) != 2 {
		return "", false, false
	}
	tv, ok := info.Types[sel.X]
	if !ok || !namedFrom(tv.Type, hetsimPath, "Device") {
		return "", false, false
	}
	lit, ok := call.Args[1].(*ast.CompositeLit)
	if !ok {
		return "unresolved kernel value", true, true
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Class" {
			continue
		}
		var id *ast.Ident
		switch v := kv.Value.(type) {
		case *ast.Ident:
			id = v
		case *ast.SelectorExpr:
			id = v.Sel
		default:
			return "unresolved class expression", true, true
		}
		if c, ok := info.Uses[id].(*types.Const); ok && namedFrom(c.Type(), hetsimPath, "Class") {
			return c.Name(), computeClasses[c.Name()], true
		}
		return "unresolved class expression", true, true
	}
	// No Class key: the zero value is ClassGEMM, squarely compute.
	return "ClassGEMM (zero value)", true, true
}
