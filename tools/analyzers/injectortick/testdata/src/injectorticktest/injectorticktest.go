// Package injectorticktest exercises the injectortick analyzer
// against the real hetsim and fault APIs.
package injectorticktest

import (
	"abftchol/internal/fault"
	"abftchol/internal/hetsim"
)

type env struct {
	p   *hetsim.Platform
	s   *hetsim.Stream
	inj *fault.Injector
}

// goodSyrk pairs the launch with its tick.
func (e *env) goodSyrk(j int) {
	e.p.GPU.Launch(e.s, hetsim.Kernel{Class: hetsim.ClassSYRK, Flops: 1})
	e.inj.KernelTick(fault.OpSYRK, j, j, j)
}

// badGemm launches compute work the campaign can never strike.
func (e *env) badGemm(j int) {
	e.p.GPU.Launch(e.s, hetsim.Kernel{Class: hetsim.ClassGEMM, Flops: 1}) // want "compute kernel launch \\(ClassGEMM\\) has no reachable inj.KernelTick"
}

// zeroClass omits Class; the zero value is ClassGEMM, still compute.
func (e *env) zeroClass() {
	e.p.GPU.Launch(e.s, hetsim.Kernel{Flops: 1}) // want "compute kernel launch \\(ClassGEMM \\(zero value\\)\\) has no reachable inj.KernelTick"
}

// chkUpdate is checksum maintenance, exempt from the fault model.
func (e *env) chkUpdate(j int) {
	e.p.GPU.Launch(e.s, hetsim.Kernel{Class: hetsim.ClassChkUpdate, Flops: 1, Slots: 1})
}

// tickHelper ticks on behalf of its callers.
func (e *env) tickHelper(j int) { e.inj.KernelTick(fault.OpTRSM, j, j, j) }

// transitive reaches its tick through a package-local helper.
func (e *env) transitive(j int) {
	e.p.GPU.Launch(e.s, hetsim.Kernel{Class: hetsim.ClassTRSM, Flops: 1})
	e.tickHelper(j)
}

// conditionalTick still satisfies may-reach: some path ticks.
func (e *env) conditionalTick(j int, on bool) {
	e.p.GPU.Launch(e.s, hetsim.Kernel{Class: hetsim.ClassPOTF2, Flops: 1})
	if on {
		e.inj.KernelTick(fault.OpPOTF2, j, j, j)
	}
}

// goodLoop opens each iteration with a storage tick.
func (e *env) goodLoop() {
	for j := 0; j < 4; j++ {
		e.inj.StorageTick(j)
		e.goodSyrk(j)
	}
}

// badLoop launches compute work (through a helper) but never exposes
// the iteration to storage faults.
func (e *env) badLoop() {
	for j := 0; j < 4; j++ { // want "iteration loop launches compute kernels but never calls inj.StorageTick"
		e.goodSyrk(j)
	}
}

// chkLoop only does checksum maintenance; no storage tick needed.
func (e *env) chkLoop() {
	for j := 0; j < 4; j++ {
		e.chkUpdate(j)
	}
}

// escaped exercises the sanctioned escape hatch.
func (e *env) escaped() {
	e.p.GPU.Launch(e.s, hetsim.Kernel{Class: hetsim.ClassSYRK, Flops: 1}) //nolint:injectortick — escape-hatch exercise in testdata
}
