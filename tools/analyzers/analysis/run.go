package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one post-filter diagnostic, positioned and attributed.
type Finding struct {
	Analyzer *Analyzer
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer.Name, f.Message)
}

// Run executes every applicable analyzer over every package and
// returns the surviving findings, sorted by position. Diagnostics on a
// line carrying a //nolint:abftlint or //nolint:<analyzer> comment are
// suppressed — the sanctioned escape hatch for intentional violations,
// which should always carry a justification after the directive.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		suppressed := nolintLines(pkg)
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.ImportPath) {
				continue
			}
			pass := &Pass{
				Analyzer:   a,
				ImportPath: pkg.ImportPath,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.TypesInfo,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
			}
			for _, d := range pass.diagnostics {
				pos := pkg.Fset.Position(d.Pos)
				if suppressed[lineKey{pos.Filename, pos.Line}].allows(a.Name) {
					continue
				}
				findings = append(findings, Finding{Analyzer: a, Pos: pos, Message: d.Message})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer.Name < b.Analyzer.Name
	})
	return findings, nil
}

type lineKey struct {
	file string
	line int
}

// suppression records which analyzer names a nolint comment silences;
// the suite-wide name "abftlint" (or a bare //nolint) silences all.
type suppression struct {
	all   bool
	names map[string]bool
}

func (s suppression) allows(name string) bool {
	return s.all || s.names[name]
}

// nolintLines scans a package's comments for nolint directives and
// maps each annotated source line to the analyzers it suppresses.
func nolintLines(pkg *Package) map[lineKey]suppression {
	out := map[lineKey]suppression{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "nolint")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				key := lineKey{pos.Filename, pos.Line}
				s := suppression{names: map[string]bool{}}
				rest = strings.TrimSpace(rest)
				if names, ok := strings.CutPrefix(rest, ":"); ok {
					// Everything after the first whitespace is the
					// human justification, not more analyzer names.
					if i := strings.IndexAny(names, " \t"); i >= 0 {
						names = names[:i]
					}
					for _, n := range strings.Split(names, ",") {
						n = strings.TrimSpace(n)
						if n == "abftlint" {
							s.all = true
						} else if n != "" {
							s.names[n] = true
						}
					}
				} else {
					// A bare //nolint silences everything on the line.
					s.all = true
				}
				out[key] = s
			}
		}
	}
	return out
}
