package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
	"time"
)

// Finding is one post-attribution diagnostic, positioned and filtered.
type Finding struct {
	Analyzer *Analyzer
	Pos      token.Position
	Message  string
	// Suppressed marks a diagnostic silenced by a //nolint directive on
	// its line. Run drops suppressed findings; RunAll keeps them so
	// audit tooling (abftlint -json) can report the escape hatch in use.
	Suppressed bool
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer.Name, f.Message)
}

// Run executes every applicable analyzer over every package and
// returns the surviving findings, sorted by position. Diagnostics on a
// line carrying a //nolint:abftlint or //nolint:<analyzer> comment are
// suppressed — the sanctioned escape hatch for intentional violations,
// which should always carry a justification after the directive.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	all, err := RunAll(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	findings := all[:0]
	for _, f := range all {
		if !f.Suppressed {
			findings = append(findings, f)
		}
	}
	return findings, nil
}

// RunAll is Run without the suppression filter: every diagnostic is
// returned, with Suppressed set on the ones a //nolint directive
// silences.
func RunAll(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	findings, _, err := RunAllTimed(pkgs, analyzers)
	return findings, err
}

// RunAllTimed is RunAll plus accounting: the second result maps each
// analyzer's name to the wall time its Run spent, summed over every
// package it applied to. The driver's -json header publishes the map
// and tools/lintbudget gates the total against a committed baseline,
// so an analyzer whose cost quietly explodes fails CI instead of
// taxing every future `make lint`.
func RunAllTimed(pkgs []*Package, analyzers []*Analyzer) ([]Finding, map[string]time.Duration, error) {
	var findings []Finding
	elapsed := make(map[string]time.Duration, len(analyzers))
	for _, a := range analyzers {
		elapsed[a.Name] = 0
	}
	for _, pkg := range pkgs {
		suppressed := nolintLines(pkg)
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.ImportPath) {
				continue
			}
			pass := &Pass{
				Analyzer:   a,
				ImportPath: pkg.ImportPath,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.TypesInfo,
			}
			start := time.Now()
			err := a.Run(pass)
			elapsed[a.Name] += time.Since(start)
			if err != nil {
				return nil, nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
			}
			for _, d := range pass.diagnostics {
				pos := pkg.Fset.Position(d.Pos)
				findings = append(findings, Finding{
					Analyzer:   a,
					Pos:        pos,
					Message:    d.Message,
					Suppressed: suppressed[lineKey{pos.Filename, pos.Line}].allows(a.Name),
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer.Name < b.Analyzer.Name
	})
	return findings, elapsed, nil
}

type lineKey struct {
	file string
	line int
}

// suppression records which analyzer names a nolint comment silences;
// the suite-wide name "abftlint" (or a bare //nolint) silences all.
type suppression struct {
	all   bool
	names map[string]bool
}

func (s suppression) allows(name string) bool {
	return s.all || s.names[name]
}

// nolintLines maps each annotated source line of a package to the
// analyzers its directive suppresses.
func nolintLines(pkg *Package) map[lineKey]suppression {
	out := map[lineKey]suppression{}
	for _, d := range NolintDirectives([]*Package{pkg}) {
		s := suppression{all: d.All, names: map[string]bool{}}
		for _, n := range d.Names {
			s.names[n] = true
		}
		out[lineKey{d.Pos.Filename, d.Pos.Line}] = s
	}
	return out
}

// NolintDirective is one //nolint escape comment, parsed.
type NolintDirective struct {
	Pos token.Position
	// All is set for a bare //nolint or //nolint:abftlint (the whole
	// suite); Names lists individually silenced analyzers otherwise.
	All   bool
	Names []string
	// Justification is the free text following the directive — the
	// human argument for why the invariant does not apply here. The
	// audit mode (abftlint -nolint-report) fails on directives that
	// leave it empty.
	Justification string
}

// NolintDirectives scans every comment of the given packages and
// returns the parsed //nolint directives, sorted by position.
func NolintDirectives(pkgs []*Package) []NolintDirective {
	var out []NolintDirective
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					rest, ok := strings.CutPrefix(text, "nolint")
					if !ok {
						continue
					}
					// The word must end here: "nolint", "nolint:…", or
					// "nolint — reason". An identifier that merely starts
					// with the letters (nolintLines) is not a directive.
					if rest != "" && rest[0] != ':' && rest[0] != ' ' && rest[0] != '\t' {
						continue
					}
					d := NolintDirective{Pos: pkg.Fset.Position(c.Slash)}
					rest = strings.TrimSpace(rest)
					if names, ok := strings.CutPrefix(rest, ":"); ok {
						// Everything after the first whitespace is the
						// human justification, not more analyzer names.
						just := ""
						if i := strings.IndexAny(names, " \t"); i >= 0 {
							just = names[i:]
							names = names[:i]
						}
						for _, n := range strings.Split(names, ",") {
							n = strings.TrimSpace(n)
							if n == "abftlint" {
								d.All = true
							} else if n != "" {
								d.Names = append(d.Names, n)
							}
						}
						d.Justification = trimJustification(just)
					} else {
						// A bare //nolint silences everything on the line.
						d.All = true
						d.Justification = trimJustification(rest)
					}
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}

// trimJustification strips the separating punctuation conventionally
// written between the directive and its rationale.
func trimJustification(s string) string {
	return strings.TrimLeft(strings.TrimSpace(s), "—–-: \t")
}
