package analysis

import (
	"go/ast"
	"go/types"
	"testing"
)

const lifeSrc = `package p

import "sync"

func spawner(wg *sync.WaitGroup, ch chan int) {
	defer wg.Wait()
	go func() {
		ch <- 1
	}()
	go spawnee()
}

func spawnee() {}
`

func TestCollectLifetime(t *testing.T) {
	pass := typecheckSyncPass(t, lifeSrc)
	fd := funcBody(t, pass, "spawner")
	g := BuildCFG(fd.Body)
	lt := CollectLifetime(g)
	if len(lt.Spawns) != 2 {
		t.Fatalf("want 2 spawns, got %d", len(lt.Spawns))
	}
	if lt.Spawns[0].Body == nil {
		t.Errorf("first spawn launches a literal; Body should be set")
	}
	if lt.Spawns[1].Body != nil {
		t.Errorf("second spawn launches a named function; Body should be nil")
	}
	if len(lt.Defers) != 1 {
		t.Fatalf("want 1 defer, got %d", len(lt.Defers))
	}
	recv, method, ok := WaitGroupCall(pass.TypesInfo, lt.Defers[0].Call)
	if !ok || method != "Wait" {
		t.Fatalf("deferred call should match WaitGroup.Wait, got ok=%v method=%q", ok, method)
	}
	if id, isID := recv.(*ast.Ident); !isID || id.Name != "wg" {
		t.Errorf("WaitGroupCall receiver should be wg, got %v", recv)
	}
}

func TestWaitGroupCallRejectsOthers(t *testing.T) {
	pass := typecheckSyncPass(t, lifeSrc)
	fd := funcBody(t, pass, "spawner")
	// The second go statement calls spawnee(): same shape, wrong type.
	var call *ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if _, isLit := g.Call.Fun.(*ast.FuncLit); !isLit {
				call = g.Call
			}
		}
		return true
	})
	if call == nil {
		t.Fatal("named-function spawn not found")
	}
	if _, _, ok := WaitGroupCall(pass.TypesInfo, call); ok {
		t.Errorf("a plain function call must not match WaitGroupCall")
	}
}

func TestIsChanType(t *testing.T) {
	pass := typecheckSyncPass(t, lifeSrc)
	fn := pass.Pkg.Scope().Lookup("spawner")
	sig := fn.Type().(*types.Signature)
	wg := sig.Params().At(0).Type()
	ch := sig.Params().At(1).Type()
	if IsChanType(wg) {
		t.Errorf("*sync.WaitGroup is not a channel")
	}
	if !IsChanType(ch) {
		t.Errorf("chan int should satisfy IsChanType")
	}
}
