package analysis

// Guarded-by inference: the dataflow plumbing behind the concurrency
// analyzers. A struct that embeds a sync.Mutex or sync.RWMutex field
// usually dedicates it to a subset of its sibling fields; this file
// recovers that association so lockcheck can require the mutex to be
// held around every access. Two sources feed the association:
//
//   - an explicit `// guards: a, b` comment on the mutex field — the
//     repository convention documented in docs/LINTING.md, and the
//     form reviewers should prefer because it states intent;
//   - inference from existing locked accesses: a sibling field that
//     some method of the type reads or writes while the mutex is
//     definitely held is taken to be guarded by it.
//
// Inference only ever adds protection requirements that the code
// already honours somewhere, so a field accessed exclusively without
// the lock (an immutable configuration knob set before goroutines
// start) is never dragged into the guarded set by accident.
//
// The same file carries the lock-state dataflow the inference and the
// lockcheck analyzer share: a forward must/may analysis over the
// per-function CFG tracking which mutexes are held at each node.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HeldKind says how a mutex is held at a program point.
type HeldKind int

const (
	// HeldRead is a shared (RLock) hold.
	HeldRead HeldKind = iota + 1
	// HeldExcl is an exclusive (Lock) hold.
	HeldExcl
)

// LockState maps mutex keys — types.ExprString of the receiver
// expression, e.g. "r.mu" — to how they are held.
type LockState map[string]HeldKind

// LockOp is one mutex operation site inside a function body.
type LockOp struct {
	// Node is the CFG node whose statement performs the operation.
	Node *Node
	// Call is the Lock/Unlock/RLock/RUnlock call expression.
	Call *ast.CallExpr
	// Key identifies the mutex: types.ExprString of the receiver.
	Key string
	// Method is the sync method name (Lock, Unlock, RLock, RUnlock).
	Method string
	// Deferred marks an operation wrapped in a defer statement; it
	// runs at function exit, so it does not change the held state at
	// any body node.
	Deferred bool
}

// Acquires reports whether the operation takes the mutex, and how.
func (op LockOp) Acquires() (HeldKind, bool) {
	switch op.Method {
	case "Lock":
		return HeldExcl, true
	case "RLock":
		return HeldRead, true
	}
	return 0, false
}

// Releases reports whether the operation drops the mutex.
func (op LockOp) Releases() bool {
	return op.Method == "Unlock" || op.Method == "RUnlock"
}

// syncMutexType reports whether t is (a pointer to) sync.Mutex or
// sync.RWMutex, and whether the reader/writer variant.
func syncMutexType(t types.Type) (rw, ok bool) {
	if t == nil {
		return false, false
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// MutexOp matches a call of a locking method on a sync.Mutex or
// sync.RWMutex value, returning the receiver expression and method
// name. TryLock/TryRLock are deliberately not matched: their
// acquisition is conditional, so treating them as a hold would be
// unsound and treating them as a release would be wrong.
func MutexOp(info *types.Info, call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, "", false
	}
	tv, has := info.Types[sel.X]
	if !has {
		return nil, "", false
	}
	if _, isMutex := syncMutexType(tv.Type); !isMutex {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// CollectLockOps finds every mutex operation in the CFG's statements.
// Function literals are skipped: their bodies run when invoked, not at
// the node's program point. Operations within one node are returned in
// source order.
func CollectLockOps(g *CFG, info *types.Info) []LockOp {
	var ops []LockOp
	scan := func(node *Node, root ast.Node, deferred bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if recv, method, ok := MutexOp(info, n); ok {
					ops = append(ops, LockOp{
						Node: node, Call: n,
						Key: types.ExprString(recv), Method: method,
						Deferred: deferred,
					})
				}
			}
			return true
		})
	}
	for _, node := range g.Nodes {
		switch node.Kind {
		case NodeStmt:
			if d, ok := node.Stmt.(*ast.DeferStmt); ok {
				scan(node, d.Call, true)
				continue
			}
			scan(node, node.Stmt, false)
		case NodeCond:
			if node.Cond != nil {
				scan(node, node.Cond, false)
			}
		}
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Call.Pos() < ops[j].Call.Pos() })
	return ops
}

// ApplyLockOp folds one non-deferred operation into a state, returning
// the updated copy. Deferred operations are identity: they run at
// exit.
func ApplyLockOp(s LockState, op LockOp) LockState {
	if op.Deferred {
		return s
	}
	kind, acquires := op.Acquires()
	if !acquires && !op.Releases() {
		return s
	}
	out := make(LockState, len(s)+1)
	for k, v := range s {
		out[k] = v
	}
	if acquires {
		out[op.Key] = kind
	} else {
		delete(out, op.Key)
	}
	return out
}

// lockTransfer folds every operation of one node, in source order.
func lockTransfer(s LockState, ops []LockOp) LockState {
	for _, op := range ops {
		s = ApplyLockOp(s, op)
	}
	return s
}

// OpsByNode groups operations by their CFG node, preserving source
// order within each node.
func OpsByNode(ops []LockOp) map[*Node][]LockOp {
	out := map[*Node][]LockOp{}
	for _, op := range ops {
		out[op.Node] = append(out[op.Node], op)
	}
	return out
}

// MustHeldIn computes, for every CFG node (indexed like g.Nodes), the
// set of mutexes definitely held when the node begins executing: the
// intersection over all predecessors of the state after them. A key
// held exclusively on one path and shared on another meets to
// HeldRead, the weaker claim. Nodes unreachable from entry report nil
// and should not be checked.
func MustHeldIn(g *CFG, ops []LockOp) []LockState {
	return heldIn(g, ops, meetIntersect)
}

// MayHeldIn is the dual union analysis: the mutexes possibly held when
// a node begins executing (the stronger HeldExcl wins a disagreement).
// An Unlock at a node whose may-set lacks the key releases a mutex
// that cannot be held on any path — a certain bug.
func MayHeldIn(g *CFG, ops []LockOp) []LockState {
	return heldIn(g, ops, meetUnion)
}

func meetIntersect(a, b LockState) LockState {
	out := LockState{}
	for k, va := range a {
		if vb, ok := b[k]; ok {
			if vb < va {
				out[k] = vb
			} else {
				out[k] = va
			}
		}
	}
	return out
}

func meetUnion(a, b LockState) LockState {
	out := LockState{}
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if cur, ok := out[k]; !ok || v > cur {
			out[k] = v
		}
	}
	return out
}

func sameState(a, b LockState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// heldIn is the shared fixpoint: forward over the CFG, out[n] =
// transfer(in[n]); in[n] = meet over computed predecessor outs (a nil
// out is "not yet reached" and drops out of the meet, which makes the
// intersection variant a true must-analysis without a materialized
// top element).
func heldIn(g *CFG, ops []LockOp, meet func(a, b LockState) LockState) []LockState {
	byNode := OpsByNode(ops)
	in := make([]LockState, len(g.Nodes))
	out := make([]LockState, len(g.Nodes))
	in[g.Entry.Index] = LockState{}
	out[g.Entry.Index] = LockState{}
	for changed := true; changed; {
		changed = false
		for _, nd := range g.Nodes {
			if nd == g.Entry {
				continue
			}
			var meetState LockState
			for _, p := range nd.Preds {
				po := out[p.To.Index]
				if po == nil {
					continue
				}
				if meetState == nil {
					meetState = po
				} else {
					meetState = meet(meetState, po)
				}
			}
			if meetState == nil {
				continue // unreachable so far
			}
			if in[nd.Index] == nil || !sameState(in[nd.Index], meetState) {
				in[nd.Index] = meetState
				newOut := lockTransfer(meetState, byNode[nd])
				if out[nd.Index] == nil || !sameState(out[nd.Index], newOut) {
					out[nd.Index] = newOut
					changed = true
				}
			}
		}
	}
	return in
}

// ---- guarded-by association ---------------------------------------

// SeedError is a malformed `// guards:` comment: a name that is not a
// sibling field of the annotated mutex.
type SeedError struct {
	Pos  token.Pos
	Name string
}

// Guards is the package-wide guarded-by association.
type Guards struct {
	// Mutexes maps each mutex field to the sibling fields it guards.
	Mutexes map[*types.Var]map[*types.Var]bool
	// GuardOf is the inverse: guarded field to its mutex fields,
	// deterministically ordered.
	GuardOf map[*types.Var][]*types.Var
	// Seeded marks associations that came from a `// guards:` comment
	// rather than inference.
	Seeded map[*types.Var]bool
	// BadSeeds lists `// guards:` names that match no sibling field;
	// lockcheck reports them so a typo cannot silently unprotect a
	// field.
	BadSeeds []SeedError
}

func (gd *Guards) add(mu, field *types.Var) {
	if gd.Mutexes[mu] == nil {
		gd.Mutexes[mu] = map[*types.Var]bool{}
	}
	if !gd.Mutexes[mu][field] {
		gd.Mutexes[mu][field] = true
		gd.GuardOf[field] = append(gd.GuardOf[field], mu)
	}
}

// CollectGuards builds the guarded-by association for one package:
// explicit `// guards:` seeds first, then inference from every method
// whose receiver type carries a mutex field. See the file comment for
// the inference rule.
func CollectGuards(pass *Pass) *Guards {
	gd := &Guards{
		Mutexes: map[*types.Var]map[*types.Var]bool{},
		GuardOf: map[*types.Var][]*types.Var{},
		Seeded:  map[*types.Var]bool{},
	}
	gd.collectSeeds(pass)
	gd.infer(pass)
	return gd
}

// guardsDirective extracts the comma-separated names of a
// `// guards: a, b` comment, or nil.
func guardsDirective(fld *ast.Field) []string {
	var groups []*ast.CommentGroup
	if fld.Comment != nil {
		groups = append(groups, fld.Comment)
	}
	if fld.Doc != nil {
		groups = append(groups, fld.Doc)
	}
	for _, cg := range groups {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, "guards:")
			if !ok {
				continue
			}
			var names []string
			for _, n := range strings.Split(rest, ",") {
				if n = strings.TrimSpace(n); n != "" {
					names = append(names, n)
				}
			}
			return names
		}
	}
	return nil
}

// collectSeeds walks every struct declaration for annotated mutex
// fields.
func (gd *Guards) collectSeeds(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			// Resolve each named field to its types.Var through Defs.
			byName := map[string]*types.Var{}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						byName[name.Name] = v
					}
				}
			}
			for _, fld := range st.Fields.List {
				names := guardsDirective(fld)
				if names == nil || len(fld.Names) == 0 {
					continue
				}
				mu, ok := pass.TypesInfo.Defs[fld.Names[0]].(*types.Var)
				if !ok {
					continue
				}
				if _, isMutex := syncMutexType(mu.Type()); !isMutex {
					continue
				}
				for _, name := range names {
					sib, ok := byName[name]
					if !ok || sib == mu {
						gd.BadSeeds = append(gd.BadSeeds, SeedError{Pos: fld.Pos(), Name: name})
						continue
					}
					gd.add(mu, sib)
					gd.Seeded[sib] = true
				}
			}
			return true
		})
	}
}

// receiverStruct resolves a method receiver to its named struct type's
// mutex fields (field object keyed by name), or nil when the receiver
// type carries none.
func receiverStruct(fd *ast.FuncDecl, info *types.Info) (recv *types.Var, mutexes map[string]*types.Var, fields map[string]*types.Var) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil, nil, nil
	}
	rv, ok := info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	if !ok {
		return nil, nil, nil
	}
	t := rv.Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil, nil, nil
	}
	mutexes = map[string]*types.Var{}
	fields = map[string]*types.Var{}
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		if _, isMutex := syncMutexType(fld.Type()); isMutex {
			mutexes[fld.Name()] = fld
		} else {
			fields[fld.Name()] = fld
		}
	}
	if len(mutexes) == 0 {
		return nil, nil, nil
	}
	return rv, mutexes, fields
}

// infer scans each method of a mutex-carrying struct: a sibling field
// accessed at a node where a receiver mutex is definitely held becomes
// guarded by that mutex.
func (gd *Guards) infer(pass *Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recv, mutexes, fields := receiverStruct(fd, pass.TypesInfo)
			if recv == nil {
				continue
			}
			g := BuildCFG(fd.Body)
			ops := CollectLockOps(g, pass.TypesInfo)
			if len(ops) == 0 {
				continue
			}
			must := MustHeldIn(g, ops)
			byNode := OpsByNode(ops)
			for _, node := range g.Nodes {
				state := must[node.Index]
				if state == nil {
					continue
				}
				var root ast.Node
				switch {
				case node.Kind == NodeStmt:
					root = node.Stmt
				case node.Kind == NodeCond && node.Cond != nil:
					root = node.Cond
				default:
					continue
				}
				ast.Inspect(root, func(n ast.Node) bool {
					if _, isLit := n.(*ast.FuncLit); isLit {
						return false
					}
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					base, ok := sel.X.(*ast.Ident)
					if !ok || pass.TypesInfo.Uses[base] != recv {
						return true
					}
					fld, ok := fields[sel.Sel.Name]
					if !ok {
						return true
					}
					at := LockStateAt(state, byNode[node], sel.Pos())
					for muName, mu := range mutexes {
						if _, held := at[types.ExprString(base)+"."+muName]; held {
							gd.add(mu, fld)
						}
					}
					return true
				})
			}
		}
	}
}

// LockStateAt refines a node's entry state to a position inside the
// node, folding the node's own operations that textually precede pos.
// A statement that locks and then touches a field sees the lock held.
func LockStateAt(in LockState, ops []LockOp, pos token.Pos) LockState {
	s := in
	for _, op := range ops {
		if op.Call.Pos() >= pos {
			break
		}
		s = ApplyLockOp(s, op)
	}
	return s
}
