package analysis

// Package-level call-graph summaries. The protocol analyzers need
// "does this function, directly or through package-local helpers,
// eventually do X" — launch a compute kernel, tick the fault injector,
// call a verifier. The graph is intraprocedural-resolution only:
// calls through interfaces, function values, or other packages are
// not edges (their effects are invisible here and analyzers treat
// them conservatively at the call site).

import (
	"go/ast"
	"go/types"
)

// CallGraph is the static call graph of one package.
type CallGraph struct {
	decls   map[*types.Func]*ast.FuncDecl
	callees map[*types.Func]map[*types.Func]bool
}

// BuildCallGraph constructs the call graph of the pass's package.
// Function literals are folded into their enclosing declaration: a
// call made inside a closure counts as a call by the function that
// created it (closures here are kernel bodies executed at launch).
func BuildCallGraph(pass *Pass) *CallGraph {
	cg := &CallGraph{
		decls:   map[*types.Func]*ast.FuncDecl{},
		callees: map[*types.Func]map[*types.Func]bool{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			cg.decls[fn] = fd
			if fd.Body == nil {
				continue
			}
			set := map[*types.Func]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := CalleeOf(pass.TypesInfo, call); callee != nil && callee.Pkg() == pass.Pkg {
					set[callee] = true
				}
				return true
			})
			cg.callees[fn] = set
		}
	}
	return cg
}

// CalleeOf resolves the static callee of a call, or nil when the call
// is through a function value, a conversion, or a builtin.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// Decl returns the declaration of fn in this package, or nil.
func (cg *CallGraph) Decl(fn *types.Func) *ast.FuncDecl { return cg.decls[fn] }

// Closure returns every package function that satisfies pred directly
// or calls (transitively, through package-local edges) a function that
// does. pred is evaluated once per declaration.
func (cg *CallGraph) Closure(pred func(*ast.FuncDecl) bool) map[*types.Func]bool {
	set := map[*types.Func]bool{}
	for fn, decl := range cg.decls {
		if pred(decl) {
			set[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range cg.callees {
			if set[fn] {
				continue
			}
			for callee := range callees {
				if set[callee] {
					set[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return set
}
