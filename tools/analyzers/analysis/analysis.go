// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis driver surface that the abftlint
// suite needs. The build environment for this repository vendors no
// third-party modules, so the suite carries its own framework; the
// Analyzer/Pass/Diagnostic shapes deliberately mirror x/tools so that
// each analyzer's Run function can be moved onto the real framework by
// changing only its import path.
//
// The framework adds one repository-specific extension: an Analyzer
// may carry an AppliesTo predicate restricting it to the packages
// where its invariant is load-bearing (e.g. determinism only matters
// under internal/hetsim, internal/core, and internal/fault). The
// driver — not the analyzer body — consults the predicate, so the
// analyzers themselves stay policy-free.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //nolint:<name> suppression comments.
	Name string
	// Doc is the one-paragraph description printed by the driver.
	Doc string
	// Scope names, for humans, where the analyzer runs — the prose
	// rendering of AppliesTo ("internal/hetsim, internal/core", or
	// "all packages"). The docs/LINTING.md analyzer table is generated
	// from it.
	Scope string
	// AppliesTo, when non-nil, restricts the analyzer to packages
	// whose directory import path satisfies the predicate. A nil
	// predicate means the analyzer runs everywhere.
	AppliesTo func(importPath string) bool
	// Run inspects one package and reports findings via the Pass.
	Run func(*Pass) error
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	// ImportPath is the directory-based import path of the package;
	// an external test package (package foo_test) shares the import
	// path of the directory it lives in.
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info

	diagnostics []Diagnostic
}

// Report records a diagnostic.
func (p *Pass) Report(d Diagnostic) {
	p.diagnostics = append(p.diagnostics, d)
}

// Reportf records a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// PathIn returns a predicate satisfied by the listed import paths and
// any package below them.
func PathIn(paths ...string) func(string) bool {
	return func(p string) bool {
		for _, want := range paths {
			if p == want || strings.HasPrefix(p, want+"/") {
				return true
			}
		}
		return false
	}
}

// PathNotIn returns a predicate satisfied everywhere except the listed
// import paths and packages below them.
func PathNotIn(paths ...string) func(string) bool {
	in := PathIn(paths...)
	return func(p string) bool { return !in(p) }
}
