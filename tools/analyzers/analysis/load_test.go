package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module from path→contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		p := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLoadDirExternalTestUnit(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":            "module example.com/m\n\ngo 1.21\n",
		"pkg/a.go":          "package a\n\nfunc A() int { return 1 }\n",
		"pkg/a_in_test.go":  "package a\n\nfunc aHelper() int { return A() }\n",
		"pkg/a_ext_test.go": "package a_test\n\nimport \"example.com/m/pkg\"\n\nvar _ = a.A\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	units, err := l.LoadDir(filepath.Join(root, "pkg"), "example.com/m/pkg")
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 2 {
		t.Fatalf("got %d units, want 2 (base + external test)", len(units))
	}
	base, ext := units[0], units[1]
	if base.ExternalTest {
		t.Error("first unit should be the base package")
	}
	if len(base.Files) != 2 {
		t.Errorf("base unit has %d files, want 2 (library + in-package test)", len(base.Files))
	}
	if !ext.ExternalTest {
		t.Error("second unit should be flagged ExternalTest")
	}
	if ext.ImportPath != base.ImportPath {
		t.Errorf("external test unit reports %q, want the shared path %q", ext.ImportPath, base.ImportPath)
	}
	if ext.Types == nil || ext.Types.Name() != "a_test" {
		t.Errorf("external unit package name = %v, want a_test", ext.Types)
	}
	for _, u := range units {
		for _, e := range u.Errors {
			t.Errorf("unexpected type error in %q: %v", u.ImportPath, e)
		}
	}
}

func TestLoadPatternMatchingNothing(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/m\n",
		"a/a.go": "package a\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load("nosuchdir"); err == nil || !strings.Contains(err.Error(), "matched no Go packages") {
		t.Errorf("empty non-recursive pattern: got %v, want matched-no-packages error", err)
	}
	if _, err := l.Load("nosuchdir/..."); err == nil {
		t.Error("empty recursive pattern should error, not lint zero packages")
	}
}

func TestNewLoaderWithoutModule(t *testing.T) {
	dir := t.TempDir() // nothing above a TempDir carries a go.mod
	if _, err := NewLoader(dir); err == nil || !strings.Contains(err.Error(), "no go.mod") {
		t.Errorf("got %v, want no-go.mod error", err)
	}
}

func TestNewLoaderWithoutModuleDirective(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "// a go.mod with no module line\ngo 1.21\n",
		"a.go":   "package a\n",
	})
	if _, err := NewLoader(root); err == nil || !strings.Contains(err.Error(), "no module directive") {
		t.Errorf("got %v, want no-module-directive error", err)
	}
}

func TestImportCycleIsReported(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/m\n",
		"x/x.go": "package x\n\nimport \"example.com/m/y\"\n\nvar X = y.Y\n",
		"y/y.go": "package y\n\nimport \"example.com/m/x\"\n\nvar Y = x.X\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("x")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Errors) == 0 {
		t.Fatal("a cyclic import must surface as a package error, not hang or pass")
	}
	found := false
	for _, e := range pkgs[0].Errors {
		if strings.Contains(e.Error(), "import cycle") {
			found = true
		}
	}
	if !found {
		t.Errorf("errors do not mention the cycle: %v", pkgs[0].Errors)
	}
}

func TestImportOfMissingPackage(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/m\n",
		"a/a.go": "package a\n\nimport \"example.com/m/nothere\"\n\nvar _ = nothere.X\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs[0].Errors) == 0 {
		t.Fatal("importing a nonexistent module package must be a package error")
	}
}

func TestImportOfUnparsableDependency(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/m\n",
		"a/a.go": "package a\n\nimport \"example.com/m/b\"\n\nvar _ = b.B\n",
		"b/b.go": "package b\n\nfunc B( {}\n", // syntax error
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs[0].Errors) == 0 {
		t.Fatal("a parse error in a dependency must surface as a package error")
	}
}

func TestImportOfTypeBrokenDependency(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/m\n",
		"a/a.go": "package a\n\nimport \"example.com/m/b\"\n\nvar _ = b.B\n",
		"b/b.go": "package b\n\nvar B undefinedType\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("a")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range pkgs[0].Errors {
		if strings.Contains(e.Error(), "importing example.com/m/b") {
			found = true
		}
	}
	if !found {
		t.Errorf("a type error in a dependency must be attributed to the import; got %v", pkgs[0].Errors)
	}
}
