package analysis

// Interprocedural function summaries over the package call graph. The
// checksum-coverage analyzer needs a stronger primitive than
// CallGraph.Closure's boolean "eventually does X": it asks, per
// function, *which* protected-tile mutations and checksum updates the
// function can perform (May) and which it performs on every execution
// (Must). Facts are analyzer-defined bits; the framework only knows
// how to propagate them bottom-up through strongly connected
// components of the call graph.
//
// May facts union the function's own syntactic facts (closures
// included — kernel bodies are folded into their launcher, matching
// BuildCallGraph) with every package-local callee's May facts. Must
// facts are path-sensitive: a fact is established only when every
// entry-to-exit path of the function's CFG crosses a node carrying it,
// with zero-trip loop edges kept — exactly goleak's discipline — so a
// fact established only inside a `for` body is May, never Must.

import (
	"go/ast"
	"go/types"
)

// Facts is a small analyzer-defined bit set. Clients allocate bits
// with iota (`fact0 Facts = 1 << iota`) and combine them with the
// usual bitwise operators.
type Facts uint64

// Has reports whether every bit of q is set in f.
func (f Facts) Has(q Facts) bool { return f&q == q }

// Any reports whether at least one bit of q is set in f.
func (f Facts) Any(q Facts) bool { return f&q != 0 }

// Summary is the interprocedural effect summary of one function.
type Summary struct {
	// May holds every fact some path through the function (or a
	// package-local callee, or a closure it builds) can establish.
	May Facts
	// Must holds the facts established on every entry-to-exit path of
	// the function itself, counting a direct callee's Must facts at the
	// call site. Zero-trip loop edges are honored: facts only
	// established inside a loop body are not Must.
	Must Facts
}

// Summarize computes May/Must summaries for every declared function.
// local classifies one AST node with the facts its own syntax
// establishes (a call to checksum.UpdateTRSM, a kernel launch of a
// given class); it is invoked for every node of every declaration,
// closures included, and must not recurse itself. Summaries are
// propagated callee-to-caller in reverse topological order of the
// call graph's SCCs; mutually recursive functions share one May set
// and iterate their Must sets to a fixpoint from the sound
// under-approximation of zero.
func (cg *CallGraph) Summarize(info *types.Info, local func(ast.Node) Facts) map[*types.Func]*Summary {
	direct := make(map[*types.Func]Facts, len(cg.decls))
	for fn, fd := range cg.decls {
		var f Facts
		ast.Inspect(fd, func(n ast.Node) bool {
			f |= local(n)
			return true
		})
		direct[fn] = f
	}

	sums := make(map[*types.Func]*Summary, len(cg.decls))
	for _, scc := range cg.sccs() {
		var may Facts
		for _, fn := range scc {
			may |= direct[fn]
			for callee := range cg.callees[fn] {
				if s := sums[callee]; s != nil {
					may |= s.May
				}
			}
		}
		for _, fn := range scc {
			sums[fn] = &Summary{May: may}
		}
		// Within the SCC, Must starts at zero (recursion may establish
		// nothing) and grows monotonically to its fixpoint.
		for changed := true; changed; {
			changed = false
			for _, fn := range scc {
				if m := cg.mustFacts(fn, info, sums, local); m != sums[fn].Must {
					sums[fn].Must = m
					changed = true
				}
			}
		}
	}
	return sums
}

// mustFacts computes the Must set of one function against the current
// summaries: a fact bit is Must when the function exit is unreachable
// from entry once nodes carrying the bit are barriers.
func (cg *CallGraph) mustFacts(fn *types.Func, info *types.Info, sums map[*types.Func]*Summary, local func(ast.Node) Facts) Facts {
	fd := cg.decls[fn]
	if fd == nil || fd.Body == nil {
		return 0
	}
	g := BuildCFG(fd.Body)
	nf := NodeFacts(g, info, sums, false, local)
	var all Facts
	for _, f := range nf {
		all |= f
	}
	var must Facts
	for bit := Facts(1); bit != 0 && bit <= all; bit <<= 1 {
		if !all.Any(bit) {
			continue
		}
		reach := g.Reachable(g.Entry, PathOpts{
			Barrier: func(n *Node) bool { return nf[n].Any(bit) },
		})
		if !reach[g.Exit] {
			must |= bit
		}
	}
	return must
}

// NodeFacts annotates each CFG node with the facts its statement (or
// branch condition) establishes when executed: the node's own
// syntactic facts — function literals excluded, since a closure built
// here runs elsewhere — plus, for every direct package-local call, the
// callee's summary facts (May when may is true, Must otherwise). May
// is the right choice when the caller mirrors the callee's internal
// guards and wants credit for conditionally-established facts; Must is
// the conservative default used by Summarize itself.
func NodeFacts(g *CFG, info *types.Info, sums map[*types.Func]*Summary, may bool, local func(ast.Node) Facts) map[*Node]Facts {
	nf := make(map[*Node]Facts, len(g.Nodes))
	for _, n := range g.Nodes {
		var root ast.Node
		switch {
		case n.Kind == NodeStmt && n.Stmt != nil:
			root = n.Stmt
		case n.Kind == NodeCond && n.Cond != nil:
			root = n.Cond
		default:
			continue
		}
		var f Facts
		ast.Inspect(root, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			f |= local(x)
			if call, ok := x.(*ast.CallExpr); ok {
				if callee := CalleeOf(info, call); callee != nil {
					if s := sums[callee]; s != nil {
						if may {
							f |= s.May
						} else {
							f |= s.Must
						}
					}
				}
			}
			return true
		})
		if f != 0 {
			nf[n] = f
		}
	}
	return nf
}

// sccs returns the strongly connected components of the call graph in
// reverse topological order (callees before callers) — the order
// Tarjan's algorithm emits them.
func (cg *CallGraph) sccs() [][]*types.Func {
	// Deterministic iteration: sort roots by position so repeated runs
	// summarize in the same order (the results are order-independent,
	// but debugging is not).
	order := make([]*types.Func, 0, len(cg.decls))
	for fn := range cg.decls {
		order = append(order, fn)
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].Pos() < order[j-1].Pos(); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	index := map[*types.Func]int{}
	low := map[*types.Func]int{}
	onStack := map[*types.Func]bool{}
	var stack []*types.Func
	var out [][]*types.Func
	next := 0

	var strong func(fn *types.Func)
	strong = func(fn *types.Func) {
		index[fn] = next
		low[fn] = next
		next++
		stack = append(stack, fn)
		onStack[fn] = true
		for callee := range cg.callees[fn] {
			if _, declared := cg.decls[callee]; !declared {
				continue
			}
			if _, seen := index[callee]; !seen {
				strong(callee)
				if low[callee] < low[fn] {
					low[fn] = low[callee]
				}
			} else if onStack[callee] && index[callee] < low[fn] {
				low[fn] = index[callee]
			}
		}
		if low[fn] == index[fn] {
			var scc []*types.Func
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				scc = append(scc, top)
				if top == fn {
					break
				}
			}
			out = append(out, scc)
		}
	}
	for _, fn := range order {
		if _, seen := index[fn]; !seen {
			strong(fn)
		}
	}
	return out
}
