package analysis

// Goroutine and defer lifetime tracking: the second piece of dataflow
// plumbing behind the concurrency analyzers. A function's CFG already
// places every statement; this file picks out the statements whose
// effects outlive the statement — `go` launches a concurrent body,
// `defer` schedules a call for function exit — and pairs them with
// their CFG nodes so analyzers can ask dominance and reachability
// questions about them ("is this spawn joined on every path to
// exit?", "is the Unlock deferred?").

import (
	"go/ast"
	"go/types"
)

// SpawnSite is one `go` statement.
type SpawnSite struct {
	// Go is the statement itself.
	Go *ast.GoStmt
	// Node is its CFG node.
	Node *Node
	// Body is the launched function literal, nil for `go expr()` on a
	// method or function value (whose body lives elsewhere).
	Body *ast.FuncLit
}

// DeferSite is one `defer` statement.
type DeferSite struct {
	// Defer is the statement itself.
	Defer *ast.DeferStmt
	// Node is its CFG node.
	Node *Node
	// Call is the deferred call.
	Call *ast.CallExpr
}

// Lifetime lists the escape points of one function body.
type Lifetime struct {
	Spawns []SpawnSite
	Defers []DeferSite
}

// CollectLifetime walks the CFG for go and defer statements. Both are
// statements in Go's grammar, so each is its own CFG node; statements
// inside nested function literals belong to those literals' lifetimes
// and are not collected here.
func CollectLifetime(g *CFG) *Lifetime {
	lt := &Lifetime{}
	for _, node := range g.Nodes {
		if node.Kind != NodeStmt {
			continue
		}
		switch s := node.Stmt.(type) {
		case *ast.GoStmt:
			site := SpawnSite{Go: s, Node: node}
			if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
				site.Body = lit
			}
			lt.Spawns = append(lt.Spawns, site)
		case *ast.DeferStmt:
			lt.Defers = append(lt.Defers, DeferSite{Defer: s, Node: node, Call: s.Call})
		}
	}
	return lt
}

// WaitGroupCall matches a call of the named sync.WaitGroup method
// (Add, Done, Wait), returning the receiver expression.
func WaitGroupCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Add", "Done", "Wait":
	default:
		return nil, "", false
	}
	tv, has := info.Types[sel.X]
	if !has || !isWaitGroupType(tv.Type) {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

func isWaitGroupType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// IsChanType reports whether t's underlying type is a channel.
func IsChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
