package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses a source file and returns the body of the named
// function.
func parseBody(t *testing.T, src, name string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd.Body
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

// callNode finds the CFG node of the statement calling the named
// function.
func callNode(g *CFG, body *ast.BlockStmt, name string) *Node {
	var found *Node
	ast.Inspect(body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		if call, ok := es.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
				found = g.NodeFor(es)
				return false
			}
		}
		return true
	})
	return found
}

const cfgSrc = `package p

func f() bool { return true }
func a()      {}
func b()      {}
func c()      {}

func linear() { a(); b(); c() }

func branchy() {
	if f() {
		a()
	} else {
		b()
	}
	c()
}

func looped(n int) {
	for i := 0; i < n; i++ {
		a()
	}
	b()
}

func breaks(n int) {
	for i := 0; i < n; i++ {
		if f() {
			break
		}
		a()
	}
	b()
}

func labeled(n int) {
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if f() {
				continue outer
			}
			a()
		}
		b()
	}
	c()
}

func switchy(x int) {
	switch x {
	case 0:
		a()
	default:
		b()
	}
	c()
}

func jumpy() {
	goto done
	a()
done:
	b()
}
`

func TestCFGLinearDominance(t *testing.T) {
	body := parseBody(t, cfgSrc, "linear")
	g := BuildCFG(body)
	dom := g.Dominators(PathOpts{})
	na, nb, nc := callNode(g, body, "a"), callNode(g, body, "b"), callNode(g, body, "c")
	if na == nil || nb == nil || nc == nil {
		t.Fatal("missing call nodes")
	}
	if !dom[nc.Index][na] || !dom[nc.Index][nb] {
		t.Error("a and b should dominate c in straight-line code")
	}
	if dom[na.Index][nb] {
		t.Error("b must not dominate the earlier a")
	}
	if !dom[g.Exit.Index][nc] {
		t.Error("c should dominate exit")
	}
}

func TestCFGBranchDominance(t *testing.T) {
	body := parseBody(t, cfgSrc, "branchy")
	g := BuildCFG(body)
	na, nb, nc := callNode(g, body, "a"), callNode(g, body, "b"), callNode(g, body, "c")
	dom := g.Dominators(PathOpts{})
	if dom[nc.Index][na] || dom[nc.Index][nb] {
		t.Error("neither arm of an if/else dominates the join")
	}

	// Specializing the condition to true makes the then-arm dominate
	// the join and the else-arm unreachable.
	spec := PathOpts{Resolve: func(ast.Expr) (bool, bool) { return true, true }}
	dom = g.Dominators(spec)
	if !dom[nc.Index][na] {
		t.Error("then-arm should dominate join when the condition is resolved true")
	}
	reach := g.Reachable(g.Entry, spec)
	if reach[nb] {
		t.Error("else-arm should be unreachable when the condition is resolved true")
	}
	if !reach[na] || !reach[nc] {
		t.Error("then-arm and join should stay reachable")
	}
}

func TestCFGLoopZeroTrip(t *testing.T) {
	body := parseBody(t, cfgSrc, "looped")
	g := BuildCFG(body)
	na, nb := callNode(g, body, "a"), callNode(g, body, "b")

	if dom := g.Dominators(PathOpts{}); dom[nb.Index][na] {
		t.Error("loop body must not dominate the loop exit under exact semantics")
	}
	if dom := g.Dominators(PathOpts{SkipZeroTrip: true}); !dom[nb.Index][na] {
		t.Error("loop body should dominate the loop exit under at-least-once semantics")
	}
}

func TestCFGBreak(t *testing.T) {
	body := parseBody(t, cfgSrc, "breaks")
	g := BuildCFG(body)
	na, nb := callNode(g, body, "a"), callNode(g, body, "b")
	reach := g.Reachable(g.Entry, PathOpts{})
	if !reach[na] || !reach[nb] {
		t.Fatal("all statements should be reachable")
	}
	// Even under at-least-once semantics the break path bypasses a(),
	// so a() must not dominate the loop exit.
	if dom := g.Dominators(PathOpts{SkipZeroTrip: true}); dom[nb.Index][na] {
		t.Error("break around a() must kill its dominance over the loop exit")
	}
}

func TestCFGLabeledContinue(t *testing.T) {
	body := parseBody(t, cfgSrc, "labeled")
	g := BuildCFG(body)
	na, nb, nc := callNode(g, body, "a"), callNode(g, body, "b"), callNode(g, body, "c")
	reach := g.Reachable(g.Entry, PathOpts{})
	for _, n := range []*Node{na, nb, nc} {
		if !reach[n] {
			t.Fatal("all statements should be reachable")
		}
	}
	// continue outer jumps past b(); with the inner loop forced to run
	// and its condition-specialized body always continuing, b() must
	// not dominate c().
	if dom := g.Dominators(PathOpts{SkipZeroTrip: true}); dom[nc.Index][nb] {
		t.Error("labeled continue must provide a path around b()")
	}
}

func TestCFGSwitch(t *testing.T) {
	body := parseBody(t, cfgSrc, "switchy")
	g := BuildCFG(body)
	na, nb, nc := callNode(g, body, "a"), callNode(g, body, "b"), callNode(g, body, "c")
	dom := g.Dominators(PathOpts{})
	if dom[nc.Index][na] || dom[nc.Index][nb] {
		t.Error("no single clause dominates the statement after a switch")
	}
	reach := g.Reachable(g.Entry, PathOpts{})
	if !reach[na] || !reach[nb] || !reach[nc] {
		t.Error("all clauses and the join should be reachable")
	}
}

func TestCFGGoto(t *testing.T) {
	body := parseBody(t, cfgSrc, "jumpy")
	g := BuildCFG(body)
	na, nb := callNode(g, body, "a"), callNode(g, body, "b")
	reach := g.Reachable(g.Entry, PathOpts{})
	if reach[na] {
		t.Error("statement jumped over by goto should be unreachable")
	}
	if !reach[nb] {
		t.Error("goto target should be reachable")
	}
}

func TestReachableBarrier(t *testing.T) {
	body := parseBody(t, cfgSrc, "linear")
	g := BuildCFG(body)
	na, nb, nc := callNode(g, body, "a"), callNode(g, body, "b"), callNode(g, body, "c")
	reach := g.Reachable(na, PathOpts{Barrier: func(n *Node) bool { return n == nb }})
	if !reach[nb] {
		t.Error("a barrier node itself is reachable")
	}
	if reach[nc] {
		t.Error("traversal must not continue through a barrier")
	}
	if reach[na] {
		t.Error("the start node is only reachable via a cycle")
	}
}

func TestCFGNilBody(t *testing.T) {
	g := BuildCFG(nil)
	if g.Entry == nil || g.Exit == nil {
		t.Fatal("nil body still yields entry and exit")
	}
	if !g.Reachable(g.Entry, PathOpts{})[g.Exit] {
		t.Error("exit should be reachable from entry")
	}
}
