package analysis_test

import (
	"go/ast"
	"testing"

	"abftchol/tools/analyzers"
	"abftchol/tools/analyzers/analysis"
	"abftchol/tools/analyzers/hotpath"
)

// summarySink keeps the summary maps alive across iterations so the
// compiler cannot elide the benchmarked work.
var summarySink int

// loadRepo loads and type-checks the whole module, the same workload
// cmd/abftlint performs before any analyzer runs.
func loadRepo(b *testing.B) []*analysis.Package {
	b.Helper()
	l, err := analysis.NewLoader(".")
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := l.Load("../../../...")
	if err != nil {
		b.Fatal(err)
	}
	return pkgs
}

// BenchmarkLoadRepo measures the front half of an abftlint run:
// parsing and type-checking every package in the module.
func BenchmarkLoadRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		loadRepo(b)
	}
}

// BenchmarkSuite measures the analysis half in isolation: the full
// registered suite (CFGs, dominators, call graphs, guarded-by
// inference, lock-state dataflow and all) over pre-loaded packages.
// The number recorded in docs/LINTING.md comes from this benchmark,
// via `make lint-bench`.
func BenchmarkSuite(b *testing.B) {
	pkgs := loadRepo(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.RunAll(pkgs, analyzers.Suite); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotpath isolates the performance-invariant prover: the
// annotated-function discovery, must-inline call-graph traversal,
// cold-span computation, and BCE-hint pass over the whole module.
// Reported separately in docs/LINTING.md (via `make lint-bench`) so
// the hot-path gate's own cost stays visible as kernels gain
// annotations.
func BenchmarkHotpath(b *testing.B) {
	pkgs := loadRepo(b)
	one := []*analysis.Analyzer{hotpath.Analyzer}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.RunAll(pkgs, one); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSummaries isolates the summary-construction phase the
// interprocedural analyzers (chkflow) pay on top of the per-function
// passes: building every package's call graph, condensing its SCCs,
// and propagating May/Must facts bottom-up with a representative
// classifier. Reported separately in docs/LINTING.md so a regression
// here is not smeared across the whole-suite number.
func BenchmarkSummaries(b *testing.B) {
	pkgs := loadRepo(b)
	classify := func(n ast.Node) analysis.Facts {
		if _, ok := n.(*ast.CallExpr); ok {
			return 1
		}
		return 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pkg := range pkgs {
			pass := &analysis.Pass{
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				ImportPath: pkg.ImportPath,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.TypesInfo,
			}
			cg := analysis.BuildCallGraph(pass)
			summarySink += len(cg.Summarize(pkg.TypesInfo, classify))
		}
	}
}
