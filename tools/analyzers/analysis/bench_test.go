package analysis_test

import (
	"testing"

	"abftchol/tools/analyzers"
	"abftchol/tools/analyzers/analysis"
)

// loadRepo loads and type-checks the whole module, the same workload
// cmd/abftlint performs before any analyzer runs.
func loadRepo(b *testing.B) []*analysis.Package {
	b.Helper()
	l, err := analysis.NewLoader(".")
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := l.Load("../../../...")
	if err != nil {
		b.Fatal(err)
	}
	return pkgs
}

// BenchmarkLoadRepo measures the front half of an abftlint run:
// parsing and type-checking every package in the module.
func BenchmarkLoadRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		loadRepo(b)
	}
}

// BenchmarkSuite measures the analysis half in isolation: the full
// registered suite (CFGs, dominators, call graphs, guarded-by
// inference, lock-state dataflow and all) over pre-loaded packages.
// The number recorded in docs/LINTING.md comes from this benchmark,
// via `make lint-bench`.
func BenchmarkSuite(b *testing.B) {
	pkgs := loadRepo(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.RunAll(pkgs, analyzers.Suite); err != nil {
			b.Fatal(err)
		}
	}
}
