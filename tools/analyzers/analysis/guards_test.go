package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheckSyncPass parses and typechecks one file that may import
// sync, keeping comments (the guards directives live there) and using
// the source importer so no pre-built stdlib export data is needed.
func typecheckSyncPass(t *testing.T, src string) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Types:      map[ast.Expr]types.TypeAndValue{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Pass{ImportPath: "p", Fset: fset, Files: []*ast.File{f}, Pkg: pkg, TypesInfo: info}
}

// fieldVar resolves a struct field object by type and field name.
func fieldVar(t *testing.T, pass *Pass, typeName, field string) *types.Var {
	t.Helper()
	obj := pass.Pkg.Scope().Lookup(typeName)
	if obj == nil {
		t.Fatalf("type %s not found", typeName)
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		t.Fatalf("%s is not a struct", typeName)
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == field {
			return st.Field(i)
		}
	}
	t.Fatalf("field %s.%s not found", typeName, field)
	return nil
}

// funcBody finds a declared function's body by name.
func funcBody(t *testing.T, pass *Pass, name string) *ast.FuncDecl {
	t.Helper()
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return fd
			}
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

const guardsSrc = `package p

import "sync"

type reg struct {
	mu sync.Mutex // guards: a
	a  int
	b  int
	c  int
}

// locked teaches inference that mu also guards b.
func (r *reg) locked() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.b = 1
}

// unlocked touches c without the mutex; c must stay unguarded, or the
// inference would manufacture violations out of thin air.
func (r *reg) unlocked() {
	r.c = 2
}
`

func TestCollectGuards(t *testing.T) {
	pass := typecheckSyncPass(t, guardsSrc)
	g := CollectGuards(pass)
	if len(g.BadSeeds) != 0 {
		t.Fatalf("unexpected bad seeds: %+v", g.BadSeeds)
	}
	mu := fieldVar(t, pass, "reg", "mu")
	a := fieldVar(t, pass, "reg", "a")
	b := fieldVar(t, pass, "reg", "b")
	c := fieldVar(t, pass, "reg", "c")
	if !g.Mutexes[mu][a] || !g.Seeded[a] {
		t.Errorf("a should be seeded as guarded by mu: mutexes=%v seeded=%v", g.Mutexes[mu][a], g.Seeded[a])
	}
	if !g.Mutexes[mu][b] {
		t.Errorf("b should be inferred as guarded by mu from the locked access")
	}
	if g.Seeded[b] {
		t.Errorf("b's association is inferred, not seeded")
	}
	if len(g.GuardOf[c]) != 0 {
		t.Errorf("c is never accessed under the lock and must stay unguarded, got %v", g.GuardOf[c])
	}
}

func TestCollectGuardsBadSeed(t *testing.T) {
	pass := typecheckSyncPass(t, `package p

import "sync"

type s struct {
	mu sync.Mutex // guards: zz
	n  int
}
`)
	g := CollectGuards(pass)
	if len(g.BadSeeds) != 1 || g.BadSeeds[0].Name != "zz" {
		t.Fatalf("want one bad seed for zz, got %+v", g.BadSeeds)
	}
}

func TestCollectLockOpsDeferred(t *testing.T) {
	pass := typecheckSyncPass(t, guardsSrc)
	fd := funcBody(t, pass, "locked")
	g := BuildCFG(fd.Body)
	ops := CollectLockOps(g, pass.TypesInfo)
	if len(ops) != 2 {
		t.Fatalf("want 2 lock ops, got %d", len(ops))
	}
	if ops[0].Method != "Lock" || ops[0].Deferred || ops[0].Key != "r.mu" {
		t.Errorf("first op should be a direct r.mu.Lock, got %+v", ops[0])
	}
	if ops[1].Method != "Unlock" || !ops[1].Deferred {
		t.Errorf("second op should be the deferred Unlock, got %+v", ops[1])
	}
	if kind, ok := ops[0].Acquires(); !ok || kind != HeldExcl {
		t.Errorf("Lock should acquire exclusively")
	}
	if !ops[1].Releases() {
		t.Errorf("Unlock should release")
	}
}

const branchSrc = `package p

import "sync"

func f(mu *sync.Mutex, cond bool) {
	mu.Lock()
	if cond {
		mu.Unlock()
	}
	_ = cond
}
`

// TestMustMayHeld pins the two dataflow variants apart on a branch
// that releases on only one arm: at the probe statement the mutex may
// be held but is not definitely held.
func TestMustMayHeld(t *testing.T) {
	pass := typecheckSyncPass(t, branchSrc)
	fd := funcBody(t, pass, "f")
	g := BuildCFG(fd.Body)
	ops := CollectLockOps(g, pass.TypesInfo)
	must := MustHeldIn(g, ops)
	may := MayHeldIn(g, ops)

	var probe *Node
	for _, n := range g.Nodes {
		if n.Kind == NodeStmt {
			if as, ok := n.Stmt.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
				if id, isID := as.Lhs[0].(*ast.Ident); isID && id.Name == "_" {
					probe = n
				}
			}
		}
	}
	if probe == nil {
		t.Fatal("probe statement not found")
	}
	if _, held := must[probe.Index]["mu"]; held {
		t.Errorf("must-held at probe should not contain mu: one path unlocked it")
	}
	if kind, held := may[probe.Index]["mu"]; !held || kind != HeldExcl {
		t.Errorf("may-held at probe should contain mu exclusively, got %v (held=%v)", kind, held)
	}
}

func TestApplyLockOpAndStateAt(t *testing.T) {
	pass := typecheckSyncPass(t, branchSrc)
	fd := funcBody(t, pass, "f")
	g := BuildCFG(fd.Body)
	ops := CollectLockOps(g, pass.TypesInfo)
	if len(ops) != 2 {
		t.Fatalf("want 2 ops, got %d", len(ops))
	}
	s := ApplyLockOp(LockState{}, ops[0])
	if s["mu"] != HeldExcl {
		t.Errorf("after Lock the state should hold mu exclusively, got %v", s)
	}
	s = ApplyLockOp(s, ops[1])
	if _, held := s["mu"]; held {
		t.Errorf("after Unlock the state should be empty, got %v", s)
	}
	// LockStateAt folds only the ops preceding the position: before the
	// Lock's own call the state is still empty.
	byNode := OpsByNode(ops)
	at := LockStateAt(LockState{}, byNode[ops[0].Node], ops[0].Call.Pos())
	if len(at) != 0 {
		t.Errorf("state at the Lock call itself should be empty, got %v", at)
	}
	after := LockStateAt(LockState{}, byNode[ops[0].Node], ops[0].Call.End()+1)
	if after["mu"] != HeldExcl {
		t.Errorf("state just past the Lock call should hold mu, got %v", after)
	}
}
