package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// typecheckPass parses and typechecks one source file into a Pass.
func typecheckPass(t *testing.T, src string) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Types:      map[ast.Expr]types.TypeAndValue{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Pass{ImportPath: "p", Fset: fset, Files: []*ast.File{f}, Pkg: pkg, TypesInfo: info}
}

const cgSrc = `package p

type dev struct{}

func (dev) tick() {}

func leaf(d dev)   { d.tick() }
func mid(d dev)    { leaf(d) }
func top(d dev)    { mid(d) }
func other()       {}
func closures(d dev) {
	f := func() { leaf(d) }
	f()
}
`

// declByName finds a declared function object by name.
func declByName(t *testing.T, pass *Pass, cg *CallGraph, name string) *types.Func {
	t.Helper()
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					return fn
				}
			}
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

// callsTick reports whether a declaration contains a direct .tick()
// call.
func callsTick(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "tick" {
			found = true
		}
		return true
	})
	return found
}

func TestCallGraphClosure(t *testing.T) {
	pass := typecheckPass(t, cgSrc)
	cg := BuildCallGraph(pass)
	closure := cg.Closure(callsTick)

	for _, name := range []string{"leaf", "mid", "top", "closures"} {
		if !closure[declByName(t, pass, cg, name)] {
			t.Errorf("%s should be in the tick closure", name)
		}
	}
	if closure[declByName(t, pass, cg, "other")] {
		t.Error("other must not be in the tick closure")
	}
}

func TestCallGraphDecl(t *testing.T) {
	pass := typecheckPass(t, cgSrc)
	cg := BuildCallGraph(pass)
	fn := declByName(t, pass, cg, "mid")
	if d := cg.Decl(fn); d == nil || d.Name.Name != "mid" {
		t.Fatalf("Decl(mid) = %v", d)
	}
}

func TestCalleeOf(t *testing.T) {
	pass := typecheckPass(t, cgSrc)
	var methodCall, funcCall *ast.CallExpr
	ast.Inspect(pass.Files[0], func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "tick" {
				methodCall = call
			}
		case *ast.Ident:
			if fun.Name == "mid" {
				funcCall = call
			}
		}
		return true
	})
	if fn := CalleeOf(pass.TypesInfo, methodCall); fn == nil || fn.Name() != "tick" {
		t.Errorf("method callee = %v", fn)
	}
	if fn := CalleeOf(pass.TypesInfo, funcCall); fn == nil || fn.Name() != "mid" {
		t.Errorf("function callee = %v", fn)
	}
}

const duSrc = `package p

type ev struct{}

func rec() ev      { return ev{} }
func sink(e ev)    {}
func two() (ev, error) { return ev{}, nil }

func f(param ev) {
	used := rec()
	sink(used)
	unused := rec()
	_ = func() { sink(param) }
	pair, err := two()
	_, _ = pair, err
	var bare ev
	_ = unused
	_ = bare
}
`

func objByName(t *testing.T, pass *Pass, name string) types.Object {
	t.Helper()
	for id, obj := range pass.TypesInfo.Defs {
		if obj != nil && id.Name == name && obj.Parent() != pass.Pkg.Scope() {
			return obj
		}
	}
	t.Fatalf("object %s not found", name)
	return nil
}

func TestCollectDefUse(t *testing.T) {
	pass := typecheckPass(t, duSrc)
	var fn *ast.FuncDecl
	for _, d := range pass.Files[0].Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			fn = fd
		}
	}
	du := CollectDefUse(fn, pass.TypesInfo)

	used := objByName(t, pass, "used")
	defs := du.Defs[used]
	if len(defs) != 1 {
		t.Fatalf("used has %d defs, want 1", len(defs))
	}
	if call, ok := defs[0].(*ast.CallExpr); !ok || !strings.HasPrefix(types.ExprString(call), "rec") {
		t.Errorf("used's def should be the rec() call, got %s", types.ExprString(defs[0]))
	}
	if du.Uses[used] != 1 {
		t.Errorf("used read %d times, want 1", du.Uses[used])
	}

	// Multi-value assignment: both LHS record the single call RHS.
	pair, errObj := objByName(t, pass, "pair"), objByName(t, pass, "err")
	if len(du.Defs[pair]) != 1 || len(du.Defs[errObj]) != 1 {
		t.Error("multi-value assignment should define both targets")
	}

	// A read inside a closure is a real use.
	param := objByName(t, pass, "param")
	if !du.Params[param] {
		t.Error("param should be recorded as a parameter")
	}
	if du.Uses[param] == 0 {
		t.Error("closure read of param should count as a use")
	}

	// var with no initializer: present with nil defs.
	bare := objByName(t, pass, "bare")
	if defs, ok := du.Defs[bare]; !ok || defs != nil {
		t.Error("bare var should have a nil-def entry")
	}
}
