package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"strings"
	"testing"
)

func parseProtocolSrc(t *testing.T, src string) *Protocol {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return ParseProtocol([]*ast.File{f})
}

func TestParseProtocol(t *testing.T) {
	p := parseProtocolSrc(t, `package p

// abft:protocol scheme SchemeOnline ft verify=post-write

// abft:protocol scheme SchemeNone verify=none

// runOnce is the left-looking driver.
//
// abft:protocol driver steps=syrk,gemm,potf2,trsm
func runOnce() {}

// runOnceRight is the right-looking variant.
//
// abft:protocol driver steps=potf2,trsm,trailingUpdate
func runOnceRight() {}
`)
	if len(p.Errors) != 0 {
		t.Fatalf("unexpected errors: %+v", p.Errors)
	}
	want := map[string][]string{
		"runOnce":      {"syrk", "gemm", "potf2", "trsm"},
		"runOnceRight": {"potf2", "trsm", "trailingUpdate"},
	}
	if got := p.StepTable(); !reflect.DeepEqual(got, want) {
		t.Errorf("StepTable = %v, want %v", got, want)
	}
	online, ok := p.Scheme("SchemeOnline")
	if !ok || !online.FT || online.Verify != VerifyPostWrite {
		t.Errorf("SchemeOnline = %+v, %v", online, ok)
	}
	none, ok := p.Scheme("SchemeNone")
	if !ok || none.FT || none.Verify != VerifyNone {
		t.Errorf("SchemeNone = %+v, %v", none, ok)
	}
	if ft := p.FTSchemes(); len(ft) != 1 || ft[0].Name != "SchemeOnline" {
		t.Errorf("FTSchemes = %+v", ft)
	}
}

func TestParseProtocolErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string // substring of the expected error
	}{
		{"package p\n\n// abft:protocol driver steps=a\nvar x int\n", "not attached to a function declaration"},
		{"package p\n\n// abft:protocol flavor x\n", "unknown abft:protocol directive"},
		{"package p\n\n// abft:protocol driver steps=\nfunc f() {}\n\nfunc g() {}\n", "empty step name"},
		{"package p\n\n// abft:protocol driver\nfunc f() {}\n", "declares no steps"},
		{"package p\n\n// abft:protocol driver bogus=1\nfunc f() {}\n", "unknown field"},
		{"package p\n\n// abft:protocol scheme\n", "needs a scheme constant name"},
		{"package p\n\n// abft:protocol scheme S ft\n", "declares no verify="},
		{"package p\n\n// abft:protocol scheme S verify=later\n", "unknown verify discipline"},
		{"package p\n\n// abft:protocol scheme S bogus verify=none\n", "unknown field"},
		{"package p\n\n// abft:protocol scheme S verify=none\n\n// abft:protocol scheme S verify=none\n", "duplicate abft:protocol scheme"},
		{"package p\n\n// abft:protocol driver steps=a\n// abft:protocol driver steps=b\nfunc f() {}\n", "duplicate abft:protocol driver"},
	}
	for _, c := range cases {
		p := parseProtocolSrc(t, c.src)
		found := false
		for _, e := range p.Errors {
			if strings.Contains(e.Message, c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("source %q: no error containing %q (got %+v)", c.src, c.want, p.Errors)
		}
	}
}

// TestParseProtocolIgnoresProse pins that ordinary comments mentioning
// the marker mid-sentence are not parsed as directives.
func TestParseProtocolIgnoresProse(t *testing.T) {
	p := parseProtocolSrc(t, `package p

// The abft:protocol convention is documented in docs/LINTING.md; this
// sentence is prose, not a directive, because the marker is not at the
// start of the line... except it is here, so keep markers flush-left
// only in real directives.
func f() {}
`)
	if len(p.Errors) != 0 || len(p.Drivers) != 0 || len(p.Schemes) != 0 {
		t.Errorf("prose comment parsed as directive: %+v", p)
	}
}
