package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one analysis unit: either a package's library+in-package
// test files, or the external _test package sharing its directory.
type Package struct {
	// ImportPath is the directory-based import path. The external test
	// unit of a directory reports the same ImportPath with ExternalTest
	// set, so scope predicates treat both alike.
	ImportPath   string
	ExternalTest bool
	Fset         *token.FileSet
	Files        []*ast.File
	Types        *types.Package
	TypesInfo    *types.Info
	// Errors holds type-checking problems. Analyzers still run on a
	// package with errors (type info is partial), but drivers should
	// surface them: an unsound load must not masquerade as a clean run.
	Errors []error
}

// Loader parses and type-checks packages of a single module without
// shelling out to the go tool. Standard-library imports are resolved
// by the compiler's source importer; module-local imports are resolved
// from the module tree itself.
type Loader struct {
	fset    *token.FileSet
	modPath string
	modRoot string
	base    string
	std     types.ImporterFrom
	cache   map[string]*types.Package
	loading map[string]bool
}

// NewLoader returns a Loader anchored at dir, which must live inside a
// module (a go.mod is searched for upward from dir).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		fset:    fset,
		modPath: modPath,
		modRoot: root,
		base:    abs,
		cache:   map[string]*types.Package{},
		loading: map[string]bool{},
	}
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	l.std = std
	return l, nil
}

// Fset returns the file set shared by every package this loader loads.
func (l *Loader) Fset() *token.FileSet { return l.fset }

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Load resolves patterns relative to the loader's base directory and
// returns every analysis unit they name. Supported patterns are a
// directory path or a "dir/..." wildcard ("./..." loads the whole
// tree below the base directory). testdata, hidden, and underscore
// directories are skipped, matching go tool conventions.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirSet := map[string]bool{}
	for _, orig := range patterns {
		pat := orig
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" {
				pat = "."
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.base, dir)
		}
		matched := 0
		if !recursive {
			if hasGoFiles(dir) {
				dirSet[dir] = true
				matched++
			}
		} else {
			err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(p) {
					dirSet[p] = true
					matched++
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		// A pattern that names nothing is almost always a typo; a lint
		// driver that silently checks zero packages would green-light CI
		// while linting nothing.
		if matched == 0 {
			return nil, fmt.Errorf("analysis: pattern %q matched no Go packages", orig)
		}
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		units, err := l.LoadDir(dir, l.importPathFor(dir))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, units...)
	}
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil || rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

// LoadDir parses and type-checks the directory dir as importPath,
// returning one unit for the package itself (library plus in-package
// test files) and, when present, a second unit for the external _test
// package.
func (l *Loader) LoadDir(dir, importPath string) ([]*Package, error) {
	files, err := l.parseDir(dir, true)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	baseName := ""
	for _, f := range files {
		if !strings.HasSuffix(f.Name.Name, "_test") {
			baseName = f.Name.Name
			break
		}
	}
	var base, external []*ast.File
	for _, f := range files {
		if baseName == "" || f.Name.Name == baseName {
			base = append(base, f)
		} else {
			external = append(external, f)
		}
	}
	var units []*Package
	if len(base) > 0 {
		// Note: this unit (library + in-package tests) is checked
		// fresh and deliberately NOT cached as the importable form of
		// importPath — importers (including the external test unit
		// below) must all see the one library-only package that
		// l.Import builds, or type identities fork.
		units = append(units, l.check(importPath, base))
	}
	if len(external) > 0 {
		ext := l.check(importPath, external)
		ext.ExternalTest = true
		units = append(units, ext)
	}
	return units, nil
}

func (l *Loader) parseDir(dir string, includeTests bool) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func (l *Loader) check(importPath string, files []*ast.File) *Package {
	pkg := &Package{
		ImportPath: importPath,
		Fset:       l.fset,
		Files:      files,
		TypesInfo: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.Errors = append(pkg.Errors, err) },
	}
	tpkg, err := conf.Check(importPath, l.fset, files, pkg.TypesInfo)
	if err != nil && len(pkg.Errors) == 0 {
		pkg.Errors = append(pkg.Errors, err)
	}
	pkg.Types = tpkg
	return pkg
}

// Import resolves one import path for the type checker: module-local
// packages are type-checked from source (library files only), anything
// else is delegated to the standard library's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.modRoot, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		if l.loading[path] {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
		l.loading[path] = true
		defer delete(l.loading, path)
		pdir := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modPath)))
		files, err := l.parseDir(pdir, false)
		if err != nil {
			return nil, fmt.Errorf("analysis: importing %s: %w", path, err)
		}
		pkg := l.check(path, files)
		if len(pkg.Errors) > 0 {
			return nil, fmt.Errorf("analysis: importing %s: %v", path, pkg.Errors[0])
		}
		l.cache[path] = pkg.Types
		return pkg.Types, nil
	}
	p, err := l.std.ImportFrom(path, dir, mode)
	if err != nil {
		return nil, err
	}
	l.cache[path] = p
	return p, nil
}
