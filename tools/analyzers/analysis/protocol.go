package analysis

// Declarative ABFT protocol specs. The verification-placement
// (verifyread) and checksum-maintenance (chkflow) analyzers used to
// hard-code which driver functions exist, which step methods they
// guard, and which schemes impose which verification discipline. That
// knowledge now lives with the code being checked, as `// abft:protocol`
// annotations in internal/core, and both analyzers parse it into the
// same tables here. A new driver (the roadmap's LU/QR registry)
// declares its protocol and gets both analyzers for free.
//
// Grammar (one directive per comment line):
//
//	// abft:protocol driver steps=<step,step,...>
//	// abft:protocol scheme <SchemeConst> [ft] verify=<discipline>
//
// A driver directive must sit in the doc comment of the driver
// function; its steps name the step methods (in program order) whose
// launches fall under the verification and maintenance disciplines. A
// scheme directive may appear in any comment — by convention it sits
// on the Scheme constant it describes — and declares whether the
// scheme is fault tolerant and which verification discipline it
// imposes: pre-read (Enhanced), post-write (Online), scrubbed
// (post-write plus periodic scrub, enforced dynamically), final
// (Offline), or none.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ProtocolMarker introduces a protocol directive in a comment line.
const ProtocolMarker = "abft:protocol"

// Verification disciplines a scheme directive may declare.
const (
	VerifyPreRead   = "pre-read"
	VerifyPostWrite = "post-write"
	VerifyScrubbed  = "scrubbed"
	VerifyFinal     = "final"
	VerifyNone      = "none"
)

// DriverSpec is one declared protocol driver.
type DriverSpec struct {
	Name  string   // driver function name
	Steps []string // protected step methods, in program order
	Pos   token.Pos
}

// SchemeSpec is one declared scheme discipline.
type SchemeSpec struct {
	Name   string // Scheme constant name, e.g. "SchemeEnhanced"
	FT     bool   // value of Scheme.FaultTolerant() under this scheme
	Verify string // one of the Verify* disciplines
	Pos    token.Pos
}

// Protocol is the parsed protocol of one package.
type Protocol struct {
	Drivers []DriverSpec
	Schemes []SchemeSpec
	// Errors lists malformed or misplaced directives; analyzers report
	// them so a typo cannot silently disable checking.
	Errors []Diagnostic
}

// Driver returns the spec declared for the named function.
func (p *Protocol) Driver(name string) (DriverSpec, bool) {
	for _, d := range p.Drivers {
		if d.Name == name {
			return d, true
		}
	}
	return DriverSpec{}, false
}

// Scheme returns the spec declared for the named scheme constant.
func (p *Protocol) Scheme(name string) (SchemeSpec, bool) {
	for _, s := range p.Schemes {
		if s.Name == name {
			return s, true
		}
	}
	return SchemeSpec{}, false
}

// StepTable renders the drivers as the map verifyread's hard-coded
// protocol table used: driver name to step list. The drift test pins
// this against the historical literal.
func (p *Protocol) StepTable() map[string][]string {
	t := make(map[string][]string, len(p.Drivers))
	for _, d := range p.Drivers {
		t[d.Name] = append([]string(nil), d.Steps...)
	}
	return t
}

// FTSchemes returns the schemes declared fault tolerant.
func (p *Protocol) FTSchemes() []SchemeSpec {
	var out []SchemeSpec
	for _, s := range p.Schemes {
		if s.FT {
			out = append(out, s)
		}
	}
	return out
}

// ParseProtocol extracts the protocol declared by the files' comments.
// Driver directives are matched to the function whose doc comment
// holds them; scheme directives are collected from every comment
// group. Nothing is reported here — the caller decides what to do
// with Errors (analyzers report them verbatim).
func ParseProtocol(files []*ast.File) *Protocol {
	p := &Protocol{}
	driverLines := map[string]bool{} // directive lines consumed by a FuncDecl doc

	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				rest, ok := directiveLine(c.Text)
				if !ok || !strings.HasPrefix(rest, "driver") {
					continue
				}
				driverLines[c.Text] = true
				p.parseDriver(fd.Name.Name, rest, c.Pos())
			}
		}
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := directiveLine(c.Text)
				if !ok {
					continue
				}
				switch {
				case strings.HasPrefix(rest, "scheme"):
					p.parseScheme(rest, c.Pos())
				case strings.HasPrefix(rest, "driver"):
					if !driverLines[c.Text] {
						p.errorf(c.Pos(), "abft:protocol driver directive is not attached to a function declaration; move it into the driver's doc comment")
					}
				default:
					p.errorf(c.Pos(), "unknown abft:protocol directive %q; want `driver steps=...` or `scheme <Name> [ft] verify=...`", rest)
				}
			}
		}
	}
	return p
}

func (p *Protocol) parseDriver(name, rest string, pos token.Pos) {
	if _, dup := p.Driver(name); dup {
		p.errorf(pos, "duplicate abft:protocol driver directive for %s", name)
		return
	}
	spec := DriverSpec{Name: name, Pos: pos}
	for _, field := range strings.Fields(rest)[1:] {
		val, ok := strings.CutPrefix(field, "steps=")
		if !ok {
			p.errorf(pos, "abft:protocol driver: unknown field %q; want steps=<step,step,...>", field)
			return
		}
		for _, s := range strings.Split(val, ",") {
			if s == "" {
				p.errorf(pos, "abft:protocol driver: empty step name in %q", val)
				return
			}
			spec.Steps = append(spec.Steps, s)
		}
	}
	if len(spec.Steps) == 0 {
		p.errorf(pos, "abft:protocol driver directive for %s declares no steps", name)
		return
	}
	p.Drivers = append(p.Drivers, spec)
}

func (p *Protocol) parseScheme(rest string, pos token.Pos) {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		p.errorf(pos, "abft:protocol scheme directive needs a scheme constant name")
		return
	}
	spec := SchemeSpec{Name: fields[1], Pos: pos}
	if _, dup := p.Scheme(spec.Name); dup {
		p.errorf(pos, "duplicate abft:protocol scheme directive for %s", spec.Name)
		return
	}
	for _, field := range fields[2:] {
		if field == "ft" {
			spec.FT = true
			continue
		}
		val, ok := strings.CutPrefix(field, "verify=")
		if !ok {
			p.errorf(pos, "abft:protocol scheme: unknown field %q; want `ft` or verify=<discipline>", field)
			return
		}
		spec.Verify = val
	}
	switch spec.Verify {
	case VerifyPreRead, VerifyPostWrite, VerifyScrubbed, VerifyFinal, VerifyNone:
	case "":
		p.errorf(pos, "abft:protocol scheme directive for %s declares no verify= discipline", spec.Name)
		return
	default:
		p.errorf(pos, "abft:protocol scheme %s: unknown verify discipline %q", spec.Name, spec.Verify)
		return
	}
	p.Schemes = append(p.Schemes, spec)
}

func (p *Protocol) errorf(pos token.Pos, format string, args ...any) {
	p.Errors = append(p.Errors, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// directiveLine strips the comment syntax and the protocol marker,
// returning the directive payload.
func directiveLine(text string) (string, bool) {
	line := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	line = strings.TrimSuffix(strings.TrimPrefix(line, "/*"), "*/")
	line = strings.TrimSpace(line)
	rest, ok := strings.CutPrefix(line, ProtocolMarker)
	if !ok {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// ---- scheme-specialized condition resolution ------------------------

// SchemeResolver builds the branch-condition oracle that specializes a
// driver's CFG to one scheme: scheme comparisons (`sch == SchemeX`),
// `sch.FaultTolerant()`, and single-definition boolean locals derived
// from them resolve under the assumption that the scheme expression
// holds exactly the spec's constant; the K-gate (`j % K == 0`) and
// iteration-progress guards (`j > 0`) are granted, since the
// disciplines are judged on steady-state amortized iterations
// (§V-C). schemePkg is the import path declaring the named Scheme
// type. Conditions outside this vocabulary stay unresolved and keep
// both edges.
func SchemeResolver(info *types.Info, du *DefUse, schemePkg string, sp SchemeSpec) func(ast.Expr) (bool, bool) {
	var eval func(e ast.Expr, depth int) (bool, bool)
	eval = func(e ast.Expr, depth int) (bool, bool) {
		if depth > 8 {
			return false, false
		}
		switch e := e.(type) {
		case *ast.ParenExpr:
			return eval(e.X, depth)
		case *ast.UnaryExpr:
			if e.Op.String() == "!" {
				if v, ok := eval(e.X, depth+1); ok {
					return !v, true
				}
			}
		case *ast.BinaryExpr:
			switch e.Op.String() {
			case "&&":
				lv, lk := eval(e.X, depth+1)
				rv, rk := eval(e.Y, depth+1)
				if (lk && !lv) || (rk && !rv) {
					return false, true
				}
				if lk && rk {
					return lv && rv, true
				}
			case "||":
				lv, lk := eval(e.X, depth+1)
				rv, rk := eval(e.Y, depth+1)
				if (lk && lv) || (rk && rv) {
					return true, true
				}
				if lk && rk {
					return false, true
				}
			case "==", "!=":
				if v, ok := schemeTest(info, e.X, e.Y, schemePkg, sp.Name); ok {
					if e.Op.String() == "!=" {
						return !v, true
					}
					return v, true
				}
				// K-gate: j % K == 0 is granted (§V-C permits the
				// amortized discipline).
				if e.Op.String() == "==" && isModulo(e.X) && isZero(e.Y) {
					return true, true
				}
			case ">":
				// Iteration-progress guards (j > 0, m > 0) are granted:
				// the discipline is judged on steady-state iterations.
				if isZero(e.Y) {
					if _, ok := e.X.(*ast.Ident); ok {
						return true, true
					}
				}
			}
		case *ast.CallExpr:
			// sch.FaultTolerant() has a fixed value per scheme.
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "FaultTolerant" {
				if tv, ok := info.Types[sel.X]; ok && isSchemeType(tv.Type, schemePkg) {
					return sp.FT, true
				}
			}
		case *ast.Ident:
			// A boolean local with exactly one definition inherits the
			// resolved value of its defining expression (ft, online,
			// gate in the drivers).
			obj := info.Uses[e]
			if obj == nil {
				break
			}
			if defs := du.Defs[obj]; len(defs) == 1 && defs[0] != nil {
				return eval(defs[0], depth+1)
			}
		}
		return false, false
	}
	return func(cond ast.Expr) (bool, bool) { return eval(cond, 0) }
}

// schemeTest resolves `X == Y` where one side is a Scheme constant and
// the other a non-constant Scheme expression: under the
// specialization, the expression holds exactly the assumed scheme.
func schemeTest(info *types.Info, x, y ast.Expr, schemePkg, assumed string) (bool, bool) {
	if name, ok := schemeConst(info, x, schemePkg); ok && isSchemeExpr(info, y, schemePkg) {
		return name == assumed, true
	}
	if name, ok := schemeConst(info, y, schemePkg); ok && isSchemeExpr(info, x, schemePkg) {
		return name == assumed, true
	}
	return false, false
}

func schemeConst(info *types.Info, e ast.Expr, schemePkg string) (string, bool) {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	c, ok := info.Uses[id].(*types.Const)
	if !ok || !isSchemeType(c.Type(), schemePkg) {
		return "", false
	}
	return c.Name(), true
}

func isSchemeExpr(info *types.Info, e ast.Expr, schemePkg string) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	return isSchemeType(tv.Type, schemePkg)
}

func isSchemeType(t types.Type, schemePkg string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Scheme" && obj.Pkg() != nil && obj.Pkg().Path() == schemePkg
}

func isModulo(e ast.Expr) bool {
	b, ok := e.(*ast.BinaryExpr)
	return ok && b.Op.String() == "%"
}

func isZero(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Value == "0"
}
