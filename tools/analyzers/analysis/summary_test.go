package analysis

import (
	"go/ast"
	"testing"
)

const sumSrc = `package p

func mark() {}
func other() {}

// always establishes the fact unconditionally.
func always() { mark() }

// maybe establishes it only on one branch.
func maybe(b bool) {
	if b {
		mark()
	}
}

// looped establishes it only inside a loop body: zero-trip semantics
// make it May but not Must.
func looped(n int) {
	for i := 0; i < n; i++ {
		mark()
	}
}

// ranged is the range-loop variant of looped.
func ranged(xs []int) {
	for range xs {
		mark()
	}
}

// viaCallee inherits Must from an unconditional callee.
func viaCallee() { always() }

// viaMaybe inherits only May from a conditional callee.
func viaMaybe(b bool) { maybe(b) }

// inClosure builds a closure that marks; the closure is folded into
// the declaration for May, but the statement node itself establishes
// nothing, so Must stays empty.
func inClosure() {
	f := func() { mark() }
	_ = f
}

// earlyReturn marks after a possible bail-out.
func earlyReturn(b bool) {
	if b {
		return
	}
	mark()
}

// recurA/recurB are mutually recursive; both can reach mark.
func recurA(n int) {
	if n > 0 {
		recurB(n - 1)
	}
}
func recurB(n int) {
	mark()
	recurA(n)
}

func clean() { other() }
`

const factMark Facts = 1

func markClassifier(n ast.Node) Facts {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return 0
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
		return factMark
	}
	return 0
}

func summarizeSrc(t *testing.T) (*Pass, *CallGraph, map[string]*Summary) {
	t.Helper()
	pass := typecheckPass(t, sumSrc)
	cg := BuildCallGraph(pass)
	sums := cg.Summarize(pass.TypesInfo, markClassifier)
	byName := map[string]*Summary{}
	for fn, s := range sums {
		byName[fn.Name()] = s
	}
	return pass, cg, byName
}

func TestSummarizeMay(t *testing.T) {
	_, _, sums := summarizeSrc(t)
	for _, name := range []string{"always", "maybe", "looped", "ranged", "viaCallee", "viaMaybe", "inClosure", "earlyReturn", "recurA", "recurB"} {
		if !sums[name].May.Has(factMark) {
			t.Errorf("%s should May-establish the fact", name)
		}
	}
	for _, name := range []string{"clean", "other"} {
		if sums[name].May.Has(factMark) {
			t.Errorf("%s must not May-establish the fact", name)
		}
	}
}

func TestSummarizeMust(t *testing.T) {
	_, _, sums := summarizeSrc(t)
	for _, name := range []string{"always", "viaCallee", "recurB"} {
		if !sums[name].Must.Has(factMark) {
			t.Errorf("%s should Must-establish the fact", name)
		}
	}
	// Zero-trip loop edges and conditional paths demote the fact to May.
	for _, name := range []string{"maybe", "looped", "ranged", "viaMaybe", "inClosure", "earlyReturn", "recurA", "clean"} {
		if sums[name].Must.Has(factMark) {
			t.Errorf("%s must not Must-establish the fact (some path skips it)", name)
		}
	}
}

func TestNodeFactsMayVsMust(t *testing.T) {
	pass, cg, _ := summarizeSrc(t)
	sums := cg.Summarize(pass.TypesInfo, markClassifier)

	var fd *ast.FuncDecl
	for _, d := range pass.Files[0].Decls {
		if f, ok := d.(*ast.FuncDecl); ok && f.Name.Name == "viaMaybe" {
			fd = f
		}
	}
	g := BuildCFG(fd.Body)

	hasFact := func(nf map[*Node]Facts) bool {
		for _, f := range nf {
			if f.Has(factMark) {
				return true
			}
		}
		return false
	}
	if !hasFact(NodeFacts(g, pass.TypesInfo, sums, true, markClassifier)) {
		t.Error("May-mode node facts should credit the maybe(b) call site")
	}
	if hasFact(NodeFacts(g, pass.TypesInfo, sums, false, markClassifier)) {
		t.Error("Must-mode node facts must not credit a conditional callee")
	}
}

func TestSCCsCalleesFirst(t *testing.T) {
	pass := typecheckPass(t, sumSrc)
	cg := BuildCallGraph(pass)
	pos := map[string]int{}
	var flat [][]string
	for i, scc := range cg.sccs() {
		var names []string
		for _, fn := range scc {
			pos[fn.Name()] = i
			names = append(names, fn.Name())
		}
		flat = append(flat, names)
	}
	if pos["mark"] > pos["always"] || pos["always"] > pos["viaCallee"] {
		t.Errorf("callees must be emitted before callers: %v", flat)
	}
	if pos["recurA"] != pos["recurB"] {
		t.Errorf("mutually recursive functions must share an SCC: %v", flat)
	}
}
