package analysis

// Reaching-definition support for the protocol analyzers. The
// functions they inspect are short and assign sync objects (recorded
// stream events) exactly once, so a flow-insensitive definition
// collection is precise enough in practice: an analyzer that needs
// "which expressions can this identifier hold" unions every
// assignment, and path-sensitive questions go through CFG.Reachable.

import (
	"go/ast"
	"go/types"
)

// DefUse summarizes the local variables of one function.
type DefUse struct {
	// Defs maps each local object to every expression assigned to it
	// (from :=, =, and var declarations with initializers). A variable
	// declared without an initializer has an entry with a nil slice.
	Defs map[types.Object][]ast.Expr
	// Uses counts reads of each object (identifier occurrences that
	// are not definitions or assignment targets).
	Uses map[types.Object]int
	// Params holds the function's parameters (and receiver), which are
	// definitions whose value comes from the caller.
	Params map[types.Object]bool
}

// CollectDefUse scans fn's body, including nested function literals
// (a closure reading a variable is a real use).
func CollectDefUse(fn *ast.FuncDecl, info *types.Info) *DefUse {
	du := &DefUse{
		Defs:   map[types.Object][]ast.Expr{},
		Uses:   map[types.Object]int{},
		Params: map[types.Object]bool{},
	}
	addParams := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					du.Params[obj] = true
				}
			}
		}
	}
	addParams(fn.Recv)
	if fn.Type != nil {
		addParams(fn.Type.Params)
		addParams(fn.Type.Results)
	}
	if fn.Body == nil {
		return du
	}

	assigned := map[*ast.Ident]bool{}
	record := func(lhs []ast.Expr, rhs []ast.Expr) {
		for i, l := range lhs {
			id, ok := l.(*ast.Ident)
			if !ok {
				continue // field or index assignment: not a local def
			}
			assigned[id] = true
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil || id.Name == "_" {
				continue
			}
			var v ast.Expr
			if len(rhs) == len(lhs) {
				v = rhs[i]
			} else if len(rhs) == 1 {
				v = rhs[0] // multi-value assignment: every LHS sees the call
			}
			if v != nil {
				du.Defs[obj] = append(du.Defs[obj], v)
			} else if _, ok := du.Defs[obj]; !ok {
				du.Defs[obj] = nil
			}
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			record(n.Lhs, n.Rhs)
		case *ast.RangeStmt:
			var lhs []ast.Expr
			if n.Key != nil {
				lhs = append(lhs, n.Key)
			}
			if n.Value != nil {
				lhs = append(lhs, n.Value)
			}
			record(lhs, nil)
		case *ast.ValueSpec:
			var lhs []ast.Expr
			for _, name := range n.Names {
				lhs = append(lhs, name)
			}
			record(lhs, n.Values)
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || assigned[id] {
			return true
		}
		if obj := info.Uses[id]; obj != nil {
			du.Uses[obj]++
		}
		return true
	})
	return du
}
