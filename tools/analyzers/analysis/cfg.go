package analysis

// This file grows the framework from per-file syntax checking into
// flow-aware analysis: a per-function control-flow graph at statement
// granularity, dominator sets over it, and a guided reachability
// primitive. The shapes deliberately stay small — functions in this
// repository are a few hundred statements at most — so the dominator
// computation is the plain iterative data-flow algorithm over dense
// bool sets and reachability is a DFS.
//
// Two features exist specifically for protocol analyzers:
//
//   - Loop heads are duplicated (a zero-trip head and a back-edge
//     head) so an analysis can choose between exact semantics (a loop
//     body may run zero times) and at-least-once semantics (prune the
//     EdgeZeroTrip edges). The simulated-CUDA code paths this serves
//     iterate over stream fans and block lists that are non-empty by
//     construction, and requiring a dominating Wait to sit outside
//     every loop would force contortions in correct code.
//   - Reachability accepts a condition resolver, letting an analyzer
//     specialize the graph to one protocol variant (e.g. assume
//     sch == SchemeEnhanced) without rebuilding it.

import (
	"go/ast"
	"go/token"
)

// NodeKind classifies CFG nodes.
type NodeKind int

const (
	// NodeEntry is the unique function entry point.
	NodeEntry NodeKind = iota
	// NodeExit is the unique function exit; every return and the final
	// fall-off edge lead here.
	NodeExit
	// NodeStmt is one non-branching statement.
	NodeStmt
	// NodeCond is a branch decision; Cond holds the controlling
	// expression (nil for an unconditional loop head or a range head,
	// where no boolean expression exists to resolve).
	NodeCond
)

// EdgeKind classifies CFG edges.
type EdgeKind int

const (
	// EdgeSeq is ordinary fallthrough control flow.
	EdgeSeq EdgeKind = iota
	// EdgeTrue leaves a NodeCond when its condition holds.
	EdgeTrue
	// EdgeFalse leaves a NodeCond when its condition fails.
	EdgeFalse
	// EdgeZeroTrip leaves a loop's entry head when the body runs zero
	// times. Analyses that may assume loops execute at least once
	// (PathOpts.SkipZeroTrip) prune exactly these edges; the loop's
	// normal exit remains reachable through the back-edge head.
	EdgeZeroTrip
)

// Edge is one directed CFG edge.
type Edge struct {
	To   *Node
	Kind EdgeKind
}

// Node is one CFG vertex.
type Node struct {
	Index int
	Kind  NodeKind
	// Stmt is the statement this node represents (NodeStmt), or the
	// enclosing loop/switch statement for heads and headers.
	Stmt ast.Stmt
	// Cond is the controlling expression of a NodeCond, nil when the
	// branch has no boolean condition (range loops, bare for).
	Cond  ast.Expr
	Succs []Edge
	// Preds lists incoming edges; Edge.To is the predecessor node and
	// Edge.Kind the kind of the edge leaving it.
	Preds []Edge
}

// Pos returns a position for diagnostics anchored at the node.
func (n *Node) Pos() token.Pos {
	switch {
	case n.Cond != nil:
		return n.Cond.Pos()
	case n.Stmt != nil:
		return n.Stmt.Pos()
	}
	return token.NoPos
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry *Node
	Exit  *Node
	Nodes []*Node

	stmtNode map[ast.Stmt]*Node
}

// NodeFor returns the node built for stmt, or nil. Loop and switch
// statements map to their entry head.
func (g *CFG) NodeFor(stmt ast.Stmt) *Node { return g.stmtNode[stmt] }

// dangling is an edge whose target is not yet known.
type dangling struct {
	from *Node
	kind EdgeKind
}

type loopFrame struct {
	label    string
	cont     *Node      // continue target (post statement or back-edge head)
	breaks   []dangling // collected break edges, joined to the loop exit
	isSwitch bool       // switch/select frame: break only, no continue
}

type gotoRef struct {
	node  *Node
	label string
}

type builder struct {
	g      *CFG
	frames []*loopFrame
	// label bookkeeping for goto: labelNodes maps a label to the first
	// node of its statement; gotos are patched after the build.
	labelNodes map[string]*Node
	gotos      []gotoRef
	// pendingLabel names the label wrapping the statement about to be
	// built, so its loop frame (and first node) can be tagged.
	pendingLabel string
}

// BuildCFG constructs the control-flow graph of body. A nil body (a
// declaration without implementation) yields a graph with only entry
// and exit.
func BuildCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{stmtNode: map[ast.Stmt]*Node{}}
	g.Entry = g.newNode(NodeEntry)
	g.Exit = g.newNode(NodeExit)
	b := &builder{g: g, labelNodes: map[string]*Node{}}
	out := []dangling{{g.Entry, EdgeSeq}}
	if body != nil {
		out = b.stmtList(body.List, out)
	}
	b.connect(out, g.Exit)
	for _, ref := range b.gotos {
		target := b.labelNodes[ref.label]
		if target == nil {
			target = g.Exit // label outside the built body; be conservative
		}
		b.link(ref.node, target, EdgeSeq)
	}
	for _, n := range g.Nodes {
		for _, e := range n.Succs {
			e.To.Preds = append(e.To.Preds, Edge{To: n, Kind: e.Kind})
		}
	}
	return g
}

func (g *CFG) newNode(kind NodeKind) *Node {
	n := &Node{Index: len(g.Nodes), Kind: kind}
	g.Nodes = append(g.Nodes, n)
	return n
}

func (b *builder) stmtNode(s ast.Stmt) *Node {
	n := b.g.newNode(NodeStmt)
	n.Stmt = s
	if _, ok := b.g.stmtNode[s]; !ok {
		b.g.stmtNode[s] = n
	}
	if b.pendingLabel != "" {
		b.labelNodes[b.pendingLabel] = n
		b.pendingLabel = ""
	}
	return n
}

func (b *builder) condNode(s ast.Stmt, cond ast.Expr) *Node {
	n := b.g.newNode(NodeCond)
	n.Stmt = s
	n.Cond = cond
	if s != nil {
		if _, ok := b.g.stmtNode[s]; !ok {
			b.g.stmtNode[s] = n
		}
	}
	if b.pendingLabel != "" {
		b.labelNodes[b.pendingLabel] = n
		b.pendingLabel = ""
	}
	return n
}

func (b *builder) link(from, to *Node, kind EdgeKind) {
	from.Succs = append(from.Succs, Edge{To: to, Kind: kind})
}

func (b *builder) connect(in []dangling, to *Node) {
	for _, d := range in {
		b.link(d.from, to, d.kind)
	}
}

func (b *builder) stmtList(list []ast.Stmt, in []dangling) []dangling {
	for _, s := range list {
		in = b.stmt(s, in)
	}
	return in
}

// frameFor finds the innermost frame a break/continue targets.
func (b *builder) frameFor(label string, isContinue bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if isContinue && f.isSwitch {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt, in []dangling) []dangling {
	switch s := s.(type) {
	case nil:
		return in
	case *ast.BlockStmt:
		return b.stmtList(s.List, in)
	case *ast.EmptyStmt:
		return in
	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		out := b.stmt(s.Stmt, in)
		b.pendingLabel = ""
		return out
	case *ast.ReturnStmt:
		n := b.stmtNode(s)
		b.connect(in, n)
		b.link(n, b.g.Exit, EdgeSeq)
		return nil
	case *ast.BranchStmt:
		return b.branch(s, in)
	case *ast.IfStmt:
		if s.Init != nil {
			in = b.stmt(s.Init, in)
		}
		c := b.condNode(s, s.Cond)
		b.connect(in, c)
		out := b.stmtList(s.Body.List, []dangling{{c, EdgeTrue}})
		if s.Else != nil {
			out = append(out, b.stmt(s.Else, []dangling{{c, EdgeFalse}})...)
		} else {
			out = append(out, dangling{c, EdgeFalse})
		}
		return out
	case *ast.ForStmt:
		if s.Init != nil {
			// A label on the loop must not bind to the init node.
			lbl := b.pendingLabel
			b.pendingLabel = ""
			in = b.stmt(s.Init, in)
			b.pendingLabel = lbl
		}
		return b.loop(s, s.Cond, s.Post, s.Body, in)
	case *ast.RangeStmt:
		return b.loop(s, nil, nil, s.Body, in)
	case *ast.SwitchStmt:
		if s.Init != nil {
			in = b.stmt(s.Init, in)
		}
		return b.switchClauses(s, s.Body.List, s.Body.List != nil && hasDefault(s.Body.List), in)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			in = b.stmt(s.Init, in)
		}
		return b.switchClauses(s, s.Body.List, hasDefault(s.Body.List), in)
	case *ast.SelectStmt:
		// A select with no default blocks until one clause fires, so
		// control only continues out of a clause body.
		return b.switchClauses(s, s.Body.List, hasDefault(s.Body.List) || len(s.Body.List) == 0, in)
	default:
		// Assignments, expression/send/inc-dec statements, decls,
		// defer, go: one plain node each. Function literals inside them
		// are separate functions and deliberately not traversed.
		n := b.stmtNode(s)
		b.connect(in, n)
		return []dangling{{n, EdgeSeq}}
	}
}

func (b *builder) branch(s *ast.BranchStmt, in []dangling) []dangling {
	n := b.stmtNode(s)
	b.connect(in, n)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if f := b.frameFor(label, false); f != nil {
			f.breaks = append(f.breaks, dangling{n, EdgeSeq})
			return nil
		}
	case token.CONTINUE:
		if f := b.frameFor(label, true); f != nil {
			b.link(n, f.cont, EdgeSeq)
			return nil
		}
	case token.GOTO:
		b.gotos = append(b.gotos, gotoRef{n, label})
		return nil
	case token.FALLTHROUGH:
		// Handled by switchClauses, which feeds the dangling edge into
		// the next clause; reaching here means a stray fallthrough.
		return []dangling{{n, EdgeSeq}}
	}
	// Unresolvable target: be conservative and flow to exit.
	b.link(n, b.g.Exit, EdgeSeq)
	return nil
}

// loop builds a for/range loop with duplicated heads: head1 decides
// whether the body runs at all (its exit edge is EdgeZeroTrip), head2
// decides each repeat (its exit edge is EdgeFalse).
func (b *builder) loop(s ast.Stmt, cond ast.Expr, post ast.Stmt, body *ast.BlockStmt, in []dangling) []dangling {
	head1 := b.condNode(s, cond)
	label := "" // the pendingLabel was consumed by head1's creation
	for l, n := range b.labelNodes {
		if n == head1 {
			label = l
		}
	}
	head2 := b.condNode(nil, cond)
	head2.Stmt = s
	b.connect(in, head1)

	var postNode *Node
	cont := head2
	if post != nil {
		postNode = b.stmtNode(post)
		b.link(postNode, head2, EdgeSeq)
		cont = postNode
	}

	frame := &loopFrame{label: label, cont: cont}
	b.frames = append(b.frames, frame)
	bodyOut := b.stmtList(body.List, []dangling{{head1, EdgeTrue}, {head2, EdgeTrue}})
	b.frames = b.frames[:len(b.frames)-1]
	b.connect(bodyOut, cont)

	out := frame.breaks
	if cond != nil || isRange(s) {
		out = append(out, dangling{head1, EdgeZeroTrip}, dangling{head2, EdgeFalse})
	}
	return out
}

func isRange(s ast.Stmt) bool {
	_, ok := s.(*ast.RangeStmt)
	return ok
}

func hasDefault(clauses []ast.Stmt) bool {
	for _, c := range clauses {
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				return true
			}
		case *ast.CommClause:
			if c.Comm == nil {
				return true
			}
		}
	}
	return false
}

// switchClauses builds switch/type-switch/select dispatch: a header
// node fans out to every clause; clause bodies rejoin after the
// statement. Case conditions are not resolved — protocol code in this
// repository branches on schemes with if chains, so per-case
// specialization is not needed.
func (b *builder) switchClauses(s ast.Stmt, clauses []ast.Stmt, exhaustive bool, in []dangling) []dangling {
	header := b.condNode(s, nil)
	b.connect(in, header)
	frame := &loopFrame{isSwitch: true}
	b.frames = append(b.frames, frame)

	var out []dangling
	var fall []dangling // fallthrough edges into the next clause
	for _, cs := range clauses {
		var body []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			body = cs.Body
		case *ast.CommClause:
			body = cs.Body
		}
		clauseIn := append([]dangling{{header, EdgeSeq}}, fall...)
		fall = nil
		clauseOut := b.stmtList(body, clauseIn)
		// A trailing fallthrough statement's dangling edge feeds the
		// next clause instead of the join.
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fall = clauseOut
				continue
			}
		}
		out = append(out, clauseOut...)
	}
	out = append(out, fall...) // fallthrough in the last clause: join
	b.frames = b.frames[:len(b.frames)-1]
	out = append(out, frame.breaks...)
	if !exhaustive {
		out = append(out, dangling{header, EdgeSeq})
	}
	return out
}

// ---- queries -------------------------------------------------------

// PathOpts guides Reachable and Dominators along a subset of paths.
type PathOpts struct {
	// Resolve, when non-nil, maps a branch condition to a known truth
	// value; edges contradicting a known value are pruned. Conditions
	// it reports unknown keep both edges.
	Resolve func(cond ast.Expr) (value, known bool)
	// Barrier marks nodes traversal must not continue through. Barrier
	// nodes themselves still appear in the reachable set.
	Barrier func(*Node) bool
	// SkipZeroTrip prunes EdgeZeroTrip edges, i.e. assumes every loop
	// body executes at least once.
	SkipZeroTrip bool
}

// edgeAllowed applies resolution and zero-trip pruning to one edge.
func (o *PathOpts) edgeAllowed(from *Node, e Edge) bool {
	if o.SkipZeroTrip && e.Kind == EdgeZeroTrip {
		return false
	}
	if o.Resolve != nil && from.Kind == NodeCond && from.Cond != nil {
		if v, known := o.Resolve(from.Cond); known {
			if v && (e.Kind == EdgeFalse || e.Kind == EdgeZeroTrip) {
				return false
			}
			if !v && e.Kind == EdgeTrue {
				return false
			}
		}
	}
	return true
}

// Reachable returns every node reachable from `from` along allowed
// edges. `from` itself is included only if a cycle returns to it.
func (g *CFG) Reachable(from *Node, opts PathOpts) map[*Node]bool {
	seen := map[*Node]bool{}
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, e := range n.Succs {
			if !opts.edgeAllowed(n, e) || seen[e.To] {
				continue
			}
			seen[e.To] = true
			if opts.Barrier != nil && opts.Barrier(e.To) {
				continue
			}
			walk(e.To)
		}
	}
	walk(from)
	return seen
}

// Dominators computes, for every node, the set of nodes that lie on
// every path from entry to it (including itself), by the standard
// iterative data-flow algorithm. Edges pruned by opts (condition
// resolution, zero-trip skipping) are excluded, so dominance can be
// asked under a protocol specialization. Barrier is ignored. Nodes
// unreachable from entry under opts dominate vacuously: their set
// contains every node.
func (g *CFG) Dominators(opts PathOpts) []map[*Node]bool {
	n := len(g.Nodes)
	full := func() map[*Node]bool {
		m := make(map[*Node]bool, n)
		for _, nd := range g.Nodes {
			m[nd] = true
		}
		return m
	}
	dom := make([]map[*Node]bool, n)
	for i := range dom {
		dom[i] = full()
	}
	dom[g.Entry.Index] = map[*Node]bool{g.Entry: true}

	changed := true
	for changed {
		changed = false
		for _, nd := range g.Nodes {
			if nd == g.Entry {
				continue
			}
			var meet map[*Node]bool
			for _, p := range nd.Preds {
				if !opts.edgeAllowed(p.To, Edge{To: nd, Kind: p.Kind}) {
					continue
				}
				pd := dom[p.To.Index]
				if meet == nil {
					meet = make(map[*Node]bool, len(pd))
					for k := range pd {
						meet[k] = true
					}
				} else {
					for k := range meet {
						if !pd[k] {
							delete(meet, k)
						}
					}
				}
			}
			if meet == nil {
				continue // unreachable under opts; keep the full set
			}
			meet[nd] = true
			if len(meet) != len(dom[nd.Index]) {
				dom[nd.Index] = meet
				changed = true
				continue
			}
			for k := range meet {
				if !dom[nd.Index][k] {
					dom[nd.Index] = meet
					changed = true
					break
				}
			}
		}
	}
	return dom
}
