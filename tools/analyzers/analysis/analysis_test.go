package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestPathPredicates(t *testing.T) {
	in := PathIn("abftchol/internal/hetsim", "abftchol/internal/core")
	cases := []struct {
		path string
		want bool
	}{
		{"abftchol/internal/hetsim", true},
		{"abftchol/internal/hetsim/sub", true},
		{"abftchol/internal/hetsimx", false},
		{"abftchol/internal/core", true},
		{"abftchol/internal/mat", false},
		{"abftchol", false},
	}
	for _, c := range cases {
		if got := in(c.path); got != c.want {
			t.Errorf("PathIn(%q) = %v, want %v", c.path, got, c.want)
		}
		if got := PathNotIn("abftchol/internal/hetsim", "abftchol/internal/core")(c.path); got == c.want {
			t.Errorf("PathNotIn(%q) = %v, want %v", c.path, got, !c.want)
		}
	}
}

func parseOne(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{ImportPath: "x", Fset: fset, Files: []*ast.File{f}}
}

func TestNolintParsing(t *testing.T) {
	pkg := parseOne(t, `package x

func f() {
	_ = 1 //nolint:abftlint — whole suite, with justification
	_ = 2 //nolint:detsim,floateq — two analyzers
	_ = 3 //nolint
	_ = 4 // unrelated comment
	_ = 5 //nolint:matindex
}
`)
	lines := nolintLines(pkg)
	check := func(line int, name string, want bool) {
		t.Helper()
		got := lines[lineKey{"x.go", line}].allows(name)
		if got != want {
			t.Errorf("line %d allows(%q) = %v, want %v", line, name, got, want)
		}
	}
	check(4, "detsim", true) // abftlint silences every analyzer
	check(4, "floateq", true)
	check(5, "detsim", true)
	check(5, "floateq", true)
	check(5, "matindex", false) // only the named analyzers
	check(6, "detsim", true)    // bare nolint silences everything
	check(7, "detsim", false)   // ordinary comment
	check(8, "matindex", true)
	check(8, "floateq", false)
}

// TestRunSuppression wires a trivial always-firing analyzer through
// Run and checks that only the un-suppressed site survives.
func TestRunSuppression(t *testing.T) {
	pkg := parseOne(t, `package x

func a() {} //nolint:touchy — suppressed
func b() {}
`)
	touchy := &Analyzer{
		Name: "touchy",
		Doc:  "flags every function declaration",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fn, ok := d.(*ast.FuncDecl); ok {
						pass.Reportf(fn.Pos(), "function %s", fn.Name.Name)
					}
				}
			}
			return nil
		},
	}
	findings, err := Run([]*Package{pkg}, []*Analyzer{touchy})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "function b") {
		t.Fatalf("findings = %v, want only function b", findings)
	}
}

// TestRunScope checks that AppliesTo gates the analyzer per package.
func TestRunScope(t *testing.T) {
	pkg := parseOne(t, "package x\n\nfunc a() {}\n")
	scoped := &Analyzer{
		Name:      "scoped",
		Doc:       "fires everywhere it applies",
		AppliesTo: PathIn("somewhere/else"),
		Run: func(pass *Pass) error {
			pass.Reportf(pass.Files[0].Pos(), "fired")
			return nil
		},
	}
	findings, err := Run([]*Package{pkg}, []*Analyzer{scoped})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("out-of-scope analyzer fired: %v", findings)
	}
}

// TestLoaderSelf loads this very package and checks that units carry
// type information.
func TestLoaderSelf(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, p := range pkgs {
		if p.ImportPath != "abftchol/tools/analyzers/analysis" {
			t.Errorf("ImportPath = %q", p.ImportPath)
		}
		for _, e := range p.Errors {
			t.Errorf("type error: %v", e)
		}
		if p.Types == nil || p.TypesInfo == nil {
			t.Errorf("missing type info for %q (external test: %v)", p.ImportPath, p.ExternalTest)
		}
	}
}
