package analyzers_test

import (
	"os"
	"sort"
	"strings"
	"testing"

	"abftchol/tools/analyzers"
)

// TestSuiteWellFormed pins the registry's contract: every analyzer is
// uniquely named and fully described, since names key the //nolint
// escape hatch and docs.
func TestSuiteWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range analyzers.Suite {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing Name, Doc, or Run", a)
		}
		if a.Scope == "" {
			t.Errorf("analyzer %s has no Scope; the generated doc table needs one", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %s; //nolint:%s would be ambiguous", a.Name, a.Name)
		}
		seen[a.Name] = true
	}
}

// TestSuiteSorted pins the registration order to name order. The
// order is load-bearing: -json findings (and the CI artifact built
// from them) follow it, so an unsorted registration would reorder
// existing artifacts every time an analyzer is added.
func TestSuiteSorted(t *testing.T) {
	if !sort.SliceIsSorted(analyzers.Suite, func(i, j int) bool {
		return analyzers.Suite[i].Name < analyzers.Suite[j].Name
	}) {
		names := make([]string, len(analyzers.Suite))
		for i, a := range analyzers.Suite {
			names[i] = a.Name
		}
		t.Fatalf("Suite is not sorted by name: %v; registration order feeds -json output and must stay stable", names)
	}
}

// TestDocTableCurrent fails when docs/LINTING.md's generated analyzer
// table no longer matches the registry — the regeneration command is
// in the failure message, so doc and registry cannot drift silently.
func TestDocTableCurrent(t *testing.T) {
	data, err := os.ReadFile("../../docs/LINTING.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	want := analyzers.TableBegin + "\n" + analyzers.AnalyzerTable()
	if !strings.Contains(doc, want) {
		t.Fatalf("docs/LINTING.md's analyzer table is stale; run `go generate ./tools/analyzers` to regenerate it from the Suite registry")
	}
	// Each registered analyzer also needs its prose section.
	for _, a := range analyzers.Suite {
		if !strings.Contains(doc, "## "+a.Name+" — ") {
			t.Errorf("docs/LINTING.md has no `## %s — ...` section; document the invariant, rationale, failing example, and escape hatch", a.Name)
		}
	}
}
