// Package ctxchecktest exercises ctxcheck's five rules. The package
// is loaded under abftchol/internal/server, inside the analyzer's
// scope; functions carrying a context.Context or *http.Request
// parameter are request-scoped.
package ctxchecktest

import (
	"context"
	"net/http"
	"time"
)

// handlerBackground mints a root context on a request path (R1).
func handlerBackground(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want "context\\.Background\\(\\) in request-scoped code"
	_ = ctx
	_ = w
}

// badSelect blocks with no way out (R2).
func badSelect(ctx context.Context, ch chan int) int {
	select { // want "blocking select on a request path has no ctx\\.Done\\(\\) or deadline case"
	case v := <-ch:
		return v
	}
}

// goodSelect carries the Done case.
func goodSelect(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// deadlineSelect carries a deadline-channel case (the daemon's
// injected Clock.After shape).
func deadlineSelect(ctx context.Context, ch chan int, after func(time.Duration) <-chan time.Time) int {
	expired := after(time.Second)
	select {
	case v := <-ch:
		return v
	case <-expired:
		return 0
	}
}

// nonBlocking probes with a default clause; nothing to prove.
func nonBlocking(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

// bareRecv blocks outside any select (R3).
func bareRecv(ctx context.Context, ch chan int) int {
	return <-ch // want "bare channel receive on a request path"
}

// bareSend blocks outside any select (R3).
func bareSend(ctx context.Context, ch chan int) {
	ch <- 1 // want "bare channel send on a request path"
}

// waitDone receives from the cancellation channel itself; that is the
// observation, not a violation.
func waitDone(ctx context.Context) {
	<-ctx.Done()
}

// sleepClock waits out a bounded deadline channel.
func sleepClock(ctx context.Context, after func(time.Duration) <-chan time.Time) {
	<-after(time.Second)
}

// deadlineDominated is the sanctioned bare-op shape: every path to the
// receive passes a WithTimeout that bounds it.
func deadlineDominated(ctx context.Context, ch chan int) int {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	_ = ctx
	return <-ch
}

// zeroTrip is the zero-trip negative: the WithTimeout lives only
// inside a loop that may run zero times, so it does not dominate the
// receive after the loop.
func zeroTrip(ctx context.Context, ch chan int, n int) int {
	for i := 0; i < n; i++ {
		bounded, cancel := context.WithTimeout(ctx, time.Second)
		_ = bounded
		cancel()
	}
	return <-ch // want "bare channel receive on a request path"
}

// pollLoop round-trips forever without observing cancellation (R4).
func pollLoop(ctx context.Context, c *http.Client, req *http.Request) error {
	for { // want "loop with blocking operations does not observe cancellation"
		resp, err := c.Do(req)
		if err != nil {
			return err
		}
		resp.Body.Close()
	}
}

// pollLoopChecked re-checks cancellation each iteration.
func pollLoopChecked(ctx context.Context, c *http.Client, req *http.Request) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := c.Do(req)
		if err != nil {
			return err
		}
		resp.Body.Close()
	}
}

// blockingHelper is not request-scoped itself; its May summary marks
// it blocking for callers.
func blockingHelper(ch chan int) int {
	return <-ch
}

// summaryLoop blocks through a package-local callee's summary (R4,
// interprocedural).
func summaryLoop(ctx context.Context, ch chan int) int {
	total := 0
	for i := 0; i < 3; i++ { // want "loop with blocking operations does not observe cancellation"
		total += blockingHelper(ch)
	}
	return total
}

// spawns launches a goroutine: the literal has its own lifecycle, and
// goleak — not ctxcheck — owns proving its join.
func spawns(ctx context.Context, ch chan int, done chan struct{}) {
	go func() {
		<-ch
		close(done)
	}()
}

// inherits shows literals that stay on the request goroutine inherit
// request scope.
func inherits(ctx context.Context, ch chan int) func() int {
	return func() int {
		return <-ch // want "bare channel receive on a request path"
	}
}

// buildRequest constructs a context-free request (R5).
func buildRequest(ctx context.Context, url string) (*http.Request, error) {
	return http.NewRequest("GET", url, nil) // want "use http\\.NewRequestWithContext"
}

// fetch uses the convenience helpers; R5 applies even without a ctx
// parameter in scope.
func fetch(url string) (*http.Response, error) {
	return http.Get(url) // want "http\\.Get carries no context"
}

// notRequestScoped has no request to honor; worker internals may
// block (their joins are goleak's concern).
func notRequestScoped(ch chan int) int {
	return <-ch
}

// suppressed exercises the //nolint escape: the finding exists but the
// driver filters it, so no want comment appears here.
func suppressed(ctx context.Context, finished chan struct{}) {
	<-finished //nolint:ctxcheck // drain converges: the producer closes finished unconditionally
}
