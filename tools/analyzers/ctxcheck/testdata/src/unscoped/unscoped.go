// Package unscoped holds cancellation violations that would fire
// inside the serving plane; loaded under its literal testdata path,
// the analyzer's AppliesTo must keep it silent.
package unscoped

import (
	"context"
	"net/http"
)

func handlerBackground(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background()
	_ = ctx
	_ = w
}

func bareRecv(ctx context.Context, ch chan int) int {
	return <-ch
}

func buildRequest(url string) (*http.Request, error) {
	return http.NewRequest("GET", url, nil)
}
