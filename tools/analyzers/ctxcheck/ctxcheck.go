// Package ctxcheck proves the cancellation discipline of the serving
// and campaign planes. The abftd daemon long-polls, streams SSE, and
// runs million-trial campaigns on behalf of HTTP clients; every one of
// those paths holds a goroutine (and often s.mu-adjacent state) on
// behalf of a request, so a blocking operation that ignores the
// request's context turns one disconnected client into a leaked
// goroutine or an undrainable daemon. The compiler enforces none of
// this; until now it was convention.
//
// A function is request-scoped when its signature carries a
// context.Context or *http.Request parameter; function literals it
// builds inherit that status, except literals launched with `go` —
// those have their own lifecycle, and goleak owns proving their joins.
// Within request-scoped code, in non-test files:
//
//	R1: context.Background() / context.TODO() never appears. Minting a
//	    fresh root context detaches the work from its request.
//	R2: every blocking select (no default clause) carries a case
//	    receiving from a ctx.Done() channel or from a deadline channel
//	    (a channel of time.Time: Clock.After, time.After, Timer.C).
//	R3: a standalone channel send or receive must be receiving from
//	    Done()/a deadline channel, or be dominated — zero-trip loop
//	    edges honored, so a deadline minted only inside a maybe-empty
//	    loop does not count — by a context.WithTimeout/WithDeadline
//	    call that bounds it.
//	R4: a loop whose body blocks (channel ops outside
//	    select-with-default, blocking selects, or calls that block:
//	    Scheduler.Execute, http.Client.Do, campaign.Run,
//	    WaitGroup.Wait, or a package-local callee whose May summary
//	    blocks) must observe cancellation each iteration via
//	    ctx.Err(), ctx.Done(), or an R2-satisfying select.
//
// One rule applies to all non-test code in scope, request-scoped or
// not: R5 — net/http requests must be built with
// NewRequestWithContext, never NewRequest/Get/Post/Head/PostForm,
// so the transport can abandon the round-trip on cancellation.
//
// The blocking-call summaries reuse the SCC-condensed May facts of
// analysis.Summarize; they deliberately overcount (a send inside a
// callee's select-with-default still marks the callee blocking) —
// May facts are a sound over-approximation, and the escape hatch for
// a loop proven convergent by other means is //nolint:ctxcheck with a
// justification.
package ctxcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"abftchol/tools/analyzers/analysis"
)

// Doc explains the analyzer; it is also the driver help text.
const Doc = "prove request-scoped code honors cancellation: no context.Background on request paths, blocking selects carry a ctx.Done/deadline case, bare channel ops are deadline-dominated, blocking loops re-check cancellation per iteration, HTTP requests carry their context"

// Analyzer implements the pass.
var Analyzer = &analysis.Analyzer{
	Name:  "ctxcheck",
	Doc:   Doc,
	Scope: "internal/core, internal/server, internal/experiments, internal/reliability, cmd/abftd",
	AppliesTo: analysis.PathIn(
		"abftchol/internal/core",
		"abftchol/internal/server",
		"abftchol/internal/experiments",
		"abftchol/internal/reliability",
		"abftchol/cmd/abftd",
	),
	Run: run,
}

// factBlocking marks a function that can block on a channel or a
// curated blocking callable.
const factBlocking analysis.Facts = 1

func run(pass *analysis.Pass) error {
	cg := analysis.BuildCallGraph(pass)
	sums := cg.Summarize(pass.TypesInfo, blockingLocal(pass.TypesInfo))
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkHTTPConstructors(pass, fd)
			if !requestScoped(pass.TypesInfo, fd) {
				continue
			}
			for _, body := range gatherUnits(fd.Body) {
				c := &checker{pass: pass, info: pass.TypesInfo, sums: sums, body: body}
				c.check()
			}
		}
	}
	return nil
}

// requestScoped reports whether the function's signature carries a
// context.Context or *http.Request parameter.
func requestScoped(info *types.Info, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok {
			continue
		}
		switch tv.Type.String() {
		case "context.Context", "*net/http.Request":
			return true
		}
	}
	return false
}

// gatherUnits returns the function body plus every function literal
// body that runs on the same goroutine: literals launched with `go`
// (and everything inside them) are excluded — their joins are
// goleak's concern, not the request path's.
func gatherUnits(body *ast.BlockStmt) []*ast.BlockStmt {
	units := []*ast.BlockStmt{body}
	spawned := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				spawned[lit] = true
			}
		case *ast.FuncLit:
			if !spawned[n] {
				units = append(units, gatherUnits(n.Body)...)
			}
			return false
		}
		return true
	})
	return units
}

// checker analyzes one same-goroutine unit of a request-scoped
// function.
type checker struct {
	pass *analysis.Pass
	info *types.Info
	sums map[*types.Func]*analysis.Summary
	body *ast.BlockStmt

	g   *analysis.CFG
	dom []map[*analysis.Node]bool
}

// check walks the unit applying R1–R4. Nested function literals are
// skipped: they are their own units (or excluded go-spawns).
func (c *checker) check() {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isPkgCallIn(c.info, n, "context", "Background", "TODO") {
				c.pass.Reportf(n.Pos(), "context.%s() in request-scoped code detaches the work from its request; derive from the caller's ctx (or r.Context())", calleeName(n))
			}
		case *ast.SelectStmt:
			hasDefault, hasCancel := c.selectCancel(n)
			if !hasDefault && !hasCancel {
				c.pass.Reportf(n.Pos(), "blocking select on a request path has no ctx.Done() or deadline case; a disconnected client would park this goroutine forever")
			}
			// Comm clauses are the select's own non-standalone channel
			// ops; walk only the case bodies.
			for _, cl := range n.Body.List {
				for _, s := range cl.(*ast.CommClause).Body {
					ast.Inspect(s, walk)
				}
			}
			return false
		case *ast.SendStmt:
			c.checkBareOp(n.Pos(), "send", nil)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.checkBareOp(n.Pos(), "receive", n.X)
			}
		case *ast.ForStmt:
			c.checkLoop(n.Pos(), n.Body)
		case *ast.RangeStmt:
			c.checkLoop(n.Pos(), n.Body)
		}
		return true
	}
	ast.Inspect(c.body, walk)
}

// checkBareOp is R3: a channel operation outside any select. Receives
// from Done()/deadline channels are cancellation primitives and pass;
// anything else must be dominated by a WithTimeout/WithDeadline call.
func (c *checker) checkBareOp(pos token.Pos, kind string, operand ast.Expr) {
	if operand != nil && (c.isDoneCall(operand) || c.isDeadlineChan(operand)) {
		return
	}
	if c.deadlineDominated(pos) {
		return
	}
	c.pass.Reportf(pos, "bare channel %s on a request path neither selects on ctx.Done() nor is dominated by a context.WithTimeout/WithDeadline call; it can block past the request's lifetime", kind)
}

// deadlineDominated reports whether the statement holding pos is
// dominated by a context.WithTimeout/WithDeadline call. Dominators
// honor zero-trip loop edges, so a deadline minted only inside a
// maybe-empty loop body does not protect code after the loop.
func (c *checker) deadlineDominated(pos token.Pos) bool {
	if c.g == nil {
		c.g = analysis.BuildCFG(c.body)
	}
	node := c.nodeAt(pos)
	if node == nil {
		return false
	}
	if c.dom == nil {
		c.dom = c.g.Dominators(analysis.PathOpts{})
	}
	for d := range c.dom[node.Index] {
		if c.hasDeadlineCall(d) {
			return true
		}
	}
	return false
}

// nodeAt finds the smallest-span CFG node whose statement or
// condition contains pos.
func (c *checker) nodeAt(pos token.Pos) *analysis.Node {
	var best *analysis.Node
	var bestSpan token.Pos
	for _, n := range c.g.Nodes {
		var root ast.Node
		switch {
		case n.Kind == analysis.NodeStmt && n.Stmt != nil:
			root = n.Stmt
		case n.Kind == analysis.NodeCond && n.Cond != nil:
			root = n.Cond
		default:
			continue
		}
		if root.Pos() > pos || root.End() <= pos {
			continue
		}
		if span := root.End() - root.Pos(); best == nil || span < bestSpan {
			best, bestSpan = n, span
		}
	}
	return best
}

// hasDeadlineCall reports whether the node's statement or condition
// calls context.WithTimeout or context.WithDeadline.
func (c *checker) hasDeadlineCall(n *analysis.Node) bool {
	var root ast.Node
	switch {
	case n.Kind == analysis.NodeStmt && n.Stmt != nil:
		root = n.Stmt
	case n.Kind == analysis.NodeCond && n.Cond != nil:
		root = n.Cond
	default:
		return false
	}
	found := false
	ast.Inspect(root, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok && isPkgCallIn(c.info, call, "context", "WithTimeout", "WithDeadline") {
			found = true
		}
		return !found
	})
	return found
}

// checkLoop is R4: a loop that can block each iteration must also
// observe cancellation each iteration.
func (c *checker) checkLoop(pos token.Pos, body *ast.BlockStmt) {
	blocking, cancel := c.loopProfile(body)
	if blocking && !cancel {
		c.pass.Reportf(pos, "loop with blocking operations does not observe cancellation per iteration; add a ctx.Err() check or a ctx.Done() select case so shutdown and client disconnects terminate it")
	}
}

// loopProfile scans a loop body (function literals excluded) for
// blocking operations and cancellation observations. Channel ops
// inside a select carrying a default clause are non-blocking probes
// and do not count.
func (c *checker) loopProfile(body *ast.BlockStmt) (blocking, cancel bool) {
	defaultComms := map[ast.Stmt]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			if hasDefault, _ := c.selectCancel(sel); hasDefault {
				for _, cl := range sel.Body.List {
					if comm := cl.(*ast.CommClause).Comm; comm != nil {
						defaultComms[comm] = true
					}
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if s, isStmt := n.(ast.Stmt); isStmt && defaultComms[s] {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			blocking = true
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				break
			}
			switch {
			case c.isDoneCall(n.X):
				cancel = true
			case c.isDeadlineChan(n.X):
				// a bounded wait, not an unbounded block
			default:
				blocking = true
			}
		case *ast.SelectStmt:
			hasDefault, hasCancel := c.selectCancel(n)
			if !hasDefault {
				blocking = true
				if hasCancel {
					cancel = true
				}
			}
		case *ast.CallExpr:
			if c.isCtxObserve(n) {
				cancel = true
			}
			if c.isBlockingCall(n) {
				blocking = true
			}
		}
		return true
	})
	return blocking, cancel
}

// selectCancel classifies a select: whether it has a default clause,
// and whether some case receives from a Done() or deadline channel.
func (c *checker) selectCancel(sel *ast.SelectStmt) (hasDefault, hasCancel bool) {
	for _, cl := range sel.Body.List {
		cc := cl.(*ast.CommClause)
		if cc.Comm == nil {
			hasDefault = true
			continue
		}
		var operand ast.Expr
		switch s := cc.Comm.(type) {
		case *ast.ExprStmt:
			if u, ok := s.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				operand = u.X
			}
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				if u, ok := s.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					operand = u.X
				}
			}
		}
		if operand != nil && (c.isDoneCall(operand) || c.isDeadlineChan(operand)) {
			hasCancel = true
		}
	}
	return hasDefault, hasCancel
}

// isDoneCall matches `x.Done()` with x a context.Context.
func (c *checker) isDoneCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	tv, has := c.info.Types[sel.X]
	return has && tv.Type != nil && tv.Type.String() == "context.Context"
}

// isDeadlineChan matches expressions of type chan time.Time: the
// injected Clock.After, time.After, and Timer.C all wait out a bound.
func (c *checker) isDeadlineChan(e ast.Expr) bool {
	tv, has := c.info.Types[e]
	if !has || tv.Type == nil {
		return false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	return ok && ch.Elem().String() == "time.Time"
}

// isCtxObserve matches ctx.Err() and ctx.Done() calls — the
// per-iteration cancellation observations R4 accepts.
func (c *checker) isCtxObserve(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	if sel.Sel.Name != "Err" && sel.Sel.Name != "Done" {
		return false
	}
	tv, has := c.info.Types[sel.X]
	return has && tv.Type != nil && tv.Type.String() == "context.Context"
}

// isBlockingCall matches the curated blocking callables plus any
// package-local callee whose May summary blocks.
func (c *checker) isBlockingCall(call *ast.CallExpr) bool {
	callee := analysis.CalleeOf(c.info, call)
	if callee == nil {
		return false
	}
	if blockingCallable(callee) {
		return true
	}
	if callee.Pkg() == c.pass.Pkg {
		if s := c.sums[callee]; s != nil && s.May.Any(factBlocking) {
			return true
		}
	}
	return false
}

// blockingCallable is the curated cross-package table of calls that
// block until external work completes.
func blockingCallable(callee *types.Func) bool {
	switch callee.FullName() {
	case "(*net/http.Client).Do",
		"(*sync.WaitGroup).Wait",
		"(*abftchol/internal/experiments.Scheduler).Execute",
		"abftchol/internal/reliability/campaign.Run":
		return true
	}
	return false
}

// blockingLocal is the per-node classifier Summarize propagates:
// channel operations and curated blocking calls.
func blockingLocal(info *types.Info) func(ast.Node) analysis.Facts {
	return func(n ast.Node) analysis.Facts {
		switch n := n.(type) {
		case *ast.SendStmt:
			return factBlocking
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				return factBlocking
			}
		case *ast.CallExpr:
			if callee := analysis.CalleeOf(info, n); callee != nil && blockingCallable(callee) {
				return factBlocking
			}
		}
		return 0
	}
}

// checkHTTPConstructors is R5 and applies to every function in scope:
// requests must carry their context from construction.
func checkHTTPConstructors(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.CalleeOf(pass.TypesInfo, call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "net/http" {
			return true
		}
		if sig, ok := callee.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true // a method (Header.Get, Client.Head, …), not a package function
		}
		switch callee.Name() {
		case "NewRequest":
			pass.Reportf(call.Pos(), "http.NewRequest builds a context-free request; use http.NewRequestWithContext so the round-trip dies with its caller")
		case "Get", "Post", "Head", "PostForm":
			pass.Reportf(call.Pos(), "http.%s carries no context; build the request with http.NewRequestWithContext and send it through a client", callee.Name())
		}
		return true
	})
}

// isPkgCallIn matches a call to one of pkg's named functions.
func isPkgCallIn(info *types.Info, call *ast.CallExpr, pkg string, names ...string) bool {
	callee := analysis.CalleeOf(info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != pkg {
		return false
	}
	for _, n := range names {
		if callee.Name() == n {
			return true
		}
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		return id.Name
	}
	return "?"
}
