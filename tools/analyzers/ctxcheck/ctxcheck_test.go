package ctxcheck_test

import (
	"testing"

	"abftchol/tools/analyzers/analysistest"
	"abftchol/tools/analyzers/ctxcheck"
)

// TestCtxcheck exercises the five rules — including the zero-trip
// dominance negative and the //nolint escape — under the server's
// import path so the scope applies.
func TestCtxcheck(t *testing.T) {
	analysistest.Run(t, ctxcheck.Analyzer, "testdata/src/ctxchecktest",
		analysistest.ImportAs("abftchol/internal/server"))
}

// TestCtxcheckScope loads the same violations under an import path
// outside the serving plane; no diagnostics may fire.
func TestCtxcheckScope(t *testing.T) {
	analysistest.Run(t, ctxcheck.Analyzer, "testdata/src/unscoped")
}
