package lockcheck_test

import (
	"testing"

	"abftchol/tools/analyzers/analysistest"
	"abftchol/tools/analyzers/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, lockcheck.Analyzer, "testdata/src/lockchecktest",
		analysistest.ImportAs("abftchol/internal/obs"))
}

// TestLockcheckScope loads lock-discipline violations under an import
// path outside the guarded packages; no diagnostics may fire.
func TestLockcheckScope(t *testing.T) {
	analysistest.Run(t, lockcheck.Analyzer, "testdata/src/unscoped")
}
