// Package lockcheck enforces lock discipline in the parallel sweep
// engine's shared state (internal/obs, internal/experiments), the
// job daemon's (internal/server), and the reliability campaign
// engine's (internal/reliability). The
// engine promises byte-identical serial/parallel output, which holds
// only while every mutation of shared state happens under its mutex —
// the same "verify before you trust shared memory" discipline the
// paper's Enhanced Online-ABFT applies to device memory, applied here
// to host memory. `go test -race` finds a violation only when a
// schedule happens to exercise it; lockcheck finds it at lint time.
//
// The analyzer associates each sync.Mutex/RWMutex struct field with
// the sibling fields it guards — seeded by `// guards:` comments and
// inferred from existing locked accesses (analysis.CollectGuards) —
// then checks, on the per-function CFG with a must/may lock-state
// dataflow:
//
//   - every read of a guarded field happens while the mutex is
//     definitely held (read or write hold), and every write while it
//     is held exclusively;
//   - no mutex is re-acquired while already held (double lock
//     deadlocks a sync.Mutex);
//   - no Unlock runs where the mutex cannot be held (Unlock of an
//     unlocked mutex panics);
//   - every Lock is matched by an Unlock on every path to return —
//     deferred Unlocks count, and also cover panic exits;
//   - no mutex-bearing value is copied (value receivers, value
//     assignments, by-value call arguments): a copied mutex guards
//     nothing.
//
// Accesses through a struct the function itself creates are exempt —
// constructors initialize fields before any other goroutine can hold
// a reference. _test.go files are exempt: the test suites drive the
// engine through its public API, and their private pokes are serial.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"abftchol/tools/analyzers/analysis"
)

// Doc explains the analyzer; it is also the driver help text.
const Doc = "require guarded struct fields (seeded by // guards: comments, inferred from locked accesses) to be accessed under their mutex; flag double locks, stray Unlocks, unreleased Locks, and lock copies"

// Analyzer implements the pass.
var Analyzer = &analysis.Analyzer{
	Name:  "lockcheck",
	Doc:   Doc,
	Scope: "internal/obs, internal/experiments, internal/checksum, internal/blas, internal/server, internal/reliability",
	AppliesTo: analysis.PathIn(
		"abftchol/internal/obs",
		"abftchol/internal/experiments",
		"abftchol/internal/checksum",
		"abftchol/internal/blas",
		"abftchol/internal/server",
		"abftchol/internal/reliability",
	),
	Run: run,
}

func run(pass *analysis.Pass) error {
	guards := analysis.CollectGuards(pass)
	for _, bad := range guards.BadSeeds {
		pass.Reportf(bad.Pos, "guards: comment names %q, which is not a sibling field of this mutex", bad.Name)
	}
	for _, f := range pass.Files {
		if name := pass.Fset.Position(f.Pos()).Filename; strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCopiedReceiver(pass, fd)
			checkFunc(pass, guards, fd)
		}
		checkCopies(pass, f)
	}
	return nil
}

func checkFunc(pass *analysis.Pass, guards *analysis.Guards, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	g := analysis.BuildCFG(fd.Body)
	ops := analysis.CollectLockOps(g, info)
	byNode := analysis.OpsByNode(ops)
	must := analysis.MustHeldIn(g, ops)
	may := analysis.MayHeldIn(g, ops)

	checkLockPairing(pass, g, ops, must, may, byNode)
	checkAccesses(pass, guards, fd, g, byNode, must)
}

// checkLockPairing flags double locks, stray unlocks, and locks not
// released on every path.
func checkLockPairing(pass *analysis.Pass, g *analysis.CFG, ops []analysis.LockOp, must, may []analysis.LockState, byNode map[*analysis.Node][]analysis.LockOp) {
	// deferredRelease: keys whose Unlock is scheduled for function
	// exit; those locks are released on every path including panics.
	deferredRelease := map[string]bool{}
	for _, op := range ops {
		if op.Deferred && op.Releases() {
			deferredRelease[op.Key] = true
		}
	}

	// releaseNodes per key, the reachability barriers for the
	// released-on-every-path check.
	releaseNodes := map[string]map[*analysis.Node]bool{}
	for _, op := range ops {
		if !op.Deferred && op.Releases() {
			if releaseNodes[op.Key] == nil {
				releaseNodes[op.Key] = map[*analysis.Node]bool{}
			}
			releaseNodes[op.Key][op.Node] = true
		}
	}

	for _, op := range ops {
		if op.Deferred {
			continue
		}
		mustAt := analysis.LockStateAt(must[op.Node.Index], byNode[op.Node], op.Call.Pos())
		mayAt := analysis.LockStateAt(may[op.Node.Index], byNode[op.Node], op.Call.Pos())
		if mustAt == nil {
			continue // unreachable code; nothing sound to say
		}
		kind, acquires := op.Acquires()
		switch {
		case acquires && kind == analysis.HeldExcl:
			if _, held := mustAt[op.Key]; held {
				pass.Reportf(op.Call.Pos(), "%s.Lock while %s is already held on every path here; the second Lock deadlocks", op.Key, op.Key)
				continue
			}
		case acquires && kind == analysis.HeldRead:
			if mustAt[op.Key] == analysis.HeldExcl {
				pass.Reportf(op.Call.Pos(), "%s.RLock while %s is already held exclusively; the RLock deadlocks", op.Key, op.Key)
				continue
			}
		case op.Releases():
			if _, held := mayAt[op.Key]; !held {
				pass.Reportf(op.Call.Pos(), "%s.%s releases a mutex no path has locked; Unlock of an unlocked mutex panics", op.Key, op.Method)
			}
			continue
		}
		if !acquires || deferredRelease[op.Key] {
			continue
		}
		// Released on every path: from the acquire, function exit must
		// not be reachable without passing a release of the same key.
		reach := g.Reachable(op.Node, analysis.PathOpts{
			Barrier: func(n *analysis.Node) bool { return releaseNodes[op.Key][n] },
		})
		if reach[g.Exit] {
			pass.Reportf(op.Call.Pos(), "%s.%s is not matched by an unlock on every path to return; defer the unlock or release on each branch", op.Key, op.Method)
		}
	}
}

// checkAccesses flags guarded-field reads and writes performed without
// the guarding mutex.
func checkAccesses(pass *analysis.Pass, guards *analysis.Guards, fd *ast.FuncDecl, g *analysis.CFG, byNode map[*analysis.Node][]analysis.LockOp, must []analysis.LockState) {
	if len(guards.GuardOf) == 0 {
		return
	}
	info := pass.TypesInfo
	du := analysis.CollectDefUse(fd, info)
	writes := writeTargets(fd.Body)

	for _, node := range g.Nodes {
		state := must[node.Index]
		if state == nil {
			continue
		}
		var root ast.Node
		switch {
		case node.Kind == analysis.NodeStmt:
			root = node.Stmt
		case node.Kind == analysis.NodeCond && node.Cond != nil:
			root = node.Cond
		default:
			continue
		}
		ast.Inspect(root, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fieldObj, ok := info.Uses[sel.Sel].(*types.Var)
			if !ok {
				return true
			}
			mus := guards.GuardOf[fieldObj]
			if len(mus) == 0 {
				return true
			}
			if locallyCreated(du, info, sel.X) {
				return true
			}
			at := analysis.LockStateAt(state, byNode[node], sel.Pos())
			base := types.ExprString(sel.X)
			isWrite := writes[sel]
			for _, mu := range mus {
				kind, held := at[base+"."+mu.Name()]
				if held && (!isWrite || kind == analysis.HeldExcl) {
					return true
				}
				if held && isWrite {
					pass.Reportf(sel.Pos(), "write to %s.%s (guarded by %s.%s) under a read lock; writes need %s.%s.Lock", base, fieldObj.Name(), base, mu.Name(), base, mu.Name())
					return true
				}
			}
			verb := "read of"
			if isWrite {
				verb = "write to"
			}
			pass.Reportf(sel.Pos(), "%s %s.%s without holding %s.%s, which guards it (seeded or inferred from locked accesses elsewhere)", verb, base, fieldObj.Name(), base, guardNames(base, mus))
			return true
		})
	}
}

// guardNames renders the mutex alternatives for a diagnostic; nearly
// always a single field.
func guardNames(base string, mus []*types.Var) string {
	names := make([]string, len(mus))
	for i, mu := range mus {
		names[i] = mu.Name()
	}
	return strings.Join(names, " or "+base+".")
}

// writeTargets marks every SelectorExpr that is mutated: the core of
// an assignment target or inc/dec operand, possibly through index or
// dereference (s.m[k] = v mutates through s.m).
func writeTargets(body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	out := map[*ast.SelectorExpr]bool{}
	mark := func(e ast.Expr) {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.SelectorExpr:
				out[x] = true
				return
			default:
				return
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		}
		return true
	})
	return out
}

// locallyCreated reports whether the access base is a variable this
// function built itself (a composite literal, possibly through &):
// constructor initialization before the value escapes needs no lock.
func locallyCreated(du *analysis.DefUse, info *types.Info, base ast.Expr) bool {
	id, ok := ast.Unparen(base).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	defs, known := du.Defs[obj]
	if !known || du.Params[obj] {
		return false
	}
	for _, def := range defs {
		e := ast.Unparen(def)
		if u, isAddr := e.(*ast.UnaryExpr); isAddr && u.Op == token.AND {
			e = ast.Unparen(u.X)
		}
		if _, isLit := e.(*ast.CompositeLit); isLit {
			return true
		}
	}
	return false
}

// ---- lock copying --------------------------------------------------

// containsMutex reports whether t (not through pointers) embeds a
// sync.Mutex, sync.RWMutex, or sync.WaitGroup anywhere.
func containsMutex(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup":
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMutex(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsMutex(u.Elem(), seen)
	}
	return false
}

// checkCopiedReceiver flags methods whose value receiver copies a
// mutex on every call.
func checkCopiedReceiver(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return
	}
	tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]
	if !ok {
		return
	}
	if _, isPtr := tv.Type.(*types.Pointer); isPtr {
		return
	}
	if containsMutex(tv.Type, map[types.Type]bool{}) {
		pass.Reportf(fd.Recv.Pos(), "method %s copies its mutex-bearing receiver on every call; use a pointer receiver", fd.Name.Name)
	}
}

// copiesLockValue reports whether evaluating e yields a by-value copy
// of an existing mutex-bearing value: reading a variable, field,
// element, or dereference of such a type. Fresh composite literals and
// address-taking are fine.
func copiesLockValue(info *types.Info, e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return false
	}
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return false
	}
	if _, isPtr := tv.Type.(*types.Pointer); isPtr {
		return false
	}
	return containsMutex(tv.Type, map[types.Type]bool{})
}

// checkCopies flags by-value assignments and call arguments of
// mutex-bearing values.
func checkCopies(pass *analysis.Pass, f *ast.File) {
	info := pass.TypesInfo
	if name := pass.Fset.Position(f.Pos()).Filename; strings.HasSuffix(name, "_test.go") {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if copiesLockValue(info, rhs) {
					pass.Reportf(rhs.Pos(), "assignment copies a mutex-bearing value; a copied mutex guards nothing — keep a pointer instead")
				}
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				if copiesLockValue(info, v) {
					pass.Reportf(v.Pos(), "declaration copies a mutex-bearing value; a copied mutex guards nothing — keep a pointer instead")
				}
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if copiesLockValue(info, arg) {
					pass.Reportf(arg.Pos(), "call passes a mutex-bearing value by value; the callee's copy shares no lock state — pass a pointer")
				}
			}
		}
		return true
	})
}
