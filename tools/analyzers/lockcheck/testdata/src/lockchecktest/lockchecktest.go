// Package lockchecktest exercises the lockcheck analyzer: seeded and
// inferred guarded-by associations, lock-pairing discipline, the
// zero-trip loop edge, lock copying, and the //nolint escape.
package lockchecktest

import "sync"

// Counter's mutex is explicitly seeded: mu guards n and m, while
// label is a set-once configuration knob outside the association.
type Counter struct {
	mu    sync.Mutex // guards: n, m
	n     int
	m     map[string]int
	label string
}

// newCounter initializes fields without the lock: the value is local
// until returned, so no other goroutine can observe it yet.
func newCounter() *Counter {
	c := &Counter{m: make(map[string]int)}
	c.n = 1
	c.m["seed"] = 1
	return c
}

// bump is the disciplined path.
func (c *Counter) bump(k string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.m[k]++
}

// setLabel touches only the unguarded field; nothing to hold.
func (c *Counter) setLabel(s string) {
	c.label = s
}

func (c *Counter) badRead() int {
	return c.n // want "read of c.n without holding c.mu"
}

func (c *Counter) badWrite(v int) {
	c.n = v // want "write to c.n without holding c.mu"
}

// doubleLock would deadlock at the second acquisition.
func (c *Counter) doubleLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mu.Lock() // want "Lock while c.mu is already held"
	c.n++
}

// unlockFirst releases a mutex nothing locked.
func (c *Counter) unlockFirst() {
	c.mu.Unlock() // want "releases a mutex no path has locked"
}

// leaky holds the lock across the early-return path.
func (c *Counter) leaky(flag bool) {
	c.mu.Lock() // want "not matched by an unlock on every path"
	c.n++
	if flag {
		return
	}
	c.mu.Unlock()
}

// acquireInLoop only locks when the slice is non-empty: the zero-trip
// edge reaches the read with no lock held, and no path unlocks.
func (c *Counter) acquireInLoop(xs []int) int {
	for range xs {
		c.mu.Lock() // want "not matched by an unlock on every path"
	}
	return c.n // want "read of c.n without holding c.mu"
}

// perIteration is the sound version of locking inside a loop; the
// trailing read still races, and the diagnostic survives the loop's
// zero-trip edge in the must-held meet.
func (c *Counter) perIteration(xs []int) int {
	total := 0
	for _, x := range xs {
		c.mu.Lock()
		total += c.n * x
		c.mu.Unlock()
	}
	return total + c.n // want "read of c.n without holding c.mu"
}

// escaped exercises the sanctioned suppression: a deliberate dirty
// read carrying a justified nolint produces no finding.
func (c *Counter) escaped() int {
	return c.n //nolint:lockcheck — approximate progress display tolerates a torn read
}

// Table pairs an RWMutex with its rows: reads may hold either lock
// mode, writes need the exclusive one.
type Table struct {
	rw   sync.RWMutex // guards: rows
	rows map[string]int
}

// lookup reads under the shared lock.
func (t *Table) lookup(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.rows[k]
}

// insert writes under the exclusive lock.
func (t *Table) insert(k string) {
	t.rw.Lock()
	defer t.rw.Unlock()
	t.rows[k] = 1
}

// badInsert writes under a read lock: concurrent RLock holders would
// observe the write mid-flight.
func (t *Table) badInsert(k string) {
	t.rw.RLock()
	defer t.rw.RUnlock()
	t.rows[k] = 1 // want "under a read lock"
}

// pool carries no guards comment; the association mu→free is inferred
// from get's locked accesses.
type pool struct {
	mu   sync.Mutex
	free []int
}

// get accesses free under the lock, teaching the analyzer that mu
// guards free.
func (p *pool) get() (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) == 0 {
		return 0, false
	}
	v := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return v, true
}

// steal skips the lock every other method of the type honours.
func (p *pool) steal() []int {
	return p.free // want "read of p.free without holding p.mu"
}

// badSeed's directive names a field that does not exist; the typo is
// reported instead of silently guarding nothing.
type badSeed struct {
	// guards: ghost
	mu sync.Mutex // want "names \"ghost\", which is not a sibling field"
	n  int
}

// lockSeed keeps badSeed's fields referenced so the fixture stays an
// honest compilable package.
func lockSeed(b *badSeed) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// box exists for the copy checks; v is deliberately never accessed
// under the lock so no guard is inferred for it.
type box struct {
	mu sync.Mutex
	v  int
}

// copyBox copies the mutex along with the value.
func copyBox(b *box) int {
	d := *b // want "assignment copies a mutex-bearing value"
	return d.v
}

// valueMethod copies its receiver — and therefore its mutex — on
// every call.
func (b box) valueMethod() int { // want "copies its mutex-bearing receiver"
	return b.v
}

func takeBox(b *box) {}

// passByValue hands the callee a disconnected copy of the lock.
func passByValue(b *box) {
	useBox(*b) // want "passes a mutex-bearing value by value"
	takeBox(b)
}

func useBox(box) {}
