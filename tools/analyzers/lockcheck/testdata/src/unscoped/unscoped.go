// Package unscoped holds lock-discipline violations under an import
// path outside lockcheck's scope; no diagnostics may fire.
package unscoped

import "sync"

type counter struct {
	mu sync.Mutex // guards: n
	n  int
}

func (c *counter) dirtyRead() int {
	return c.n
}

func (c *counter) leaky() {
	c.mu.Lock()
	c.n++
}
