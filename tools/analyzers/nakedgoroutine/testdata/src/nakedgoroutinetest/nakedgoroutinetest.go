// Package nakedgoroutinetest exercises the nakedgoroutine analyzer:
// fire-and-forget func literals are flagged; WaitGroup, channel, and
// argument handoffs, named-function goroutines, and the nolint escape
// are not.
package nakedgoroutinetest

import "sync"

func flaggedNaked(n int) {
	go func() { // want "completion handoff"
		_ = n * 2
	}()
}

func flaggedWithArgs(xs []float64) {
	go func(v []float64) { // want "completion handoff"
		v[0] = 1
	}(xs)
}

func allowedWaitGroup(xs []float64) {
	var wg sync.WaitGroup
	for i := range xs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			xs[i] *= 2
		}(i)
	}
	wg.Wait()
}

func allowedChannelClose() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
	}()
	return done
}

func allowedChannelSend() int {
	res := make(chan int, 1)
	go func() {
		res <- 7
	}()
	return <-res
}

func allowedChannelArg(done chan struct{}) {
	go func(d chan<- struct{}) {
		d <- struct{}{}
	}(done)
}

func allowedSelect(stop chan struct{}) {
	go func() {
		select {
		case <-stop:
		default:
		}
	}()
}

type worker struct{}

func (w *worker) loop() {}

// allowedNamed delegates the handoff question to the callee; only
// inline literals are the analyzer's business.
func allowedNamed(w *worker) {
	go w.loop()
}

func escaped() {
	go func() { //nolint:nakedgoroutine — exercising the per-analyzer escape hatch
	}()
}
