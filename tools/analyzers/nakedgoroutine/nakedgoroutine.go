// Package nakedgoroutine flags `go func` literals with no completion
// handoff in internal/blas and internal/core. The simulator executes
// kernel bodies under the paper's Optimization 1 (concurrent kernels
// on multiple streams), and the parallel BLAS front ends fan output
// columns across goroutines that all write the one shared matrix
// buffer. A goroutine the spawner cannot wait on may still be writing
// after the kernel "completes": the next kernel then races it, and the
// resulting corruption is indistinguishable from an injected fault —
// except no checksum models it. Every goroutine must hand completion
// back through a sync.WaitGroup, a channel, or an errgroup-style
// collector.
package nakedgoroutine

import (
	"go/ast"
	"go/token"
	"go/types"

	"abftchol/tools/analyzers/analysis"
)

// Doc explains the analyzer; it is also the driver help text.
const Doc = "forbid goroutines without a WaitGroup/channel/errgroup completion handoff in kernel-executing packages"

// Analyzer implements the pass.
var Analyzer = &analysis.Analyzer{
	Name:  "nakedgoroutine",
	Doc:   Doc,
	Scope: "internal/blas, internal/core",
	AppliesTo: analysis.PathIn(
		"abftchol/internal/blas",
		"abftchol/internal/core",
	),
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(stmt.Call.Fun).(*ast.FuncLit)
			if !ok {
				// `go method()` delegates the handoff question to the
				// callee; the invariant targets inline literals.
				return true
			}
			if handsOff(pass, stmt, lit) {
				return true
			}
			pass.Reportf(stmt.Pos(), "goroutine has no completion handoff (sync.WaitGroup, channel, or errgroup); an orphaned writer races the next kernel on the shared matrix")
			return true
		})
	}
	return nil
}

// handsOff reports whether the goroutine demonstrably coordinates its
// completion: it receives a channel or *sync.WaitGroup argument, or
// its body performs channel operations, selects, or WaitGroup calls.
func handsOff(pass *analysis.Pass, stmt *ast.GoStmt, lit *ast.FuncLit) bool {
	for _, arg := range stmt.Call.Args {
		if t := pass.TypesInfo.Types[arg].Type; isChan(t) || isWaitGroupPtr(t) {
			return true
		}
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if isChan(pass.TypesInfo.Types[e.X].Type) {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					found = true
				}
			}
		case *ast.Ident:
			// Referencing any channel or WaitGroup in the closure —
			// including passing one onward — counts as a handoff.
			if obj := pass.TypesInfo.Uses[e]; obj != nil {
				if t := obj.Type(); isChan(t) || isWaitGroupPtr(t) || isWaitGroup(t) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

func isWaitGroupPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	return ok && isWaitGroup(p.Elem())
}
