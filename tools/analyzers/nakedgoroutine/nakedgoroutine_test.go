package nakedgoroutine_test

import (
	"testing"

	"abftchol/tools/analyzers/analysistest"
	"abftchol/tools/analyzers/nakedgoroutine"
)

func TestNakedGoroutine(t *testing.T) {
	analysistest.Run(t, nakedgoroutine.Analyzer, "testdata/src/nakedgoroutinetest",
		analysistest.ImportAs("abftchol/internal/blas"))
}
