// Command gendoc rewrites the generated analyzer table in
// docs/LINTING.md from the suite registry (tools/analyzers.Suite). It
// is wired to `go generate ./tools/analyzers`; suite_test.go asserts
// the embedding, so a stale table fails `go test` rather than rotting
// silently.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"abftchol/tools/analyzers"
)

func main() {
	out := flag.String("out", "../../docs/LINTING.md", "markdown file whose generated table to rewrite (path is relative to tools/analyzers, where go generate runs)")
	flag.Parse()
	if err := rewrite(*out); err != nil {
		fmt.Fprintln(os.Stderr, "gendoc:", err)
		os.Exit(1)
	}
}

func rewrite(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	src := string(data)
	begin := strings.Index(src, analyzers.TableBegin)
	end := strings.Index(src, analyzers.TableEnd)
	if begin < 0 || end < 0 || end < begin {
		return fmt.Errorf("%s: marker comments %q ... %q not found; the generated table needs a home", path, analyzers.TableBegin, analyzers.TableEnd)
	}
	var b strings.Builder
	b.WriteString(src[:begin])
	b.WriteString(analyzers.TableBegin)
	b.WriteString("\n")
	b.WriteString(analyzers.AnalyzerTable())
	b.WriteString(src[end:])
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
