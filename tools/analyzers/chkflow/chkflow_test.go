package chkflow_test

import (
	"testing"

	"abftchol/tools/analyzers/analysistest"
	"abftchol/tools/analyzers/chkflow"
)

// TestChkflow runs the analyzer over the miniature executor package,
// loaded under an internal/core child path so AppliesTo admits it.
func TestChkflow(t *testing.T) {
	analysistest.Run(t, chkflow.Analyzer, "testdata/src/chkflowtest",
		analysistest.ImportAs("abftchol/internal/core/chkflowtest"))
}
